// Cross-package integration tests: properties that must hold across the
// whole stack (public API → framework → VCM → codec → decoder).
package feves_test

import (
	"fmt"
	"testing"

	"feves"
	"feves/internal/video"
)

// encodeAll runs a full functional encode of n synthetic frames and
// returns the bitstream.
func encodeAll(t *testing.T, cfg feves.Config, pl *feves.Platform, n int, seed uint64) []byte {
	t.Helper()
	enc, err := feves.NewEncoder(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSynthetic(cfg.Width, cfg.Height, n, seed)
	for i := 0; i < n; i++ {
		if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Bitstream()
}

// TestBitstreamInvariantAcrossPlatformsAndBalancers is the repository's
// strongest end-to-end property: the coded output is a pure function of
// the content and coding parameters — the platform the work was balanced
// across and the balancing strategy must never leak into the bitstream.
func TestBitstreamInvariantAcrossPlatformsAndBalancers(t *testing.T) {
	const w, h, n = 64, 48, 5
	base := feves.Config{Width: w, Height: h, SearchArea: 16, RefFrames: 2}

	type variant struct {
		name string
		pl   *feves.Platform
		bal  feves.BalancerKind
	}
	variants := []variant{
		{"SysNF/lp", feves.SysNF(), feves.BalancerLP},
		{"SysNFF/lp", feves.SysNFF(), feves.BalancerLP},
		{"SysHK/lp", feves.SysHK(), feves.BalancerLP},
		{"SysHK/equidistant", feves.SysHK(), feves.BalancerEquidistant},
		{"SysHK/proportional", feves.SysHK(), feves.BalancerProportional},
		{"SysNFF/me-offload", feves.SysNFF(), feves.BalancerMEOffload},
		{"GPU_K/lp", feves.GPUKepler(), feves.BalancerLP},
		{"CPU_H/lp", feves.CPUHaswell(), feves.BalancerLP},
	}
	var ref []byte
	for _, v := range variants {
		cfg := base
		cfg.Balancer = v.bal
		stream := encodeAll(t, cfg, v.pl, n, 99)
		if ref == nil {
			ref = stream
			continue
		}
		if len(stream) != len(ref) {
			t.Fatalf("%s: stream length %d != reference %d", v.name, len(stream), len(ref))
		}
		for i := range stream {
			if stream[i] != ref[i] {
				t.Fatalf("%s: bitstream diverges at byte %d", v.name, i)
			}
		}
	}
}

// TestDeterminism: identical runs produce identical bitstreams and
// identical virtual timings — the reproducibility guarantee every
// experiment relies on.
func TestDeterminism(t *testing.T) {
	cfg := feves.Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2}
	run := func() []feves.FrameReport {
		sim, err := feves.NewSimulation(cfg, feves.SysHK())
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sim.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Seconds != b[i].Seconds || a[i].Tau1 != b[i].Tau1 || a[i].Tau2 != b[i].Tau2 {
			t.Fatalf("frame %d timings differ between identical runs", i)
		}
		if fmt.Sprint(a[i].MERows) != fmt.Sprint(b[i].MERows) {
			t.Fatalf("frame %d distributions differ between identical runs", i)
		}
	}
	sa := encodeAll(t, feves.Config{Width: 48, Height: 48}, feves.SysNF(), 4, 7)
	sb := encodeAll(t, feves.Config{Width: 48, Height: 48}, feves.SysNF(), 4, 7)
	if string(sa) != string(sb) {
		t.Fatal("functional encodes differ between identical runs")
	}
}

// TestDecoderNeverPanicsOnCorruption flips bytes throughout a valid stream
// and truncates it at many points: decoding must fail gracefully (error or
// mismatching output), never panic.
func TestDecoderNeverPanicsOnCorruption(t *testing.T) {
	for _, arith := range []bool{false, true} {
		cfg := feves.Config{Width: 48, Height: 48, SearchArea: 16, ArithmeticCoding: arith}
		stream := encodeAll(t, cfg, feves.GPUFermi(), 3, 13)
		decodeAll := func(data []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on corrupt input (arith=%v): %v", arith, r)
				}
			}()
			n, _ := feves.Verify(data)
			_ = n
		}
		// Byte flips.
		for pos := 0; pos < len(stream); pos += 11 {
			corrupt := append([]byte(nil), stream...)
			corrupt[pos] ^= 0x5A
			decodeAll(corrupt)
		}
		// Truncations.
		for cut := 0; cut < len(stream); cut += 13 {
			decodeAll(stream[:cut])
		}
	}
}

// TestLongSimulationStaysStable runs 200 frames with perturbations and the
// RF ramp and checks the balancer never degenerates.
func TestLongSimulationStaysStable(t *testing.T) {
	pl := feves.SysNFF()
	pl.Perturb(func(frame, dev int) float64 {
		if frame%37 == 0 && dev == frame/37%2 {
			return 2 // periodic disturbances alternating between the GPUs
		}
		return 1
	})
	sim, err := feves.NewSimulation(feves.Config{
		Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 3,
	}, pl)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(201)
	if err != nil {
		t.Fatal(err)
	}
	// Steady frames (past ramp, not perturbed) stay within a sane band.
	var base float64
	count := 0
	for _, r := range reports[10:] {
		if r.Frame%37 == 0 {
			continue
		}
		base += r.Seconds
		count++
	}
	base /= float64(count)
	for _, r := range reports[10:] {
		if r.Frame%37 == 0 {
			continue
		}
		if r.Seconds > base*1.6 {
			t.Fatalf("frame %d: %.1f ms against steady %.1f ms — balancer degenerated",
				r.Frame, r.Seconds*1e3, base*1e3)
		}
	}
}

// TestGOPStructureInSimulation: with IntraPeriod set, intra frames appear
// on schedule and the inter-loop timing restarts its RF ramp after each.
func TestGOPStructureInSimulation(t *testing.T) {
	sim, err := feves.NewSimulation(feves.Config{
		Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 4, IntraPeriod: 10,
	}, feves.SysHK())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		wantIntra := r.Frame%10 == 0
		if r.Intra != wantIntra {
			t.Fatalf("frame %d: intra=%v, want %v", r.Frame, r.Intra, wantIntra)
		}
	}
	// Frame 11 (1 usable RF after the IDR at 10) must be cheaper than
	// frame 19 (4 usable RFs): the ramp restarted.
	if reports[11].Seconds >= reports[19].Seconds {
		t.Fatalf("RF ramp did not restart after IDR: frame 11 %.1f ms vs frame 19 %.1f ms",
			reports[11].Seconds*1e3, reports[19].Seconds*1e3)
	}
}

// TestFunctionalIDRThroughFramework: a functional encode with periodic IDR
// through the public API still verifies end to end.
func TestFunctionalIDRThroughFramework(t *testing.T) {
	const w, h, n = 48, 48, 8
	cfg := feves.Config{Width: w, Height: h, SearchArea: 16, RefFrames: 2, IntraPeriod: 3}
	stream := encodeAll(t, cfg, feves.SysNF(), n, 17)
	frames, err := feves.Verify(stream)
	if err != nil {
		t.Fatal(err)
	}
	if frames != n {
		t.Fatalf("verified %d frames, want %d", frames, n)
	}
}

// TestFunctionalSoak encodes a longer QCIF sequence through the full
// framework with every extension enabled and verifies the stream end to
// end — the closest thing to a production run this repository has.
func TestFunctionalSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const w, h, n = 176, 144, 24
	cfg := feves.Config{
		Width: w, Height: h,
		SearchArea:         32,
		RefFrames:          2,
		ArithmeticCoding:   true,
		Slices:             3,
		Checksum:           true,
		IntraPeriod:        10,
		TargetBitsPerFrame: 30000,
		Parallel:           true,
	}
	enc, err := feves.NewEncoder(cfg, feves.SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSyntheticClass(w, h, n, 7, video.HighMotion)
	var totalBits int
	for i := 0; i < n; i++ {
		rep, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV())
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		totalBits += rep.Bits
		if !rep.Intra && rep.PSNRY < 24 {
			t.Fatalf("frame %d: PSNR %.1f collapsed", i, rep.PSNRY)
		}
	}
	frames, err := feves.Verify(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if frames != n {
		t.Fatalf("verified %d frames, want %d", frames, n)
	}
	if totalBits <= 0 {
		t.Fatal("no bits coded")
	}
}
