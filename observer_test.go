package feves_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"feves"
)

// TestObserverEndToEnd runs a simulation with every telemetry sink enabled
// and checks the three acceptance artifacts: a Prometheus scrape over
// HTTP, a JSONL event log with predicted-vs-measured audit records, and a
// Chrome trace-event JSON document.
func TestObserverEndToEnd(t *testing.T) {
	var events, perfetto bytes.Buffer
	obs, err := feves.NewObserver(feves.ObserverConfig{
		MetricsAddr: "127.0.0.1:0",
		Events:      &events,
		Perfetto:    &perfetto,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := feves.NewSimulation(feves.Config{
		Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1,
		Observer: obs,
	}, feves.SysHK())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(12); err != nil {
		t.Fatal(err)
	}

	// (1) Prometheus scrape over HTTP while the run is live.
	resp, err := http.Get("http://" + obs.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(body)
	for _, want := range []string{
		`feves_frames_total{type="inter"} 11`,
		"feves_tau_tot_seconds_bucket",
		"feves_sched_overhead_seconds_bucket",
		"feves_prediction_rel_error_bucket",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and stops the endpoint.
	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + obs.MetricsAddr() + "/metrics"); err == nil {
		t.Error("metrics endpoint still serving after Close")
	}

	// (2) JSONL event log with audit records.
	audits := 0
	for _, ln := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("event log line is not JSON: %q", ln)
		}
		if m["type"] == "balancer_audit" {
			audits++
			if m["pred_tau_tot"].(float64) <= 0 || m["measured_tau_tot"].(float64) <= 0 {
				t.Errorf("audit without prediction/measurement: %v", m)
			}
		}
	}
	if audits == 0 {
		t.Error("no balancer_audit events recorded")
	}

	// (3) Perfetto trace with the whole run's schedule.
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfetto.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	frames, spans := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" {
			if e.Name == "frame" {
				frames++
			} else {
				spans++
			}
		}
	}
	if frames != 11 {
		t.Errorf("perfetto frame bars = %d, want 11", frames)
	}
	if spans == 0 {
		t.Error("perfetto trace has no task spans")
	}
}

// TestObserverSharedAcrossRuns checks that one Observer aggregates several
// frameworks, the mode feves-bench uses.
func TestObserverSharedAcrossRuns(t *testing.T) {
	obs, err := feves.NewObserver(feves.ObserverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	cfg := feves.Config{Width: 640, Height: 352, Observer: obs}
	for i := 0; i < 2; i++ {
		sim, err := feves.NewSimulation(cfg, feves.SysNF())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(5); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(obs.MetricsText(), `feves_frames_total{type="inter"} 8`) {
		t.Errorf("aggregated metrics wrong:\n%s", obs.MetricsText())
	}
}

// TestNilObserverIsInert: the default configuration must tolerate every
// accessor on a nil Observer.
func TestNilObserverIsInert(t *testing.T) {
	var obs *feves.Observer
	if obs.Sink() != nil || obs.MetricsAddr() != "" || obs.MetricsText() != "" {
		t.Fatal("nil observer not inert")
	}
	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverLiveIntrospection covers the mid-run snapshot surface: the
// trace ring exported without closing the Observer, the flight recorder
// document, and the captured-bundle accessor — plus their disabled/nil
// fallbacks.
func TestObserverLiveIntrospection(t *testing.T) {
	var perfetto bytes.Buffer
	obs, err := feves.NewObserver(feves.ObserverConfig{Perfetto: &perfetto})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	sim, err := feves.NewSimulation(feves.Config{
		Width: 640, Height: 352, Observer: obs,
	}, feves.SysNF())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(5); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	if err := obs.ExportTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.Events) == 0 {
		t.Fatal("exported trace is empty mid-run")
	}

	var flight bytes.Buffer
	if err := obs.WriteFlight(&flight); err != nil {
		t.Fatal(err)
	}
	var fdoc struct {
		Frames []json.RawMessage `json:"frames"`
	}
	if err := json.Unmarshal(flight.Bytes(), &fdoc); err != nil {
		t.Fatalf("flight document is not valid JSON: %v", err)
	}
	if len(fdoc.Frames) == 0 {
		t.Fatal("flight recorder holds no frames after a run")
	}
	if got := obs.FlightBundles(); len(got) != 0 {
		t.Fatalf("clean run captured %d post-mortem bundles", len(got))
	}

	// Without a Perfetto sink there is no trace ring to export.
	bare, err := feves.NewObserver(feves.ObserverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if err := bare.ExportTrace(io.Discard); err != feves.ErrNoTrace {
		t.Fatalf("got %v, want ErrNoTrace", err)
	}
	var nilObs *feves.Observer
	if err := nilObs.ExportTrace(io.Discard); err != feves.ErrNoTrace {
		t.Fatalf("nil observer ExportTrace: got %v, want ErrNoTrace", err)
	}
	if err := nilObs.WriteFlight(io.Discard); err != nil || nilObs.FlightBundles() != nil {
		t.Fatal("nil observer introspection not inert")
	}

	// The pool's capacity accessor: one slot per platform device.
	p, err := feves.NewPool(feves.SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(feves.SysNFK().Devices()); p.Capacity() != want {
		t.Fatalf("pool capacity %d, want %d", p.Capacity(), want)
	}
}
