package feves

import (
	"testing"

	"feves/internal/video"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Width: 1920, Height: 1088}.withDefaults()
	if c.SearchArea != 32 || c.RefFrames != 1 || c.IQP != 27 || c.PQP != 28 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestPlatformAccessors(t *testing.T) {
	pl := SysHK()
	if pl.Name() != "SysHK" {
		t.Fatal("name wrong")
	}
	devs := pl.Devices()
	if len(devs) != 5 || devs[0] != "GPU_K" || devs[1] != "CPU_H-core" {
		t.Fatalf("devices %v", devs)
	}
}

func TestSimulationReproducesHeadline(t *testing.T) {
	cfg := Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1}
	sys, err := SteadyFPS(cfg, SysHK())
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := SteadyFPS(cfg, GPUKepler())
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := SteadyFPS(cfg, CPUHaswell())
	if err != nil {
		t.Fatal(err)
	}
	if sys < 25 {
		t.Fatalf("SysHK %.1f fps, expected real-time", sys)
	}
	if !(sys > gpu && gpu > cpu) {
		t.Fatalf("ordering violated: sys %.1f gpu %.1f cpu %.1f", sys, gpu, cpu)
	}
}

func TestSimulationRunAndReports(t *testing.T) {
	sim, err := NewSimulation(Config{Width: 1920, Height: 1088}, SysNF())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Intra || reports[0].Seconds != 0 {
		t.Fatal("first report should be the intra frame")
	}
	r := reports[4]
	if r.FPS <= 0 || r.Tau1 <= 0 || r.Tau2 < r.Tau1 || r.Seconds < r.Tau2 {
		t.Fatalf("inconsistent report %+v", r)
	}
	sum := 0
	for _, v := range r.MERows {
		sum += v
	}
	if sum != 68 {
		t.Fatalf("ME rows sum %d, want 68", sum)
	}
}

func TestEncoderEndToEnd(t *testing.T) {
	const w, h, n = 64, 48, 4
	cfg := Config{Width: w, Height: h, SearchArea: 16, RefFrames: 2}
	enc, err := NewEncoder(cfg, SysNF())
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSynthetic(w, h, n, 11)
	for i := 0; i < n; i++ {
		rep, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bits <= 0 {
			t.Fatalf("frame %d reports no bits", i)
		}
		if i > 0 && rep.PSNRY < 25 {
			t.Fatalf("frame %d PSNR %.1f suspiciously low", i, rep.PSNRY)
		}
	}
	frames, err := Verify(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if frames != n {
		t.Fatalf("verified %d frames, want %d", frames, n)
	}
}

func TestEncodeYUVRejectsBadSize(t *testing.T) {
	enc, err := NewEncoder(Config{Width: 64, Height: 48}, GPUFermi())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeYUV(make([]byte, 10)); err == nil {
		t.Fatal("short YUV buffer accepted")
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	if _, err := Verify([]byte("garbage")); err == nil {
		t.Fatal("garbage verified")
	}
}

func TestCustomPlatform(t *testing.T) {
	pl, err := CustomPlatform("lab", []float64{1.5, 0.8}, 8, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Devices()) != 10 {
		t.Fatalf("devices %v", pl.Devices())
	}
	if _, err := CustomPlatform("bad", []float64{-1}, 0, 0); err == nil {
		t.Fatal("negative speed accepted")
	}
	if _, err := CustomPlatform("bad", nil, 2, 0); err == nil {
		t.Fatal("zero CPU speed accepted")
	}
}

func TestBalancerKinds(t *testing.T) {
	cfg := Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1}
	lpFPS, err := SteadyFPS(cfg, SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Balancer = BalancerEquidistant
	eqFPS, err := SteadyFPS(cfg, SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	if lpFPS <= eqFPS {
		t.Fatalf("LP balancer (%.1f fps) should beat equidistant (%.1f fps) on a heterogeneous system", lpFPS, eqFPS)
	}
	cfg.Balancer = BalancerProportional
	if _, err := SteadyFPS(cfg, SysNFF()); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbAPI(t *testing.T) {
	pl := SysHK()
	pl.Perturb(func(frame, dev int) float64 {
		if frame == 3 && dev == 0 {
			return 4
		}
		return 1
	})
	sim, err := NewSimulation(Config{Width: 1920, Height: 1088}, pl)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if reports[3].Seconds <= reports[2].Seconds*1.2 {
		t.Fatalf("perturbed frame not slower: %v vs %v", reports[3].Seconds, reports[2].Seconds)
	}
	if reports[6].Seconds > reports[2].Seconds*1.25 {
		t.Fatalf("framework did not recover: %v vs %v", reports[6].Seconds, reports[2].Seconds)
	}
}

func TestArithmeticCodingOption(t *testing.T) {
	const w, h, n = 64, 48, 4
	src := video.NewSynthetic(w, h, n, 31)
	run := func(arith bool) (int, []byte) {
		cfg := Config{Width: w, Height: h, SearchArea: 16, ArithmeticCoding: arith}
		enc, err := NewEncoder(cfg, SysHK())
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < n; i++ {
			rep, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV())
			if err != nil {
				t.Fatal(err)
			}
			total += rep.Bits
		}
		return total, enc.Bitstream()
	}
	vlcBits, _ := run(false)
	arithBits, stream := run(true)
	if arithBits >= vlcBits {
		t.Fatalf("arithmetic coding (%d bits) should beat VLC (%d bits)", arithBits, vlcBits)
	}
	if frames, err := Verify(stream); err != nil || frames != n {
		t.Fatalf("arithmetic stream verification: %d frames, %v", frames, err)
	}
}

func TestFastMEOption(t *testing.T) {
	const w, h, n = 64, 48, 4
	src := video.NewSynthetic(w, h, n, 51)
	encode := func(algo string) []byte {
		cfg := Config{Width: w, Height: h, SearchArea: 16, FastME: algo}
		enc, err := NewEncoder(cfg, GPUFermi())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
				t.Fatal(err)
			}
		}
		return enc.Bitstream()
	}
	for _, algo := range []string{"", "full-search", "three-step", "diamond"} {
		stream := encode(algo)
		if frames, err := Verify(stream); err != nil || frames != n {
			t.Fatalf("algo %q: %d frames, %v", algo, frames, err)
		}
	}
	if _, err := NewEncoder(Config{Width: w, Height: h, FastME: "hexagon"}, GPUFermi()); err == nil {
		t.Fatal("unknown ME algorithm accepted")
	}
}

func TestRateControlOption(t *testing.T) {
	const w, h, n, target = 64, 64, 16, 6000
	src := video.NewSynthetic(w, h, n, 71)
	cfg := Config{Width: w, Height: h, SearchArea: 16, TargetBitsPerFrame: target}
	enc, err := NewEncoder(cfg, SysHK())
	if err != nil {
		t.Fatal(err)
	}
	var late, count int
	for i := 0; i < n; i++ {
		rep, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV())
		if err != nil {
			t.Fatal(err)
		}
		if i >= n/2 && !rep.Intra {
			late += rep.Bits
			count++
		}
	}
	avg := float64(late) / float64(count)
	if avg < target*0.5 || avg > target*1.6 {
		t.Fatalf("steady bits/frame %.0f far from target %d", avg, target)
	}
	if frames, err := Verify(enc.Bitstream()); err != nil || frames != n {
		t.Fatalf("rate-controlled stream: %d frames, %v", frames, err)
	}
}

func TestParallelOptionBitExact(t *testing.T) {
	const w, h, n = 64, 48, 4
	src := video.NewSynthetic(w, h, n, 88)
	run := func(parallel bool) []byte {
		cfg := Config{Width: w, Height: h, SearchArea: 16, Parallel: parallel}
		enc, err := NewEncoder(cfg, SysNFF())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
				t.Fatal(err)
			}
		}
		return enc.Bitstream()
	}
	a, b := run(false), run(true)
	if string(a) != string(b) {
		t.Fatal("Parallel changed the bitstream")
	}
}

func TestPredictionAccuracyConverges(t *testing.T) {
	// The performance characterization's τtot predictions track the
	// simulated reality within a modest band once converged.
	sim, err := NewSimulation(Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2}, SysHK())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, r := range reports[6:] { // past ramp-up and initialization
		if r.PredictedSeconds == 0 {
			t.Fatalf("frame %d: no prediction recorded", r.Frame)
		}
		err := r.Seconds/r.PredictedSeconds - 1
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst prediction error %.1f%% exceeds 25%%", worst*100)
	}
}

func TestBalancerHysteresisStabilizes(t *testing.T) {
	spread := func(h float64) float64 {
		cfg := Config{Width: 1920, Height: 1088, SearchArea: 64, RefFrames: 1, BalancerHysteresis: h}
		sim, err := NewSimulation(cfg, SysHK())
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sim.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 1e9, 0.0
		for _, r := range reports[10:] {
			if r.Seconds < lo {
				lo = r.Seconds
			}
			if r.Seconds > hi {
				hi = r.Seconds
			}
		}
		return (hi - lo) / lo
	}
	without, with := spread(0), spread(0.03)
	if with >= without {
		t.Fatalf("hysteresis did not stabilize: %.1f%% -> %.1f%%", 100*without, 100*with)
	}
	if with > 0.08 {
		t.Fatalf("hysteresis spread %.1f%% still too wide", 100*with)
	}
}

func TestSlicesOption(t *testing.T) {
	const w, h, n = 64, 96, 3
	src := video.NewSynthetic(w, h, n, 121)
	cfg := Config{Width: w, Height: h, SearchArea: 16, Slices: 3, ArithmeticCoding: true}
	enc, err := NewEncoder(cfg, SysNF())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
			t.Fatal(err)
		}
	}
	if frames, err := Verify(enc.Bitstream()); err != nil || frames != n {
		t.Fatalf("sliced stream: %d frames, %v", frames, err)
	}
}

func TestAllPublicPlatformsSimulate(t *testing.T) {
	cfg := Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1}
	for _, p := range []struct {
		name string
		pl   *Platform
	}{
		{"CPUNehalem", CPUNehalem()},
		{"GPUTesla", GPUTesla()},
	} {
		fps, err := SteadyFPS(cfg, p.pl)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if fps <= 0 {
			t.Fatalf("%s: %v fps", p.name, fps)
		}
	}
	dual, err := CustomDualCopySysHK()
	if err != nil {
		t.Fatal(err)
	}
	single, err := SteadyFPS(cfg, SysHK())
	if err != nil {
		t.Fatal(err)
	}
	dualFPS, err := SteadyFPS(cfg, dual)
	if err != nil {
		t.Fatal(err)
	}
	if dualFPS < single*0.98 {
		t.Fatalf("dual-copy SysHK (%v) slower than single (%v)", dualFPS, single)
	}
}

func TestVerifyConcealing(t *testing.T) {
	const w, h, n = 64, 96, 3
	src := video.NewSynthetic(w, h, n, 131)
	cfg := Config{Width: w, Height: h, SearchArea: 16, Slices: 3, ArithmeticCoding: true}
	enc, err := NewEncoder(cfg, GPUFermi())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	// Clean stream: no concealment needed.
	frames, concealed, err := VerifyConcealing(stream)
	if err != nil || frames != n || concealed != 0 {
		t.Fatalf("clean stream: frames=%d concealed=%d err=%v", frames, concealed, err)
	}
	// Corrupt residual bytes until the strict verifier fails, then show
	// the concealing one survives.
	for pos := 60; pos < len(stream); pos += 3 {
		corrupt := append([]byte(nil), stream...)
		corrupt[pos] ^= 0x3C
		if _, err := Verify(corrupt); err == nil {
			continue // parsed by chance
		}
		frames, concealed, err := VerifyConcealing(corrupt)
		if err != nil {
			continue // header corruption is not concealable; try another byte
		}
		if frames == n && concealed > 0 {
			return // demonstrated
		}
	}
	t.Skip("no byte flip produced a concealable corruption in this stream")
}
