package feves_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"feves"
	"feves/internal/video"
)

// failoverEncode encodes a short synthetic sequence on SysNFK with the
// given fault spec and deadline slack, returning the bitstream.
// The search area is 64 so the LP keeps every device loaded: with the
// calibrated profiles an SA-32 frame at this size is cheap enough that the
// balancer consolidates all rows onto GPU_K, and a dead-but-idle GPU_F
// would never miss a deadline.
func failoverEncode(t *testing.T, faults string, slack float64, obs *feves.Observer) []byte {
	t.Helper()
	const w, h, frames = 320, 176, 14
	pl := feves.SysNFK()
	if err := pl.InjectFaults(faults); err != nil {
		t.Fatal(err)
	}
	enc, err := feves.NewEncoder(feves.Config{
		Width: w, Height: h, SearchArea: 64, RefFrames: 1,
		DeadlineSlack: slack, Observer: obs,
	}, pl)
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSynthetic(w, h, frames, 1)
	for {
		frame, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.EncodeYUV(frame.PackedYUV()); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Bitstream()
}

// TestFailoverBitExactOnGPUDeath is the tentpole acceptance check: killing
// either GPU of SysNFK mid-run must complete the encode bit-exactly on the
// reduced platform, with the exclusion visible in the telemetry events and
// the feves_device_excluded_total counter.
func TestFailoverBitExactOnGPUDeath(t *testing.T) {
	clean := failoverEncode(t, "", 0, nil)
	if n, err := feves.Verify(clean); err != nil || n != 14 {
		t.Fatalf("clean stream: %d frames, %v", n, err)
	}
	for _, tc := range []struct {
		gpu string
		dev int
	}{
		{"GPU_F", 0},
		{"GPU_K", 1},
	} {
		t.Run(tc.gpu, func(t *testing.T) {
			var events bytes.Buffer
			obs, err := feves.NewObserver(feves.ObserverConfig{
				MetricsAddr: "127.0.0.1:0",
				Events:      &events,
			})
			if err != nil {
				t.Fatal(err)
			}
			stream := failoverEncode(t, fmt.Sprintf("die:%s@6", tc.gpu), 3, obs)
			if !bytes.Equal(stream, clean) {
				t.Fatalf("faulted stream differs from clean run (%d vs %d bytes)",
					len(stream), len(clean))
			}

			var excluded, retried bool
			dec := json.NewDecoder(&events)
			for dec.More() {
				var ev struct {
					Type   string `json:"type"`
					Device int    `json:"device"`
					To     string `json:"to"`
				}
				if err := dec.Decode(&ev); err != nil {
					t.Fatal(err)
				}
				if ev.Type == "health_transition" && ev.To == "excluded" && ev.Device == tc.dev {
					excluded = true
				}
				if ev.Type == "frame_retry" {
					retried = true
				}
			}
			if !excluded {
				t.Errorf("no health_transition event excluding device %d", tc.dev)
			}
			if !retried {
				t.Errorf("no frame_retry event recorded")
			}

			resp, err := http.Get("http://" + obs.MetricsAddr() + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf(`feves_device_excluded_total{device="%d"} 1`, tc.dev)
			if !strings.Contains(string(body), want) {
				t.Errorf("metrics scrape missing %q", want)
			}
		})
	}
}

// TestFailoverDeathDuringInitialization kills a GPU on the very first
// inter-frame, before any LP prediction exists: the per-task stall budget
// must catch it and the encode still finishes bit-exactly.
func TestFailoverDeathDuringInitialization(t *testing.T) {
	clean := failoverEncode(t, "", 0, nil)
	stream := failoverEncode(t, "die:GPU_F@1", 3, nil)
	if !bytes.Equal(stream, clean) {
		t.Fatalf("stream after init-phase death differs from clean run")
	}
}

// TestArmedSlackWithoutFaultsIsByteIdentical pins the no-fault guarantee:
// arming DeadlineSlack without injecting anything must not change a single
// byte of output or any scheduling decision.
func TestArmedSlackWithoutFaultsIsByteIdentical(t *testing.T) {
	plain := failoverEncode(t, "", 0, nil)
	armed := failoverEncode(t, "", 3, nil)
	if !bytes.Equal(plain, armed) {
		t.Fatalf("DeadlineSlack changed the bitstream with no faults injected")
	}

	run := func(slack float64) []feves.FrameReport {
		sim, err := feves.NewSimulation(feves.Config{
			Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2,
			DeadlineSlack: slack,
		}, feves.SysNFK())
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sim.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reports {
			reports[i].SchedOverhead = 0 // real wall-clock, never reproducible
		}
		return reports
	}
	if a, b := run(0), run(3); !reflect.DeepEqual(a, b) {
		t.Fatalf("DeadlineSlack changed the simulated schedule with no faults injected")
	}
}

// TestArmedSlackFrameParallelIsByteIdentical extends the no-fault pin to
// two frames in flight. The assertions are keyed by {frame, attempt,
// chain}: arming the pair deadlines must not change which attempt a frame
// completes on, which reference chain it encodes against, or any of its
// timings — and the coded bytes must match exactly.
func TestArmedSlackFrameParallelIsByteIdentical(t *testing.T) {
	encode := func(slack float64) []byte {
		t.Helper()
		const w, h, frames = 256, 144, 12
		enc, err := feves.NewEncoder(feves.Config{
			Width: w, Height: h, SearchArea: 32, RefFrames: 1,
			FrameParallel: true, DeadlineSlack: slack,
		}, feves.SysNFK())
		if err != nil {
			t.Fatal(err)
		}
		src := video.NewSynthetic(w, h, frames, 1)
		var pending []byte
		for {
			cur := pending
			pending = nil
			if cur == nil {
				frame, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				cur = frame.PackedYUV()
			}
			var next []byte
			if frame, err := src.Next(); err == nil {
				next = frame.PackedYUV()
			} else if err != io.EOF {
				t.Fatal(err)
			}
			reps, err := enc.EncodeYUVPair(cur, next)
			if err != nil {
				t.Fatal(err)
			}
			if len(reps) == 1 && next != nil {
				pending = next
			}
		}
		return enc.Bitstream()
	}
	if plain, armed := encode(0), encode(3); !bytes.Equal(plain, armed) {
		t.Fatalf("DeadlineSlack changed the frame-parallel bitstream with no faults injected")
	}

	type key struct {
		frame   int
		attempt int
		chain   int
	}
	run := func(slack float64) map[key]feves.FrameReport {
		sim, err := feves.NewSimulation(feves.Config{
			Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2,
			FrameParallel: true, DeadlineSlack: slack,
		}, feves.SysNFK())
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sim.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[key]feves.FrameReport, len(reports))
		for _, r := range reports {
			r.SchedOverhead = 0 // real wall-clock, never reproducible
			k := key{frame: r.Frame, attempt: r.Attempt, chain: r.Chain}
			if _, dup := out[k]; dup {
				t.Fatalf("duplicate report for frame %d attempt %d chain %d", r.Frame, r.Attempt, r.Chain)
			}
			out[k] = r
		}
		return out
	}
	plain, armed := run(0), run(3)
	for k, want := range plain {
		got, ok := armed[k]
		if !ok {
			t.Fatalf("armed run lost {frame %d, attempt %d, chain %d} — slack changed an attempt count or chain assignment",
				k.frame, k.attempt, k.chain)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("{frame %d, attempt %d, chain %d}: report changed under armed slack:\n got %+v\nwant %+v",
				k.frame, k.attempt, k.chain, got, want)
		}
	}
	if len(armed) != len(plain) {
		t.Fatalf("armed run has %d report keys, plain has %d", len(armed), len(plain))
	}
}
