package h264

// PartMode enumerates the seven inter-prediction macroblock partitionings of
// H.264/AVC considered by the paper: 16×16, 16×8, 8×16, 8×8, 8×4, 4×8 and
// 4×4 pixels. Following the paper's formulation each macroblock is
// partitioned uniformly by one mode (no per-8×8 sub-mode mixing).
type PartMode uint8

const (
	Part16x16 PartMode = iota
	Part16x8
	Part8x16
	Part8x8
	Part8x4
	Part4x8
	Part4x4
	NumPartModes = 7
)

// partDims holds the width and height in pixels of one partition per mode.
var partDims = [NumPartModes][2]int{
	{16, 16}, {16, 8}, {8, 16}, {8, 8}, {8, 4}, {4, 8}, {4, 4},
}

// partCounts holds the number of partitions per macroblock for each mode:
// 1, 2, 2, 4, 8, 8, 16 — 41 partitions in total.
var partCounts = [NumPartModes]int{1, 2, 2, 4, 8, 8, 16}

// TotalPartitions is the number of distinct partitions tracked per
// macroblock across all seven modes (1+2+2+4+8+8+16).
const TotalPartitions = 41

func (m PartMode) String() string {
	switch m {
	case Part16x16:
		return "16x16"
	case Part16x8:
		return "16x8"
	case Part8x16:
		return "8x16"
	case Part8x8:
		return "8x8"
	case Part8x4:
		return "8x4"
	case Part4x8:
		return "4x8"
	case Part4x4:
		return "4x4"
	}
	return "invalid"
}

// Size returns the partition width and height in pixels for the mode.
func (m PartMode) Size() (w, h int) { return partDims[m][0], partDims[m][1] }

// Count returns the number of partitions a macroblock has under this mode.
func (m PartMode) Count() int { return partCounts[m] }

// Offset returns the pixel offset of partition k (raster order) within the
// macroblock.
func (m PartMode) Offset(k int) (x, y int) {
	w, h := m.Size()
	perRow := MBSize / w
	return (k % perRow) * w, (k / perRow) * h
}

// Base returns the index of this mode's first partition within a flat
// 41-entry per-macroblock partition array.
func (m PartMode) Base() int {
	base := 0
	for i := PartMode(0); i < m; i++ {
		base += partCounts[i]
	}
	return base
}

// Blocks4x4 returns the indices (raster order, 0..15) of the 4×4 luma
// blocks covered by partition k of this mode. Used by the SAD-reuse motion
// estimation kernel, which computes sixteen 4×4 SADs per candidate and
// aggregates them into all 41 partition SADs.
func (m PartMode) Blocks4x4(k int) []int {
	x, y := m.Offset(k)
	w, h := m.Size()
	var out []int
	for by := y / 4; by < (y+h)/4; by++ {
		for bx := x / 4; bx < (x+w)/4; bx++ {
			out = append(out, by*4+bx)
		}
	}
	return out
}

// AllModes lists every partition mode in order.
func AllModes() []PartMode {
	return []PartMode{Part16x16, Part16x8, Part8x16, Part8x8, Part8x4, Part4x8, Part4x4}
}
