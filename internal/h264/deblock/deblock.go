// Package deblock implements the DBL inter-loop module of the FEVES
// reproduction: the H.264/AVC in-loop deblocking filter with the standard
// α/β thresholds and tc0 clipping tables, boundary-strength derivation from
// coding mode, coded coefficients, reference indexes and motion-vector
// differences, and the normal (bS 1–3) and strong (bS 4) edge filters for
// luma and chroma.
//
// Macroblocks are filtered in raster order (vertical edges, then horizontal
// edges), which is why the paper assigns DBL — with its cross-macroblock
// dependencies — to the single-device R* group rather than load-balancing
// it across devices.
package deblock

import (
	"feves/internal/h264"
)

// alphaTab and betaTab are the edge-activity thresholds of Table 8-16 of
// the H.264/AVC standard, indexed by QP (no offset support).
var alphaTab = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20, 22, 25, 28,
	32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144,
	162, 182, 203, 226, 255, 255,
}

var betaTab = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
	9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15,
	16, 16, 17, 17, 18, 18,
}

// tc0Tab is the clipping table of Table 8-17, indexed by QP and bS−1.
var tc0Tab = [52][3]int32{
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0},
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0},
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 1},
	{0, 0, 1}, {0, 0, 1}, {0, 0, 1}, {0, 1, 1}, {0, 1, 1}, {1, 1, 1},
	{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 2}, {1, 1, 2}, {1, 1, 2},
	{1, 1, 2}, {1, 2, 3}, {1, 2, 3}, {2, 2, 3}, {2, 2, 4}, {2, 3, 4},
	{2, 3, 4}, {3, 3, 5}, {3, 4, 6}, {3, 4, 6}, {4, 5, 7}, {4, 5, 8},
	{5, 6, 9}, {6, 7, 10}, {6, 8, 11}, {7, 9, 13}, {8, 10, 14},
	{9, 12, 16}, {10, 13, 18}, {11, 15, 20}, {13, 17, 23}, {14, 19, 25},
}

// BlockInfo carries the per-4×4-block coding state the filter needs to
// derive boundary strengths. Block (bx, by) covers luma pixels
// [4bx, 4bx+4) × [4by, 4by+4).
type BlockInfo struct {
	BW, BH int       // grid size in 4×4 blocks
	MBW    int       // macroblocks per row (BW/4)
	NZ     []bool    // non-zero coded coefficients per block
	MV     []h264.MV // quarter-pel vector per block
	Ref    []uint8   // reference index per block
	Intra  []bool    // per macroblock
}

// NewBlockInfo allocates the coding-state grid for a w×h frame.
func NewBlockInfo(w, h int) *BlockInfo {
	bw, bh := w/4, h/4
	mbw := w / h264.MBSize
	n := bw * bh
	return &BlockInfo{
		BW: bw, BH: bh, MBW: mbw,
		NZ:    make([]bool, n),
		MV:    make([]h264.MV, n),
		Ref:   make([]uint8, n),
		Intra: make([]bool, mbw*(h/h264.MBSize)),
	}
}

func (bi *BlockInfo) idx(bx, by int) int { return by*bi.BW + bx }

// SetBlock records the state of 4×4 block (bx, by).
func (bi *BlockInfo) SetBlock(bx, by int, nz bool, mv h264.MV, ref uint8) {
	i := bi.idx(bx, by)
	bi.NZ[i] = nz
	bi.MV[i] = mv
	bi.Ref[i] = ref
}

// SetIntra marks macroblock (mbx, mby) as intra coded.
func (bi *BlockInfo) SetIntra(mbx, mby int, intra bool) {
	bi.Intra[mby*bi.MBW+mbx] = intra
}

func (bi *BlockInfo) intraAtBlock(bx, by int) bool {
	return bi.Intra[(by/4)*bi.MBW+bx/4]
}

// BoundaryStrength derives bS for the edge between 4×4 blocks p and q
// (block coordinates; q is to the right of or below p). mbEdge reports
// whether the edge coincides with a macroblock boundary.
func (bi *BlockInfo) BoundaryStrength(pbx, pby, qbx, qby int, mbEdge bool) int {
	if bi.intraAtBlock(pbx, pby) || bi.intraAtBlock(qbx, qby) {
		if mbEdge {
			return 4
		}
		return 3
	}
	p, q := bi.idx(pbx, pby), bi.idx(qbx, qby)
	if bi.NZ[p] || bi.NZ[q] {
		return 2
	}
	if bi.Ref[p] != bi.Ref[q] {
		return 1
	}
	dx := int32(bi.MV[p].X) - int32(bi.MV[q].X)
	dy := int32(bi.MV[p].Y) - int32(bi.MV[q].Y)
	if dx >= 4 || dx <= -4 || dy >= 4 || dy <= -4 {
		return 1
	}
	return 0
}

// FilterFrame applies the in-loop filter to the reconstructed frame in
// place. Within each plane, macroblocks are processed in raster order with
// all vertical edges filtered before the horizontal edges, per clause 8.7
// of the standard. The three planes are filtered as independent passes:
// they share no samples and boundary strengths depend only on BlockInfo,
// so the per-plane passes are bit-exact with the interleaved per-MB order
// (and may run concurrently — see FilterPlane).
func FilterFrame(f *h264.Frame, bi *BlockInfo, qp int) {
	for p := 0; p < 3; p++ {
		FilterPlane(f, bi, qp, p)
	}
	f.ExtendBorders()
}

// FilterPlane filters one plane of the frame completely: plane 0 is luma,
// 1 is Cb, 2 is Cr. Calls on distinct planes touch disjoint memory and may
// run concurrently; their union equals FilterFrame minus the final border
// extension. Within a plane the macroblock raster order is load-bearing
// (horizontal MB-edge filtering writes p-samples into the row above), so a
// single plane must not be split across goroutines.
func FilterPlane(f *h264.Frame, bi *BlockInfo, qp, plane int) {
	switch plane {
	case 0:
		filterLumaPlane(f.Y, bi, qp, f.MBWidth(), f.MBHeight())
	case 1:
		filterChromaPlane(f.Cb, bi, qp, f.MBWidth(), f.MBHeight())
	case 2:
		filterChromaPlane(f.Cr, bi, qp, f.MBWidth(), f.MBHeight())
	default:
		panic("deblock: plane index out of range")
	}
}

func filterLumaPlane(pl *h264.Plane, bi *BlockInfo, qp, mbw, mbh int) {
	buf, stride := pl.Raw(), pl.Stride
	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			// Vertical luma edges at x offsets 0, 4, 8, 12.
			for e := 0; e < 4; e++ {
				x := mbx*16 + e*4
				if x == 0 {
					continue // picture boundary
				}
				for seg := 0; seg < 4; seg++ {
					y := mby*16 + seg*4
					bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
					if bs == 0 {
						continue
					}
					o := pl.Idx(x, y)
					for r := 0; r < 4; r++ {
						filterLumaEdge(buf, o+r*stride, 1, bs, qp)
					}
				}
			}
			// Horizontal luma edges at y offsets 0, 4, 8, 12.
			for e := 0; e < 4; e++ {
				y := mby*16 + e*4
				if y == 0 {
					continue
				}
				for seg := 0; seg < 4; seg++ {
					x := mbx*16 + seg*4
					bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
					if bs == 0 {
						continue
					}
					o := pl.Idx(x, y)
					for c := 0; c < 4; c++ {
						filterLumaEdge(buf, o+c, stride, bs, qp)
					}
				}
			}
		}
	}
}

// filterChromaPlane filters one chroma plane: luma edges 0 and 8 map to
// chroma edges 0 and 4.
func filterChromaPlane(pl *h264.Plane, bi *BlockInfo, qp, mbw, mbh int) {
	buf, stride := pl.Raw(), pl.Stride
	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			for _, e := range [2]int{0, 8} {
				x := mbx*16 + e
				if x == 0 {
					continue
				}
				for seg := 0; seg < 4; seg++ {
					y := mby*16 + seg*4
					bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
					if bs == 0 {
						continue
					}
					o := pl.Idx(x/2, y/2)
					for r := 0; r < 2; r++ {
						filterChromaEdge(buf, o+r*stride, 1, bs, qp)
					}
				}
			}
			for _, e := range [2]int{0, 8} {
				y := mby*16 + e
				if y == 0 {
					continue
				}
				for seg := 0; seg < 4; seg++ {
					x := mbx*16 + seg*4
					bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
					if bs == 0 {
						continue
					}
					o := pl.Idx(x/2, y/2)
					for c := 0; c < 2; c++ {
						filterChromaEdge(buf, o+c, stride, bs, qp)
					}
				}
			}
		}
	}
}

func clip3(lo, hi, v int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clip255(v int32) uint8 {
	return uint8(clip3(0, 255, v))
}

// filterLumaEdge implements clauses 8.7.2.3/8.7.2.4 on the raw plane
// buffer: q0 is at buf[o] and sample i of the edge at buf[o+i*step], so
// step 1 filters one row of a vertical edge and step Stride one column of
// a horizontal edge.
func filterLumaEdge(buf []uint8, o, step, bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1, p2, p3 := int32(buf[o-step]), int32(buf[o-2*step]), int32(buf[o-3*step]), int32(buf[o-4*step])
	q0, q1, q2, q3 := int32(buf[o]), int32(buf[o+step]), int32(buf[o+2*step]), int32(buf[o+3*step])
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	ap, aq := abs32(p2-p0), abs32(q2-q0)
	if bs == 4 {
		if ap < beta && abs32(p0-q0) < (alpha>>2)+2 {
			buf[o-step] = clip255((p2 + 2*p1 + 2*p0 + 2*q0 + q1 + 4) >> 3)
			buf[o-2*step] = clip255((p2 + p1 + p0 + q0 + 2) >> 2)
			buf[o-3*step] = clip255((2*p3 + 3*p2 + p1 + p0 + q0 + 4) >> 3)
		} else {
			buf[o-step] = clip255((2*p1 + p0 + q1 + 2) >> 2)
		}
		if aq < beta && abs32(p0-q0) < (alpha>>2)+2 {
			buf[o] = clip255((q2 + 2*q1 + 2*q0 + 2*p0 + p1 + 4) >> 3)
			buf[o+step] = clip255((q2 + q1 + q0 + p0 + 2) >> 2)
			buf[o+2*step] = clip255((2*q3 + 3*q2 + q1 + q0 + p0 + 4) >> 3)
		} else {
			buf[o] = clip255((2*q1 + q0 + p1 + 2) >> 2)
		}
		return
	}
	tc0 := tc0Tab[qp][bs-1]
	tc := tc0
	if ap < beta {
		tc++
	}
	if aq < beta {
		tc++
	}
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	buf[o-step] = clip255(p0 + delta)
	buf[o] = clip255(q0 - delta)
	if ap < beta {
		buf[o-2*step] = clip255(p1 + clip3(-tc0, tc0, (p2+((p0+q0+1)>>1)-2*p1)>>1))
	}
	if aq < beta {
		buf[o+step] = clip255(q1 + clip3(-tc0, tc0, (q2+((p0+q0+1)>>1)-2*q1)>>1))
	}
}

// filterChromaEdge is the chroma counterpart of filterLumaEdge, same
// (buf, o, step) addressing.
func filterChromaEdge(buf []uint8, o, step, bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1 := int32(buf[o-step]), int32(buf[o-2*step])
	q0, q1 := int32(buf[o]), int32(buf[o+step])
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	if bs == 4 {
		buf[o-step] = clip255((2*p1 + p0 + q1 + 2) >> 2)
		buf[o] = clip255((2*q1 + q0 + p1 + 2) >> 2)
		return
	}
	tc := tc0Tab[qp][bs-1] + 1
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	buf[o-step] = clip255(p0 + delta)
	buf[o] = clip255(q0 - delta)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
