// Package deblock implements the DBL inter-loop module of the FEVES
// reproduction: the H.264/AVC in-loop deblocking filter with the standard
// α/β thresholds and tc0 clipping tables, boundary-strength derivation from
// coding mode, coded coefficients, reference indexes and motion-vector
// differences, and the normal (bS 1–3) and strong (bS 4) edge filters for
// luma and chroma.
//
// Macroblocks are filtered in raster order (vertical edges, then horizontal
// edges), which is why the paper assigns DBL — with its cross-macroblock
// dependencies — to the single-device R* group rather than load-balancing
// it across devices.
package deblock

import (
	"feves/internal/h264"
)

// alphaTab and betaTab are the edge-activity thresholds of Table 8-16 of
// the H.264/AVC standard, indexed by QP (no offset support).
var alphaTab = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	4, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 17, 20, 22, 25, 28,
	32, 36, 40, 45, 50, 56, 63, 71, 80, 90, 101, 113, 127, 144,
	162, 182, 203, 226, 255, 255,
}

var betaTab = [52]int32{
	0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
	2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 6, 6, 7, 7, 8, 8,
	9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14, 15, 15,
	16, 16, 17, 17, 18, 18,
}

// tc0Tab is the clipping table of Table 8-17, indexed by QP and bS−1.
var tc0Tab = [52][3]int32{
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0},
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0},
	{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 1},
	{0, 0, 1}, {0, 0, 1}, {0, 0, 1}, {0, 1, 1}, {0, 1, 1}, {1, 1, 1},
	{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 2}, {1, 1, 2}, {1, 1, 2},
	{1, 1, 2}, {1, 2, 3}, {1, 2, 3}, {2, 2, 3}, {2, 2, 4}, {2, 3, 4},
	{2, 3, 4}, {3, 3, 5}, {3, 4, 6}, {3, 4, 6}, {4, 5, 7}, {4, 5, 8},
	{5, 6, 9}, {6, 7, 10}, {6, 8, 11}, {7, 9, 13}, {8, 10, 14},
	{9, 12, 16}, {10, 13, 18}, {11, 15, 20}, {13, 17, 23}, {14, 19, 25},
}

// BlockInfo carries the per-4×4-block coding state the filter needs to
// derive boundary strengths. Block (bx, by) covers luma pixels
// [4bx, 4bx+4) × [4by, 4by+4).
type BlockInfo struct {
	BW, BH int       // grid size in 4×4 blocks
	MBW    int       // macroblocks per row (BW/4)
	NZ     []bool    // non-zero coded coefficients per block
	MV     []h264.MV // quarter-pel vector per block
	Ref    []uint8   // reference index per block
	Intra  []bool    // per macroblock
}

// NewBlockInfo allocates the coding-state grid for a w×h frame.
func NewBlockInfo(w, h int) *BlockInfo {
	bw, bh := w/4, h/4
	mbw := w / h264.MBSize
	n := bw * bh
	return &BlockInfo{
		BW: bw, BH: bh, MBW: mbw,
		NZ:    make([]bool, n),
		MV:    make([]h264.MV, n),
		Ref:   make([]uint8, n),
		Intra: make([]bool, mbw*(h/h264.MBSize)),
	}
}

func (bi *BlockInfo) idx(bx, by int) int { return by*bi.BW + bx }

// SetBlock records the state of 4×4 block (bx, by).
func (bi *BlockInfo) SetBlock(bx, by int, nz bool, mv h264.MV, ref uint8) {
	i := bi.idx(bx, by)
	bi.NZ[i] = nz
	bi.MV[i] = mv
	bi.Ref[i] = ref
}

// SetIntra marks macroblock (mbx, mby) as intra coded.
func (bi *BlockInfo) SetIntra(mbx, mby int, intra bool) {
	bi.Intra[mby*bi.MBW+mbx] = intra
}

func (bi *BlockInfo) intraAtBlock(bx, by int) bool {
	return bi.Intra[(by/4)*bi.MBW+bx/4]
}

// BoundaryStrength derives bS for the edge between 4×4 blocks p and q
// (block coordinates; q is to the right of or below p). mbEdge reports
// whether the edge coincides with a macroblock boundary.
func (bi *BlockInfo) BoundaryStrength(pbx, pby, qbx, qby int, mbEdge bool) int {
	if bi.intraAtBlock(pbx, pby) || bi.intraAtBlock(qbx, qby) {
		if mbEdge {
			return 4
		}
		return 3
	}
	p, q := bi.idx(pbx, pby), bi.idx(qbx, qby)
	if bi.NZ[p] || bi.NZ[q] {
		return 2
	}
	if bi.Ref[p] != bi.Ref[q] {
		return 1
	}
	dx := int32(bi.MV[p].X) - int32(bi.MV[q].X)
	dy := int32(bi.MV[p].Y) - int32(bi.MV[q].Y)
	if dx >= 4 || dx <= -4 || dy >= 4 || dy <= -4 {
		return 1
	}
	return 0
}

// FilterFrame applies the in-loop filter to the reconstructed frame in
// place. Macroblocks are processed in raster order; within each macroblock
// all vertical edges are filtered before the horizontal edges, per clause
// 8.7 of the standard.
func FilterFrame(f *h264.Frame, bi *BlockInfo, qp int) {
	mbw, mbh := f.MBWidth(), f.MBHeight()
	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			filterMB(f, bi, qp, mbx, mby)
		}
	}
	f.ExtendBorders()
}

func filterMB(f *h264.Frame, bi *BlockInfo, qp int, mbx, mby int) {
	// Vertical luma edges at x offsets 0, 4, 8, 12.
	for e := 0; e < 4; e++ {
		x := mbx*16 + e*4
		if x == 0 {
			continue // picture boundary
		}
		for seg := 0; seg < 4; seg++ {
			y := mby*16 + seg*4
			bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
			if bs == 0 {
				continue
			}
			for r := 0; r < 4; r++ {
				filterLumaV(f.Y, x, y+r, bs, qp)
			}
		}
	}
	// Horizontal luma edges at y offsets 0, 4, 8, 12.
	for e := 0; e < 4; e++ {
		y := mby*16 + e*4
		if y == 0 {
			continue
		}
		for seg := 0; seg < 4; seg++ {
			x := mbx*16 + seg*4
			bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
			if bs == 0 {
				continue
			}
			for c := 0; c < 4; c++ {
				filterLumaH(f.Y, x+c, y, bs, qp)
			}
		}
	}
	// Chroma edges: luma edges 0 and 8 map to chroma 0 and 4.
	for _, cp := range []*h264.Plane{f.Cb, f.Cr} {
		for _, e := range []int{0, 8} {
			x := mbx*16 + e
			if x == 0 {
				continue
			}
			for seg := 0; seg < 4; seg++ {
				y := mby*16 + seg*4
				bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
				if bs == 0 {
					continue
				}
				for r := 0; r < 2; r++ {
					filterChromaV(cp, x/2, y/2+r, bs, qp)
				}
			}
		}
		for _, e := range []int{0, 8} {
			y := mby*16 + e
			if y == 0 {
				continue
			}
			for seg := 0; seg < 4; seg++ {
				x := mbx*16 + seg*4
				bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
				if bs == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					filterChromaH(cp, x/2+c, y/2, bs, qp)
				}
			}
		}
	}
}

func clip3(lo, hi, v int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clip255(v int32) uint8 {
	return uint8(clip3(0, 255, v))
}

// filterLumaV filters one row of the vertical edge at column x: samples
// p3..p0 are at x-4..x-1 and q0..q3 at x..x+3 of row y.
func filterLumaV(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x+i, y)) }
	set := func(i int, v uint8) { pl.Set(x+i, y, v) }
	filterLumaEdge(get, set, bs, qp)
}

// filterLumaH filters one column of the horizontal edge at row y.
func filterLumaH(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x, y+i)) }
	set := func(i int, v uint8) { pl.Set(x, y+i, v) }
	filterLumaEdge(get, set, bs, qp)
}

// filterLumaEdge implements clauses 8.7.2.3/8.7.2.4: get/set address
// samples relative to the edge, index −1 is p0 and index 0 is q0.
func filterLumaEdge(get func(int) int32, set func(int, uint8), bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1, p2, p3 := get(-1), get(-2), get(-3), get(-4)
	q0, q1, q2, q3 := get(0), get(1), get(2), get(3)
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	ap, aq := abs32(p2-p0), abs32(q2-q0)
	if bs == 4 {
		if ap < beta && abs32(p0-q0) < (alpha>>2)+2 {
			set(-1, clip255((p2+2*p1+2*p0+2*q0+q1+4)>>3))
			set(-2, clip255((p2+p1+p0+q0+2)>>2))
			set(-3, clip255((2*p3+3*p2+p1+p0+q0+4)>>3))
		} else {
			set(-1, clip255((2*p1+p0+q1+2)>>2))
		}
		if aq < beta && abs32(p0-q0) < (alpha>>2)+2 {
			set(0, clip255((q2+2*q1+2*q0+2*p0+p1+4)>>3))
			set(1, clip255((q2+q1+q0+p0+2)>>2))
			set(2, clip255((2*q3+3*q2+q1+q0+p0+4)>>3))
		} else {
			set(0, clip255((2*q1+q0+p1+2)>>2))
		}
		return
	}
	tc0 := tc0Tab[qp][bs-1]
	tc := tc0
	if ap < beta {
		tc++
	}
	if aq < beta {
		tc++
	}
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	set(-1, clip255(p0+delta))
	set(0, clip255(q0-delta))
	if ap < beta {
		set(-2, clip255(p1+clip3(-tc0, tc0, (p2+((p0+q0+1)>>1)-2*p1)>>1)))
	}
	if aq < beta {
		set(1, clip255(q1+clip3(-tc0, tc0, (q2+((p0+q0+1)>>1)-2*q1)>>1)))
	}
}

func filterChromaV(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x+i, y)) }
	set := func(i int, v uint8) { pl.Set(x+i, y, v) }
	filterChromaEdge(get, set, bs, qp)
}

func filterChromaH(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x, y+i)) }
	set := func(i int, v uint8) { pl.Set(x, y+i, v) }
	filterChromaEdge(get, set, bs, qp)
}

func filterChromaEdge(get func(int) int32, set func(int, uint8), bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1 := get(-1), get(-2)
	q0, q1 := get(0), get(1)
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	if bs == 4 {
		set(-1, clip255((2*p1+p0+q1+2)>>2))
		set(0, clip255((2*q1+q0+p1+2)>>2))
		return
	}
	tc := tc0Tab[qp][bs-1] + 1
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	set(-1, clip255(p0+delta))
	set(0, clip255(q0-delta))
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
