package deblock

import (
	"math/rand"
	"testing"

	"feves/internal/h264"
)

func flatFrame(w, h int, v uint8) *h264.Frame {
	f := h264.NewFrame(w, h)
	f.Y.Fill(v)
	f.Cb.Fill(v)
	f.Cr.Fill(v)
	return f
}

func TestTablesShape(t *testing.T) {
	for qp := 0; qp <= 15; qp++ {
		if alphaTab[qp] != 0 || betaTab[qp] != 0 {
			t.Fatalf("thresholds must be 0 for QP %d", qp)
		}
	}
	for qp := 17; qp < 52; qp++ {
		if alphaTab[qp] < alphaTab[qp-1] || betaTab[qp] < betaTab[qp-1] {
			t.Fatalf("threshold tables must be non-decreasing at QP %d", qp)
		}
		for b := 0; b < 3; b++ {
			if tc0Tab[qp][b] < tc0Tab[qp-1][b] {
				t.Fatalf("tc0 must be non-decreasing at QP %d bS %d", qp, b+1)
			}
		}
	}
	if alphaTab[51] != 255 || betaTab[51] != 18 || tc0Tab[51][2] != 25 {
		t.Fatal("table endpoints differ from the standard")
	}
}

func TestBoundaryStrengthRules(t *testing.T) {
	bi := NewBlockInfo(64, 48)
	// Default: identical inter blocks, no coefficients → bS 0.
	if bs := bi.BoundaryStrength(0, 0, 1, 0, false); bs != 0 {
		t.Fatalf("identical blocks: bS %d, want 0", bs)
	}
	// Non-zero coefficients → bS 2.
	bi.SetBlock(1, 0, true, h264.MV{}, 0)
	if bs := bi.BoundaryStrength(0, 0, 1, 0, false); bs != 2 {
		t.Fatalf("nz block: bS %d, want 2", bs)
	}
	// Different reference → bS 1.
	bi.SetBlock(2, 0, false, h264.MV{}, 1)
	if bs := bi.BoundaryStrength(2, 0, 3, 0, false); bs != 1 {
		t.Fatalf("ref mismatch: bS %d, want 1", bs)
	}
	// MV difference ≥ 4 quarter-pels → bS 1.
	bi.SetBlock(4, 0, false, h264.MV{X: 4}, 0)
	if bs := bi.BoundaryStrength(4, 0, 5, 0, false); bs != 1 {
		t.Fatalf("mv gap: bS %d, want 1", bs)
	}
	// MV difference < 4 → bS 0.
	bi.SetBlock(6, 0, false, h264.MV{X: 3}, 0)
	if bs := bi.BoundaryStrength(6, 0, 7, 0, false); bs != 0 {
		t.Fatalf("small mv gap: bS %d, want 0", bs)
	}
	// Intra: 4 on MB edge, 3 inside.
	bi.SetIntra(0, 0, true)
	if bs := bi.BoundaryStrength(3, 0, 4, 0, true); bs != 4 {
		t.Fatalf("intra MB edge: bS %d, want 4", bs)
	}
	if bs := bi.BoundaryStrength(0, 0, 1, 0, false); bs != 3 {
		t.Fatalf("intra internal edge: bS %d, want 3", bs)
	}
}

func TestFlatFrameIsUnchanged(t *testing.T) {
	f := flatFrame(64, 48, 120)
	orig := f.Clone()
	bi := NewBlockInfo(64, 48)
	for i := range bi.NZ {
		bi.NZ[i] = true // force bS 2 everywhere
	}
	FilterFrame(f, bi, 30)
	if !f.Equal(orig) {
		t.Fatal("filter modified a perfectly flat frame")
	}
}

func TestBlockingEdgeIsSmoothed(t *testing.T) {
	// Construct a mild blocking artefact across the MB edge at x=16 and
	// force bS 2: the step must shrink.
	f := flatFrame(64, 48, 100)
	for y := 0; y < 48; y++ {
		for x := 16; x < 64; x++ {
			f.Y.Set(x, y, 106)
		}
	}
	bi := NewBlockInfo(64, 48)
	for i := range bi.NZ {
		bi.NZ[i] = true
	}
	before := edgeStep(f.Y, 16, 24)
	FilterFrame(f, bi, 32)
	after := edgeStep(f.Y, 16, 24)
	if after >= before {
		t.Fatalf("edge step %d not reduced (was %d)", after, before)
	}
}

func TestLargeEdgesArePreservedByNormalFilter(t *testing.T) {
	// A real object edge (step larger than α at moderate QP) must NOT be
	// filtered — the whole point of the α threshold.
	f := flatFrame(64, 48, 30)
	for y := 0; y < 48; y++ {
		for x := 16; x < 64; x++ {
			f.Y.Set(x, y, 220)
		}
	}
	orig := f.Clone()
	bi := NewBlockInfo(64, 48)
	for i := range bi.NZ {
		bi.NZ[i] = true
	}
	FilterFrame(f, bi, 30)
	if !f.Equal(orig) {
		t.Fatal("filter destroyed a genuine object edge")
	}
}

func TestIntraStrongFilter(t *testing.T) {
	// bS 4 with a small step: strong filtering touches up to 3 samples.
	f := flatFrame(32, 32, 100)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			f.Y.Set(x, y, 112)
		}
	}
	bi := NewBlockInfo(32, 32)
	bi.SetIntra(0, 0, true)
	bi.SetIntra(1, 0, true)
	bi.SetIntra(0, 1, true)
	bi.SetIntra(1, 1, true)
	FilterFrame(f, bi, 35)
	if v := f.Y.At(15, 8); v == 100 {
		t.Fatal("p0 not filtered by strong filter")
	}
	if v := f.Y.At(13, 8); v == 100 {
		t.Fatal("p2 not touched by strong filter (expected 3-sample update)")
	}
}

func TestPictureBoundariesNeverFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := h264.NewFrame(48, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			f.Y.Set(x, y, uint8(rng.Intn(256)))
		}
	}
	f.ExtendBorders()
	bi := NewBlockInfo(48, 48)
	for i := range bi.Intra {
		bi.Intra[i] = true
	}
	col0 := make([]uint8, 48)
	row0 := make([]uint8, 48)
	for i := 0; i < 48; i++ {
		col0[i] = f.Y.At(0, i)
		row0[i] = f.Y.At(i, 0)
	}
	FilterFrame(f, bi, 40)
	// Column 0 and row 0 samples may only change through horizontal/vertical
	// edges *inside* the picture, never through the picture boundary itself.
	// With intra MBs everywhere the internal edges do change them, so check
	// instead the corner sample which touches only picture boundaries on its
	// left/top: its left/top neighbours (border padding) must stay replicas.
	if f.Y.At(-1, 0) != f.Y.At(0, 0) {
		t.Fatal("border no longer replicates after filtering")
	}
	_ = col0
	_ = row0
}

func TestChromaFiltered(t *testing.T) {
	f := flatFrame(32, 32, 100)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			f.Cb.Set(x, y, 104)
		}
	}
	bi := NewBlockInfo(32, 32)
	for i := range bi.NZ {
		bi.NZ[i] = true
	}
	before := int(f.Cb.At(8, 4)) - int(f.Cb.At(7, 4))
	FilterFrame(f, bi, 32)
	after := int(f.Cb.At(8, 4)) - int(f.Cb.At(7, 4))
	if abs(after) >= abs(before) {
		t.Fatalf("chroma edge step %d not reduced (was %d)", after, before)
	}
}

func TestFilterIsDeterministic(t *testing.T) {
	mk := func() (*h264.Frame, *BlockInfo) {
		rng := rand.New(rand.NewSource(3))
		f := h264.NewFrame(48, 48)
		r := rand.New(rand.NewSource(4))
		for y := 0; y < 48; y++ {
			for x := 0; x < 48; x++ {
				f.Y.Set(x, y, uint8(100+r.Intn(16)))
			}
		}
		f.ExtendBorders()
		bi := NewBlockInfo(48, 48)
		for i := range bi.NZ {
			bi.NZ[i] = rng.Intn(2) == 0
		}
		return f, bi
	}
	a, biA := mk()
	b, biB := mk()
	FilterFrame(a, biA, 28)
	FilterFrame(b, biB, 28)
	if !a.Equal(b) {
		t.Fatal("identical inputs filtered differently")
	}
}

func edgeStep(p *h264.Plane, x, y int) int {
	return abs(int(p.At(x, y)) - int(p.At(x-1, y)))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func benchFrame() (*h264.Frame, *BlockInfo) {
	f := flatFrame(176, 144, 100)
	rng := rand.New(rand.NewSource(9))
	for y := 0; y < 144; y++ {
		for x := 0; x < 176; x++ {
			f.Y.Set(x, y, uint8(90+rng.Intn(30)))
		}
	}
	f.ExtendBorders()
	bi := NewBlockInfo(176, 144)
	for i := range bi.NZ {
		bi.NZ[i] = rng.Intn(3) == 0
	}
	return f, bi
}

func BenchmarkFilterFrame(b *testing.B) {
	f, bi := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := f.Clone()
		FilterFrame(g, bi, 30)
	}
}

// BenchmarkFilterFrameNsPerMB times only the filter (the frame restore runs
// with the timer stopped) and reports the per-macroblock cost tracked by
// the bench-regression gate.
func BenchmarkFilterFrameNsPerMB(b *testing.B) {
	f, bi := benchFrame()
	g := f.Clone()
	mbs := f.MBWidth() * f.MBHeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g.Y.CopyFrom(f.Y)
		g.Cb.CopyFrom(f.Cb)
		g.Cr.CopyFrom(f.Cr)
		b.StartTimer()
		FilterFrame(g, bi, 30)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*mbs), "ns/MB")
}

func TestFilterFrameMatchesReference(t *testing.T) {
	// The stride-based per-plane kernel must be bit-exact with the retained
	// closure-per-edge oracle, across bS 1-4 (intra MBs, coded blocks,
	// differing refs and MVs) on luma and chroma.
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(20 + seed))
		mk := func() (*h264.Frame, *BlockInfo) {
			r := rand.New(rand.NewSource(30 + seed))
			f := h264.NewFrame(80, 64)
			for _, pl := range []*h264.Plane{f.Y, f.Cb, f.Cr} {
				for y := 0; y < pl.H; y++ {
					row := pl.Row(y)
					for x := range row {
						row[x] = uint8(80 + r.Intn(80))
					}
				}
			}
			f.ExtendBorders()
			bi := NewBlockInfo(80, 64)
			for by := 0; by < bi.BH; by++ {
				for bx := 0; bx < bi.BW; bx++ {
					mv := h264.MV{X: int16(r.Intn(17) - 8), Y: int16(r.Intn(17) - 8)}
					bi.SetBlock(bx, by, r.Intn(3) == 0, mv, uint8(r.Intn(2)))
				}
			}
			for i := range bi.Intra {
				bi.Intra[i] = r.Intn(5) == 0
			}
			return f, bi
		}
		a, biA := mk()
		b, biB := mk()
		qp := 20 + rng.Intn(20)
		FilterFrame(a, biA, qp)
		FilterFrameRef(b, biB, qp)
		if !a.Equal(b) {
			t.Fatalf("seed %d qp %d: stride-based filter differs from reference", seed, qp)
		}
	}
}
