package deblock

import (
	"feves/internal/h264"
)

// FilterFrameRef is the closure-per-edge deblocking kernel retained as the
// bit-exactness oracle for the stride-based per-plane kernel and as the
// baseline the device calibration and the bench-regression speedup ratios
// are measured against. It filters macroblocks in the original interleaved
// order (luma V, luma H, then chroma per MB) and shares no edge-filter
// code with the fast path.
func FilterFrameRef(f *h264.Frame, bi *BlockInfo, qp int) {
	mbw, mbh := f.MBWidth(), f.MBHeight()
	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			filterMBRef(f, bi, qp, mbx, mby)
		}
	}
	f.ExtendBorders()
}

func filterMBRef(f *h264.Frame, bi *BlockInfo, qp int, mbx, mby int) {
	// Vertical luma edges at x offsets 0, 4, 8, 12.
	for e := 0; e < 4; e++ {
		x := mbx*16 + e*4
		if x == 0 {
			continue // picture boundary
		}
		for seg := 0; seg < 4; seg++ {
			y := mby*16 + seg*4
			bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
			if bs == 0 {
				continue
			}
			for r := 0; r < 4; r++ {
				filterLumaVRef(f.Y, x, y+r, bs, qp)
			}
		}
	}
	// Horizontal luma edges at y offsets 0, 4, 8, 12.
	for e := 0; e < 4; e++ {
		y := mby*16 + e*4
		if y == 0 {
			continue
		}
		for seg := 0; seg < 4; seg++ {
			x := mbx*16 + seg*4
			bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
			if bs == 0 {
				continue
			}
			for c := 0; c < 4; c++ {
				filterLumaHRef(f.Y, x+c, y, bs, qp)
			}
		}
	}
	// Chroma edges: luma edges 0 and 8 map to chroma 0 and 4.
	for _, cp := range []*h264.Plane{f.Cb, f.Cr} {
		for _, e := range []int{0, 8} {
			x := mbx*16 + e
			if x == 0 {
				continue
			}
			for seg := 0; seg < 4; seg++ {
				y := mby*16 + seg*4
				bs := bi.BoundaryStrength(x/4-1, y/4, x/4, y/4, e == 0)
				if bs == 0 {
					continue
				}
				for r := 0; r < 2; r++ {
					filterChromaVRef(cp, x/2, y/2+r, bs, qp)
				}
			}
		}
		for _, e := range []int{0, 8} {
			y := mby*16 + e
			if y == 0 {
				continue
			}
			for seg := 0; seg < 4; seg++ {
				x := mbx*16 + seg*4
				bs := bi.BoundaryStrength(x/4, y/4-1, x/4, y/4, e == 0)
				if bs == 0 {
					continue
				}
				for c := 0; c < 2; c++ {
					filterChromaHRef(cp, x/2+c, y/2, bs, qp)
				}
			}
		}
	}
}

// filterLumaVRef filters one row of the vertical edge at column x: samples
// p3..p0 are at x-4..x-1 and q0..q3 at x..x+3 of row y.
func filterLumaVRef(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x+i, y)) }
	set := func(i int, v uint8) { pl.Set(x+i, y, v) }
	filterLumaEdgeRef(get, set, bs, qp)
}

// filterLumaHRef filters one column of the horizontal edge at row y.
func filterLumaHRef(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x, y+i)) }
	set := func(i int, v uint8) { pl.Set(x, y+i, v) }
	filterLumaEdgeRef(get, set, bs, qp)
}

// filterLumaEdgeRef implements clauses 8.7.2.3/8.7.2.4: get/set address
// samples relative to the edge, index −1 is p0 and index 0 is q0.
func filterLumaEdgeRef(get func(int) int32, set func(int, uint8), bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1, p2, p3 := get(-1), get(-2), get(-3), get(-4)
	q0, q1, q2, q3 := get(0), get(1), get(2), get(3)
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	ap, aq := abs32(p2-p0), abs32(q2-q0)
	if bs == 4 {
		if ap < beta && abs32(p0-q0) < (alpha>>2)+2 {
			set(-1, clip255((p2+2*p1+2*p0+2*q0+q1+4)>>3))
			set(-2, clip255((p2+p1+p0+q0+2)>>2))
			set(-3, clip255((2*p3+3*p2+p1+p0+q0+4)>>3))
		} else {
			set(-1, clip255((2*p1+p0+q1+2)>>2))
		}
		if aq < beta && abs32(p0-q0) < (alpha>>2)+2 {
			set(0, clip255((q2+2*q1+2*q0+2*p0+p1+4)>>3))
			set(1, clip255((q2+q1+q0+p0+2)>>2))
			set(2, clip255((2*q3+3*q2+q1+q0+p0+4)>>3))
		} else {
			set(0, clip255((2*q1+q0+p1+2)>>2))
		}
		return
	}
	tc0 := tc0Tab[qp][bs-1]
	tc := tc0
	if ap < beta {
		tc++
	}
	if aq < beta {
		tc++
	}
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	set(-1, clip255(p0+delta))
	set(0, clip255(q0-delta))
	if ap < beta {
		set(-2, clip255(p1+clip3(-tc0, tc0, (p2+((p0+q0+1)>>1)-2*p1)>>1)))
	}
	if aq < beta {
		set(1, clip255(q1+clip3(-tc0, tc0, (q2+((p0+q0+1)>>1)-2*q1)>>1)))
	}
}

func filterChromaVRef(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x+i, y)) }
	set := func(i int, v uint8) { pl.Set(x+i, y, v) }
	filterChromaEdgeRef(get, set, bs, qp)
}

func filterChromaHRef(pl *h264.Plane, x, y, bs, qp int) {
	get := func(i int) int32 { return int32(pl.At(x, y+i)) }
	set := func(i int, v uint8) { pl.Set(x, y+i, v) }
	filterChromaEdgeRef(get, set, bs, qp)
}

func filterChromaEdgeRef(get func(int) int32, set func(int, uint8), bs, qp int) {
	alpha, beta := alphaTab[qp], betaTab[qp]
	p0, p1 := get(-1), get(-2)
	q0, q1 := get(0), get(1)
	if abs32(p0-q0) >= alpha || abs32(p1-p0) >= beta || abs32(q1-q0) >= beta {
		return
	}
	if bs == 4 {
		set(-1, clip255((2*p1+p0+q1+2)>>2))
		set(0, clip255((2*q1+q0+p1+2)>>2))
		return
	}
	tc := tc0Tab[qp][bs-1] + 1
	delta := clip3(-tc, tc, ((q0-p0)<<2+(p1-q1)+4)>>3)
	set(-1, clip255(p0+delta))
	set(0, clip255(q0-delta))
}
