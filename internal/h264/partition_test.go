package h264

import "testing"

func TestPartitionCountsSumTo41(t *testing.T) {
	sum := 0
	for _, m := range AllModes() {
		sum += m.Count()
	}
	if sum != TotalPartitions {
		t.Fatalf("total partitions = %d, want %d", sum, TotalPartitions)
	}
}

func TestPartitionAreasTile(t *testing.T) {
	// Every mode must tile the 16x16 macroblock exactly.
	for _, m := range AllModes() {
		w, h := m.Size()
		if w*h*m.Count() != MBSize*MBSize {
			t.Errorf("mode %v: %d partitions of %dx%d do not tile the MB", m, m.Count(), w, h)
		}
		covered := make([]bool, MBSize*MBSize)
		for k := 0; k < m.Count(); k++ {
			x0, y0 := m.Offset(k)
			for y := y0; y < y0+h; y++ {
				for x := x0; x < x0+w; x++ {
					if covered[y*MBSize+x] {
						t.Fatalf("mode %v: pixel (%d,%d) covered twice", m, x, y)
					}
					covered[y*MBSize+x] = true
				}
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("mode %v: pixel %d not covered", m, i)
			}
		}
	}
}

func TestPartitionBase(t *testing.T) {
	wantBase := map[PartMode]int{
		Part16x16: 0, Part16x8: 1, Part8x16: 3, Part8x8: 5,
		Part8x4: 9, Part4x8: 17, Part4x4: 25,
	}
	for m, want := range wantBase {
		if got := m.Base(); got != want {
			t.Errorf("%v.Base() = %d, want %d", m, got, want)
		}
	}
	if Part4x4.Base()+Part4x4.Count() != TotalPartitions {
		t.Fatal("flat partition index space is not 41 entries")
	}
}

func TestBlocks4x4Coverage(t *testing.T) {
	for _, m := range AllModes() {
		seen := make(map[int]bool)
		for k := 0; k < m.Count(); k++ {
			blocks := m.Blocks4x4(k)
			w, h := m.Size()
			if len(blocks) != (w/4)*(h/4) {
				t.Fatalf("mode %v part %d: %d blocks, want %d", m, k, len(blocks), (w/4)*(h/4))
			}
			for _, b := range blocks {
				if b < 0 || b >= 16 {
					t.Fatalf("mode %v: block index %d out of range", m, b)
				}
				if seen[b] {
					t.Fatalf("mode %v: block %d assigned to two partitions", m, b)
				}
				seen[b] = true
			}
		}
		if len(seen) != 16 {
			t.Fatalf("mode %v: partitions cover %d blocks, want 16", m, len(seen))
		}
	}
}

func TestBlocks4x4SpecificGeometry(t *testing.T) {
	// Partition 1 of 16x8 is the bottom half: blocks 8..15.
	got := Part16x8.Blocks4x4(1)
	want := []int{8, 9, 10, 11, 12, 13, 14, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block list %v, want %v", got, want)
		}
	}
	// Partition 3 of 8x8 is the bottom-right quadrant.
	got = Part8x8.Blocks4x4(3)
	want = []int{10, 11, 14, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("8x8 part 3 blocks %v, want %v", got, want)
		}
	}
}

func TestPartModeString(t *testing.T) {
	if Part16x16.String() != "16x16" || Part4x4.String() != "4x4" {
		t.Fatal("String() labels wrong")
	}
	if PartMode(99).String() != "invalid" {
		t.Fatal("invalid mode label wrong")
	}
}
