package me

import (
	"fmt"
	"math"
	"sync/atomic"

	"feves/internal/h264"
)

// Algorithm selects the integer motion-search strategy. The paper fixes
// Full-Search Block-Matching because its cost is content-independent,
// which makes the per-row workload predictable for the load balancer; the
// fast algorithms below are provided as ablation baselines that trade that
// predictability (and some quality) for far fewer SAD evaluations.
type Algorithm int

const (
	// FullSearch is the paper's FSBM: every displacement in the search
	// area is evaluated.
	FullSearch Algorithm = iota
	// ThreeStep is the classic Three-Step Search: a shrinking 3×3 probe
	// pattern, O(log SA) evaluations.
	ThreeStep
	// Diamond is the Diamond Search: large-diamond refinement until the
	// centre wins, then one small-diamond step.
	Diamond
)

func (a Algorithm) String() string {
	switch a {
	case FullSearch:
		return "full-search"
	case ThreeStep:
		return "three-step"
	case Diamond:
		return "diamond"
	}
	return "invalid"
}

// SearchRowsAlgo runs integer motion estimation with the chosen algorithm.
// FullSearch delegates to SearchRows; the fast algorithms estimate each of
// the 41 partitions independently from a shared macroblock-level search,
// remaining row-sliceable like the full search.
func SearchRowsAlgo(algo Algorithm, cf *h264.Frame, dpb *h264.DPB, cfg Config, field *h264.MVField, rowLo, rowHi int) {
	if algo == FullSearch {
		SearchRows(cf, dpb, cfg, field, rowLo, rowHi)
		return
	}
	if cfg.SearchRange < 1 || cfg.SearchRange > h264.DefaultPad-8 {
		panic(fmt.Sprintf("me: search range %d invalid", cfg.SearchRange))
	}
	if field.MBW != cf.MBWidth() || field.MBH != cf.MBHeight() {
		panic("me: MV field does not match frame geometry")
	}
	if rowLo < 0 || rowHi > cf.MBHeight() || rowLo >= rowHi {
		panic(fmt.Sprintf("me: bad row range [%d,%d)", rowLo, rowHi))
	}
	nrf := dpb.Len()
	if nrf > field.NumRF {
		nrf = field.NumRF
	}
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < field.NumRF; rf++ {
				if rf >= nrf {
					markUnusable(field, mbx, mby, rf)
					continue
				}
				n := fastSearchMB(algo, cf.Y, dpb.Ref(rf).Y, cfg.SearchRange, field, mbx, mby, rf)
				if cfg.Evals != nil {
					atomic.AddInt64(cfg.Evals, int64(n))
				}
			}
		}
	}
}

// fastSearchMB finds a macroblock-level vector with the fast pattern, then
// assigns per-partition vectors by evaluating each partition's SAD at that
// vector and its small-diamond neighbours. It returns the number of
// macroblock-level SAD evaluations performed.
func fastSearchMB(algo Algorithm, cur, ref *h264.Plane, r int, field *h264.MVField, mbx, mby, rf int) int {
	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize
	evals := 0
	cost16 := func(dx, dy int) int32 {
		evals++
		return SAD(cur, ref, x0, y0, x0+dx, y0+dy, 16, 16)
	}

	var bx, by int
	switch algo {
	case ThreeStep:
		bx, by = threeStep(cost16, r)
	case Diamond:
		bx, by = diamond(cost16, r)
	default:
		panic("me: unknown fast algorithm")
	}

	// Per-partition refinement around the macroblock vector: the candidate
	// set is the MB vector plus the 4-connected neighbours, clamped to the
	// search range.
	cands := [5][2]int{{bx, by}, {bx + 1, by}, {bx - 1, by}, {bx, by + 1}, {bx, by - 1}}
	for _, mode := range h264.AllModes() {
		w, h := mode.Size()
		for k := 0; k < mode.Count(); k++ {
			ox, oy := mode.Offset(k)
			px, py := x0+ox, y0+oy
			best := int32(math.MaxInt32)
			var bmv h264.MV
			for _, c := range cands {
				dx, dy := clampRange(c[0], r), clampRange(c[1], r)
				s := SAD(cur, ref, px, py, px+dx, py+dy, w, h)
				if s < best {
					best = s
					bmv = h264.MV{X: int16(dx), Y: int16(dy)}
				}
			}
			field.Set(mbx, mby, mode.Base()+k, rf, bmv, best)
		}
	}
	return evals
}

func clampRange(v, r int) int {
	if v < -r {
		return -r
	}
	if v >= r {
		return r - 1
	}
	return v
}

// threeStep implements the Three-Step Search over ±r.
func threeStep(cost func(dx, dy int) int32, r int) (int, int) {
	step := 1
	for step*2 < r {
		step *= 2
	}
	cx, cy := 0, 0
	best := cost(0, 0)
	for step >= 1 {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := clampRange(cx+dx*step, r), clampRange(cy+dy*step, r)
				if s := cost(nx, ny); s < best {
					best = s
					cx, cy = nx, ny
				}
			}
		}
		step /= 2
	}
	return cx, cy
}

// diamond implements the Diamond Search (large diamond until the centre is
// best, then one small diamond).
func diamond(cost func(dx, dy int) int32, r int) (int, int) {
	large := [8][2]int{{2, 0}, {-2, 0}, {0, 2}, {0, -2}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	small := [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	cx, cy := 0, 0
	best := cost(0, 0)
	for iter := 0; iter < 4*r; iter++ {
		moved := false
		for _, d := range large {
			nx, ny := clampRange(cx+d[0], r), clampRange(cy+d[1], r)
			if nx == cx && ny == cy {
				continue
			}
			if s := cost(nx, ny); s < best {
				best = s
				cx, cy = nx, ny
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for _, d := range small {
		nx, ny := clampRange(cx+d[0], r), clampRange(cy+d[1], r)
		if s := cost(nx, ny); s < best {
			best = s
			cx, cy = nx, ny
		}
	}
	return cx, cy
}
