// Package me implements the Motion Estimation inter-loop module of the
// FEVES reproduction: Full-Search Block-Matching (FSBM) over a configurable
// square search area, for multiple reference frames, producing an
// integer-pel motion vector and SAD for each of the 41 partitions (7
// partitioning modes) of every macroblock.
//
// The kernel uses the classic SAD-reuse decomposition: for every candidate
// displacement it computes the sixteen 4×4 SADs of the macroblock once and
// aggregates them bottom-up into the 8×4, 4×8, 8×8, 16×8, 8×16 and 16×16
// partition SADs, so the full partition tree costs barely more than a
// single 16×16 search. The inner loop is branch-free: eight samples are
// loaded at a time and their absolute differences computed in the 16-bit
// lanes of a uint64 (SWAR), which is what the paper's optimized CPU kernels
// get from SSE and the GPU kernels from coalesced uchar4 loads.
//
// SearchRows is row-sliceable and reads only the current frame and the
// (read-only) reference planes, so any cross-device row distribution is
// bit-exact with a single-device search.
package me

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"feves/internal/h264"
)

// Config holds the motion-estimation parameters.
type Config struct {
	// SearchRange is the maximum displacement in full pixels; the search
	// area is the (2·SearchRange)² window of the paper (SA 32×32 means
	// SearchRange 16).
	SearchRange int
	// Evals, when non-nil, accumulates the number of block-SAD
	// evaluations performed (atomically, so row-sliced searches may run
	// concurrently). It quantifies the workload-predictability argument
	// behind the paper's FSBM choice: full search evaluates a constant
	// count per macroblock, fast algorithms a content-dependent one.
	Evals *int64
}

// SAFromSize converts the paper's "search area size" (e.g. 64 for a 64×64
// SA) into a Config. Odd sizes are rounded up to the next even size (the SA
// is a diameter: SearchRange = SA/2); sizes below 2 cannot express a single
// full pixel of displacement and are rejected.
func SAFromSize(sa int) (Config, error) {
	if sa < 2 {
		return Config{}, fmt.Errorf("me: search area size %d is too small: the smallest search area is 2×2 (search range 1)", sa)
	}
	if sa%2 != 0 {
		sa++ // round an odd diameter up rather than silently truncating
	}
	return Config{SearchRange: sa / 2}, nil
}

// Candidates returns the number of candidate displacements evaluated per
// macroblock and reference frame — the quantity that quadruples between
// successive SA sizes in Fig. 6(a).
func (c Config) Candidates() int {
	n := 2 * c.SearchRange
	return n * n
}

// SearchRows runs FSBM for macroblock rows [rowLo, rowHi) of cf against
// every reference frame in the DPB, storing integer-pel vectors and SADs in
// field. Entries for reference indexes ≥ dpb.Len() (the DPB ramp-up frames)
// are marked unusable with cost math.MaxInt32.
func SearchRows(cf *h264.Frame, dpb *h264.DPB, cfg Config, field *h264.MVField, rowLo, rowHi int) {
	checkSearchArgs(cf, cfg, field, rowLo, rowHi)
	nrf := dpb.Len()
	if nrf > field.NumRF {
		nrf = field.NumRF
	}
	// The eval counter is accumulated locally and published with a single
	// atomic add per call: one cache-line ping-pong per row slice instead
	// of one per (macroblock, reference).
	perSearch := int64(cfg.Candidates())
	var evals int64
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < field.NumRF; rf++ {
				if rf < nrf {
					searchMB(cf.Y, dpb.Ref(rf).Y, cfg.SearchRange, field, mbx, mby, rf)
					evals += perSearch
				} else {
					markUnusable(field, mbx, mby, rf)
				}
			}
		}
	}
	if cfg.Evals != nil && evals != 0 {
		atomic.AddInt64(cfg.Evals, evals)
	}
}

func checkSearchArgs(cf *h264.Frame, cfg Config, field *h264.MVField, rowLo, rowHi int) {
	if cfg.SearchRange < 1 {
		panic(fmt.Sprintf("me: search range %d < 1", cfg.SearchRange))
	}
	if cfg.SearchRange > h264.DefaultPad-8 {
		panic(fmt.Sprintf("me: search range %d exceeds plane padding", cfg.SearchRange))
	}
	if field.MBW != cf.MBWidth() || field.MBH != cf.MBHeight() {
		panic("me: MV field does not match frame geometry")
	}
	if rowLo < 0 || rowHi > cf.MBHeight() || rowLo >= rowHi {
		panic(fmt.Sprintf("me: bad row range [%d,%d)", rowLo, rowHi))
	}
}

func markUnusable(field *h264.MVField, mbx, mby, rf int) {
	for part := 0; part < h264.TotalPartitions; part++ {
		field.Set(mbx, mby, part, rf, h264.MV{}, math.MaxInt32)
	}
}

// searchMB exhaustively searches one macroblock in one reference frame.
func searchMB(cur, ref *h264.Plane, r int, field *h264.MVField, mbx, mby, rf int) {
	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize

	var best [h264.TotalPartitions]int32
	var bestMV [h264.TotalPartitions]h264.MV
	for i := range best {
		best[i] = math.MaxInt32
	}

	curRaw, refRaw := cur.Raw(), ref.Raw()
	refStride := ref.Stride

	// Load the sixteen current-MB rows once as uint64 pairs; they are
	// reused by all (2r)² candidates.
	var curLo, curHi [16]uint64
	for y := 0; y < 16; y++ {
		row := curRaw[cur.Idx(x0, y0+y):]
		curLo[y] = binary.LittleEndian.Uint64(row)
		curHi[y] = binary.LittleEndian.Uint64(row[8:])
	}

	for dy := -r; dy < r; dy++ {
		for dx := -r; dx < r; dx++ {
			// Sixteen 4×4 SADs for this candidate, eight samples per step.
			var blk4 [16]int32
			refBase := ref.Idx(x0+dx, y0+dy)
			for y := 0; y < 16; y++ {
				row := refRaw[refBase+y*refStride:]
				rLo := binary.LittleEndian.Uint64(row)
				rHi := binary.LittleEndian.Uint64(row[8:])
				bi := (y >> 2) * 4
				a, b := h264.SADPair8(curLo[y], rLo)
				c, d := h264.SADPair8(curHi[y], rHi)
				blk4[bi] += a
				blk4[bi+1] += b
				blk4[bi+2] += c
				blk4[bi+3] += d
			}

			// Bottom-up aggregation into all partition SADs.
			var s8x4 [8]int32
			for row := 0; row < 4; row++ {
				s8x4[row*2] = blk4[row*4] + blk4[row*4+1]
				s8x4[row*2+1] = blk4[row*4+2] + blk4[row*4+3]
			}
			var s4x8 [8]int32
			for half := 0; half < 2; half++ {
				for col := 0; col < 4; col++ {
					s4x8[half*4+col] = blk4[(2*half)*4+col] + blk4[(2*half+1)*4+col]
				}
			}
			var s8x8 [4]int32
			s8x8[0] = s8x4[0] + s8x4[2]
			s8x8[1] = s8x4[1] + s8x4[3]
			s8x8[2] = s8x4[4] + s8x4[6]
			s8x8[3] = s8x4[5] + s8x4[7]
			s16x8 := [2]int32{s8x8[0] + s8x8[1], s8x8[2] + s8x8[3]}
			s8x16 := [2]int32{s8x8[0] + s8x8[2], s8x8[1] + s8x8[3]}
			s16x16 := s16x8[0] + s16x8[1]

			mv := h264.MV{X: int16(dx), Y: int16(dy)}
			update(&best, &bestMV, h264.Part16x16.Base(), mv, s16x16)
			updateSlice(&best, &bestMV, h264.Part16x8.Base(), mv, s16x8[:])
			updateSlice(&best, &bestMV, h264.Part8x16.Base(), mv, s8x16[:])
			updateSlice(&best, &bestMV, h264.Part8x8.Base(), mv, s8x8[:])
			updateSlice(&best, &bestMV, h264.Part8x4.Base(), mv, s8x4[:])
			updateSlice(&best, &bestMV, h264.Part4x8.Base(), mv, s4x8[:])
			updateSlice(&best, &bestMV, h264.Part4x4.Base(), mv, blk4[:])
		}
	}

	for part := 0; part < h264.TotalPartitions; part++ {
		field.Set(mbx, mby, part, rf, bestMV[part], best[part])
	}
}

func update(best *[h264.TotalPartitions]int32, bestMV *[h264.TotalPartitions]h264.MV, idx int, mv h264.MV, sad int32) {
	if sad < best[idx] {
		best[idx] = sad
		bestMV[idx] = mv
	}
}

func updateSlice(best *[h264.TotalPartitions]int32, bestMV *[h264.TotalPartitions]h264.MV, base int, mv h264.MV, sads []int32) {
	for k, sad := range sads {
		if sad < best[base+k] {
			best[base+k] = sad
			bestMV[base+k] = mv
		}
	}
}

func absDiff(a, b uint8) int32 {
	if a > b {
		return int32(a - b)
	}
	return int32(b - a)
}

// SAD computes the sum of absolute differences between the w×h block of cur
// at (cx, cy) and the block of ref at (rx, ry), four samples per step for
// the partition widths (multiples of 4). Exported for the fast-search
// ablations and the sub-pixel refinement bootstrap.
func SAD(cur, ref *h264.Plane, cx, cy, rx, ry, w, h int) int32 {
	if w%4 != 0 {
		return SADRef(cur, ref, cx, cy, rx, ry, w, h)
	}
	curRaw, refRaw := cur.Raw(), ref.Raw()
	var sum int32
	for y := 0; y < h; y++ {
		co := cur.Idx(cx, cy+y)
		ro := ref.Idx(rx, ry+y)
		for x := 0; x < w; x += 4 {
			c := binary.LittleEndian.Uint32(curRaw[co+x:])
			r := binary.LittleEndian.Uint32(refRaw[ro+x:])
			sum += h264.SAD4(c, r)
		}
	}
	return sum
}

// SADRef is the scalar sample-at-a-time SAD retained as the oracle for the
// SWAR kernels: it shares no code with them, so tests comparing the two
// genuinely cross-check the lane arithmetic.
func SADRef(cur, ref *h264.Plane, cx, cy, rx, ry, w, h int) int32 {
	var sum int32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum += absDiff(cur.At(cx+x, cy+y), ref.At(rx+x, ry+y))
		}
	}
	return sum
}
