package me

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"feves/internal/h264"
)

func randomFrame(w, h int, seed int64) *h264.Frame {
	f := h264.NewFrame(w, h)
	rng := rand.New(rand.NewSource(seed))
	data := make([]uint8, w*h*3/2)
	rng.Read(data)
	if err := f.LoadYUV(data); err != nil {
		panic(err)
	}
	return f
}

// shiftedFrame returns a copy of f whose luma is translated by (dx, dy):
// shifted(x, y) = f(x-dx, y-dy), reading into the padded border.
func shiftedFrame(f *h264.Frame, dx, dy int) *h264.Frame {
	g := h264.NewFrame(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			g.Y.Set(x, y, f.Y.At(x-dx, y-dy))
		}
	}
	g.Cb.CopyFrom(f.Cb)
	g.Cr.CopyFrom(f.Cr)
	g.ExtendBorders()
	return g
}

func TestFindsExactTranslation(t *testing.T) {
	ref := randomFrame(64, 48, 1)
	for _, sh := range [][2]int{{0, 0}, {3, -2}, {-5, 5}, {7, 7}} {
		cur := shiftedFrame(ref, sh[0], sh[1])
		dpb := h264.NewDPB(1)
		dpb.Push(ref)
		field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
		SearchRows(cur, dpb, Config{SearchRange: 8}, field, 0, cur.MBHeight())
		// Interior macroblocks (away from the replicated border) must find
		// the exact translation with SAD 0 on every partition.
		mbx, mby := 1, 1
		for part := 0; part < h264.TotalPartitions; part++ {
			mv, cost := field.Get(mbx, mby, part, 0)
			if cost != 0 {
				t.Fatalf("shift %v part %d: SAD=%d, want 0", sh, part, cost)
			}
			// The MV points from the current block to its match in the
			// reference, so a content shift of (dx,dy) yields MV (-dx,-dy).
			if int(mv.X) != -sh[0] || int(mv.Y) != -sh[1] {
				t.Fatalf("shift %v part %d: MV=%v", sh, part, mv)
			}
		}
	}
}

func TestSADNeverWorseThanZeroMV(t *testing.T) {
	cur := randomFrame(64, 48, 2)
	ref := randomFrame(64, 48, 3)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	SearchRows(cur, dpb, Config{SearchRange: 6}, field, 0, cur.MBHeight())
	for mby := 0; mby < cur.MBHeight(); mby++ {
		for mbx := 0; mbx < cur.MBWidth(); mbx++ {
			for _, m := range h264.AllModes() {
				w, h := m.Size()
				for k := 0; k < m.Count(); k++ {
					ox, oy := m.Offset(k)
					x, y := mbx*16+ox, mby*16+oy
					zero := SAD(cur.Y, ref.Y, x, y, x, y, w, h)
					_, cost := field.Get(mbx, mby, m.Base()+k, 0)
					if cost > zero {
						t.Fatalf("MB(%d,%d) %v/%d: best %d worse than zero-MV %d",
							mbx, mby, m, k, cost, zero)
					}
				}
			}
		}
	}
}

func TestAgreesWithBruteForceOracle(t *testing.T) {
	cur := randomFrame(32, 32, 4)
	ref := randomFrame(32, 32, 5)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	const r = 4
	field := h264.NewMVField(2, 2, 1)
	SearchRows(cur, dpb, Config{SearchRange: r}, field, 0, 2)

	for mby := 0; mby < 2; mby++ {
		for mbx := 0; mbx < 2; mbx++ {
			for _, m := range h264.AllModes() {
				w, h := m.Size()
				for k := 0; k < m.Count(); k++ {
					ox, oy := m.Offset(k)
					x, y := mbx*16+ox, mby*16+oy
					bestSAD := int32(math.MaxInt32)
					var bestMV h264.MV
					for dy := -r; dy < r; dy++ {
						for dx := -r; dx < r; dx++ {
							s := SAD(cur.Y, ref.Y, x, y, x+dx, y+dy, w, h)
							if s < bestSAD {
								bestSAD = s
								bestMV = h264.MV{X: int16(dx), Y: int16(dy)}
							}
						}
					}
					mv, cost := field.Get(mbx, mby, m.Base()+k, 0)
					if cost != bestSAD {
						t.Fatalf("MB(%d,%d) %v/%d: SAD %d, oracle %d", mbx, mby, m, k, cost, bestSAD)
					}
					if mv != bestMV {
						t.Fatalf("MB(%d,%d) %v/%d: MV %v, oracle %v (same scan order expected)",
							mbx, mby, m, k, mv, bestMV)
					}
				}
			}
		}
	}
}

func TestRowSlicedSearchIsBitExact(t *testing.T) {
	cur := randomFrame(48, 64, 6)
	ref := randomFrame(48, 64, 7)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 4}

	full := h264.NewMVField(3, 4, 1)
	SearchRows(cur, dpb, cfg, full, 0, 4)

	part := h264.NewMVField(3, 4, 1)
	SearchRows(cur, dpb, cfg, part, 2, 4)
	SearchRows(cur, dpb, cfg, part, 0, 1)
	SearchRows(cur, dpb, cfg, part, 1, 2)

	if !full.Equal(part) {
		t.Fatal("row-sliced FSBM is not bit-exact with full search")
	}
}

func TestMultiRefPicksBetterFrame(t *testing.T) {
	base := randomFrame(64, 48, 8)
	far := randomFrame(64, 48, 9) // unrelated content
	cur := shiftedFrame(base, 2, 1)
	dpb := h264.NewDPB(2)
	dpb.Push(far)  // will be ref index 1 after next push
	dpb.Push(base) // ref index 0
	field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 2)
	SearchRows(cur, dpb, Config{SearchRange: 4}, field, 0, cur.MBHeight())
	_, c0 := field.Get(1, 1, 0, 0)
	_, c1 := field.Get(1, 1, 0, 1)
	if c0 != 0 {
		t.Fatalf("matching reference should give SAD 0, got %d", c0)
	}
	if c1 == 0 {
		t.Fatal("unrelated reference should not give SAD 0")
	}
}

func TestDPBRampUpMarksMissingRefs(t *testing.T) {
	cur := randomFrame(32, 32, 10)
	ref := randomFrame(32, 32, 11)
	dpb := h264.NewDPB(4)
	dpb.Push(ref) // only one reference available
	field := h264.NewMVField(2, 2, 4)
	SearchRows(cur, dpb, Config{SearchRange: 2}, field, 0, 2)
	for rf := 1; rf < 4; rf++ {
		_, cost := field.Get(0, 0, 0, rf)
		if cost != math.MaxInt32 {
			t.Fatalf("missing ref %d should be unusable, cost=%d", rf, cost)
		}
	}
	if _, cost := field.Get(0, 0, 0, 0); cost == math.MaxInt32 {
		t.Fatal("available ref marked unusable")
	}
}

func TestConfigHelpers(t *testing.T) {
	c, err := SAFromSize(64)
	if err != nil {
		t.Fatal(err)
	}
	if c.SearchRange != 32 {
		t.Fatalf("SAFromSize(64).SearchRange = %d", c.SearchRange)
	}
	c32, _ := SAFromSize(32)
	if c32.Candidates()*4 != c.Candidates() {
		t.Fatal("candidate count must quadruple between successive SA sizes")
	}
}

func TestSAFromSizeValidatesAndRounds(t *testing.T) {
	// Regression: SA 1 used to silently truncate to SearchRange 0, which
	// only surfaced later as a "search range 0 < 1" panic inside
	// SearchRows. The conversion site must reject it by name.
	for _, sa := range []int{1, 0, -4} {
		if _, err := SAFromSize(sa); err == nil {
			t.Fatalf("SAFromSize(%d) must fail", sa)
		} else if !strings.Contains(err.Error(), fmt.Sprintf("%d", sa)) {
			t.Fatalf("SAFromSize(%d) error %q does not name the SA value", sa, err)
		}
	}
	// Odd sizes round up to the next even diameter instead of truncating.
	c, err := SAFromSize(33)
	if err != nil {
		t.Fatal(err)
	}
	if c.SearchRange != 17 {
		t.Fatalf("SAFromSize(33).SearchRange = %d, want 17 (rounded up)", c.SearchRange)
	}
}

func TestEvalsCountedOncePerCall(t *testing.T) {
	// Regression for the hot-loop atomic contention fix: the eval counter
	// is now accumulated locally and published once per SearchRows call;
	// the final count must equal the old per-(MB, ref) accounting.
	cur := randomFrame(48, 48, 30)
	ref := randomFrame(48, 48, 31)
	dpb := h264.NewDPB(2)
	dpb.Push(ref)
	var evals int64
	cfg := Config{SearchRange: 4, Evals: &evals}
	field := h264.NewMVField(3, 3, 2)
	SearchRows(cur, dpb, cfg, field, 0, 2)
	SearchRows(cur, dpb, cfg, field, 2, 3)
	// 9 macroblocks, 1 usable reference (1 of 2 DPB slots filled), 64
	// candidates each; ramp-up refs must not count.
	want := int64(9 * 1 * cfg.Candidates())
	if evals != want {
		t.Fatalf("evals = %d, want %d", evals, want)
	}
}

func TestSearchRowsMatchesScalarReference(t *testing.T) {
	// The SWAR kernel must be bit-exact with the retained scalar kernel —
	// same SADs, same vectors, same tie-breaking.
	cur := randomFrame(80, 64, 32)
	ref := randomFrame(80, 64, 33)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 6}
	fast := h264.NewMVField(5, 4, 1)
	slow := h264.NewMVField(5, 4, 1)
	SearchRows(cur, dpb, cfg, fast, 0, 4)
	SearchRowsRef(cur, dpb, cfg, slow, 0, 4)
	if !fast.Equal(slow) {
		t.Fatal("SWAR search differs from scalar reference")
	}
}

func TestSADMatchesScalarReference(t *testing.T) {
	cur := randomFrame(64, 48, 34)
	ref := randomFrame(64, 48, 35)
	rng := rand.New(rand.NewSource(36))
	for i := 0; i < 200; i++ {
		w := []int{4, 8, 16}[rng.Intn(3)]
		h := []int{4, 8, 16}[rng.Intn(3)]
		cx, cy := rng.Intn(64-w), rng.Intn(48-h)
		rx, ry := cx+rng.Intn(9)-4, cy+rng.Intn(9)-4
		got := SAD(cur.Y, ref.Y, cx, cy, rx, ry, w, h)
		want := SADRef(cur.Y, ref.Y, cx, cy, rx, ry, w, h)
		if got != want {
			t.Fatalf("SAD(%d,%d %d,%d %dx%d) = %d, ref %d", cx, cy, rx, ry, w, h, got, want)
		}
	}
}

func TestSearchRowsPanics(t *testing.T) {
	cur := randomFrame(32, 32, 12)
	dpb := h264.NewDPB(1)
	dpb.Push(randomFrame(32, 32, 13))
	field := h264.NewMVField(2, 2, 1)
	cases := []func(){
		func() { SearchRows(cur, dpb, Config{SearchRange: 0}, field, 0, 2) },
		func() { SearchRows(cur, dpb, Config{SearchRange: 300}, field, 0, 2) },
		func() { SearchRows(cur, dpb, Config{SearchRange: 2}, field, 0, 3) },
		func() { SearchRows(cur, dpb, Config{SearchRange: 2}, h264.NewMVField(1, 1, 1), 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSearchMB(b *testing.B) {
	cur := randomFrame(64, 48, 20)
	ref := randomFrame(64, 48, 21)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	cfg := Config{SearchRange: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchRows(cur, dpb, cfg, field, 0, 1)
	}
}
