package me

import (
	"math"
	"testing"

	"feves/internal/h264"
)

// smoothScene builds low-frequency content whose SAD landscape is a
// smooth basin — the statistics fast ME relies on. (On noise-like content
// the fast patterns stall on the flat plateau, which is precisely the
// content-dependence the paper avoids by fixing FSBM.)
func smoothScene(w, h int) *h264.Frame {
	f := h264.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 60*math.Sin(0.07*float64(x)+0.05*float64(y)) +
				30*math.Sin(0.03*float64(x)-0.04*float64(y))
			f.Y.Set(x, y, uint8(v))
		}
	}
	f.ExtendBorders()
	return f
}

func TestFastAlgosFindGlobalTranslation(t *testing.T) {
	ref := smoothScene(96, 96)
	for _, algo := range []Algorithm{ThreeStep, Diamond} {
		for _, sh := range [][2]int{{0, 0}, {4, -2}, {-6, 6}} {
			cur := shiftedFrame(ref, sh[0], sh[1])
			dpb := h264.NewDPB(1)
			dpb.Push(ref)
			field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
			SearchRowsAlgo(algo, cur, dpb, Config{SearchRange: 16}, field, 0, cur.MBHeight())
			mv, cost := field.Get(2, 2, 0, 0)
			if cost != 0 {
				t.Errorf("%v shift %v: SAD %d, want 0", algo, sh, cost)
			}
			if int(mv.X) != -sh[0] || int(mv.Y) != -sh[1] {
				t.Errorf("%v shift %v: MV %v", algo, sh, mv)
			}
		}
	}
}

func TestFastAlgosNeverWorseThanZeroMV(t *testing.T) {
	cur := randomFrame(64, 48, 31)
	ref := randomFrame(64, 48, 32)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	for _, algo := range []Algorithm{ThreeStep, Diamond} {
		field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
		SearchRowsAlgo(algo, cur, dpb, Config{SearchRange: 8}, field, 0, cur.MBHeight())
		for mby := 0; mby < cur.MBHeight(); mby++ {
			for mbx := 0; mbx < cur.MBWidth(); mbx++ {
				zero := SAD(cur.Y, ref.Y, mbx*16, mby*16, mbx*16, mby*16, 16, 16)
				_, cost := field.Get(mbx, mby, 0, 0)
				if cost > zero {
					t.Fatalf("%v MB(%d,%d): %d worse than zero-MV %d", algo, mbx, mby, cost, zero)
				}
			}
		}
	}
}

func TestFastNeverBeatsFullSearch(t *testing.T) {
	// Full search is exhaustive: no fast algorithm can find a lower SAD.
	cur := randomFrame(64, 64, 33)
	ref := randomFrame(64, 64, 34)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 8}
	full := h264.NewMVField(4, 4, 1)
	SearchRows(cur, dpb, cfg, full, 0, 4)
	for _, algo := range []Algorithm{ThreeStep, Diamond} {
		fast := h264.NewMVField(4, 4, 1)
		SearchRowsAlgo(algo, cur, dpb, cfg, fast, 0, 4)
		for mby := 0; mby < 4; mby++ {
			for mbx := 0; mbx < 4; mbx++ {
				for part := 0; part < h264.TotalPartitions; part++ {
					_, fc := full.Get(mbx, mby, part, 0)
					_, qc := fast.Get(mbx, mby, part, 0)
					if qc < fc {
						t.Fatalf("%v found SAD %d below exhaustive %d", algo, qc, fc)
					}
				}
			}
		}
	}
}

func TestFastRowSliceable(t *testing.T) {
	cur := randomFrame(48, 64, 35)
	ref := randomFrame(48, 64, 36)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 8}
	for _, algo := range []Algorithm{ThreeStep, Diamond} {
		full := h264.NewMVField(3, 4, 1)
		SearchRowsAlgo(algo, cur, dpb, cfg, full, 0, 4)
		part := h264.NewMVField(3, 4, 1)
		SearchRowsAlgo(algo, cur, dpb, cfg, part, 2, 4)
		SearchRowsAlgo(algo, cur, dpb, cfg, part, 0, 2)
		if !full.Equal(part) {
			t.Fatalf("%v is not row-sliceable", algo)
		}
	}
}

func TestFastVectorsWithinRange(t *testing.T) {
	cur := randomFrame(48, 48, 37)
	ref := randomFrame(48, 48, 38)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	const r = 4
	for _, algo := range []Algorithm{ThreeStep, Diamond} {
		field := h264.NewMVField(3, 3, 1)
		SearchRowsAlgo(algo, cur, dpb, Config{SearchRange: r}, field, 0, 3)
		for mby := 0; mby < 3; mby++ {
			for mbx := 0; mbx < 3; mbx++ {
				for part := 0; part < h264.TotalPartitions; part++ {
					mv, _ := field.Get(mbx, mby, part, 0)
					if int(mv.X) < -r || int(mv.X) >= r || int(mv.Y) < -r || int(mv.Y) >= r {
						t.Fatalf("%v vector %v outside ±%d", algo, mv, r)
					}
				}
			}
		}
	}
}

func TestFastDPBRampUp(t *testing.T) {
	cur := randomFrame(32, 32, 39)
	ref := randomFrame(32, 32, 40)
	dpb := h264.NewDPB(3)
	dpb.Push(ref)
	field := h264.NewMVField(2, 2, 3)
	SearchRowsAlgo(Diamond, cur, dpb, Config{SearchRange: 4}, field, 0, 2)
	for rf := 1; rf < 3; rf++ {
		if _, c := field.Get(0, 0, 0, rf); c != math.MaxInt32 {
			t.Fatalf("missing ref %d should be unusable", rf)
		}
	}
}

func TestFullSearchDelegation(t *testing.T) {
	cur := randomFrame(32, 32, 41)
	ref := randomFrame(32, 32, 42)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 4}
	a := h264.NewMVField(2, 2, 1)
	SearchRowsAlgo(FullSearch, cur, dpb, cfg, a, 0, 2)
	b := h264.NewMVField(2, 2, 1)
	SearchRows(cur, dpb, cfg, b, 0, 2)
	if !a.Equal(b) {
		t.Fatal("FullSearch via SearchRowsAlgo differs from SearchRows")
	}
}

func TestAlgorithmString(t *testing.T) {
	if FullSearch.String() != "full-search" || ThreeStep.String() != "three-step" ||
		Diamond.String() != "diamond" || Algorithm(9).String() != "invalid" {
		t.Fatal("labels wrong")
	}
}

func BenchmarkFastVsFull(b *testing.B) {
	cur := randomFrame(64, 48, 43)
	ref := randomFrame(64, 48, 44)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := Config{SearchRange: 16}
	for _, algo := range []Algorithm{FullSearch, ThreeStep, Diamond} {
		b.Run(algo.String(), func(b *testing.B) {
			field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
			for i := 0; i < b.N; i++ {
				SearchRowsAlgo(algo, cur, dpb, cfg, field, 0, 1)
			}
		})
	}
}

func TestEvalCounting(t *testing.T) {
	cur := randomFrame(64, 48, 45)
	ref := randomFrame(64, 48, 46)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	var evals int64
	cfg := Config{SearchRange: 8, Evals: &evals}
	field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	SearchRows(cur, dpb, cfg, field, 0, cur.MBHeight())
	mbs := int64(cur.MBWidth() * cur.MBHeight())
	if evals != mbs*int64(cfg.Candidates()) {
		t.Fatalf("full search evals %d, want %d (content-independent constant)",
			evals, mbs*int64(cfg.Candidates()))
	}
	evals = 0
	SearchRowsAlgo(Diamond, cur, dpb, cfg, field, 0, cur.MBHeight())
	if evals <= 0 || evals >= mbs*int64(cfg.Candidates()) {
		t.Fatalf("diamond evals %d should be positive and far below full search", evals)
	}
}

func TestFastMEWorkloadIsContentDependent(t *testing.T) {
	// The design rationale behind the paper's FSBM choice, quantified:
	// full search evaluates the same count on any content, diamond's
	// count varies with motion.
	ref := smoothScene(96, 96)
	still := ref.Clone()
	moving := h264.NewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			moving.Y.Set(x, y, ref.Y.At(x-12, y-9))
		}
	}
	moving.ExtendBorders()
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	count := func(algo Algorithm, cf *h264.Frame) int64 {
		var evals int64
		cfg := Config{SearchRange: 16, Evals: &evals}
		field := h264.NewMVField(cf.MBWidth(), cf.MBHeight(), 1)
		SearchRowsAlgo(algo, cf, dpb, cfg, field, 0, cf.MBHeight())
		return evals
	}
	if a, b := count(FullSearch, still), count(FullSearch, moving); a != b {
		t.Fatalf("FSBM workload varied with content: %d vs %d", a, b)
	}
	if a, b := count(Diamond, still), count(Diamond, moving); a == b {
		t.Fatalf("diamond workload did not vary with content (%d)", a)
	}
}
