package me

import (
	"testing"

	"feves/internal/h264"
)

// benchSearchRows times the FSBM kernel over a full QCIF frame and reports
// the per-macroblock cost, the unit the device calibration (Fig. 6) and the
// bench-regression gate track.
func benchSearchRows(b *testing.B, sr int) {
	cur := randomFrame(176, 144, 20)
	ref := randomFrame(176, 144, 21)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	field := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	cfg := Config{SearchRange: sr}
	mbs := cur.MBWidth() * cur.MBHeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SearchRows(cur, dpb, cfg, field, 0, cur.MBHeight())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*mbs), "ns/MB")
}

func BenchmarkSearchRowsSA16(b *testing.B) { benchSearchRows(b, 8) }
func BenchmarkSearchRowsSA32(b *testing.B) { benchSearchRows(b, 16) }
