package me

import (
	"math"

	"feves/internal/h264"
)

// SearchRowsRef is the scalar sample-at-a-time FSBM kernel retained as the
// bit-exactness oracle for the SWAR kernel and as the baseline the device
// calibration and the bench-regression speedup ratios are measured against.
// It matches SearchRows exactly (same scan order, same tie-breaking) but
// shares none of its inner-loop code. cfg.Evals is ignored.
func SearchRowsRef(cf *h264.Frame, dpb *h264.DPB, cfg Config, field *h264.MVField, rowLo, rowHi int) {
	checkSearchArgs(cf, cfg, field, rowLo, rowHi)
	nrf := dpb.Len()
	if nrf > field.NumRF {
		nrf = field.NumRF
	}
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < field.NumRF; rf++ {
				if rf < nrf {
					searchMBRef(cf.Y, dpb.Ref(rf).Y, cfg.SearchRange, field, mbx, mby, rf)
				} else {
					markUnusable(field, mbx, mby, rf)
				}
			}
		}
	}
}

func searchMBRef(cur, ref *h264.Plane, r int, field *h264.MVField, mbx, mby, rf int) {
	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize

	var best [h264.TotalPartitions]int32
	var bestMV [h264.TotalPartitions]h264.MV
	for i := range best {
		best[i] = math.MaxInt32
	}

	curRaw, refRaw := cur.Raw(), ref.Raw()
	refStride := ref.Stride

	var curOff [16]int
	for y := 0; y < 16; y++ {
		curOff[y] = cur.Idx(x0, y0+y)
	}

	for dy := -r; dy < r; dy++ {
		for dx := -r; dx < r; dx++ {
			var blk4 [16]int32
			refBase := ref.Idx(x0+dx, y0+dy)
			for y := 0; y < 16; y++ {
				co := curOff[y]
				ro := refBase + y*refStride
				bi := (y >> 2) * 4
				for g := 0; g < 4; g++ {
					c0, c1, c2, c3 := curRaw[co], curRaw[co+1], curRaw[co+2], curRaw[co+3]
					r0, r1, r2, r3 := refRaw[ro], refRaw[ro+1], refRaw[ro+2], refRaw[ro+3]
					blk4[bi+g] += absDiff(c0, r0) + absDiff(c1, r1) + absDiff(c2, r2) + absDiff(c3, r3)
					co += 4
					ro += 4
				}
			}

			var s8x4 [8]int32
			for row := 0; row < 4; row++ {
				s8x4[row*2] = blk4[row*4] + blk4[row*4+1]
				s8x4[row*2+1] = blk4[row*4+2] + blk4[row*4+3]
			}
			var s4x8 [8]int32
			for half := 0; half < 2; half++ {
				for col := 0; col < 4; col++ {
					s4x8[half*4+col] = blk4[(2*half)*4+col] + blk4[(2*half+1)*4+col]
				}
			}
			var s8x8 [4]int32
			s8x8[0] = s8x4[0] + s8x4[2]
			s8x8[1] = s8x4[1] + s8x4[3]
			s8x8[2] = s8x4[4] + s8x4[6]
			s8x8[3] = s8x4[5] + s8x4[7]
			s16x8 := [2]int32{s8x8[0] + s8x8[1], s8x8[2] + s8x8[3]}
			s8x16 := [2]int32{s8x8[0] + s8x8[2], s8x8[1] + s8x8[3]}
			s16x16 := s16x8[0] + s16x8[1]

			mv := h264.MV{X: int16(dx), Y: int16(dy)}
			update(&best, &bestMV, h264.Part16x16.Base(), mv, s16x16)
			updateSlice(&best, &bestMV, h264.Part16x8.Base(), mv, s16x8[:])
			updateSlice(&best, &bestMV, h264.Part8x16.Base(), mv, s8x16[:])
			updateSlice(&best, &bestMV, h264.Part8x8.Base(), mv, s8x8[:])
			updateSlice(&best, &bestMV, h264.Part8x4.Base(), mv, s8x4[:])
			updateSlice(&best, &bestMV, h264.Part4x8.Base(), mv, s4x8[:])
			updateSlice(&best, &bestMV, h264.Part4x4.Base(), mv, blk4[:])
		}
	}

	for part := 0; part < h264.TotalPartitions; part++ {
		field.Set(mbx, mby, part, rf, bestMV[part], best[part])
	}
}
