package h264

import (
	"math/rand"
	"testing"
)

func TestNewFrameGeometry(t *testing.T) {
	f := NewFrame(64, 48)
	if f.MBWidth() != 4 || f.MBHeight() != 3 {
		t.Fatalf("MB grid = %dx%d, want 4x3", f.MBWidth(), f.MBHeight())
	}
	if f.Cb.W != 32 || f.Cb.H != 24 || f.Cr.W != 32 || f.Cr.H != 24 {
		t.Fatal("chroma planes are not quarter size")
	}
}

func TestNewFramePanicsOnNonMBMultiple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple-of-16 size")
		}
	}()
	NewFrame(60, 48)
}

func TestFrameYUVRoundTrip(t *testing.T) {
	f := NewFrame(32, 32)
	rng := rand.New(rand.NewSource(7))
	data := make([]uint8, 32*32*3/2)
	rng.Read(data)
	if err := f.LoadYUV(data); err != nil {
		t.Fatal(err)
	}
	out := f.PackedYUV()
	if len(out) != len(data) {
		t.Fatalf("packed length = %d, want %d", len(out), len(data))
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestFrameLoadYUVSizeError(t *testing.T) {
	f := NewFrame(16, 16)
	if err := f.LoadYUV(make([]uint8, 10)); err == nil {
		t.Fatal("expected error on short buffer")
	}
}

func TestFrameEqualAndClone(t *testing.T) {
	a := NewFrame(32, 16)
	data := make([]uint8, 32*16*3/2)
	for i := range data {
		data[i] = uint8(i)
	}
	if err := a.LoadYUV(data); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	b.Cr.Set(0, 0, b.Cr.At(0, 0)+1)
	if a.Equal(b) {
		t.Fatal("chroma mutation should break equality")
	}
}

func TestDPBEvictionOrder(t *testing.T) {
	d := NewDPB(3)
	if d.Cap() != 3 || d.Len() != 0 {
		t.Fatal("fresh DPB state wrong")
	}
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f := NewFrame(16, 16)
		f.Poc = i
		frames = append(frames, f)
		d.Push(f)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	// Most recent first: POC 4, 3, 2.
	for i, want := range []int{4, 3, 2} {
		if d.Ref(i).Poc != want {
			t.Errorf("Ref(%d).Poc = %d, want %d", i, d.Ref(i).Poc, want)
		}
	}
	d.Clear()
	if d.Len() != 0 {
		t.Fatal("Clear did not empty DPB")
	}
}

func TestDPBRampUp(t *testing.T) {
	// The paper's Fig. 7(b) relies on the DPB holding fewer frames than its
	// capacity during the first inter-frames.
	d := NewDPB(5)
	for i := 1; i <= 7; i++ {
		d.Push(NewFrame(16, 16))
		want := i
		if want > 5 {
			want = 5
		}
		if d.Len() != want {
			t.Fatalf("after %d pushes Len = %d, want %d", i, d.Len(), want)
		}
	}
}

func TestDPBCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDPB(0) should panic")
		}
	}()
	NewDPB(0)
}
