package h264

import (
	"sync/atomic"
	"testing"
)

// coverKernel counts, per row, how many times the pool visited it.
type coverKernel struct {
	hits []int32
}

func (k *coverKernel) RunRows(lo, hi int) {
	for r := lo; r < hi; r++ {
		atomic.AddInt32(&k.hits[r], 1)
	}
}

// TestRowPoolCoversEveryRowOnce exercises the ceil-division chunking on
// ranges that do not divide evenly among the requested ways — including
// the n=9/ways=4 shape where ceil division produces fewer chunks than
// ways — plus offset, empty and single-row ranges.
func TestRowPoolCoversEveryRowOnce(t *testing.T) {
	p := NewRowPool(4)
	cases := []struct{ lo, hi, ways int }{
		{0, 9, 4},   // chunk 3 -> only 3 parts for 4 ways
		{0, 11, 3},  // odd row count
		{0, 11, 4},  // odd row count, more ways
		{0, 11, 8},  // GPU_K stream count on a short frame
		{3, 14, 5},  // offset range
		{0, 1, 8},   // single row, many ways
		{0, 16, 16}, // one row per way
		{0, 7, 1},   // serial fallback
		{5, 5, 4},   // empty range
	}
	for _, tc := range cases {
		k := &coverKernel{hits: make([]int32, 20)}
		p.Run(k, tc.lo, tc.hi, tc.ways)
		for r := 0; r < len(k.hits); r++ {
			want := int32(0)
			if r >= tc.lo && r < tc.hi {
				want = 1
			}
			if k.hits[r] != want {
				t.Fatalf("Run(%d, %d, ways=%d): row %d visited %d times, want %d",
					tc.lo, tc.hi, tc.ways, r, k.hits[r], want)
			}
		}
	}
}

// TestParallelRowsCoversEveryRowOnce repeats the coverage check through
// the shared-pool entry point the kernel wrappers use.
func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	for _, tc := range []struct{ lo, hi, ways int }{
		{0, 11, 4}, {0, 9, 4}, {0, 68, 8}, {0, 3, 0}, {2, 2, 4},
	} {
		k := &coverKernel{hits: make([]int32, 80)}
		ParallelRows(k, tc.lo, tc.hi, tc.ways)
		for r := 0; r < len(k.hits); r++ {
			want := int32(0)
			if r >= tc.lo && r < tc.hi {
				want = 1
			}
			if k.hits[r] != want {
				t.Fatalf("ParallelRows(%d, %d, ways=%d): row %d visited %d times, want %d",
					tc.lo, tc.hi, tc.ways, r, k.hits[r], want)
			}
		}
	}
}

// TestRowPoolZeroSteadyStateAllocs pins the pool's allocation-free steady
// state: jobs travel by value and WaitGroups come from the freelist, so a
// Run dispatch allocates nothing once the pool exists.
func TestRowPoolZeroSteadyStateAllocs(t *testing.T) {
	p := NewRowPool(4)
	k := &coverKernel{hits: make([]int32, 16)}
	p.Run(k, 0, 16, 4) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		p.Run(k, 0, 16, 4)
	})
	if allocs != 0 {
		t.Fatalf("RowPool.Run allocates %.1f objects per dispatch, want 0", allocs)
	}
}
