package h264

import "testing"

func TestMVFieldIndexDisjoint(t *testing.T) {
	f := NewMVField(3, 2, 2)
	seen := make(map[int]bool)
	for mby := 0; mby < 2; mby++ {
		for mbx := 0; mbx < 3; mbx++ {
			for part := 0; part < TotalPartitions; part++ {
				for rf := 0; rf < 2; rf++ {
					i := f.Index(mbx, mby, part, rf)
					if i < 0 || i >= len(f.MV) {
						t.Fatalf("index %d out of range", i)
					}
					if seen[i] {
						t.Fatalf("index collision at (%d,%d,%d,%d)", mbx, mby, part, rf)
					}
					seen[i] = true
				}
			}
		}
	}
	if len(seen) != len(f.MV) {
		t.Fatalf("covered %d of %d slots", len(seen), len(f.MV))
	}
}

func TestMVFieldSetGet(t *testing.T) {
	f := NewMVField(2, 2, 3)
	f.Set(1, 1, 40, 2, MV{-3, 7}, 1234)
	mv, cost := f.Get(1, 1, 40, 2)
	if mv != (MV{-3, 7}) || cost != 1234 {
		t.Fatalf("got %v/%d", mv, cost)
	}
}

func TestMVFieldRowSlice(t *testing.T) {
	f := NewMVField(4, 3, 2)
	per := 4 * TotalPartitions * 2
	lo, hi := f.RowSlice(1, 3)
	if lo != per || hi != 3*per {
		t.Fatalf("RowSlice = [%d,%d), want [%d,%d)", lo, hi, per, 3*per)
	}
	if _, hi := f.RowSlice(0, 3); hi != len(f.MV) {
		t.Fatal("full row slice must cover the whole field")
	}
}

func TestMVFieldEqualRows(t *testing.T) {
	a := NewMVField(2, 3, 1)
	b := NewMVField(2, 3, 1)
	a.Set(0, 2, 5, 0, MV{1, 1}, 9)
	if !a.EqualRows(b, 0, 2) {
		t.Fatal("rows 0-2 should match")
	}
	if a.EqualRows(b, 2, 3) {
		t.Fatal("row 2 should differ")
	}
	if a.Equal(b) {
		t.Fatal("fields should differ")
	}
	b.Set(0, 2, 5, 0, MV{1, 1}, 9)
	if !a.Equal(b) {
		t.Fatal("fields should now match")
	}
	if a.Equal(NewMVField(2, 3, 2)) {
		t.Fatal("different RF count must not compare equal")
	}
}

func TestMVArithmetic(t *testing.T) {
	v := MV{3, -2}
	if v.Add(MV{-1, 5}) != (MV{2, 3}) {
		t.Fatal("Add wrong")
	}
	if v.Scale4() != (MV{12, -8}) {
		t.Fatal("Scale4 wrong")
	}
}
