package mc

import (
	"math"
	"math/rand"
	"testing"

	"feves/internal/h264"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
	"feves/internal/h264/sme"
)

func randomFrame(w, h int, seed int64) *h264.Frame {
	f := h264.NewFrame(w, h)
	rng := rand.New(rand.NewSource(seed))
	data := make([]uint8, w*h*3/2)
	rng.Read(data)
	if err := f.LoadYUV(data); err != nil {
		panic(err)
	}
	return f
}

func pipeline(cur, ref *h264.Frame, sr int) (*h264.MVField, []*interp.SubFrame, []*h264.Frame) {
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	meF := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	me.SearchRows(cur, dpb, me.Config{SearchRange: sr}, meF, 0, cur.MBHeight())
	sf := interp.NewSubFrame(ref.W, ref.H)
	interp.Interpolate(ref.Y, sf)
	smeF := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	sme.RefineRows(cur, []*interp.SubFrame{sf}, meF, smeF, 0, cur.MBHeight())
	return smeF, []*interp.SubFrame{sf}, []*h264.Frame{ref}
}

func TestLambdaGrowsWithQP(t *testing.T) {
	prev := 0.0
	for qp := 0; qp <= 51; qp++ {
		l := Lambda(qp)
		if l <= prev {
			t.Fatalf("λ not strictly increasing at QP %d", qp)
		}
		prev = l
	}
	if math.Abs(Lambda(12)-math.Sqrt(0.85)) > 1e-12 {
		t.Fatalf("Lambda(12) = %v", Lambda(12))
	}
}

func TestMedian3(t *testing.T) {
	cases := [][4]int16{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 2, 5, 2}, {0, 0, 0, 0},
		{-5, 10, 2, 2}, {7, -7, 0, 0},
	}
	for _, c := range cases {
		if got := median3(c[0], c[1], c[2]); got != c[3] {
			t.Errorf("median3(%d,%d,%d) = %d, want %d", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestMedianPredictorNeighbours(t *testing.T) {
	rep := make([]h264.MV, 9)       // 3x3 grid
	rep[3+0] = h264.MV{X: 8, Y: 0}  // left of (1,1)
	rep[0+1] = h264.MV{X: 4, Y: 4}  // top of (1,1)
	rep[0+2] = h264.MV{X: 12, Y: 8} // top-right of (1,1)
	got := MedianPredictor(rep, 3, 3, 1, 1)
	if got != (h264.MV{X: 8, Y: 4}) {
		t.Fatalf("predictor = %v, want {8 4}", got)
	}
	// Top-left corner: no neighbours, zero predictor.
	if MedianPredictor(rep, 3, 3, 0, 0) != (h264.MV{}) {
		t.Fatal("corner predictor should be zero")
	}
}

func TestDecisionCoversEveryMB(t *testing.T) {
	cur := randomFrame(64, 48, 1)
	ref := randomFrame(64, 48, 2)
	smeF, _, _ := pipeline(cur, ref, 4)
	dec := DecideFrame(smeF, 28)
	if len(dec.MBs) != 12 {
		t.Fatalf("%d decisions, want 12", len(dec.MBs))
	}
	for i, d := range dec.MBs {
		if d.Mode >= h264.NumPartModes {
			t.Fatalf("MB %d: invalid mode %d", i, d.Mode)
		}
		if d.Cost < 0 {
			t.Fatalf("MB %d: negative cost", i)
		}
	}
}

func TestDecisionPrefersLargePartitionsOnTranslation(t *testing.T) {
	// Pure global translation: a single 16×16 partition should win (any
	// finer mode has equal SAD but strictly more MV/ref rate).
	ref := randomFrame(64, 64, 3)
	cur := h264.NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			cur.Y.Set(x, y, ref.Y.At(x-3, y-2))
		}
	}
	cur.Cb.CopyFrom(ref.Cb)
	cur.Cr.CopyFrom(ref.Cr)
	cur.ExtendBorders()
	smeF, _, _ := pipeline(cur, ref, 8)
	dec := DecideFrame(smeF, 28)
	// Interior macroblocks must choose 16x16.
	for mby := 1; mby < 3; mby++ {
		for mbx := 1; mbx < 3; mbx++ {
			if m := dec.At(mbx, mby).Mode; m != h264.Part16x16 {
				t.Fatalf("MB(%d,%d) chose %v, want 16x16", mbx, mby, m)
			}
		}
	}
}

func TestHigherQPPrefersCoarserModes(t *testing.T) {
	cur := randomFrame(64, 64, 4)
	ref := randomFrame(64, 64, 5)
	smeF, _, _ := pipeline(cur, ref, 4)
	fine := 0
	for _, d := range DecideFrame(smeF, 0).MBs {
		fine += d.Mode.Count()
	}
	coarse := 0
	for _, d := range DecideFrame(smeF, 51).MBs {
		coarse += d.Mode.Count()
	}
	if coarse > fine {
		t.Fatalf("QP 51 chose more partitions (%d) than QP 0 (%d)", coarse, fine)
	}
}

func TestPredictMBZeroMVReproducesReference(t *testing.T) {
	ref := randomFrame(48, 48, 6)
	sf := interp.NewSubFrame(48, 48)
	interp.Interpolate(ref.Y, sf)
	dec := h264.MBDecision{Mode: h264.Part16x16}
	var predY [256]uint8
	var predCb, predCr [64]uint8
	PredictMB(&dec, []*interp.SubFrame{sf}, []*h264.Frame{ref}, 1, 1, &predY, &predCb, &predCr)
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			if predY[j*16+i] != ref.Y.At(16+i, 16+j) {
				t.Fatalf("luma (%d,%d) mismatch", i, j)
			}
		}
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			if predCb[j*8+i] != ref.Cb.At(8+i, 8+j) {
				t.Fatalf("Cb (%d,%d) mismatch", i, j)
			}
			if predCr[j*8+i] != ref.Cr.At(8+i, 8+j) {
				t.Fatalf("Cr (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestPredictMBIntegerMV(t *testing.T) {
	ref := randomFrame(48, 48, 7)
	sf := interp.NewSubFrame(48, 48)
	interp.Interpolate(ref.Y, sf)
	dec := h264.MBDecision{Mode: h264.Part16x16}
	dec.MV[0] = h264.MV{X: 8, Y: -4} // +2, -1 full pel
	var predY [256]uint8
	var predCb, predCr [64]uint8
	PredictMB(&dec, []*interp.SubFrame{sf}, []*h264.Frame{ref}, 1, 1, &predY, &predCb, &predCr)
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			if predY[j*16+i] != ref.Y.At(16+i+2, 16+j-1) {
				t.Fatalf("luma (%d,%d) mismatch for integer MV", i, j)
			}
		}
	}
	// Chroma at full-pel luma displacement (2,-1) is chroma (1,-0.5):
	// fractional, so just check it stays within the bilinear hull.
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			a := int(ref.Cb.At(8+i+1, 8+j-1))
			b := int(ref.Cb.At(8+i+1, 8+j))
			lo, hi := minInt(a, b), maxInt(a, b)
			if v := int(predCb[j*8+i]); v < lo || v > hi {
				t.Fatalf("Cb (%d,%d) = %d outside bilinear hull [%d,%d]", i, j, v, lo, hi)
			}
		}
	}
}

func TestPredictMBPerPartitionRefs(t *testing.T) {
	refA := randomFrame(32, 32, 8)
	refB := randomFrame(32, 32, 9)
	sfA := interp.NewSubFrame(32, 32)
	interp.Interpolate(refA.Y, sfA)
	sfB := interp.NewSubFrame(32, 32)
	interp.Interpolate(refB.Y, sfB)
	dec := h264.MBDecision{Mode: h264.Part16x8}
	dec.Ref[0] = 0
	dec.Ref[1] = 1
	var predY [256]uint8
	var predCb, predCr [64]uint8
	PredictMB(&dec, []*interp.SubFrame{sfA, sfB}, []*h264.Frame{refA, refB}, 0, 0, &predY, &predCb, &predCr)
	if predY[0] != refA.Y.At(0, 0) {
		t.Fatal("top partition should come from ref 0")
	}
	if predY[8*16] != refB.Y.At(0, 8) {
		t.Fatal("bottom partition should come from ref 1")
	}
}

func TestPredictMBPanicsOnMissingSF(t *testing.T) {
	dec := h264.MBDecision{Mode: h264.Part16x16}
	var predY [256]uint8
	var predCb, predCr [64]uint8
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil sub-frame")
		}
	}()
	PredictMB(&dec, []*interp.SubFrame{nil}, []*h264.Frame{nil}, 0, 0, &predY, &predCb, &predCr)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPredictMBMatchesSampleReference(t *testing.T) {
	// The copy-based luma / hoisted-weight chroma path must be bit-exact
	// with the retained sample-at-a-time oracle across real decisions,
	// which exercise every partition mode and fractional phase.
	cur := randomFrame(80, 64, 40)
	ref := randomFrame(80, 64, 41)
	smeF, sfs, refs := pipeline(cur, ref, 8)
	dec := DecideFrame(smeF, 30)
	for mby := 0; mby < cur.MBHeight(); mby++ {
		for mbx := 0; mbx < cur.MBWidth(); mbx++ {
			var fy, ry [256]uint8
			var fcb, fcr, rcb, rcr [64]uint8
			PredictMB(dec.At(mbx, mby), sfs, refs, mbx, mby, &fy, &fcb, &fcr)
			PredictMBRef(dec.At(mbx, mby), sfs, refs, mbx, mby, &ry, &rcb, &rcr)
			if fy != ry || fcb != rcb || fcr != rcr {
				t.Fatalf("MB(%d,%d) mode %v: fast prediction differs from reference",
					mbx, mby, dec.At(mbx, mby).Mode)
			}
		}
	}
}
