package mc

import (
	"fmt"

	"feves/internal/h264"
	"feves/internal/h264/interp"
)

// PredictMBRef is the sample-at-a-time prediction kernel retained as the
// bit-exactness oracle for the copy-based PredictMB: quarter-pel luma via
// SubFrame.Sample per pixel and eighth-pel chroma via chromaSample per
// pixel, sharing no inner-loop code with the fast path.
func PredictMBRef(dec *h264.MBDecision, sfs []*interp.SubFrame, refs []*h264.Frame,
	mbx, mby int, predY *[256]uint8, predCb, predCr *[64]uint8) {
	mode := dec.Mode
	w, h := mode.Size()
	for k := 0; k < mode.Count(); k++ {
		ox, oy := mode.Offset(k)
		rf := int(dec.Ref[k])
		mv := dec.MV[k]
		sf := sfs[rf]
		if sf == nil {
			panic(fmt.Sprintf("mc: decision references missing sub-frame %d", rf))
		}
		x0, y0 := mbx*h264.MBSize+ox, mby*h264.MBSize+oy
		for j := 0; j < h; j++ {
			for i := 0; i < w; i++ {
				predY[(oy+j)*16+ox+i] = sf.Sample(4*(x0+i)+int(mv.X), 4*(y0+j)+int(mv.Y))
			}
		}
		cw, ch := w/2, h/2
		cx0, cy0 := x0/2, y0/2
		cox, coy := ox/2, oy/2
		for j := 0; j < ch; j++ {
			for i := 0; i < cw; i++ {
				predCb[(coy+j)*8+cox+i] = chromaSample(refs[rf].Cb, cx0+i, cy0+j, mv)
				predCr[(coy+j)*8+cox+i] = chromaSample(refs[rf].Cr, cx0+i, cy0+j, mv)
			}
		}
	}
}
