package mc

import (
	"testing"
)

// BenchmarkPredictFrame times quarter-pel luma + eighth-pel chroma
// prediction for every macroblock of a QCIF frame and reports the
// per-macroblock cost tracked by the bench-regression gate.
func BenchmarkPredictFrame(b *testing.B) {
	cur := randomFrame(176, 144, 50)
	ref := randomFrame(176, 144, 51)
	smeF, sfs, refs := pipeline(cur, ref, 8)
	dec := DecideFrame(smeF, 30)
	mbw, mbh := cur.MBWidth(), cur.MBHeight()
	var predY [256]uint8
	var predCb, predCr [64]uint8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for mby := 0; mby < mbh; mby++ {
			for mbx := 0; mbx < mbw; mbx++ {
				PredictMB(dec.At(mbx, mby), sfs, refs, mbx, mby, &predY, &predCb, &predCr)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*mbw*mbh), "ns/MB")
}
