// Package mc implements the Motion Compensation inter-loop module of the
// FEVES reproduction: per-macroblock partitioning-mode decision over the 7
// modes using the refined SME costs plus a λ-weighted motion-rate estimate,
// and the construction of the luma/chroma prediction signal from the
// quarter-pel SF structure and the reference chroma planes.
//
// Per the paper, MC belongs to the R* module group that runs on a single
// (fastest) device, so mode decision may use sequential raster-order motion
// vector prediction without constraining the load balancer.
package mc

import (
	"fmt"
	"math"

	"feves/internal/h264"
	"feves/internal/h264/entropy"
	"feves/internal/h264/interp"
)

// Lambda returns the JM-style motion λ used to weight motion-vector rate
// against SAD in mode decision: sqrt(0.85·2^((QP−12)/3)).
func Lambda(qp int) float64 {
	return math.Sqrt(0.85 * math.Pow(2, float64(qp-12)/3))
}

// Decision is the per-frame mode-decision output: one MBDecision per
// macroblock in raster order.
type Decision struct {
	MBW, MBH int
	MBs      []h264.MBDecision
}

// At returns the decision for macroblock (mbx, mby).
func (d *Decision) At(mbx, mby int) *h264.MBDecision { return &d.MBs[mby*d.MBW+mbx] }

// DecideFrame selects, for every macroblock, the partition mode and
// per-partition reference frame minimizing SAD + λ·rate(MVD, ref). The MVD
// rate uses a per-macroblock median predictor over the left, top and
// top-right neighbours' decided 16×16-equivalent vectors (a simplification
// of the per-partition predictor of the standard, documented in DESIGN.md).
func DecideFrame(smeField *h264.MVField, qp int) *Decision {
	mbw, mbh := smeField.MBW, smeField.MBH
	dec := &Decision{MBW: mbw, MBH: mbh, MBs: make([]h264.MBDecision, mbw*mbh)}
	lambda := Lambda(qp)

	// repMV holds the representative (first-partition) vector of each
	// decided macroblock, used as the neighbour predictor.
	repMV := make([]h264.MV, mbw*mbh)

	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			pred := MedianPredictor(repMV, mbw, mbh, mbx, mby)
			best := h264.MBDecision{Cost: math.MaxInt32}
			for _, mode := range h264.AllModes() {
				cand, ok := evaluateMode(smeField, mbx, mby, mode, pred, lambda)
				if ok && cand.Cost < best.Cost {
					best = cand
				}
			}
			if best.Cost == math.MaxInt32 {
				// No usable reference (should not happen once the DPB holds
				// at least one frame) — fall back to zero-MV 16×16 on ref 0.
				best = h264.MBDecision{Mode: h264.Part16x16}
			}
			dec.MBs[mby*mbw+mbx] = best
			repMV[mby*mbw+mbx] = best.MV[0]
		}
	}
	return dec
}

func evaluateMode(f *h264.MVField, mbx, mby int, mode h264.PartMode, pred h264.MV, lambda float64) (h264.MBDecision, bool) {
	d := h264.MBDecision{Mode: mode}
	var total int64
	for k := 0; k < mode.Count(); k++ {
		part := mode.Base() + k
		bestCost := int64(math.MaxInt64)
		var bestRF int
		var bestMV h264.MV
		for rf := 0; rf < f.NumRF; rf++ {
			mv, sad := f.Get(mbx, mby, part, rf)
			if sad == math.MaxInt32 {
				continue
			}
			rate := entropy.SEBits(int32(mv.X-pred.X)) +
				entropy.SEBits(int32(mv.Y-pred.Y)) +
				entropy.UEBits(uint32(rf))
			cost := int64(sad) + int64(lambda*float64(rate)+0.5)
			if cost < bestCost {
				bestCost = cost
				bestRF = rf
				bestMV = mv
			}
		}
		if bestCost == math.MaxInt64 {
			return d, false
		}
		d.Ref[k] = uint8(bestRF)
		d.MV[k] = bestMV
		total += bestCost
	}
	if total > math.MaxInt32 {
		total = math.MaxInt32
	}
	d.Cost = int32(total)
	return d, true
}

// MedianPredictor returns the component-wise median of the decided
// neighbour vectors (left, top, top-right), with missing neighbours
// treated as zero, matching the spirit of the H.264 median predictor.
func MedianPredictor(repMV []h264.MV, mbw, mbh, mbx, mby int) h264.MV {
	return MedianPredictorSlice(repMV, mbw, mbx, mby, 0)
}

// MedianPredictorSlice is the slice-aware predictor: neighbours above the
// slice's first row (topRow) are unavailable, so prediction never crosses
// a slice boundary.
func MedianPredictorSlice(repMV []h264.MV, mbw, mbx, mby, topRow int) h264.MV {
	var a, b, c h264.MV
	if mbx > 0 {
		a = repMV[mby*mbw+mbx-1]
	}
	if mby > topRow {
		b = repMV[(mby-1)*mbw+mbx]
	}
	if mby > topRow && mbx+1 < mbw {
		c = repMV[(mby-1)*mbw+mbx+1]
	} else if mbx > 0 && mby > topRow {
		c = repMV[(mby-1)*mbw+mbx-1] // top-left substitution at the right edge
	}
	return h264.MV{X: median3(a.X, b.X, c.X), Y: median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int16) int16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// PredictMB builds the 16×16 luma and 8×8 chroma prediction of macroblock
// (mbx, mby) from the chosen decision. sfs[rf] supplies quarter-pel luma;
// refs[rf] supplies the chroma planes (1/8-pel bilinear interpolation).
func PredictMB(dec *h264.MBDecision, sfs []*interp.SubFrame, refs []*h264.Frame,
	mbx, mby int, predY *[256]uint8, predCb, predCr *[64]uint8) {
	mode := dec.Mode
	w, h := mode.Size()
	for k := 0; k < mode.Count(); k++ {
		ox, oy := mode.Offset(k)
		rf := int(dec.Ref[k])
		mv := dec.MV[k]
		sf := sfs[rf]
		if sf == nil {
			panic(fmt.Sprintf("mc: decision references missing sub-frame %d", rf))
		}
		x0, y0 := mbx*h264.MBSize+ox, mby*h264.MBSize+oy
		// Luma: the fractional phase (mv.X&3, mv.Y&3) is constant over the
		// partition, so every sample comes from one sub-position plane and
		// each output row is a contiguous run of it — a straight copy.
		plane := sf.Planes[(int(mv.Y)&3)*4+(int(mv.X)&3)]
		sx, sy := x0+int(mv.X)>>2, y0+int(mv.Y)>>2
		for j := 0; j < h; j++ {
			src := plane.RowPadded(sy + j)[plane.Pad+sx : plane.Pad+sx+w]
			copy(predY[(oy+j)*16+ox:(oy+j)*16+ox+w], src)
		}
		// Chroma: the luma quarter-pel vector is a chroma eighth-pel vector;
		// the bilinear weights are constant over the partition, so hoist them
		// and walk two source rows per output row.
		cw, ch := w/2, h/2
		cx0, cy0 := x0/2, y0/2
		cox, coy := ox/2, oy/2
		ix, iy := int(mv.X)>>3, int(mv.Y)>>3
		fx, fy := int32(int(mv.X)&7), int32(int(mv.Y)&7)
		w00 := (8 - fx) * (8 - fy)
		w01 := fx * (8 - fy)
		w10 := (8 - fx) * fy
		w11 := fx * fy
		for _, cp := range [2]struct {
			src *h264.Plane
			dst *[64]uint8
		}{{refs[rf].Cb, predCb}, {refs[rf].Cr, predCr}} {
			p := cp.src
			for j := 0; j < ch; j++ {
				r0 := p.RowPadded(cy0 + j + iy)[p.Pad+cx0+ix:]
				r1 := p.RowPadded(cy0 + j + iy + 1)[p.Pad+cx0+ix:]
				dst := cp.dst[(coy+j)*8+cox : (coy+j)*8+cox+cw]
				for i := 0; i < cw; i++ {
					dst[i] = uint8((w00*int32(r0[i]) + w01*int32(r0[i+1]) +
						w10*int32(r1[i]) + w11*int32(r1[i+1]) + 32) >> 6)
				}
			}
		}
	}
}

// chromaSample performs the H.264 eighth-pel bilinear chroma interpolation
// for chroma sample (x, y) displaced by luma quarter-pel vector mv.
func chromaSample(p *h264.Plane, x, y int, mv h264.MV) uint8 {
	ix, iy := int(mv.X)>>3, int(mv.Y)>>3
	fx, fy := int32(int(mv.X)&7), int32(int(mv.Y)&7)
	a := int32(p.At(x+ix, y+iy))
	b := int32(p.At(x+ix+1, y+iy))
	c := int32(p.At(x+ix, y+iy+1))
	d := int32(p.At(x+ix+1, y+iy+1))
	return uint8(((8-fx)*(8-fy)*a + fx*(8-fy)*b + (8-fx)*fy*c + fx*fy*d + 32) >> 6)
}
