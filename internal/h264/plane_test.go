package h264

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPlaneGeometry(t *testing.T) {
	p := NewPlane(32, 16, 8)
	if p.W != 32 || p.H != 16 || p.Pad != 8 {
		t.Fatalf("geometry mismatch: %+v", p)
	}
	if p.Stride != 32+16 {
		t.Fatalf("stride = %d, want 48", p.Stride)
	}
	if len(p.Raw()) != 48*32 {
		t.Fatalf("buffer length = %d, want %d", len(p.Raw()), 48*32)
	}
}

func TestNewPlanePanicsOnBadGeometry(t *testing.T) {
	for _, c := range [][3]int{{0, 4, 0}, {4, 0, 0}, {4, 4, -1}, {-1, 4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlane(%v) did not panic", c)
				}
			}()
			NewPlane(c[0], c[1], c[2])
		}()
	}
}

func TestPlaneSetAtRoundTrip(t *testing.T) {
	p := NewPlane(8, 8, 4)
	p.Set(3, 5, 200)
	if got := p.At(3, 5); got != 200 {
		t.Fatalf("At(3,5) = %d, want 200", got)
	}
	// Border coordinates are addressable.
	p.Set(-4, -4, 7)
	if got := p.At(-4, -4); got != 7 {
		t.Fatalf("border At = %d, want 7", got)
	}
}

func TestPlaneRowAliasing(t *testing.T) {
	p := NewPlane(8, 4, 2)
	row := p.Row(1)
	row[3] = 99
	if p.At(3, 1) != 99 {
		t.Fatal("Row does not alias plane storage")
	}
	if len(row) != 8 {
		t.Fatalf("Row length = %d, want 8", len(row))
	}
	rp := p.RowPadded(1)
	if len(rp) != 12 {
		t.Fatalf("RowPadded length = %d, want 12", len(rp))
	}
}

func TestExtendBorderReplicatesEdges(t *testing.T) {
	p := NewPlane(4, 4, 3)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			p.Set(x, y, uint8(16*y+x+1))
		}
	}
	p.ExtendBorder()
	cases := []struct {
		x, y int
		want uint8
	}{
		{-1, 0, p.At(0, 0)},  // left
		{-3, 2, p.At(0, 2)},  // far left
		{4, 1, p.At(3, 1)},   // right
		{6, 3, p.At(3, 3)},   // far right
		{0, -2, p.At(0, 0)},  // top
		{2, 6, p.At(2, 3)},   // bottom
		{-3, -3, p.At(0, 0)}, // corner
		{6, 6, p.At(3, 3)},   // corner
		{-1, 5, p.At(0, 3)},  // bottom-left mix
	}
	for _, c := range cases {
		if got := p.At(c.x, c.y); got != c.want {
			t.Errorf("border At(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestPlaneLoadPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]uint8, 16*8)
	for i := range data {
		data[i] = uint8(rng.Intn(256))
	}
	p := NewPlane(16, 8, 4)
	p.LoadFrom(data)
	out := p.Packed()
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d: got %d, want %d", i, out[i], data[i])
		}
	}
}

func TestPlaneLoadFromPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadFrom with wrong size did not panic")
		}
	}()
	NewPlane(4, 4, 0).LoadFrom(make([]uint8, 15))
}

func TestPlaneCopyFromAndEqual(t *testing.T) {
	a := NewPlane(8, 8, 2)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			a.Set(x, y, uint8(x*y))
		}
	}
	a.ExtendBorder()
	b := NewPlane(8, 8, 5) // different padding is fine
	b.CopyFrom(a)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("planes should be equal after CopyFrom")
	}
	b.Set(0, 0, b.At(0, 0)+1)
	if a.Equal(b) {
		t.Fatal("planes should differ after mutation")
	}
	if a.Equal(NewPlane(8, 4, 2)) {
		t.Fatal("different dimensions must not compare equal")
	}
}

func TestPlaneEqualComparesPictureAreaOnly(t *testing.T) {
	a := NewPlane(8, 8, 2)
	b := NewPlane(8, 8, 2)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			a.Set(x, y, uint8(x+y))
			b.Set(x, y, uint8(x+y))
		}
	}
	a.ExtendBorder()
	// b's border left stale: Equal must still report true.
	if !a.Equal(b) {
		t.Fatal("border content must not affect Equal")
	}
	b.Set(7, 7, b.At(7, 7)+1) // last picture sample, adjacent to border
	if a.Equal(b) {
		t.Fatal("difference in the last picture sample not detected")
	}
}

func TestPlaneClone(t *testing.T) {
	a := NewPlane(4, 4, 1)
	a.Set(2, 2, 42)
	a.ExtendBorder()
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Set(2, 2, 1)
	if a.At(2, 2) != 42 {
		t.Fatal("clone shares storage with original")
	}
}

func TestPlaneFill(t *testing.T) {
	p := NewPlane(4, 4, 2)
	p.Fill(128)
	if p.At(-2, -2) != 128 || p.At(5, 5) != 128 || p.At(1, 1) != 128 {
		t.Fatal("Fill did not set all samples")
	}
}

func TestPlanePackedLoadQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 4 * (1 + rng.Intn(8))
		h := 4 * (1 + rng.Intn(8))
		data := make([]uint8, w*h)
		rng.Read(data)
		p := NewPlane(w, h, rng.Intn(8))
		p.LoadFrom(data)
		out := p.Packed()
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
