package h264

import (
	"fmt"
	"runtime"
	"sync"
)

// RowKernel is a row-sliceable kernel: RunRows processes rows [lo, hi) and
// must be safe to call concurrently on disjoint ranges. All the inter-loop
// kernels (ME search, SME refinement, interpolation, per-plane deblocking)
// satisfy this by construction — their row slices write disjoint output.
type RowKernel interface {
	RunRows(lo, hi int)
}

// RowFunc adapts a plain function to RowKernel.
type RowFunc func(lo, hi int)

// RunRows implements RowKernel.
func (f RowFunc) RunRows(lo, hi int) { f(lo, hi) }

// rowJob is one contiguous chunk of a Run call. Jobs travel by value
// through the channel, so enqueueing performs no allocation.
type rowJob struct {
	k      RowKernel
	lo, hi int
	wg     *sync.WaitGroup
}

// RowPool executes row-sliceable kernels across a fixed set of worker
// goroutines, modelling the compute streams of one device. The pool is
// allocation-free in steady state: jobs are passed by value and the
// WaitGroups are recycled through a freelist channel.
type RowPool struct {
	jobs    chan rowJob
	wgs     chan *sync.WaitGroup
	workers int
}

// NewRowPool starts a pool with the given number of worker goroutines.
// The workers live for the lifetime of the process; shared use should go
// through ParallelRows instead of creating per-encoder pools.
func NewRowPool(workers int) *RowPool {
	if workers < 1 {
		panic(fmt.Sprintf("h264: row pool needs >= 1 worker, got %d", workers))
	}
	p := &RowPool{
		jobs:    make(chan rowJob, 4*workers),
		wgs:     make(chan *sync.WaitGroup, workers+1),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for j := range p.jobs {
				j.k.RunRows(j.lo, j.hi)
				j.wg.Done()
			}
		}()
	}
	for i := 0; i < cap(p.wgs); i++ {
		p.wgs <- new(sync.WaitGroup)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *RowPool) Workers() int { return p.workers }

// Run splits rows [lo, hi) into at most ways contiguous chunks, executes
// them on the pool (running one chunk inline on the caller), and returns
// when all rows are processed. ways <= 1 runs the kernel serially inline.
// The chunking is deterministic (ceil division), but the kernel must be
// order-independent across chunks for the result to be well-defined; the
// row-sliceable kernels are bit-exact under any partitioning.
func (p *RowPool) Run(k RowKernel, lo, hi, ways int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if ways > n {
		ways = n
	}
	if ways <= 1 {
		k.RunRows(lo, hi)
		return
	}
	chunk := (n + ways - 1) / ways
	parts := (n + chunk - 1) / chunk // may be fewer than ways
	wg := <-p.wgs
	wg.Add(parts - 1)
	first := lo + chunk // chunk [lo, lo+chunk) runs inline below
	for start := first; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		p.jobs <- rowJob{k: k, lo: start, hi: end, wg: wg}
	}
	k.RunRows(lo, first)
	wg.Wait()
	p.wgs <- wg
}

var (
	sharedPoolOnce sync.Once
	sharedPool     *RowPool
)

// ParallelRows runs the kernel over rows [lo, hi) split across at most
// ways chunks on the process-shared row pool (GOMAXPROCS workers). This is
// the entry point the slice-parallel kernel wrappers use: one call per
// device dispatch, ways = the device's compute-stream count.
func ParallelRows(k RowKernel, lo, hi, ways int) {
	if ways <= 1 || hi-lo <= 1 {
		if hi > lo {
			k.RunRows(lo, hi)
		}
		return
	}
	sharedPoolOnce.Do(func() {
		sharedPool = NewRowPool(runtime.GOMAXPROCS(0))
	})
	sharedPool.Run(k, lo, hi, ways)
}
