package h264

// MV is a motion vector. Units depend on context: full-pel for integer
// motion estimation (package me), quarter-pel for sub-pixel refinement
// (package sme) and for the final coded vectors.
type MV struct {
	X, Y int16
}

// Add returns the component-wise sum of two vectors.
func (v MV) Add(o MV) MV { return MV{v.X + o.X, v.Y + o.Y} }

// Scale4 converts a full-pel vector to quarter-pel units.
func (v MV) Scale4() MV { return MV{v.X * 4, v.Y * 4} }

// MVField stores, for one frame, a motion vector and a matching cost for
// every (macroblock, partition, reference frame) triple. It is the data
// structure exchanged between the ME, SME and MC modules — the "MV" buffer
// whose host↔device transfers the paper's Data Access Management schedules.
//
// Layout: index = ((mb)*TotalPartitions + part)*numRF + rf, with mb in
// raster order. Partition indices are flat across all 7 modes (see
// PartMode.Base).
type MVField struct {
	MBW, MBH int
	NumRF    int
	MV       []MV
	Cost     []int32
}

// NewMVField allocates a zeroed field for mbw×mbh macroblocks and numRF
// reference frames.
func NewMVField(mbw, mbh, numRF int) *MVField {
	n := mbw * mbh * TotalPartitions * numRF
	return &MVField{
		MBW: mbw, MBH: mbh, NumRF: numRF,
		MV:   make([]MV, n),
		Cost: make([]int32, n),
	}
}

// Index returns the flat index for macroblock (mbx, mby), flat partition
// index part (0..40) and reference frame rf.
func (f *MVField) Index(mbx, mby, part, rf int) int {
	mb := mby*f.MBW + mbx
	return (mb*TotalPartitions+part)*f.NumRF + rf
}

// Get returns the vector and cost at the given coordinates.
func (f *MVField) Get(mbx, mby, part, rf int) (MV, int32) {
	i := f.Index(mbx, mby, part, rf)
	return f.MV[i], f.Cost[i]
}

// Set stores a vector and cost.
func (f *MVField) Set(mbx, mby, part, rf int, mv MV, cost int32) {
	i := f.Index(mbx, mby, part, rf)
	f.MV[i] = mv
	f.Cost[i] = cost
}

// RowSlice returns the index range [lo, hi) covering macroblock rows
// [rowLo, rowHi). Used to account row-granular buffer transfers.
func (f *MVField) RowSlice(rowLo, rowHi int) (lo, hi int) {
	per := f.MBW * TotalPartitions * f.NumRF
	return rowLo * per, rowHi * per
}

// EqualRows reports whether two fields agree on macroblock rows [lo, hi).
func (f *MVField) EqualRows(g *MVField, lo, hi int) bool {
	if f.MBW != g.MBW || f.MBH != g.MBH || f.NumRF != g.NumRF {
		return false
	}
	a, b := f.RowSlice(lo, hi)
	for i := a; i < b; i++ {
		if f.MV[i] != g.MV[i] || f.Cost[i] != g.Cost[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two fields are identical.
func (f *MVField) Equal(g *MVField) bool { return f.EqualRows(g, 0, f.MBH) }

// MBDecision is the outcome of mode decision for one macroblock: the chosen
// partition mode and, per partition of that mode, the selected reference
// frame and quarter-pel motion vector.
type MBDecision struct {
	Mode PartMode
	Ref  [16]uint8 // per partition (up to 16)
	MV   [16]MV    // quarter-pel, per partition
	Cost int32
}
