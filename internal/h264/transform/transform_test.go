package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardDCOfConstantBlock(t *testing.T) {
	// A constant block has all energy in the DC coefficient: DC = 16*c.
	var b [16]int32
	for i := range b {
		b[i] = 10
	}
	Forward4x4(&b)
	if b[0] != 160 {
		t.Fatalf("DC = %d, want 160", b[0])
	}
	for i := 1; i < 16; i++ {
		if b[i] != 0 {
			t.Fatalf("AC coefficient %d = %d, want 0", i, b[i])
		}
	}
}

func TestForwardInverseWithoutQuantIsScaledIdentity(t *testing.T) {
	// Inverse(Forward(x)) with the norm correction applied per the standard
	// reconstructs x exactly when the intermediate is rescaled by V at QP 4
	// (where 2^(QP/6)=1 and MF*V = 2^21... ). We instead verify the weaker,
	// implementation-relevant property: round-tripping through TQ/TQInv at
	// QP 0 reconstructs within the quantizer step.
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		var x [16]int32
		for i := range x {
			x[i] = int32(rng.Intn(511) - 255) // residual range
		}
		b := x
		TQ(&b, 0)
		TQInv(&b, 0)
		for i := range x {
			if d := math.Abs(float64(b[i] - x[i])); d > 2 {
				t.Fatalf("QP0 round trip error %v at %d (in %d out %d)", d, i, x[i], b[i])
			}
		}
	}
}

func TestRoundTripErrorBoundedByQStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, qp := range []int{0, 6, 12, 20, 27, 34, 40, 51} {
		// Dead-zone quantization (f = step/6) errs by up to (1-1/6)·step per
		// coefficient, and a pixel combines errors from several basis
		// functions, so allow 1.6·step plus transform rounding slack.
		bound := 1.6*QStep(qp) + 4
		for iter := 0; iter < 100; iter++ {
			var x [16]int32
			for i := range x {
				x[i] = int32(rng.Intn(511) - 255)
			}
			b := x
			TQ(&b, qp)
			TQInv(&b, qp)
			for i := range x {
				if d := math.Abs(float64(b[i] - x[i])); d > bound {
					t.Fatalf("QP%d error %.1f > bound %.1f", qp, d, bound)
				}
			}
		}
	}
}

func TestHigherQPNeverIncreasesNonzeros(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		var x [16]int32
		for i := range x {
			x[i] = int32(rng.Intn(201) - 100)
		}
		prev := 17
		for _, qp := range []int{0, 12, 24, 36, 48} {
			b := x
			nz := TQ(&b, qp)
			if nz > prev {
				t.Fatalf("nonzeros grew from %d to %d at QP %d", prev, nz, qp)
			}
			prev = nz
		}
	}
}

func TestZeroBlockStaysZero(t *testing.T) {
	var b [16]int32
	if nz := TQ(&b, 27); nz != 0 {
		t.Fatalf("zero block has %d nonzeros", nz)
	}
	TQInv(&b, 27)
	for _, v := range b {
		if v != 0 {
			t.Fatal("zero block did not stay zero")
		}
	}
}

func TestQuantizeSignSymmetry(t *testing.T) {
	f := func(vals [16]int16, qpRaw uint8) bool {
		qp := int(qpRaw) % (MaxQP + 1)
		var pos, neg [16]int32
		for i, v := range vals {
			pos[i] = int32(v)
			neg[i] = -int32(v)
		}
		Quantize(&pos, qp)
		Quantize(&neg, qp)
		for i := range pos {
			if pos[i] != -neg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverseLinearity(t *testing.T) {
	// The inverse transform before rounding is linear; with rounding, the
	// response to a doubled input differs from doubled output by at most 1
	// per sample. Check exact linearity on inputs without rounding loss.
	var b [16]int32
	b[0] = 64 // DC of 64 -> inverse is (64+... ) constant block
	Inverse4x4(&b)
	for _, v := range b {
		if v != 1 {
			t.Fatalf("inverse of DC-only block = %d, want 1", v)
		}
	}
}

func TestQStepDoublesEverySix(t *testing.T) {
	for qp := 0; qp+6 <= MaxQP; qp++ {
		r := QStep(qp+6) / QStep(qp)
		if math.Abs(r-2) > 1e-9 {
			t.Fatalf("QStep(%d+6)/QStep(%d) = %v, want 2", qp, qp, r)
		}
	}
	if QStep(0) != 0.625 {
		t.Fatalf("QStep(0) = %v", QStep(0))
	}
}

func TestClip255(t *testing.T) {
	if Clip255(-5) != 0 || Clip255(300) != 255 || Clip255(128) != 128 {
		t.Fatal("Clip255 wrong")
	}
}

func TestQPPanics(t *testing.T) {
	for _, qp := range []int{-1, 52} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("QP %d did not panic", qp)
				}
			}()
			var b [16]int32
			Quantize(&b, qp)
		}()
	}
}

func TestDequantizeScalesWithQP(t *testing.T) {
	// Dequantizing the same levels at QP and QP+6 doubles the output.
	var a, b [16]int32
	for i := range a {
		a[i] = int32(i - 8)
		b[i] = int32(i - 8)
	}
	Dequantize(&a, 10)
	Dequantize(&b, 16)
	for i := range a {
		if b[i] != 2*a[i] {
			t.Fatalf("pos %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkTQTQInv(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var blk [16]int32
	for i := range blk {
		blk[i] = int32(rng.Intn(511) - 255)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := blk
		TQ(&x, 28)
		TQInv(&x, 28)
	}
}
