// Package transform implements the TQ and TQ⁻¹ inter-loop modules of the
// FEVES reproduction: the 4×4 integer core transform of H.264/AVC, forward
// quantization with the standard multiplication-factor tables for QP 0–51,
// inverse quantization (rescaling) and the inverse integer transform, plus
// pixel reconstruction helpers.
package transform

import "fmt"

// MaxQP is the largest quantization parameter defined by H.264/AVC.
const MaxQP = 51

// Multiplication factors MF for forward quantization, indexed by QP%6 and
// coefficient position class (0: (0,0),(0,2),(2,0),(2,2); 1: (1,1),(1,3),
// (3,1),(3,3); 2: the rest). Table 8-x of the standard.
var mf = [6][3]int32{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

// Rescaling factors V for inverse quantization, same indexing.
var vTab = [6][3]int32{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

// posClass maps raster position in a 4×4 block to its quantizer class.
var posClass = [16]int{
	0, 2, 0, 2,
	2, 1, 2, 1,
	0, 2, 0, 2,
	2, 1, 2, 1,
}

// QStep returns the effective quantizer step size for the given QP,
// doubling every 6 QP values (0.625 at QP 0).
func QStep(qp int) float64 {
	base := [6]float64{0.625, 0.6875, 0.8125, 0.875, 1.0, 1.125}
	return base[qp%6] * float64(int(1)<<uint(qp/6))
}

// Forward4x4 applies the 4×4 integer core transform in place
// (raster-ordered residual block). It is the unscaled transform; the
// per-position scaling is absorbed into quantization per the standard.
func Forward4x4(b *[16]int32) {
	// Rows.
	for i := 0; i < 16; i += 4 {
		p0, p1, p2, p3 := b[i], b[i+1], b[i+2], b[i+3]
		e0, e1 := p0+p3, p1+p2
		e2, e3 := p1-p2, p0-p3
		b[i] = e0 + e1
		b[i+1] = 2*e3 + e2
		b[i+2] = e0 - e1
		b[i+3] = e3 - 2*e2
	}
	// Columns.
	for i := 0; i < 4; i++ {
		p0, p1, p2, p3 := b[i], b[i+4], b[i+8], b[i+12]
		e0, e1 := p0+p3, p1+p2
		e2, e3 := p1-p2, p0-p3
		b[i] = e0 + e1
		b[i+4] = 2*e3 + e2
		b[i+8] = e0 - e1
		b[i+12] = e3 - 2*e2
	}
}

// Inverse4x4 applies the inverse integer transform in place, including the
// final (x+32)>>6 rounding, producing the reconstructed residual.
func Inverse4x4(b *[16]int32) {
	// Rows.
	for i := 0; i < 16; i += 4 {
		d0, d1, d2, d3 := b[i], b[i+1], b[i+2], b[i+3]
		e0, e1 := d0+d2, d0-d2
		e2, e3 := (d1>>1)-d3, d1+(d3>>1)
		b[i] = e0 + e3
		b[i+1] = e1 + e2
		b[i+2] = e1 - e2
		b[i+3] = e0 - e3
	}
	// Columns, with final rounding.
	for i := 0; i < 4; i++ {
		d0, d1, d2, d3 := b[i], b[i+4], b[i+8], b[i+12]
		e0, e1 := d0+d2, d0-d2
		e2, e3 := (d1>>1)-d3, d1+(d3>>1)
		b[i] = (e0 + e3 + 32) >> 6
		b[i+4] = (e1 + e2 + 32) >> 6
		b[i+8] = (e1 - e2 + 32) >> 6
		b[i+12] = (e0 - e3 + 32) >> 6
	}
}

// Quantize quantizes transformed coefficients in place for the given QP
// using the inter (P-slice) dead-zone offset f = 2^qbits/6.
func Quantize(b *[16]int32, qp int) {
	checkQP(qp)
	qbits := uint(15 + qp/6)
	f := int32(1) << qbits / 6
	row := &mf[qp%6]
	for i, w := range b {
		m := row[posClass[i]]
		// Branch-free |w| and sign restore: s is 0 for w>=0, -1 for w<0,
		// so (w^s)-s == |w| and (q^s)-s reapplies the sign.
		s := w >> 31
		a := (w ^ s) - s
		q := (a*m + f) >> qbits
		b[i] = (q ^ s) - s
	}
}

// Dequantize rescales quantized levels in place for the given QP.
func Dequantize(b *[16]int32, qp int) {
	checkQP(qp)
	shift := uint(qp / 6)
	row := &vTab[qp%6]
	for i, z := range b {
		b[i] = z * row[posClass[i]] << shift
	}
}

// TQ runs the full forward path (transform + quantization) in place and
// returns the number of non-zero levels, which mode decision and the
// entropy coder use for coded-block-pattern style decisions.
func TQ(b *[16]int32, qp int) (nonzero int) {
	Forward4x4(b)
	Quantize(b, qp)
	for _, v := range b {
		if v != 0 {
			nonzero++
		}
	}
	return nonzero
}

// TQInv runs the full inverse path (rescaling + inverse transform) in
// place, yielding the reconstructed residual.
func TQInv(b *[16]int32, qp int) {
	Dequantize(b, qp)
	Inverse4x4(b)
}

// Clip255 clamps v to the 8-bit sample range.
func Clip255(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func checkQP(qp int) {
	if qp < 0 || qp > MaxQP {
		panic(fmt.Sprintf("transform: QP %d out of range [0,%d]", qp, MaxQP))
	}
}
