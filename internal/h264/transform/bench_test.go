package transform

import (
	"math/rand"
	"testing"
)

// BenchmarkTQRoundTrip times the forward+inverse transform/quantization of
// the 24 4×4 residual blocks of one macroblock (16 luma + 2×4 chroma) and
// reports the per-macroblock cost tracked by the bench-regression gate.
func BenchmarkTQRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(60))
	var blocks [24][16]int32
	for i := range blocks {
		for j := range blocks[i] {
			blocks[i][j] = int32(rng.Intn(61) - 30)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range blocks {
			blk := blocks[j]
			TQ(&blk, 30)
			TQInv(&blk, 30)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/MB")
}
