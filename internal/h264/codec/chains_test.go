package codec

import (
	"testing"

	"feves/internal/h264"
)

// TestTwoChainRoundTrip encodes a sequence with two reference chains on the
// serial path and checks the decoder reproduces every reconstruction
// bit-exactly, including across an IDR refresh that reseeds both chains.
func TestTwoChainRoundTrip(t *testing.T) {
	const w, h, n = 64, 48, 9
	frames := movingScene(w, h, n, 2)
	cfg := testConfig(w, h)
	cfg.Chains = 2
	cfg.IntraPeriod = 5
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recons := make([]*h264.Frame, n)
	for i, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		recons[i] = enc.LastRecon().Clone()
	}

	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Config().Chains; got != 2 {
		t.Fatalf("decoded chain count %d, want 2", got)
	}
	for i := 0; i < n; i++ {
		df, err := dec.DecodeFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !df.Equal(recons[i]) {
			t.Fatalf("frame %d: decoder output differs from encoder reconstruction", i)
		}
	}
}

// TestChainAlternation checks the serial path's round-robin chain
// assignment: with two chains, consecutive inter frames land on alternating
// chains and each chain's DPB only grows on that chain's frames.
func TestChainAlternation(t *testing.T) {
	const w, h, n = 64, 48, 6
	frames := movingScene(w, h, n, 3)
	cfg := testConfig(w, h)
	cfg.Chains = 2
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	// The intra seed lands on both chains.
	if enc.DPBLenOn(0) != 1 || enc.DPBLenOn(1) != 1 {
		t.Fatalf("after intra: chain lens %d,%d", enc.DPBLenOn(0), enc.DPBLenOn(1))
	}
	for i := 1; i < n; i++ {
		wantChain := (i - 1) % 2
		job := enc.BeginFrame(frames[i])
		if job.Chain != wantChain {
			t.Fatalf("inter %d assigned chain %d, want %d", i, job.Chain, wantChain)
		}
		rows := enc.Config().MBRows()
		enc.RunME(job, 0, rows)
		enc.RunINT(job, 0, rows)
		enc.CompleteINT(job)
		enc.RunSME(job, 0, rows)
		enc.RunRStar(job)
	}
	// NumRF=2: each chain holds the seed plus its own frames, capped at 2.
	if enc.DPBLenOn(0) != 2 || enc.DPBLenOn(1) != 2 {
		t.Fatalf("final chain lens %d,%d", enc.DPBLenOn(0), enc.DPBLenOn(1))
	}
}

// TestPipelinedChainsMatchSerial runs two inter frames through the module
// API with both jobs in flight at once (the frame-parallel order: ME/INT of
// both before either completes) and checks the bitstream is byte-identical
// to the fully serial two-chain encode. The chains make the frames
// data-independent, so only R* — which appends to the shared bitstream —
// must retain display order.
func TestPipelinedChainsMatchSerial(t *testing.T) {
	const w, h, n = 64, 48, 7
	frames := movingScene(w, h, n, 4)
	cfg := testConfig(w, h)
	cfg.Chains = 2

	serial, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if _, err := serial.EncodeFrame(f); err != nil {
			t.Fatalf("serial frame %d: %v", i, err)
		}
	}

	pipe, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	rows := cfg.MBRows()
	runHalf := func(job *FrameJob) {
		pipe.RunME(job, 0, rows)
		pipe.RunINT(job, 0, rows)
		pipe.CompleteINT(job)
		pipe.RunSME(job, 0, rows)
	}
	for i := 1; i < n; i += 2 {
		jobA := pipe.BeginFrameOn(frames[i], 0)
		var jobB *FrameJob
		if i+1 < n {
			jobB = pipe.BeginFrameOn(frames[i+1], 1)
		}
		// Both frames' pre-R* modules run while neither has completed.
		runHalf(jobA)
		if jobB != nil {
			runHalf(jobB)
		}
		pipe.RunRStar(jobA)
		if jobB != nil {
			pipe.RunRStar(jobB)
		}
	}

	a, b := serial.Bitstream(), pipe.Bitstream()
	if len(a) != len(b) {
		t.Fatalf("bitstream lengths differ: serial %d, pipelined %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bitstreams differ at byte %d", i)
		}
	}
}
