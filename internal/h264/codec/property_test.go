package codec

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"feves/internal/h264"
)

// TestCodecRoundTripQuick is the codec's property test: for random small
// configurations (dimensions, search range, reference count, QPs, entropy
// backend, slices, GOP structure) and random content, every encode decodes
// bit-exactly to the encoder's reconstruction.
func TestCodecRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Width:       16 * (2 + rng.Intn(3)),
			Height:      16 * (2 + rng.Intn(3)),
			SearchRange: 2 + rng.Intn(7),
			NumRF:       1 + rng.Intn(3),
			IQP:         10 + rng.Intn(35),
			PQP:         10 + rng.Intn(35),
			Entropy:     EntropyMode(rng.Intn(2)),
			IntraPeriod: rng.Intn(4), // 0..3
		}
		rows := cfg.Height / 16
		cfg.Slices = 1 + rng.Intn(rows)
		if rng.Intn(3) == 0 {
			cfg.Checksum = true
		}
		if rng.Intn(3) == 0 {
			cfg.TargetBitsPerFrame = 2000 + rng.Intn(20000)
		}
		if err := cfg.Validate(); err != nil {
			t.Logf("seed %d: invalid config generated: %v", seed, err)
			return false
		}
		n := 2 + rng.Intn(3)
		frames := movingScene(cfg.Width, cfg.Height, n, seed)
		enc, err := NewEncoder(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		recons := make([]*h264.Frame, 0, n)
		for _, fr := range frames {
			if _, err := enc.EncodeFrame(fr); err != nil {
				t.Logf("seed %d: encode: %v", seed, err)
				return false
			}
			recons = append(recons, enc.LastRecon().Clone())
		}
		dec, err := NewDecoder(enc.Bitstream())
		if err != nil {
			t.Logf("seed %d: decoder: %v", seed, err)
			return false
		}
		for i := 0; ; i++ {
			df, err := dec.DecodeFrame()
			if err == io.EOF {
				return i == n
			}
			if err != nil {
				t.Logf("seed %d frame %d: decode: %v", seed, i, err)
				return false
			}
			if i >= n || !df.Equal(recons[i]) {
				t.Logf("seed %d frame %d: reconstruction mismatch", seed, i)
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
