package codec

import "fmt"

// RateControl is a simple reactive constant-bitrate controller: it adjusts
// the inter-frame QP after every coded frame to steer the per-frame bit
// usage toward a target. The paper encodes at fixed QP (rate control lies
// outside the inter-loop it balances), so this is an optional extension;
// the chosen QP is signalled per frame as a delta against the sequence
// header's PQP, keeping streams self-contained.
type RateControl struct {
	target       int
	minQP, maxQP int
	qp           int
	// smoothing state: exponentially weighted recent bit usage
	avgBits float64
}

// NewRateControl creates a controller targeting bitsPerFrame, starting at
// initQP and clamped to [minQP, maxQP].
func NewRateControl(bitsPerFrame, initQP, minQP, maxQP int) (*RateControl, error) {
	if bitsPerFrame <= 0 {
		return nil, fmt.Errorf("codec: rate-control target %d must be positive", bitsPerFrame)
	}
	if minQP < 0 || maxQP > 51 || minQP > maxQP {
		return nil, fmt.Errorf("codec: rate-control QP bounds [%d,%d] invalid", minQP, maxQP)
	}
	if initQP < minQP {
		initQP = minQP
	}
	if initQP > maxQP {
		initQP = maxQP
	}
	return &RateControl{target: bitsPerFrame, minQP: minQP, maxQP: maxQP, qp: initQP}, nil
}

// QP returns the quantization parameter for the next inter frame.
func (rc *RateControl) QP() int { return rc.qp }

// Target returns the configured bits-per-frame goal.
func (rc *RateControl) Target() int { return rc.target }

// Update folds in the bit usage of the frame just coded and adapts the QP:
// each QP step changes the quantizer step size by ~12% (2^(1/6)), so the
// controller moves proportionally to the log of the usage ratio, one or
// two steps at a time to avoid oscillation.
func (rc *RateControl) Update(bitsUsed int) {
	const alpha = 0.5
	if rc.avgBits == 0 {
		rc.avgBits = float64(bitsUsed)
	} else {
		rc.avgBits = alpha*float64(bitsUsed) + (1-alpha)*rc.avgBits
	}
	ratio := rc.avgBits / float64(rc.target)
	switch {
	case ratio > 2.0:
		rc.qp += 2
	case ratio > 1.10:
		rc.qp++
	case ratio < 0.5:
		rc.qp -= 2
	case ratio < 0.90:
		rc.qp--
	}
	if rc.qp < rc.minQP {
		rc.qp = rc.minQP
	}
	if rc.qp > rc.maxQP {
		rc.qp = rc.maxQP
	}
}
