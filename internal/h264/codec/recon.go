package codec

import (
	"feves/internal/h264"
	"feves/internal/h264/transform"
)

// dqInvRecon dequantizes and inverse-transforms a residual block and adds a
// constant (DC) prediction, writing the reconstructed 4×4 block into plane
// p at (x0, y0).
func dqInvRecon(blk *[16]int32, qp int, p *h264.Plane, x0, y0 int, dc uint8) {
	transform.TQInv(blk, qp)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			p.Set(x0+i, y0+j, transform.Clip255(int32(dc)+blk[j*4+i]))
		}
	}
}

// dqInvReconPred dequantizes and inverse-transforms a residual block and
// adds the prediction samples pred (a stride-wide macroblock buffer),
// writing the reconstruction into plane p at (x0, y0). (px0, py0) locate
// the block inside the prediction buffer.
func dqInvReconPred(blk *[16]int32, qp int, p *h264.Plane, x0, y0 int, pred []uint8, px0, py0, stride int) {
	transform.TQInv(blk, qp)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			pv := pred[(py0+j)*stride+px0+i]
			p.Set(x0+i, y0+j, transform.Clip255(int32(pv)+blk[j*4+i]))
		}
	}
}
