package codec

import (
	"io"
	"testing"
)

func TestRateControlValidation(t *testing.T) {
	if _, err := NewRateControl(0, 28, 12, 51); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := NewRateControl(1000, 28, 40, 20); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	rc, err := NewRateControl(1000, 5, 12, 51)
	if err != nil {
		t.Fatal(err)
	}
	if rc.QP() != 12 {
		t.Fatalf("initial QP %d not clamped to min", rc.QP())
	}
	if rc.Target() != 1000 {
		t.Fatal("target accessor wrong")
	}
}

func TestRateControlDirection(t *testing.T) {
	rc, _ := NewRateControl(10000, 28, 12, 51)
	// Consistent overshoot raises QP.
	for i := 0; i < 5; i++ {
		rc.Update(40000)
	}
	if rc.QP() <= 28 {
		t.Fatalf("QP %d did not rise under overshoot", rc.QP())
	}
	// Consistent undershoot lowers it again.
	for i := 0; i < 20; i++ {
		rc.Update(1000)
	}
	if rc.QP() >= 28 {
		t.Fatalf("QP %d did not fall under undershoot", rc.QP())
	}
	// Bounds hold under extremes.
	for i := 0; i < 100; i++ {
		rc.Update(1 << 26)
	}
	if rc.QP() != 51 {
		t.Fatalf("QP %d not clamped to max", rc.QP())
	}
	for i := 0; i < 100; i++ {
		rc.Update(1)
	}
	if rc.QP() != 12 {
		t.Fatalf("QP %d not clamped to min", rc.QP())
	}
}

func TestRateControlConvergesOnSequence(t *testing.T) {
	const w, h, n = 96, 96, 40
	const target = 9000 // bits per frame
	frames := movingScene(w, h, n, 61)
	cfg := testConfig(w, h)
	cfg.TargetBitsPerFrame = target
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lateBits, lateFrames int
	for i, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if i >= n/2 && !stats.Intra {
			lateBits += stats.Bits
			lateFrames++
		}
	}
	avg := float64(lateBits) / float64(lateFrames)
	if avg < target*0.6 || avg > target*1.4 {
		t.Fatalf("steady bits/frame %.0f not near target %d", avg, target)
	}
	// Rate-controlled streams still decode bit-exactly.
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		df, err := dec.DecodeFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == n && !df.Equal(enc.LastRecon()) {
			t.Fatal("rate-controlled stream does not round-trip")
		}
	}
	if count != n {
		t.Fatalf("decoded %d frames, want %d", count, n)
	}
}

func TestRateControlChangesQPOverTime(t *testing.T) {
	// Start far from the achievable operating point so the controller must
	// actually move the QP.
	const w, h = 64, 64
	frames := movingScene(w, h, 10, 62)
	cfg := testConfig(w, h)
	cfg.PQP = 12 // very fine quantization ⇒ initial overshoot
	cfg.TargetBitsPerFrame = 4000
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := -1, -1
	for i, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Intra {
			continue
		}
		if first < 0 {
			first = stats.Bits
		}
		last = stats.Bits
		_ = i
	}
	if last >= first {
		t.Fatalf("controller did not reduce frame size: first %d, last %d", first, last)
	}
}
