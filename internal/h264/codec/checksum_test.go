package codec

import (
	"errors"
	"io"
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	const w, h, n = 48, 48, 4
	frames := movingScene(w, h, n, 81)
	cfg := testConfig(w, h)
	cfg.Checksum = true
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Config().Checksum {
		t.Fatal("checksum flag not carried")
	}
	count := 0
	for {
		if _, err := dec.DecodeFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Fatalf("decoded %d frames", count)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	const w, h = 48, 48
	frames := movingScene(w, h, 3, 82)
	cfg := testConfig(w, h)
	cfg.Checksum = true
	enc, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	// Flip a residual byte somewhere in the middle: either syntax breaks
	// (any decode error) or the picture changes, in which case the CRC
	// trailer must catch it.
	detected := 0
	for pos := len(stream) / 4; pos < len(stream)*3/4; pos += 5 {
		corrupt := append([]byte(nil), stream...)
		corrupt[pos] ^= 0x10
		dec, err := NewDecoder(corrupt)
		if err != nil {
			detected++
			continue
		}
		for {
			if _, err := dec.DecodeFrame(); err == io.EOF {
				break
			} else if err != nil {
				detected++
				if errors.Is(err, ErrChecksum) {
					// the dedicated detection path fired at least once
				}
				break
			}
		}
	}
	if detected == 0 {
		t.Fatal("no corruption detected across all byte flips")
	}
}

func TestChecksumCatchesSilentPixelCorruption(t *testing.T) {
	// Build a stream, then flip a bit inside a residual level so the
	// syntax still parses but the pixels differ: only the CRC can notice.
	const w, h = 48, 48
	frames := movingScene(w, h, 2, 83)
	cfg := testConfig(w, h)
	cfg.Checksum = true
	enc, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	sawChecksumErr := false
	for pos := 40; pos < len(stream)-8 && !sawChecksumErr; pos++ {
		corrupt := append([]byte(nil), stream...)
		corrupt[pos] ^= 0x01
		dec, err := NewDecoder(corrupt)
		if err != nil {
			continue
		}
		for {
			_, err := dec.DecodeFrame()
			if err == io.EOF {
				break
			}
			if errors.Is(err, ErrChecksum) {
				sawChecksumErr = true
				break
			}
			if err != nil {
				break
			}
		}
	}
	if !sawChecksumErr {
		t.Fatal("no byte flip ever triggered the checksum path — trailer not effective")
	}
}

func TestSceneCutInsertsIDR(t *testing.T) {
	const w, h = 64, 64
	// Two unrelated scenes spliced at frame 3.
	a := movingScene(w, h, 3, 91)
	b := movingScene(w, h, 3, 1234)
	frames := append(a, b...)
	cfg := testConfig(w, h)
	cfg.SceneCutThreshold = 8
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []bool
	for _, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, stats.Intra)
	}
	if !kinds[0] {
		t.Fatal("first frame must be intra")
	}
	if !kinds[3] {
		t.Fatalf("scene cut at frame 3 not detected: %v", kinds)
	}
	for _, i := range []int{1, 2, 4, 5} {
		if kinds[i] {
			t.Fatalf("frame %d should stay inter: %v", i, kinds)
		}
	}
	// Stream still round-trips.
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := dec.DecodeFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(frames) {
		t.Fatalf("decoded %d frames", n)
	}
}

func TestSceneCutDisabledByDefault(t *testing.T) {
	const w, h = 64, 64
	a := movingScene(w, h, 2, 92)
	b := movingScene(w, h, 2, 4321)
	frames := append(a, b...)
	enc, _ := NewEncoder(testConfig(w, h))
	for i, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && stats.Intra {
			t.Fatal("scene-cut detection must be off by default")
		}
	}
}
