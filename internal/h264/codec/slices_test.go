package codec

import (
	"bytes"
	"io"
	"testing"

	"feves/internal/h264"
)

func sliceConfig(w, h, slices int, arith bool) Config {
	c := testConfig(w, h)
	c.Slices = slices
	if arith {
		c.Entropy = EntropyArith
	}
	return c
}

func TestSliceHelpers(t *testing.T) {
	starts := sliceStarts(10, 3)
	if len(starts) != 3 || starts[0] != 0 || starts[1] != 4 || starts[2] != 7 {
		t.Fatalf("starts %v", starts)
	}
	if sliceTopRow(starts, 0) != 0 || sliceTopRow(starts, 3) != 0 ||
		sliceTopRow(starts, 4) != 4 || sliceTopRow(starts, 9) != 7 {
		t.Fatal("sliceTopRow wrong")
	}
	if sliceIndex(starts, 0) != 0 || sliceIndex(starts, 6) != 1 || sliceIndex(starts, 7) != 2 {
		t.Fatal("sliceIndex wrong")
	}
	one := sliceStarts(5, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("single slice starts %v", one)
	}
}

func TestSlicedRoundTrip(t *testing.T) {
	const w, h, n = 64, 96, 5 // 6 MB rows
	frames := movingScene(w, h, n, 111)
	for _, arith := range []bool{false, true} {
		for _, slices := range []int{1, 2, 3, 6} {
			enc, err := NewEncoder(sliceConfig(w, h, slices, arith))
			if err != nil {
				t.Fatal(err)
			}
			recons := make([]*h264.Frame, 0, n)
			for _, f := range frames {
				if _, err := enc.EncodeFrame(f); err != nil {
					t.Fatalf("slices=%d arith=%v: %v", slices, arith, err)
				}
				recons = append(recons, enc.LastRecon().Clone())
			}
			dec, err := NewDecoder(enc.Bitstream())
			if err != nil {
				t.Fatal(err)
			}
			if dec.Config().Slices != max(1, slices) {
				t.Fatalf("slices not signalled: %d", dec.Config().Slices)
			}
			for i := 0; i < n; i++ {
				df, err := dec.DecodeFrame()
				if err != nil {
					t.Fatalf("slices=%d arith=%v frame %d: %v", slices, arith, i, err)
				}
				if !df.Equal(recons[i]) {
					t.Fatalf("slices=%d arith=%v frame %d: mismatch", slices, arith, i)
				}
			}
		}
	}
}

func TestSliceIndependenceOfArithChunks(t *testing.T) {
	// The error-resilience property: a slice's arithmetic chunk depends
	// only on its own rows. Two sequences whose frames differ ONLY in
	// slice 0's rows must produce byte-identical chunks for slice 1.
	const w, h = 64, 96 // 6 rows → slices of 3 rows
	base := movingScene(w, h, 3, 112)
	variant := make([]*h264.Frame, len(base))
	for i, f := range base {
		g := f.Clone()
		// Perturb only slice-0 luma (rows 0..2 = pixels 0..47).
		for y := 0; y < 48; y++ {
			row := g.Y.Row(y)
			for x := range row {
				row[x] ^= 0x08
			}
		}
		g.ExtendBorders()
		variant[i] = g
	}

	chunks := func(frames []*h264.Frame) [][]byte {
		enc, err := NewEncoder(sliceConfig(w, h, 2, true))
		if err != nil {
			t.Fatal(err)
		}
		// Intra frame only: inter frames would couple slices through the
		// full-frame reference (motion may cross slice rows), which is
		// allowed by the standard too — slice independence is a per-frame
		// parsing property, not a prediction-source restriction.
		if _, err := enc.EncodeIntraFrame(frames[0]); err != nil {
			t.Fatal(err)
		}
		return splitArithChunks(t, enc.Bitstream())
	}
	a, b := chunks(base), chunks(variant)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("expected 2 chunks, got %d and %d", len(a), len(b))
	}
	if bytes.Equal(a[0], b[0]) {
		t.Fatal("slice-0 chunks should differ (content changed)")
	}
	if !bytes.Equal(a[1], b[1]) {
		t.Fatal("slice-1 chunk changed although its rows did not")
	}
}

// splitArithChunks parses the first frame's slice chunks out of a stream.
func splitArithChunks(t *testing.T, stream []byte) [][]byte {
	t.Helper()
	dec, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	r := dec.r
	if _, err := r.ReadUE(); err != nil { // frame type
		t.Fatal(err)
	}
	var out [][]byte
	for i := 0; i < dec.cfg.sliceCount(); i++ {
		n, err := r.ReadUE()
		if err != nil {
			t.Fatal(err)
		}
		r.AlignByte()
		chunk, err := r.ReadBytes(int(n))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), chunk...))
	}
	return out
}

func TestSlicesRejectedWhenTooMany(t *testing.T) {
	c := testConfig(64, 48) // 3 MB rows
	c.Slices = 4
	if c.Validate() == nil {
		t.Fatal("more slices than rows accepted")
	}
}

func TestSlicedCollaborativeBitExact(t *testing.T) {
	// Slices compose with collaborative row-distributed encoding.
	const w, h, n = 64, 96, 4
	frames := movingScene(w, h, n, 113)
	cfg := sliceConfig(w, h, 3, true)
	ref, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := ref.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	collab, _ := NewEncoder(cfg)
	if _, err := collab.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[1:] {
		job := collab.BeginFrame(f)
		collab.RunME(job, 4, 6)
		collab.RunME(job, 0, 4)
		collab.RunINT(job, 0, 2)
		collab.RunINT(job, 2, 6)
		collab.CompleteINT(job)
		collab.RunSME(job, 1, 6)
		collab.RunSME(job, 0, 1)
		collab.RunRStar(job)
	}
	if !bytes.Equal(ref.Bitstream(), collab.Bitstream()) {
		t.Fatal("sliced collaborative encode not bit-exact")
	}
}

func TestVerifyChecksumWithSlices(t *testing.T) {
	const w, h = 64, 96
	frames := movingScene(w, h, 3, 114)
	cfg := sliceConfig(w, h, 2, true)
	cfg.Checksum = true
	enc, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := dec.DecodeFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 3 {
		t.Fatalf("decoded %d frames", count)
	}
}

func TestConcealmentLimitsDamageToOneSlice(t *testing.T) {
	const w, h = 64, 96 // 6 rows, 2 slices of 3
	frames := movingScene(w, h, 2, 115)
	cfg := sliceConfig(w, h, 2, true)
	enc, _ := NewEncoder(cfg)
	var recons []*h264.Frame
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.LastRecon().Clone())
	}
	stream := enc.Bitstream()

	// Locate and corrupt a byte inside the FIRST frame's slice-1 chunk.
	probe, err := NewDecoder(stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.r.ReadUE(); err != nil { // frame type
		t.Fatal(err)
	}
	n0, _ := probe.r.ReadUE() // slice-0 chunk length
	probe.r.AlignByte()
	if _, err := probe.r.ReadBytes(int(n0)); err != nil {
		t.Fatal(err)
	}
	n1, _ := probe.r.ReadUE()
	probe.r.AlignByte()
	chunk1Start := probe.r.Pos() / 8
	if n1 < 4 {
		t.Skip("slice-1 chunk too small to corrupt meaningfully")
	}
	corrupt := append([]byte(nil), stream...)
	corrupt[chunk1Start+int(n1)/2] ^= 0xFF

	// Without concealment: hard failure.
	dec, err := NewDecoder(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeFrame(); err == nil {
		// Corruption might decode to valid-looking syntax by chance;
		// concealment assertions below still apply when it does not.
		t.Log("corruption parsed by chance without error")
	}

	// With concealment: the frame decodes; slice 0 is bit-exact, slice 1
	// degraded but present.
	dec2, err := NewDecoder(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	dec2.Conceal = true
	df, err := dec2.DecodeFrame()
	if err != nil {
		t.Fatalf("concealment failed: %v", err)
	}
	if dec2.ConcealedSlices() == 0 {
		t.Skip("corruption happened to parse as valid syntax")
	}
	// Slice 0 (rows 0..2, luma rows 0..47) must match the encoder exactly
	// except where deblocking crossed the slice boundary (last 4 luma
	// rows adjoin slice 1).
	for y := 0; y < 44; y++ {
		a, b := df.Y.Row(y), recons[0].Y.Row(y)
		for x := range a {
			if a[x] != b[x] {
				t.Fatalf("slice-0 pixel (%d,%d) damaged by slice-1 corruption", x, y)
			}
		}
	}
	// The second frame should still decode (it predicts from the damaged
	// reference, so pixels differ, but syntax is intact).
	if _, err := dec2.DecodeFrame(); err != nil {
		t.Fatalf("subsequent frame failed after concealment: %v", err)
	}
}
