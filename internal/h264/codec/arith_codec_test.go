package codec

import (
	"io"
	"testing"

	"feves/internal/h264"
)

func arithConfig(w, h int) Config {
	c := testConfig(w, h)
	c.Entropy = EntropyArith
	return c
}

func TestArithEncodeDecodeRoundTrip(t *testing.T) {
	const w, h, n = 64, 48, 6
	frames := movingScene(w, h, n, 21)
	enc, err := NewEncoder(arithConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	recons := make([]*h264.Frame, 0, n)
	for _, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bits <= 0 {
			t.Fatal("no bits written")
		}
		recons = append(recons, enc.LastRecon().Clone())
	}
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Config().Entropy != EntropyArith {
		t.Fatal("entropy mode not carried in the header")
	}
	for i := 0; i < n; i++ {
		df, err := dec.DecodeFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !df.Equal(recons[i]) {
			t.Fatalf("frame %d: arithmetic-mode decode differs from reconstruction", i)
		}
	}
	if _, err := dec.DecodeFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestArithReconstructionMatchesVLC(t *testing.T) {
	// The entropy backend must not change the reconstruction at all: both
	// modes quantize identically, so the decoded pixels are bit-equal.
	const w, h, n = 64, 48, 4
	frames := movingScene(w, h, n, 22)
	encV, _ := NewEncoder(testConfig(w, h))
	encA, _ := NewEncoder(arithConfig(w, h))
	for _, f := range frames {
		if _, err := encV.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		if _, err := encA.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		if !encV.LastRecon().Equal(encA.LastRecon()) {
			t.Fatal("entropy backend changed the reconstruction")
		}
	}
}

func TestArithSmallerThanVLC(t *testing.T) {
	// The extension's payoff: adaptive arithmetic coding compresses the
	// same residual data into fewer bits than the static VLC.
	const w, h, n = 96, 96, 6
	frames := movingScene(w, h, n, 23)
	bits := func(cfg Config) int {
		enc, _ := NewEncoder(cfg)
		for _, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		return enc.BitsWritten()
	}
	vlc, arith := bits(testConfig(w, h)), bits(arithConfig(w, h))
	if arith >= vlc {
		t.Fatalf("arithmetic stream (%d bits) should be smaller than VLC (%d bits)", arith, vlc)
	}
	t.Logf("VLC %d bits, arithmetic %d bits (%.1f%% saved)", vlc, arith,
		100*(1-float64(arith)/float64(vlc)))
}

func TestArithCollaborativeBitExactness(t *testing.T) {
	// Row-sliced collaborative encoding must stay bit-exact under the
	// arithmetic backend too (R* runs sequentially on one device, so the
	// adaptive contexts see the same data in the same order).
	const w, h, n = 64, 64, 4
	frames := movingScene(w, h, n, 24)
	ref, _ := NewEncoder(arithConfig(w, h))
	for _, f := range frames {
		if _, err := ref.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	collab, _ := NewEncoder(arithConfig(w, h))
	if _, err := collab.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[1:] {
		job := collab.BeginFrame(f)
		collab.RunME(job, 2, 4)
		collab.RunME(job, 0, 2)
		collab.RunINT(job, 1, 4)
		collab.RunINT(job, 0, 1)
		collab.CompleteINT(job)
		collab.RunSME(job, 3, 4)
		collab.RunSME(job, 0, 3)
		collab.RunRStar(job)
	}
	a, b := ref.Bitstream(), collab.Bitstream()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at byte %d", i)
		}
	}
}

func TestArithTruncatedStreamFails(t *testing.T) {
	const w, h = 48, 48
	frames := movingScene(w, h, 2, 25)
	enc, _ := NewEncoder(arithConfig(w, h))
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	dec, err := NewDecoder(stream[:len(stream)*2/3])
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 3; i++ {
		if _, err := dec.DecodeFrame(); err == io.EOF {
			break
		} else if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("truncated arithmetic stream decoded without error")
	}
}

func TestConfigRejectsUnknownEntropy(t *testing.T) {
	c := testConfig(48, 48)
	c.Entropy = EntropyMode(7)
	if c.Validate() == nil {
		t.Fatal("unknown entropy mode accepted")
	}
	if EntropyVLC.String() != "vlc" || EntropyArith.String() != "arith" {
		t.Fatal("entropy mode labels wrong")
	}
}

func TestIntraPeriodIDR(t *testing.T) {
	const w, h, n, period = 48, 48, 9, 4
	frames := movingScene(w, h, n, 26)
	cfg := testConfig(w, h)
	cfg.IntraPeriod = period
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []bool
	var recons []*h264.Frame
	for _, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, stats.Intra)
		recons = append(recons, enc.LastRecon().Clone())
	}
	for i, intra := range kinds {
		want := i%period == 0
		if intra != want {
			t.Fatalf("frame %d intra=%v, want %v (period %d)", i, intra, want, period)
		}
	}
	// IDR flushes the DPB: right after a refresh only one reference exists.
	if enc.DPBLen() != min(n-1-(n-1)/period*period+1, cfg.NumRF) && enc.DPBLen() > cfg.NumRF {
		t.Fatalf("DPB length %d inconsistent", enc.DPBLen())
	}
	// The stream decodes bit-exactly across IDR boundaries.
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		df, err := dec.DecodeFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !df.Equal(recons[i]) {
			t.Fatalf("frame %d mismatch across IDR boundary", i)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
