package codec

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"feves/internal/h264"
)

// movingScene synthesizes a small test sequence: a textured background with
// two moving rectangles plus mild noise, exercising real motion search.
func movingScene(w, h, frames int, seed int64) []*h264.Frame {
	rng := rand.New(rand.NewSource(seed))
	bg := make([]uint8, w*h)
	for i := range bg {
		bg[i] = uint8(96 + rng.Intn(64))
	}
	out := make([]*h264.Frame, frames)
	for t := 0; t < frames; t++ {
		f := h264.NewFrame(w, h)
		f.Poc = t
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.Y.Set(x, y, bg[y*w+x])
			}
		}
		// Two moving blocks with distinct velocities.
		drawRect(f, (5+2*t)%w, (9+t)%h, 12, 10, 220)
		drawRect(f, (w-10-3*t)%w, (h/2+t/2)%h, 9, 14, 40)
		for y := 0; y < h/2; y++ {
			for x := 0; x < w/2; x++ {
				f.Cb.Set(x, y, uint8(110+((x+t)%16)))
				f.Cr.Set(x, y, uint8(130+((y+2*t)%16)))
			}
		}
		f.ExtendBorders()
		out[t] = f
	}
	return out
}

func drawRect(f *h264.Frame, x0, y0, w, h int, v uint8) {
	for y := y0; y < y0+h && y < f.H; y++ {
		if y < 0 {
			continue
		}
		for x := x0; x < x0+w && x < f.W; x++ {
			if x < 0 {
				continue
			}
			f.Y.Set(x, y, v)
		}
	}
}

func testConfig(w, h int) Config {
	return Config{Width: w, Height: h, SearchRange: 8, NumRF: 2, IQP: 27, PQP: 28}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(64, 48)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Width: 60, Height: 48, SearchRange: 8, NumRF: 1, IQP: 27, PQP: 28},
		{Width: 64, Height: 48, SearchRange: 0, NumRF: 1, IQP: 27, PQP: 28},
		{Width: 64, Height: 48, SearchRange: 8, NumRF: 0, IQP: 27, PQP: 28},
		{Width: 64, Height: 48, SearchRange: 8, NumRF: 17, IQP: 27, PQP: 28},
		{Width: 64, Height: 48, SearchRange: 8, NumRF: 1, IQP: 77, PQP: 28},
		{Width: 64, Height: 48, SearchRange: 1000, NumRF: 1, IQP: 27, PQP: 28},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const w, h, n = 64, 48, 6
	frames := movingScene(w, h, n, 1)
	enc, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	recons := make([]*h264.Frame, n)
	for i, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bits <= 0 {
			t.Fatalf("frame %d: %d bits", i, stats.Bits)
		}
		if (i == 0) != stats.Intra {
			t.Fatalf("frame %d intra flag %v", i, stats.Intra)
		}
		recons[i] = enc.LastRecon().Clone()
	}

	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	want := enc.Config()
	want.Slices = want.sliceCount() // the header normalizes 0 to 1
	want.Chains = want.chains()     // likewise for the chain count
	if dec.Config() != want {
		t.Fatalf("decoded config %+v != %+v", dec.Config(), want)
	}
	for i := 0; i < n; i++ {
		df, err := dec.DecodeFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !df.Equal(recons[i]) {
			t.Fatalf("frame %d: decoder output differs from encoder reconstruction", i)
		}
	}
	if _, err := dec.DecodeFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReconstructionQuality(t *testing.T) {
	const w, h, n = 64, 64, 4
	frames := movingScene(w, h, n, 2)
	enc, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PSNRY < 28 {
			t.Fatalf("frame %d: luma PSNR %.2f dB too low for QP 28", i, stats.PSNRY)
		}
	}
}

// TestCollaborativeBitExactness is the central correctness property of the
// framework: encoding with the module-granular API under arbitrary row
// distributions must produce exactly the bitstream and reconstructions of
// the single-call path.
func TestCollaborativeBitExactness(t *testing.T) {
	const w, h, n = 64, 64, 5 // 4 MB rows
	frames := movingScene(w, h, n, 3)

	reference, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := reference.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	refStream := reference.Bitstream()

	// Distributions emulating 3 devices with shifting loads per frame and
	// out-of-order completion.
	splits := [][][2]int{
		{{2, 4}, {0, 1}, {1, 2}},
		{{0, 3}, {3, 4}},
		{{1, 4}, {0, 1}},
		{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
	}
	collab, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collab.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	for i, f := range frames[1:] {
		job := collab.BeginFrame(f)
		dist := splits[i%len(splits)]
		for _, r := range dist {
			collab.RunME(job, r[0], r[1])
		}
		for _, r := range dist {
			collab.RunINT(job, r[0], r[1])
		}
		collab.CompleteINT(job)
		for _, r := range dist {
			collab.RunSME(job, r[0], r[1])
		}
		collab.RunRStar(job)
	}
	collabStream := collab.Bitstream()

	if len(refStream) != len(collabStream) {
		t.Fatalf("stream lengths differ: %d vs %d", len(refStream), len(collabStream))
	}
	for i := range refStream {
		if refStream[i] != collabStream[i] {
			t.Fatalf("bitstreams diverge at byte %d", i)
		}
	}
	if !reference.LastRecon().Equal(collab.LastRecon()) {
		t.Fatal("final reconstructions differ")
	}
}

func TestDPBRampUp(t *testing.T) {
	const w, h = 48, 48
	cfg := testConfig(w, h)
	cfg.NumRF = 4
	frames := movingScene(w, h, 6, 4)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
		want := i + 1
		if want > 4 {
			want = 4
		}
		if enc.DPBLen() != want {
			t.Fatalf("after frame %d: DPB %d, want %d", i, enc.DPBLen(), want)
		}
	}
	// The ramped-up stream must still decode bit-exactly.
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	var last *h264.Frame
	for {
		f, err := dec.DecodeFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		last = f
	}
	if !last.Equal(enc.LastRecon()) {
		t.Fatal("multi-RF stream does not round-trip")
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	if _, err := NewDecoder([]byte("not a stream at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewDecoder(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDecoderRejectsTruncatedStream(t *testing.T) {
	const w, h = 48, 48
	frames := movingScene(w, h, 2, 5)
	enc, _ := NewEncoder(testConfig(w, h))
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	dec, err := NewDecoder(stream[:len(stream)/2])
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 3; i++ {
		if _, err := dec.DecodeFrame(); err != nil && err != io.EOF {
			sawErr = true
			break
		} else if err == io.EOF {
			break
		}
	}
	if !sawErr {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestEncoderRejectsWrongFrameSize(t *testing.T) {
	enc, _ := NewEncoder(testConfig(64, 48))
	if _, err := enc.EncodeFrame(h264.NewFrame(32, 32)); err == nil {
		t.Fatal("wrong-size frame accepted")
	}
}

func TestStageOrderEnforced(t *testing.T) {
	frames := movingScene(48, 48, 2, 6)
	enc, _ := NewEncoder(testConfig(48, 48))
	if _, err := enc.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	job := enc.BeginFrame(frames[1])
	enc.RunME(job, 0, 3)
	enc.RunINT(job, 0, 3)
	// SME before CompleteINT must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunSME before CompleteINT did not panic")
			}
		}()
		enc.RunSME(job, 0, 3)
	}()
	enc.CompleteINT(job)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double CompleteINT did not panic")
			}
		}()
		enc.CompleteINT(job)
	}()
	enc.RunSME(job, 0, 3)
	enc.RunRStar(job)
	if enc.FramesEncoded() != 2 {
		t.Fatalf("FramesEncoded = %d", enc.FramesEncoded())
	}
}

func TestBeginFrameBeforeIntraPanics(t *testing.T) {
	enc, _ := NewEncoder(testConfig(48, 48))
	defer func() {
		if recover() == nil {
			t.Fatal("BeginFrame on empty DPB did not panic")
		}
	}()
	enc.BeginFrame(h264.NewFrame(48, 48))
}

func TestPartForBlock(t *testing.T) {
	// 8x8 mode: block (2,1) is in partition 1 (top-right quadrant).
	if got := partForBlock(h264.Part8x8, 2, 1); got != 1 {
		t.Fatalf("partForBlock(8x8, 2,1) = %d, want 1", got)
	}
	// 16x8: block (3,2) is in the bottom partition.
	if got := partForBlock(h264.Part16x8, 3, 2); got != 1 {
		t.Fatalf("partForBlock(16x8, 3,2) = %d, want 1", got)
	}
	// 4x4: identity raster mapping.
	if got := partForBlock(h264.Part4x4, 3, 2); got != 11 {
		t.Fatalf("partForBlock(4x4, 3,2) = %d, want 11", got)
	}
	// 16x16 always 0.
	if got := partForBlock(h264.Part16x16, 3, 3); got != 0 {
		t.Fatalf("partForBlock(16x16) = %d, want 0", got)
	}
}

func TestIntraOnlySequenceDecodes(t *testing.T) {
	const w, h = 48, 48
	frames := movingScene(w, h, 3, 7)
	enc, _ := NewEncoder(testConfig(w, h))
	var recons []*h264.Frame
	for _, f := range frames {
		if _, err := enc.EncodeIntraFrame(f); err != nil {
			t.Fatal(err)
		}
		recons = append(recons, enc.LastRecon().Clone())
	}
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		df, err := dec.DecodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !df.Equal(recons[i]) {
			t.Fatalf("intra frame %d mismatch", i)
		}
	}
}

func TestBitrateTracksQP(t *testing.T) {
	const w, h = 64, 64
	frames := movingScene(w, h, 3, 8)
	bits := func(pqp int) int {
		cfg := testConfig(w, h)
		cfg.PQP = pqp
		enc, _ := NewEncoder(cfg)
		for _, f := range frames {
			if _, err := enc.EncodeFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		return enc.BitsWritten()
	}
	lo, hi := bits(40), bits(16)
	if lo >= hi {
		t.Fatalf("QP 40 stream (%d bits) should be smaller than QP 16 stream (%d bits)", lo, hi)
	}
}

func TestLastReconNilBeforeFirstFrame(t *testing.T) {
	enc, _ := NewEncoder(testConfig(48, 48))
	if enc.LastRecon() != nil {
		t.Fatal("LastRecon should be nil before encoding")
	}
}

func TestDecisionCostFinite(t *testing.T) {
	// Regression guard: costs must not overflow int32 aggregation.
	const w, h = 48, 48
	frames := movingScene(w, h, 2, 9)
	enc, _ := NewEncoder(testConfig(w, h))
	if _, err := enc.EncodeFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	stats, err := enc.EncodeFrame(frames[1])
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bits <= 0 || stats.Bits > math.MaxInt32 {
		t.Fatalf("suspicious bit count %d", stats.Bits)
	}
}

func BenchmarkEncodeFrameQCIF(b *testing.B) {
	frames := movingScene(176, 144, 9, 40)
	cfg := testConfig(176, 144)
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.EncodeFrame(frames[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeFrame(frames[1+i%8]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrameQCIF(b *testing.B) {
	frames := movingScene(176, 144, 5, 41)
	enc, _ := NewEncoder(testConfig(176, 144))
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(stream)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := dec.DecodeFrame(); err != nil {
				break
			}
		}
	}
}

func TestIntraDirectionalModesImproveQuality(t *testing.T) {
	// A frame of vertical stripes: vertical prediction from the row above
	// is nearly perfect, so the directional-mode encoder must spend far
	// fewer bits than a DC-only one would. We verify the mechanism by
	// checking that (a) the stream decodes bit-exactly and (b) the I-frame
	// PSNR is high at moderate QP.
	const w, h = 64, 64
	f := h264.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Y.Set(x, y, uint8(60+(x%16)*12))
		}
	}
	f.ExtendBorders()
	cfg := testConfig(w, h)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := enc.EncodeIntraFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PSNRY < 35 {
		t.Fatalf("striped I-frame PSNR %.1f dB — directional intra prediction not effective", stats.PSNRY)
	}
	dec, err := NewDecoder(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	df, err := dec.DecodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !df.Equal(enc.LastRecon()) {
		t.Fatal("directional intra stream does not round-trip")
	}
}

func TestIntraModeChoiceMatchesContent(t *testing.T) {
	const w, h = 48, 48
	vertical := h264.NewFrame(w, h)
	horizontal := h264.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vertical.Y.Set(x, y, uint8(40+(x*4)%200))   // columns constant
			horizontal.Y.Set(x, y, uint8(40+(y*4)%200)) // rows constant
		}
	}
	vertical.ExtendBorders()
	horizontal.ExtendBorders()
	// For an interior MB the reconstructed neighbours carry the pattern,
	// so the SAD-optimal mode follows the stripe direction.
	encV, _ := NewEncoder(testConfig(w, h))
	if _, err := encV.EncodeIntraFrame(vertical); err != nil {
		t.Fatal(err)
	}
	recon := h264.NewFrame(w, h)
	recon.Y.CopyFrom(encV.LastRecon().Y)
	if m := chooseIntraMode(vertical, recon, 16, 16, 0); m != intraVertical {
		t.Fatalf("vertical stripes chose mode %d, want vertical", m)
	}
	if m := chooseIntraMode(horizontal, recon, 16, 16, 0); m == intraVertical {
		// recon here holds the vertical pattern so horizontal content
		// should at least not pick vertical extension of it.
		t.Fatal("horizontal content chose vertical prediction")
	}
}

func TestRunMEPanicsOnOutOfRangeRows(t *testing.T) {
	frames := movingScene(48, 48, 2, 200)
	enc, _ := NewEncoder(testConfig(48, 48))
	if _, err := enc.EncodeIntraFrame(frames[0]); err != nil {
		t.Fatal(err)
	}
	job := enc.BeginFrame(frames[1])
	defer func() {
		if recover() == nil {
			t.Fatal("RunME with rows past the frame end did not panic")
		}
	}()
	enc.RunME(job, 0, 99)
}

func TestEncoderStateAccountsIntraPeriodFrames(t *testing.T) {
	frames := movingScene(48, 48, 5, 201)
	cfg := testConfig(48, 48)
	cfg.IntraPeriod = 2
	enc, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if enc.FramesEncoded() != 5 {
		t.Fatalf("FramesEncoded = %d", enc.FramesEncoded())
	}
	// After the frame-4 IDR (index 4, period 2) plus nothing else, the DPB
	// holds exactly one reference.
	if enc.DPBLen() != 1 {
		t.Fatalf("DPB after trailing IDR = %d, want 1", enc.DPBLen())
	}
}
