package codec

import (
	"errors"
	"io"

	"feves/internal/h264"
)

// FrameInfo describes one frame of an inspected bitstream.
type FrameInfo struct {
	Index int
	Intra bool
	Bits  int
	// QP is the inter-frame quantization parameter (the sequence IQP for
	// intra frames).
	QP int
	// ModeCount histograms the inter partition modes chosen (all zero for
	// intra frames).
	ModeCount [h264.NumPartModes]int
}

// StreamInfo is the result of Inspect: the parsed sequence parameters and
// per-frame statistics.
type StreamInfo struct {
	Config Config
	Frames []FrameInfo
}

// TotalBits returns the coded size of all frames (excluding the sequence
// header).
func (si *StreamInfo) TotalBits() int {
	total := 0
	for _, f := range si.Frames {
		total += f.Bits
	}
	return total
}

// ModeHistogram sums the partition-mode counts over all frames.
func (si *StreamInfo) ModeHistogram() [h264.NumPartModes]int {
	var out [h264.NumPartModes]int
	for _, f := range si.Frames {
		for m, c := range f.ModeCount {
			out[m] += c
		}
	}
	return out
}

// Inspect fully decodes a bitstream and reports its structure: frame
// types, per-frame coded sizes and QPs, and the inter partition-mode
// histogram. It fails on any corruption (including CRC trailers when the
// stream carries them).
func Inspect(stream []byte) (*StreamInfo, error) {
	dec, err := NewDecoder(stream)
	if err != nil {
		return nil, err
	}
	si := &StreamInfo{Config: dec.Config()}
	for {
		start := dec.r.Pos()
		dec.stats = &FrameInfo{Index: len(si.Frames), QP: dec.cfg.IQP}
		f, err := dec.DecodeFrame()
		if errors.Is(err, io.EOF) {
			dec.stats = nil
			return si, nil
		}
		if err != nil {
			dec.stats = nil
			return si, err
		}
		info := *dec.stats
		info.Intra = f.IsIntra
		info.Bits = dec.r.Pos() - start
		si.Frames = append(si.Frames, info)
	}
}
