package codec

import (
	"fmt"

	"feves/internal/h264"
	"feves/internal/h264/entropy"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
	"feves/internal/h264/rd"
	"feves/internal/h264/sme"
)

// Encoder is the stateful sequence encoder. It owns one decoded-picture
// buffer per reference chain, the per-reference SF structures and the
// output bitstream writer.
type Encoder struct {
	cfg Config
	w   *entropy.BitWriter
	// dpbs[c] is chain c's decoded-picture buffer. A single-chain stream
	// has exactly one; with two chains, inter frames alternate between
	// them, so each chain holds the shared intra seed plus only its own
	// reconstructed frames.
	dpbs []*h264.DPB
	// sfs[c][i] is the interpolated sub-frame of dpbs[c].Ref(i). At the
	// start of a frame, the chain's most recent reference (index 0) has no
	// sub-frame yet: the INT module produces it during that frame's τ1
	// interval.
	sfs    [][]*interp.SubFrame
	frames int
	// sinceIntra counts the inter frames completed since the last intra
	// frame; it drives the serial path's round-robin chain assignment.
	sinceIntra int
	lastRecon  *h264.Frame
	rc         *RateControl // nil when rate control is off
}

// NewEncoder creates an encoder and writes the sequence header.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{
		cfg:  cfg,
		w:    entropy.NewBitWriter(),
		dpbs: make([]*h264.DPB, cfg.chains()),
		sfs:  make([][]*interp.SubFrame, cfg.chains()),
	}
	for c := range e.dpbs {
		e.dpbs[c] = h264.NewDPB(cfg.NumRF)
	}
	if cfg.TargetBitsPerFrame > 0 {
		rc, err := NewRateControl(cfg.TargetBitsPerFrame, cfg.PQP, 12, 51)
		if err != nil {
			return nil, err
		}
		e.rc = rc
	}
	writeSequenceHeader(e.w, cfg)
	return e, nil
}

// frameQP returns the inter-frame QP to use next: the rate controller's
// choice when enabled, the fixed sequence PQP otherwise.
func (e *Encoder) frameQP() int {
	if e.rc != nil {
		return e.rc.QP()
	}
	return e.cfg.PQP
}

// Config returns the sequence parameters.
func (e *Encoder) Config() Config { return e.cfg }

// Bitstream flushes and returns the coded stream so far.
func (e *Encoder) Bitstream() []byte { return e.w.Bytes() }

// BitsWritten returns the number of coded bits so far.
func (e *Encoder) BitsWritten() int { return e.w.Len() }

// FramesEncoded returns the number of frames coded so far.
func (e *Encoder) FramesEncoded() int { return e.frames }

// DPBLen returns the number of reference frames available to the next
// serially encoded frame's chain — smaller than NumRF during the ramp-up
// frames of Fig. 7(b).
func (e *Encoder) DPBLen() int { return e.dpbs[e.nextChain()].Len() }

// DPBLenOn returns the number of reference frames available on one chain.
func (e *Encoder) DPBLenOn(chain int) int { return e.dpbs[chain].Len() }

// Chains returns the number of reference chains.
func (e *Encoder) Chains() int { return len(e.dpbs) }

// nextChain is the chain the next serially begun inter frame uses.
func (e *Encoder) nextChain() int { return e.sinceIntra % len(e.dpbs) }

// ShouldIntra reports whether the next frame must be intra coded: the
// first frame of a sequence, or an IDR refresh point when IntraPeriod is
// configured.
func (e *Encoder) ShouldIntra() bool {
	if e.frames == 0 {
		return true
	}
	return e.cfg.IntraPeriod > 0 && e.frames%e.cfg.IntraPeriod == 0
}

// EncodeFrame encodes one frame end to end on the calling goroutine: the
// first frame of a sequence (and each IDR refresh point) is intra coded,
// every other frame runs the full inter loop. This is the single-device
// reference path.
func (e *Encoder) EncodeFrame(cf *h264.Frame) (rd.FrameStats, error) {
	if err := e.checkFrame(cf); err != nil {
		return rd.FrameStats{}, err
	}
	if e.ShouldIntra() {
		return e.EncodeIntraFrame(cf)
	}
	job := e.BeginFrame(cf)
	n := e.cfg.MBRows()
	kw := e.cfg.kernelWorkers()
	e.RunMEStreams(job, 0, n, kw)
	e.RunINTStreams(job, 0, n, kw)
	e.CompleteINT(job)
	e.RunSMEStreams(job, 0, n, kw)
	return e.RunRStar(job), nil
}

func (e *Encoder) checkFrame(cf *h264.Frame) error {
	if cf.W != e.cfg.Width || cf.H != e.cfg.Height {
		return fmt.Errorf("codec: frame %dx%d does not match configured %dx%d",
			cf.W, cf.H, e.cfg.Width, e.cfg.Height)
	}
	return nil
}

// BeginFrame allocates the working buffers of one inter-frame on the
// serial path's next chain (round-robin with two chains). The chain's DPB
// must hold at least one reference (i.e. the intra frame was already
// encoded).
func (e *Encoder) BeginFrame(cf *h264.Frame) *FrameJob {
	return e.BeginFrameOn(cf, e.nextChain())
}

// BeginFrameOn opens an inter-frame on an explicit reference chain — the
// frame-parallel path, where the caller pipelines two frames on the two
// chains and the serial round-robin assignment (which only advances when a
// frame *completes*) would hand both in-flight frames the same chain.
func (e *Encoder) BeginFrameOn(cf *h264.Frame, chain int) *FrameJob {
	if chain < 0 || chain >= len(e.dpbs) {
		panic(fmt.Sprintf("codec: chain %d of %d", chain, len(e.dpbs)))
	}
	if e.dpbs[chain].Len() == 0 {
		panic("codec: BeginFrame before intra frame")
	}
	if err := e.checkFrame(cf); err != nil {
		panic(err)
	}
	return &FrameJob{
		CF:    cf,
		ME:    h264.NewMVField(cf.MBWidth(), cf.MBHeight(), e.cfg.NumRF),
		SME:   h264.NewMVField(cf.MBWidth(), cf.MBHeight(), e.cfg.NumRF),
		NewSF: interp.NewSubFrame(cf.W, cf.H),
		Chain: chain,
	}
}

// RunME performs full-search motion estimation for macroblock rows
// [rowLo, rowHi) against every reference available on the job's chain.
// Safe to call concurrently on disjoint row ranges.
func (e *Encoder) RunME(job *FrameJob, rowLo, rowHi int) {
	me.SearchRowsAlgo(e.cfg.MEAlgo, job.CF, e.dpbs[job.Chain], e.cfg.MECfg(), job.ME, rowLo, rowHi)
}

// RunMEStreams is RunME split across up to streams concurrent row slices
// on the shared row pool — the in-device slice parallelism of a device's
// compute streams. Bit-exact with RunME for any streams value.
func (e *Encoder) RunMEStreams(job *FrameJob, rowLo, rowHi, streams int) {
	h264.ParallelRows(h264.RowFunc(func(lo, hi int) {
		e.RunME(job, lo, hi)
	}), rowLo, rowHi, streams)
}

// RunINT interpolates macroblock rows [rowLo, rowHi) of the chain's most
// recent reference frame into the job's new sub-frame. Safe to call
// concurrently on disjoint row ranges.
func (e *Encoder) RunINT(job *FrameJob, rowLo, rowHi int) {
	interp.InterpolateRows(e.dpbs[job.Chain].Ref(0).Y, job.NewSF, rowLo, rowHi)
}

// RunINTStreams is RunINT split across up to streams concurrent row
// slices. Bit-exact with RunINT for any streams value.
func (e *Encoder) RunINTStreams(job *FrameJob, rowLo, rowHi, streams int) {
	h264.ParallelRows(h264.RowFunc(func(lo, hi int) {
		e.RunINT(job, lo, hi)
	}), rowLo, rowHi, streams)
}

// CompleteINT is the τ1 host-side step: it extends the new sub-frame's
// borders and installs it as the sub-frame of the chain's reference 0,
// making the full SF structure available to SME on every device.
func (e *Encoder) CompleteINT(job *FrameJob) {
	if job.intComplete {
		panic("codec: CompleteINT called twice")
	}
	job.NewSF.ExtendBorders()
	c := job.Chain
	e.sfs[c] = append([]*interp.SubFrame{job.NewSF}, e.sfs[c]...)
	if len(e.sfs[c]) > e.dpbs[c].Len() {
		e.sfs[c] = e.sfs[c][:e.dpbs[c].Len()]
	}
	job.intComplete = true
}

// RunSME refines macroblock rows [rowLo, rowHi) on the SF structure.
// CompleteINT must have run. Safe to call concurrently on disjoint rows.
func (e *Encoder) RunSME(job *FrameJob, rowLo, rowHi int) {
	if !job.intComplete {
		panic("codec: RunSME before CompleteINT")
	}
	sfs := e.sfsPadded(job.Chain)
	sme.RefineRows(job.CF, sfs, job.ME, job.SME, rowLo, rowHi)
}

// RunSMEStreams is RunSME split across up to streams concurrent row
// slices. Bit-exact with RunSME for any streams value.
func (e *Encoder) RunSMEStreams(job *FrameJob, rowLo, rowHi, streams int) {
	if !job.intComplete {
		panic("codec: RunSME before CompleteINT")
	}
	sfs := e.sfsPadded(job.Chain)
	h264.ParallelRows(h264.RowFunc(func(lo, hi int) {
		sme.RefineRows(job.CF, sfs, job.ME, job.SME, lo, hi)
	}), rowLo, rowHi, streams)
}

// sfsPadded returns one chain's SF list padded with nils up to NumRF slots
// for the DPB ramp-up frames.
func (e *Encoder) sfsPadded(chain int) []*interp.SubFrame {
	sfs := make([]*interp.SubFrame, e.cfg.NumRF)
	copy(sfs, e.sfs[chain])
	return sfs
}

// LastRecon returns the most recently reconstructed reference frame (the
// RF+1 buffer the paper transfers back to the host after R*). It is the
// frame a conforming decoder must reproduce bit-exactly.
func (e *Encoder) LastRecon() *h264.Frame { return e.lastRecon }

// ChainRecon returns one chain's most recent reconstructed frame (nil
// before the chain is seeded) — the per-chain bit-exactness probe of the
// frame-parallel tests.
func (e *Encoder) ChainRecon(chain int) *h264.Frame {
	if e.dpbs[chain].Len() == 0 {
		return nil
	}
	return e.dpbs[chain].Ref(0)
}
