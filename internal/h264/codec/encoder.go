package codec

import (
	"fmt"

	"feves/internal/h264"
	"feves/internal/h264/entropy"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
	"feves/internal/h264/rd"
	"feves/internal/h264/sme"
)

// Encoder is the stateful sequence encoder. It owns the decoded-picture
// buffer, the per-reference SF structures and the output bitstream writer.
type Encoder struct {
	cfg Config
	w   *entropy.BitWriter
	dpb *h264.DPB
	// sfs[i] is the interpolated sub-frame of dpb.Ref(i). At the start of a
	// frame, the most recent reference (index 0) has no sub-frame yet: the
	// INT module produces it during that frame's τ1 interval.
	sfs    []*interp.SubFrame
	frames int
	rc     *RateControl // nil when rate control is off
}

// NewEncoder creates an encoder and writes the sequence header.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{
		cfg: cfg,
		w:   entropy.NewBitWriter(),
		dpb: h264.NewDPB(cfg.NumRF),
	}
	if cfg.TargetBitsPerFrame > 0 {
		rc, err := NewRateControl(cfg.TargetBitsPerFrame, cfg.PQP, 12, 51)
		if err != nil {
			return nil, err
		}
		e.rc = rc
	}
	writeSequenceHeader(e.w, cfg)
	return e, nil
}

// frameQP returns the inter-frame QP to use next: the rate controller's
// choice when enabled, the fixed sequence PQP otherwise.
func (e *Encoder) frameQP() int {
	if e.rc != nil {
		return e.rc.QP()
	}
	return e.cfg.PQP
}

// Config returns the sequence parameters.
func (e *Encoder) Config() Config { return e.cfg }

// Bitstream flushes and returns the coded stream so far.
func (e *Encoder) Bitstream() []byte { return e.w.Bytes() }

// BitsWritten returns the number of coded bits so far.
func (e *Encoder) BitsWritten() int { return e.w.Len() }

// FramesEncoded returns the number of frames coded so far.
func (e *Encoder) FramesEncoded() int { return e.frames }

// DPBLen returns the number of reference frames currently available —
// smaller than NumRF during the ramp-up frames of Fig. 7(b).
func (e *Encoder) DPBLen() int { return e.dpb.Len() }

// ShouldIntra reports whether the next frame must be intra coded: the
// first frame of a sequence, or an IDR refresh point when IntraPeriod is
// configured.
func (e *Encoder) ShouldIntra() bool {
	if e.dpb.Len() == 0 {
		return true
	}
	return e.cfg.IntraPeriod > 0 && e.frames%e.cfg.IntraPeriod == 0
}

// EncodeFrame encodes one frame end to end on the calling goroutine: the
// first frame of a sequence (and each IDR refresh point) is intra coded,
// every other frame runs the full inter loop. This is the single-device
// reference path.
func (e *Encoder) EncodeFrame(cf *h264.Frame) (rd.FrameStats, error) {
	if err := e.checkFrame(cf); err != nil {
		return rd.FrameStats{}, err
	}
	if e.ShouldIntra() {
		return e.EncodeIntraFrame(cf)
	}
	job := e.BeginFrame(cf)
	n := e.cfg.MBRows()
	e.RunME(job, 0, n)
	e.RunINT(job, 0, n)
	e.CompleteINT(job)
	e.RunSME(job, 0, n)
	return e.RunRStar(job), nil
}

func (e *Encoder) checkFrame(cf *h264.Frame) error {
	if cf.W != e.cfg.Width || cf.H != e.cfg.Height {
		return fmt.Errorf("codec: frame %dx%d does not match configured %dx%d",
			cf.W, cf.H, e.cfg.Width, e.cfg.Height)
	}
	return nil
}

// BeginFrame allocates the working buffers of one inter-frame. The DPB must
// hold at least one reference (i.e. the intra frame was already encoded).
func (e *Encoder) BeginFrame(cf *h264.Frame) *FrameJob {
	if e.dpb.Len() == 0 {
		panic("codec: BeginFrame before intra frame")
	}
	if err := e.checkFrame(cf); err != nil {
		panic(err)
	}
	return &FrameJob{
		CF:    cf,
		ME:    h264.NewMVField(cf.MBWidth(), cf.MBHeight(), e.cfg.NumRF),
		SME:   h264.NewMVField(cf.MBWidth(), cf.MBHeight(), e.cfg.NumRF),
		NewSF: interp.NewSubFrame(cf.W, cf.H),
	}
}

// RunME performs full-search motion estimation for macroblock rows
// [rowLo, rowHi) against every available reference. Safe to call
// concurrently on disjoint row ranges.
func (e *Encoder) RunME(job *FrameJob, rowLo, rowHi int) {
	me.SearchRowsAlgo(e.cfg.MEAlgo, job.CF, e.dpb, e.cfg.MECfg(), job.ME, rowLo, rowHi)
}

// RunINT interpolates macroblock rows [rowLo, rowHi) of the most recent
// reference frame into the job's new sub-frame. Safe to call concurrently
// on disjoint row ranges.
func (e *Encoder) RunINT(job *FrameJob, rowLo, rowHi int) {
	interp.InterpolateRows(e.dpb.Ref(0).Y, job.NewSF, rowLo, rowHi)
}

// CompleteINT is the τ1 host-side step: it extends the new sub-frame's
// borders and installs it as the sub-frame of reference 0, making the full
// SF structure available to SME on every device.
func (e *Encoder) CompleteINT(job *FrameJob) {
	if job.intComplete {
		panic("codec: CompleteINT called twice")
	}
	job.NewSF.ExtendBorders()
	e.sfs = append([]*interp.SubFrame{job.NewSF}, e.sfs...)
	if len(e.sfs) > e.dpb.Len() {
		e.sfs = e.sfs[:e.dpb.Len()]
	}
	job.intComplete = true
}

// RunSME refines macroblock rows [rowLo, rowHi) on the SF structure.
// CompleteINT must have run. Safe to call concurrently on disjoint rows.
func (e *Encoder) RunSME(job *FrameJob, rowLo, rowHi int) {
	if !job.intComplete {
		panic("codec: RunSME before CompleteINT")
	}
	sfs := e.sfsPadded()
	sme.RefineRows(job.CF, sfs, job.ME, job.SME, rowLo, rowHi)
}

// sfsPadded returns the SF list padded with nils up to NumRF slots for the
// DPB ramp-up frames.
func (e *Encoder) sfsPadded() []*interp.SubFrame {
	sfs := make([]*interp.SubFrame, e.cfg.NumRF)
	copy(sfs, e.sfs)
	return sfs
}

// LastRecon returns the most recently reconstructed reference frame (the
// RF+1 buffer the paper transfers back to the host after R*). It is the
// frame a conforming decoder must reproduce bit-exactly.
func (e *Encoder) LastRecon() *h264.Frame {
	if e.dpb.Len() == 0 {
		return nil
	}
	return e.dpb.Ref(0)
}
