// Package codec assembles the inter-loop modules (ME, INT, SME, MC, TQ,
// TQ⁻¹, DBL, entropy coding) into a complete H.264/AVC-style encoder and a
// matching decoder.
//
// The encoder exposes two granularities:
//
//   - EncodeFrame / EncodeIntraFrame: single-call whole-frame encoding,
//     used as the single-device reference implementation.
//   - BeginFrame / RunME / RunINT / CompleteINT / RunSME / RunRStar: the
//     module-granular, row-sliceable API that the FEVES Video Coding
//     Manager drives when the workload is distributed across devices. Any
//     row distribution produces a bitstream and reconstruction bit-exact
//     with the whole-frame path (verified by tests).
//
// The bitstream is this reproduction's own container (magic "FVS1"), not a
// standard-compliant NAL stream; DESIGN.md documents the simplifications.
package codec

import (
	"errors"
	"fmt"
	"hash/crc32"

	"feves/internal/h264"
	"feves/internal/h264/entropy"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
)

// Magic identifies the sequence header of this reproduction's bitstream.
var Magic = [4]byte{'F', 'V', 'S', '1'}

// ErrBadStream reports a malformed bitstream.
var ErrBadStream = errors.New("codec: malformed bitstream")

// EntropyMode selects the residual entropy backend.
type EntropyMode int

const (
	// EntropyVLC is the CAVLC-style run-level coder of the Baseline
	// profile the paper evaluates (default).
	EntropyVLC EntropyMode = iota
	// EntropyArith is the reproduction's CABAC-style adaptive binary
	// arithmetic backend (an optional extension; see internal/h264/entropy).
	EntropyArith
)

func (m EntropyMode) String() string {
	if m == EntropyArith {
		return "arith"
	}
	return "vlc"
}

// Config holds the sequence-level coding parameters, following the paper's
// experimental setup (IPPP structure, FSBM, VCEG-style QP pair).
type Config struct {
	Width, Height int
	// SearchRange is the FSBM displacement bound in full pixels; the
	// paper's "SA size" is twice this value (SA 32×32 ⇒ SearchRange 16).
	SearchRange int
	// NumRF is the number of reference frames (the DPB capacity).
	NumRF int
	// IQP and PQP are the quantization parameters for I- and P-frames;
	// the paper uses {27, 28}.
	IQP, PQP int
	// Entropy selects the residual coding backend.
	Entropy EntropyMode
	// IntraPeriod inserts an IDR (intra) frame every IntraPeriod frames,
	// flushing the reference buffer; 0 codes only the first frame intra
	// (the paper's IPPP structure).
	IntraPeriod int
	// MEAlgo selects the integer motion-search algorithm (default: the
	// paper's full search). The choice affects only encoder decisions, so
	// it is not signalled in the bitstream.
	MEAlgo me.Algorithm
	// TargetBitsPerFrame enables the reactive rate controller: the
	// inter-frame QP adapts (within [12, 51]) to steer each frame's coded
	// size toward the target. 0 keeps the paper's fixed-QP operation.
	TargetBitsPerFrame int
	// Checksum appends a CRC-32 of every reconstructed frame to the
	// bitstream, letting the decoder detect corruption (and drift bugs)
	// without access to the encoder.
	Checksum bool
	// SceneCutThreshold enables adaptive IDR insertion: when the mean
	// motion-compensated cost per pixel of a frame exceeds the threshold
	// (inter prediction has failed, e.g. at a scene change), the frame is
	// coded intra instead. 0 disables detection. Typical values: 5–15.
	SceneCutThreshold float64
	// Slices splits every frame into this many horizontal slices of
	// macroblock rows. Prediction (motion-vector and intra) never crosses
	// a slice boundary and the arithmetic backend codes each slice as an
	// independent chunk, so slices are independently decodable — the
	// standard's error-resilience mechanism. 0 or 1 keeps whole-frame
	// coding. Deblocking still filters across slice boundaries (the
	// standard's default).
	Slices int
	// Chains is the number of independent reference chains (0/1 = the
	// classic single chain). With 2 chains, inter frames alternate: the
	// first inter frame after an intra references chain 0, the next chain
	// 1, and so on — each chain holds only the shared intra seed plus its
	// own reconstructed frames, so two consecutive inter frames have no
	// data dependency and can be encoded concurrently (frame-parallel
	// mode). The chain structure is signalled in the sequence header; a
	// conforming decoder mirrors it exactly.
	Chains int
	// KernelWorkers splits each kernel dispatch of the serial EncodeFrame
	// path into this many row slices executed concurrently on the shared
	// row pool (the in-device slice parallelism of the paper's compute
	// streams). 0 or 1 keeps serial execution. Results are bit-exact
	// either way, so the setting is encoder-local and not signalled in
	// the bitstream. The VCM path ignores it and uses each device
	// profile's Streams count instead.
	KernelWorkers int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0 || c.Width%h264.MBSize != 0 || c.Height%h264.MBSize != 0:
		return fmt.Errorf("codec: frame size %dx%d must be positive multiples of %d", c.Width, c.Height, h264.MBSize)
	case c.SearchRange < 1 || c.SearchRange > h264.DefaultPad-8:
		return fmt.Errorf("codec: search range %d out of range [1,%d]", c.SearchRange, h264.DefaultPad-8)
	case c.NumRF < 1 || c.NumRF > 16:
		return fmt.Errorf("codec: NumRF %d out of range [1,16]", c.NumRF)
	case c.IQP < 0 || c.IQP > 51 || c.PQP < 0 || c.PQP > 51:
		return fmt.Errorf("codec: QP out of range [0,51]")
	case c.Entropy != EntropyVLC && c.Entropy != EntropyArith:
		return fmt.Errorf("codec: unknown entropy mode %d", c.Entropy)
	case c.IntraPeriod < 0:
		return fmt.Errorf("codec: intra period %d must be ≥ 0", c.IntraPeriod)
	case c.MEAlgo != me.FullSearch && c.MEAlgo != me.ThreeStep && c.MEAlgo != me.Diamond:
		return fmt.Errorf("codec: unknown ME algorithm %d", c.MEAlgo)
	case c.TargetBitsPerFrame < 0:
		return fmt.Errorf("codec: target bits per frame %d must be ≥ 0", c.TargetBitsPerFrame)
	case c.SceneCutThreshold < 0:
		return fmt.Errorf("codec: scene-cut threshold %v must be ≥ 0", c.SceneCutThreshold)
	case c.Slices < 0 || c.Slices > c.Height/h264.MBSize:
		return fmt.Errorf("codec: %d slices for %d macroblock rows", c.Slices, c.Height/h264.MBSize)
	case c.Chains < 0 || c.Chains > 2:
		return fmt.Errorf("codec: %d reference chains out of range [0,2]", c.Chains)
	case c.KernelWorkers < 0 || c.KernelWorkers > 64:
		return fmt.Errorf("codec: %d kernel workers out of range [0,64]", c.KernelWorkers)
	}
	return nil
}

// kernelWorkers normalizes the KernelWorkers field (0 means 1).
func (c Config) kernelWorkers() int {
	if c.KernelWorkers <= 1 {
		return 1
	}
	return c.KernelWorkers
}

// chains normalizes the Chains field (0 means 1).
func (c Config) chains() int {
	if c.Chains <= 1 {
		return 1
	}
	return c.Chains
}

// MBRows returns N, the number of macroblock rows distributed by the load
// balancer.
func (c Config) MBRows() int { return c.Height / h264.MBSize }

// sliceCount normalizes the Slices field (0 means 1).
func (c Config) sliceCount() int {
	if c.Slices <= 1 {
		return 1
	}
	return c.Slices
}

// sliceStarts returns the first macroblock row of each of k balanced
// horizontal slices of a rows-tall frame.
func sliceStarts(rows, k int) []int {
	starts := make([]int, k)
	base, rem := rows/k, rows%k
	acc := 0
	for i := 0; i < k; i++ {
		starts[i] = acc
		acc += base
		if i < rem {
			acc++
		}
	}
	return starts
}

// sliceTopRow returns the first row of the slice containing row mby.
func sliceTopRow(starts []int, mby int) int {
	top := 0
	for _, st := range starts {
		if st <= mby {
			top = st
		}
	}
	return top
}

// MECfg returns the motion-estimation parameters.
func (c Config) MECfg() me.Config { return me.Config{SearchRange: c.SearchRange} }

// FrameJob carries the intermediate state of one inter-frame through the
// pipeline stages. The buffers correspond exactly to the paper's CF, MV
// (from ME), MV (from SME) and the newly interpolated part of the SF.
type FrameJob struct {
	CF    *h264.Frame
	ME    *h264.MVField    // integer-pel FSBM output
	SME   *h264.MVField    // quarter-pel refined output
	NewSF *interp.SubFrame // SF of the most recent reference, filled by INT
	// Chain is the reference chain this frame predicts from and
	// reconstructs into (always 0 with a single chain).
	Chain int

	intComplete bool
}

// partForBlock returns the partition index (within the decided mode) that
// covers 4×4 block (bx, by) of the macroblock.
func partForBlock(mode h264.PartMode, bx, by int) int {
	w, h := mode.Size()
	return (by*4/h)*(h264.MBSize/w) + bx*4/w
}

// blockSink abstracts where residual blocks are coded to: the main VLC
// bitstream or a per-frame arithmetic chunk.
type blockSink interface {
	writeBlock(blk *[16]int32)
}

type vlcSink struct{ w *entropy.BitWriter }

func (s vlcSink) writeBlock(b *[16]int32) { s.w.WriteBlock4x4(b) }

type arithSink struct {
	e  *entropy.ArithEncoder
	rc *entropy.ResidualContexts
}

func (s arithSink) writeBlock(b *[16]int32) { s.rc.EncodeBlock4x4(s.e, b) }

// blockSource is the decoding counterpart of blockSink.
type blockSource interface {
	readBlock(blk *[16]int32) error
}

type vlcSource struct{ r *entropy.BitReader }

func (s vlcSource) readBlock(b *[16]int32) error { return s.r.ReadBlock4x4(b) }

type arithSource struct {
	d  *entropy.ArithDecoder
	rc *entropy.ResidualContexts
	// dead marks the source as corrupt: once block syntax breaks, the
	// rest of the slice cannot be trusted.
	dead *bool
	// conceal, when non-nil, enables error concealment: corrupt blocks
	// are replaced by zero residual (prediction still applies) and the
	// counter records the first failure per slice.
	conceal *int
}

func (s arithSource) readBlock(b *[16]int32) error {
	if *s.dead {
		*b = [16]int32{}
		if s.conceal != nil {
			return nil
		}
		return fmt.Errorf("%w: corrupt arithmetic residual", ErrBadStream)
	}
	if !s.rc.DecodeBlock4x4(s.d, b) {
		*s.dead = true
		*b = [16]int32{}
		if s.conceal != nil {
			*s.conceal++
			return nil
		}
		return fmt.Errorf("%w: corrupt arithmetic residual", ErrBadStream)
	}
	return nil
}

// reconCRC hashes the reconstructed frame for the optional per-frame
// integrity trailer.
func reconCRC(f *h264.Frame) uint32 {
	return crc32.ChecksumIEEE(f.PackedYUV())
}

// writeSequenceHeader emits the stream preamble.
func writeSequenceHeader(w *entropy.BitWriter, cfg Config) {
	for _, b := range Magic {
		w.WriteBits(uint32(b), 8)
	}
	w.WriteUE(uint32(cfg.Width / h264.MBSize))
	w.WriteUE(uint32(cfg.Height / h264.MBSize))
	w.WriteUE(uint32(cfg.SearchRange))
	w.WriteUE(uint32(cfg.NumRF))
	w.WriteUE(uint32(cfg.IQP))
	w.WriteUE(uint32(cfg.PQP))
	w.WriteUE(uint32(cfg.Entropy))
	w.WriteUE(uint32(cfg.sliceCount()))
	if cfg.Checksum {
		w.WriteUE(1)
	} else {
		w.WriteUE(0)
	}
	w.WriteUE(uint32(cfg.chains()))
	w.AlignByte()
}

// SequenceHeaderLen returns the byte length of the sequence header
// writeSequenceHeader emits for cfg. Every shard of a GOP-sharded encode
// writes its own identical copy of the header (each shard encoder starts a
// fresh stream); a reassembler keeps shard 0 whole and strips this many
// leading bytes from every later shard before concatenating. The header is
// byte-aligned, as is every frame payload, so the splice points land on
// byte boundaries.
func SequenceHeaderLen(cfg Config) int {
	w := entropy.NewBitWriter()
	writeSequenceHeader(w, cfg)
	return len(w.Bytes())
}

// readSequenceHeader parses the stream preamble.
func readSequenceHeader(r *entropy.BitReader) (Config, error) {
	var cfg Config
	for _, want := range Magic {
		b, err := r.ReadBits(8)
		if err != nil {
			return cfg, err
		}
		if byte(b) != want {
			return cfg, ErrBadStream
		}
	}
	vals := make([]uint32, 10)
	for i := range vals {
		v, err := r.ReadUE()
		if err != nil {
			return cfg, err
		}
		vals[i] = v
	}
	r.AlignByte()
	cfg = Config{
		Width:       int(vals[0]) * h264.MBSize,
		Height:      int(vals[1]) * h264.MBSize,
		SearchRange: int(vals[2]),
		NumRF:       int(vals[3]),
		IQP:         int(vals[4]),
		PQP:         int(vals[5]),
		Entropy:     EntropyMode(vals[6]),
		Slices:      int(vals[7]),
		Checksum:    vals[8] == 1,
		Chains:      int(vals[9]),
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("%w: %v", ErrBadStream, err)
	}
	return cfg, nil
}
