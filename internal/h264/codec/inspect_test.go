package codec

import (
	"testing"

	"feves/internal/h264"
)

func TestInspectReportsStructure(t *testing.T) {
	const w, h, n = 64, 48, 6
	frames := movingScene(w, h, n, 101)
	cfg := testConfig(w, h)
	cfg.IntraPeriod = 3
	cfg.TargetBitsPerFrame = 8000
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bits []int
	for _, f := range frames {
		stats, err := enc.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		bits = append(bits, stats.Bits)
	}
	si, err := Inspect(enc.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	// Only decode-relevant fields travel in the sequence header; encoder-
	// side options (rate control, intra period, ME algorithm) do not.
	ec := enc.Config()
	if si.Config.Width != ec.Width || si.Config.Height != ec.Height ||
		si.Config.SearchRange != ec.SearchRange || si.Config.NumRF != ec.NumRF ||
		si.Config.IQP != ec.IQP || si.Config.PQP != ec.PQP ||
		si.Config.Entropy != ec.Entropy || si.Config.Checksum != ec.Checksum {
		t.Fatal("inspected signalled fields differ")
	}
	if len(si.Frames) != n {
		t.Fatalf("%d frames inspected, want %d", len(si.Frames), n)
	}
	total := 0
	for i, fi := range si.Frames {
		if fi.Index != i {
			t.Fatalf("frame %d indexed %d", i, fi.Index)
		}
		if fi.Intra != (i%3 == 0) {
			t.Fatalf("frame %d intra=%v", i, fi.Intra)
		}
		if fi.Bits != bits[i] {
			t.Fatalf("frame %d: inspected %d bits, encoder reported %d", i, fi.Bits, bits[i])
		}
		if fi.QP < 0 || fi.QP > 51 {
			t.Fatalf("frame %d: QP %d", i, fi.QP)
		}
		mbTotal := 0
		for _, c := range fi.ModeCount {
			mbTotal += c
		}
		if fi.Intra && mbTotal != 0 {
			t.Fatalf("intra frame %d has inter modes", i)
		}
		if !fi.Intra && mbTotal != (w/16)*(h/16) {
			t.Fatalf("frame %d: %d mode entries, want %d", i, mbTotal, (w/16)*(h/16))
		}
		total += fi.Bits
	}
	if si.TotalBits() != total {
		t.Fatal("TotalBits mismatch")
	}
	hist := si.ModeHistogram()
	sum := 0
	for _, c := range hist {
		sum += c
	}
	if sum != 4*(w/16)*(h/16) { // 4 inter frames
		t.Fatalf("histogram covers %d MBs", sum)
	}
	_ = h264.NumPartModes
}

func TestInspectRejectsCorruption(t *testing.T) {
	frames := movingScene(48, 48, 2, 102)
	cfg := testConfig(48, 48)
	cfg.Checksum = true
	enc, _ := NewEncoder(cfg)
	for _, f := range frames {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	corrupt := append([]byte(nil), stream...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Inspect(corrupt); err == nil {
		t.Fatal("corrupt stream inspected cleanly")
	}
}
