package codec

import (
	"feves/internal/h264"
	"feves/internal/h264/deblock"
	"feves/internal/h264/entropy"
	"feves/internal/h264/rd"
	"feves/internal/h264/transform"
)

// EncodeIntraFrame codes cf as an I-frame using 16×16 (luma) and 8×8
// (chroma) DC prediction from already-reconstructed neighbours, followed by
// TQ, entropy coding, reconstruction and deblocking. The intra frame seeds
// the DPB; per the paper it lies outside the inter-loop whose time the
// framework balances, so it always runs on the host path.
func (e *Encoder) EncodeIntraFrame(cf *h264.Frame) (rd.FrameStats, error) {
	if err := e.checkFrame(cf); err != nil {
		return rd.FrameStats{}, err
	}
	startBits := e.w.Len()
	qp := e.cfg.IQP
	recon := h264.NewFrame(cf.W, cf.H)
	bi := deblock.NewBlockInfo(cf.W, cf.H)
	mbw, mbh := cf.MBWidth(), cf.MBHeight()

	e.w.WriteUE(0) // frame type: I
	starts := sliceStarts(mbh, e.cfg.sliceCount())
	hw, sinks := e.beginFrameEntropy(len(starts))
	for mby := 0; mby < mbh; mby++ {
		topY := sliceTopRow(starts, mby) * h264.MBSize
		sink := sinks[sliceIndex(starts, mby)]
		for mbx := 0; mbx < mbw; mbx++ {
			codeIntraMB(hw, sink, cf, recon, bi, mbx, mby, qp, topY)
		}
	}
	e.assembleFrame(hw, sinks)

	e.filterRecon(recon, bi, qp)
	if e.cfg.Checksum {
		e.w.WriteBits(reconCRC(recon), 32)
	}
	recon.Poc = cf.Poc
	recon.IsIntra = true
	// IDR semantics: an intra frame flushes every reference chain and the
	// interpolated sub-frames, so prediction never crosses it, then seeds
	// all chains with the same reconstruction — the shared root both
	// chains' first inter frames predict from.
	for c := range e.dpbs {
		e.dpbs[c].Clear()
		e.sfs[c] = nil
		e.dpbs[c].Push(recon)
	}
	e.lastRecon = recon
	e.sinceIntra = 0
	e.frames++

	y, cb, cr := rd.FramePSNR(cf, recon)
	return rd.FrameStats{
		Poc: cf.Poc, Intra: true,
		Bits:  e.w.Len() - startBits,
		PSNRY: y, PSNRCb: cb, PSNRCr: cr,
	}, nil
}

// dcPredict computes the DC prediction for a size×size block at (x0, y0)
// of plane p, using reconstructed top/left neighbours when available.
// Neighbours above minY (the slice's first luma row, scaled for chroma by
// the caller) are treated as unavailable.
func dcPredict(p *h264.Plane, x0, y0, size, minY int) uint8 {
	var sum, n int32
	if y0 > minY {
		for i := 0; i < size; i++ {
			sum += int32(p.At(x0+i, y0-1))
		}
		n += int32(size)
	}
	if x0 > 0 {
		for j := 0; j < size; j++ {
			sum += int32(p.At(x0-1, y0+j))
		}
		n += int32(size)
	}
	if n == 0 {
		return 128
	}
	return uint8((sum + n/2) / n)
}

// Intra 16×16 luma prediction modes, a subset of the standard's: DC,
// vertical (extend the row above) and horizontal (extend the column to the
// left). The chosen mode is signalled per macroblock with ue(v).
const (
	intraDC = iota
	intraVertical
	intraHorizontal
	numIntraModes
)

// buildIntraPredSlice fills a 16×16 luma prediction for the given mode
// from the already-reconstructed neighbours, honouring the slice boundary
// at luma row minY.
func buildIntraPredSlice(recon *h264.Plane, x0, y0, mode, minY int, pred *[256]uint8) {
	switch mode {
	case intraVertical:
		for x := 0; x < 16; x++ {
			v := recon.At(x0+x, y0-1)
			for y := 0; y < 16; y++ {
				pred[y*16+x] = v
			}
		}
	case intraHorizontal:
		for y := 0; y < 16; y++ {
			v := recon.At(x0-1, y0+y)
			for x := 0; x < 16; x++ {
				pred[y*16+x] = v
			}
		}
	default:
		dc := dcPredict(recon, x0, y0, 16, minY)
		for i := range pred {
			pred[i] = dc
		}
	}
}

// chooseIntraMode picks the available luma mode with the lowest SAD.
// Vertical prediction is unavailable on a slice's first row.
func chooseIntraMode(cf, recon *h264.Frame, x0, y0, minY int) int {
	best, bestCost := intraDC, int32(1)<<30
	var pred [256]uint8
	for mode := 0; mode < numIntraModes; mode++ {
		if mode == intraVertical && y0 == minY {
			continue
		}
		if mode == intraHorizontal && x0 == 0 {
			continue
		}
		buildIntraPredSlice(recon.Y, x0, y0, mode, minY, &pred)
		var sad int32
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				d := int32(cf.Y.At(x0+x, y0+y)) - int32(pred[y*16+x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestCost {
			best, bestCost = mode, sad
		}
	}
	return best
}

// codeIntraMB codes one intra macroblock; the caller guarantees raster
// order so that prediction sees the already-reconstructed neighbours.
// topY is the first luma row of the macroblock's slice.
func codeIntraMB(hw *entropy.BitWriter, sink blockSink, cf, recon *h264.Frame, bi *deblock.BlockInfo, mbx, mby, qp, topY int) {
	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize
	mode := chooseIntraMode(cf, recon, x0, y0, topY)
	hw.WriteUE(uint32(mode))
	var pred [256]uint8
	buildIntraPredSlice(recon.Y, x0, y0, mode, topY, &pred)
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var blk [16]int32
			for j := 0; j < 4; j++ {
				for i := 0; i < 4; i++ {
					blk[j*4+i] = int32(cf.Y.At(x0+bx*4+i, y0+by*4+j)) - int32(pred[(by*4+j)*16+bx*4+i])
				}
			}
			nz := transform.TQ(&blk, qp)
			sink.writeBlock(&blk)
			transform.TQInv(&blk, qp)
			for j := 0; j < 4; j++ {
				for i := 0; i < 4; i++ {
					pv := pred[(by*4+j)*16+bx*4+i]
					recon.Y.Set(x0+bx*4+i, y0+by*4+j, transform.Clip255(int32(pv)+blk[j*4+i]))
				}
			}
			bi.SetBlock(mbx*4+bx, mby*4+by, nz > 0, h264.MV{}, 0)
		}
	}
	// Chroma 8×8 with DC prediction per plane.
	cx0, cy0 := x0/2, y0/2
	for _, pl := range []struct{ src, dst *h264.Plane }{{cf.Cb, recon.Cb}, {cf.Cr, recon.Cr}} {
		dc := dcPredict(pl.dst, cx0, cy0, 8, topY/2)
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				var blk [16]int32
				for j := 0; j < 4; j++ {
					for i := 0; i < 4; i++ {
						blk[j*4+i] = int32(pl.src.At(cx0+bx*4+i, cy0+by*4+j)) - int32(dc)
					}
				}
				transform.TQ(&blk, qp)
				sink.writeBlock(&blk)
				transform.TQInv(&blk, qp)
				for j := 0; j < 4; j++ {
					for i := 0; i < 4; i++ {
						pl.dst.Set(cx0+bx*4+i, cy0+by*4+j, transform.Clip255(int32(dc)+blk[j*4+i]))
					}
				}
			}
		}
	}
	bi.SetIntra(mbx, mby, true)
}

// codeChroma transforms, codes and reconstructs the two 8×8 chroma blocks
// of an inter macroblock.
func codeChroma(sink blockSink, cf, recon *h264.Frame, mbx, mby int, predCb, predCr *[64]uint8, qp int) {
	cx0, cy0 := mbx*8, mby*8
	for _, pl := range []struct {
		src, dst *h264.Plane
		pred     *[64]uint8
	}{{cf.Cb, recon.Cb, predCb}, {cf.Cr, recon.Cr, predCr}} {
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				var blk [16]int32
				for j := 0; j < 4; j++ {
					for i := 0; i < 4; i++ {
						px := pl.pred[(by*4+j)*8+bx*4+i]
						blk[j*4+i] = int32(pl.src.At(cx0+bx*4+i, cy0+by*4+j)) - int32(px)
					}
				}
				transform.TQ(&blk, qp)
				sink.writeBlock(&blk)
				transform.TQInv(&blk, qp)
				for j := 0; j < 4; j++ {
					for i := 0; i < 4; i++ {
						px := pl.pred[(by*4+j)*8+bx*4+i]
						pl.dst.Set(cx0+bx*4+i, cy0+by*4+j, transform.Clip255(int32(px)+blk[j*4+i]))
					}
				}
			}
		}
	}
}
