package codec

import (
	"bytes"
	"testing"
)

// encodeWithWorkers encodes a short moving scene with the given
// KernelWorkers setting and returns the bitstream.
func encodeWithWorkers(t *testing.T, w, h, workers int) []byte {
	t.Helper()
	cfg := testConfig(w, h)
	cfg.KernelWorkers = workers
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range movingScene(w, h, 6, 11) {
		if _, err := enc.EncodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Bitstream()
}

// TestKernelWorkersBitExact pins the slice-parallel contract end to end:
// routing ME search, interpolation, sub-pel refinement and plane-parallel
// deblocking through ParallelRows must reproduce the serial bitstream
// byte for byte, at both GPU stream counts (GPU_F runs 4 compute streams,
// GPU_K runs 8). The 112×176 frame has 11 macroblock rows — an odd count
// no tested worker count divides, so every run exercises uneven chunking
// and a short final chunk. Run under -race this also proves the row
// slices share no samples.
func TestKernelWorkersBitExact(t *testing.T) {
	for _, size := range []struct{ w, h int }{{112, 176}, {176, 112}} {
		serial := encodeWithWorkers(t, size.w, size.h, 0)
		for _, workers := range []int{2, 4, 8} {
			got := encodeWithWorkers(t, size.w, size.h, workers)
			if !bytes.Equal(got, serial) {
				t.Errorf("%dx%d: %d kernel workers changed the bitstream (%d vs %d bytes)",
					size.w, size.h, workers, len(got), len(serial))
			}
		}
	}
}

// TestRunStreamsMatchSerialStages drives the per-stage stream wrappers the
// VCM payloads use — RunMEStreams / RunINTStreams / RunSMEStreams on
// partial row ranges — against the serial RunME / RunINT / RunSME on a
// second encoder, checking the motion fields stay bit-exact stage by
// stage.
func TestRunStreamsMatchSerialStages(t *testing.T) {
	const w, h = 112, 176
	scene := movingScene(w, h, 4, 7)
	par, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	ser, err := NewEncoder(testConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := par.EncodeFrame(scene[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ser.EncodeFrame(scene[0]); err != nil {
		t.Fatal(err)
	}
	n := scene[1].MBHeight()
	split := n / 3
	for _, cf := range scene[1:] {
		jp, js := par.BeginFrame(cf), ser.BeginFrame(cf)
		// Two uneven dispatches per stage, as a two-device schedule would
		// issue them, with different stream counts per dispatch.
		par.RunMEStreams(jp, 0, split, 4)
		par.RunMEStreams(jp, split, n, 8)
		ser.RunME(js, 0, n)
		if !jp.ME.Equal(js.ME) {
			t.Fatal("parallel ME field differs from serial")
		}
		par.RunINTStreams(jp, 0, split, 8)
		par.RunINTStreams(jp, split, n, 4)
		ser.RunINT(js, 0, n)
		par.CompleteINT(jp)
		ser.CompleteINT(js)
		par.RunSMEStreams(jp, 0, split, 4)
		par.RunSMEStreams(jp, split, n, 8)
		ser.RunSME(js, 0, n)
		if !jp.SME.Equal(js.SME) {
			t.Fatal("parallel SME field differs from serial")
		}
		sp := par.RunRStar(jp)
		ss := ser.RunRStar(js)
		if sp != ss {
			t.Fatalf("frame stats diverged: %+v vs %+v", sp, ss)
		}
	}
	if !bytes.Equal(par.Bitstream(), ser.Bitstream()) {
		t.Fatal("stream-dispatched bitstream differs from serial")
	}
}
