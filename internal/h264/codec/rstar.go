package codec

import (
	"feves/internal/h264"
	"feves/internal/h264/deblock"
	"feves/internal/h264/entropy"
	"feves/internal/h264/mc"
	"feves/internal/h264/rd"
	"feves/internal/h264/transform"
)

// filterRecon deblocks a reconstructed frame, filtering the three planes
// concurrently when the encoder is configured with kernel workers. The
// planes share no samples and boundary strengths depend only on BlockInfo,
// so the plane-parallel result is bit-exact with the serial filter.
func (e *Encoder) filterRecon(recon *h264.Frame, bi *deblock.BlockInfo, qp int) {
	if e.cfg.kernelWorkers() <= 1 {
		deblock.FilterFrame(recon, bi, qp)
		return
	}
	h264.ParallelRows(h264.RowFunc(func(lo, hi int) {
		for p := lo; p < hi; p++ {
			deblock.FilterPlane(recon, bi, qp, p)
		}
	}), 0, 3, 3)
	recon.ExtendBorders()
}

// RunRStar executes the R* module group of the paper — Motion Compensation
// (with partitioning-mode decision), Transform and Quantization, entropy
// coding, Dequantization and Inverse Transform (reconstruction), and
// Deblocking Filtering — sequentially, as on the single device the load
// balancer assigns R* to. It pushes the reconstructed frame into the DPB
// and returns the frame statistics.
func (e *Encoder) RunRStar(job *FrameJob) rd.FrameStats {
	if !job.intComplete {
		panic("codec: RunRStar before CompleteINT")
	}
	cf := job.CF
	qp := e.frameQP()
	startBits := e.w.Len()

	dec := mc.DecideFrame(job.SME, qp)
	if e.cfg.SceneCutThreshold > 0 && meanCostPerPixel(dec) > e.cfg.SceneCutThreshold {
		// Inter prediction failed across the frame (scene change): discard
		// the motion search and code an IDR instead. The decoder sees an
		// ordinary intra frame.
		stats, err := e.EncodeIntraFrame(cf)
		if err != nil {
			// cf was already validated by BeginFrame; this cannot happen.
			panic(err)
		}
		return stats
	}
	recon := h264.NewFrame(cf.W, cf.H)
	bi := deblock.NewBlockInfo(cf.W, cf.H)
	mbw, mbh := cf.MBWidth(), cf.MBHeight()

	dpb := e.dpbs[job.Chain]
	refs := make([]*h264.Frame, dpb.Len())
	for i := range refs {
		refs[i] = dpb.Ref(i)
	}
	sfs := e.sfsPadded(job.Chain)

	e.w.WriteUE(1)                     // frame type: P
	e.w.WriteSE(int32(qp - e.cfg.PQP)) // per-frame QP delta (rate control)

	// Header bits and residual blocks may go to different sinks: with the
	// arithmetic backend the residual forms one independent chunk per
	// slice, emitted before the header region (see assembleFrame).
	starts := sliceStarts(mbh, e.cfg.sliceCount())
	hw, sinks := e.beginFrameEntropy(len(starts))
	repMV := make([]h264.MV, mbw*mbh)
	for mby := 0; mby < mbh; mby++ {
		topRow := sliceTopRow(starts, mby)
		sink := sinks[sliceIndex(starts, mby)]
		for mbx := 0; mbx < mbw; mbx++ {
			d := dec.At(mbx, mby)
			// Macroblock header: mode, then per-partition ref and MVD
			// against the slice-local median predictor.
			pred := mc.MedianPredictorSlice(repMV, mbw, mbx, mby, topRow)
			hw.WriteUE(uint32(d.Mode))
			for k := 0; k < d.Mode.Count(); k++ {
				hw.WriteUE(uint32(d.Ref[k]))
				hw.WriteSE(int32(d.MV[k].X - pred.X))
				hw.WriteSE(int32(d.MV[k].Y - pred.Y))
			}
			repMV[mby*mbw+mbx] = d.MV[0]

			var predY [256]uint8
			var predCb, predCr [64]uint8
			mc.PredictMB(d, sfs, refs, mbx, mby, &predY, &predCb, &predCr)
			codeInterMB(sink, cf, recon, bi, d, mbx, mby, &predY, &predCb, &predCr, qp)
		}
	}
	e.assembleFrame(hw, sinks)

	e.filterRecon(recon, bi, qp)
	if e.cfg.Checksum {
		e.w.WriteBits(reconCRC(recon), 32)
	}
	recon.Poc = cf.Poc
	dpb.Push(recon)
	e.lastRecon = recon
	e.frames++
	e.sinceIntra++

	y, cb, cr := rd.FramePSNR(cf, recon)
	bits := e.w.Len() - startBits
	if e.rc != nil {
		e.rc.Update(bits)
	}
	return rd.FrameStats{
		Poc: cf.Poc, Intra: false,
		Bits:  bits,
		PSNRY: y, PSNRCb: cb, PSNRCr: cr,
	}
}

// meanCostPerPixel averages the mode-decision cost (SAD + λ·rate) over
// the frame's pixels — the scene-cut detector's signal.
func meanCostPerPixel(dec *mc.Decision) float64 {
	var total float64
	for i := range dec.MBs {
		total += float64(dec.MBs[i].Cost)
	}
	return total / float64(len(dec.MBs)*h264.MBSize*h264.MBSize)
}

// sliceIndex returns the index of the slice containing row mby.
func sliceIndex(starts []int, mby int) int {
	idx := 0
	for i, st := range starts {
		if st <= mby {
			idx = i
		}
	}
	return idx
}

// beginFrameEntropy returns the header writer and one residual sink per
// slice. With the VLC backend everything goes to the main bitstream
// (headers and blocks interleave exactly as in the Baseline-profile
// layout, and the stateless VLC needs no per-slice isolation); with the
// arithmetic backend headers accumulate in a side writer and every slice
// gets an independent arithmetic chunk with fresh contexts.
func (e *Encoder) beginFrameEntropy(slices int) (*entropy.BitWriter, []blockSink) {
	sinks := make([]blockSink, slices)
	if e.cfg.Entropy == EntropyArith {
		for i := range sinks {
			sinks[i] = arithSink{
				e:  entropy.NewArithEncoder(),
				rc: entropy.NewResidualContexts(),
			}
		}
		return entropy.NewBitWriter(), sinks
	}
	for i := range sinks {
		sinks[i] = vlcSink{e.w}
	}
	return e.w, sinks
}

// assembleFrame finalizes one frame's payload in the main bitstream: with
// VLC everything is already in place; with the arithmetic backend each
// slice's chunk (length-prefixed, byte-aligned) and then the header region
// are appended.
func (e *Encoder) assembleFrame(hw *entropy.BitWriter, sinks []blockSink) {
	if _, ok := sinks[0].(arithSink); ok {
		for _, sk := range sinks {
			chunk := sk.(arithSink).e.Finish()
			e.w.WriteUE(uint32(len(chunk)))
			e.w.AlignByte()
			e.w.WriteBytes(chunk)
		}
		e.w.WriteBytes(hw.Bytes()) // Bytes() zero-pads hw to a boundary
		return
	}
	e.w.AlignByte()
}

// codeInterMB transforms, quantizes, entropy-codes and reconstructs the
// residual of one inter macroblock, recording the deblocking block state.
func codeInterMB(sink blockSink, cf, recon *h264.Frame, bi *deblock.BlockInfo,
	d *h264.MBDecision, mbx, mby int,
	predY *[256]uint8, predCb, predCr *[64]uint8, qp int) {

	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize
	// Luma: sixteen 4×4 blocks in raster order.
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var blk [16]int32
			for j := 0; j < 4; j++ {
				for i := 0; i < 4; i++ {
					px := predY[(by*4+j)*16+bx*4+i]
					blk[j*4+i] = int32(cf.Y.At(x0+bx*4+i, y0+by*4+j)) - int32(px)
				}
			}
			nz := transform.TQ(&blk, qp)
			sink.writeBlock(&blk)
			transform.TQInv(&blk, qp)
			for j := 0; j < 4; j++ {
				for i := 0; i < 4; i++ {
					px := predY[(by*4+j)*16+bx*4+i]
					recon.Y.Set(x0+bx*4+i, y0+by*4+j, transform.Clip255(int32(px)+blk[j*4+i]))
				}
			}
			k := partForBlock(d.Mode, bx, by)
			bi.SetBlock(mbx*4+bx, mby*4+by, nz > 0, d.MV[k], d.Ref[k])
		}
	}
	codeChroma(sink, cf, recon, mbx, mby, predCb, predCr, qp)
	bi.SetIntra(mbx, mby, false)
}
