package codec

import (
	"errors"
	"fmt"
	"io"

	"feves/internal/h264"
	"feves/internal/h264/deblock"
	"feves/internal/h264/entropy"
	"feves/internal/h264/interp"
	"feves/internal/h264/mc"
)

// ErrChecksum reports a per-frame CRC mismatch: the decoded picture does
// not match what the encoder reconstructed.
var ErrChecksum = errors.New("codec: frame checksum mismatch")

// verifyChecksum consumes and checks the frame trailer when enabled. For
// frames with concealed slices the trailer is consumed but not compared —
// the reconstruction legitimately differs from the encoder's.
func (d *Decoder) verifyChecksum(recon *h264.Frame) error {
	if !d.cfg.Checksum {
		return nil
	}
	want, err := d.r.ReadBits(32)
	if err != nil {
		return err
	}
	if d.frameConcealed > 0 {
		return nil
	}
	if got := reconCRC(recon); got != want {
		return fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return nil
}

// beginFrameEntropy mirrors the encoder's frame layout: with the
// arithmetic backend one independent residual chunk per slice precedes
// the header region; each is consumed here and wrapped as that slice's
// block source.
func (d *Decoder) beginFrameEntropy(slices int) ([]blockSource, error) {
	srcs := make([]blockSource, slices)
	if d.cfg.Entropy != EntropyArith {
		for i := range srcs {
			srcs[i] = vlcSource{d.r}
		}
		return srcs, nil
	}
	for i := range srcs {
		n, err := d.r.ReadUE()
		if err != nil {
			return nil, err
		}
		d.r.AlignByte()
		chunk, err := d.r.ReadBytes(int(n))
		if err != nil {
			return nil, err
		}
		src := arithSource{
			d:    entropy.NewArithDecoder(chunk),
			rc:   entropy.NewResidualContexts(),
			dead: new(bool),
		}
		if d.Conceal {
			src.conceal = &d.frameConcealed
		}
		srcs[i] = src
	}
	return srcs, nil
}

// Decoder reconstructs the frames of a bitstream produced by Encoder. It is
// the end-to-end verification tool of the reproduction: for every frame the
// decoder output must be bit-exact with the encoder's reconstructed
// reference frame, regardless of how the encoding was distributed across
// devices.
type Decoder struct {
	cfg Config
	r   *entropy.BitReader
	// dpbs and sfs mirror the encoder's per-chain reference structure;
	// sinceIntra reproduces its round-robin chain assignment (frames are
	// decoded serially in coded order, which IS the assignment order).
	dpbs       []*h264.DPB
	sfs        [][]*interp.SubFrame
	sinceIntra int
	poc        int
	// stats, when non-nil, collects per-frame syntax statistics for
	// Inspect.
	stats *FrameInfo
	// Conceal enables error concealment for sliced arithmetic streams: a
	// corrupt slice chunk degrades only its own rows (residuals are
	// zeroed, prediction still applies) instead of failing the frame.
	// Headers must still parse; checksum trailers are skipped for
	// concealed frames (the pixels legitimately differ).
	Conceal bool
	// concealed counts slices concealed since decoding began;
	// frameConcealed counts within the current frame.
	concealed      int
	frameConcealed int
}

// ConcealedSlices returns how many corrupt slices were concealed so far
// (always 0 unless Conceal is set).
func (d *Decoder) ConcealedSlices() int { return d.concealed }

// NewDecoder parses the sequence header and prepares a decoder.
func NewDecoder(stream []byte) (*Decoder, error) {
	r := entropy.NewBitReader(stream)
	cfg, err := readSequenceHeader(r)
	if err != nil {
		return nil, err
	}
	d := &Decoder{cfg: cfg, r: r,
		dpbs: make([]*h264.DPB, cfg.chains()),
		sfs:  make([][]*interp.SubFrame, cfg.chains())}
	for c := range d.dpbs {
		d.dpbs[c] = h264.NewDPB(cfg.NumRF)
	}
	return d, nil
}

// Config returns the sequence parameters parsed from the header.
func (d *Decoder) Config() Config { return d.cfg }

// DecodeFrame decodes the next frame, returning io.EOF at stream end.
func (d *Decoder) DecodeFrame() (*h264.Frame, error) {
	if d.r.Remaining() < 8 {
		return nil, io.EOF
	}
	ft, err := d.r.ReadUE()
	if err != nil {
		return nil, err
	}
	d.frameConcealed = 0
	defer func() { d.concealed += d.frameConcealed }()
	switch ft {
	case 0:
		return d.decodeIntra()
	case 1:
		return d.decodeInter()
	default:
		return nil, fmt.Errorf("%w: frame type %d", ErrBadStream, ft)
	}
}

func (d *Decoder) decodeIntra() (*h264.Frame, error) {
	recon := h264.NewFrame(d.cfg.Width, d.cfg.Height)
	bi := deblock.NewBlockInfo(d.cfg.Width, d.cfg.Height)
	mbw, mbh := recon.MBWidth(), recon.MBHeight()
	qp := d.cfg.IQP
	starts := sliceStarts(mbh, d.cfg.sliceCount())
	srcs, err := d.beginFrameEntropy(len(starts))
	if err != nil {
		return nil, err
	}
	for mby := 0; mby < mbh; mby++ {
		topY := sliceTopRow(starts, mby) * h264.MBSize
		src := srcs[sliceIndex(starts, mby)]
		for mbx := 0; mbx < mbw; mbx++ {
			if err := d.decodeIntraMB(src, recon, bi, mbx, mby, qp, topY); err != nil {
				return nil, err
			}
		}
	}
	d.r.AlignByte()
	deblock.FilterFrame(recon, bi, qp)
	if err := d.verifyChecksum(recon); err != nil {
		return nil, err
	}
	recon.Poc = d.poc
	recon.IsIntra = true
	d.poc++
	// IDR semantics: flush every reference chain and its sub-frames, then
	// seed all chains with the reconstruction, mirroring the encoder.
	for c := range d.dpbs {
		d.dpbs[c].Clear()
		d.sfs[c] = nil
		d.dpbs[c].Push(recon)
	}
	d.sinceIntra = 0
	return recon, nil
}

func (d *Decoder) decodeIntraMB(src blockSource, recon *h264.Frame, bi *deblock.BlockInfo, mbx, mby, qp, topY int) error {
	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize
	modeRaw, err := d.r.ReadUE()
	if err != nil {
		return err
	}
	if modeRaw >= numIntraModes {
		return fmt.Errorf("%w: intra mode %d", ErrBadStream, modeRaw)
	}
	if (modeRaw == intraVertical && y0 == topY) || (modeRaw == intraHorizontal && x0 == 0) {
		return fmt.Errorf("%w: intra mode %d without neighbours", ErrBadStream, modeRaw)
	}
	var pred [256]uint8
	buildIntraPredSlice(recon.Y, x0, y0, int(modeRaw), topY, &pred)
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var blk [16]int32
			if err := src.readBlock(&blk); err != nil {
				return err
			}
			nz := false
			for _, v := range blk {
				if v != 0 {
					nz = true
					break
				}
			}
			dqInvReconPred(&blk, qp, recon.Y, x0+bx*4, y0+by*4, pred[:], bx*4, by*4, 16)
			bi.SetBlock(mbx*4+bx, mby*4+by, nz, h264.MV{}, 0)
		}
	}
	cx0, cy0 := x0/2, y0/2
	for _, pl := range []*h264.Plane{recon.Cb, recon.Cr} {
		dc := dcPredict(pl, cx0, cy0, 8, topY/2)
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				var blk [16]int32
				if err := src.readBlock(&blk); err != nil {
					return err
				}
				dqInvRecon(&blk, qp, pl, cx0+bx*4, cy0+by*4, dc)
			}
		}
	}
	bi.SetIntra(mbx, mby, true)
	return nil
}

func (d *Decoder) decodeInter() (*h264.Frame, error) {
	chain := d.sinceIntra % len(d.dpbs)
	dpb := d.dpbs[chain]
	if dpb.Len() == 0 {
		return nil, fmt.Errorf("%w: inter frame before intra frame", ErrBadStream)
	}
	// Mirror the encoder's INT step: interpolate the chain's most recent
	// reference.
	newSF := interp.NewSubFrame(d.cfg.Width, d.cfg.Height)
	interp.Interpolate(dpb.Ref(0).Y, newSF)
	d.sfs[chain] = append([]*interp.SubFrame{newSF}, d.sfs[chain]...)
	if len(d.sfs[chain]) > dpb.Len() {
		d.sfs[chain] = d.sfs[chain][:dpb.Len()]
	}
	sfs := make([]*interp.SubFrame, d.cfg.NumRF)
	copy(sfs, d.sfs[chain])
	refs := make([]*h264.Frame, dpb.Len())
	for i := range refs {
		refs[i] = dpb.Ref(i)
	}

	qpDelta, err := d.r.ReadSE()
	if err != nil {
		return nil, err
	}
	qp := d.cfg.PQP + int(qpDelta)
	if qp < 0 || qp > 51 {
		return nil, fmt.Errorf("%w: frame QP %d", ErrBadStream, qp)
	}
	if d.stats != nil {
		d.stats.QP = qp
	}
	recon := h264.NewFrame(d.cfg.Width, d.cfg.Height)
	bi := deblock.NewBlockInfo(d.cfg.Width, d.cfg.Height)
	mbw, mbh := recon.MBWidth(), recon.MBHeight()
	starts := sliceStarts(mbh, d.cfg.sliceCount())
	srcs, err := d.beginFrameEntropy(len(starts))
	if err != nil {
		return nil, err
	}
	repMV := make([]h264.MV, mbw*mbh)

	for mby := 0; mby < mbh; mby++ {
		topRow := sliceTopRow(starts, mby)
		src := srcs[sliceIndex(starts, mby)]
		for mbx := 0; mbx < mbw; mbx++ {
			modeRaw, err := d.r.ReadUE()
			if err != nil {
				return nil, err
			}
			if modeRaw >= h264.NumPartModes {
				return nil, fmt.Errorf("%w: partition mode %d", ErrBadStream, modeRaw)
			}
			dec := h264.MBDecision{Mode: h264.PartMode(modeRaw)}
			if d.stats != nil {
				d.stats.ModeCount[dec.Mode]++
			}
			pred := mc.MedianPredictorSlice(repMV, mbw, mbx, mby, topRow)
			for k := 0; k < dec.Mode.Count(); k++ {
				ref, err := d.r.ReadUE()
				if err != nil {
					return nil, err
				}
				if int(ref) >= dpb.Len() {
					return nil, fmt.Errorf("%w: reference %d of %d", ErrBadStream, ref, dpb.Len())
				}
				mvdx, err := d.r.ReadSE()
				if err != nil {
					return nil, err
				}
				mvdy, err := d.r.ReadSE()
				if err != nil {
					return nil, err
				}
				dec.Ref[k] = uint8(ref)
				dec.MV[k] = h264.MV{X: pred.X + int16(mvdx), Y: pred.Y + int16(mvdy)}
			}
			repMV[mby*mbw+mbx] = dec.MV[0]

			var predY [256]uint8
			var predCb, predCr [64]uint8
			mc.PredictMB(&dec, sfs, refs, mbx, mby, &predY, &predCb, &predCr)
			if err := d.decodeInterMB(src, recon, bi, &dec, mbx, mby, &predY, &predCb, &predCr, qp); err != nil {
				return nil, err
			}
		}
	}
	d.r.AlignByte()
	deblock.FilterFrame(recon, bi, qp)
	if err := d.verifyChecksum(recon); err != nil {
		return nil, err
	}
	recon.Poc = d.poc
	d.poc++
	dpb.Push(recon)
	d.sinceIntra++
	return recon, nil
}

func (d *Decoder) decodeInterMB(src blockSource, recon *h264.Frame, bi *deblock.BlockInfo,
	dec *h264.MBDecision, mbx, mby int,
	predY *[256]uint8, predCb, predCr *[64]uint8, qp int) error {

	x0, y0 := mbx*h264.MBSize, mby*h264.MBSize
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var blk [16]int32
			if err := src.readBlock(&blk); err != nil {
				return err
			}
			nz := false
			for _, v := range blk {
				if v != 0 {
					nz = true
					break
				}
			}
			dqInvReconPred(&blk, qp, recon.Y, x0+bx*4, y0+by*4, predY[:], bx*4, by*4, 16)
			k := partForBlock(dec.Mode, bx, by)
			bi.SetBlock(mbx*4+bx, mby*4+by, nz, dec.MV[k], dec.Ref[k])
		}
	}
	cx0, cy0 := x0/2, y0/2
	for _, pl := range []struct {
		dst  *h264.Plane
		pred *[64]uint8
	}{{recon.Cb, predCb}, {recon.Cr, predCr}} {
		for by := 0; by < 2; by++ {
			for bx := 0; bx < 2; bx++ {
				var blk [16]int32
				if err := src.readBlock(&blk); err != nil {
					return err
				}
				dqInvReconPred(&blk, qp, pl.dst, cx0+bx*4, cy0+by*4, pl.pred[:], bx*4, by*4, 8)
			}
		}
	}
	bi.SetIntra(mbx, mby, false)
	return nil
}
