package h264

import (
	"bytes"
	"fmt"
)

// Plane is a rectangular 8-bit sample plane with an optional padded border.
// The border replicates edge samples so that motion search and interpolation
// may read outside the nominal picture area, exactly like the padded
// reference planes of the JM reference encoder.
//
// Pixel (x, y) with x in [-Pad, W+Pad) and y in [-Pad, H+Pad) is stored at
// buf[(y+Pad)*Stride + (x+Pad)].
type Plane struct {
	W, H   int
	Pad    int
	Stride int
	buf    []uint8
}

// NewPlane allocates a zeroed plane of w×h samples with the given padding.
func NewPlane(w, h, pad int) *Plane {
	if w <= 0 || h <= 0 || pad < 0 {
		panic(fmt.Sprintf("h264: invalid plane geometry %dx%d pad %d", w, h, pad))
	}
	stride := w + 2*pad
	return &Plane{
		W:      w,
		H:      h,
		Pad:    pad,
		Stride: stride,
		buf:    make([]uint8, stride*(h+2*pad)),
	}
}

// At returns the sample at (x, y). Coordinates inside the padded border are
// valid; anything beyond panics (bounds check via slice indexing).
func (p *Plane) At(x, y int) uint8 {
	return p.buf[(y+p.Pad)*p.Stride+(x+p.Pad)]
}

// Set writes the sample at (x, y).
func (p *Plane) Set(x, y int, v uint8) {
	p.buf[(y+p.Pad)*p.Stride+(x+p.Pad)] = v
}

// Row returns the picture-area samples of row y (length W). The slice
// aliases the plane's storage.
func (p *Plane) Row(y int) []uint8 {
	off := (y+p.Pad)*p.Stride + p.Pad
	return p.buf[off : off+p.W]
}

// RowPadded returns row y including the left/right padded border
// (length W+2*Pad). The slice aliases the plane's storage.
func (p *Plane) RowPadded(y int) []uint8 {
	off := (y + p.Pad) * p.Stride
	return p.buf[off : off+p.Stride]
}

// Idx returns the storage index of sample (x, y); combined with Raw it
// enables stride-based inner loops in the hot kernels.
func (p *Plane) Idx(x, y int) int {
	return (y+p.Pad)*p.Stride + (x + p.Pad)
}

// Raw exposes the backing buffer for stride-based kernels.
func (p *Plane) Raw() []uint8 { return p.buf }

// Fill sets every sample (including the border) to v.
func (p *Plane) Fill(v uint8) {
	for i := range p.buf {
		p.buf[i] = v
	}
}

// CopyFrom copies the picture area of src (same W×H required) and re-extends
// the border.
func (p *Plane) CopyFrom(src *Plane) {
	if p.W != src.W || p.H != src.H {
		panic("h264: CopyFrom dimension mismatch")
	}
	for y := 0; y < p.H; y++ {
		copy(p.Row(y), src.Row(y))
	}
	p.ExtendBorder()
}

// LoadFrom fills the picture area from a tightly packed w*h byte slice and
// extends the border.
func (p *Plane) LoadFrom(data []uint8) {
	if len(data) != p.W*p.H {
		panic(fmt.Sprintf("h264: LoadFrom needs %d bytes, got %d", p.W*p.H, len(data)))
	}
	for y := 0; y < p.H; y++ {
		copy(p.Row(y), data[y*p.W:(y+1)*p.W])
	}
	p.ExtendBorder()
}

// Packed returns a tightly packed copy of the picture area (W*H bytes).
func (p *Plane) Packed() []uint8 {
	out := make([]uint8, p.W*p.H)
	for y := 0; y < p.H; y++ {
		copy(out[y*p.W:], p.Row(y))
	}
	return out
}

// ExtendBorder replicates the picture edges into the padded border. It must
// be called after the picture area is modified and before any kernel reads
// outside the picture area.
func (p *Plane) ExtendBorder() {
	if p.Pad == 0 {
		return
	}
	// Left and right borders of each picture row.
	for y := 0; y < p.H; y++ {
		row := p.RowPadded(y)
		l, r := row[p.Pad], row[p.Pad+p.W-1]
		for x := 0; x < p.Pad; x++ {
			row[x] = l
			row[p.Pad+p.W+x] = r
		}
	}
	// Top and bottom borders replicate the first/last padded rows.
	top := p.RowPadded(0)
	bot := p.RowPadded(p.H - 1)
	for y := 1; y <= p.Pad; y++ {
		copy(p.RowPadded(-y), top)
		copy(p.RowPadded(p.H-1+y), bot)
	}
}

// Equal reports whether the picture areas of two planes are identical.
func (p *Plane) Equal(q *Plane) bool {
	if p.W != q.W || p.H != q.H {
		return false
	}
	for y := 0; y < p.H; y++ {
		if !bytes.Equal(p.Row(y), q.Row(y)) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.W, p.H, p.Pad)
	copy(q.buf, p.buf)
	return q
}
