package rd

import (
	"math"
	"testing"

	"feves/internal/h264"
)

func TestPSNRIdenticalIsInf(t *testing.T) {
	p := h264.NewPlane(16, 16, 0)
	p.Fill(100)
	if !math.IsInf(PSNR(p, p), 1) {
		t.Fatal("identical planes should give +Inf PSNR")
	}
}

func TestMSEKnownValue(t *testing.T) {
	a := h264.NewPlane(4, 4, 0)
	b := h264.NewPlane(4, 4, 0)
	b.Fill(2) // every sample differs by 2 → MSE 4
	if got := MSE(a, b); got != 4 {
		t.Fatalf("MSE = %v, want 4", got)
	}
	// PSNR = 10·log10(255²/4) ≈ 42.11 dB.
	if got := PSNR(a, b); math.Abs(got-42.1101) > 0.01 {
		t.Fatalf("PSNR = %v", got)
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE(h264.NewPlane(4, 4, 0), h264.NewPlane(8, 4, 0))
}

func TestFramePSNR(t *testing.T) {
	a := h264.NewFrame(16, 16)
	b := h264.NewFrame(16, 16)
	b.Y.Fill(1)
	y, cb, cr := FramePSNR(a, b)
	if math.IsInf(y, 1) {
		t.Fatal("luma differs, PSNR must be finite")
	}
	if !math.IsInf(cb, 1) || !math.IsInf(cr, 1) {
		t.Fatal("identical chroma must give +Inf")
	}
}

func TestSequenceStats(t *testing.T) {
	var s SequenceStats
	s.Add(FrameStats{Bits: 1000, PSNRY: 40})
	s.Add(FrameStats{Bits: 3000, PSNRY: 30})
	s.Add(FrameStats{Bits: 2000, PSNRY: math.Inf(1)})
	if s.Frames != 3 || s.TotalBits != 6000 {
		t.Fatalf("stats %+v", s)
	}
	if got := s.BitsPerFrame(); got != 2000 {
		t.Fatalf("BitsPerFrame = %v", got)
	}
	// Inf capped at 100 for the average.
	if got := s.AvgPSNRY(); math.Abs(got-(40+30+100)/3.0) > 1e-9 {
		t.Fatalf("AvgPSNRY = %v", got)
	}
	var empty SequenceStats
	if empty.AvgPSNRY() != 0 || empty.BitsPerFrame() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestFrameStatsString(t *testing.T) {
	s := FrameStats{Poc: 5, Intra: true, Bits: 100, PSNRY: 40.5, PSNRCb: 41, PSNRCr: 42}
	if got := s.String(); got == "" || got[0] == 0 {
		t.Fatal("empty String()")
	}
	p := FrameStats{Poc: 6}
	if s.String() == p.String() {
		t.Fatal("distinct stats should print differently")
	}
}
