package rd

import (
	"math"
	"math/rand"
	"testing"

	"feves/internal/h264"
)

func randomPlane(w, h int, seed int64) *h264.Plane {
	p := h264.NewPlane(w, h, 0)
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < h; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = uint8(rng.Intn(256))
		}
	}
	return p
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	p := randomPlane(32, 32, 1)
	if got := SSIM(p, p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SSIM(p, p) = %v, want 1", got)
	}
}

func TestSSIMBoundedAndSymmetric(t *testing.T) {
	a := randomPlane(32, 32, 2)
	b := randomPlane(32, 32, 3)
	ab, ba := SSIM(a, b), SSIM(b, a)
	if math.Abs(ab-ba) > 1e-12 {
		t.Fatalf("SSIM not symmetric: %v vs %v", ab, ba)
	}
	if ab > 1 || ab < -1 {
		t.Fatalf("SSIM out of range: %v", ab)
	}
}

func TestSSIMOrdersDistortions(t *testing.T) {
	// Mild noise must score higher than heavy noise against the original.
	orig := randomPlane(64, 64, 4)
	noisy := func(amp int, seed int64) *h264.Plane {
		p := orig.Clone()
		rng := rand.New(rand.NewSource(seed))
		for y := 0; y < p.H; y++ {
			row := p.Row(y)
			for x := range row {
				v := int(row[x]) + rng.Intn(2*amp+1) - amp
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				row[x] = uint8(v)
			}
		}
		return p
	}
	mild, heavy := SSIM(orig, noisy(5, 5)), SSIM(orig, noisy(60, 6))
	if mild <= heavy {
		t.Fatalf("mild noise SSIM %v should exceed heavy noise SSIM %v", mild, heavy)
	}
	if mild < 0.8 {
		t.Fatalf("mild noise SSIM %v suspiciously low", mild)
	}
}

func TestSSIMLuminanceShiftPenalizedGently(t *testing.T) {
	// A constant +3 luminance shift preserves structure: SSIM stays high,
	// much higher than structural scrambling.
	orig := randomPlane(32, 32, 7)
	shifted := orig.Clone()
	for y := 0; y < 32; y++ {
		row := shifted.Row(y)
		for x := range row {
			if int(row[x])+3 <= 255 {
				row[x] += 3
			}
		}
	}
	scrambled := randomPlane(32, 32, 8)
	if SSIM(orig, shifted) <= SSIM(orig, scrambled) {
		t.Fatal("luminance shift should score above structural scrambling")
	}
}

func TestSSIMPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SSIM(randomPlane(32, 32, 1), randomPlane(16, 32, 1)) },
		func() { SSIM(h264.NewPlane(12, 12, 0), h264.NewPlane(12, 12, 0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFrameSSIM(t *testing.T) {
	f := h264.NewFrame(32, 32)
	g := f.Clone()
	if FrameSSIM(f, g) != 1 {
		t.Fatal("identical frames must score 1")
	}
}
