package rd

import "feves/internal/h264"

// SSIM constants per Wang et al. (2004) for 8-bit samples:
// C1 = (0.01·255)², C2 = (0.03·255)².
const (
	ssimC1 = 6.5025
	ssimC2 = 58.5225
)

// SSIM computes the mean structural similarity index between two planes
// using the common non-overlapping 8×8 window variant. Identical planes
// score 1; the value decreases toward 0 (or slightly below) as structural
// distortion grows. Both planes must have identical dimensions with sizes
// that are multiples of 8.
func SSIM(a, b *h264.Plane) float64 {
	if a.W != b.W || a.H != b.H {
		panic("rd: SSIM dimension mismatch")
	}
	if a.W%8 != 0 || a.H%8 != 0 {
		panic("rd: SSIM requires dimensions that are multiples of 8")
	}
	var sum float64
	windows := 0
	for y := 0; y < a.H; y += 8 {
		for x := 0; x < a.W; x += 8 {
			sum += ssimWindow(a, b, x, y)
			windows++
		}
	}
	return sum / float64(windows)
}

// ssimWindow evaluates SSIM on one 8×8 window.
func ssimWindow(a, b *h264.Plane, x0, y0 int) float64 {
	const n = 64.0
	var sa, sb, saa, sbb, sab float64
	for y := y0; y < y0+8; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := x0; x < x0+8; x++ {
			va, vb := float64(ra[x]), float64(rb[x])
			sa += va
			sb += vb
			saa += va * va
			sbb += vb * vb
			sab += va * vb
		}
	}
	muA, muB := sa/n, sb/n
	varA := saa/n - muA*muA
	varB := sbb/n - muB*muB
	cov := sab/n - muA*muB
	return ((2*muA*muB + ssimC1) * (2*cov + ssimC2)) /
		((muA*muA + muB*muB + ssimC1) * (varA + varB + ssimC2))
}

// FrameSSIM returns the luma SSIM of two frames.
func FrameSSIM(orig, recon *h264.Frame) float64 {
	return SSIM(orig.Y, recon.Y)
}
