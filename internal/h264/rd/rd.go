// Package rd provides the rate/distortion accounting used by the FEVES
// reproduction's examples and experiments: mean squared error, PSNR and
// simple per-frame bit/quality statistics.
package rd

import (
	"fmt"
	"math"

	"feves/internal/h264"
)

// MSE returns the mean squared error between the picture areas of two
// planes of identical dimensions.
func MSE(a, b *h264.Plane) float64 {
	if a.W != b.W || a.H != b.H {
		panic("rd: MSE dimension mismatch")
	}
	var sum float64
	for y := 0; y < a.H; y++ {
		ra, rb := a.Row(y), b.Row(y)
		for x := range ra {
			d := float64(ra[x]) - float64(rb[x])
			sum += d * d
		}
	}
	return sum / float64(a.W*a.H)
}

// PSNR returns the peak signal-to-noise ratio in dB between two planes.
// Identical planes yield +Inf.
func PSNR(a, b *h264.Plane) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// FramePSNR returns the PSNR of the luma and both chroma planes.
func FramePSNR(orig, recon *h264.Frame) (y, cb, cr float64) {
	return PSNR(orig.Y, recon.Y), PSNR(orig.Cb, recon.Cb), PSNR(orig.Cr, recon.Cr)
}

// FrameStats aggregates the coding outcome of one frame.
type FrameStats struct {
	Poc    int
	Intra  bool
	Bits   int
	PSNRY  float64
	PSNRCb float64
	PSNRCr float64
}

func (s FrameStats) String() string {
	kind := "P"
	if s.Intra {
		kind = "I"
	}
	return fmt.Sprintf("frame %3d (%s): %7d bits, PSNR Y %.2f dB Cb %.2f dB Cr %.2f dB",
		s.Poc, kind, s.Bits, s.PSNRY, s.PSNRCb, s.PSNRCr)
}

// SequenceStats accumulates statistics over an encoded sequence.
type SequenceStats struct {
	Frames    int
	TotalBits int
	SumPSNRY  float64
}

// Add folds one frame's statistics into the sequence totals.
func (s *SequenceStats) Add(f FrameStats) {
	s.Frames++
	s.TotalBits += f.Bits
	if !math.IsInf(f.PSNRY, 1) {
		s.SumPSNRY += f.PSNRY
	} else {
		s.SumPSNRY += 100 // cap lossless frames for a finite average
	}
}

// AvgPSNRY returns the mean luma PSNR over the sequence.
func (s *SequenceStats) AvgPSNRY() float64 {
	if s.Frames == 0 {
		return 0
	}
	return s.SumPSNRY / float64(s.Frames)
}

// BitsPerFrame returns the mean coded size.
func (s *SequenceStats) BitsPerFrame() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.TotalBits) / float64(s.Frames)
}
