package interp

import (
	"math/rand"
	"testing"

	"feves/internal/h264"
)

func randomPlane(w, h int, seed int64) *h264.Plane {
	p := h264.NewPlane(w, h, h264.DefaultPad)
	rng := rand.New(rand.NewSource(seed))
	for y := 0; y < h; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = uint8(rng.Intn(256))
		}
	}
	p.ExtendBorder()
	return p
}

func TestIntegerPlaneEqualsReference(t *testing.T) {
	ref := randomPlane(32, 32, 1)
	sf := NewSubFrame(32, 32)
	Interpolate(ref, sf)
	if !sf.Planes[0].Equal(ref) {
		t.Fatal("plane (0,0) must equal the reference luma")
	}
}

func TestConstantImageInterpolatesToConstant(t *testing.T) {
	ref := h264.NewPlane(32, 32, h264.DefaultPad)
	for y := 0; y < 32; y++ {
		row := ref.Row(y)
		for x := range row {
			row[x] = 77
		}
	}
	ref.ExtendBorder()
	sf := NewSubFrame(32, 32)
	Interpolate(ref, sf)
	for pi, p := range sf.Planes {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				if got := p.At(x, y); got != 77 {
					t.Fatalf("plane %d at (%d,%d) = %d, want 77", pi, x, y, got)
				}
			}
		}
	}
}

func TestHalfPelMatchesDirectSixTap(t *testing.T) {
	ref := randomPlane(48, 32, 2)
	sf := NewSubFrame(48, 32)
	Interpolate(ref, sf)
	// Horizontal half-pel: plane (2,0).
	for y := 0; y < 32; y++ {
		for x := 0; x < 48; x++ {
			raw := int32(ref.At(x-2, y)) - 5*int32(ref.At(x-1, y)) + 20*int32(ref.At(x, y)) +
				20*int32(ref.At(x+1, y)) - 5*int32(ref.At(x+2, y)) + int32(ref.At(x+3, y))
			v := (raw + 16) >> 5
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			if got := sf.Planes[2].At(x, y); int32(got) != v {
				t.Fatalf("b(%d,%d) = %d, want %d", x, y, got, v)
			}
		}
	}
	// Vertical half-pel: plane (0,2).
	for y := 0; y < 32; y++ {
		for x := 0; x < 48; x++ {
			raw := int32(ref.At(x, y-2)) - 5*int32(ref.At(x, y-1)) + 20*int32(ref.At(x, y)) +
				20*int32(ref.At(x, y+1)) - 5*int32(ref.At(x, y+2)) + int32(ref.At(x, y+3))
			v := (raw + 16) >> 5
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			if got := sf.Planes[8].At(x, y); int32(got) != v {
				t.Fatalf("h(%d,%d) = %d, want %d", x, y, got, v)
			}
		}
	}
}

func TestQuarterPelIsAverage(t *testing.T) {
	ref := randomPlane(32, 32, 3)
	sf := NewSubFrame(32, 32)
	Interpolate(ref, sf)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			g := int32(sf.Planes[0].At(x, y))
			b := int32(sf.Planes[2].At(x, y))
			h := int32(sf.Planes[8].At(x, y))
			j := int32(sf.Planes[10].At(x, y))
			if got := sf.Planes[1].At(x, y); int32(got) != (g+b+1)>>1 {
				t.Fatalf("a(%d,%d) not the average of G and b", x, y)
			}
			if got := sf.Planes[4].At(x, y); int32(got) != (g+h+1)>>1 {
				t.Fatalf("d(%d,%d) not the average of G and h", x, y)
			}
			if got := sf.Planes[5].At(x, y); int32(got) != (b+h+1)>>1 {
				t.Fatalf("e(%d,%d) not the average of b and h", x, y)
			}
			if got := sf.Planes[6].At(x, y); int32(got) != (b+j+1)>>1 {
				t.Fatalf("f(%d,%d) not the average of b and j", x, y)
			}
		}
	}
}

func TestRowSlicedInterpolationIsBitExact(t *testing.T) {
	// The collaborative-encoding correctness property: any row partitioning
	// produces exactly the full-frame result.
	ref := randomPlane(64, 64, 4)
	full := NewSubFrame(64, 64)
	Interpolate(ref, full)

	for _, splits := range [][]int{{0, 1, 4}, {0, 2, 3, 4}, {0, 4}, {0, 1, 2, 3, 4}} {
		part := NewSubFrame(64, 64)
		for i := 0; i+1 < len(splits); i++ {
			InterpolateRows(ref, part, splits[i], splits[i+1])
		}
		part.ExtendBorders()
		if !part.Equal(full) {
			t.Fatalf("split %v is not bit-exact with full interpolation", splits)
		}
	}
}

func TestSampleAddressing(t *testing.T) {
	ref := randomPlane(32, 32, 5)
	sf := NewSubFrame(32, 32)
	Interpolate(ref, sf)
	// Integer quarter-pel coordinates hit plane 0.
	if sf.Sample(4*7, 4*9) != ref.At(7, 9) {
		t.Fatal("Sample at integer position != reference")
	}
	// (4x+2, 4y) hits the horizontal half-pel plane.
	if sf.Sample(4*7+2, 4*9) != sf.Planes[2].At(7, 9) {
		t.Fatal("Sample at half-pel x wrong plane")
	}
	// Negative coordinates floor correctly into the padded border.
	if sf.Sample(-4, -8) != sf.Planes[0].At(-1, -2) {
		t.Fatal("negative quarter-pel coordinates do not floor")
	}
	if sf.Sample(-3, 0) != sf.Planes[1].At(-1, 0) {
		t.Fatal("negative fractional coordinate maps to wrong plane")
	}
}

func TestEqualRows(t *testing.T) {
	ref := randomPlane(32, 48, 6)
	a := NewSubFrame(32, 48)
	b := NewSubFrame(32, 48)
	Interpolate(ref, a)
	Interpolate(ref, b)
	if !a.EqualRows(b, 0, 3) || !a.Equal(b) {
		t.Fatal("identical interpolations must compare equal")
	}
	b.Planes[10].Set(5, 30, b.Planes[10].At(5, 30)+1) // row 30 is MB row 1
	if a.EqualRows(b, 1, 2) {
		t.Fatal("mutation in MB row 1 not detected")
	}
	if !a.EqualRows(b, 0, 1) || !a.EqualRows(b, 2, 3) {
		t.Fatal("unrelated rows reported as different")
	}
}

func TestInterpolateRowsPanicsOnBadRange(t *testing.T) {
	ref := randomPlane(32, 32, 7)
	sf := NewSubFrame(32, 32)
	for _, r := range [][2]int{{-1, 1}, {1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v did not panic", r)
				}
			}()
			InterpolateRows(ref, sf, r[0], r[1])
		}()
	}
}

func TestInterpolatePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	Interpolate(randomPlane(32, 32, 8), NewSubFrame(16, 16))
}

func TestInterpolateRowsMatchesReference(t *testing.T) {
	// The flat-scratch kernel must be bit-exact with the retained
	// accessor-per-sample oracle, including on partial row ranges.
	ref := randomPlane(80, 64, 90)
	fast := NewSubFrame(80, 64)
	slow := NewSubFrame(80, 64)
	InterpolateRows(ref, fast, 0, 4)
	InterpolateRowsRef(ref, slow, 0, 4)
	if !fast.Equal(slow) {
		t.Fatal("flat-scratch interpolation differs from reference")
	}
	fast2 := NewSubFrame(80, 64)
	slow2 := NewSubFrame(80, 64)
	InterpolateRows(ref, fast2, 1, 3)
	InterpolateRowsRef(ref, slow2, 1, 3)
	if !fast2.EqualRows(slow2, 1, 3) {
		t.Fatal("partial-range interpolation differs from reference")
	}
}
