package interp

import (
	"fmt"

	"feves/internal/h264"
)

// InterpolateRowsRef is the accessor-per-sample interpolation kernel
// retained as the bit-exactness oracle for the flat-scratch kernel and as
// the baseline the device calibration and the bench-regression speedup
// ratios are measured against.
func InterpolateRowsRef(ref *h264.Plane, sf *SubFrame, rowLo, rowHi int) {
	if ref.W != sf.W || ref.H != sf.H {
		panic(fmt.Sprintf("interp: ref %dx%d vs SF %dx%d", ref.W, ref.H, sf.W, sf.H))
	}
	yLo, yHi := rowLo*h264.MBSize, rowHi*h264.MBSize
	if yLo < 0 || yHi > ref.H || yLo >= yHi {
		panic(fmt.Sprintf("interp: bad row range [%d,%d)", rowLo, rowHi))
	}
	w := ref.W

	const halo = 3
	iLo, iHi := yLo-halo, yHi+halo
	rows := iHi - iLo
	bRaw := make([][]int32, rows)
	for i := range bRaw {
		y := iLo + i
		bRaw[i] = make([]int32, w+1)
		for x := -1; x < w; x++ {
			bRaw[i][x+1] = sixTap(
				int32(ref.At(x-2, y)), int32(ref.At(x-1, y)), int32(ref.At(x, y)),
				int32(ref.At(x+1, y)), int32(ref.At(x+2, y)), int32(ref.At(x+3, y)))
		}
	}
	bAt := func(x, y int) int32 { return bRaw[y-iLo][x+1] }

	hRows := yHi - (yLo - 1)
	hRaw := make([][]int32, hRows)
	for i := range hRaw {
		y := yLo - 1 + i
		hRaw[i] = make([]int32, w+1)
		for x := 0; x <= w; x++ {
			hRaw[i][x] = sixTap(
				int32(ref.At(x, y-2)), int32(ref.At(x, y-1)), int32(ref.At(x, y)),
				int32(ref.At(x, y+1)), int32(ref.At(x, y+2)), int32(ref.At(x, y+3)))
		}
	}
	hAt := func(x, y int) int32 { return hRaw[y-(yLo-1)][x] }

	jRaw := make([][]int32, hRows)
	for i := range jRaw {
		y := yLo - 1 + i
		jRaw[i] = make([]int32, w)
		for x := 0; x < w; x++ {
			jRaw[i][x] = sixTap(
				bAt(x, y-2), bAt(x, y-1), bAt(x, y),
				bAt(x, y+1), bAt(x, y+2), bAt(x, y+3))
		}
	}
	jAt := func(x, y int) int32 { return jRaw[y-(yLo-1)][x] }

	bPel := func(x, y int) int32 { return int32(clip((bAt(x, y) + 16) >> 5)) }
	hPel := func(x, y int) int32 { return int32(clip((hAt(x, y) + 16) >> 5)) }
	jPel := func(x, y int) int32 { return int32(clip((jAt(x, y) + 512) >> 10)) }

	for y := yLo; y < yHi; y++ {
		for x := 0; x < w; x++ {
			G := int32(ref.At(x, y))
			Gr := int32(ref.At(x+1, y))
			Gd := int32(ref.At(x, y+1))
			b := bPel(x, y)
			h := hPel(x, y)
			j := jPel(x, y)
			m := hPel(x+1, y)
			s := bPel(x, y+1)

			sf.Planes[0].Set(x, y, uint8(G))
			sf.Planes[1].Set(x, y, uint8((G+b+1)>>1))
			sf.Planes[2].Set(x, y, uint8(b))
			sf.Planes[3].Set(x, y, uint8((b+Gr+1)>>1))
			sf.Planes[4].Set(x, y, uint8((G+h+1)>>1))
			sf.Planes[5].Set(x, y, uint8((b+h+1)>>1))
			sf.Planes[6].Set(x, y, uint8((b+j+1)>>1))
			sf.Planes[7].Set(x, y, uint8((b+m+1)>>1))
			sf.Planes[8].Set(x, y, uint8(h))
			sf.Planes[9].Set(x, y, uint8((h+j+1)>>1))
			sf.Planes[10].Set(x, y, uint8(j))
			sf.Planes[11].Set(x, y, uint8((j+m+1)>>1))
			sf.Planes[12].Set(x, y, uint8((h+Gd+1)>>1))
			sf.Planes[13].Set(x, y, uint8((h+s+1)>>1))
			sf.Planes[14].Set(x, y, uint8((j+s+1)>>1))
			sf.Planes[15].Set(x, y, uint8((m+s+1)>>1))
		}
	}
}
