// Package interp implements the INT inter-loop module of the FEVES
// reproduction: half-pel interpolation of reference frames with the 6-tap
// H.264/AVC filter (1, −5, 20, 20, −5, 1)/32 and quarter-pel interpolation
// by bilinear averaging, producing the Sub-pixel interpolated Frame (SF)
// structure — 16 sub-position planes per reference frame, "as large as 16
// RFs" in the paper's words.
//
// The kernel works on flat row slices with stride arithmetic: the unrounded
// 6-tap intermediates are kept in pooled scratch buffers and every inner
// loop walks contiguous memory, so the compiler can keep the filter taps in
// registers and vectorize the straight-line quarter-pel averages.
//
// Interpolation is row-sliceable: InterpolateRows fills only the requested
// macroblock rows and is bit-exact regardless of how rows are distributed
// across devices, which is what makes the module safe to load-balance.
package interp

import (
	"fmt"
	"sync"

	"feves/internal/h264"
)

// SubFrame holds the 16 quarter-pel sub-position planes of one interpolated
// reference frame. Plane index is fy*4+fx for fractional offsets fx, fy in
// quarter-pel units; plane 0 is the integer-position plane (a copy of the
// reference frame's luma).
type SubFrame struct {
	W, H   int
	Planes [16]*h264.Plane
}

// NewSubFrame allocates the 16 sub-position planes for a w×h luma plane.
func NewSubFrame(w, h int) *SubFrame {
	sf := &SubFrame{W: w, H: h}
	for i := range sf.Planes {
		sf.Planes[i] = h264.NewPlane(w, h, h264.DefaultPad)
	}
	return sf
}

// Sample returns the luma sample at quarter-pel position (x4, y4), where
// integer position (x, y) corresponds to (4x, 4y). Positions inside the
// padded border are valid.
func (sf *SubFrame) Sample(x4, y4 int) uint8 {
	fx, fy := x4&3, y4&3
	return sf.Planes[fy*4+fx].At(x4>>2, y4>>2)
}

// Equal reports whether two sub-frames agree on all 16 picture areas.
func (sf *SubFrame) Equal(o *SubFrame) bool {
	if sf.W != o.W || sf.H != o.H {
		return false
	}
	for i := range sf.Planes {
		if !sf.Planes[i].Equal(o.Planes[i]) {
			return false
		}
	}
	return true
}

// EqualRows reports whether two sub-frames agree on macroblock rows
// [rowLo, rowHi) of all 16 planes.
func (sf *SubFrame) EqualRows(o *SubFrame, rowLo, rowHi int) bool {
	if sf.W != o.W || sf.H != o.H {
		return false
	}
	for p := range sf.Planes {
		for y := rowLo * h264.MBSize; y < rowHi*h264.MBSize; y++ {
			a, b := sf.Planes[p].Row(y), o.Planes[p].Row(y)
			for x := range a {
				if a[x] != b[x] {
					return false
				}
			}
		}
	}
	return true
}

// ExtendBorders replicates edges of all 16 planes. Call once after every
// picture row has been interpolated (the τ1 host-side assembly step).
func (sf *SubFrame) ExtendBorders() {
	for _, p := range sf.Planes {
		p.ExtendBorder()
	}
}

// sixTap applies the H.264 half-pel filter to six samples without rounding.
func sixTap(a, b, c, d, e, f int32) int32 {
	return a - 5*b + 20*c + 20*d - 5*e + f
}

func clip(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// scratch holds the unrounded 6-tap intermediates for one InterpolateRows
// call; pooled so the steady-state frame loop performs no allocations.
type scratch struct {
	b, h, j    []int32
	bp, hp, jp []uint8 // rounded half-pel rows, each value used by 2–4 sub-positions
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// Interpolate fills the whole sub-frame from the reference luma plane and
// extends the borders. Equivalent to InterpolateRows over all rows followed
// by ExtendBorders.
func Interpolate(ref *h264.Plane, sf *SubFrame) {
	InterpolateRows(ref, sf, 0, ref.H/h264.MBSize)
	sf.ExtendBorders()
}

// InterpolateRows interpolates macroblock rows [rowLo, rowHi) of all 16
// sub-position planes from the (border-extended) reference luma plane.
// The computation only reads ref, so concurrent calls on disjoint row
// ranges are safe and their union is bit-exact with a single full-frame
// interpolation.
func InterpolateRows(ref *h264.Plane, sf *SubFrame, rowLo, rowHi int) {
	if ref.W != sf.W || ref.H != sf.H {
		panic(fmt.Sprintf("interp: ref %dx%d vs SF %dx%d", ref.W, ref.H, sf.W, sf.H))
	}
	yLo, yHi := rowLo*h264.MBSize, rowHi*h264.MBSize
	if yLo < 0 || yHi > ref.H || yLo >= yHi {
		panic(fmt.Sprintf("interp: bad row range [%d,%d)", rowLo, rowHi))
	}
	w := ref.W
	pad := ref.Pad

	// Intermediate half-pel values are kept unrounded (int32) so that the
	// centre position j is derived from unrounded horizontal values exactly
	// as the standard specifies. We compute a halo of rows around the target
	// range because the vertical filter and the quarter-pel averages of the
	// last row reach below it.
	const halo = 3
	iLo, iHi := yLo-halo, yHi+halo
	bRows := iHi - iLo       // horizontal 6-tap rows
	hRows := yHi - (yLo - 1) // vertical 6-tap + centre rows
	bw := w + 1              // b covers x = -1..w-1, stored at x+1
	hw := w + 1              // h covers x = 0..w

	s := scratchPool.Get().(*scratch)
	s.b = grow(s.b, bRows*bw)
	s.h = grow(s.h, hRows*hw)
	s.j = grow(s.j, hRows*w)

	// b[y][x+1]: horizontal 6-tap at (x+1/2, y), unrounded.
	for i := 0; i < bRows; i++ {
		rp := ref.RowPadded(iLo + i)
		bRow := s.b[i*bw : (i+1)*bw]
		for x := 0; x < bw; x++ {
			o := pad + x - 1 // sample x-1 of the covered range
			bRow[x] = sixTap(
				int32(rp[o-2]), int32(rp[o-1]), int32(rp[o]),
				int32(rp[o+1]), int32(rp[o+2]), int32(rp[o+3]))
		}
	}

	// h[y][x]: vertical 6-tap at (x, y+1/2), unrounded, for y in
	// [yLo-1, yHi) and x in [0, w] (x = w needed by k and r).
	for i := 0; i < hRows; i++ {
		y := yLo - 1 + i
		r0, r1, r2 := ref.RowPadded(y-2), ref.RowPadded(y-1), ref.RowPadded(y)
		r3, r4, r5 := ref.RowPadded(y+1), ref.RowPadded(y+2), ref.RowPadded(y+3)
		hRow := s.h[i*hw : (i+1)*hw]
		for x := 0; x < hw; x++ {
			o := pad + x
			hRow[x] = sixTap(
				int32(r0[o]), int32(r1[o]), int32(r2[o]),
				int32(r3[o]), int32(r4[o]), int32(r5[o]))
		}
	}

	// j[y][x]: centre half-pel at (x+1/2, y+1/2) = vertical 6-tap over
	// unrounded horizontal values, for y in [yLo-1, yHi).
	for i := 0; i < hRows; i++ {
		iy := (yLo - 1 + i) - iLo // b-row index of this output row
		b0 := s.b[(iy-2)*bw : (iy-1)*bw]
		b1 := s.b[(iy-1)*bw : iy*bw]
		b2 := s.b[iy*bw : (iy+1)*bw]
		b3 := s.b[(iy+1)*bw : (iy+2)*bw]
		b4 := s.b[(iy+2)*bw : (iy+3)*bw]
		b5 := s.b[(iy+3)*bw : (iy+4)*bw]
		jRow := s.j[i*w : (i+1)*w]
		for x := 0; x < w; x++ {
			jRow[x] = sixTap(b0[x+1], b1[x+1], b2[x+1], b3[x+1], b4[x+1], b5[x+1])
		}
	}

	// Rounded half-pel rows: each b value is reused as next row's s, each h
	// value as the previous column's m, so rounding once here halves the
	// clip work and leaves the final loop as straight byte averaging.
	n := yHi - yLo
	s.bp = growU8(s.bp, (n+1)*w)
	s.hp = growU8(s.hp, n*hw)
	s.jp = growU8(s.jp, n*w)
	for i := 0; i <= n; i++ {
		bRow := s.b[(yLo+i-iLo)*bw:]
		bpRow := s.bp[i*w : (i+1)*w]
		for x := 0; x < w; x++ {
			bpRow[x] = clip((bRow[x+1] + 16) >> 5)
		}
	}
	for i := 0; i < n; i++ {
		hRow := s.h[(i+1)*hw:] // h rows start at yLo-1
		hpRow := s.hp[i*hw : (i+1)*hw]
		for x := 0; x < hw; x++ {
			hpRow[x] = clip((hRow[x] + 16) >> 5)
		}
		jRow := s.j[(i+1)*w:]
		jpRow := s.jp[i*w : (i+1)*w]
		for x := 0; x < w; x++ {
			jpRow[x] = clip((jRow[x] + 512) >> 10)
		}
	}

	var out [16][]uint8
	for y := yLo; y < yHi; y++ {
		for p := range out {
			out[p] = sf.Planes[p].Row(y)
		}
		i := y - yLo
		rp := ref.RowPadded(y)[pad:]
		rpd := ref.RowPadded(y + 1)[pad:]
		bpRow := s.bp[i*w : (i+1)*w]
		bpDown := s.bp[(i+1)*w : (i+2)*w]
		hpRow := s.hp[i*hw : (i+1)*hw]
		jpRow := s.jp[i*w : (i+1)*w]
		for x := 0; x < w; x++ {
			G := uint32(rp[x])
			Gr := uint32(rp[x+1])   // integer sample to the right
			Gd := uint32(rpd[x])    // integer sample below
			b := uint32(bpRow[x])   // (1/2, 0)
			h := uint32(hpRow[x])   // (0, 1/2)
			j := uint32(jpRow[x])   // (1/2, 1/2)
			m := uint32(hpRow[x+1]) // h one integer column right
			sv := uint32(bpDown[x]) // b one integer row down

			out[0][x] = uint8(G)                  // (0,0)
			out[1][x] = uint8((G + b + 1) >> 1)   // a (1,0)
			out[2][x] = uint8(b)                  // b (2,0)
			out[3][x] = uint8((b + Gr + 1) >> 1)  // c (3,0)
			out[4][x] = uint8((G + h + 1) >> 1)   // d (0,1)
			out[5][x] = uint8((b + h + 1) >> 1)   // e (1,1)
			out[6][x] = uint8((b + j + 1) >> 1)   // f (2,1)
			out[7][x] = uint8((b + m + 1) >> 1)   // g (3,1)
			out[8][x] = uint8(h)                  // h (0,2)
			out[9][x] = uint8((h + j + 1) >> 1)   // i (1,2)
			out[10][x] = uint8(j)                 // j (2,2)
			out[11][x] = uint8((j + m + 1) >> 1)  // k (3,2)
			out[12][x] = uint8((h + Gd + 1) >> 1) // n (0,3)
			out[13][x] = uint8((h + sv + 1) >> 1) // p (1,3)
			out[14][x] = uint8((j + sv + 1) >> 1) // q (2,3)
			out[15][x] = uint8((m + sv + 1) >> 1) // r (3,3)
		}
	}

	scratchPool.Put(s)
}
