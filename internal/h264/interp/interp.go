// Package interp implements the INT inter-loop module of the FEVES
// reproduction: half-pel interpolation of reference frames with the 6-tap
// H.264/AVC filter (1, −5, 20, 20, −5, 1)/32 and quarter-pel interpolation
// by bilinear averaging, producing the Sub-pixel interpolated Frame (SF)
// structure — 16 sub-position planes per reference frame, "as large as 16
// RFs" in the paper's words.
//
// Interpolation is row-sliceable: InterpolateRows fills only the requested
// macroblock rows and is bit-exact regardless of how rows are distributed
// across devices, which is what makes the module safe to load-balance.
package interp

import (
	"fmt"

	"feves/internal/h264"
)

// SubFrame holds the 16 quarter-pel sub-position planes of one interpolated
// reference frame. Plane index is fy*4+fx for fractional offsets fx, fy in
// quarter-pel units; plane 0 is the integer-position plane (a copy of the
// reference frame's luma).
type SubFrame struct {
	W, H   int
	Planes [16]*h264.Plane
}

// NewSubFrame allocates the 16 sub-position planes for a w×h luma plane.
func NewSubFrame(w, h int) *SubFrame {
	sf := &SubFrame{W: w, H: h}
	for i := range sf.Planes {
		sf.Planes[i] = h264.NewPlane(w, h, h264.DefaultPad)
	}
	return sf
}

// Sample returns the luma sample at quarter-pel position (x4, y4), where
// integer position (x, y) corresponds to (4x, 4y). Positions inside the
// padded border are valid.
func (sf *SubFrame) Sample(x4, y4 int) uint8 {
	fx, fy := x4&3, y4&3
	return sf.Planes[fy*4+fx].At(x4>>2, y4>>2)
}

// Equal reports whether two sub-frames agree on all 16 picture areas.
func (sf *SubFrame) Equal(o *SubFrame) bool {
	if sf.W != o.W || sf.H != o.H {
		return false
	}
	for i := range sf.Planes {
		if !sf.Planes[i].Equal(o.Planes[i]) {
			return false
		}
	}
	return true
}

// EqualRows reports whether two sub-frames agree on macroblock rows
// [rowLo, rowHi) of all 16 planes.
func (sf *SubFrame) EqualRows(o *SubFrame, rowLo, rowHi int) bool {
	if sf.W != o.W || sf.H != o.H {
		return false
	}
	for p := range sf.Planes {
		for y := rowLo * h264.MBSize; y < rowHi*h264.MBSize; y++ {
			a, b := sf.Planes[p].Row(y), o.Planes[p].Row(y)
			for x := range a {
				if a[x] != b[x] {
					return false
				}
			}
		}
	}
	return true
}

// ExtendBorders replicates edges of all 16 planes. Call once after every
// picture row has been interpolated (the τ1 host-side assembly step).
func (sf *SubFrame) ExtendBorders() {
	for _, p := range sf.Planes {
		p.ExtendBorder()
	}
}

// sixTap applies the H.264 half-pel filter to six samples without rounding.
func sixTap(a, b, c, d, e, f int32) int32 {
	return a - 5*b + 20*c + 20*d - 5*e + f
}

func clip(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Interpolate fills the whole sub-frame from the reference luma plane and
// extends the borders. Equivalent to InterpolateRows over all rows followed
// by ExtendBorders.
func Interpolate(ref *h264.Plane, sf *SubFrame) {
	InterpolateRows(ref, sf, 0, ref.H/h264.MBSize)
	sf.ExtendBorders()
}

// InterpolateRows interpolates macroblock rows [rowLo, rowHi) of all 16
// sub-position planes from the (border-extended) reference luma plane.
// The computation only reads ref, so concurrent calls on disjoint row
// ranges are safe and their union is bit-exact with a single full-frame
// interpolation.
func InterpolateRows(ref *h264.Plane, sf *SubFrame, rowLo, rowHi int) {
	if ref.W != sf.W || ref.H != sf.H {
		panic(fmt.Sprintf("interp: ref %dx%d vs SF %dx%d", ref.W, ref.H, sf.W, sf.H))
	}
	yLo, yHi := rowLo*h264.MBSize, rowHi*h264.MBSize
	if yLo < 0 || yHi > ref.H || yLo >= yHi {
		panic(fmt.Sprintf("interp: bad row range [%d,%d)", rowLo, rowHi))
	}
	w := ref.W

	// Intermediate half-pel values are kept unrounded (int32) so that the
	// centre position j is derived from unrounded horizontal values exactly
	// as the standard specifies. We compute a halo of rows around the target
	// range because the vertical filter and the quarter-pel averages of the
	// last row reach below it.
	const halo = 3
	iLo, iHi := yLo-halo, yHi+halo
	rows := iHi - iLo
	// bRaw[y][x]: horizontal 6-tap at (x+1/2, y), unrounded.
	bRaw := make([][]int32, rows)
	for i := range bRaw {
		y := iLo + i
		bRaw[i] = make([]int32, w+1) // includes x = -1..w-1 shifted by 1? see idx below
		for x := -1; x < w; x++ {
			bRaw[i][x+1] = sixTap(
				int32(ref.At(x-2, y)), int32(ref.At(x-1, y)), int32(ref.At(x, y)),
				int32(ref.At(x+1, y)), int32(ref.At(x+2, y)), int32(ref.At(x+3, y)))
		}
	}
	bAt := func(x, y int) int32 { return bRaw[y-iLo][x+1] }

	// hRaw[y][x]: vertical 6-tap at (x, y+1/2), unrounded, for y in
	// [yLo-1, yHi) and x in [0, w] (x = w needed by k and r).
	hRows := yHi - (yLo - 1)
	hRaw := make([][]int32, hRows)
	for i := range hRaw {
		y := yLo - 1 + i
		hRaw[i] = make([]int32, w+1)
		for x := 0; x <= w; x++ {
			hRaw[i][x] = sixTap(
				int32(ref.At(x, y-2)), int32(ref.At(x, y-1)), int32(ref.At(x, y)),
				int32(ref.At(x, y+1)), int32(ref.At(x, y+2)), int32(ref.At(x, y+3)))
		}
	}
	hAt := func(x, y int) int32 { return hRaw[y-(yLo-1)][x] }

	// jRaw[y][x]: centre half-pel at (x+1/2, y+1/2) = vertical 6-tap over
	// unrounded horizontal values, for y in [yLo-1, yHi).
	jRaw := make([][]int32, hRows)
	for i := range jRaw {
		y := yLo - 1 + i
		jRaw[i] = make([]int32, w)
		for x := 0; x < w; x++ {
			jRaw[i][x] = sixTap(
				bAt(x, y-2), bAt(x, y-1), bAt(x, y),
				bAt(x, y+1), bAt(x, y+2), bAt(x, y+3))
		}
	}
	jAt := func(x, y int) int32 { return jRaw[y-(yLo-1)][x] }

	// Rounded half-pel samples.
	bPel := func(x, y int) int32 { return int32(clip((bAt(x, y) + 16) >> 5)) }
	hPel := func(x, y int) int32 { return int32(clip((hAt(x, y) + 16) >> 5)) }
	jPel := func(x, y int) int32 { return int32(clip((jAt(x, y) + 512) >> 10)) }

	for y := yLo; y < yHi; y++ {
		for x := 0; x < w; x++ {
			G := int32(ref.At(x, y))
			Gr := int32(ref.At(x+1, y)) // integer sample to the right
			Gd := int32(ref.At(x, y+1)) // integer sample below
			b := bPel(x, y)             // (1/2, 0)
			h := hPel(x, y)             // (0, 1/2)
			j := jPel(x, y)             // (1/2, 1/2)
			m := hPel(x+1, y)           // h one integer column right
			s := bPel(x, y+1)           // b one integer row down

			sf.Planes[0].Set(x, y, uint8(G))            // (0,0)
			sf.Planes[1].Set(x, y, uint8((G+b+1)>>1))   // a (1,0)
			sf.Planes[2].Set(x, y, uint8(b))            // b (2,0)
			sf.Planes[3].Set(x, y, uint8((b+Gr+1)>>1))  // c (3,0)
			sf.Planes[4].Set(x, y, uint8((G+h+1)>>1))   // d (0,1)
			sf.Planes[5].Set(x, y, uint8((b+h+1)>>1))   // e (1,1)
			sf.Planes[6].Set(x, y, uint8((b+j+1)>>1))   // f (2,1)
			sf.Planes[7].Set(x, y, uint8((b+m+1)>>1))   // g (3,1)
			sf.Planes[8].Set(x, y, uint8(h))            // h (0,2)
			sf.Planes[9].Set(x, y, uint8((h+j+1)>>1))   // i (1,2)
			sf.Planes[10].Set(x, y, uint8(j))           // j (2,2)
			sf.Planes[11].Set(x, y, uint8((j+m+1)>>1))  // k (3,2)
			sf.Planes[12].Set(x, y, uint8((h+Gd+1)>>1)) // n (0,3)
			sf.Planes[13].Set(x, y, uint8((h+s+1)>>1))  // p (1,3)
			sf.Planes[14].Set(x, y, uint8((j+s+1)>>1))  // q (2,3)
			sf.Planes[15].Set(x, y, uint8((m+s+1)>>1))  // r (3,3)
		}
	}
}
