package interp

import (
	"testing"

	"feves/internal/h264"
)

// BenchmarkInterpolateRows times 6-tap half-pel plus quarter-pel SF
// construction for a QCIF reference plane and reports the per-macroblock
// cost tracked by the device calibration and the bench-regression gate.
func BenchmarkInterpolateRows(b *testing.B) {
	ref := randomPlane(176, 144, 40)
	sf := NewSubFrame(ref.W, ref.H)
	mbs := (ref.W / h264.MBSize) * (ref.H / h264.MBSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InterpolateRows(ref, sf, 0, ref.H/h264.MBSize)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*mbs), "ns/MB")
}
