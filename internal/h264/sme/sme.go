// Package sme implements the Sub-pixel Motion Estimation inter-loop module
// of the FEVES reproduction. Starting from the integer-pel vectors found by
// full-search ME, each of the 41 partitions of every macroblock is refined
// in two steps on the interpolated SF structure: a half-pel step (the eight
// half-pel neighbours of the integer position) followed by a quarter-pel
// step (the eight quarter-pel neighbours of the best half-pel position) —
// the classical refinement used by the JM reference encoder.
//
// The kernel extends the 4×4 SAD-reuse decomposition of the integer search
// into the refinement: every partition is a union of 4×4 cells of the
// macroblock grid (all 41 partition offsets and sizes are multiples of 4),
// so per (macroblock, reference) the cell SADs are memoized per candidate
// vector in a generation-stamped table and shared across all partitions
// probing the same quarter-pel displacement. Cell SADs are computed four
// samples at a time with the SWAR helpers of package h264.
//
// RefineRows is row-sliceable: a device assigned macroblock rows [lo, hi)
// needs the ME vectors for those rows (the paper's MV→SME transfers) and
// read access to the SF (the SF(RF)→SME transfers), and produces vectors
// bit-exact with a single-device refinement.
package sme

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"feves/internal/h264"
	"feves/internal/h264/interp"
)

// cellTabBits sizes the open-addressed memo table. At most 41 partitions ×
// 17 candidates ≈ 700 distinct vectors are probed per (macroblock,
// reference), so 2048 slots keep the load factor comfortable.
const (
	cellTabBits = 11
	cellTabSize = 1 << cellTabBits
)

// cellEntry memoizes the sixteen 4×4 cell SADs of the macroblock for one
// candidate quarter-pel vector. mask records which cells have been computed
// so far; gen stamps the (macroblock, reference) the entry belongs to, so
// advancing the generation invalidates the whole table without clearing it.
type cellEntry struct {
	key  uint32
	gen  uint32
	mask uint16
	cell [16]int32
}

type scratch struct {
	tab [cellTabSize]cellEntry
	gen uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) nextGen() {
	s.gen++
	if s.gen == 0 { // wrapped: stamp collisions possible, clear and restart
		s.tab = [cellTabSize]cellEntry{}
		s.gen = 1
	}
}

// lookup returns the memo entry for mv, claiming a stale slot if the vector
// has not been seen this generation.
func (s *scratch) lookup(mv h264.MV) *cellEntry {
	key := uint32(uint16(mv.X))<<16 | uint32(uint16(mv.Y))
	i := (key * 2654435761) >> (32 - cellTabBits)
	for {
		e := &s.tab[i]
		if e.gen != s.gen {
			e.gen = s.gen
			e.key = key
			e.mask = 0
			return e
		}
		if e.key == key {
			return e
		}
		i = (i + 1) & (cellTabSize - 1)
	}
}

// RefineRows refines macroblock rows [rowLo, rowHi). meField holds the
// integer-pel FSBM output; out receives quarter-pel vectors and SAD costs.
// sfs[rf] is the interpolated sub-frame of reference rf; entries may be nil
// for DPB ramp-up references, whose costs are passed through as unusable.
func RefineRows(cf *h264.Frame, sfs []*interp.SubFrame, meField, out *h264.MVField, rowLo, rowHi int) {
	checkRefineArgs(cf, sfs, meField, out, rowLo, rowHi)
	s := scratchPool.Get().(*scratch)
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < meField.NumRF; rf++ {
				refineMB(cf, sfs[rf], meField, out, mbx, mby, rf, s)
			}
		}
	}
	scratchPool.Put(s)
}

func checkRefineArgs(cf *h264.Frame, sfs []*interp.SubFrame, meField, out *h264.MVField, rowLo, rowHi int) {
	if meField.MBW != out.MBW || meField.MBH != out.MBH || meField.NumRF != out.NumRF {
		panic("sme: ME and output field geometry mismatch")
	}
	if meField.MBW != cf.MBWidth() || meField.MBH != cf.MBHeight() {
		panic("sme: field does not match frame geometry")
	}
	if rowLo < 0 || rowHi > cf.MBHeight() || rowLo >= rowHi {
		panic(fmt.Sprintf("sme: bad row range [%d,%d)", rowLo, rowHi))
	}
	if len(sfs) < meField.NumRF {
		panic(fmt.Sprintf("sme: %d sub-frames for %d reference slots", len(sfs), meField.NumRF))
	}
}

func refineMB(cf *h264.Frame, sf *interp.SubFrame, meField, out *h264.MVField, mbx, mby, rf int, s *scratch) {
	s.nextGen() // cell SADs are only shareable within one (MB, ref)
	mbX0, mbY0 := mbx*h264.MBSize, mby*h264.MBSize
	for _, mode := range h264.AllModes() {
		w, h := mode.Size()
		for k := 0; k < mode.Count(); k++ {
			part := mode.Base() + k
			imv, icost := meField.Get(mbx, mby, part, rf)
			if icost == math.MaxInt32 || sf == nil {
				out.Set(mbx, mby, part, rf, imv.Scale4(), math.MaxInt32)
				continue
			}
			ox, oy := mode.Offset(k)

			center := imv.Scale4()
			best := center
			bestCost := s.subSAD(cf.Y, sf, mbX0, mbY0, ox, oy, w, h, center)
			best, bestCost = refineStepFrom(cf.Y, sf, s, mbX0, mbY0, ox, oy, w, h, best, bestCost, 2)
			best, bestCost = refineStepFrom(cf.Y, sf, s, mbX0, mbY0, ox, oy, w, h, best, bestCost, 1)
			out.Set(mbx, mby, part, rf, best, bestCost)
		}
	}
}

// refineStepFrom evaluates the eight neighbours at the given quarter-pel
// step around best, keeping the incumbent on ties (deterministic scan
// order).
func refineStepFrom(cur *h264.Plane, sf *interp.SubFrame, s *scratch, mbX0, mbY0, ox, oy, w, h int, best h264.MV, bestCost int32, step int16) (h264.MV, int32) {
	center := best
	for dy := int16(-1); dy <= 1; dy++ {
		for dx := int16(-1); dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := h264.MV{X: center.X + dx*step, Y: center.Y + dy*step}
			c := s.subSAD(cur, sf, mbX0, mbY0, ox, oy, w, h, cand)
			if c < bestCost {
				bestCost = c
				best = cand
			}
		}
	}
	return best, bestCost
}

// subSAD returns the SAD of the partition at offset (ox, oy) size w×h of
// the macroblock at (mbX0, mbY0) against the sub-pel reference displaced by
// mv, as the sum of the partition's 4×4 cell SADs, memoizing cells per
// candidate vector.
func (s *scratch) subSAD(cur *h264.Plane, sf *interp.SubFrame, mbX0, mbY0, ox, oy, w, h int, mv h264.MV) int32 {
	plane := sf.Planes[(int(mv.Y)&3)*4+(int(mv.X)&3)]
	px, py := int(mv.X)>>2, int(mv.Y)>>2 // arithmetic shift floors negatives
	e := s.lookup(mv)
	ci0, cj0 := ox>>2, oy>>2
	var sum int32
	for cj := cj0; cj < cj0+(h>>2); cj++ {
		for ci := ci0; ci < ci0+(w>>2); ci++ {
			idx := cj*4 + ci
			bit := uint16(1) << uint(idx)
			if e.mask&bit == 0 {
				e.cell[idx] = cellSAD(cur, plane, mbX0+ci*4, mbY0+cj*4, px, py)
				e.mask |= bit
			}
			sum += e.cell[idx]
		}
	}
	return sum
}

// cellSAD computes one 4×4 cell SAD between cur at (cx, cy) and the sub-pel
// plane displaced by the integer part (px, py).
func cellSAD(cur, ref *h264.Plane, cx, cy, px, py int) int32 {
	curRaw, refRaw := cur.Raw(), ref.Raw()
	co, ro := cur.Idx(cx, cy), ref.Idx(cx+px, cy+py)
	cs, rs := cur.Stride, ref.Stride
	var sum int32
	for j := 0; j < 4; j++ {
		c := binary.LittleEndian.Uint32(curRaw[co:])
		r := binary.LittleEndian.Uint32(refRaw[ro:])
		sum += h264.SAD4(c, r)
		co += cs
		ro += rs
	}
	return sum
}

// SubSAD computes the SAD between the w×h current-frame block at (x, y) and
// the sub-pel reference block displaced by the quarter-pel vector mv, four
// samples per step (partition widths are multiples of 4).
func SubSAD(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, mv h264.MV) int32 {
	fx, fy := int(mv.X)&3, int(mv.Y)&3
	px, py := int(mv.X)>>2, int(mv.Y)>>2
	plane := sf.Planes[fy*4+fx]
	curRaw, refRaw := cur.Raw(), plane.Raw()
	var sum int32
	for j := 0; j < h; j++ {
		co := cur.Idx(x, y+j)
		ro := plane.Idx(x+px, y+j+py)
		for i := 0; i < w; i += 4 {
			c := binary.LittleEndian.Uint32(curRaw[co+i:])
			r := binary.LittleEndian.Uint32(refRaw[ro+i:])
			sum += h264.SAD4(c, r)
		}
	}
	return sum
}
