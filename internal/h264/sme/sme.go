// Package sme implements the Sub-pixel Motion Estimation inter-loop module
// of the FEVES reproduction. Starting from the integer-pel vectors found by
// full-search ME, each of the 41 partitions of every macroblock is refined
// in two steps on the interpolated SF structure: a half-pel step (the eight
// half-pel neighbours of the integer position) followed by a quarter-pel
// step (the eight quarter-pel neighbours of the best half-pel position) —
// the classical refinement used by the JM reference encoder.
//
// RefineRows is row-sliceable: a device assigned macroblock rows [lo, hi)
// needs the ME vectors for those rows (the paper's MV→SME transfers) and
// read access to the SF (the SF(RF)→SME transfers), and produces vectors
// bit-exact with a single-device refinement.
package sme

import (
	"fmt"
	"math"

	"feves/internal/h264"
	"feves/internal/h264/interp"
)

// RefineRows refines macroblock rows [rowLo, rowHi). meField holds the
// integer-pel FSBM output; out receives quarter-pel vectors and SAD costs.
// sfs[rf] is the interpolated sub-frame of reference rf; entries may be nil
// for DPB ramp-up references, whose costs are passed through as unusable.
func RefineRows(cf *h264.Frame, sfs []*interp.SubFrame, meField, out *h264.MVField, rowLo, rowHi int) {
	if meField.MBW != out.MBW || meField.MBH != out.MBH || meField.NumRF != out.NumRF {
		panic("sme: ME and output field geometry mismatch")
	}
	if meField.MBW != cf.MBWidth() || meField.MBH != cf.MBHeight() {
		panic("sme: field does not match frame geometry")
	}
	if rowLo < 0 || rowHi > cf.MBHeight() || rowLo >= rowHi {
		panic(fmt.Sprintf("sme: bad row range [%d,%d)", rowLo, rowHi))
	}
	if len(sfs) < meField.NumRF {
		panic(fmt.Sprintf("sme: %d sub-frames for %d reference slots", len(sfs), meField.NumRF))
	}
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < meField.NumRF; rf++ {
				refineMB(cf, sfs[rf], meField, out, mbx, mby, rf)
			}
		}
	}
}

func refineMB(cf *h264.Frame, sf *interp.SubFrame, meField, out *h264.MVField, mbx, mby, rf int) {
	for _, mode := range h264.AllModes() {
		w, h := mode.Size()
		for k := 0; k < mode.Count(); k++ {
			part := mode.Base() + k
			imv, icost := meField.Get(mbx, mby, part, rf)
			if icost == math.MaxInt32 || sf == nil {
				out.Set(mbx, mby, part, rf, imv.Scale4(), math.MaxInt32)
				continue
			}
			ox, oy := mode.Offset(k)
			x, y := mbx*h264.MBSize+ox, mby*h264.MBSize+oy

			center := imv.Scale4()
			best, bestCost := refineStep(cf.Y, sf, x, y, w, h, center, 2)
			best, bestCost = refineStepFrom(cf.Y, sf, x, y, w, h, best, bestCost, 1)
			out.Set(mbx, mby, part, rf, best, bestCost)
		}
	}
}

// refineStep evaluates the 3×3 grid with the given quarter-pel step around
// center (center included) and returns the best vector and cost.
func refineStep(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, center h264.MV, step int16) (h264.MV, int32) {
	best := center
	bestCost := SubSAD(cur, sf, x, y, w, h, center)
	return refineStepFrom(cur, sf, x, y, w, h, best, bestCost, step)
}

// refineStepFrom evaluates the eight neighbours at the given step around
// best, keeping the incumbent on ties (deterministic scan order).
func refineStepFrom(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, best h264.MV, bestCost int32, step int16) (h264.MV, int32) {
	center := best
	for dy := int16(-1); dy <= 1; dy++ {
		for dx := int16(-1); dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := h264.MV{X: center.X + dx*step, Y: center.Y + dy*step}
			c := SubSAD(cur, sf, x, y, w, h, cand)
			if c < bestCost {
				bestCost = c
				best = cand
			}
		}
	}
	return best, bestCost
}

// SubSAD computes the SAD between the w×h current-frame block at (x, y) and
// the sub-pel reference block displaced by the quarter-pel vector mv.
func SubSAD(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, mv h264.MV) int32 {
	fx, fy := int(mv.X)&3, int(mv.Y)&3
	px, py := int(mv.X)>>2, int(mv.Y)>>2 // arithmetic shift floors negatives
	plane := sf.Planes[fy*4+fx]
	var sum int32
	for j := 0; j < h; j++ {
		cRow := cur.RowPadded(y + j)[cur.Pad+x:]
		for i := 0; i < w; i++ {
			a := cRow[i]
			b := plane.At(x+i+px, y+j+py)
			if a > b {
				sum += int32(a - b)
			} else {
				sum += int32(b - a)
			}
		}
	}
	return sum
}
