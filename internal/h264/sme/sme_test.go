package sme

import (
	"math"
	"math/rand"
	"testing"

	"feves/internal/h264"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
)

func randomFrame(w, h int, seed int64) *h264.Frame {
	f := h264.NewFrame(w, h)
	rng := rand.New(rand.NewSource(seed))
	data := make([]uint8, w*h*3/2)
	rng.Read(data)
	if err := f.LoadYUV(data); err != nil {
		panic(err)
	}
	return f
}

// smoothFrame builds a low-frequency luma so sub-pel refinement has real
// gradients to exploit.
func smoothFrame(w, h int, seed int64) *h264.Frame {
	f := h264.NewFrame(w, h)
	rng := rand.New(rand.NewSource(seed))
	// Pure-horizontal sinusoid: SAD is independent of vertical displacement,
	// so the exact sub-pel match is reachable from any integer ME optimum.
	a, c := 0.2+rng.Float64()*0.1, rng.Float64()*6
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 90*mathSin(a*float64(x)+c)
			f.Y.Set(x, y, uint8(v))
		}
	}
	f.ExtendBorders()
	return f
}

func mathSin(x float64) float64 {
	// small wrapper so the import list stays minimal in this test file
	return math.Sin(x)
}

func setup(cur, ref *h264.Frame, searchRange int) (*h264.MVField, *h264.MVField, []*interp.SubFrame) {
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	meF := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	me.SearchRows(cur, dpb, me.Config{SearchRange: searchRange}, meF, 0, cur.MBHeight())
	sf := interp.NewSubFrame(ref.W, ref.H)
	interp.Interpolate(ref.Y, sf)
	out := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	return meF, out, []*interp.SubFrame{sf}
}

func TestRefinementNeverWorseThanInteger(t *testing.T) {
	cur := randomFrame(48, 48, 1)
	ref := randomFrame(48, 48, 2)
	meF, out, sfs := setup(cur, ref, 4)
	RefineRows(cur, sfs, meF, out, 0, cur.MBHeight())
	for mby := 0; mby < cur.MBHeight(); mby++ {
		for mbx := 0; mbx < cur.MBWidth(); mbx++ {
			for part := 0; part < h264.TotalPartitions; part++ {
				_, ic := meF.Get(mbx, mby, part, 0)
				_, sc := out.Get(mbx, mby, part, 0)
				if sc > ic {
					t.Fatalf("MB(%d,%d) part %d: refined %d worse than integer %d",
						mbx, mby, part, sc, ic)
				}
			}
		}
	}
}

func TestRefinedVectorWithinQuarterWindow(t *testing.T) {
	cur := randomFrame(48, 48, 3)
	ref := randomFrame(48, 48, 4)
	meF, out, sfs := setup(cur, ref, 4)
	RefineRows(cur, sfs, meF, out, 0, cur.MBHeight())
	for mby := 0; mby < cur.MBHeight(); mby++ {
		for mbx := 0; mbx < cur.MBWidth(); mbx++ {
			for part := 0; part < h264.TotalPartitions; part++ {
				imv, _ := meF.Get(mbx, mby, part, 0)
				smv, _ := out.Get(mbx, mby, part, 0)
				q := imv.Scale4()
				dx, dy := int(smv.X-q.X), int(smv.Y-q.Y)
				if dx < -3 || dx > 3 || dy < -3 || dy > 3 {
					t.Fatalf("refinement moved %d,%d quarter-pels (max 3)", dx, dy)
				}
			}
		}
	}
}

func TestSubPelFindsHalfPelShift(t *testing.T) {
	// Build the current frame by sampling the reference's own half-pel
	// plane: refinement should then prefer a fractional vector and reach a
	// much lower cost than integer ME alone.
	ref := smoothFrame(64, 48, 5)
	sf := interp.NewSubFrame(ref.W, ref.H)
	interp.Interpolate(ref.Y, sf)
	cur := h264.NewFrame(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			cur.Y.Set(x, y, sf.Planes[2].At(x, y)) // half-pel-x shifted content
		}
	}
	cur.ExtendBorders()

	meF, out, sfs := setup(cur, ref, 4)
	RefineRows(cur, sfs, meF, out, 0, cur.MBHeight())

	mbx, mby := 1, 1
	smv, sc := out.Get(mbx, mby, 0, 0)
	_, ic := meF.Get(mbx, mby, 0, 0)
	if sc >= ic {
		t.Fatalf("sub-pel cost %d did not improve on integer cost %d", sc, ic)
	}
	if smv.X&3 == 0 && smv.Y&3 == 0 {
		t.Fatalf("expected fractional vector, got %v", smv)
	}
	if sc != 0 {
		t.Fatalf("half-pel-shifted content should match exactly, SAD=%d", sc)
	}
}

func TestRowSlicedRefinementIsBitExact(t *testing.T) {
	cur := randomFrame(48, 64, 6)
	ref := randomFrame(48, 64, 7)
	meF, full, sfs := setup(cur, ref, 4)
	RefineRows(cur, sfs, meF, full, 0, 4)

	part := h264.NewMVField(cur.MBWidth(), cur.MBHeight(), 1)
	RefineRows(cur, sfs, meF, part, 3, 4)
	RefineRows(cur, sfs, meF, part, 0, 2)
	RefineRows(cur, sfs, meF, part, 2, 3)
	if !full.Equal(part) {
		t.Fatal("row-sliced SME is not bit-exact with full refinement")
	}
}

func TestUnusableRefsPassThrough(t *testing.T) {
	cur := randomFrame(32, 32, 8)
	ref := randomFrame(32, 32, 9)
	dpb := h264.NewDPB(2)
	dpb.Push(ref) // only 1 of 2 refs present
	meF := h264.NewMVField(2, 2, 2)
	me.SearchRows(cur, dpb, me.Config{SearchRange: 2}, meF, 0, 2)
	sf := interp.NewSubFrame(32, 32)
	interp.Interpolate(ref.Y, sf)
	out := h264.NewMVField(2, 2, 2)
	RefineRows(cur, []*interp.SubFrame{sf, nil}, meF, out, 0, 2)
	if _, c := out.Get(0, 0, 0, 1); c != math.MaxInt32 {
		t.Fatalf("missing ref should stay unusable, cost %d", c)
	}
	if _, c := out.Get(0, 0, 0, 0); c == math.MaxInt32 {
		t.Fatal("present ref should be refined")
	}
}

func TestSubSADIntegerPositionsMatchPlainSAD(t *testing.T) {
	cur := randomFrame(32, 32, 10)
	ref := randomFrame(32, 32, 11)
	sf := interp.NewSubFrame(32, 32)
	interp.Interpolate(ref.Y, sf)
	for _, mv := range []h264.MV{{X: 0, Y: 0}, {X: 4, Y: 8}, {X: -8, Y: 4}, {X: -12, Y: -4}} {
		got := SubSAD(cur.Y, sf, 16, 16, 16, 16, mv)
		want := me.SAD(cur.Y, ref.Y, 16, 16, 16+int(mv.X)/4, 16+int(mv.Y)/4, 16, 16)
		if got != want {
			t.Fatalf("mv %v: SubSAD %d != SAD %d", mv, got, want)
		}
	}
}

func TestRefineRowsPanics(t *testing.T) {
	cur := randomFrame(32, 32, 12)
	meF := h264.NewMVField(2, 2, 1)
	out := h264.NewMVField(2, 2, 1)
	sfs := []*interp.SubFrame{nil}
	cases := []func(){
		func() { RefineRows(cur, sfs, meF, h264.NewMVField(2, 2, 2), 0, 2) },
		func() { RefineRows(cur, sfs, meF, out, 0, 3) },
		func() { RefineRows(cur, []*interp.SubFrame{}, meF, out, 0, 2) },
		func() { RefineRows(cur, sfs, h264.NewMVField(1, 2, 1), h264.NewMVField(1, 2, 1), 0, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRefineRowsMatchesScalarReference(t *testing.T) {
	// The cell-memoized SWAR kernel must be bit-exact with the retained
	// scalar kernel — same costs, same vectors, same tie-breaking.
	for seed := int64(0); seed < 3; seed++ {
		cur := randomFrame(80, 64, 60+seed)
		ref := randomFrame(80, 64, 70+seed)
		meF, out, sfs := setup(cur, ref, 6)
		refOut := h264.NewMVField(out.MBW, out.MBH, out.NumRF)
		RefineRows(cur, sfs, meF, out, 0, cur.MBHeight())
		RefineRowsRef(cur, sfs, meF, refOut, 0, cur.MBHeight())
		if !out.Equal(refOut) {
			t.Fatalf("seed %d: memoized refinement differs from scalar reference", seed)
		}
	}
}

func TestSubSADMatchesScalarReference(t *testing.T) {
	cur := randomFrame(64, 48, 80)
	ref := randomFrame(64, 48, 81)
	sf := interp.NewSubFrame(ref.W, ref.H)
	interp.Interpolate(ref.Y, sf)
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 300; i++ {
		w := []int{4, 8, 16}[rng.Intn(3)]
		h := []int{4, 8, 16}[rng.Intn(3)]
		x, y := rng.Intn(64-w), rng.Intn(48-h)
		mv := h264.MV{X: int16(rng.Intn(33) - 16), Y: int16(rng.Intn(33) - 16)}
		got := SubSAD(cur.Y, sf, x, y, w, h, mv)
		want := subSADRef(cur.Y, sf, x, y, w, h, mv)
		if got != want {
			t.Fatalf("SubSAD(%d,%d %dx%d mv %v) = %d, ref %d", x, y, w, h, mv, got, want)
		}
	}
}
