package sme

import (
	"testing"
)

// BenchmarkRefineRows times the 41-partition sub-pel refinement over a full
// QCIF frame and reports the per-macroblock cost tracked by the device
// calibration and the bench-regression gate.
func BenchmarkRefineRows(b *testing.B) {
	cur := randomFrame(176, 144, 30)
	ref := randomFrame(176, 144, 31)
	meF, out, sfs := setup(cur, ref, 8)
	mbs := cur.MBWidth() * cur.MBHeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RefineRows(cur, sfs, meF, out, 0, cur.MBHeight())
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*mbs), "ns/MB")
}
