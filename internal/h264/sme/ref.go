package sme

import (
	"math"

	"feves/internal/h264"
	"feves/internal/h264/interp"
)

// RefineRowsRef is the scalar sample-at-a-time refinement kernel retained
// as the bit-exactness oracle for the cell-memoized SWAR kernel and as the
// baseline the device calibration and the bench-regression speedup ratios
// are measured against. It matches RefineRows exactly (same candidate scan
// order, same tie-breaking) but shares none of its SAD code.
func RefineRowsRef(cf *h264.Frame, sfs []*interp.SubFrame, meField, out *h264.MVField, rowLo, rowHi int) {
	checkRefineArgs(cf, sfs, meField, out, rowLo, rowHi)
	for mby := rowLo; mby < rowHi; mby++ {
		for mbx := 0; mbx < cf.MBWidth(); mbx++ {
			for rf := 0; rf < meField.NumRF; rf++ {
				refineMBRef(cf, sfs[rf], meField, out, mbx, mby, rf)
			}
		}
	}
}

func refineMBRef(cf *h264.Frame, sf *interp.SubFrame, meField, out *h264.MVField, mbx, mby, rf int) {
	for _, mode := range h264.AllModes() {
		w, h := mode.Size()
		for k := 0; k < mode.Count(); k++ {
			part := mode.Base() + k
			imv, icost := meField.Get(mbx, mby, part, rf)
			if icost == math.MaxInt32 || sf == nil {
				out.Set(mbx, mby, part, rf, imv.Scale4(), math.MaxInt32)
				continue
			}
			ox, oy := mode.Offset(k)
			x, y := mbx*h264.MBSize+ox, mby*h264.MBSize+oy

			center := imv.Scale4()
			best := center
			bestCost := subSADRef(cf.Y, sf, x, y, w, h, center)
			best, bestCost = refineStepFromRef(cf.Y, sf, x, y, w, h, best, bestCost, 2)
			best, bestCost = refineStepFromRef(cf.Y, sf, x, y, w, h, best, bestCost, 1)
			out.Set(mbx, mby, part, rf, best, bestCost)
		}
	}
}

func refineStepFromRef(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, best h264.MV, bestCost int32, step int16) (h264.MV, int32) {
	center := best
	for dy := int16(-1); dy <= 1; dy++ {
		for dx := int16(-1); dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := h264.MV{X: center.X + dx*step, Y: center.Y + dy*step}
			c := subSADRef(cur, sf, x, y, w, h, cand)
			if c < bestCost {
				bestCost = c
				best = cand
			}
		}
	}
	return best, bestCost
}

func subSADRef(cur *h264.Plane, sf *interp.SubFrame, x, y, w, h int, mv h264.MV) int32 {
	fx, fy := int(mv.X)&3, int(mv.Y)&3
	px, py := int(mv.X)>>2, int(mv.Y)>>2
	plane := sf.Planes[fy*4+fx]
	var sum int32
	for j := 0; j < h; j++ {
		cRow := cur.RowPadded(y + j)[cur.Pad+x:]
		for i := 0; i < w; i++ {
			a := cRow[i]
			b := plane.At(x+i+px, y+j+py)
			if a > b {
				sum += int32(a - b)
			} else {
				sum += int32(b - a)
			}
		}
	}
	return sum
}
