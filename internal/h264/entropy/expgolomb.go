package entropy

// WriteUE appends an unsigned Exp-Golomb code (the ue(v) descriptor of the
// H.264/AVC syntax): codeNum v is written as (leadingZeros zeros, 1,
// leadingZeros info bits) where v+1 has leadingZeros+1 significant bits.
func (w *BitWriter) WriteUE(v uint32) {
	x := v + 1
	n := bitLen32(x)
	for i := 0; i < n-1; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, uint(n))
}

// ReadUE decodes an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, ErrUnexpectedEOF
		}
	}
	info, err := r.ReadBits(uint(zeros))
	if err != nil {
		return 0, err
	}
	return (1<<uint(zeros) | info) - 1, nil
}

// WriteSE appends a signed Exp-Golomb code (the se(v) descriptor):
// v > 0 maps to 2v−1, v ≤ 0 maps to −2v.
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.WriteUE(u)
}

// ReadSE decodes a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u&1 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}

// UEBits returns the length in bits of the ue(v) code for v, without
// writing it. Mode decision uses it to estimate motion-vector rate.
func UEBits(v uint32) int {
	return 2*bitLen32(v+1) - 1
}

// SEBits returns the length in bits of the se(v) code for v.
func SEBits(v int32) int {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	return UEBits(u)
}

func bitLen32(x uint32) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}
