package entropy

// Context-modelled residual coding for 4×4 transform blocks on top of the
// binary arithmetic coder — the CABAC-style counterpart of WriteBlock4x4.
// The syntax per block is:
//
//	coded_block_flag            (1 context)
//	for each scan position p while not last:
//	    significant_flag[p]     (per-position context)
//	    if significant:
//	        last_flag[p]        (per-position context)
//	        sign                (bypass)
//	        |level|-1           unary prefix ≤ 8 under level contexts,
//	                            then order-0 Exp-Golomb suffix on bypass
//
// Contexts adapt within a frame and reset at frame boundaries, so streams
// remain independently decodable per frame.

// ResidualContexts holds the adaptive models for one coding direction.
type ResidualContexts struct {
	cbf   Context
	sig   [16]Context
	last  [16]Context
	level [4]Context
}

// NewResidualContexts returns freshly initialized models.
func NewResidualContexts() *ResidualContexts {
	rc := &ResidualContexts{}
	rc.Reset()
	return rc
}

// Reset re-initializes every context (frame boundary).
func (rc *ResidualContexts) Reset() {
	rc.cbf.Reset()
	for i := range rc.sig {
		rc.sig[i].Reset()
		rc.last[i].Reset()
	}
	for i := range rc.level {
		rc.level[i].Reset()
	}
}

const levelPrefixMax = 8

// EncodeBlock4x4 codes a raster-ordered quantized block.
func (rc *ResidualContexts) EncodeBlock4x4(e *ArithEncoder, coefs *[16]int32) {
	var scan [16]int32
	lastSig := -1
	for raster, c := range coefs {
		p := invZigZag4x4[raster]
		scan[p] = c
		if c != 0 && p > lastSig {
			lastSig = p
		}
	}
	if lastSig < 0 {
		e.EncodeBit(&rc.cbf, 0)
		return
	}
	e.EncodeBit(&rc.cbf, 1)
	for p := 0; p <= lastSig; p++ {
		if scan[p] == 0 {
			e.EncodeBit(&rc.sig[p], 0)
			continue
		}
		e.EncodeBit(&rc.sig[p], 1)
		if p == lastSig {
			e.EncodeBit(&rc.last[p], 1)
		} else {
			e.EncodeBit(&rc.last[p], 0)
		}
		v := scan[p]
		var sign uint32
		if v < 0 {
			sign = 1
			v = -v
		}
		e.EncodeBypass(sign)
		rc.encodeMagnitude(e, uint32(v-1))
	}
}

// encodeMagnitude codes v ≥ 0 with a context-modelled truncated-unary
// prefix and an Exp-Golomb bypass suffix.
func (rc *ResidualContexts) encodeMagnitude(e *ArithEncoder, v uint32) {
	prefix := v
	if prefix > levelPrefixMax {
		prefix = levelPrefixMax
	}
	for i := uint32(0); i < prefix; i++ {
		e.EncodeBit(rc.levelCtx(i), 1)
	}
	if prefix < levelPrefixMax {
		e.EncodeBit(rc.levelCtx(prefix), 0)
		return
	}
	// Escape: Exp-Golomb order 0 of the remainder on the bypass path.
	rem := v - levelPrefixMax
	n := uint(bitLen32(rem + 1))
	for i := uint(1); i < n; i++ {
		e.EncodeBypass(0)
	}
	e.EncodeBypassBits(rem+1, n)
}

func (rc *ResidualContexts) levelCtx(i uint32) *Context {
	if i >= uint32(len(rc.level)) {
		i = uint32(len(rc.level)) - 1
	}
	return &rc.level[i]
}

// DecodeBlock4x4 decodes a block coded by EncodeBlock4x4 into coefs
// (raster order). It returns false when the syntax is corrupt (e.g. a
// significant coefficient beyond the block end).
func (rc *ResidualContexts) DecodeBlock4x4(d *ArithDecoder, coefs *[16]int32) bool {
	*coefs = [16]int32{}
	if d.DecodeBit(&rc.cbf) == 0 {
		return true
	}
	for p := 0; p < 16; p++ {
		if d.DecodeBit(&rc.sig[p]) == 0 {
			if p == 15 {
				return false // a coded block must have a significant coef
			}
			continue
		}
		last := d.DecodeBit(&rc.last[p]) == 1
		sign := d.DecodeBypass()
		mag, ok := rc.decodeMagnitude(d)
		if !ok {
			return false
		}
		v := int32(mag) + 1
		if sign == 1 {
			v = -v
		}
		coefs[ZigZag4x4[p]] = v
		if last {
			return true
		}
	}
	return false // ran off the block without a last flag
}

func (rc *ResidualContexts) decodeMagnitude(d *ArithDecoder) (uint32, bool) {
	var prefix uint32
	for prefix < levelPrefixMax {
		if d.DecodeBit(rc.levelCtx(prefix)) == 0 {
			return prefix, true
		}
		prefix++
	}
	// Escape suffix: Exp-Golomb order 0 on bypass.
	zeros := uint(0)
	for d.DecodeBypass() == 0 {
		zeros++
		if zeros > 30 {
			return 0, false
		}
	}
	info := d.DecodeBypassBits(zeros)
	return levelPrefixMax + (1<<zeros | info) - 1, true
}
