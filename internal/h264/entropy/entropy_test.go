package entropy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBit(0)
	data := w.Bytes()
	r := NewBitReader(data)
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("word = %x", v)
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("final bit")
	}
}

func TestBitWriterLenAndAlign(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0x7, 3)
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	w.AlignByte()
	if w.Len() != 8 {
		t.Fatalf("Len after align = %d, want 8", w.Len())
	}
	data := w.Bytes()
	if len(data) != 1 || data[0] != 0xE0 {
		t.Fatalf("bytes = %x", data)
	}
}

func TestBitReaderEOF(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestBitReaderAlignAndRemaining(t *testing.T) {
	r := NewBitReader([]byte{0xAB, 0xCD})
	r.ReadBits(3)
	r.AlignByte()
	if r.Pos() != 8 || r.Remaining() != 8 {
		t.Fatalf("pos=%d rem=%d", r.Pos(), r.Remaining())
	}
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Fatalf("post-align byte = %x", v)
	}
}

func TestUEKnownCodes(t *testing.T) {
	// Table 9-1 of the H.264 spec: 0→1, 1→010, 2→011, 3→00100...
	cases := []struct {
		v    uint32
		bits string
	}{
		{0, "1"}, {1, "010"}, {2, "011"}, {3, "00100"}, {4, "00101"},
		{5, "00110"}, {6, "00111"}, {7, "0001000"}, {8, "0001001"},
	}
	for _, c := range cases {
		w := NewBitWriter()
		w.WriteUE(c.v)
		got := bitString(w)
		if got != c.bits {
			t.Errorf("ue(%d) = %s, want %s", c.v, got, c.bits)
		}
		if UEBits(c.v) != len(c.bits) {
			t.Errorf("UEBits(%d) = %d, want %d", c.v, UEBits(c.v), len(c.bits))
		}
	}
}

func TestSEMapping(t *testing.T) {
	// se(v): 0→"1", 1→"010", -1→"011", 2→"00100", -2→"00101".
	cases := []struct {
		v    int32
		bits string
	}{{0, "1"}, {1, "010"}, {-1, "011"}, {2, "00100"}, {-2, "00101"}}
	for _, c := range cases {
		w := NewBitWriter()
		w.WriteSE(c.v)
		if got := bitString(w); got != c.bits {
			t.Errorf("se(%d) = %s, want %s", c.v, got, c.bits)
		}
		if SEBits(c.v) != len(c.bits) {
			t.Errorf("SEBits(%d) = %d, want %d", c.v, SEBits(c.v), len(c.bits))
		}
	}
}

func TestUERoundTripQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteUE(v % (1 << 20))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSERoundTripQuick(t *testing.T) {
	f := func(vals []int32) bool {
		w := NewBitWriter()
		for _, v := range vals {
			w.WriteSE(v % (1 << 18))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%(1<<18) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	seen := [16]bool{}
	for _, r := range ZigZag4x4 {
		if r < 0 || r > 15 || seen[r] {
			t.Fatalf("zig-zag not a permutation: %v", ZigZag4x4)
		}
		seen[r] = true
	}
	// First entries follow the standard order.
	want := [6]int{0, 1, 4, 8, 5, 2}
	for i, w := range want {
		if ZigZag4x4[i] != w {
			t.Fatalf("ZigZag4x4[%d] = %d, want %d", i, ZigZag4x4[i], w)
		}
	}
}

func TestBlock4x4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		var blk [16]int32
		nz := rng.Intn(17)
		for i := 0; i < nz; i++ {
			blk[rng.Intn(16)] = int32(rng.Intn(512) - 256)
		}
		w := NewBitWriter()
		w.WriteBlock4x4(&blk)
		wantBits := w.Len()
		if got := Block4x4Bits(&blk); got != wantBits {
			t.Fatalf("Block4x4Bits = %d, written %d", got, wantBits)
		}
		var out [16]int32
		if err := NewBitReader(w.Bytes()).ReadBlock4x4(&out); err != nil {
			t.Fatal(err)
		}
		if out != blk {
			t.Fatalf("round trip mismatch:\n in  %v\n out %v", blk, out)
		}
	}
}

func TestBlock4x4ZeroBlockIsOneBit(t *testing.T) {
	var blk [16]int32
	w := NewBitWriter()
	w.WriteBlock4x4(&blk)
	if w.Len() != 1 {
		t.Fatalf("zero block costs %d bits, want 1", w.Len())
	}
}

func TestBlock4x4DecodeErrors(t *testing.T) {
	// Truncated stream.
	w := NewBitWriter()
	var blk [16]int32
	blk[0], blk[15] = 5, -3
	w.WriteBlock4x4(&blk)
	data := w.Bytes()
	var out [16]int32
	if err := NewBitReader(data[:1]).ReadBlock4x4(&out); err == nil {
		t.Fatal("expected error on truncated stream")
	}
	// nz > 16 is rejected.
	w2 := NewBitWriter()
	w2.WriteUE(17)
	w2.AlignByte()
	if err := NewBitReader(w2.Bytes()).ReadBlock4x4(&out); err == nil {
		t.Fatal("expected error on nz > 16")
	}
}

func TestWriteBitsPanicsOver32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitWriter().WriteBits(0, 33)
}

func bitString(w *BitWriter) string {
	n := w.Len()
	data := w.Bytes()
	s := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		if data[i>>3]>>(7-uint(i&7))&1 == 1 {
			s = append(s, '1')
		} else {
			s = append(s, '0')
		}
	}
	return string(s)
}
