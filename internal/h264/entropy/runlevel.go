package entropy

// ZigZag4x4 is the H.264/AVC zig-zag scan order for 4×4 transform blocks:
// it maps scan position to raster index so that low-frequency coefficients
// come first and trailing zeros compress into a single end-of-block code.
var ZigZag4x4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}

// invZigZag4x4 maps raster index to scan position.
var invZigZag4x4 [16]int

func init() {
	for scan, raster := range ZigZag4x4 {
		invZigZag4x4[raster] = scan
	}
}

// WriteBlock4x4 encodes a quantized 4×4 coefficient block (raster order)
// with a CAVLC-style run-level scheme: total number of non-zero
// coefficients as ue(v), then for each non-zero coefficient in zig-zag
// order its zero-run length (ue) and level (se). An all-zero block costs a
// single ue(0) bit.
func (w *BitWriter) WriteBlock4x4(coefs *[16]int32) {
	var scan [16]int32
	nz := 0
	for raster, c := range coefs {
		scan[invZigZag4x4[raster]] = c
		if c != 0 {
			nz++
		}
	}
	w.WriteUE(uint32(nz))
	run := 0
	for _, c := range scan {
		if c == 0 {
			run++
			continue
		}
		w.WriteUE(uint32(run))
		w.WriteSE(c)
		run = 0
	}
}

// ReadBlock4x4 decodes a block written by WriteBlock4x4 into coefs
// (raster order).
func (r *BitReader) ReadBlock4x4(coefs *[16]int32) error {
	*coefs = [16]int32{}
	nz, err := r.ReadUE()
	if err != nil {
		return err
	}
	if nz > 16 {
		return ErrUnexpectedEOF
	}
	pos := 0
	for i := uint32(0); i < nz; i++ {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		pos += int(run)
		if pos >= 16 {
			return ErrUnexpectedEOF
		}
		level, err := r.ReadSE()
		if err != nil {
			return err
		}
		coefs[ZigZag4x4[pos]] = level
		pos++
	}
	return nil
}

// Block4x4Bits returns the exact bit cost of coding the block, without
// writing it.
func Block4x4Bits(coefs *[16]int32) int {
	var scan [16]int32
	nz := 0
	for raster, c := range coefs {
		scan[invZigZag4x4[raster]] = c
		if c != 0 {
			nz++
		}
	}
	bits := UEBits(uint32(nz))
	run := 0
	for _, c := range scan {
		if c == 0 {
			run++
			continue
		}
		bits += UEBits(uint32(run)) + SEBits(c)
		run = 0
	}
	return bits
}
