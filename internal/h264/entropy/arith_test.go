package entropy

import (
	"math/rand"
	"testing"
)

func TestArithBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]uint32, 5000)
	for i := range bits {
		// Skewed source: mostly zeros, so the context adapts.
		if rng.Intn(10) == 0 {
			bits[i] = 1
		}
	}
	e := NewArithEncoder()
	ctx := NewContext()
	for _, b := range bits {
		e.EncodeBit(&ctx, b)
	}
	data := e.Finish()
	d := NewArithDecoder(data)
	dctx := NewContext()
	for i, want := range bits {
		if got := d.DecodeBit(&dctx); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
	// Adaptive coding of a 10%-ones source must beat 1 bit/symbol clearly.
	if len(data)*8 > len(bits)*3/4 {
		t.Fatalf("adaptive coder produced %d bits for %d skewed symbols", len(data)*8, len(bits))
	}
}

func TestArithBypassRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint32, 300)
	for i := range vals {
		vals[i] = rng.Uint32() & 0xFFFF
	}
	e := NewArithEncoder()
	for _, v := range vals {
		e.EncodeBypassBits(v, 16)
	}
	d := NewArithDecoder(e.Finish())
	for i, want := range vals {
		if got := d.DecodeBypassBits(16); got != want {
			t.Fatalf("value %d: got %x want %x", i, got, want)
		}
	}
}

func TestArithMixedContextsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type sym struct {
		ctx int
		bit uint32
	}
	var syms []sym
	for i := 0; i < 4000; i++ {
		c := rng.Intn(3)
		var b uint32
		// Each context has a different bias.
		if rng.Intn(c+2) == 0 {
			b = 1
		}
		syms = append(syms, sym{c, b})
	}
	e := NewArithEncoder()
	ectx := [3]Context{NewContext(), NewContext(), NewContext()}
	for _, s := range syms {
		e.EncodeBit(&ectx[s.ctx], s.bit)
	}
	d := NewArithDecoder(e.Finish())
	dctx := [3]Context{NewContext(), NewContext(), NewContext()}
	for i, s := range syms {
		if got := d.DecodeBit(&dctx[s.ctx]); got != s.bit {
			t.Fatalf("symbol %d mismatch", i)
		}
	}
}

func randomBlocks(n int, density, amp int, seed int64) [][16]int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][16]int32, n)
	for i := range out {
		nz := rng.Intn(density + 1)
		for k := 0; k < nz; k++ {
			// Low-frequency positions more likely, small levels common —
			// the statistics of quantized prediction residuals.
			pos := ZigZag4x4[rng.Intn(8)+rng.Intn(9)]
			level := int32(1 + rng.Intn(amp))
			if rng.Intn(2) == 0 {
				level = -level
			}
			out[i][pos] = level
		}
	}
	return out
}

func TestArithBlockRoundTrip(t *testing.T) {
	blocks := randomBlocks(500, 8, 40, 4)
	e := NewArithEncoder()
	erc := NewResidualContexts()
	for i := range blocks {
		erc.EncodeBlock4x4(e, &blocks[i])
	}
	d := NewArithDecoder(e.Finish())
	drc := NewResidualContexts()
	for i := range blocks {
		var out [16]int32
		if !drc.DecodeBlock4x4(d, &out) {
			t.Fatalf("block %d: corrupt syntax", i)
		}
		if out != blocks[i] {
			t.Fatalf("block %d mismatch:\n in  %v\n out %v", i, blocks[i], out)
		}
	}
}

func TestArithBlockExtremeLevels(t *testing.T) {
	// Levels past the unary prefix exercise the Exp-Golomb escape.
	var blk [16]int32
	blk[0], blk[5], blk[15] = 2047, -512, 9
	e := NewArithEncoder()
	erc := NewResidualContexts()
	erc.EncodeBlock4x4(e, &blk)
	d := NewArithDecoder(e.Finish())
	drc := NewResidualContexts()
	var out [16]int32
	if !drc.DecodeBlock4x4(d, &out) || out != blk {
		t.Fatalf("extreme levels: got %v", out)
	}
}

func TestArithBeatsVLCOnTypicalResiduals(t *testing.T) {
	// The headline property of the extension: on residual-like statistics
	// the adaptive coder spends fewer bits than the static run-level VLC.
	blocks := randomBlocks(2000, 5, 6, 5)
	w := NewBitWriter()
	for i := range blocks {
		w.WriteBlock4x4(&blocks[i])
	}
	vlcBits := w.Len()

	e := NewArithEncoder()
	rc := NewResidualContexts()
	for i := range blocks {
		rc.EncodeBlock4x4(e, &blocks[i])
	}
	arithBits := len(e.Finish()) * 8
	if arithBits >= vlcBits {
		t.Fatalf("arithmetic coding (%d bits) should beat VLC (%d bits) on residual statistics",
			arithBits, vlcBits)
	}
}

func TestArithDecoderNoPanicOnTruncation(t *testing.T) {
	blocks := randomBlocks(50, 8, 30, 6)
	e := NewArithEncoder()
	erc := NewResidualContexts()
	for i := range blocks {
		erc.EncodeBlock4x4(e, &blocks[i])
	}
	data := e.Finish()
	for cut := 0; cut < len(data); cut += 7 {
		d := NewArithDecoder(data[:cut])
		drc := NewResidualContexts()
		for i := 0; i < len(blocks); i++ {
			var out [16]int32
			if !drc.DecodeBlock4x4(d, &out) {
				break // corrupt syntax detected — fine
			}
		}
	}
}

func TestContextReset(t *testing.T) {
	c := NewContext()
	c.update(1)
	c.update(1)
	if c.p == probInit {
		t.Fatal("context did not adapt")
	}
	c.Reset()
	if c.p != probInit {
		t.Fatal("Reset did not restore the initial state")
	}
	rc := NewResidualContexts()
	e := NewArithEncoder()
	var blk [16]int32
	blk[3] = 4
	rc.EncodeBlock4x4(e, &blk)
	rc.Reset()
	if rc.cbf.p != probInit || rc.sig[0].p != probInit {
		t.Fatal("ResidualContexts.Reset incomplete")
	}
}

func BenchmarkArithBlock(b *testing.B) {
	blocks := randomBlocks(64, 6, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewArithEncoder()
		rc := NewResidualContexts()
		for j := range blocks {
			rc.EncodeBlock4x4(e, &blocks[j])
		}
		e.Finish()
	}
}

func BenchmarkVLCBlock(b *testing.B) {
	blocks := randomBlocks(64, 6, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewBitWriter()
		for j := range blocks {
			w.WriteBlock4x4(&blocks[j])
		}
		w.Bytes()
	}
}
