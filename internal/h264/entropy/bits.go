// Package entropy implements the entropy-coding substrate of the FEVES
// reproduction: MSB-first bit I/O, Exp-Golomb universal codes (the ue(v) and
// se(v) descriptors of H.264/AVC), zig-zag scanning and a CAVLC-style
// run-level coder for quantized 4×4 transform blocks, together with the
// matching decoder used to verify bitstreams end-to-end.
package entropy

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("entropy: unexpected end of bitstream")

// BitWriter assembles a bitstream MSB-first.
type BitWriter struct {
	buf  []byte
	cur  uint8
	nCur uint // bits already placed in cur (0..7)
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBit appends a single bit (0 or 1).
func (w *BitWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n low-order bits of v, most significant first.
// n must be in [0, 32].
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("entropy: WriteBits n=%d", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// Len returns the number of whole bits written so far.
func (w *BitWriter) Len() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes with zero padding to a byte boundary and returns the
// underlying buffer. Further writes append after the padding.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// AlignByte pads with zero bits to the next byte boundary.
func (w *BitWriter) AlignByte() {
	for w.nCur != 0 {
		w.WriteBit(0)
	}
}

// BitReader consumes a bitstream MSB-first.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps data for reading.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, ErrUnexpectedEOF
	}
	b := (r.buf[r.pos>>3] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as an unsigned value (n ≤ 32).
func (r *BitReader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("entropy: ReadBits n=%d", n))
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// AlignByte skips to the next byte boundary.
func (r *BitReader) AlignByte() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }

// WriteBytes appends whole bytes; the writer must be byte-aligned (used to
// embed arithmetic-coded chunks in the bitstream).
func (w *BitWriter) WriteBytes(data []byte) {
	if w.nCur != 0 {
		panic("entropy: WriteBytes on unaligned writer")
	}
	w.buf = append(w.buf, data...)
}

// ReadBytes consumes n whole bytes; the reader must be byte-aligned.
func (r *BitReader) ReadBytes(n int) ([]byte, error) {
	if r.pos&7 != 0 {
		panic("entropy: ReadBytes on unaligned reader")
	}
	start := r.pos >> 3
	if start+n > len(r.buf) {
		return nil, ErrUnexpectedEOF
	}
	r.pos += n * 8
	return r.buf[start : start+n], nil
}
