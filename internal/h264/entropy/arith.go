package entropy

// This file implements the reproduction's optional arithmetic-coding
// entropy backend: an adaptive binary range coder in the style of
// H.264/AVC's CABAC (Main profile), usable in place of the CAVLC-style
// run-level coder of the Baseline profile the paper evaluates. The coder
// is an LZMA-style carry-propagating range coder with 16-bit adaptive
// contexts — simpler than the standard's M-coder but with the same
// architecture (context modelling + binary arithmetic core + bypass path).

const (
	probBits  = 16
	probInit  = 1 << (probBits - 1) // p(0) = 0.5
	probShift = 5                   // adaptation rate
	topValue  = 1 << 24
)

// Context is one adaptive binary probability model. The zero value is
// invalid; use NewContext or Reset.
type Context struct {
	p uint32 // probability that the next bit is 0, scaled to 1<<16
}

// NewContext returns an equiprobable context.
func NewContext() Context { return Context{p: probInit} }

// Reset re-initializes the context to equiprobable.
func (c *Context) Reset() { c.p = probInit }

func (c *Context) update(bit uint32) {
	if bit == 0 {
		c.p += ((1 << probBits) - c.p) >> probShift
	} else {
		c.p -= c.p >> probShift
	}
}

// ArithEncoder encodes bits into a byte stream.
type ArithEncoder struct {
	low     uint64
	rng     uint32
	cache   byte
	pending int
	started bool
	out     []byte
}

// NewArithEncoder returns a fresh encoder.
func NewArithEncoder() *ArithEncoder {
	return &ArithEncoder{rng: 0xFFFFFFFF}
}

// EncodeBit encodes one bit under the adaptive context.
func (e *ArithEncoder) EncodeBit(c *Context, bit uint32) {
	bound := (e.rng >> probBits) * c.p
	if bit == 0 {
		e.rng = bound
	} else {
		e.low += uint64(bound)
		e.rng -= bound
	}
	c.update(bit)
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// EncodeBypass encodes one equiprobable bit without a context (the CABAC
// bypass path, used for signs and suffix bits).
func (e *ArithEncoder) EncodeBypass(bit uint32) {
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

// EncodeBypassBits encodes the n low-order bits of v, MSB first, on the
// bypass path.
func (e *ArithEncoder) EncodeBypassBits(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.EncodeBypass((v >> uint(i)) & 1)
	}
}

func (e *ArithEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		carry := byte(e.low >> 32)
		if e.started {
			e.out = append(e.out, e.cache+carry)
		}
		for ; e.pending > 0; e.pending-- {
			e.out = append(e.out, 0xFF+carry)
		}
		e.cache = byte(e.low >> 24)
		e.started = true
	} else {
		e.pending++
	}
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// Finish flushes the coder and returns the coded bytes. The encoder must
// not be used afterwards.
func (e *ArithEncoder) Finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// ArithDecoder decodes a stream produced by ArithEncoder.
type ArithDecoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
}

// NewArithDecoder wraps the coded bytes. Reading past the end yields zero
// bytes, which surfaces as corrupt syntax at a higher level rather than a
// panic.
func NewArithDecoder(data []byte) *ArithDecoder {
	d := &ArithDecoder{rng: 0xFFFFFFFF, in: data}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *ArithDecoder) next() byte {
	if d.pos >= len(d.in) {
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// DecodeBit decodes one bit under the adaptive context.
func (d *ArithDecoder) DecodeBit(c *Context) uint32 {
	bound := (d.rng >> probBits) * c.p
	var bit uint32
	if d.code < bound {
		d.rng = bound
	} else {
		bit = 1
		d.code -= bound
		d.rng -= bound
	}
	c.update(bit)
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
	return bit
}

// DecodeBypass decodes one equiprobable bit.
func (d *ArithDecoder) DecodeBypass() uint32 {
	d.rng >>= 1
	var bit uint32
	if d.code >= d.rng {
		bit = 1
		d.code -= d.rng
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
	return bit
}

// DecodeBypassBits decodes n bypass bits, MSB first.
func (d *ArithDecoder) DecodeBypassBits(n uint) uint32 {
	var v uint32
	for i := uint(0); i < n; i++ {
		v = v<<1 | d.DecodeBypass()
	}
	return v
}

// Consumed returns the number of input bytes read so far.
func (d *ArithDecoder) Consumed() int { return d.pos }
