package h264

// SWAR (SIMD-within-a-register) sample arithmetic shared by the ME and SME
// hot kernels: a uint64 is treated as four 16-bit lanes each holding a byte
// value, so eight samples are processed per step (even and odd bytes in two
// lane groups). This is what the paper's optimized CPU kernels get from SSE
// and the GPU kernels from coalesced uchar4 loads.
const (
	laneLow  = 0x00FF00FF00FF00FF
	laneOnes = 0x0001000100010001
	laneBias = 0x0100010001000100
)

// lanesAbsDiff returns per-lane |a−b| for four 16-bit lanes holding byte
// values. Adding the bias keeps every lane's difference non-negative
// (256+d with d in [−255, 255]), so no borrow crosses lanes; the carry bit
// then selects between d and −d without branching.
func lanesAbsDiff(a, b uint64) uint64 {
	t := (a | laneBias) - b
	m := (t >> 8) & laneOnes // 1 iff the lane difference is ≥ 0
	low := t & laneLow       // d mod 256
	nm := m ^ laneOnes       // 1 iff the lane difference is < 0
	s := (nm << 8) - nm      // 0x00FF where negative, 0 elsewhere
	return (low ^ s) + nm    // two's-complement negate where negative
}

// SADPair8 returns the two adjacent 4-sample SADs of eight horizontally
// contiguous samples loaded little-endian (cells c and c+1 of a 4×4 grid
// row).
func SADPair8(c, r uint64) (int32, int32) {
	s := lanesAbsDiff(c&laneLow, r&laneLow) + lanesAbsDiff((c>>8)&laneLow, (r>>8)&laneLow)
	return int32(s&0xFFFF) + int32((s>>16)&0xFFFF),
		int32((s>>32)&0xFFFF) + int32(s>>48)
}

// SAD4 returns the SAD of four horizontally contiguous samples loaded
// little-endian as 32-bit words.
func SAD4(c, r uint32) int32 {
	s := lanesAbsDiff(uint64(c)&laneLow, uint64(r)&laneLow) +
		lanesAbsDiff(uint64(c>>8)&laneLow, uint64(r>>8)&laneLow)
	return int32(s&0xFFFF) + int32((s>>16)&0xFFFF)
}
