// Package h264 provides the core data structures shared by all inter-loop
// video encoding modules of the FEVES reproduction: YUV 4:2:0 frames, padded
// luma/chroma planes, macroblock and partition geometry, motion-vector
// fields, and the decoded-picture buffer that holds reference frames.
//
// The actual inter-loop modules live in the subpackages me (full-search
// block-matching motion estimation), interp (half/quarter-pel sub-pixel
// interpolation), sme (sub-pixel motion estimation), mc (mode decision and
// motion compensation), transform (integer transform and quantization),
// deblock (in-loop deblocking filter), entropy (Exp-Golomb and run-level
// residual coding) and rd (rate/distortion accounting).
package h264
