package h264

import "fmt"

// MBSize is the luma macroblock dimension defined by H.264/AVC.
const MBSize = 16

// DefaultPad is the reference-plane padding used throughout the encoder. It
// must cover the largest supported search range plus the interpolation
// filter support (3 samples on each side for the 6-tap filter).
const DefaultPad = 160

// Frame is a YUV 4:2:0 picture. Luma is W×H; both chroma planes are
// (W/2)×(H/2). W and H must be multiples of MBSize.
type Frame struct {
	W, H    int
	Y       *Plane
	Cb, Cr  *Plane
	Poc     int // picture order count (frame number in display order)
	IsIntra bool
}

// NewFrame allocates a zeroed frame. Width and height must be positive
// multiples of MBSize.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%MBSize != 0 || h%MBSize != 0 {
		panic(fmt.Sprintf("h264: frame size %dx%d not a multiple of %d", w, h, MBSize))
	}
	return &Frame{
		W:  w,
		H:  h,
		Y:  NewPlane(w, h, DefaultPad),
		Cb: NewPlane(w/2, h/2, DefaultPad/2),
		Cr: NewPlane(w/2, h/2, DefaultPad/2),
	}
}

// MBWidth returns the number of macroblock columns.
func (f *Frame) MBWidth() int { return f.W / MBSize }

// MBHeight returns the number of macroblock rows (N in the paper's
// load-balancing formulation).
func (f *Frame) MBHeight() int { return f.H / MBSize }

// LoadYUV fills the frame from packed planar I420 data
// (Y plane, then Cb, then Cr) and extends all borders.
func (f *Frame) LoadYUV(data []uint8) error {
	ySz := f.W * f.H
	cSz := ySz / 4
	if len(data) != ySz+2*cSz {
		return fmt.Errorf("h264: I420 frame needs %d bytes, got %d", ySz+2*cSz, len(data))
	}
	f.Y.LoadFrom(data[:ySz])
	f.Cb.LoadFrom(data[ySz : ySz+cSz])
	f.Cr.LoadFrom(data[ySz+cSz:])
	return nil
}

// PackedYUV returns the frame as packed planar I420 data.
func (f *Frame) PackedYUV() []uint8 {
	out := make([]uint8, 0, f.W*f.H*3/2)
	out = append(out, f.Y.Packed()...)
	out = append(out, f.Cb.Packed()...)
	out = append(out, f.Cr.Packed()...)
	return out
}

// ExtendBorders re-extends the borders of all three planes.
func (f *Frame) ExtendBorders() {
	f.Y.ExtendBorder()
	f.Cb.ExtendBorder()
	f.Cr.ExtendBorder()
}

// Equal reports whether two frames have bit-identical picture areas.
func (f *Frame) Equal(g *Frame) bool {
	return f.W == g.W && f.H == g.H &&
		f.Y.Equal(g.Y) && f.Cb.Equal(g.Cb) && f.Cr.Equal(g.Cr)
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{
		W: f.W, H: f.H,
		Y: f.Y.Clone(), Cb: f.Cb.Clone(), Cr: f.Cr.Clone(),
		Poc: f.Poc, IsIntra: f.IsIntra,
	}
}

// DPB is the decoded-picture buffer: an ordered list of reconstructed
// reference frames, most recent first (index 0 is the frame encoded
// immediately before the current one). Its capacity bounds the number of
// reference frames used by motion estimation.
type DPB struct {
	cap    int
	frames []*Frame
}

// NewDPB creates a decoded-picture buffer holding at most capacity frames.
func NewDPB(capacity int) *DPB {
	if capacity < 1 {
		panic("h264: DPB capacity must be >= 1")
	}
	return &DPB{cap: capacity}
}

// Cap returns the configured capacity (the encoder's RF parameter).
func (d *DPB) Cap() int { return d.cap }

// Len returns the number of reference frames currently available. During
// the first frames of a sequence this is smaller than Cap — the ramp-up
// behaviour discussed with Fig. 7(b) of the paper.
func (d *DPB) Len() int { return len(d.frames) }

// Ref returns reference frame i (0 = most recent).
func (d *DPB) Ref(i int) *Frame { return d.frames[i] }

// Push inserts a newly reconstructed frame as the most recent reference,
// evicting the oldest when the buffer is full.
func (d *DPB) Push(f *Frame) {
	d.frames = append([]*Frame{f}, d.frames...)
	if len(d.frames) > d.cap {
		d.frames = d.frames[:d.cap]
	}
}

// Clear removes all reference frames.
func (d *DPB) Clear() { d.frames = nil }
