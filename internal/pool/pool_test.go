package pool

import (
	"math"
	"sync"
	"testing"

	"feves/internal/device"
)

func wl1080p(rf int) device.Workload {
	return device.Workload{MBW: 120, MBH: 68, SA: 32, NumRF: rf, UsableRF: rf}
}

// assertDisjoint fails unless the active leases cover disjoint non-empty
// subsets of the platform's devices.
func assertDisjoint(t *testing.T, base *device.Platform, leases []*Lease) {
	t.Helper()
	seen := map[int]int{}
	for _, l := range leases {
		devs := l.Devices()
		if len(devs) == 0 {
			t.Fatalf("lease %d has no devices", l.ID())
		}
		for _, d := range devs {
			if d < 0 || d >= base.NumDevices() {
				t.Fatalf("lease %d holds out-of-range device %d", l.ID(), d)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("device %d leased to both session %d and %d", d, prev, l.ID())
			}
			seen[d] = l.ID()
		}
	}
}

func TestSingleSessionGetsWholePlatform(t *testing.T) {
	base := device.SysNFF()
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.Acquire(wl1080p(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Devices()); got != base.NumDevices() {
		t.Fatalf("solo session leased %d of %d devices", got, base.NumDevices())
	}
	sub, epoch := l.Snapshot()
	if sub.NumDevices() != base.NumDevices() || epoch != p.Epoch() {
		t.Fatalf("snapshot %d devices at epoch %d (pool epoch %d)",
			sub.NumDevices(), epoch, p.Epoch())
	}
	l.Release()
	if p.Sessions() != 0 {
		t.Fatal("release did not clear the session")
	}
	l.Release() // idempotent
}

func TestArrivalDepartureKeepsLeasesDisjoint(t *testing.T) {
	base := device.SysNFF() // 6 devices
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	var live []*Lease
	for i := 0; i < 6; i++ {
		l, err := p.Acquire(wl1080p(1 + i%3))
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		live = append(live, l)
		assertDisjoint(t, base, live)
	}
	if _, err := p.Acquire(wl1080p(1)); err != ErrExhausted {
		t.Fatalf("7th session on 6 devices: err = %v, want ErrExhausted", err)
	}
	// Departures re-expand the survivors.
	for len(live) > 1 {
		live[0].Release()
		live = live[1:]
		assertDisjoint(t, base, live)
	}
	if got := len(live[0].Devices()); got != base.NumDevices() {
		t.Fatalf("last survivor leased %d of %d devices", got, base.NumDevices())
	}
}

// TestEqualizesPredictedTau: two identical sessions on a platform with
// two identical GPUs and four identical cores should get predicted τtot
// within a few percent of each other — the second LP layer's whole point.
func TestEqualizesPredictedTau(t *testing.T) {
	p, err := New(device.SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Acquire(wl1080p(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire(wl1080p(2))
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.PredictedTau(), b.PredictedTau()
	if ta <= 0 || tb <= 0 {
		t.Fatalf("predicted taus %v %v", ta, tb)
	}
	if r := math.Abs(ta-tb) / math.Max(ta, tb); r > 0.35 {
		t.Fatalf("predicted τtot imbalance %.0f%% (a=%v b=%v)", 100*r, ta, tb)
	}
	// Each session must hold one GPU: splitting both GPUs to one tenant
	// would leave the other ~an order of magnitude slower.
	gpus := func(l *Lease) int {
		n := 0
		for _, d := range l.Devices() {
			if d < 2 {
				n++
			}
		}
		return n
	}
	if gpus(a) != 1 || gpus(b) != 1 {
		t.Fatalf("GPU split %d/%d, want 1/1", gpus(a), gpus(b))
	}
}

// TestHeavierSessionGetsMoreSpeed: a 4-RF session does ~4× the ME/SME
// work of a 1-RF one; the partitioner should hand it the faster share.
func TestHeavierSessionGetsMoreSpeed(t *testing.T) {
	p, err := New(device.SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := p.Acquire(wl1080p(4))
	if err != nil {
		t.Fatal(err)
	}
	light, err := p.Acquire(wl1080p(1))
	if err != nil {
		t.Fatal(err)
	}
	th, tl := heavy.PredictedTau(), light.PredictedTau()
	// Perfect equalization is impossible with integral devices; demand the
	// heavy session is not starved beyond 3× the light one's τtot.
	if th > 3*tl {
		t.Fatalf("heavy session τ=%v vs light τ=%v: partition ignores demand", th, tl)
	}
}

// TestConcurrentAcquireRelease exercises the pool from many goroutines
// (run with -race) and checks disjointness at every observed epoch.
func TestConcurrentAcquireRelease(t *testing.T) {
	base := device.SysNFF()
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				l, err := p.Acquire(wl1080p(1 + (g+i)%4))
				if err != nil {
					if err == ErrExhausted {
						continue
					}
					t.Error(err)
					return
				}
				sub, _ := l.Snapshot()
				if sub == nil || sub.NumDevices() == 0 || sub.Validate() != nil {
					t.Errorf("bad snapshot for lease %d", l.ID())
				}
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	if p.Sessions() != 0 {
		t.Fatalf("%d sessions leaked", p.Sessions())
	}
}

// TestMarkDownRepartitionsAwayFromLostDevice: losing a device shrinks the
// active leases onto the survivors, keeps them disjoint, and advances the
// epoch; recovery re-expands them.
func TestMarkDownRepartitionsAwayFromLostDevice(t *testing.T) {
	base := device.SysNFF() // 6 devices
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	var leases []*Lease
	for i := 0; i < 3; i++ {
		l, err := p.Acquire(wl1080p(1))
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	before := p.Epoch()
	if !p.MarkDown(0) {
		t.Fatal("MarkDown(0) returned false")
	}
	if p.Epoch() == before {
		t.Fatal("MarkDown did not advance the epoch")
	}
	if got := p.UpDevices(); got != 5 {
		t.Fatalf("UpDevices = %d after one loss, want 5", got)
	}
	assertDisjoint(t, base, leases)
	for _, l := range leases {
		for _, d := range l.Devices() {
			if d == 0 {
				t.Fatalf("lease %d still holds the lost device", l.ID())
			}
		}
	}
	if p.MarkDown(0) {
		t.Fatal("second MarkDown(0) should be a no-op")
	}
	if !p.MarkUp(0) {
		t.Fatal("MarkUp(0) returned false")
	}
	if got := p.UpDevices(); got != 6 {
		t.Fatalf("UpDevices = %d after recovery, want 6", got)
	}
	assertDisjoint(t, base, leases)
}

// TestMarkDownOrphansNewestLease: with every up device leased, losing one
// orphans the newest session (nil snapshot) while older sessions keep
// service; recovery re-serves it.
func TestMarkDownOrphansNewestLease(t *testing.T) {
	base := device.SysNFF()
	p, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	var leases []*Lease
	for i := 0; i < 6; i++ {
		l, err := p.Acquire(wl1080p(1))
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, l)
	}
	if !p.MarkDown(3) {
		t.Fatal("MarkDown(3) returned false")
	}
	newest := leases[len(leases)-1]
	if sub, _ := newest.Snapshot(); sub != nil {
		t.Fatalf("newest lease still has platform %q, want orphaned", sub.Name)
	}
	if tau := newest.PredictedTau(); !math.IsInf(tau, 1) {
		t.Fatalf("orphaned lease predicted tau = %v, want +Inf", tau)
	}
	assertDisjoint(t, base, leases[:5])
	if _, err := p.Acquire(wl1080p(1)); err != ErrExhausted {
		t.Fatalf("acquire on a full degraded pool: err = %v, want ErrExhausted", err)
	}
	if !p.MarkUp(3) {
		t.Fatal("MarkUp(3) returned false")
	}
	if sub, _ := newest.Snapshot(); sub == nil {
		t.Fatal("recovery did not re-serve the orphaned lease")
	}
	assertDisjoint(t, base, leases)
}

// TestMarkDownNeverTakesLastDevice: the pool refuses to lose its last up
// device, so it stays serviceable no matter what sessions report.
func TestMarkDownNeverTakesLastDevice(t *testing.T) {
	p, err := New(device.SysNF()) // 5 devices
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if !p.MarkDown(d) {
			t.Fatalf("MarkDown(%d) returned false", d)
		}
	}
	if p.MarkDown(4) {
		t.Fatal("pool gave away its last up device")
	}
	if got := p.UpDevices(); got != 1 {
		t.Fatalf("UpDevices = %d, want 1", got)
	}
	if p.MarkDown(-1) || p.MarkDown(99) {
		t.Fatal("out-of-range MarkDown returned true")
	}
}

// TestConcurrentMarkDownAndLeaseChurn hammers device loss/recovery against
// session arrivals and departures — the race-detector coverage for the
// failover re-partition path.
func TestConcurrentMarkDownAndLeaseChurn(t *testing.T) {
	p, err := New(device.SysNFF())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if l, err := p.Acquire(wl1080p(1)); err == nil {
					l.Snapshot()
					l.PredictedTau()
					l.Release()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			dev := i % 3
			if p.MarkDown(dev) {
				p.MarkUp(dev)
			}
		}
	}()
	wg.Wait()
	if got := p.UpDevices(); got != 6 {
		t.Fatalf("UpDevices = %d after churn, want 6", got)
	}
}
