// Package pool is the multi-tenant device-pool manager of the FEVES
// serving subsystem: it leases disjoint, non-empty device subsets of one
// physical platform to concurrent encode sessions and re-partitions the
// pool on every session arrival and departure, equalizing the predicted
// per-session τtot with a second LP layer above the per-frame Algorithm 2
// (the fractional min-max partitioning LP of partition.go).
//
// A session holds a Lease. The lease's Snapshot returns a standalone
// device.Platform carved out of the pool (device.Subplatform), plus an
// epoch counter; when another session arrives or departs the pool
// re-partitions, the epoch advances, and the session is expected to
// re-target its framework onto the new subset at the next frame boundary
// (core.Framework.SetPlatform). Leased subsets are disjoint at every
// epoch, so tenants never contend for a device.
package pool

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"feves/internal/device"
)

// ErrExhausted is returned by Acquire when every device is already leased
// to a session; disjoint non-empty leases cap the session count at the
// device count. Callers queue and retry after a Release.
var ErrExhausted = errors.New("pool: all devices leased")

// Pool manages leases over one platform's devices.
type Pool struct {
	mu     sync.Mutex
	base   *device.Platform
	down   []bool // base-index devices lost to faults (MarkDown)
	leases map[int]*Lease
	nextID int
	epoch  uint64
}

// New creates a pool over the platform. The pool owns the platform's
// partitioning; callers must not run frameworks on base directly while
// the pool is in use.
func New(base *device.Platform) (*Pool, error) {
	if base == nil {
		return nil, fmt.Errorf("pool: no platform given")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &Pool{base: base, down: make([]bool, base.NumDevices()), leases: map[int]*Lease{}}, nil
}

// Capacity returns the maximum number of concurrent leases over the full
// physical platform (the device count). Devices currently marked down
// reduce the admittable session count below this — see UpDevices.
func (p *Pool) Capacity() int { return p.base.NumDevices() }

// UpDevices returns the number of devices currently available for
// leasing (not marked down).
func (p *Pool) UpDevices() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.upLocked())
}

// Down returns a copy of the per-device down mask (base platform
// indices).
func (p *Pool) Down() []bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]bool(nil), p.down...)
}

// upLocked lists the base indices of devices not marked down. Called
// with p.mu held.
func (p *Pool) upLocked() []int {
	up := make([]int, 0, len(p.down))
	for d, isDown := range p.down {
		if !isDown {
			up = append(up, d)
		}
	}
	return up
}

// MarkDown removes a base-platform device from the leasable set — the
// failover hook sessions call when their framework excluded the device —
// and re-partitions the remaining devices across the active leases.
// Sessions pick the shrunk subsets up at their next frame boundary. The
// last up device is never taken away (the pool stays serviceable), and
// marking an unknown or already-down device is a no-op; both return
// false.
func (p *Pool) MarkDown(dev int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dev < 0 || dev >= len(p.down) || p.down[dev] {
		return false
	}
	if len(p.upLocked()) <= 1 {
		return false
	}
	p.down[dev] = true
	p.repartition()
	return true
}

// MarkUp returns a previously lost device to the leasable set and
// re-partitions, growing the active leases (and re-serving any orphaned
// ones) at the next frame boundary. Returns false if the device is
// unknown or already up.
func (p *Pool) MarkUp(dev int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dev < 0 || dev >= len(p.down) || !p.down[dev] {
		return false
	}
	p.down[dev] = false
	p.repartition()
	return true
}

// Rate returns the pool's aggregate calibrated row rate for workload w
// over the devices currently up: rows per second if the whole node worked
// the stream jointly. This is the per-node capacity figure the fleet
// router's third-level LP balances session placement against.
func (p *Pool) Rate(w device.Workload) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum float64
	for _, d := range p.upLocked() {
		sum += rowRate(p.base.Dev(d), w)
	}
	return sum
}

// Sessions returns the number of active leases.
func (p *Pool) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.leases)
}

// Epoch returns the current partition epoch; it advances on every
// arrival and departure.
func (p *Pool) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// DeviceState describes one base-platform device for introspection.
type DeviceState struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Down  bool   `json:"down"`
	// Lease is the id of the lease currently holding the device, or -1.
	Lease int `json:"lease"`
}

// LeaseState describes one active lease for introspection.
type LeaseState struct {
	ID      int   `json:"id"`
	Devices []int `json:"devices"`
	Epoch   uint64 `json:"epoch"`
	// PredTau is the partitioner's equalized τtot estimate; +Inf (rendered
	// as orphaned=true) when device loss left the lease without devices.
	PredTau  float64 `json:"pred_tau,omitempty"`
	Orphaned bool    `json:"orphaned,omitempty"`
}

// State describes the pool's live topology — the /debug/state document's
// pool section.
type State struct {
	Epoch    uint64        `json:"epoch"`
	Capacity int           `json:"capacity"`
	Up       int           `json:"up"`
	Devices  []DeviceState `json:"devices"`
	Leases   []LeaseState  `json:"leases"`
}

// State snapshots the pool topology: every base device with its down flag
// and holding lease, and every active lease with its devices, epoch and
// predicted τ. Safe for concurrent use.
func (p *Pool) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := State{
		Epoch:    p.epoch,
		Capacity: p.base.NumDevices(),
		Up:       len(p.upLocked()),
		Devices:  make([]DeviceState, p.base.NumDevices()),
	}
	holder := make(map[int]int, p.base.NumDevices())
	ids := make([]int, 0, len(p.leases))
	for id := range p.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := p.leases[id]
		for _, d := range l.devices {
			holder[d] = id
		}
		ls := LeaseState{ID: id, Devices: append([]int(nil), l.devices...), Epoch: l.epoch}
		if math.IsInf(l.predTau, 1) {
			ls.Orphaned = true
		} else {
			ls.PredTau = l.predTau
		}
		s.Leases = append(s.Leases, ls)
	}
	for i := range s.Devices {
		lease := -1
		if id, ok := holder[i]; ok {
			lease = id
		}
		s.Devices[i] = DeviceState{
			Index: i, Name: p.base.Dev(i).Name, Down: p.down[i], Lease: lease,
		}
	}
	return s
}

// Lease is one session's claim on a disjoint device subset.
type Lease struct {
	pool *Pool
	id   int
	w    device.Workload

	// Guarded by pool.mu.
	devices  []int
	sub      *device.Platform
	epoch    uint64
	predTau  float64
	released bool
}

// Acquire admits a session with the given standing workload (frame
// geometry, search area, reference count — the weight the partitioner
// equalizes with) and re-partitions the pool. It fails with ErrExhausted
// when the pool already runs one session per device.
func (p *Pool) Acquire(w device.Workload) (*Lease, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.leases) >= len(p.upLocked()) {
		return nil, ErrExhausted
	}
	l := &Lease{pool: p, id: p.nextID, w: w}
	p.nextID++
	p.leases[l.id] = l
	p.repartition()
	return l, nil
}

// repartition rebalances the up devices across the active leases and
// advances the epoch. Called with p.mu held; the partitioner guarantees
// disjoint non-empty subsets whenever served sessions ≤ up devices, so
// Subplatform cannot fail here. Device loss can leave fewer up devices
// than sessions; then the oldest sessions keep service and the newest
// are orphaned — nil snapshot, infinite predicted τ — until a device
// recovers or a lease departs.
func (p *Pool) repartition() {
	p.epoch++
	if len(p.leases) == 0 {
		return
	}
	up := p.upLocked()
	ids := make([]int, 0, len(p.leases))
	for id := range p.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	served := ids
	if len(served) > len(up) {
		served = ids[:len(up)]
	}
	ds := make([]demand, len(served))
	for i, id := range served {
		ds[i] = demand{id: id, w: p.leases[id].w}
	}
	sets, taus := partitionDevices(p.base, ds, up)
	for i, id := range served {
		l := p.leases[id]
		sub, err := p.base.Subplatform(fmt.Sprintf("%s/lease%d", p.base.Name, id), sets[i])
		if err != nil {
			panic(fmt.Sprintf("pool: invariant broken: %v", err))
		}
		l.devices = sets[i]
		l.sub = sub
		l.epoch = p.epoch
		l.predTau = taus[i]
	}
	for _, id := range ids[len(served):] {
		l := p.leases[id]
		l.devices = nil
		l.sub = nil
		l.epoch = p.epoch
		l.predTau = math.Inf(1)
	}
}

// ID returns the lease's session identifier (unique within the pool).
func (l *Lease) ID() int { return l.id }

// Devices returns the currently leased device indices of the parent
// platform, sorted ascending.
func (l *Lease) Devices() []int {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return append([]int(nil), l.devices...)
}

// Snapshot returns the leased subset as a standalone platform together
// with the partition epoch it belongs to. Sessions compare the epoch at
// each frame boundary and re-target their framework when it advanced. A
// nil platform means the lease is orphaned: device loss left fewer up
// devices than sessions and this session drew the short straw until a
// device recovers or another lease departs.
func (l *Lease) Snapshot() (*device.Platform, uint64) {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.sub, l.epoch
}

// PredictedTau returns the pool partitioner's τtot estimate for this
// session under the current lease — the quantity the second LP layer
// equalizes across tenants.
func (l *Lease) PredictedTau() float64 {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.predTau
}

// Release returns the devices to the pool and re-partitions the remaining
// sessions. It is idempotent.
func (l *Lease) Release() {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	delete(l.pool.leases, l.id)
	l.pool.repartition()
}
