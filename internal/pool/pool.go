// Package pool is the multi-tenant device-pool manager of the FEVES
// serving subsystem: it leases disjoint, non-empty device subsets of one
// physical platform to concurrent encode sessions and re-partitions the
// pool on every session arrival and departure, equalizing the predicted
// per-session τtot with a second LP layer above the per-frame Algorithm 2
// (the fractional min-max partitioning LP of partition.go).
//
// A session holds a Lease. The lease's Snapshot returns a standalone
// device.Platform carved out of the pool (device.Subplatform), plus an
// epoch counter; when another session arrives or departs the pool
// re-partitions, the epoch advances, and the session is expected to
// re-target its framework onto the new subset at the next frame boundary
// (core.Framework.SetPlatform). Leased subsets are disjoint at every
// epoch, so tenants never contend for a device.
package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"feves/internal/device"
)

// ErrExhausted is returned by Acquire when every device is already leased
// to a session; disjoint non-empty leases cap the session count at the
// device count. Callers queue and retry after a Release.
var ErrExhausted = errors.New("pool: all devices leased")

// Pool manages leases over one platform's devices.
type Pool struct {
	mu     sync.Mutex
	base   *device.Platform
	leases map[int]*Lease
	nextID int
	epoch  uint64
}

// New creates a pool over the platform. The pool owns the platform's
// partitioning; callers must not run frameworks on base directly while
// the pool is in use.
func New(base *device.Platform) (*Pool, error) {
	if base == nil {
		return nil, fmt.Errorf("pool: no platform given")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return &Pool{base: base, leases: map[int]*Lease{}}, nil
}

// Capacity returns the maximum number of concurrent leases (the device
// count).
func (p *Pool) Capacity() int { return p.base.NumDevices() }

// Sessions returns the number of active leases.
func (p *Pool) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.leases)
}

// Epoch returns the current partition epoch; it advances on every
// arrival and departure.
func (p *Pool) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Lease is one session's claim on a disjoint device subset.
type Lease struct {
	pool *Pool
	id   int
	w    device.Workload

	// Guarded by pool.mu.
	devices  []int
	sub      *device.Platform
	epoch    uint64
	predTau  float64
	released bool
}

// Acquire admits a session with the given standing workload (frame
// geometry, search area, reference count — the weight the partitioner
// equalizes with) and re-partitions the pool. It fails with ErrExhausted
// when the pool already runs one session per device.
func (p *Pool) Acquire(w device.Workload) (*Lease, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.leases) >= p.base.NumDevices() {
		return nil, ErrExhausted
	}
	l := &Lease{pool: p, id: p.nextID, w: w}
	p.nextID++
	p.leases[l.id] = l
	p.repartition()
	return l, nil
}

// repartition rebalances the device subsets across the active leases and
// advances the epoch. Called with p.mu held; the partitioner guarantees
// disjoint non-empty subsets whenever sessions ≤ devices, so Subplatform
// cannot fail here.
func (p *Pool) repartition() {
	p.epoch++
	if len(p.leases) == 0 {
		return
	}
	ids := make([]int, 0, len(p.leases))
	for id := range p.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ds := make([]demand, len(ids))
	for i, id := range ids {
		ds[i] = demand{id: id, w: p.leases[id].w}
	}
	sets, taus := partitionDevices(p.base, ds)
	for i, id := range ids {
		l := p.leases[id]
		sub, err := p.base.Subplatform(fmt.Sprintf("%s/lease%d", p.base.Name, id), sets[i])
		if err != nil {
			panic(fmt.Sprintf("pool: invariant broken: %v", err))
		}
		l.devices = sets[i]
		l.sub = sub
		l.epoch = p.epoch
		l.predTau = taus[i]
	}
}

// ID returns the lease's session identifier (unique within the pool).
func (l *Lease) ID() int { return l.id }

// Devices returns the currently leased device indices of the parent
// platform, sorted ascending.
func (l *Lease) Devices() []int {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return append([]int(nil), l.devices...)
}

// Snapshot returns the leased subset as a standalone platform together
// with the partition epoch it belongs to. Sessions compare the epoch at
// each frame boundary and re-target their framework when it advanced.
func (l *Lease) Snapshot() (*device.Platform, uint64) {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.sub, l.epoch
}

// PredictedTau returns the pool partitioner's τtot estimate for this
// session under the current lease — the quantity the second LP layer
// equalizes across tenants.
func (l *Lease) PredictedTau() float64 {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	return l.predTau
}

// Release returns the devices to the pool and re-partitions the remaining
// sessions. It is idempotent.
func (l *Lease) Release() {
	l.pool.mu.Lock()
	defer l.pool.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	delete(l.pool.leases, l.id)
	l.pool.repartition()
}
