package pool

import (
	"math"
	"sort"

	"feves/internal/device"
	"feves/internal/lp"
)

// demand is one session's standing workload, the weight the partitioner
// equalizes across tenants.
type demand struct {
	id int
	w  device.Workload
}

// rowRate returns device d's row throughput for a workload: rows per
// second of the serialized inter-loop work (ME+INT+SME+R*). Transfers and
// overlap are ignored — the per-frame LP inside each session handles
// those; the pool layer only needs a coarse relative speed, and the
// kernel-coefficient sum preserves exactly the device ratios the per-frame
// model converges to.
func rowRate(p device.Profile, w device.Workload) float64 {
	per := p.KME(w) + p.KINT(w) + p.KSME(w) + p.KRStar(w)
	if per <= 0 {
		return 0
	}
	return 1 / per
}

// RowRate exposes the calibrated per-device row rate the partitioner
// balances with. The fleet layer sums it over a node's up devices to get
// the node capacity its third-level routing LP weighs nodes by — the same
// yardstick at every level of the scheduling hierarchy.
func RowRate(p device.Profile, w device.Workload) float64 { return rowRate(p, w) }

// partitionDevices splits the platform's up devices (the base indices in
// up, ascending) into disjoint non-empty subsets, one per demand,
// minimizing the worst predicted per-session τtot ≈ rows / Σ leased
// row-rates. It first solves the fractional relaxation as a linear
// program — the second LP layer above the per-frame Algorithm 2 — and
// rounds device-wise; if the LP fails or the rounding starves a session,
// a deterministic LPT-style greedy takes over. Requires
// 1 ≤ len(ds) ≤ len(up). The returned sets hold base platform indices.
func partitionDevices(base *device.Platform, ds []demand, up []int) (sets [][]int, taus []float64) {
	nd := len(up)
	rates := make([][]float64, len(ds)) // rates[s][j] over up[j]
	for s, dm := range ds {
		rates[s] = make([]float64, nd)
		for j, d := range up {
			rates[s][j] = rowRate(base.Dev(d), dm.w)
		}
	}
	sets = partitionLP(ds, rates, nd)
	if sets == nil {
		sets = partitionGreedy(ds, rates, nd)
	}
	taus = make([]float64, len(ds))
	for s, set := range sets {
		var rate float64
		for _, j := range set {
			rate += rates[s][j]
		}
		if rate > 0 {
			taus[s] = float64(ds[s].w.Rows()) / rate
		}
		// Translate the partitioner's compact indices back to base ones.
		for k, j := range set {
			set[k] = up[j]
		}
	}
	return sets, taus
}

// partitionLP solves the fractional partitioning LP
//
//	maximize  z
//	s.t.      Σ_s x[s,d] ≤ 1                     (each device leased once)
//	          Σ_d r[s,d]·x[s,d] ≥ z·rows_s       (session speed floor)
//	          x ≥ 0
//
// and rounds each device to the session with the largest fractional
// share. Returns nil when the LP fails or the rounding leaves a session
// with no device (the greedy fallback then decides).
func partitionLP(ds []demand, rates [][]float64, nd int) [][]int {
	ns := len(ds)
	xv := func(s, d int) int { return s*nd + d }
	zv := ns * nd
	prob := lp.New(ns*nd + 1)
	prob.Coef(zv, -1) // maximize z
	for d := 0; d < nd; d++ {
		a := make([]float64, ns*nd+1)
		for s := 0; s < ns; s++ {
			a[xv(s, d)] = 1
		}
		prob.Add(a, lp.LE, 1)
	}
	for s := 0; s < ns; s++ {
		a := make([]float64, ns*nd+1)
		for d := 0; d < nd; d++ {
			a[xv(s, d)] = rates[s][d]
		}
		a[zv] = -float64(ds[s].w.Rows())
		prob.Add(a, lp.GE, 0)
	}
	x, _, err := prob.Solve()
	if err != nil {
		return nil
	}
	sets := make([][]int, ns)
	for d := 0; d < nd; d++ {
		best, bestShare := 0, math.Inf(-1)
		for s := 0; s < ns; s++ {
			if share := x[xv(s, d)]; share > bestShare+1e-12 {
				best, bestShare = s, share
			}
		}
		sets[best] = append(sets[best], d)
	}
	for _, set := range sets {
		if len(set) == 0 {
			return nil
		}
	}
	return sets
}

// partitionGreedy is the deterministic fallback: devices in descending
// mean-rate order, each assigned to the session whose predicted τtot is
// currently worst (sessions with no device yet are infinitely slow, so
// every session gets one before any gets two).
func partitionGreedy(ds []demand, rates [][]float64, nd int) [][]int {
	ns := len(ds)
	order := make([]int, nd)
	mean := make([]float64, nd)
	for d := 0; d < nd; d++ {
		order[d] = d
		for s := 0; s < ns; s++ {
			mean[d] += rates[s][d]
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return mean[order[i]] > mean[order[j]] })

	sets := make([][]int, ns)
	speed := make([]float64, ns) // Σ leased rates per session
	for _, d := range order {
		worst, worstTau := 0, math.Inf(-1)
		for s := 0; s < ns; s++ {
			// Unserved sessions are infinitely slow and come first; among
			// those, the one with the most rows.
			tau := math.Inf(1)
			if speed[s] > 0 {
				tau = float64(ds[s].w.Rows()) / speed[s]
			}
			if tau > worstTau || (tau == worstTau && math.IsInf(tau, 1) &&
				ds[s].w.Rows() > ds[worst].w.Rows()) {
				worst, worstTau = s, tau
			}
		}
		sets[worst] = append(sets[worst], d)
		speed[worst] += rates[worst][d]
	}
	for s := range sets {
		sort.Ints(sets[s])
	}
	return sets
}
