package bench

import (
	"math/rand"
	"time"

	"feves/internal/h264"
	"feves/internal/h264/deblock"
	"feves/internal/h264/interp"
	"feves/internal/h264/me"
	"feves/internal/h264/sme"
	"feves/internal/video"
)

// minCallNs times fn over iters calls and returns the fastest single call
// in nanoseconds — the usual noise-robust statistic for short wall-clock
// kernels on a shared machine.
func minCallNs(iters int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// perfKernels measures the restructured hot kernels against the retained
// scalar reference implementations on one CIF frame: per-macroblock cost
// of the optimized kernel (informational — absolute wall-clock does not
// gate) and its speedup over the reference (gated — the ratio divides out
// machine speed, and a regression here means a kernel rewrite lost its
// optimization). These speedups are also what DefaultCalibration anchors
// the shipped device profiles to.
func perfKernels(add func(name string, value float64, unit, dir string, slop float64)) {
	const w, h = 352, 288
	src := video.NewSyntheticClass(w, h, 2, 5, video.MediumMotion)
	ref, cur := src.FrameAt(0), src.FrameAt(1)
	mbw, mbh := cur.MBWidth(), cur.MBHeight()
	mbs := float64(mbw * mbh)
	dpb := h264.NewDPB(1)
	dpb.Push(ref)
	cfg := me.Config{SearchRange: 16}

	meField := h264.NewMVField(mbw, mbh, 1)
	meFast := minCallNs(4, func() { me.SearchRows(cur, dpb, cfg, meField, 0, mbh) })
	meRef := minCallNs(2, func() { me.SearchRowsRef(cur, dpb, cfg, meField, 0, mbh) })
	add("kernel_me_ns_mb", meFast/mbs, "ns/MB", "info", 0)
	add("kernel_me_speedup", meRef/meFast, "ratio", "higher", 1.0)

	sf := interp.NewSubFrame(w, h)
	intFast := minCallNs(12, func() { interp.InterpolateRows(ref.Y, sf, 0, mbh) })
	intRef := minCallNs(6, func() { interp.InterpolateRowsRef(ref.Y, sf, 0, mbh) })
	sf.ExtendBorders()
	add("kernel_int_ns_mb", intFast/mbs, "ns/MB", "info", 0)
	add("kernel_int_speedup", intRef/intFast, "ratio", "info", 0)

	sfs := []*interp.SubFrame{sf}
	out := h264.NewMVField(mbw, mbh, 1)
	smeFast := minCallNs(4, func() { sme.RefineRows(cur, sfs, meField, out, 0, mbh) })
	smeRef := minCallNs(2, func() { sme.RefineRowsRef(cur, sfs, meField, out, 0, mbh) })
	add("kernel_sme_ns_mb", smeFast/mbs, "ns/MB", "info", 0)
	add("kernel_sme_speedup", smeRef/smeFast, "ratio", "higher", 2.0)

	// Deblock on textured content with a realistic scatter of coded
	// blocks; the frame restore runs outside the timed region.
	rng := rand.New(rand.NewSource(9))
	bi := deblock.NewBlockInfo(w, h)
	for i := range bi.NZ {
		bi.NZ[i] = rng.Intn(3) == 0
	}
	g := cur.Clone()
	restore := func() {
		g.Y.CopyFrom(cur.Y)
		g.Cb.CopyFrom(cur.Cb)
		g.Cr.CopyFrom(cur.Cr)
	}
	timeFilter := func(iters int, filter func()) float64 {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < iters; i++ {
			restore()
			start := time.Now()
			filter()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds())
	}
	dblFast := timeFilter(20, func() { deblock.FilterFrame(g, bi, 30) })
	dblRef := timeFilter(10, func() { deblock.FilterFrameRef(g, bi, 30) })
	add("kernel_dbl_ns_mb", dblFast/mbs, "ns/MB", "info", 0)
	add("kernel_dbl_speedup", dblRef/dblFast, "ratio", "higher", 0.3)
}
