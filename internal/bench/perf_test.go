package bench

import (
	"strings"
	"testing"
)

func report(metrics ...PerfMetric) PerfReport { return PerfReport{Metrics: metrics} }

func TestComparePerfGates(t *testing.T) {
	base := report(
		PerfMetric{Name: "fps", Value: 50, Unit: "fps", Direction: "higher"},
		PerfMetric{Name: "allocs", Value: 0, Unit: "allocs/frame", Direction: "lower", Slop: 0.5},
		PerfMetric{Name: "wall", Value: 80, Unit: "us", Direction: "info"},
	)
	cases := []struct {
		name  string
		cur   PerfReport
		fails int
		want  string
	}{
		{"identical passes", base, 0, ""},
		{"within tolerance passes", report(
			PerfMetric{Name: "fps", Value: 44, Direction: "higher"},
			PerfMetric{Name: "allocs", Value: 0.4, Direction: "lower"},
			PerfMetric{Name: "wall", Value: 80, Direction: "info"},
		), 0, ""},
		{"fps regression fails", report(
			PerfMetric{Name: "fps", Value: 40, Direction: "higher"},
			PerfMetric{Name: "allocs", Value: 0, Direction: "lower"},
			PerfMetric{Name: "wall", Value: 80, Direction: "info"},
		), 1, "fps"},
		{"alloc regression beyond slop fails", report(
			PerfMetric{Name: "fps", Value: 50, Direction: "higher"},
			PerfMetric{Name: "allocs", Value: 2, Direction: "lower"},
			PerfMetric{Name: "wall", Value: 80, Direction: "info"},
		), 1, "allocs"},
		{"wall-clock blowup is informational only", report(
			PerfMetric{Name: "fps", Value: 50, Direction: "higher"},
			PerfMetric{Name: "allocs", Value: 0, Direction: "lower"},
			PerfMetric{Name: "wall", Value: 8000, Direction: "info"},
		), 0, ""},
		{"dropping a gated metric fails", report(
			PerfMetric{Name: "fps", Value: 50, Direction: "higher"},
			PerfMetric{Name: "wall", Value: 80, Direction: "info"},
		), 1, "allocs"},
		{"dropping an info metric passes", report(
			PerfMetric{Name: "fps", Value: 50, Direction: "higher"},
			PerfMetric{Name: "allocs", Value: 0, Direction: "lower"},
		), 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fails := ComparePerf(base, tc.cur, 0.15)
			if len(fails) != tc.fails {
				t.Fatalf("got %d failures %v, want %d", len(fails), fails, tc.fails)
			}
			if tc.want != "" && !strings.Contains(fails[0], tc.want) {
				t.Fatalf("failure %q does not mention %q", fails[0], tc.want)
			}
		})
	}
}

// TestPerfReportMetrics pins the gated metric set: CI compares by name,
// so renaming or dropping one silently weakens the regression gate —
// this test makes that a deliberate, reviewed change (with a matching
// BENCH_10.json refresh).
func TestPerfReportMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full perf measurement loop")
	}
	r := Perf()
	got := map[string]string{}
	for _, m := range r.Metrics {
		got[m.Name] = m.Direction
	}
	want := map[string]string{
		"steady_fps_syshk":           "higher",
		"steady_fps_sysnff":          "higher",
		"steady_fps_syshk_fp":        "higher",
		"fp_speedup":                 "higher",
		"frame_allocs":               "lower",
		"frame_bytes":                "lower",
		"pair_frame_allocs":          "lower",
		"pair_frame_bytes":           "lower",
		"lp_warm_rate":               "higher",
		"lp_pivots_per_solve":        "lower",
		"sched_overhead_us":          "info",
		"fleet_lp_route_rate":        "higher",
		"fleet_lp_warm_rate":         "higher",
		"fleet_submit_us":            "info",
		"fleet_shed_rate":            "higher",
		"fleet_speculative_releases": "higher",
		"kernel_me_ns_mb":            "info",
		"kernel_me_speedup":          "higher",
		"kernel_int_ns_mb":           "info",
		"kernel_int_speedup":         "info",
		"kernel_sme_ns_mb":           "info",
		"kernel_sme_speedup":         "higher",
		"kernel_dbl_ns_mb":           "info",
		"kernel_dbl_speedup":         "higher",
	}
	for name, dir := range want {
		if got[name] != dir {
			t.Errorf("metric %s: direction %q, want %q", name, got[name], dir)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d metrics %v, want %d", len(got), got, len(want))
	}
	table := PerfTable(r)
	if len(table.Rows) != len(r.Metrics) {
		t.Errorf("PerfTable has %d rows for %d metrics", len(table.Rows), len(r.Metrics))
	}
}
