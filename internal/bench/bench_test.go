package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig6aShape(t *testing.T) {
	series := Fig6a()
	if len(series) != 7 {
		t.Fatalf("%d series, want 7", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Label] = s
		// fps strictly decreases with SA (ME load quadruples each step).
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Errorf("%s: fps did not fall between SA %g and %g (%v)", s.Label, s.X[i-1], s.X[i], s.Y)
			}
		}
	}
	// Paper claims at SA 32, 1 RF: both GPUs real-time; all three systems
	// real-time; CPUs not; SysHK real-time even at SA 64.
	rt := func(name string, idx int) bool { return byName[name].Y[idx] >= 25 }
	for _, name := range []string{"GPU_F", "GPU_K", "SysNF", "SysNFF", "SysHK"} {
		if !rt(name, 0) {
			t.Errorf("%s should be real-time at SA 32: %v fps", name, byName[name].Y[0])
		}
	}
	for _, name := range []string{"CPU_N", "CPU_H"} {
		if rt(name, 0) {
			t.Errorf("%s should not be real-time: %v fps", name, byName[name].Y[0])
		}
	}
	if !rt("SysHK", 1) {
		t.Errorf("SysHK should stay real-time at SA 64: %v fps", byName["SysHK"].Y[1])
	}
	// Every system beats its constituent single devices at every SA.
	for i := range byName["SysHK"].Y {
		if byName["SysHK"].Y[i] <= byName["GPU_K"].Y[i] {
			t.Errorf("SysHK not above GPU_K at SA %g", byName["SysHK"].X[i])
		}
		if byName["SysNFF"].Y[i] <= byName["GPU_F"].Y[i] {
			t.Errorf("SysNFF not above GPU_F at SA %g", byName["SysNFF"].X[i])
		}
	}
}

func TestFig6bShape(t *testing.T) {
	series := Fig6b()
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Label] = s
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Errorf("%s: fps did not fall from %g to %g RFs", s.Label, s.X[i-1], s.X[i])
			}
		}
	}
	// Paper: SysHK real-time up to 4 RFs, outperforming SysNFF and SysNF.
	sysHK := byName["SysHK"].Y
	if sysHK[3] < 25 {
		t.Errorf("SysHK at 4 RFs = %.1f fps, paper says real-time", sysHK[3])
	}
	if sysHK[7] >= 25 {
		t.Errorf("SysHK at 8 RFs = %.1f fps, should be below real-time", sysHK[7])
	}
	for i := range sysHK {
		if sysHK[i] <= byName["SysNFF"].Y[i] || sysHK[i] <= byName["SysNF"].Y[i] {
			t.Errorf("SysHK should outperform SysNFF and SysNF at %g RFs", byName["SysHK"].X[i])
		}
	}
}

func TestFig7aShape(t *testing.T) {
	series := Fig7a()
	if len(series) != 2 || len(series[0].Y) != 100 {
		t.Fatalf("want 2 series of 100 frames")
	}
	for _, s := range series {
		// Frame 1 (equidistant) is slower than the balanced steady state.
		tail := avg(s.Y[10:])
		if s.Y[0] <= tail {
			t.Errorf("%s: equidistant frame 1 (%.1f ms) should exceed steady %.1f ms", s.Label, s.Y[0], tail)
		}
		// Near-constant steady state: relative spread below 20%. (The
		// balancer occasionally flips between near-equivalent optima under
		// the 2% kernel jitter, giving brief ≈10% excursions, like the
		// small wiggles visible in the paper's Fig. 7(a).)
		lo, hi := minMax(s.Y[10:])
		if (hi-lo)/tail > 0.20 {
			t.Errorf("%s: steady state not near-constant (%.1f..%.1f ms)", s.Label, lo, hi)
		}
	}
	// 1 RF real-time at SA 64 (≤40 ms), as the paper reports.
	if avg(series[0].Y[10:]) > 40 {
		t.Errorf("1RF steady %.1f ms, want ≤40 (real-time)", avg(series[0].Y[10:]))
	}
}

func TestFig7bShape(t *testing.T) {
	series := Fig7b()
	if len(series) != 5 {
		t.Fatalf("want 5 RF series")
	}
	// Ramp-up slopes: inter-frame f searches min(f, rf) references, so for
	// rf ≥ 3 the time keeps rising from frame 2 (2 usable refs) until
	// frame rf (rf usable refs) — the slopes of Fig. 7(b).
	for i, s := range series {
		rf := i + 1
		if rf >= 3 {
			if s.Y[rf-1] <= s.Y[1] {
				t.Errorf("%dRF: no ramp-up slope (frame %d %.1f ms vs frame 2 %.1f ms)", rf, rf, s.Y[rf-1], s.Y[1])
			}
		}
	}
	// 4 RFs stays real-time (≤40 ms steady), 5 RFs does not.
	if v := avg(series[3].Y[20:60]); v > 40 {
		t.Errorf("4RF steady %.1f ms, want real-time", v)
	}
	if v := avg(series[4].Y[20:60]); v < 40 {
		t.Errorf("5RF steady %.1f ms, expected above real-time", v)
	}
	// Perturbation spikes at the paper's frames, with fast recovery.
	oneRF := series[0].Y
	base := avg(oneRF[10:60])
	for _, f := range []int{76, 81} {
		if oneRF[f-1] < base*1.5 {
			t.Errorf("1RF: no spike at frame %d (%.1f ms vs base %.1f ms)", f, oneRF[f-1], base)
		}
		if oneRF[f+1] > base*1.25 {
			t.Errorf("1RF: frame %d did not recover (%.1f ms vs base %.1f ms)", f+2, oneRF[f+1], base)
		}
	}
	twoRF := series[1].Y
	base2 := avg(twoRF[40:60])
	for _, f := range []int{31, 71, 92} {
		if twoRF[f-1] < base2*1.5 {
			t.Errorf("2RF: no spike at frame %d", f)
		}
	}
}

func TestSpeedupsTable(t *testing.T) {
	tab := Speedups()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	get := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][2], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// SysHK vs GPU_K ≈ 1.3.
	if v := get(0); v < 1.1 || v > 1.6 {
		t.Errorf("SysHK/GPU_K = %v, paper ~1.3", v)
	}
	// SysHK vs CPU_H ≈ 3.
	if v := get(1); v < 2.3 || v > 4.5 {
		t.Errorf("SysHK/CPU_H = %v, paper ~3", v)
	}
	// SysNFF vs GPU_F up to 2.2.
	if v := get(2); v < 1.8 || v > 2.6 {
		t.Errorf("SysNFF/GPU_F = %v, paper up to 2.2", v)
	}
	// SysNFF vs CPU_N ≈ 5.
	if v := get(3); v < 3.5 || v > 7 {
		t.Errorf("SysNFF/CPU_N = %v, paper ~5", v)
	}
}

func TestOverheadTable(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget: race instrumentation slows the LP ~10x")
	}
	tab := Overhead()
	worst, err := strconv.ParseFloat(tab.Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if worst >= 2 {
		t.Errorf("worst scheduling overhead %.3f ms exceeds the paper's 2 ms", worst)
	}
}

func TestModuleShareTable(t *testing.T) {
	tab := ModuleShare()
	for _, row := range tab.Rows {
		share, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if share < 80 || share > 98 {
			t.Errorf("%s: ME+INT+SME share %.1f%%, paper says ≈90%%", row[0], share)
		}
	}
}

func TestAblationBalancers(t *testing.T) {
	tab := AblationBalancers()
	for _, row := range tab.Rows {
		lp, _ := strconv.ParseFloat(row[1], 64)
		eq, _ := strconv.ParseFloat(row[3], 64)
		if lp <= eq {
			t.Errorf("%s: LP (%.1f) should beat equidistant (%.1f)", row[0], lp, eq)
		}
	}
}

func TestAblationEngines(t *testing.T) {
	tab := AblationEngines()
	parse := func(i int) float64 {
		v, _ := strconv.ParseFloat(tab.Rows[i][1], 64)
		return v
	}
	paper, dual, noReuse := parse(0), parse(1), parse(2)
	if dual < paper*0.99 {
		t.Errorf("dual copy engines (%.1f fps) should not lose to single (%.1f fps)", dual, paper)
	}
	if noReuse > paper {
		t.Errorf("disabling data reuse (%.1f fps) should not beat the paper design (%.1f fps)", noReuse, paper)
	}
}

func TestFormatters(t *testing.T) {
	s := FormatSeries("t", "x", []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}})
	if !strings.Contains(s, "# t") || !strings.Contains(s, "3.00") {
		t.Fatalf("series format:\n%s", s)
	}
	if FormatSeries("empty", "x", nil) == "" {
		t.Fatal("empty series format")
	}
	tab := FormatTable(Table{Title: "T", Columns: []string{"a", "b"}, Rows: [][]string{{"1", "22"}}})
	if !strings.Contains(tab, "# T") || !strings.Contains(tab, "22") {
		t.Fatalf("table format:\n%s", tab)
	}
}

func avg(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

func TestAblationIncludesMEOffload(t *testing.T) {
	tab := AblationBalancers()
	if len(tab.Columns) != 5 {
		t.Fatalf("columns %v", tab.Columns)
	}
	var nf, nff float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		lp, _ := strconv.ParseFloat(row[1], 64)
		if v >= lp {
			t.Errorf("%s: ME offload (%.1f) should lose to full collaboration (%.1f)", row[0], v, lp)
		}
		switch row[0] {
		case "SysNF":
			nf = v
		case "SysNFF":
			nff = v
		}
	}
	// The paper's scalability argument: single-module offload cannot use a
	// second GPU, so SysNFF ≈ SysNF under it.
	if nff > nf*1.1 {
		t.Errorf("ME offload scaled with a second GPU (%.1f vs %.1f) — it must not", nff, nf)
	}
}

func TestPredictionAccuracyTable(t *testing.T) {
	tab := PredictionAccuracy()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mean, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if mean > 15 {
			t.Errorf("%s: mean prediction error %.1f%% too high", row[0], mean)
		}
	}
}

func TestWorkloadPredictabilityTable(t *testing.T) {
	tab := WorkloadPredictability()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var fullVals, diamondVals []float64
	for _, row := range tab.Rows {
		f, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		d, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		fullVals = append(fullVals, f)
		diamondVals = append(diamondVals, d)
		if d >= f {
			t.Errorf("%s: diamond (%v) not cheaper than full search (%v)", row[0], d, f)
		}
	}
	// FSBM count identical across all content classes.
	if fullVals[0] != fullVals[1] || fullVals[1] != fullVals[2] {
		t.Fatalf("full-search counts vary with content: %v", fullVals)
	}
	// Diamond count varies.
	if diamondVals[0] == diamondVals[1] && diamondVals[1] == diamondVals[2] {
		t.Fatalf("diamond counts identical across content: %v", diamondVals)
	}
}

func TestGPUScalingTable(t *testing.T) {
	tab := GPUScaling()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var fps []float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, v)
	}
	// More GPUs never hurt, and 2 GPUs must help noticeably.
	for i := 1; i < len(fps); i++ {
		if fps[i] < fps[i-1]*0.98 {
			t.Fatalf("adding GPU %d reduced fps: %v", i+1, fps)
		}
	}
	if fps[1] < fps[0]*1.25 {
		t.Fatalf("2nd GPU gained too little: %v", fps)
	}
	// Efficiency declines (Amdahl): per-GPU speedup at 4 is below at 2.
	if fps[3]/4 >= fps[1]/2 {
		t.Fatalf("no saturation visible: %v", fps)
	}
}
