package bench

import (
	"bytes"
	"fmt"
	"time"

	"feves"
	"feves/internal/core"
	"feves/internal/fleet"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/platforms"
	"feves/internal/serve"
	"feves/internal/vcm"
	"feves/internal/video"
)

// fleetNodes builds n identical nodes over fresh sysnfk platform copies,
// with distinct deterministic jitter seeds — the same convention
// cmd/feves-fleet uses for its -nodes flag.
func fleetNodes(n int) []fleet.NodeConfig {
	cfgs := make([]fleet.NodeConfig, n)
	for i := range cfgs {
		pl, err := platforms.Lookup("sysnfk")
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		pl.Seed = uint64(1000 + i)
		cfgs[i] = fleet.NodeConfig{
			Label:       fmt.Sprintf("node%d", i),
			Platform:    pl,
			MaxSessions: 8,
			QueueDepth:  32,
		}
	}
	return cfgs
}

// fleetSessionCounts routes `sessions` identical 1080p jobs across an
// n-node fleet through the real coordinator — the third-level LP over
// per-node calibrated rates — and returns how many landed on each node.
// The jobs are long enough that all six routing decisions happen before
// any job completes and releases its load, then they are cancelled: this
// phase measures placement, not encoding.
func fleetSessionCounts(n, sessions int) []int {
	f, err := fleet.New(fleet.Config{Nodes: fleetNodes(n)})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	defer f.Close()
	counts := make([]int, n)
	refs := make([]fleet.JobRef, 0, sessions)
	for i := 0; i < sessions; i++ {
		ref, err := f.Submit(serve.JobSpec{
			Mode: serve.ModeSimulate, Width: 1920, Height: 1088,
			Frames: 500, SearchArea: 32, RefFrames: 1,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		refs = append(refs, ref)
	}
	for _, ref := range refs {
		var idx int
		fmt.Sscanf(ref.Node, "node%d", &idx)
		counts[idx]++
		ref.Job.Cancel()
	}
	return counts
}

// lockstepAggregate opens k concurrent lock-stepped 1080p simulation
// sessions on one SysNFK pool — the V2 protocol — and returns their
// summed steady-state fps (mean over the last half of 20 frames each).
func lockstepAggregate(k int) float64 {
	if k == 0 {
		return 0
	}
	p, err := feves.NewPool(feves.SysNFK())
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	sessions := make([]*feves.Session, k)
	for i := range sessions {
		s, err := p.NewSimulationSession(cfg1080p(32, 1))
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		sessions[i] = s
	}
	const frames = 20
	secs := make([]float64, k)
	n := make([]int, k)
	for fr := 0; fr < frames; fr++ {
		for i, s := range sessions {
			r, err := s.Step()
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			if fr >= frames/2 && !r.Intra && r.Seconds > 0 {
				secs[i] += r.Seconds
				n[i]++
			}
		}
	}
	var aggregate float64
	for i, s := range sessions {
		if secs[i] > 0 {
			aggregate += float64(n[i]) / secs[i]
		}
		s.Close()
	}
	return aggregate
}

// FleetScaling measures V7's first half: aggregate simulated throughput
// of a fixed six-session 1080p workload as the fleet grows from one node
// to four. The fleet coordinator's third-level LP places the sessions;
// each node's pool then partitions its devices among the sessions it
// received (second-level LP), measured with V2's lock-step protocol so
// every node runs fully loaded.
func FleetScaling() Table {
	t := Table{
		Title:   "V7: aggregate fps vs node count (6 concurrent 1080p sessions, SysNFK nodes)",
		Columns: []string{"nodes", "aggregate fps", "sessions per node"},
	}
	const sessions = 6
	for n := 1; n <= 4; n++ {
		counts := fleetSessionCounts(n, sessions)
		var aggregate float64
		spread := ""
		for i, k := range counts {
			aggregate += lockstepAggregate(k)
			if i > 0 {
				spread += " "
			}
			spread += fmt.Sprintf("%d", k)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", aggregate), spread,
		})
	}
	return t
}

// fleetDeathSpec is the shared stream of FleetDeath's two runs: small
// enough to encode functionally in a benchmark, long enough for three
// GOP shards.
func fleetDeathSpec() (fleet.StreamSpec, int) {
	const w, h, frames, gop = 128, 128, 24, 8
	var buf bytes.Buffer
	src := video.NewSynthetic(w, h, frames, 7)
	for i := 0; i < frames; i++ {
		if err := video.WriteYUV(&buf, src.FrameAt(i)); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	return fleet.StreamSpec{
		Name: "death", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop, YUV: buf.Bytes(),
	}, frames
}

// fleetDeathReference encodes the stream on one whole sysnfk platform —
// the single-node baseline every sharded run must match byte for byte.
func fleetDeathReference(spec fleet.StreamSpec) []byte {
	pl, err := platforms.Lookup("sysnfk")
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	fw, err := core.New(core.Options{
		Platform: pl,
		Codec: codec.Config{Width: spec.Width, Height: spec.Height,
			SearchRange: 16, NumRF: 1, IQP: 27, PQP: 28,
			IntraPeriod: spec.IntraPeriod},
		Mode: vcm.Functional,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	fb := spec.Width * spec.Height * 3 / 2
	for i := 0; i*fb < len(spec.YUV); i++ {
		cf := h264.NewFrame(spec.Width, spec.Height)
		cf.Poc = i
		if err := cf.LoadYUV(spec.YUV[i*fb : (i+1)*fb]); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		if _, err := fw.EncodeNext(cf); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	return fw.Bitstream()
}

// FleetDeath measures V7's second half: what a mid-stream node death
// costs. A 24-frame, three-shard encode runs twice across three nodes —
// once clean, once with the node holding the last shard killed right
// after placement. The dead node's shard replays from its leading IDR on
// a survivor; the cost is the replayed frames and the detection latency,
// never correctness: both runs must equal the single-node reference with
// zero dropped frames.
func FleetDeath() Table {
	t := Table{
		Title:   "V7: cost of a mid-stream node death (24-frame encode, 3 GOP shards, 3 SysNFK nodes)",
		Columns: []string{"run", "status", "shards re-leased", "frames replayed", "detect [ticks]", "bit-exact", "dropped"},
	}
	spec, frames := fleetDeathSpec()
	want := fleetDeathReference(spec)

	for _, kill := range []bool{false, true} {
		f, err := fleet.New(fleet.Config{Nodes: fleetNodes(3), MissLimit: 2})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		st, err := f.SubmitStream(spec)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		detectTicks := 0
		if kill {
			doc := st.Status()
			f.Kill(doc.Shards[len(doc.Shards)-1].Node)
			// Tick the virtual clock until the missed-beat detector declares
			// the death (MissLimit ticks after the last heartbeat).
			for len(f.Tick()) == 0 {
				detectTicks++
				time.Sleep(time.Millisecond)
			}
			detectTicks++
		}
		status := st.Wait()

		releases, replayed := 0, 0
		for _, sh := range st.Status().Shards {
			if sh.Attempts > 1 {
				releases++
				replayed += (sh.Attempts - 1) * sh.Frames
			}
		}
		dropped := frames - len(st.Results())
		name := "clean"
		if kill {
			name = "node death mid-stream"
		}
		t.Rows = append(t.Rows, []string{
			name, string(status),
			fmt.Sprintf("%d", releases), fmt.Sprintf("%d", replayed),
			fmt.Sprintf("%d", detectTicks),
			fmt.Sprintf("%v", bytes.Equal(st.Bitstream(), want)),
			fmt.Sprintf("%d", dropped),
		})
		f.Close()
	}
	return t
}

// syntheticYUV renders frames of the deterministic synthetic source as one
// concatenated planar buffer — the JobSpec/StreamSpec input format.
func syntheticYUV(w, h, frames int) []byte {
	var buf bytes.Buffer
	src := video.NewSynthetic(w, h, frames, 7)
	for i := 0; i < frames; i++ {
		if err := video.WriteYUV(&buf, src.FrameAt(i)); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	return buf.Bytes()
}

// FleetShed measures V8: what an alive-but-backlogged node costs under
// the capacity-only router vs the queue-aware one. node0 takes three
// heavy 1080p simulations submitted directly to its server (two session
// slots, so one queues and later arrivals wait behind it) — load the
// coordinator never routed and the capacity-only view cannot see. Eight
// 30-frame probe jobs then arrive through the coordinator; the table
// reports where they landed, the shed count, aggregate probe throughput
// and the worst (p99) probe latency.
func FleetShed() Table {
	t := Table{
		Title:   "V8: routing around a deep-queued node (8 x 30-frame 1080p probes, 2 SysNFK nodes)",
		Columns: []string{"router", "probes on deep node", "shed", "aggregate fps", "p99 latency [ms]"},
	}
	for _, capOnly := range []bool{true, false} {
		nodes := fleetNodes(2)
		nodes[0].MaxSessions = 2
		f, err := fleet.New(fleet.Config{Nodes: nodes, CapacityOnly: capOnly, MissLimit: 1 << 20})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		srv0, ok := f.Node("node0")
		if !ok {
			panic("bench: node0 unknown")
		}
		deep := make([]*serve.Job, 0, 3)
		for i := 0; i < 3; i++ {
			j, err := srv0.Submit(serve.JobSpec{
				Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 3000,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			deep = append(deep, j)
		}
		const probes, probeFrames = 8, 30
		refs := make([]fleet.JobRef, 0, probes)
		starts := make([]time.Time, 0, probes)
		batchStart := time.Now()
		for i := 0; i < probes; i++ {
			ref, err := f.Submit(serve.JobSpec{
				Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: probeFrames,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			refs = append(refs, ref)
			starts = append(starts, time.Now())
		}
		onDeep := 0
		var worst time.Duration
		for i, ref := range refs {
			ref.Job.Wait()
			if lat := time.Since(starts[i]); lat > worst {
				worst = lat
			}
			if ref.Node == "node0" {
				onDeep++
			}
		}
		batch := time.Since(batchStart).Seconds()
		name := "queue-aware"
		if capOnly {
			name = "capacity-only"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d/%d", onDeep, probes),
			fmt.Sprintf("%d", f.State().Shed),
			fmt.Sprintf("%.1f", float64(probes*probeFrames)/batch),
			fmt.Sprintf("%.0f", float64(worst.Milliseconds())),
		})
		for _, j := range deep {
			j.Cancel()
		}
		f.Close()
	}
	return t
}
