//go:build race

package bench

// raceEnabled reports whether the race detector instruments this build;
// wall-clock budget tests skip under it.
const raceEnabled = true
