package bench

import (
	"fmt"
	"runtime"
	"time"

	"feves"
	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/fleet"
	"feves/internal/h264/codec"
	"feves/internal/serve"
	"feves/internal/vcm"
)

// PerfMetric is one measured performance number of the control path,
// annotated with its regression-gate semantics. Direction states which
// way is better: "higher" and "lower" metrics are gated by ComparePerf,
// "info" metrics are recorded but never fail a comparison (wall-clock
// noise on shared CI machines makes absolute times ungateable). Slop is
// an absolute allowance added on top of the relative tolerance so
// near-zero baselines (0 allocs/frame) don't turn measurement jitter
// into failures.
type PerfMetric struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit"`
	Direction string  `json:"direction"`
	Slop      float64 `json:"slop,omitempty"`
}

// PerfReport is the perf experiment's machine-readable result — the
// committed BENCH_10.json baseline and the shape CI compares against it.
type PerfReport struct {
	Metrics []PerfMetric `json:"metrics"`
}

// perfFrames is the steady-state measurement window of the frame-loop
// metrics; perfWarmup frames run first so every retained buffer is sized
// and the EWMA model has converged.
const (
	perfWarmup = 60
	perfFrames = 200
)

// Perf measures the V4 control-path metrics: simulated steady-state
// throughput on the two headline systems, the allocation footprint and
// scheduling overhead of the steady-state frame loop, and the LP
// warm-start hit rate. Simulated fps and allocation counts are
// deterministic; wall-clock overhead is informational only.
func Perf() PerfReport {
	var r PerfReport
	add := func(name string, value float64, unit, dir string, slop float64) {
		r.Metrics = append(r.Metrics, PerfMetric{Name: name, Value: value, Unit: unit, Direction: dir, Slop: slop})
	}

	fpsHK := steady(cfg1080p(32, 1), feves.SysHK())
	add("steady_fps_syshk", fpsHK, "fps", "higher", 0)
	add("steady_fps_sysnff", steady(cfg1080p(32, 1), feves.SysNFF()), "fps", "higher", 0)

	// Frame-parallel throughput on the headline system, plus its ratio to
	// the serial single-chain run. Both sides are averaged over the second
	// half of an 80-frame run — per-frame fps jitters with the LP's
	// re-optimization, and a single-frame sample would gate on noise. The
	// joint schedule only fills the serial schedule's synchronization
	// stalls, so the gain is a few percent (the LP schedule is already
	// ~88% bottleneck-utilized on SysHK, see EXPERIMENTS.md V6); the ratio
	// gates that pairing keeps paying its way.
	fpCfg := cfg1080p(32, 1)
	fpCfg.FrameParallel = true
	fpsSerialAvg := steadyWindow(cfg1080p(32, 1), feves.SysHK(), 80)
	fpsFP := steadyWindow(fpCfg, feves.SysHK(), 80)
	add("steady_fps_syshk_fp", fpsFP, "fps", "higher", 0)
	add("fp_speedup", fpsFP/fpsSerialAvg, "ratio", "higher", 0.02)

	fw, err := core.New(core.Options{
		Platform: device.SysNFF(),
		Codec: codec.Config{Width: 1920, Height: 1088, SearchRange: 16,
			NumRF: 1, IQP: 27, PQP: 28},
		Mode: vcm.TimingOnly,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	step := func() core.Result {
		res, err := fw.EncodeNext(nil)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		return res
	}
	for i := 0; i < perfWarmup; i++ {
		step()
	}
	statsBefore := fw.SolverStats()
	var overhead time.Duration
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < perfFrames; i++ {
		overhead += step().SchedOverhead
	}
	runtime.ReadMemStats(&ms1)
	st := fw.SolverStats()

	// Half an allocation (and a cache line of bytes) of absolute slop: the
	// loop itself is allocation-free, but runtime background work can land
	// a stray object inside the window on a busy CI machine.
	add("frame_allocs", float64(ms1.Mallocs-ms0.Mallocs)/perfFrames, "allocs/frame", "lower", 0.5)
	add("frame_bytes", float64(ms1.TotalAlloc-ms0.TotalAlloc)/perfFrames, "B/frame", "lower", 64)

	// The same allocation discipline must hold with two frames in flight:
	// the pair path runs from retained per-slot scratch, so the
	// steady-state cost of frame-parallel operation is also 0 allocs/frame.
	fwp, err := core.New(core.Options{
		Platform: device.SysNFF(),
		Codec: codec.Config{Width: 1920, Height: 1088, SearchRange: 16,
			NumRF: 1, IQP: 27, PQP: 28, Chains: 2},
		Mode:          vcm.TimingOnly,
		FrameParallel: true,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	pairStep := func() {
		if _, _, _, err := fwp.EncodePair(nil, nil); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	for i := 0; i < perfWarmup; i++ {
		pairStep()
	}
	runtime.ReadMemStats(&ms0)
	for i := 0; i < perfFrames/2; i++ {
		pairStep()
	}
	runtime.ReadMemStats(&ms1)
	add("pair_frame_allocs", float64(ms1.Mallocs-ms0.Mallocs)/perfFrames, "allocs/frame", "lower", 0.5)
	add("pair_frame_bytes", float64(ms1.TotalAlloc-ms0.TotalAlloc)/perfFrames, "B/frame", "lower", 64)

	solves := st.Solves - statsBefore.Solves
	warm := st.WarmSolves - statsBefore.WarmSolves
	if solves > 0 {
		add("lp_warm_rate", float64(warm)/float64(solves), "ratio", "higher", 0.02)
		add("lp_pivots_per_solve", float64(st.Pivots-statsBefore.Pivots)/float64(solves), "pivots", "lower", 1)
	}
	add("sched_overhead_us", float64(overhead.Microseconds())/perfFrames, "us/frame", "info", 0)

	perfFleet(add)
	perfFleetShed(add)
	perfKernels(add)
	return r
}

// perfFleet measures the fleet coordinator's routing path: a sequence of
// small jobs routed across three nodes exercises the third-level LP with
// drifting loads on a constant problem shape, so every decision should be
// LP-decided and (past the first) warm-started. Wall-clock routing cost
// rides along as an informational metric.
func perfFleet(add func(name string, value float64, unit, dir string, slop float64)) {
	f, err := fleet.New(fleet.Config{Nodes: fleetNodes(3)})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	defer f.Close()
	const jobs = 24
	var routing time.Duration
	for i := 0; i < jobs; i++ {
		start := time.Now()
		ref, err := f.Submit(serve.JobSpec{
			Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 3,
		})
		routing += time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		ref.Job.Wait()
	}
	rs := f.State().Router
	if rs.Routes > 0 {
		add("fleet_lp_route_rate", float64(rs.LPRoutes)/float64(rs.Routes), "ratio", "higher", 0.02)
	}
	if rs.Solver.Solves > 0 {
		add("fleet_lp_warm_rate", float64(rs.Solver.WarmSolves)/float64(rs.Solver.Solves), "ratio", "higher", 0.02)
	}
	add("fleet_submit_us", float64(routing.Microseconds())/jobs, "us/job", "info", 0)
}

// steadyWindow simulates `frames` frames and returns the mean encoding
// rate over the second half of the run: simulated seconds per frame, with
// paired frames charged half their group's joint makespan.
func steadyWindow(cfg feves.Config, pl *feves.Platform, frames int) float64 {
	sim, err := feves.NewSimulation(cfg, withFaults(pl))
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	reports, err := sim.Run(frames)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	var secs float64
	n := 0
	for _, r := range reports[frames/2:] {
		if r.Intra {
			continue
		}
		if r.PairSeconds > 0 {
			secs += r.PairSeconds / 2
		} else {
			secs += r.Seconds
		}
		n++
	}
	return float64(n) / secs
}

// PerfTable renders a PerfReport for human consumption.
func PerfTable(r PerfReport) Table {
	t := Table{
		Title:   "V4 control-path performance (gated metrics regress CI)",
		Columns: []string{"metric", "value", "unit", "better"},
	}
	for _, m := range r.Metrics {
		t.Rows = append(t.Rows, []string{m.Name, fmt.Sprintf("%.4g", m.Value), m.Unit, m.Direction})
	}
	return t
}

// ComparePerf checks current against a committed baseline with a
// relative tolerance (plus each metric's absolute slop) and returns one
// message per regression; an empty slice means the gate is green.
// Metrics present in the baseline must exist in the current run —
// silently dropping a gate would hide exactly the regressions the
// harness is for. "info" metrics never fail.
func ComparePerf(baseline, current PerfReport, tol float64) []string {
	cur := make(map[string]PerfMetric, len(current.Metrics))
	for _, m := range current.Metrics {
		cur[m.Name] = m
	}
	var fails []string
	for _, b := range baseline.Metrics {
		c, ok := cur[b.Name]
		if !ok {
			if b.Direction != "info" {
				fails = append(fails, fmt.Sprintf("%s: gated metric missing from current run", b.Name))
			}
			continue
		}
		switch b.Direction {
		case "higher":
			if floor := b.Value*(1-tol) - b.Slop; c.Value < floor {
				fails = append(fails, fmt.Sprintf("%s: %.4g %s is below the baseline %.4g (floor %.4g at %.0f%% tolerance)",
					b.Name, c.Value, b.Unit, b.Value, floor, 100*tol))
			}
		case "lower":
			if ceil := b.Value*(1+tol) + b.Slop; c.Value > ceil {
				fails = append(fails, fmt.Sprintf("%s: %.4g %s is above the baseline %.4g (ceiling %.4g at %.0f%% tolerance)",
					b.Name, c.Value, b.Unit, b.Value, ceil, 100*tol))
			}
		}
	}
	return fails
}

// perfFleetShed pins the queue-aware routing counters. Shed rate: node0
// is deepened with three heavy simulations submitted directly to its
// server — invisible to capacity-only routing, fully visible to the
// queue-aware cap rows — and every coordinator probe must route around
// it. Speculative releases: a second fleet gives node0 one session slot
// occupied by a wide filler encode (light routed weight, long wall time),
// so the shard the LP places there sits queued at zero progress while its
// sibling finishes; the straggler detector must re-lease it exactly once.
func perfFleetShed(add func(name string, value float64, unit, dir string, slop float64)) {
	f, err := fleet.New(fleet.Config{Nodes: fleetNodes(2)})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	srv0, _ := f.Node("node0")
	deepRefs := make([]*serve.Job, 0, 3)
	for i := 0; i < 3; i++ {
		j, err := srv0.Submit(serve.JobSpec{
			Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5000,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		deepRefs = append(deepRefs, j)
	}
	const probes = 6
	for i := 0; i < probes; i++ {
		ref, err := f.Submit(serve.JobSpec{
			Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		ref.Job.Wait()
	}
	add("fleet_shed_rate", float64(f.State().Shed)/probes, "ratio", "higher", 0.02)
	for _, j := range deepRefs {
		j.Cancel()
	}
	f.Close()

	nodes := fleetNodes(2)
	nodes[0].MaxSessions = 1
	f, err = fleet.New(fleet.Config{Nodes: nodes, SpecSlack: 0.5, MissLimit: 1 << 20})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	defer f.Close()
	srv0, _ = f.Node("node0")
	if _, err := srv0.Submit(serve.JobSpec{
		Name: "filler", Mode: serve.ModeEncode,
		Width: 4096, Height: 64, IntraPeriod: 4, YUV: syntheticYUV(4096, 64, 7),
	}); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	st, err := f.SubmitStream(fleet.StreamSpec{
		Name: "spec", Mode: serve.ModeEncode,
		Width: 64, Height: 64, IntraPeriod: 4, MaxShards: 2,
		YUV: syntheticYUV(64, 64, 16),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	waitDone := make(chan serve.Status, 1)
	go func() { waitDone <- st.Wait() }()
	for ticking := true; ticking; {
		select {
		case <-waitDone:
			ticking = false
		case <-time.After(time.Millisecond):
			f.Tick()
		}
	}
	add("fleet_speculative_releases", float64(f.State().SpecReleases), "count", "higher", 0)
}
