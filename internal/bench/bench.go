// Package bench is the experiment harness of the FEVES reproduction: one
// entry point per table and figure of the paper's evaluation section (and
// per ablation added by this reproduction), each regenerating the same
// rows/series the paper reports on the simulated platforms. The harness is
// shared by cmd/feves-bench and the root-level testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"

	"feves"
	"feves/internal/h264"
	"feves/internal/h264/me"
	"feves/internal/video"
)

// Series is one plotted curve: a label and X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is a formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Observer, when set before running experiments, receives the telemetry of
// every framework the harness constructs: one aggregated metrics scrape,
// event stream and Perfetto timeline across the whole experiment run.
var Observer *feves.Observer

// CheckSchedules, when set before running experiments, turns on the
// internal/check schedule invariant validator on every framework the
// harness constructs — a violation aborts the experiment.
var CheckSchedules bool

// FaultSpec, when set before running experiments, injects the given
// deterministic fault schedule (device.ParseFaults grammar) into every
// platform the harness constructs. Pair with DeadlineSlack to watch the
// failover machinery react; empty runs fault-free.
var FaultSpec string

// DeadlineSlack, when set before running experiments, arms autonomous
// failover on every framework the harness constructs (per-sync-point
// deadlines at LP prediction × slack). 0 keeps the paper's fault-free
// operation.
var DeadlineSlack float64

// cfg1080p builds the paper's evaluation configuration.
func cfg1080p(sa, rf int) feves.Config {
	// 1080p content is coded as 1920×1088 (68 macroblock rows), as H.264
	// encoders do.
	return feves.Config{Width: 1920, Height: 1088, SearchArea: sa, RefFrames: rf,
		Observer: Observer, CheckSchedules: CheckSchedules, DeadlineSlack: DeadlineSlack}
}

// withFaults installs the package-level fault spec on a freshly built
// platform (a no-op when FaultSpec is empty).
func withFaults(pl *feves.Platform) *feves.Platform {
	if FaultSpec != "" {
		if err := pl.InjectFaults(FaultSpec); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	return pl
}

// paper undoes the kernel calibration on a platform: the Fig. 6/7 and §IV
// reproductions compare against the paper's published absolute rates,
// which the base profiles were anchored to, while the shipped calibrated
// profiles (used by the reproduction's own experiments below) model the
// current, faster kernels.
func paper(pl *feves.Platform) *feves.Platform { return pl.PaperAnchored() }

// platformSet returns fresh instances of the seven Fig. 6 configurations.
// Constructors are re-invoked per experiment because platforms carry
// mutable perturbation state.
func platformSet() []struct {
	Name string
	Make func() *feves.Platform
} {
	return []struct {
		Name string
		Make func() *feves.Platform
	}{
		{"CPU_N", feves.CPUNehalem},
		{"CPU_H", feves.CPUHaswell},
		{"GPU_F", feves.GPUFermi},
		{"GPU_K", feves.GPUKepler},
		{"SysNF", feves.SysNF},
		{"SysNFF", feves.SysNFF},
		{"SysHK", feves.SysHK},
	}
}

func steady(cfg feves.Config, pl *feves.Platform) float64 {
	fps, err := feves.SteadyFPS(cfg, withFaults(pl))
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return fps
}

// Fig6a regenerates Fig. 6(a): encoding rate versus search-area size
// (32–256, 1 RF) for every device and system configuration.
func Fig6a() []Series {
	sas := []int{32, 64, 128, 256}
	var out []Series
	for _, p := range platformSet() {
		s := Series{Label: p.Name}
		for _, sa := range sas {
			s.X = append(s.X, float64(sa))
			s.Y = append(s.Y, steady(cfg1080p(sa, 1), paper(p.Make())))
		}
		out = append(out, s)
	}
	return out
}

// Fig6b regenerates Fig. 6(b): encoding rate versus number of reference
// frames (1–8, SA 32×32).
func Fig6b() []Series {
	var out []Series
	for _, p := range platformSet() {
		s := Series{Label: p.Name}
		for rf := 1; rf <= 8; rf++ {
			s.X = append(s.X, float64(rf))
			s.Y = append(s.Y, steady(cfg1080p(32, rf), paper(p.Make())))
		}
		out = append(out, s)
	}
	return out
}

// perFrame runs n inter-frames on a platform and returns their times in
// milliseconds, indexed from inter-frame 1.
func perFrame(cfg feves.Config, pl *feves.Platform, n int) Series {
	sim, err := feves.NewSimulation(cfg, withFaults(pl))
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	reports, err := sim.Run(n + 1) // +1 intra frame
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	var s Series
	for _, r := range reports[1:] {
		s.X = append(s.X, float64(r.Frame))
		s.Y = append(s.Y, r.Seconds*1e3)
	}
	return s
}

// Fig7a regenerates Fig. 7(a): per-frame encoding time of the first 100
// inter-frames on SysHK at SA 64×64 for 1 and 2 reference frames.
func Fig7a() []Series {
	var out []Series
	for _, rf := range []int{1, 2} {
		s := perFrame(cfg1080p(64, rf), paper(feves.SysHK()), 100)
		s.Label = fmt.Sprintf("%dRF", rf)
		out = append(out, s)
	}
	return out
}

// fig7bPerturbations reproduces the load events the paper observed: frames
// 76 and 81 for 1 RF and frames 31, 71 and 92 for 2 RFs (other processes
// starting on the non-dedicated system). The perturbation slows the GPU by
// 2.5× for exactly one inter-frame.
func fig7bPerturbations(rf int) func(frame, dev int) float64 {
	var frames []int
	switch rf {
	case 1:
		frames = []int{76, 81}
	case 2:
		frames = []int{31, 71, 92}
	}
	return func(frame, dev int) float64 {
		if dev != 0 {
			return 1
		}
		for _, f := range frames {
			if frame == f {
				return 2.5
			}
		}
		return 1
	}
}

// Fig7b regenerates Fig. 7(b): per-frame encoding time on SysHK at SA
// 32×32 for 1–5 reference frames, with the paper's transient load events
// injected. The 1-based inter-frame index matches the paper's x axis.
func Fig7b() []Series {
	var out []Series
	for rf := 1; rf <= 5; rf++ {
		pl := paper(feves.SysHK())
		pl.Perturb(fig7bPerturbations(rf))
		s := perFrame(cfg1080p(32, rf), pl, 100)
		s.Label = fmt.Sprintf("%dRF", rf)
		out = append(out, s)
	}
	return out
}

// Speedups regenerates the §IV headline comparisons: the heterogeneous
// systems against their constituent single devices, averaged over 1–8
// reference frames at SA 32×32 (the paper quotes SysHK ≈1.3× GPU_K and
// ≈3× CPU_H; SysNFF up to 2.2× GPU_F and ≈5× CPU_N).
func Speedups() Table {
	avg := func(mk func() *feves.Platform) float64 {
		var sum float64
		for rf := 1; rf <= 8; rf++ {
			sum += steady(cfg1080p(32, rf), paper(mk()))
		}
		return sum / 8
	}
	sysHK, gpuK, cpuH := avg(feves.SysHK), avg(feves.GPUKepler), avg(feves.CPUHaswell)
	sysNFF, sysNF, gpuF, cpuN := avg(feves.SysNFF), avg(feves.SysNF), avg(feves.GPUFermi), avg(feves.CPUNehalem)
	row := func(sys string, fps, base float64, baseName string, paper string) []string {
		return []string{sys, baseName, fmt.Sprintf("%.2f", fps/base), paper}
	}
	return Table{
		Title:   "Headline speedups (avg over 1-8 RFs, SA 32x32)",
		Columns: []string{"system", "baseline", "speedup", "paper"},
		Rows: [][]string{
			row("SysHK", sysHK, gpuK, "GPU_K", "~1.3"),
			row("SysHK", sysHK, cpuH, "CPU_H", "~3"),
			row("SysNFF", sysNFF, gpuF, "GPU_F", "up to 2.2"),
			row("SysNFF", sysNFF, cpuN, "CPU_N", "~5"),
			row("SysNF", sysNF, gpuF, "GPU_F", ">1 (collab.)"),
		},
	}
}

// Overhead regenerates the §IV scheduling-overhead claim: the real
// wall-clock cost of the Load Balancing decision, which the paper bounds
// below 2 ms per inter-frame.
func Overhead() Table {
	sim, err := feves.NewSimulation(cfg1080p(32, 4), feves.SysNFF())
	if err != nil {
		panic(err)
	}
	reports, err := sim.Run(51)
	if err != nil {
		panic(err)
	}
	var sum, worst float64
	n := 0
	for _, r := range reports[2:] { // skip intra and equidistant frames
		ms := float64(r.SchedOverhead.Microseconds()) / 1e3
		sum += ms
		if ms > worst {
			worst = ms
		}
		n++
	}
	return Table{
		Title:   "Scheduling overhead per inter-frame (SysNFF, 4 RFs)",
		Columns: []string{"metric", "measured [ms]", "paper bound [ms]"},
		Rows: [][]string{
			{"average", fmt.Sprintf("%.3f", sum/float64(n)), "< 2"},
			{"worst", fmt.Sprintf("%.3f", worst), "< 2"},
		},
	}
}

// ModuleShare regenerates the §II workload analysis: the share of each
// module group in the inter-loop time of single-device executions (the
// paper cites ME+INT+SME ≈ 90%).
func ModuleShare() Table {
	t := Table{
		Title:   "Module share of inter-loop time (SA 32x32, 1 RF)",
		Columns: []string{"device", "ME %", "INT %", "SME %", "R* %", "ME+INT+SME %"},
	}
	for _, p := range []struct {
		name string
		mk   func() *feves.Platform
	}{
		{"CPU_N", feves.CPUNehalem}, {"CPU_H", feves.CPUHaswell},
		{"GPU_F", feves.GPUFermi}, {"GPU_K", feves.GPUKepler},
	} {
		sim, err := feves.NewSimulation(cfg1080p(32, 1), paper(p.mk()))
		if err != nil {
			panic(err)
		}
		reports, err := sim.Run(5)
		if err != nil {
			panic(err)
		}
		r := reports[4]
		tot := r.MESeconds + r.INTSeconds + r.SMESeconds + r.RStarSeconds
		pc := func(v float64) string { return fmt.Sprintf("%.1f", 100*v/tot) }
		t.Rows = append(t.Rows, []string{
			p.name, pc(r.MESeconds), pc(r.INTSeconds), pc(r.SMESeconds), pc(r.RStarSeconds),
			pc(r.MESeconds + r.INTSeconds + r.SMESeconds),
		})
	}
	return t
}

// AblationBalancers compares the LP balancer against the equidistant and
// speed-proportional baselines (experiment A1).
func AblationBalancers() Table {
	t := Table{
		Title:   "Balancer ablation: steady-state fps (SA 32x32, 1 RF)",
		Columns: []string{"system", "lp", "proportional", "equidistant", "me-offload [5]"},
	}
	for _, sys := range []struct {
		name string
		mk   func() *feves.Platform
	}{{"SysNF", feves.SysNF}, {"SysNFF", feves.SysNFF}, {"SysHK", feves.SysHK}} {
		row := []string{sys.name}
		for _, b := range []feves.BalancerKind{feves.BalancerLP, feves.BalancerProportional, feves.BalancerEquidistant, feves.BalancerMEOffload} {
			cfg := cfg1080p(32, 1)
			cfg.Balancer = b
			row = append(row, fmt.Sprintf("%.1f", steady(cfg, sys.mk())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AblationEngines measures the two Data Access Management design choices
// of §III-B: dual- vs single-copy-engine overlap and the Δ data-reuse
// optimization (experiment A2). SA 32×32 with 1 RF is the most
// transfer-sensitive point: compute is cheapest there, so the SF/MV
// traffic that reuse avoids is hardest to hide.
func AblationEngines() Table {
	cfg := cfg1080p(32, 1)
	single := steady(cfg, feves.SysHK())
	dualPl, err := feves.CustomDualCopySysHK()
	if err != nil {
		panic(err)
	}
	dual := steady(cfg, dualPl)
	noReuse := cfg
	noReuse.Balancer = feves.BalancerLPNoReuse
	nr := steady(noReuse, feves.SysHK())
	return Table{
		Title:   "Data-access ablation (SysHK, SA 32x32, 1 RF)",
		Columns: []string{"variant", "fps"},
		Rows: [][]string{
			{"single copy engine + reuse (paper)", fmt.Sprintf("%.1f", single)},
			{"dual copy engines + reuse", fmt.Sprintf("%.1f", dual)},
			{"single copy engine, no reuse", fmt.Sprintf("%.1f", nr)},
		},
	}
}

// FormatSeries renders series as an aligned text table with one X column.
func FormatSeries(title, xName string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-10s", xName)
	for _, s := range series {
		fmt.Fprintf(&b, "%12s", s.Label)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-10.4g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, "%12.2f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable renders a Table as aligned text.
func FormatTable(t Table) string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, cell := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PredictionAccuracy measures how closely the Load Balancing LP's τtot
// predictions track the simulated execution once the Performance
// Characterization converges (experiment A3) — the property that makes
// Algorithm 2's decisions trustworthy.
func PredictionAccuracy() Table {
	t := Table{
		Title:   "LP prediction accuracy after convergence (SA 32x32, 2 RFs)",
		Columns: []string{"system", "mean |err| %", "worst |err| %"},
	}
	for _, sys := range []struct {
		name string
		mk   func() *feves.Platform
	}{{"SysNF", feves.SysNF}, {"SysNFF", feves.SysNFF}, {"SysHK", feves.SysHK}} {
		sim, err := feves.NewSimulation(cfg1080p(32, 2), sys.mk())
		if err != nil {
			panic(err)
		}
		reports, err := sim.Run(30)
		if err != nil {
			panic(err)
		}
		var sum, worst float64
		n := 0
		for _, r := range reports[6:] {
			if r.PredictedSeconds == 0 {
				continue
			}
			e := r.Seconds/r.PredictedSeconds - 1
			if e < 0 {
				e = -e
			}
			sum += e
			if e > worst {
				worst = e
			}
			n++
		}
		t.Rows = append(t.Rows, []string{
			sys.name,
			fmt.Sprintf("%.1f", 100*sum/float64(n)),
			fmt.Sprintf("%.1f", 100*worst),
		})
	}
	return t
}

// WorkloadPredictability quantifies the design rationale behind the
// paper's FSBM choice (experiment A4): the number of SAD evaluations per
// frame for full search is a content-independent constant — which is what
// lets the Load Balancing model device speeds with a single K per module —
// while a fast search's workload swings with the content's motion.
func WorkloadPredictability() Table {
	const w, h, frames = 128, 96, 6
	classes := []struct {
		name  string
		class video.MotionClass
	}{{"low motion", video.LowMotion}, {"medium motion", video.MediumMotion}, {"high motion", video.HighMotion}}

	evalsPerFrame := func(algo me.Algorithm, class video.MotionClass) []int64 {
		src := video.NewSyntheticClass(w, h, frames, 3, class)
		dpb := h264.NewDPB(1)
		dpb.Push(src.FrameAt(0))
		var out []int64
		for f := 1; f < frames; f++ {
			var evals int64
			cfg := me.Config{SearchRange: 16, Evals: &evals}
			cf := src.FrameAt(f)
			field := h264.NewMVField(cf.MBWidth(), cf.MBHeight(), 1)
			me.SearchRowsAlgo(algo, cf, dpb, cfg, field, 0, cf.MBHeight())
			out = append(out, evals)
			dpb.Push(cf) // reference tracks the content
		}
		return out
	}
	mean := func(v []int64) float64 {
		var s int64
		for _, x := range v {
			s += x
		}
		return float64(s) / float64(len(v))
	}
	t := Table{
		Title:   "SAD evaluations per frame: FSBM is content-independent (A4)",
		Columns: []string{"content", "full-search", "diamond", "diamond/full %"},
	}
	for _, c := range classes {
		fs := mean(evalsPerFrame(me.FullSearch, c.class))
		dm := mean(evalsPerFrame(me.Diamond, c.class))
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.0f", fs),
			fmt.Sprintf("%.0f", dm),
			fmt.Sprintf("%.2f", 100*dm/fs),
		})
	}
	return t
}

// GPUScaling sweeps the number of GPUs attached to a quad-core CPU
// (experiment A5): collaborative encoding scales while the parallel
// ME/INT/SME work dominates, then saturates on the serial R* group and
// the shared host link — the Amdahl ceiling implicit in the paper's
// single-device R* mapping.
func GPUScaling() Table {
	t := Table{
		Title:   "Multi-GPU scaling: CPU_N + k Fermi GPUs (SA 32x32, 1 RF)",
		Columns: []string{"GPUs", "fps", "speedup vs 1 GPU", "efficiency %"},
	}
	var base float64
	for k := 1; k <= 4; k++ {
		speeds := make([]float64, k)
		for i := range speeds {
			speeds[i] = 1.0 // each GPU is a stock Fermi
		}
		pl, err := feves.CustomPlatform(fmt.Sprintf("cpu+%dgpu", k), speeds, 4, 1.0)
		if err != nil {
			panic(err)
		}
		fps := steady(cfg1080p(32, 1), paper(pl))
		if k == 1 {
			base = fps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", fps),
			fmt.Sprintf("%.2f", fps/base),
			fmt.Sprintf("%.0f", 100*fps/base/float64(k)),
		})
	}
	return t
}

// Failover is the V3 experiment of this reproduction: per-frame encoding
// time on SysNFK while the Fermi GPU dies at inter-frame 20 with
// autonomous failover armed (deadline slack 3), against an uninterrupted
// baseline. The faulted curve tracks the baseline before the loss, spikes
// for the frame that blew its deadline and was retried, and settles on
// the reduced platform's (slower but steady) level afterwards —
// throughput before/during/after device loss. FaultSpec, when set,
// overrides the built-in death schedule.
func Failover() []Series {
	const frames, dieAt = 50, 20
	// Built inline rather than via perFrame so the baseline run stays
	// fault-free even when the package-level FaultSpec is set.
	run := func(label string, spec string, slack float64) Series {
		pl := feves.SysNFK()
		cfg := cfg1080p(32, 2)
		cfg.DeadlineSlack = slack
		if spec != "" {
			if err := pl.InjectFaults(spec); err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
		}
		sim, err := feves.NewSimulation(cfg, pl)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		reports, err := sim.Run(frames + 1) // +1 intra frame
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		s := Series{Label: label}
		for _, r := range reports[1:] {
			s.X = append(s.X, float64(r.Frame))
			s.Y = append(s.Y, r.Seconds*1e3)
		}
		return s
	}
	spec := FaultSpec
	if spec == "" {
		spec = fmt.Sprintf("die:GPU_F@%d", dieAt)
	}
	return []Series{
		run("SysNFK", "", 0),
		run("SysNFK+fault", spec, 3),
	}
}
