package trace

import (
	"encoding/xml"
	"strings"
	"testing"

	"feves/internal/vcm"
)

func sample() vcm.FrameTiming {
	return vcm.FrameTiming{
		Frame: 3, Tau1: 0.010, Tau2: 0.020, Tot: 0.040, RStarDev: 0,
		Spans: []vcm.TaskSpan{
			{Resource: "GPU_K#0.compute", Label: "ME@0", Start: 0, End: 0.008},
			{Resource: "GPU_K#0.ce0", Label: "CF.h2d@0", Start: 0, End: 0.002},
			{Resource: "GPU_K#0.compute", Label: "SME@0", Start: 0.010, End: 0.018},
			{Resource: "host", Label: "tau1", Start: 0.010, End: 0.010},
		},
	}
}

func TestGanttContainsResourcesAndMarkers(t *testing.T) {
	g := Gantt(sample(), 60)
	for _, want := range []string{"GPU_K#0.compute", "GPU_K#0.ce0", "host", "τ1=10.00ms", "#"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	if !strings.Contains(Gantt(vcm.FrameTiming{}, 40), "empty") {
		t.Fatal("empty schedule not reported")
	}
}

func TestGanttClampsWidth(t *testing.T) {
	g := Gantt(sample(), 1) // clamped to 20
	if len(g) == 0 {
		t.Fatal("no output")
	}
}

func TestCSVSortedByStart(t *testing.T) {
	c := CSV(sample())
	lines := strings.Split(strings.TrimSpace(c), "\n")
	if lines[0] != "frame,rstar_dev,resource,label,start_ms,end_ms" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[3], "SME@0") {
		t.Fatalf("spans not sorted by start:\n%s", c)
	}
	// Every record carries the frame index and R* device so concatenated
	// per-frame CSVs stay unambiguous.
	for _, ln := range lines[1:] {
		if !strings.HasPrefix(ln, "3,0,") {
			t.Fatalf("record missing frame/rstar_dev prefix: %s", ln)
		}
	}
}

func TestCSVDistinguishesConcatenatedFrames(t *testing.T) {
	a, b := sample(), sample()
	b.Frame, b.RStarDev = 4, 1
	cat := CSV(a) + CSV(b)
	if !strings.Contains(cat, "\n3,0,") || !strings.Contains(cat, "\n4,1,") {
		t.Fatalf("concatenated CSV lost frame identity:\n%s", cat)
	}
}

func TestBusyFractions(t *testing.T) {
	b := Busy(sample())
	if v := b["GPU_K#0.compute"]; v < 0.39 || v > 0.41 { // 16ms of 40ms
		t.Fatalf("compute busy %v, want 0.40", v)
	}
	if v := b["GPU_K#0.ce0"]; v < 0.049 || v > 0.051 {
		t.Fatalf("ce busy %v, want 0.05", v)
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := SVG(sample(), 640)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Must be parseable XML.
	var node struct{}
	if err := xml.Unmarshal([]byte(svg), &node); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v", err)
	}
	// One rect per span.
	if got := strings.Count(svg, "<rect"); got != len(sample().Spans) {
		t.Fatalf("%d rects for %d spans", got, len(sample().Spans))
	}
	for _, want := range []string{"τ1", "τ2", "GPU_K#0.compute"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

// TestSVGEscapesHostileLabels feeds resource and task names full of XML
// metacharacters and requires a still-well-formed document with no raw
// markup leaking through.
func TestSVGEscapesHostileLabels(t *testing.T) {
	ft := vcm.FrameTiming{
		Frame: 1, Tau1: 0.01, Tau2: 0.02, Tot: 0.04, RStarDev: 0,
		Spans: []vcm.TaskSpan{
			{Resource: `<script>alert("x")</script>`, Label: `ME<&>"pwn"@0`, Start: 0, End: 0.01},
			{Resource: "a&b", Label: "SME&<tag>@1", Start: 0.01, End: 0.03},
		},
	}
	svg := SVG(ft, 640)
	if strings.Contains(svg, "<script>") || strings.Contains(svg, "<tag>") {
		t.Fatalf("raw markup leaked into SVG:\n%s", svg)
	}
	for _, want := range []string{"&lt;script&gt;", "&quot;pwn&quot;", "SME&amp;&lt;tag&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing escaped form %q", want)
		}
	}
	var node struct{}
	if err := xml.Unmarshal([]byte(svg), &node); err != nil {
		t.Fatalf("SVG with hostile labels is not well-formed XML: %v", err)
	}
}

// TestGanttMarkerClampedAtRightEdge puts a synchronization point exactly
// at τtot: its column index equals the chart width and must clamp to the
// last cell instead of indexing out of bounds.
func TestGanttMarkerClampedAtRightEdge(t *testing.T) {
	const width = 40
	ft := vcm.FrameTiming{
		Frame: 2, Tau1: 0.02, Tau2: 0.04, Tot: 0.04, RStarDev: 0,
		Spans: []vcm.TaskSpan{
			{Resource: "host", Label: "ME@0", Start: 0, End: 0.01},
		},
	}
	g := Gantt(ft, width)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), g)
	}
	row := lines[1]
	open := strings.IndexByte(row, '|')
	cells := row[open+1 : len(row)-1]
	if len(cells) != width {
		t.Fatalf("row is %d cells wide, want %d: %q", len(cells), width, row)
	}
	if cells[width-1] != '2' {
		t.Errorf("τ2 marker at τtot not clamped into last cell: %q", cells)
	}
	if !strings.Contains(cells, "1") {
		t.Errorf("τ1 marker missing: %q", cells)
	}
}

// TestBusyEmptyAndZeroTot: an empty timing yields an empty map, and a
// zero-τtot timing must not divide by zero (busy seconds stay absolute).
func TestBusyEmptyAndZeroTot(t *testing.T) {
	if b := Busy(vcm.FrameTiming{}); len(b) != 0 {
		t.Fatalf("Busy(empty) = %v, want empty", b)
	}
	zero := vcm.FrameTiming{ // Tot deliberately 0
		Spans: []vcm.TaskSpan{{Resource: "host", Label: "ME@0", Start: 0, End: 0.5}},
	}
	b := Busy(zero)
	if v := b["host"]; v != 0.5 {
		t.Fatalf("zero-τtot busy = %v, want raw 0.5 s", v)
	}
}

func TestSVGEmpty(t *testing.T) {
	svg := SVG(vcm.FrameTiming{}, 640)
	if !strings.Contains(svg, "empty schedule") {
		t.Fatal("empty case not handled")
	}
}

func TestTaskColors(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range []string{"ME@0", "INT@1", "SME@2", "R*@0", "CF.h2d@0", "tau1"} {
		seen[taskColor(l)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 distinct colors, got %d", len(seen))
	}
}
