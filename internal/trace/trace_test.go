package trace

import (
	"encoding/xml"
	"strings"
	"testing"

	"feves/internal/vcm"
)

func sample() vcm.FrameTiming {
	return vcm.FrameTiming{
		Frame: 3, Tau1: 0.010, Tau2: 0.020, Tot: 0.040, RStarDev: 0,
		Spans: []vcm.TaskSpan{
			{Resource: "GPU_K#0.compute", Label: "ME@0", Start: 0, End: 0.008},
			{Resource: "GPU_K#0.ce0", Label: "CF.h2d@0", Start: 0, End: 0.002},
			{Resource: "GPU_K#0.compute", Label: "SME@0", Start: 0.010, End: 0.018},
			{Resource: "host", Label: "tau1", Start: 0.010, End: 0.010},
		},
	}
}

func TestGanttContainsResourcesAndMarkers(t *testing.T) {
	g := Gantt(sample(), 60)
	for _, want := range []string{"GPU_K#0.compute", "GPU_K#0.ce0", "host", "τ1=10.00ms", "#"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	if !strings.Contains(Gantt(vcm.FrameTiming{}, 40), "empty") {
		t.Fatal("empty schedule not reported")
	}
}

func TestGanttClampsWidth(t *testing.T) {
	g := Gantt(sample(), 1) // clamped to 20
	if len(g) == 0 {
		t.Fatal("no output")
	}
}

func TestCSVSortedByStart(t *testing.T) {
	c := CSV(sample())
	lines := strings.Split(strings.TrimSpace(c), "\n")
	if lines[0] != "resource,label,start_ms,end_ms" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[3], "SME@0") {
		t.Fatalf("spans not sorted by start:\n%s", c)
	}
}

func TestBusyFractions(t *testing.T) {
	b := Busy(sample())
	if v := b["GPU_K#0.compute"]; v < 0.39 || v > 0.41 { // 16ms of 40ms
		t.Fatalf("compute busy %v, want 0.40", v)
	}
	if v := b["GPU_K#0.ce0"]; v < 0.049 || v > 0.051 {
		t.Fatalf("ce busy %v, want 0.05", v)
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := SVG(sample(), 640)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Must be parseable XML.
	var node struct{}
	if err := xml.Unmarshal([]byte(svg), &node); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v", err)
	}
	// One rect per span.
	if got := strings.Count(svg, "<rect"); got != len(sample().Spans) {
		t.Fatalf("%d rects for %d spans", got, len(sample().Spans))
	}
	for _, want := range []string{"τ1", "τ2", "GPU_K#0.compute"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEmpty(t *testing.T) {
	svg := SVG(vcm.FrameTiming{}, 640)
	if !strings.Contains(svg, "empty schedule") {
		t.Fatal("empty case not handled")
	}
}

func TestTaskColors(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range []string{"ME@0", "INT@1", "SME@2", "R*@0", "CF.h2d@0", "tau1"} {
		seen[taskColor(l)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 distinct colors, got %d", len(seen))
	}
}
