// Package trace renders the per-frame schedules produced by the Video
// Coding Manager as human-readable Gantt charts and CSV, the tooling behind
// cmd/feves-trace. It makes the paper's Fig. 4 directly observable: which
// kernels and transfers each device's streams executed, how they overlapped,
// and where the τ1/τ2 synchronization points fell.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"feves/internal/vcm"
)

// Gantt renders the spans as an ASCII Gantt chart of the given width. Rows
// are resources in first-use order; '#' marks busy time.
func Gantt(ft vcm.FrameTiming, width int) string {
	if width < 20 {
		width = 20
	}
	if len(ft.Spans) == 0 || ft.Tot <= 0 {
		return "(empty schedule)\n"
	}
	var order []string
	rows := map[string][]vcm.TaskSpan{}
	for _, s := range ft.Spans {
		if _, ok := rows[s.Resource]; !ok {
			order = append(order, s.Resource)
		}
		rows[s.Resource] = append(rows[s.Resource], s)
	}
	nameW := 0
	for _, n := range order {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	scale := float64(width) / ft.Tot
	var b strings.Builder
	fmt.Fprintf(&b, "frame %d: τ1=%.2fms τ2=%.2fms τtot=%.2fms (R* on device %d)\n",
		ft.Frame, ft.Tau1*1e3, ft.Tau2*1e3, ft.Tot*1e3, ft.RStarDev)
	for _, name := range order {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		for _, s := range rows[name] {
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				line[i] = '#'
			}
		}
		// Synchronization markers.
		for _, m := range []struct {
			t float64
			c byte
		}{{ft.Tau1, '1'}, {ft.Tau2, '2'}} {
			p := int(m.t * scale)
			if p >= width {
				p = width - 1
			}
			if line[p] == '.' {
				line[p] = m.c
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, name, line)
	}
	return b.String()
}

// CSV renders the spans as comma-separated records sorted by start time:
// frame,rstar_dev,resource,label,start_ms,end_ms. The frame index and R*
// placement repeat on every record so per-frame CSVs stay unambiguous when
// concatenated across a run.
func CSV(ft vcm.FrameTiming) string {
	spans := append([]vcm.TaskSpan(nil), ft.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Resource < spans[j].Resource
	})
	var b strings.Builder
	b.WriteString("frame,rstar_dev,resource,label,start_ms,end_ms\n")
	for _, s := range spans {
		fmt.Fprintf(&b, "%d,%d,%s,%s,%.4f,%.4f\n",
			ft.Frame, ft.RStarDev, s.Resource, s.Label, s.Start*1e3, s.End*1e3)
	}
	return b.String()
}

// Busy returns each resource's busy time as a fraction of τtot, a quick
// utilization summary.
func Busy(ft vcm.FrameTiming) map[string]float64 {
	out := map[string]float64{}
	for _, s := range ft.Spans {
		out[s.Resource] += s.End - s.Start
	}
	for k := range out {
		if ft.Tot > 0 {
			out[k] /= ft.Tot
		}
	}
	return out
}

// SVG renders the schedule as a self-contained SVG Gantt chart: one lane
// per resource, one rectangle per task, with dashed τ1/τ2 markers. Width
// is the drawing width in pixels.
func SVG(ft vcm.FrameTiming, width int) string {
	const laneH, pad, labelW = 22, 4, 180
	if width < 200 {
		width = 200
	}
	if len(ft.Spans) == 0 || ft.Tot <= 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="20"><text x="4" y="14">empty schedule</text></svg>`
	}
	var order []string
	lane := map[string]int{}
	for _, s := range ft.Spans {
		if _, ok := lane[s.Resource]; !ok {
			lane[s.Resource] = len(order)
			order = append(order, s.Resource)
		}
	}
	height := len(order)*(laneH+pad) + 30
	scale := float64(width-labelW-10) / ft.Tot
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="4" y="14">frame %d: τ1=%.2fms τ2=%.2fms τtot=%.2fms</text>`+"\n",
		ft.Frame, ft.Tau1*1e3, ft.Tau2*1e3, ft.Tot*1e3)
	for i, name := range order {
		y := 22 + i*(laneH+pad)
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", y+laneH-7, xmlEscape(name))
	}
	for _, s := range ft.Spans {
		y := 22 + lane[s.Resource]*(laneH+pad)
		x := float64(labelW) + s.Start*scale
		w := (s.End - s.Start) * scale
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s [%.3f–%.3f ms]</title></rect>`+"\n",
			x, y, w, laneH, taskColor(s.Label), xmlEscape(s.Label), s.Start*1e3, s.End*1e3)
	}
	for _, m := range []struct {
		t     float64
		label string
	}{{ft.Tau1, "τ1"}, {ft.Tau2, "τ2"}} {
		x := float64(labelW) + m.t*scale
		fmt.Fprintf(&b, `<line x1="%.1f" y1="18" x2="%.1f" y2="%d" stroke="#444" stroke-dasharray="4,3"/>`+"\n",
			x, x, height-6)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#444">%s</text>`+"\n", x+2, height-8, m.label)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// taskColor maps schedule task labels to fill colors: kernels by module,
// transfers in grays.
func taskColor(label string) string {
	switch {
	case strings.HasPrefix(label, "ME"):
		return "#4e79a7"
	case strings.HasPrefix(label, "INT"):
		return "#59a14f"
	case strings.HasPrefix(label, "SME"):
		return "#f28e2b"
	case strings.HasPrefix(label, "R*"):
		return "#e15759"
	case strings.HasPrefix(label, "tau"):
		return "#bab0ac"
	default:
		return "#9c9ede" // transfers
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
