package lp

import (
	"math"
	"testing"
)

// byteReader decodes the fuzzer's byte stream into bounded problem
// parameters, yielding zeros once exhausted so every input maps to a
// well-formed LP.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// decodeLP maps arbitrary bytes onto a tiny LP (≤3 variables, ≤4
// constraints) with non-negative costs, so the problem is always bounded
// below over x ≥ 0 and the vertex oracle's optimum is well defined.
func decodeLP(data []byte) (p *Problem, rows [][]float64, sens []Sense, rhs []float64) {
	r := &byteReader{data: data}
	n := 1 + int(r.next())%3
	m := 1 + int(r.next())%4
	p = New(n)
	c := make([]float64, n)
	for i := range c {
		c[i] = float64(int(r.next()) % 11)
	}
	p.SetObjective(c)
	rows = make([][]float64, m)
	sens = make([]Sense, m)
	rhs = make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = float64(int(r.next())%7 - 3)
		}
		sens[i] = Sense(int(r.next()) % 3)
		rhs[i] = float64(int(r.next())%15 - 5)
		p.Add(rows[i], sens[i], rhs[i])
	}
	return p, rows, sens, rhs
}

// FuzzLPSolve cross-checks the simplex solver against the exhaustive
// vertex enumerator on fuzzer-chosen tiny problems: no panics, agreement
// on feasibility, matching optima, and returned points that satisfy every
// constraint.
func FuzzLPSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 1, 0, 2})
	f.Add([]byte{2, 3, 1, 5, 0, 3, 2, 1, 2, 9, 6, 0, 4, 1, 8})
	f.Add([]byte{1, 1, 0, 1, 1, 1, 14}) // infeasible-leaning: x ≥ large
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rows, sens, rhs := decodeLP(data)
		x, obj, err := p.Solve()
		oracleObj, oracleFeasible := vertexOracle(p, rows, sens, rhs)
		switch err {
		case ErrInfeasible:
			if oracleFeasible {
				t.Fatalf("solver infeasible but oracle found optimum %v", oracleObj)
			}
			return
		case ErrUnbounded:
			// Cannot happen with c ≥ 0 and x ≥ 0: the objective is bounded
			// below by 0.
			t.Fatalf("unbounded with non-negative costs")
		case nil:
		default:
			t.Fatalf("solver error: %v", err)
		}
		if !oracleFeasible {
			t.Fatalf("solver found %v but the vertex oracle says infeasible", x)
		}
		if math.Abs(obj-oracleObj) > 1e-5 {
			t.Fatalf("solver objective %v, oracle %v", obj, oracleObj)
		}
		var check float64
		for j, xj := range x {
			if xj < -1e-7 {
				t.Fatalf("negative variable x[%d] = %v", j, xj)
			}
			check += p.c[j] * xj
		}
		if math.Abs(check-obj) > 1e-6*(1+math.Abs(obj)) {
			t.Fatalf("objective %v inconsistent with point %v (c·x = %v)", obj, x, check)
		}
		for i := range rows {
			dot := 0.0
			for j := range x {
				dot += rows[i][j] * x[j]
			}
			switch sens[i] {
			case LE:
				if dot > rhs[i]+1e-6 {
					t.Fatalf("constraint %d violated: %v %v %v", i, dot, sens[i], rhs[i])
				}
			case GE:
				if dot < rhs[i]-1e-6 {
					t.Fatalf("constraint %d violated: %v %v %v", i, dot, sens[i], rhs[i])
				}
			case EQ:
				if math.Abs(dot-rhs[i]) > 1e-6 {
					t.Fatalf("constraint %d violated: %v %v %v", i, dot, sens[i], rhs[i])
				}
			}
		}
	})
}
