package lp

import (
	"errors"
	"math"
)

// warmPivotTol rejects a warm-start refactorization whose pivot element
// is too small to divide by safely. Rows are equilibrated to roughly
// unit scale before the pivot sequence runs, so the threshold is
// effectively relative.
const warmPivotTol = 1e-8

// warmFeasTol bounds the residual infeasibility tolerated after
// re-pivoting the previous basis into the new tableau. Basic values in
// [-warmFeasTol, 0) are elimination roundoff and are clamped to zero;
// anything more negative means the old basis is primal infeasible for
// the new data and the solve falls back to the cold two-phase path.
const warmFeasTol = 1e-7

// blandTrigger is the number of consecutive degenerate pivots tolerated
// under Dantzig pricing before simplex switches to Bland's rule.
// Non-degenerate pivots strictly decrease the objective (finitely many
// vertices), and a pure Bland run terminates, so the combination cannot
// cycle; the counter resets on every non-degenerate pivot so the fast
// pricing rule does nearly all the work in practice.
const blandTrigger = 32

// iterLimit caps total simplex iterations per phase as a final backstop.
const iterLimit = 20000

// Pricing selects the simplex entering-variable rule.
type Pricing int

const (
	// PricingDantzig enters the most negative reduced cost, switching to
	// Bland's rule after blandTrigger consecutive degenerate pivots (and
	// back on the next improving pivot). The fast default.
	PricingDantzig Pricing = iota
	// PricingBland always enters the smallest eligible index. Slower,
	// but its vertex selection among alternative optima is a stable
	// canonical choice — callers whose downstream behaviour depends on
	// *which* optimal vertex is returned (the frame balancer) use it so
	// that solver upgrades do not silently reshuffle tied solutions.
	PricingBland
)

// Stats counts the work a Solver has done since creation.
type Stats struct {
	Solves           int // Solve calls
	WarmSolves       int // solves completed from the previous basis
	ColdSolves       int // full two-phase solves
	WarmRejects      int // warm attempts abandoned mid-flight (singular or infeasible basis)
	Pivots           int // total simplex pivots, both phases
	DegeneratePivots int // pivots with a (near-)zero step length
	BlandPivots      int // pivots taken under the anti-cycling rule
}

// Solver solves a sequence of related linear programs, retaining its
// tableau, basis, and scratch vectors between calls. When a problem has
// the same shape as the previous successful solve — same variable count
// and the same normalized constraint senses in the same order — the
// solver warm-starts phase 2 directly from the previous optimal basis
// and skips phase 1 entirely; any failure along the warm path (singular
// refactorization, basis infeasible for the new data) falls back to the
// cold two-phase solve, so results never depend on warm-start success.
//
// The zero value is ready to use. A Solver is not safe for concurrent
// use; give each goroutine its own.
type Solver struct {
	// Pricing selects the entering rule (default PricingDantzig). Change
	// it only between solves.
	Pricing Pricing

	stats Stats

	// Warm-start state recorded after each successful solve.
	haveBasis bool
	wn, wm    int
	wsens     []Sense // normalized senses of the recorded solve
	wbasis    []int

	// Normalized problem scratch (b ≥ 0, rows equilibrated).
	nrows []float64 // m×n, row-major
	nrhs  []float64
	nsens []Sense

	// Tableau scratch. t's row headers alias tbuf.
	tbuf  []float64
	t     [][]float64
	basis []int
	red   []float64
	cost  []float64
	x     []float64
}

// NewSolver returns an empty solver. Equivalent to new(Solver).
func NewSolver() *Solver { return &Solver{} }

// Stats returns cumulative counters since the solver was created.
func (s *Solver) Stats() Stats { return s.stats }

// Reset drops the warm-start state so the next Solve runs cold. Scratch
// memory and statistics are retained.
func (s *Solver) Reset() { s.haveBasis = false }

// Solve optimizes p. The returned solution slice is owned by the solver
// and overwritten by the next call; copy it to retain it.
func (s *Solver) Solve(p *Problem) ([]float64, float64, error) {
	s.stats.Solves++
	n, m := p.n, p.NumConstraints()
	if m == 0 {
		// Unconstrained over x ≥ 0: the optimum sits on the lower bound
		// of every variable, and any strictly negative cost — however
		// small — makes the problem unbounded below. No epsilon here:
		// the costs are the caller's exact values, not tableau
		// arithmetic subject to roundoff.
		s.haveBasis = false
		for _, ci := range p.c {
			if ci < 0 {
				return nil, 0, ErrUnbounded
			}
		}
		s.x = growF(s.x, n)
		for i := range s.x {
			s.x[i] = 0
		}
		return s.x, 0, nil
	}

	// Normalize into scratch: b ≥ 0 (flipping row signs and LE↔GE as
	// needed), rows equilibrated to roughly unit scale.
	s.nrows = growF(s.nrows, m*n)
	s.nrhs = growF(s.nrhs, m)
	s.nsens = growSens(s.nsens, m)
	for i := 0; i < m; i++ {
		row := s.nrows[i*n : (i+1)*n]
		copy(row, p.row(i))
		s.nsens[i] = p.sens[i]
		s.nrhs[i] = p.rhs[i]
		if s.nrhs[i] < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			s.nrhs[i] = -s.nrhs[i]
			switch s.nsens[i] {
			case LE:
				s.nsens[i] = GE
			case GE:
				s.nsens[i] = LE
			}
		}
		equilibrate(row, &s.nrhs[i])
	}

	if s.canWarmStart(n, m) {
		x, obj, err, ok := s.warmSolve(p)
		if ok {
			s.stats.WarmSolves++
			return x, obj, err
		}
		s.stats.WarmRejects++
	}
	s.stats.ColdSolves++
	return s.coldSolve(p)
}

// canWarmStart reports whether the previous optimal basis applies to a
// problem with n variables and m constraints. Only the column layout has
// to line up for the recorded basis to be meaningful: the dimensions,
// and which rows are equations (no slack) versus inequalities (one slack
// each, in row order). An LE row whose normalization flipped to GE since
// the basis was recorded merely negates that slack column — the
// refactorization and the feasibility check decide whether the basis
// still works, which is exactly the warm/cold decision.
func (s *Solver) canWarmStart(n, m int) bool {
	if !s.haveBasis || s.wn != n || s.wm != m {
		return false
	}
	for i := 0; i < m; i++ {
		if (s.wsens[i] == EQ) != (s.nsens[i] == EQ) {
			return false
		}
	}
	return true
}

// ensureTableau sizes the tableau to m rows of w entries each, with row
// headers aliasing one flat buffer.
func (s *Solver) ensureTableau(m, w int) {
	if cap(s.tbuf) < m*w {
		s.tbuf = make([]float64, m*w)
	} else {
		s.tbuf = s.tbuf[:m*w]
	}
	if cap(s.t) < m {
		s.t = make([][]float64, m)
	} else {
		s.t = s.t[:m]
	}
	for i := 0; i < m; i++ {
		s.t[i] = s.tbuf[i*w : (i+1)*w]
	}
}

// loadStructural fills tableau row i with the normalized constraint row,
// zeroed padding columns, and the rhs in the last entry.
func (s *Solver) loadStructural(n, m, ncols int) {
	for i := 0; i < m; i++ {
		ti := s.t[i]
		copy(ti, s.nrows[i*n:(i+1)*n])
		for j := n; j < ncols; j++ {
			ti[j] = 0
		}
		ti[ncols] = s.nrhs[i]
	}
}

// warmSolve re-pivots the previous optimal basis into a tableau built
// from the new data and runs phase 2 from there. ok=false means the warm
// attempt was abandoned and the caller must run the cold path; ok=true
// with a non-nil error is a definitive result (e.g. a genuine unbounded
// certificate from a feasible basis).
func (s *Solver) warmSolve(p *Problem) (xOut []float64, obj float64, err error, ok bool) {
	n, m := p.n, p.NumConstraints()
	nSlack := 0
	for _, sense := range s.nsens {
		if sense != EQ {
			nSlack++
		}
	}
	ncols := n + nSlack
	s.ensureTableau(m, ncols+1)
	s.loadStructural(n, m, ncols)
	si := n
	for i, sense := range s.nsens {
		switch sense {
		case LE:
			s.t[i][si] = 1
			si++
		case GE:
			s.t[i][si] = -1
			si++
		}
	}

	// Refactorize: Gaussian elimination over the recorded basis columns
	// with partial pivoting — for each basic variable, pivot it into the
	// not-yet-assigned row where its coefficient is largest. (The row a
	// variable was basic in last time is meaningless for a freshly built
	// tableau.) A column with no usable pivot means the recorded basis is
	// singular for the new data — bail out to the cold path.
	s.basis = growI(s.basis, m)
	for i := range s.basis {
		s.basis[i] = -1
	}
	for k := 0; k < m; k++ {
		col := s.wbasis[k]
		r, best := -1, warmPivotTol
		for i := 0; i < m; i++ {
			if s.basis[i] != -1 {
				continue
			}
			if a := math.Abs(s.t[i][col]); a > best {
				r, best = i, a
			}
		}
		if r < 0 {
			return nil, 0, nil, false
		}
		pivot(s.t, s.basis, r, col)
	}
	// The re-pivoted basis must be primal feasible for the new rhs.
	for i := 0; i < m; i++ {
		r := s.t[i][ncols]
		if r < -warmFeasTol {
			return nil, 0, nil, false
		}
		if r < 0 {
			s.t[i][ncols] = 0
		}
	}

	s.cost = growF(s.cost, ncols)
	copy(s.cost, p.c)
	for j := n; j < ncols; j++ {
		s.cost[j] = 0
	}
	equilibrate(s.cost[:n])
	if _, err := s.simplex(m, s.cost); err != nil {
		s.haveBasis = false
		if errors.Is(err, ErrUnbounded) {
			// A feasible basis plus an unbounded pivoting direction is a
			// valid certificate; re-running cold would only rediscover it.
			return nil, 0, err, true
		}
		return nil, 0, nil, false
	}
	x, obj := s.extract(p, ncols)
	s.recordBasis(n, m)
	return x, obj, nil, true
}

// coldSolve runs the full two-phase simplex on the normalized data.
func (s *Solver) coldSolve(p *Problem) ([]float64, float64, error) {
	n, m := p.n, p.NumConstraints()
	nSlack, nArt := 0, 0
	for _, sense := range s.nsens {
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	ncols := n + nSlack + nArt
	s.ensureTableau(m, ncols+1)
	s.loadStructural(n, m, ncols)
	s.basis = growI(s.basis, m)
	artCol := n + nSlack // first artificial column
	si, ai := n, artCol
	for i, sense := range s.nsens {
		switch sense {
		case LE:
			s.t[i][si] = 1
			s.basis[i] = si
			si++
		case GE:
			s.t[i][si] = -1
			si++
			s.t[i][ai] = 1
			s.basis[i] = ai
			ai++
		case EQ:
			s.t[i][ai] = 1
			s.basis[i] = ai
			ai++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		s.cost = growF(s.cost, ncols)
		for j := 0; j < artCol; j++ {
			s.cost[j] = 0
		}
		for j := artCol; j < ncols; j++ {
			s.cost[j] = 1
		}
		obj, err := s.simplex(m, s.cost)
		if err != nil {
			s.haveBasis = false
			return nil, 0, err
		}
		if obj > feasTol {
			s.haveBasis = false
			return nil, 0, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for i, b := range s.basis {
			if b < artCol {
				continue
			}
			pivoted := false
			for j := 0; j < artCol; j++ {
				if math.Abs(s.t[i][j]) > eps {
					pivot(s.t, s.basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it never pivots again.
				for j := range s.t[i] {
					s.t[i][j] = 0
				}
				s.basis[i] = -1
			}
		}
		// Forbid artificial columns in phase 2.
		for i := range s.t {
			for j := artCol; j < ncols; j++ {
				s.t[i][j] = 0
			}
		}
	}

	// Phase 2: the real objective (zero cost on slack columns). The cost
	// vector is equilibrated like the rows — scaling the objective by a
	// positive constant moves no vertex, and the returned objective value
	// is recomputed from the caller's coefficients afterwards.
	s.cost = growF(s.cost, ncols)
	copy(s.cost, p.c)
	for j := n; j < ncols; j++ {
		s.cost[j] = 0
	}
	equilibrate(s.cost[:n])
	if _, err := s.simplex(m, s.cost); err != nil {
		s.haveBasis = false
		return nil, 0, err
	}
	x, obj := s.extract(p, ncols)
	s.recordBasis(n, m)
	return x, obj, nil
}

// extract reads the solution out of the tableau and recomputes the
// objective from the caller's (unequilibrated) costs.
func (s *Solver) extract(p *Problem, ncols int) ([]float64, float64) {
	s.x = growF(s.x, p.n)
	for i := range s.x {
		s.x[i] = 0
	}
	for i, b := range s.basis {
		if b >= 0 && b < p.n {
			s.x[b] = s.t[i][ncols]
		}
	}
	var obj float64
	for j, cj := range p.c {
		obj += cj * s.x[j]
	}
	return s.x, obj
}

// recordBasis captures the optimal basis for the next warm start. A
// basis containing a redundant row (-1) or an artificial column cannot
// seed a phase-2-only tableau, so such solves leave the solver cold.
func (s *Solver) recordBasis(n, m int) {
	nSlack := 0
	for _, sense := range s.nsens {
		if sense != EQ {
			nSlack++
		}
	}
	for _, b := range s.basis {
		if b < 0 || b >= n+nSlack {
			s.haveBasis = false
			return
		}
	}
	s.wn, s.wm = n, m
	s.wsens = growSens(s.wsens, m)
	copy(s.wsens, s.nsens)
	s.wbasis = growI(s.wbasis, m)
	copy(s.wbasis, s.basis)
	s.haveBasis = true
}

// simplex optimizes the solver's tableau in place for cost vector c,
// returning the achieved objective. Pricing is Dantzig's rule (most
// negative reduced cost, ties to the smaller index); after blandTrigger
// consecutive degenerate pivots it switches to Bland's rule (smallest
// eligible index), which is cycle-free, until the next improving pivot.
// With PricingBland, every pivot uses Bland's rule.
func (s *Solver) simplex(m int, c []float64) (float64, error) {
	t := s.t[:m]
	basis := s.basis
	ncols := len(c)
	s.red = growF(s.red, ncols)
	red := s.red
	degenRun := 0
	for iter := 0; ; iter++ {
		if iter > iterLimit {
			return 0, errors.New("lp: iteration limit exceeded")
		}
		// Reduced costs: c_j − c_B·B⁻¹A_j, computed from the tableau.
		copy(red, c)
		for i, b := range basis {
			if b < 0 {
				continue
			}
			cb := c[b]
			if cb == 0 {
				continue
			}
			ti := t[i]
			for j := 0; j < ncols; j++ {
				red[j] -= cb * ti[j]
			}
		}
		bland := s.Pricing == PricingBland || degenRun >= blandTrigger
		enter := -1
		if bland {
			// Bland: smallest index with negative reduced cost.
			for j := 0; j < ncols; j++ {
				if red[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			// Dantzig: most negative reduced cost.
			best := -eps
			for j := 0; j < ncols; j++ {
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			var obj float64
			for i, b := range basis {
				if b >= 0 {
					obj += c[b] * t[i][ncols]
				}
			}
			return obj, nil
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if basis[i] < 0 || t[i][enter] <= eps {
				continue
			}
			ratio := t[i][ncols] / t[i][enter]
			if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		s.stats.Pivots++
		if bland {
			s.stats.BlandPivots++
		}
		if best <= eps {
			s.stats.DegeneratePivots++
			degenRun++
		} else {
			degenRun = 0
		}
		pivot(t, basis, leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter int) {
	row := t[leave]
	pv := row[enter]
	for j := range row {
		row[j] /= pv
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		ti := t[i]
		for j := range ti {
			ti[j] -= f * row[j]
		}
	}
	basis[leave] = enter
}
