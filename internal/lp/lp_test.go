package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMinimization(t *testing.T) {
	// min x+y s.t. x+y >= 2, x <= 5 → obj 2.
	p := New(2)
	p.SetObjective([]float64{1, 1})
	p.Add([]float64{1, 1}, GE, 2)
	p.Add([]float64{1, 0}, LE, 5)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 2) {
		t.Fatalf("obj %v, want 2", obj)
	}
	if !approx(x[0]+x[1], 2) {
		t.Fatalf("x %v", x)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6 → x=4,y=0, obj 12.
	p := New(2)
	p.SetObjective([]float64{-3, -2})
	p.Add([]float64{1, 1}, LE, 4)
	p.Add([]float64{1, 3}, LE, 6)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(-obj, 12) || !approx(x[0], 4) || !approx(x[1], 0) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x+y s.t. x+y=3, x>=1 → x=1? No: cost of y is 1 < 2 so put all in
	// y: x=1 forced minimum? x >= 1 → x=1, y=2, obj 4.
	p := New(2)
	p.SetObjective([]float64{2, 1})
	p.Add([]float64{1, 1}, EQ, 3)
	p.Add([]float64{1, 0}, GE, 1)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 4) || !approx(x[0], 1) || !approx(x[1], 2) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.SetObjective([]float64{1})
	p.Add([]float64{1}, GE, 5)
	p.Add([]float64{1}, LE, 3)
	if _, _, err := p.Solve(); err != ErrInfeasible {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(2)
	p.SetObjective([]float64{-1, 0})
	p.Add([]float64{0, 1}, LE, 1)
	if _, _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestUnconstrained(t *testing.T) {
	p := New(3)
	p.SetObjective([]float64{1, 0, 2})
	x, obj, err := p.Solve()
	if err != nil || obj != 0 {
		t.Fatalf("x=%v obj=%v err=%v", x, obj, err)
	}
	p2 := New(1)
	p2.SetObjective([]float64{-1})
	if _, _, err := p2.Solve(); err != ErrUnbounded {
		t.Fatal("unconstrained negative cost must be unbounded")
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x → x=0, y>=2.
	p := New(2)
	p.SetObjective([]float64{1, 0})
	p.Add([]float64{1, -1}, LE, -2)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, 0) || x[1] < 2-1e-6 {
		t.Fatalf("x=%v", x)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	p := New(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.Add([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.Add([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.Add([]float64{0, 0, 1, 0}, LE, 1)
	_, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(obj, -0.05) {
		t.Fatalf("obj %v, want -0.05 (Beale's example)", obj)
	}
}

func TestMakespanStructure(t *testing.T) {
	// A miniature of the balancer's LP: distribute N rows over two devices
	// with speeds k1, k2, minimizing the makespan τ.
	// Vars: m1, m2, τ. min τ s.t. m1+m2=N, ki·mi - τ <= 0.
	const N, k1, k2 = 60, 1.0, 2.0
	p := New(3)
	p.SetObjective([]float64{0, 0, 1})
	p.Add([]float64{1, 1, 0}, EQ, N)
	p.Add([]float64{k1, 0, -1}, LE, 0)
	p.Add([]float64{0, k2, -1}, LE, 0)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: m1=40, m2=20, τ=40 (inverse-speed proportional).
	if !approx(x[0], 40) || !approx(x[1], 20) || !approx(obj, 40) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

// vertexOracle solves tiny LPs by enumerating all basic solutions:
// intersections of n constraint hyperplanes drawn from the constraint set
// plus the axes x_i = 0.
func vertexOracle(p *Problem, rows [][]float64, sens []Sense, rhs []float64) (float64, bool) {
	n := p.NumVars()
	type plane struct {
		a []float64
		b float64
	}
	var planes []plane
	for i := range rows {
		planes = append(planes, plane{rows[i], rhs[i]})
	}
	for i := 0; i < n; i++ {
		a := make([]float64, n)
		a[i] = 1
		planes = append(planes, plane{a, 0})
	}
	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			// Solve the n×n system.
			A := make([][]float64, n)
			for r := 0; r < n; r++ {
				A[r] = append(append([]float64{}, planes[idx[r]].a...), planes[idx[r]].b)
			}
			x, ok := gauss(A)
			if !ok {
				return
			}
			// Feasibility.
			for _, xi := range x {
				if xi < -1e-7 {
					return
				}
			}
			for i := range rows {
				dot := 0.0
				for j := range x {
					dot += rows[i][j] * x[j]
				}
				switch sens[i] {
				case LE:
					if dot > rhs[i]+1e-7 {
						return
					}
				case GE:
					if dot < rhs[i]-1e-7 {
						return
					}
				case EQ:
					if math.Abs(dot-rhs[i]) > 1e-7 {
						return
					}
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.c[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			found = true
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func gauss(a [][]float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		pv := a[col][col]
		for j := col; j <= n; j++ {
			a[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = a[i][n]
	}
	return x, true
}

func TestAgainstVertexOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2)
		m := 1 + rng.Intn(4)
		p := New(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = float64(rng.Intn(11)) // non-negative cost → bounded below
		}
		p.SetObjective(c)
		rows := make([][]float64, m)
		sens := make([]Sense, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = float64(rng.Intn(7) - 3)
			}
			sens[i] = Sense(rng.Intn(3))
			rhs[i] = float64(rng.Intn(15) - 5)
			p.Add(rows[i], sens[i], rhs[i])
		}
		x, obj, err := p.Solve()
		oracleObj, oracleFeasible := vertexOracle(p, rows, sens, rhs)
		if err == ErrInfeasible {
			if oracleFeasible {
				t.Fatalf("trial %d: solver infeasible but oracle found %v", trial, oracleObj)
			}
			continue
		}
		if err == ErrUnbounded {
			continue // oracle cannot certify unboundedness; skip
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !oracleFeasible {
			t.Fatalf("trial %d: solver found %v but oracle says infeasible", trial, x)
		}
		if math.Abs(obj-oracleObj) > 1e-5 {
			t.Fatalf("trial %d: solver obj %v, oracle %v", trial, obj, oracleObj)
		}
		// Verify the returned point satisfies every constraint.
		for i := range rows {
			dot := 0.0
			for j := range x {
				dot += rows[i][j] * x[j]
			}
			switch sens[i] {
			case LE:
				if dot > rhs[i]+1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, i)
				}
			case GE:
				if dot < rhs[i]-1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, i)
				}
			case EQ:
				if math.Abs(dot-rhs[i]) > 1e-6 {
					t.Fatalf("trial %d: constraint %d violated", trial, i)
				}
			}
		}
	}
}

func TestPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(0) did not panic")
			}
		}()
		New(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized constraint did not panic")
			}
		}()
		New(1).Add([]float64{1, 2}, LE, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong objective size did not panic")
			}
		}()
		New(2).SetObjective([]float64{1})
	}()
}

func TestShortConstraintIsPadded(t *testing.T) {
	p := New(3)
	p.Coef(2, 1)
	p.Add([]float64{1}, GE, 5) // only x0
	x, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 5-1e-6 {
		t.Fatalf("x %v", x)
	}
	if p.NumConstraints() != 1 || p.NumVars() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Sense(9).String() != "?" {
		t.Fatal("Sense labels wrong")
	}
}

func BenchmarkBalancerSizedLP(b *testing.B) {
	// The shape of one Algorithm 2 instance for a 6-device platform:
	// 21 variables, ~30 constraints.
	build := func() *Problem {
		p := New(21)
		p.Coef(20, 1)
		rng := rand.New(rand.NewSource(7))
		for c := 0; c < 3; c++ {
			a := make([]float64, 21)
			for i := 0; i < 6; i++ {
				a[c*6+i] = 1
			}
			p.Add(a, EQ, 68)
		}
		for c := 0; c < 24; c++ {
			a := make([]float64, 21)
			for i := 0; i < 3; i++ {
				a[rng.Intn(18)] = rng.Float64() * 1e-3
			}
			a[18+rng.Intn(2)] = 1
			a[20] = -1
			p.Add(a, LE, 0)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := build().Solve(); err != nil && err != ErrInfeasible && err != ErrUnbounded {
			b.Fatal(err)
		}
	}
}

func TestLargeRandomProblemsSolveCleanly(t *testing.T) {
	// Stress: problems an order of magnitude larger than the balancer's,
	// checking only internal consistency (solutions satisfy constraints).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(30)
		m := 20 + rng.Intn(40)
		p := New(n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 10 // non-negative: bounded below
		}
		p.SetObjective(c)
		rows := make([][]float64, m)
		sens := make([]Sense, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			for j := 0; j < 5; j++ {
				rows[i][rng.Intn(n)] = rng.Float64()*6 - 3
			}
			sens[i] = Sense(rng.Intn(3))
			rhs[i] = rng.Float64()*20 - 5
			p.Add(rows[i], sens[i], rhs[i])
		}
		x, obj, err := p.Solve()
		if err == ErrInfeasible || err == ErrUnbounded {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var check float64
		for j := range x {
			if x[j] < -1e-7 {
				t.Fatalf("trial %d: negative variable", trial)
			}
			check += c[j] * x[j]
		}
		if math.Abs(check-obj) > 1e-5*(1+math.Abs(obj)) {
			t.Fatalf("trial %d: objective mismatch", trial)
		}
		for i := range rows {
			dot := 0.0
			for j := range x {
				dot += rows[i][j] * x[j]
			}
			tol := 1e-5 * (1 + math.Abs(rhs[i]))
			switch sens[i] {
			case LE:
				if dot > rhs[i]+tol {
					t.Fatalf("trial %d: constraint %d violated (%v > %v)", trial, i, dot, rhs[i])
				}
			case GE:
				if dot < rhs[i]-tol {
					t.Fatalf("trial %d: constraint %d violated", trial, i)
				}
			case EQ:
				if math.Abs(dot-rhs[i]) > tol {
					t.Fatalf("trial %d: equality %d violated", trial, i)
				}
			}
		}
	}
}

// TestMixedMagnitudeScales pins the solver's scale awareness: constraint
// rows whose coefficients live at wildly different magnitudes (~1e9 next
// to ~1, and ~1e-10) must neither trip the absolute pivot/feasibility
// tolerances nor distort the solution. The tiny-coefficient case is the
// historical failure: with a fixed eps = 1e-9 the only eligible pivot
// entry (5e-10) was treated as zero and a bounded problem was reported
// unbounded.
func TestMixedMagnitudeScales(t *testing.T) {
	t.Run("tiny pivot entry", func(t *testing.T) {
		// maximize x subject to 5e-10·x ≤ 1 → x = 2e9.
		p := New(1)
		p.Coef(0, -1)
		p.Add([]float64{5e-10}, LE, 1)
		x, obj, err := p.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if want := 2e9; math.Abs(x[0]-want) > 1e-6*want {
			t.Fatalf("x = %v, want %v", x[0], want)
		}
		if want := -2e9; math.Abs(obj-want) > 1e-6*math.Abs(want) {
			t.Fatalf("obj = %v, want %v", obj, want)
		}
	})

	t.Run("huge and unit rows", func(t *testing.T) {
		// minimize x+y s.t. 1.1e9·x + 2.3e9·y = 3.4e9, x − y = 0 → x = y = 1.
		p := New(2)
		p.SetObjective([]float64{1, 1})
		p.Add([]float64{1.1e9, 2.3e9}, EQ, 3.4e9)
		p.Add([]float64{1, -1}, EQ, 0)
		x, _, err := p.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for j := range x {
			if math.Abs(x[j]-1) > 1e-9 {
				t.Fatalf("x = %v, want [1 1]", x)
			}
		}
	})

	t.Run("tiny rows stay feasible", func(t *testing.T) {
		// The same balanced system shrunk to ~1e-10 scale: a fixed absolute
		// tolerance treats every coefficient as zero.
		p := New(2)
		p.SetObjective([]float64{1, 1})
		p.Add([]float64{1.1e-10, 2.3e-10}, EQ, 3.4e-10)
		p.Add([]float64{1e-10, -1e-10}, EQ, 0)
		x, _, err := p.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for j := range x {
			if math.Abs(x[j]-1) > 1e-6 {
				t.Fatalf("x = %v, want [1 1]", x)
			}
		}
	})
}
