// Package lp implements a dense two-phase primal simplex solver for the
// linear programs at the heart of the FEVES Load Balancing routine
// (Algorithm 2 of the paper). Problems are stated as
//
//	minimize    c·x
//	subject to  A_i·x {≤,=,≥} b_i,   x ≥ 0
//
// Phase 1 finds a basic feasible solution with artificial variables;
// phase 2 optimizes the real objective. Pricing is Dantzig's rule
// (steepest reduced cost) with an automatic switch to Bland's rule after
// a bounded run of degenerate pivots, which guarantees termination. The
// solver is stdlib-only and sized for the small problems the balancer
// produces (tens of variables and constraints per frame), where its
// runtime is far below the paper's 2 ms scheduling budget.
//
// The balancer re-solves a near-identical LP every frame, so Solver
// retains its tableau, basis, and scratch vectors across calls and
// warm-starts from the previous optimal basis when the problem shape is
// unchanged; Problem.Solve remains a one-shot convenience wrapper.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// ErrInfeasible is returned when no point satisfies all constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// The solver's fixed tolerances (eps, feasTol) assume coefficients of
// roughly unit magnitude. Rows and objectives whose largest coefficient
// falls outside [scaleLo, scaleHi] are equilibrated by a power of two —
// exact in binary floating point — which makes the fixed tolerances
// effectively relative to each row's scale. Rows inside the band (all
// the balancer's problems) are left untouched, bit for bit.
const (
	scaleLo = 1e-6
	scaleHi = 1e6
)

// feasTol bounds the phase-1 objective (sum of artificial variables) of
// a feasible problem. Applied after row equilibration, it is a relative
// infeasibility measure, not an absolute one.
const feasTol = 1e-6

// equilibrate scales v (and the paired rhs values) by the power of two
// that brings its largest magnitude into [1, 2) — only when that
// magnitude lies outside the well-scaled band.
func equilibrate(v []float64, rhs ...*float64) {
	maxc := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxc {
			maxc = a
		}
	}
	if maxc == 0 || (maxc >= scaleLo && maxc <= scaleHi) {
		return
	}
	_, e := math.Frexp(maxc)
	f := math.Ldexp(1, 1-e)
	for j := range v {
		v[j] *= f
	}
	for _, r := range rhs {
		*r *= f
	}
}

// Problem is a linear program under construction. Constraint storage is
// a single flat row-major slice so that a Problem reset and rebuilt every
// frame reaches a steady state with no per-frame allocations.
type Problem struct {
	n    int
	c    []float64
	a    []float64 // m rows × n coefficients, row-major
	sens []Sense
	rhs  []float64
}

// New creates a problem with nvars non-negative variables and a zero
// objective.
func New(nvars int) *Problem {
	p := &Problem{}
	p.Reset(nvars)
	return p
}

// Reset clears the problem back to nvars variables, a zero objective and
// no constraints, retaining the underlying storage so a rebuilt problem
// of the same shape allocates nothing.
func (p *Problem) Reset(nvars int) {
	if nvars <= 0 {
		panic("lp: need at least one variable")
	}
	p.n = nvars
	p.c = growF(p.c, nvars)
	for i := range p.c {
		p.c[i] = 0
	}
	p.a = p.a[:0]
	p.sens = p.sens[:0]
	p.rhs = p.rhs[:0]
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjective sets the cost vector to minimize.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.n {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(c), p.n))
	}
	copy(p.c, c)
}

// Coef sets a single objective coefficient.
func (p *Problem) Coef(i int, v float64) { p.c[i] = v }

// Add appends the constraint a·x (sense) b. The coefficient slice is
// copied; it may be shorter than the variable count (missing entries are
// zero).
func (p *Problem) Add(a []float64, s Sense, b float64) {
	if len(a) > p.n {
		panic(fmt.Sprintf("lp: constraint has %d coefficients for %d variables", len(a), p.n))
	}
	off := len(p.a)
	if cap(p.a) >= off+p.n {
		p.a = p.a[:off+p.n]
		for i := off; i < off+p.n; i++ {
			p.a[i] = 0
		}
	} else {
		p.a = append(p.a, make([]float64, p.n)...)
	}
	copy(p.a[off:], a)
	p.sens = append(p.sens, s)
	p.rhs = append(p.rhs, b)
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.sens) }

// row returns constraint i's coefficient vector.
func (p *Problem) row(i int) []float64 { return p.a[i*p.n : (i+1)*p.n] }

// Solve runs two-phase simplex and returns an optimal x and objective.
// It is a one-shot wrapper over a fresh Solver; callers solving a
// sequence of related problems should hold a Solver to reuse scratch
// memory and warm-start from the previous basis.
func (p *Problem) Solve() ([]float64, float64, error) {
	var s Solver
	return s.Solve(p)
}

// growF returns s resized to n entries, reusing its backing array when
// large enough. Contents are unspecified.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growSens(s []Sense, n int) []Sense {
	if cap(s) < n {
		return make([]Sense, n)
	}
	return s[:n]
}
