// Package lp implements a dense two-phase primal simplex solver for the
// linear programs at the heart of the FEVES Load Balancing routine
// (Algorithm 2 of the paper). Problems are stated as
//
//	minimize    c·x
//	subject to  A_i·x {≤,=,≥} b_i,   x ≥ 0
//
// Phase 1 finds a basic feasible solution with artificial variables;
// phase 2 optimizes the real objective. Bland's rule guarantees
// termination. The solver is stdlib-only and sized for the small problems
// the balancer produces (tens of variables and constraints per frame),
// where its runtime is far below the paper's 2 ms scheduling budget.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint relation.
type Sense int

const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// ErrInfeasible is returned when no point satisfies all constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// The solver's fixed tolerances (eps, feasTol) assume coefficients of
// roughly unit magnitude. Rows and objectives whose largest coefficient
// falls outside [scaleLo, scaleHi] are equilibrated by a power of two —
// exact in binary floating point — which makes the fixed tolerances
// effectively relative to each row's scale. Rows inside the band (all
// the balancer's problems) are left untouched, bit for bit.
const (
	scaleLo = 1e-6
	scaleHi = 1e6
)

// feasTol bounds the phase-1 objective (sum of artificial variables) of
// a feasible problem. Applied after row equilibration, it is a relative
// infeasibility measure, not an absolute one.
const feasTol = 1e-6

// equilibrate scales v (and the paired rhs values) by the power of two
// that brings its largest magnitude into [1, 2) — only when that
// magnitude lies outside the well-scaled band.
func equilibrate(v []float64, rhs ...*float64) {
	maxc := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxc {
			maxc = a
		}
	}
	if maxc == 0 || (maxc >= scaleLo && maxc <= scaleHi) {
		return
	}
	_, e := math.Frexp(maxc)
	f := math.Ldexp(1, 1-e)
	for j := range v {
		v[j] *= f
	}
	for _, r := range rhs {
		*r *= f
	}
}

// Problem is a linear program under construction.
type Problem struct {
	n    int
	c    []float64
	rows [][]float64
	sens []Sense
	rhs  []float64
}

// New creates a problem with nvars non-negative variables and a zero
// objective.
func New(nvars int) *Problem {
	if nvars <= 0 {
		panic("lp: need at least one variable")
	}
	return &Problem{n: nvars, c: make([]float64, nvars)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjective sets the cost vector to minimize.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.n {
		panic(fmt.Sprintf("lp: objective has %d coefficients for %d variables", len(c), p.n))
	}
	copy(p.c, c)
}

// Coef sets a single objective coefficient.
func (p *Problem) Coef(i int, v float64) { p.c[i] = v }

// Add appends the constraint a·x (sense) b. The coefficient slice is
// copied; it may be shorter than the variable count (missing entries are
// zero).
func (p *Problem) Add(a []float64, s Sense, b float64) {
	if len(a) > p.n {
		panic(fmt.Sprintf("lp: constraint has %d coefficients for %d variables", len(a), p.n))
	}
	row := make([]float64, p.n)
	copy(row, a)
	p.rows = append(p.rows, row)
	p.sens = append(p.sens, s)
	p.rhs = append(p.rhs, b)
}

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solve runs two-phase simplex and returns an optimal x and objective.
func (p *Problem) Solve() ([]float64, float64, error) {
	m := len(p.rows)
	if m == 0 {
		// Unconstrained: x = 0 is optimal unless some cost is negative,
		// in which case the problem is unbounded below.
		for _, ci := range p.c {
			if ci < -eps {
				return nil, 0, ErrUnbounded
			}
		}
		return make([]float64, p.n), 0, nil
	}

	// Normalize to b >= 0 and count extra columns.
	rows := make([][]float64, m)
	sens := make([]Sense, m)
	rhs := make([]float64, m)
	for i := range p.rows {
		rows[i] = append([]float64(nil), p.rows[i]...)
		sens[i] = p.sens[i]
		rhs[i] = p.rhs[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			switch sens[i] {
			case LE:
				sens[i] = GE
			case GE:
				sens[i] = LE
			}
		}
		equilibrate(rows[i], &rhs[i])
	}
	nSlack, nArt := 0, 0
	for _, s := range sens {
		switch s {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	ncols := p.n + nSlack + nArt
	t := make([][]float64, m) // tableau rows, last entry is rhs
	for i := range t {
		t[i] = make([]float64, ncols+1)
		copy(t[i], rows[i])
		t[i][ncols] = rhs[i]
	}
	basis := make([]int, m)
	artCol := p.n + nSlack // first artificial column
	si, ai := p.n, artCol
	isArt := make([]bool, ncols)
	for i, s := range sens {
		switch s {
		case LE:
			t[i][si] = 1
			basis[i] = si
			si++
		case GE:
			t[i][si] = -1
			si++
			t[i][ai] = 1
			basis[i] = ai
			isArt[ai] = true
			ai++
		case EQ:
			t[i][ai] = 1
			basis[i] = ai
			isArt[ai] = true
			ai++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		c1 := make([]float64, ncols)
		for j := artCol; j < ncols; j++ {
			c1[j] = 1
		}
		obj, err := simplex(t, basis, c1)
		if err != nil {
			return nil, 0, err
		}
		if obj > feasTol {
			return nil, 0, ErrInfeasible
		}
		// Drive remaining artificials out of the basis.
		for i, b := range basis {
			if b < artCol {
				continue
			}
			pivoted := false
			for j := 0; j < artCol; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it never pivots again.
				for j := range t[i] {
					t[i][j] = 0
				}
				basis[i] = -1
			}
		}
		// Forbid artificial columns in phase 2.
		for i := range t {
			for j := artCol; j < ncols; j++ {
				t[i][j] = 0
			}
		}
	}

	// Phase 2: the real objective (zero cost on slack columns). The cost
	// vector is equilibrated like the rows — scaling the objective by a
	// positive constant moves no vertex, and the returned objective value
	// is recomputed from the caller's coefficients below.
	c2 := make([]float64, ncols)
	copy(c2, p.c)
	equilibrate(c2[:p.n])
	if _, err := simplex(t, basis, c2); err != nil {
		return nil, 0, err
	}

	x := make([]float64, p.n)
	for i, b := range basis {
		if b >= 0 && b < p.n {
			x[b] = t[i][ncols]
		}
	}
	var obj float64
	for j, cj := range p.c {
		obj += cj * x[j]
	}
	return x, obj, nil
}

// simplex optimizes the tableau in place for cost vector c, returning the
// achieved objective. Bland's rule (smallest eligible index) prevents
// cycling.
func simplex(t [][]float64, basis []int, c []float64) (float64, error) {
	m := len(t)
	ncols := len(c)
	red := make([]float64, ncols)
	for iter := 0; ; iter++ {
		if iter > 20000 {
			return 0, errors.New("lp: iteration limit exceeded")
		}
		// Reduced costs: c_j − c_B·B⁻¹A_j, computed from the tableau.
		copy(red, c)
		for i, b := range basis {
			if b < 0 {
				continue
			}
			cb := c[b]
			if cb == 0 {
				continue
			}
			for j := 0; j < ncols; j++ {
				red[j] -= cb * t[i][j]
			}
		}
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < ncols; j++ {
			if red[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			var obj float64
			for i, b := range basis {
				if b >= 0 {
					obj += c[b] * t[i][ncols]
				}
			}
			return obj, nil
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if basis[i] < 0 || t[i][enter] <= eps {
				continue
			}
			ratio := t[i][ncols] / t[i][enter]
			if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || basis[i] < basis[leave])) {
				best = ratio
				leave = i
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		pivot(t, basis, leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter int) {
	row := t[leave]
	pv := row[enter]
	for j := range row {
		row[j] /= pv
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * row[j]
		}
	}
	basis[leave] = enter
}
