package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// rowScratch is the shared constraint-row buffer of balancerLike, so the
// zero-allocation test measures the solver, not the test scaffolding.
var rowScratch [64]float64

// balancerLike builds an Algorithm-2-shaped problem into p: nd devices
// (3nd+3 variables for the m/l/s blocks plus τ1/τ2/τtot), three EQ sum
// rows, the τ ordering rows, and per-device makespan chains with the
// given per-device speeds.
func balancerLike(p *Problem, nd int, rows float64, k []float64) {
	nv := 3*nd + 3
	p.Reset(nv)
	p.Coef(nv-1, 1)
	p.Coef(nv-3, 1e-3)
	p.Coef(nv-2, 1e-3)
	a := rowScratch[:nv]
	zero := func() {
		for j := range a {
			a[j] = 0
		}
	}
	for blk := 0; blk < 3; blk++ {
		zero()
		for i := 0; i < nd; i++ {
			a[blk*nd+i] = 1
		}
		p.Add(a, EQ, rows)
	}
	zero()
	a[nv-3], a[nv-2] = 1, -1
	p.Add(a, LE, 0) // τ1 ≤ τ2
	zero()
	a[nv-2], a[nv-1] = 1, -1
	p.Add(a, LE, 0) // τ2 ≤ τtot
	// Per-device chains: k·m ≤ τ1, k·(m+l) ≤ τ2, k·(m+l+s) ≤ τtot.
	for i := 0; i < nd; i++ {
		zero()
		a[i], a[nv-3] = k[i], -1
		p.Add(a, LE, 0)
		zero()
		a[i], a[nd+i], a[nv-2] = k[i], k[i], -1
		p.Add(a, LE, 0)
		zero()
		a[i], a[nd+i], a[2*nd+i], a[nv-1] = k[i], k[i], k[i], -1
		p.Add(a, LE, 0)
	}
}

// TestWarmMatchesColdOnDriftingSequences is the warm-start correctness
// property: over sequences of slowly drifting balancer-shaped LPs, a
// warm-starting Solver must agree with an independent cold solve of every
// instance to within tolerance — and the warm path must actually engage,
// otherwise the property is vacuous.
func TestWarmMatchesColdOnDriftingSequences(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nd := 2 + rng.Intn(5)
		k := make([]float64, nd)
		for i := range k {
			k[i] = 1e-4 * (0.5 + rng.Float64())
		}
		warm := NewSolver()
		cold := NewSolver()
		p, q := New(1), New(1)
		for frame := 0; frame < 40; frame++ {
			// EWMA-like drift of the device speeds between frames.
			for i := range k {
				k[i] *= 1 + 0.05*(rng.Float64()-0.5)
			}
			balancerLike(p, nd, 68, k)
			balancerLike(q, nd, 68, k)
			xw, objW, errW := warm.Solve(p)
			cold.Reset() // force the reference solver cold every call
			xc, objC, errC := cold.Solve(q)
			if errW != nil || errC != nil {
				t.Fatalf("seed %d frame %d: warm err %v cold err %v", seed, frame, errW, errC)
			}
			if math.Abs(objW-objC) > 1e-6*(1+math.Abs(objC)) {
				t.Fatalf("seed %d frame %d: warm obj %v vs cold %v (warm x=%v cold x=%v)",
					seed, frame, objW, objC, xw, xc)
			}
			// The warm solution must satisfy the constraints it was built
			// from (spot-check the EQ rows: each block sums to rows).
			for blk := 0; blk < 3; blk++ {
				sum := 0.0
				for i := 0; i < nd; i++ {
					sum += xw[blk*nd+i]
				}
				if math.Abs(sum-68) > 1e-6 {
					t.Fatalf("seed %d frame %d: block %d sums to %v", seed, frame, blk, sum)
				}
			}
		}
		st := warm.Stats()
		if st.WarmSolves < 30 {
			t.Fatalf("seed %d: warm path engaged only %d/40 times (stats %+v)", seed, st.WarmSolves, st)
		}
	}
}

// TestWarmRejectsDimensionChange pins the shape gate: a solve with a
// different variable or constraint count must fall back cold, not
// misapply the recorded basis.
func TestWarmRejectsDimensionChange(t *testing.T) {
	s := NewSolver()
	p := New(1)
	k3 := []float64{1e-4, 2e-4, 3e-4}
	balancerLike(p, 3, 68, k3)
	if _, _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	balancerLike(p, 2, 68, k3[:2])
	if _, _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ColdSolves != 2 || st.WarmSolves != 0 {
		t.Fatalf("dimension change did not force a cold solve: %+v", st)
	}
	// WarmRejects counts abandoned warm *attempts*; a shape mismatch never
	// even attempts, so the counter stays zero.
	if st.WarmRejects != 0 {
		t.Fatalf("shape mismatch counted as a warm reject: %+v", st)
	}
}

// TestWarmUnboundedIsDefinitive: when a warm basis is feasible and phase 2
// finds an unbounded direction, the certificate is returned directly (no
// silent cold re-run that would just rediscover it).
func TestWarmUnboundedIsDefinitive(t *testing.T) {
	s := NewSolver()
	p := New(2)
	p.SetObjective([]float64{1, 0})
	p.Add([]float64{1, -1}, LE, 4)
	if _, _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ColdSolves != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	// Same shape, objective now unbounded along x1.
	p.Reset(2)
	p.SetObjective([]float64{0, -1})
	p.Add([]float64{1, -1}, LE, 4)
	_, _, err := s.Solve(p)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

// TestZeroConstraintStrictNegativity pins the m==0 fast path fixed in
// this pass: any strictly negative cost — even one far below the solver's
// internal eps — makes the unconstrained problem unbounded, because the
// costs are the caller's exact values, not tableau arithmetic. The old
// code used an epsilon comparison and silently returned "optimal x = 0"
// for tiny negative costs.
func TestZeroConstraintStrictNegativity(t *testing.T) {
	p := New(1)
	p.SetObjective([]float64{-1e-12})
	if _, _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("c=[-1e-12] with no constraints: want ErrUnbounded, got %v", err)
	}

	p = New(3)
	p.SetObjective([]float64{0, 2, 1e-300})
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 {
		t.Fatalf("obj %v", obj)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
}

// TestBlandFallbackEngagesOnDegeneracy regression-tests the anti-cycling
// machinery with a cycling-prone degenerate LP under Dantzig pricing:
// Beale's classic example, on which textbook most-negative-cost pricing
// with naive tie-breaking cycles forever. The solve must terminate at the
// known optimum, and on heavily degenerate inputs the solver must be
// *able* to fall back to Bland pivots (witnessed by the stats counter on
// a synthetic long degenerate run).
func TestBlandFallbackEngagesOnDegeneracy(t *testing.T) {
	s := NewSolver() // default PricingDantzig
	p := New(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.Add([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.Add([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.Add([]float64{0, 0, 1, 0}, LE, 1)
	_, obj, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-(-0.05)) > 1e-9 {
		t.Fatalf("Beale's example: obj %v, want -0.05", obj)
	}
	if s.Stats().DegeneratePivots == 0 {
		t.Fatalf("Beale's example produced no degenerate pivots: %+v", s.Stats())
	}

	// A batch of highly degenerate random LPs (every rhs zero except one
	// normalizing row) must all terminate under Dantzig pricing; across
	// the batch the degenerate-run trigger must have fired at least once,
	// proving the fallback is reachable, exercised, and terminating.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 4 + rng.Intn(6)
		m := 6 + rng.Intn(10)
		p := New(n)
		for j := 0; j < n; j++ {
			p.Coef(j, rng.NormFloat64())
		}
		a := make([]float64, n)
		for i := 0; i < m; i++ {
			for j := range a {
				a[j] = float64(rng.Intn(5) - 2)
			}
			p.Add(a, LE, 0)
		}
		for j := range a {
			a[j] = 1
		}
		p.Add(a, LE, 1)
		if _, _, err := s.Solve(p); err != nil &&
			!errors.Is(err, ErrUnbounded) && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if s.Stats().BlandPivots == 0 {
		t.Fatalf("degenerate batch never engaged Bland fallback: %+v", s.Stats())
	}
}

// TestPricingBlandAlwaysBland: with PricingBland every pivot is a Bland
// pivot — the balancer relies on this for stable vertex selection among
// alternative optima.
func TestPricingBlandAlwaysBland(t *testing.T) {
	s := NewSolver()
	s.Pricing = PricingBland
	p := New(1)
	balancerLike(p, 4, 68, []float64{1e-4, 1e-4, 1e-4, 1e-4})
	if _, _, err := s.Solve(p); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Pivots == 0 || st.BlandPivots != st.Pivots {
		t.Fatalf("PricingBland took non-Bland pivots: %+v", st)
	}
}

// TestWarmSolveZeroAllocs asserts the tentpole's steady-state contract:
// once warmed, rebuilding the problem into retained storage and warm
// solving allocates nothing at all.
func TestWarmSolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	s := NewSolver()
	p := New(1)
	k := []float64{1.0e-4, 1.5e-4, 2.2e-4, 0.8e-4}
	step := func() {
		balancerLike(p, 4, 68, k)
		if _, _, err := s.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	step() // cold solve sizes every scratch buffer
	step() // first warm solve
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state warm solve allocates %v per call, want 0", n)
	}
	if s.Stats().WarmSolves == 0 {
		t.Fatalf("alloc test never warm-solved: %+v", s.Stats())
	}
}

func BenchmarkLPColdSolve(b *testing.B) {
	s := NewSolver()
	p := New(1)
	k := []float64{1.0e-4, 1.5e-4, 2.2e-4, 0.8e-4, 1.1e-4, 0.9e-4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		balancerLike(p, 6, 68, k)
		s.Reset()
		if _, _, err := s.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPWarmSolve(b *testing.B) {
	s := NewSolver()
	p := New(1)
	k := []float64{1.0e-4, 1.5e-4, 2.2e-4, 0.8e-4, 1.1e-4, 0.9e-4}
	balancerLike(p, 6, 68, k)
	if _, _, err := s.Solve(p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		balancerLike(p, 6, 68, k)
		if _, _, err := s.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.WarmSolves < st.Solves/2 {
		b.Fatalf("warm benchmark mostly ran cold: %+v", st)
	}
}
