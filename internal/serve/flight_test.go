package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"feves/internal/telemetry"
)

// TestObservabilityEndpointsCaptureDeviceDeath is the observability e2e:
// a tenant's GPU dies mid-run under an armed deadline, and the flight
// recorder served at /debug/flight must hand an operator the whole story —
// a post-mortem bundle naming the failing device, the DeadlineError blame
// trail, and the failover re-lease — while /debug/state shows the shrunk
// pool and /debug/trace carries one lane per tenant.
func TestObservabilityEndpointsCaptureDeviceDeath(t *testing.T) {
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTraceWriterCap(8192),
		Flight:  telemetry.NewFlightRecorder(32),
	}
	s, err := New(Config{
		Platform:      testPlatform(t),
		MaxSessions:   2,
		QueueDepth:    8,
		Telemetry:     tel,
		DeadlineSlack: 3,
		FaultSpec:     "die:GPU_F@8",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	jobs := make([]*Job, 2)
	for i := range jobs {
		j, err := s.Submit(simSpec(25))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := j.Wait(); st != StatusDone {
			t.Fatalf("job %d finished %q (%s)", i, st, j.Status().Error)
		}
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	getJSON := func(path string, into interface{}) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	// /debug/flight: the post-mortem bundles.
	var doc telemetry.FlightDoc
	getJSON("/debug/flight", &doc)
	if len(doc.Bundles) == 0 {
		t.Fatal("no post-mortem bundles captured across a device death")
	}
	var excluded, failover *telemetry.Bundle
	for i := range doc.Bundles {
		switch doc.Bundles[i].Reason {
		case "device_excluded":
			excluded = &doc.Bundles[i]
		case "pool_failover":
			failover = &doc.Bundles[i]
		}
	}
	if excluded == nil {
		t.Fatalf("no device_excluded bundle; reasons: %v", bundleReasons(doc.Bundles))
	}
	if !strings.Contains(excluded.Detail, "device 0 excluded") {
		t.Errorf("exclusion bundle does not name the dead device: %q", excluded.Detail)
	}
	if excluded.Session == "" {
		t.Error("exclusion bundle carries no session label")
	}
	if failover == nil {
		t.Fatalf("no pool_failover bundle; reasons: %v", bundleReasons(doc.Bundles))
	}
	kinds := map[string]telemetry.Incident{}
	for _, in := range failover.Incidents {
		kinds[in.Kind] = in
	}
	if in, ok := kinds["frame_retry"]; !ok {
		t.Error("failover bundle has no frame_retry incident (the DeadlineError blame)")
	} else if !strings.Contains(in.Detail, "deadline") || in.Device != 0 {
		t.Errorf("frame_retry incident does not blame device 0's deadline: %+v", in)
	}
	if in, ok := kinds["device_down"]; !ok {
		t.Error("failover bundle has no device_down incident")
	} else if in.Device != 0 || !strings.Contains(in.Detail, "GPU_F") {
		t.Errorf("device_down incident does not name device 0 (GPU_F): %+v", in)
	}
	if in, ok := kinds["re_lease"]; !ok {
		t.Error("failover bundle has no re_lease incident — failover pickup missing")
	} else if !strings.Contains(in.Detail, "epoch") {
		t.Errorf("re_lease incident names no epoch: %+v", in)
	}
	if len(failover.Frames) == 0 {
		t.Error("failover bundle captured no frame window")
	}

	// /debug/state: the shrunk pool topology.
	var state State
	getJSON("/debug/state", &state)
	if state.Pool.Capacity != 6 || state.Pool.Up != 5 {
		t.Errorf("pool state capacity/up = %d/%d, want 6/5", state.Pool.Capacity, state.Pool.Up)
	}
	if len(state.Pool.Devices) == 0 || !state.Pool.Devices[0].Down {
		t.Errorf("pool state does not show device 0 down: %+v", state.Pool.Devices)
	}
	if state.QueueCap != 8 || state.MaxSessions != 2 {
		t.Errorf("state queue_cap/max_sessions = %d/%d, want 8/2", state.QueueCap, state.MaxSessions)
	}

	// /debug/trace: one Perfetto lane per tenant.
	trace := getBody(t, srv.URL+"/debug/trace")
	for _, j := range jobs {
		if !strings.Contains(trace, `"name":"`+j.ID()+`"`) {
			t.Errorf("trace snapshot has no process lane for tenant %s", j.ID())
		}
	}

	// /metrics: the per-session LP counters and the bundle counter.
	scrape := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{"feves_lp_solves_total{", "feves_flight_bundles_total{"} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func bundleReasons(bs []telemetry.Bundle) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Reason
	}
	return out
}
