package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
)

// Mode names the two job kinds.
const (
	ModeSimulate = "simulate"
	ModeEncode   = "encode"
)

// JobSpec describes one encode or simulate job. The zero values of the
// optional coding parameters select the paper's evaluation configuration
// (SA 32×32, 1 RF, QP {27, 28}).
type JobSpec struct {
	// Name is an optional caller label echoed in status output.
	Name string `json:"name,omitempty"`
	// Mode is "simulate" (timing-only, any resolution, no input needed)
	// or "encode" (functional coding of the supplied YUV frames).
	Mode string `json:"mode"`
	// Width and Height are the frame dimensions in pixels (multiples of 16).
	Width  int `json:"width"`
	Height int `json:"height"`
	// Frames is the number of frames to simulate (including the leading
	// intra frame). Ignored for encode jobs, whose frame count follows
	// from len(YUV).
	Frames int `json:"frames,omitempty"`
	// SearchArea is the SA size in pixels (0 = the paper's 32).
	SearchArea int `json:"search_area,omitempty"`
	// RefFrames is the reference-frame count (0 = 1).
	RefFrames int `json:"ref_frames,omitempty"`
	// IQP/PQP are the quantization parameters (0 = the paper's 27/28).
	IQP int `json:"iqp,omitempty"`
	PQP int `json:"pqp,omitempty"`
	// IntraPeriod inserts an IDR every IntraPeriod frames (0 = IPPP).
	IntraPeriod int `json:"intra_period,omitempty"`
	// SceneCutThreshold enables the codec's adaptive IDR insertion: frames
	// whose mean motion-compensated cost per pixel exceeds it are coded
	// intra (0 disables detection; see codec.Config.SceneCutThreshold).
	SceneCutThreshold float64 `json:"scene_cut_threshold,omitempty"`
	// FrameBase offsets the session's display frame numbering: frame i of
	// the input runs as global frame FrameBase+i — intra cadence, jitter
	// identity, telemetry and results all use the global index. The fleet
	// layer shards one stream into GOP runs and gives each shard session
	// its global numbering this way. Non-zero values require IntraPeriod >
	// 0 with FrameBase a multiple of it, so the shard opens on an IDR.
	FrameBase int `json:"frame_base,omitempty"`
	// FrameParallel runs the session with two inter frames in flight over
	// dual reference chains (see feves.Config.FrameParallel). Encode jobs
	// produce the two-chain bitstream; simulate jobs report the paired
	// throughput.
	FrameParallel bool `json:"frame_parallel,omitempty"`
	// YUV holds the concatenated packed I420 frames of an encode job
	// (base64 in JSON).
	YUV []byte `json:"yuv,omitempty"`
}

func (sp JobSpec) withDefaults() JobSpec {
	if sp.SearchArea == 0 {
		sp.SearchArea = 32
	}
	if sp.RefFrames == 0 {
		sp.RefFrames = 1
	}
	if sp.IQP == 0 {
		sp.IQP = 27
	}
	if sp.PQP == 0 {
		sp.PQP = 28
	}
	return sp
}

// frameBytes is the packed I420 size of one frame.
func (sp JobSpec) frameBytes() int { return sp.Width * sp.Height * 3 / 2 }

// frameCount returns the number of frames the job will process.
func (sp JobSpec) frameCount() int {
	if sp.Mode == ModeEncode {
		if fb := sp.frameBytes(); fb > 0 {
			return len(sp.YUV) / fb
		}
		return 0
	}
	return sp.Frames
}

func (sp JobSpec) validate() error {
	switch {
	case sp.Mode != ModeSimulate && sp.Mode != ModeEncode:
		return fmt.Errorf("serve: mode %q must be %q or %q", sp.Mode, ModeSimulate, ModeEncode)
	case sp.Width <= 0 || sp.Height <= 0 || sp.Width%h264.MBSize != 0 || sp.Height%h264.MBSize != 0:
		return fmt.Errorf("serve: frame size %dx%d must be positive multiples of %d",
			sp.Width, sp.Height, h264.MBSize)
	}
	if sp.FrameBase != 0 {
		if sp.FrameBase < 0 || sp.IntraPeriod <= 0 || sp.FrameBase%sp.IntraPeriod != 0 {
			return fmt.Errorf("serve: frame base %d must be a non-negative multiple of a non-zero intra period (have %d)",
				sp.FrameBase, sp.IntraPeriod)
		}
	}
	if sp.Mode == ModeSimulate {
		if sp.Frames < 1 {
			return fmt.Errorf("serve: simulate job needs frames >= 1")
		}
		if len(sp.YUV) > 0 {
			return fmt.Errorf("serve: simulate job must not carry YUV input")
		}
	} else {
		if len(sp.YUV) == 0 || len(sp.YUV)%sp.frameBytes() != 0 {
			return fmt.Errorf("serve: encode job needs YUV input in whole %d-byte frames, got %d bytes",
				sp.frameBytes(), len(sp.YUV))
		}
	}
	return sp.codecConfig().Validate()
}

// Validate checks the spec exactly as Submit would without admitting it.
// The fleet layer validates a whole stream this way before splitting it
// into per-shard jobs, so a malformed stream is rejected before any node
// accepts work.
func (sp JobSpec) Validate() error { return sp.withDefaults().validate() }

func (sp JobSpec) codecConfig() codec.Config {
	chains := 1
	if sp.FrameParallel {
		chains = 2
	}
	return codec.Config{
		Width: sp.Width, Height: sp.Height,
		SearchRange: sp.SearchArea / 2,
		NumRF:       sp.RefFrames,
		IQP:         sp.IQP, PQP: sp.PQP,
		IntraPeriod:       sp.IntraPeriod,
		SceneCutThreshold: sp.SceneCutThreshold,
		Chains:            chains,
	}
}

// workload is the standing demand handed to the pool partitioner.
func (sp JobSpec) workload() device.Workload {
	return device.Workload{
		MBW: sp.Width / h264.MBSize, MBH: sp.Height / h264.MBSize,
		SA: sp.SearchArea, NumRF: sp.RefFrames, UsableRF: sp.RefFrames,
	}
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// terminal reports whether the state is final.
func (s Status) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// FrameResult is the per-frame record streamed to clients, one JSONL line
// each.
type FrameResult struct {
	Frame int `json:"frame"`
	// Attempt is the successful failover attempt index (omitted for
	// first-try frames).
	Attempt int  `json:"attempt,omitempty"`
	Intra   bool `json:"intra"`
	// Chain is the reference chain the frame predicted from (omitted on
	// single-chain jobs).
	Chain int `json:"chain,omitempty"`
	// Seconds is the simulated inter-loop time τtot (0 for intra frames).
	Seconds float64 `json:"tau_tot"`
	// PairSeconds is the joint makespan of the two-frame group this frame
	// ran in (omitted for serial frames); paired FPS is 2/PairSeconds.
	PairSeconds float64 `json:"pair_seconds,omitempty"`
	FPS         float64 `json:"fps,omitempty"`
	// PredictedSeconds is the per-frame LP's τtot prediction (0 for the
	// re-characterization frames after a lease change).
	PredictedSeconds float64 `json:"pred_tau_tot,omitempty"`
	SchedOverhead    float64 `json:"sched_overhead,omitempty"`
	Bits             int     `json:"bits,omitempty"`
	PSNRY            float64 `json:"psnr_y,omitempty"`
	// Devices names the leased devices that encoded this frame; it changes
	// when the pool re-partitions on tenant arrival or departure.
	Devices []string `json:"devices"`
}

// JobStatus is the status document served for one job.
type JobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Mode   string `json:"mode"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Frames is the total frame count; Completed how many finished so far.
	Frames    int `json:"frames"`
	Completed int `json:"completed"`
	// Devices is the session's current lease (empty while queued).
	Devices   []string   `json:"devices,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// Job is one submitted unit of work and its accumulated results.
type Job struct {
	id   string
	spec JobSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	status    Status
	errMsg    string
	results   []FrameResult
	bitstream []byte
	devices   []string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id string, spec JobSpec, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{id: id, spec: spec, ctx: ctx, cancel: cancel,
		status: StatusQueued, submitted: time.Now()}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the submitted specification.
func (j *Job) Spec() JobSpec { return j.spec }

// Cancel requests cancellation: a queued job is dropped, a running
// session stops between frames.
func (j *Job) Cancel() { j.cancel() }

// remainingWeight is the job's outstanding routing weight — frame rows ×
// frames not yet completed, the row·frame yardstick the fleet router
// balances with — shrinking as results stream and zero once terminal.
func (j *Job) remainingWeight() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return 0
	}
	rem := j.spec.frameCount() - len(j.results)
	if rem <= 0 {
		return 0
	}
	return float64(j.spec.workload().Rows() * rem)
}

// Status returns the job's current status document.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Name: j.spec.Name, Mode: j.spec.Mode,
		Status: j.status, Error: j.errMsg,
		Frames: j.spec.frameCount(), Completed: len(j.results),
		Devices:   append([]string(nil), j.devices...),
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Bitstream returns the coded stream of a finished encode job (nil
// otherwise).
func (j *Job) Bitstream() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil
	}
	return j.bitstream
}

// Next blocks until result index n exists or the job reaches a terminal
// state, then returns every result from n on and whether the job is
// finished. Streaming consumers call it in a loop.
func (j *Job) Next(n int) (results []FrameResult, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.results) <= n && !j.status.terminal() {
		j.cond.Wait()
	}
	if n < len(j.results) {
		results = append(results, j.results[n:]...)
	}
	return results, j.status.terminal() && n+len(results) == len(j.results)
}

// Wait blocks until the job reaches a terminal state and returns it.
func (j *Job) Wait() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !j.status.terminal() {
		j.cond.Wait()
	}
	return j.status
}

// Results returns a copy of the per-frame results so far.
func (j *Job) Results() []FrameResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]FrameResult(nil), j.results...)
}

func (j *Job) start(devices []string) {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.devices = devices
	j.mu.Unlock()
	j.cond.Broadcast()
}

func (j *Job) appendResult(r FrameResult) {
	j.mu.Lock()
	j.results = append(j.results, r)
	j.devices = r.Devices
	j.mu.Unlock()
	j.cond.Broadcast()
}

func (j *Job) finish(st Status, errMsg string, bitstream []byte) {
	j.cancel() // release the context's resources in every path
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.errMsg = errMsg
	j.bitstream = bitstream
	j.finished = time.Now()
	j.mu.Unlock()
	j.cond.Broadcast()
}
