package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/platforms"
	"feves/internal/telemetry"
	"feves/internal/vcm"
)

func testPlatform(t *testing.T) *device.Platform {
	t.Helper()
	pl, err := platforms.Lookup("sysnfk")
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func simSpec(frames int) JobSpec {
	return JobSpec{Mode: ModeSimulate, Width: 1920, Height: 1088, Frames: frames}
}

// testYUV builds a deterministic I420 sequence.
func testYUV(w, h, frames int) []byte {
	fb := w * h * 3 / 2
	buf := make([]byte, frames*fb)
	for i := range buf {
		buf[i] = byte((i*7 + i/fb*31) % 251)
	}
	return buf
}

func TestServeCompletesMoreSessionsThanDevices(t *testing.T) {
	pl := testPlatform(t)
	s, err := New(Config{Platform: pl, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Pool().Capacity(); got != 6 {
		t.Fatalf("sysnfk capacity = %d, want 6", got)
	}

	const n = 8 // more than the 6-device pool can run at once
	jobs := make([]*Job, n)
	for i := range jobs {
		j, err := s.Submit(simSpec(4))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := j.Wait(); st != StatusDone {
			t.Fatalf("job %d finished %q (%s)", i, st, j.Status().Error)
		}
		rs := j.Results()
		if len(rs) != 4 {
			t.Fatalf("job %d: %d results, want 4", i, len(rs))
		}
		if !rs[0].Intra || rs[0].Seconds != 0 {
			t.Fatalf("job %d: frame 0 should be the intra frame: %+v", i, rs[0])
		}
		for _, r := range rs[1:] {
			if r.Seconds <= 0 {
				t.Fatalf("job %d frame %d: non-positive tau_tot %v", i, r.Frame, r.Seconds)
			}
			if len(r.Devices) == 0 {
				t.Fatalf("job %d frame %d: no leased devices", i, r.Frame)
			}
		}
	}
	if got := s.Pool().Sessions(); got != 0 {
		t.Fatalf("%d leases outstanding after all jobs finished", got)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	s, err := New(Config{Platform: testPlatform(t), MaxSessions: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One session runs, the scheduler can hold one dequeued job, one fits
	// in the backlog: a burst beyond that must observe ErrBusy.
	busy := false
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(simSpec(200)); errors.Is(err, ErrBusy) {
			busy = true
			break
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !busy {
		t.Fatal("no submission hit ErrBusy despite a full backlog")
	}
	for _, j := range s.Jobs() {
		j.Cancel()
	}
	if !s.WaitAll(30 * time.Second) {
		t.Fatal("jobs did not wind down after cancellation")
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	s, err := New(Config{Platform: testPlatform(t), QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	job, err := s.Submit(simSpec(2000))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the session to actually start before draining.
	if _, done := job.Next(0); done {
		t.Fatalf("job finished before drain: %+v", job.Status())
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Admission must reject immediately once draining, even while the
	// in-flight session is still running.
	deadline := time.After(10 * time.Second)
	for {
		_, err := s.Submit(simSpec(2))
		if errors.Is(err, ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("submit during drain returned %v, want ErrDraining", err)
		case <-time.After(time.Millisecond):
		}
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := job.Wait(); st != StatusDone {
		t.Fatalf("in-flight job finished %q after drain, want done", st)
	}
}

func TestDrainTimeoutCancelsSessions(t *testing.T) {
	s, err := New(Config{Platform: testPlatform(t), QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Submit(simSpec(100000)) // would run far beyond the deadline
	if err != nil {
		t.Fatal(err)
	}
	if _, done := job.Next(0); done {
		t.Fatal("job finished immediately")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	if st := job.Wait(); st != StatusCanceled {
		t.Fatalf("job finished %q after forced drain, want canceled", st)
	}
}

func TestCancelStopsRunningSession(t *testing.T) {
	s, err := New(Config{Platform: testPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Submit(simSpec(100000))
	if err != nil {
		t.Fatal(err)
	}
	if _, done := job.Next(0); done {
		t.Fatal("job finished immediately")
	}
	job.Cancel()
	if st := job.Wait(); st != StatusCanceled {
		t.Fatalf("status %q, want canceled", st)
	}
	if got := s.Pool().Sessions(); got != 0 {
		t.Fatalf("%d leases outstanding after cancel", got)
	}
}

// TestEncodeJobBitExactVersusSolo submits concurrent encode jobs to the
// shared pool and requires each coded stream to be byte-identical to a
// solo run of the same sequence on the whole platform — functional
// output must not depend on which devices a tenant happened to lease.
func TestEncodeJobBitExactVersusSolo(t *testing.T) {
	const w, h, frames = 64, 64, 3
	yuv := testYUV(w, h, frames)
	spec := JobSpec{Mode: ModeEncode, Width: w, Height: h, YUV: yuv}

	// Solo reference: one framework over the full platform.
	fw, err := core.New(core.Options{
		Platform: testPlatform(t),
		Codec:    spec.withDefaults().codecConfig(),
		Mode:     vcm.Functional,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := w * h * 3 / 2
	for i := 0; i < frames; i++ {
		cf := h264.NewFrame(w, h)
		cf.Poc = i
		if err := cf.LoadYUV(yuv[i*fb : (i+1)*fb]); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.EncodeNext(cf); err != nil {
			t.Fatal(err)
		}
	}
	want := fw.Bitstream()
	if len(want) == 0 {
		t.Fatal("solo reference produced an empty bitstream")
	}

	s, err := New(Config{Platform: testPlatform(t), QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jobs := make([]*Job, 4)
	for i := range jobs {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := j.Wait(); st != StatusDone {
			t.Fatalf("encode job %d finished %q (%s)", i, st, j.Status().Error)
		}
		if got := j.Bitstream(); !bytes.Equal(got, want) {
			t.Fatalf("encode job %d: bitstream differs from solo run (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Platform: testPlatform(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []JobSpec{
		{Mode: "transcode", Width: 64, Height: 64, Frames: 2},
		{Mode: ModeSimulate, Width: 60, Height: 64, Frames: 2},
		{Mode: ModeSimulate, Width: 64, Height: 64},
		{Mode: ModeSimulate, Width: 64, Height: 64, Frames: 2, YUV: []byte{1}},
		{Mode: ModeEncode, Width: 64, Height: 64},
		{Mode: ModeEncode, Width: 64, Height: 64, YUV: make([]byte, 100)},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %d accepted, want validation error", i)
		}
	}
}

// TestFailoverSharedPoolExcludesDeadDevice runs two concurrent tenants on
// a pooled SysNFK while the Fermi GPU dies: the session leasing it must
// fail over onto its remaining devices and finish, the pool must remove
// the device for every tenant, and the loss must be visible in the shared
// metrics.
func TestFailoverSharedPoolExcludesDeadDevice(t *testing.T) {
	tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry()}
	s, err := New(Config{
		Platform:      testPlatform(t),
		MaxSessions:   2,
		QueueDepth:    8,
		Telemetry:     tel,
		DeadlineSlack: 3,
		FaultSpec:     "die:GPU_F@8",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	jobs := make([]*Job, 2)
	for i := range jobs {
		j, err := s.Submit(simSpec(25))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := j.Wait(); st != StatusDone {
			t.Fatalf("job %d finished %q (%s)", i, st, j.Status().Error)
		}
	}
	if down := s.Pool().Down(); !down[0] {
		t.Fatalf("pool down mask = %v, want device 0 (GPU_F) down", down)
	}
	if got := s.Pool().UpDevices(); got != 5 {
		t.Fatalf("UpDevices = %d after GPU death, want 5", got)
	}
	scrape := tel.Metrics.Expose()
	for _, want := range []string{
		"feves_serve_devices_lost_total 1",
		"feves_frame_retries_total",
		"feves_serve_repartitions_total",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// The shrunk pool still serves new tenants, on up devices only.
	j, err := s.Submit(simSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(); st != StatusDone {
		t.Fatalf("post-loss job finished %q (%s)", st, j.Status().Error)
	}
	for _, r := range j.Results() {
		for _, name := range r.Devices {
			if name == "GPU_F" {
				t.Fatal("post-loss session was leased the dead GPU")
			}
		}
	}
}
