// Package serve is the multi-tenant encode service of the FEVES
// reproduction: a bounded job queue with admission control in front of a
// device pool (internal/pool) that leases disjoint device subsets to
// concurrent encode/simulate sessions. Each session runs its own
// framework (Algorithm 1) on its lease, re-targets onto re-partitioned
// subsets at frame boundaries, stops between frames on cancellation, and
// streams per-frame results; shutdown drains gracefully — in-flight jobs
// finish while new submissions are rejected.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/pool"
	"feves/internal/telemetry"
	"feves/internal/vcm"
)

// ErrBusy is returned by Submit when the backlog is full — the service's
// backpressure signal (HTTP 503 with Retry-After).
var ErrBusy = errors.New("serve: job queue full")

// ErrDraining is returned by Submit after shutdown began: in-flight work
// finishes, new work is rejected.
var ErrDraining = errors.New("serve: server draining")

// Config configures a Server.
type Config struct {
	// Platform is the shared physical platform the pool partitions.
	Platform *device.Platform
	// MaxSessions caps concurrently running sessions; 0 or anything above
	// the device count clamps to the pool capacity (disjoint non-empty
	// leases need one device per session).
	MaxSessions int
	// QueueDepth bounds the admitted-but-not-running backlog (default 16).
	// A full queue rejects submissions with ErrBusy.
	QueueDepth int
	// CheckSchedules validates every executed frame's schedule in observe
	// mode: violations increment feves_check_violations_total instead of
	// failing the tenant's session.
	CheckSchedules bool
	// Telemetry is the shared observability sink for every session
	// (metrics aggregate across tenants); nil disables the hooks.
	Telemetry *telemetry.Telemetry
	// DeadlineSlack arms fault tolerance in every session: per-sync-point
	// deadlines at the LP-predicted timeline times this factor, device
	// health tracking, bounded frame retries, and — on exclusion — pool
	// re-partitioning so all tenants absorb the shrunk platform at their
	// next frame boundary. 0 disables failover entirely (byte-identical
	// schedules to a slack-less server).
	DeadlineSlack float64
	// MaxFrameRetries bounds per-frame failover attempts per session
	// (default 3); meaningful only with DeadlineSlack > 0.
	MaxFrameRetries int
	// FaultSpec injects deterministic faults into the shared platform
	// (grammar of device.ParseFaults, e.g. "die:GPU_F@40"); empty runs
	// fault-free. Fault frames are interpreted per session-local frame
	// counter.
	FaultSpec string
}

// Server is the multi-tenant encode service.
type Server struct {
	cfg   Config
	pool  *pool.Pool
	queue chan *Job
	slots chan struct{}

	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
	active   map[string]*sessionRef // running sessions by job id

	inflight sync.WaitGroup // accepted jobs not yet terminal
	loopDone chan struct{}
}

// New builds a server and starts its scheduler.
func New(cfg Config) (*Server, error) {
	if cfg.FaultSpec != "" && cfg.Platform != nil {
		fp, err := device.ParseFaults(cfg.FaultSpec, cfg.Platform)
		if err != nil {
			return nil, err
		}
		cfg.Platform.Faults = fp // inherited by every lease subplatform
	}
	p, err := pool.New(cfg.Platform)
	if err != nil {
		return nil, err
	}
	maxSessions := cfg.MaxSessions
	if maxSessions <= 0 || maxSessions > p.Capacity() {
		maxSessions = p.Capacity()
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     p,
		queue:    make(chan *Job, depth),
		slots:    make(chan struct{}, maxSessions),
		baseCtx:  ctx,
		stop:     cancel,
		jobs:     map[string]*Job{},
		active:   map[string]*sessionRef{},
		loopDone: make(chan struct{}),
	}
	go s.schedule()
	return s, nil
}

// Pool exposes the device pool (for introspection and tests).
func (s *Server) Pool() *pool.Pool { return s.pool }

// Submit admits a job. It fails fast with ErrDraining after shutdown
// began, ErrBusy when the backlog is full, or a validation error for a
// malformed spec.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%d", s.seq), spec, s.baseCtx)
	select {
	case s.queue <- job:
	default:
		return nil, ErrBusy
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.inflight.Add(1)
	s.metric("feves_serve_jobs_total", "Jobs accepted by the serving layer.", "mode", spec.Mode).Inc()
	return job, nil
}

// Job returns a submitted job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// QueueDepth returns the backlog capacity.
func (s *Server) QueueDepth() int { return cap(s.queue) }

// Drain stops admission (Submit returns ErrDraining) and waits for every
// accepted job to reach a terminal state. If ctx expires first, the
// remaining sessions are cancelled — they stop at the next frame
// boundary — and Drain waits for them to wind down before returning the
// context's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop() // cancels every session between frames
		<-done
		return ctx.Err()
	}
}

// Close shuts the server down immediately: admission stops, running
// sessions are cancelled at the next frame boundary, and the scheduler
// exits. Use Drain first for a graceful stop.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stop()
	<-s.loopDone
}

// metric is a nil-safe registry accessor.
func (s *Server) metric(name, help string, labels ...string) *telemetry.Counter {
	if s.cfg.Telemetry == nil || s.cfg.Telemetry.Metrics == nil {
		return &telemetry.Counter{}
	}
	return s.cfg.Telemetry.Metrics.Counter(name, help, labels...)
}

func (s *Server) gauge(name, help string) *telemetry.Gauge {
	if s.cfg.Telemetry == nil || s.cfg.Telemetry.Metrics == nil {
		return &telemetry.Gauge{}
	}
	return s.cfg.Telemetry.Metrics.Gauge(name, help)
}

// schedule is the admission loop: it pairs each queued job with a
// session slot and a device lease, then runs the session. Slots cap the
// concurrency at or below the pool capacity and a session releases its
// lease before its slot, so a free slot implies an available lease.
func (s *Server) schedule() {
	defer close(s.loopDone)
	for {
		var job *Job
		select {
		case <-s.baseCtx.Done():
			s.failQueued()
			return
		case job = <-s.queue:
		}
		if job.ctx.Err() != nil { // cancelled while queued
			job.finish(StatusCanceled, "canceled while queued", nil)
			s.inflight.Done()
			continue
		}
		select {
		case <-s.baseCtx.Done():
			job.finish(StatusCanceled, "server shut down", nil)
			s.inflight.Done()
			s.failQueued()
			return
		case s.slots <- struct{}{}:
		}
		lease, err := s.pool.Acquire(job.spec.workload())
		if err != nil {
			// Slot accounting makes exhaustion impossible; anything else
			// is a spec/platform mismatch and fails just this job.
			<-s.slots
			job.finish(StatusFailed, err.Error(), nil)
			s.inflight.Done()
			continue
		}
		go s.run(job, lease)
	}
}

// failQueued cancels everything still sitting in the backlog at
// shutdown.
func (s *Server) failQueued() {
	for {
		select {
		case job := <-s.queue:
			job.finish(StatusCanceled, "server shut down", nil)
			s.inflight.Done()
		default:
			return
		}
	}
}

// run executes one session over its lease.
func (s *Server) run(job *Job, lease *pool.Lease) {
	active := s.gauge("feves_serve_sessions_active", "Sessions currently holding a device lease.")
	active.Add(1)
	defer func() {
		lease.Release()
		<-s.slots
		active.Add(-1)
		s.inflight.Done()
	}()

	st, errMsg, stream := s.runSession(job, lease)
	job.finish(st, errMsg, stream)
	s.metric("feves_serve_jobs_finished_total", "Jobs finished by terminal status.",
		"status", string(st)).Inc()
}

// runSession drives the framework frame by frame, re-targeting the
// platform when the pool re-partitioned and honouring cancellation
// between frames. Every telemetry record of the session carries the job
// id as its causal session label (minted at submission), so events,
// metrics, trace lanes and flight-recorder entries attribute to the
// tenant.
func (s *Server) runSession(job *Job, lease *pool.Lease) (Status, string, []byte) {
	spec := job.spec
	pl, epoch := lease.Snapshot()
	if pl == nil {
		return StatusFailed, "lease orphaned: no devices available", nil
	}
	mode := vcm.TimingOnly
	if spec.Mode == ModeEncode {
		mode = vcm.Functional
	}
	tel := s.cfg.Telemetry.ForSession(job.id)
	// pendingFailover marks that this session pushed a device out of the
	// pool; the post-mortem bundle is captured once the failover completes
	// — when the session picks up its re-partitioned lease below — so the
	// bundle contains the re-lease incident too.
	curFrame, pendingFailover := spec.FrameBase, false
	opts := core.Options{
		Platform:        pl,
		Codec:           spec.codecConfig(),
		Mode:            mode,
		Telemetry:       tel,
		CheckSchedules:  s.cfg.CheckSchedules,
		CheckObserve:    true,
		DeadlineSlack:   s.cfg.DeadlineSlack,
		MaxFrameRetries: s.cfg.MaxFrameRetries,
		FrameParallel:   spec.FrameParallel,
		FrameBase:       spec.FrameBase,
	}
	if s.cfg.DeadlineSlack > 0 {
		// When this session's framework excludes a device, report the loss
		// to the pool under the parent platform's numbering so every tenant
		// re-partitions away from it at the next frame boundary. pl tracks
		// the lease's current subplatform: the callback fires synchronously
		// inside EncodeNext, after any SetPlatform re-target below.
		opts.OnDeviceExcluded = func(dev int) {
			parent := dev
			if pl.BaseIndex != nil && dev < len(pl.BaseIndex) {
				parent = pl.BaseIndex[dev]
			}
			if s.pool.MarkDown(parent) {
				pendingFailover = true
				tel.Incident("device_down", curFrame, parent,
					fmt.Sprintf("pool removed device %d (%s) after session exclusion", parent, s.cfg.Platform.Dev(parent).Name))
				s.metric("feves_serve_devices_lost_total",
					"Devices removed from the pool after a session excluded them.").Inc()
			}
		}
	}
	fw, err := core.New(opts)
	if err != nil {
		return StatusFailed, err.Error(), nil
	}
	s.trackSession(job, lease, fw)
	defer s.untrackSession(job.id)
	job.start(deviceNames(pl))

	frames := spec.frameCount()
	fb := spec.frameBytes()
	maxRetries := s.cfg.MaxFrameRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	retries := 0
	for i := 0; i < frames; i++ {
		curFrame = spec.FrameBase + i
		if job.ctx.Err() != nil {
			return StatusCanceled, "canceled", nil
		}
		if sub, e := lease.Snapshot(); e != epoch {
			if sub == nil {
				return StatusFailed, "lease orphaned: device loss left no devices for this session", nil
			}
			if err := fw.SetPlatform(sub); err != nil {
				return StatusFailed, err.Error(), nil
			}
			pl, epoch = sub, e
			tel.Incident("re_lease", curFrame, -1,
				fmt.Sprintf("picked up epoch %d: %v", e, deviceNames(sub)))
			if pendingFailover {
				pendingFailover = false
				tel.CaptureBundle("pool_failover", curFrame,
					fmt.Sprintf("failover complete: session re-leased onto %v at epoch %d", deviceNames(sub), e))
			}
			s.metric("feves_serve_repartitions_total",
				"Lease changes picked up by sessions at frame boundaries.").Inc()
		}
		var cf, cf2 *h264.Frame
		if spec.Mode == ModeEncode {
			cf = h264.NewFrame(spec.Width, spec.Height)
			cf.Poc = spec.FrameBase + i
			if err := cf.LoadYUV(spec.YUV[i*fb : (i+1)*fb]); err != nil {
				return StatusFailed, err.Error(), nil
			}
			if spec.FrameParallel && i+1 < frames {
				cf2 = h264.NewFrame(spec.Width, spec.Height)
				cf2.Poc = spec.FrameBase + i + 1
				if err := cf2.LoadYUV(spec.YUV[(i+1)*fb : (i+2)*fb]); err != nil {
					return StatusFailed, err.Error(), nil
				}
			}
		}
		// A frame-parallel session consumes up to two frames per iteration;
		// the framework falls back to a serial frame at intra boundaries,
		// during model initialization, and after an in-pair scene cut, in
		// which case the second frame is re-offered next iteration. Lease
		// changes are absorbed at group boundaries, so both frames of a
		// pair always run on the same device subset.
		var results [2]core.Result
		n := 1
		var err error
		if spec.FrameParallel {
			var paired bool
			results[0], results[1], paired, err = fw.EncodePair(cf, cf2)
			if paired {
				n = 2
			}
		} else {
			results[0], err = fw.EncodeNext(cf)
		}
		if err != nil {
			// A session whose lease is a single device cannot fail over by
			// itself (the health tracker never excludes the last device).
			// Report the blamed devices to the pool so every tenant
			// re-partitions away from them, and — if the pool actually
			// removed one — replay the frame on the session's re-lease: the
			// deadline trips before any kernel mutates encoder state, so
			// the replay is bit-exact.
			var de *vcm.DeadlineError
			if s.cfg.DeadlineSlack > 0 && errors.As(err, &de) {
				lost := false
				for _, dev := range de.Blamed {
					parent := dev
					if pl.BaseIndex != nil && dev < len(pl.BaseIndex) {
						parent = pl.BaseIndex[dev]
					}
					if s.pool.MarkDown(parent) {
						lost = true
						pendingFailover = true
						tel.Incident("device_down", curFrame, parent,
							fmt.Sprintf("pool removed device %d (%s): %s", parent, s.cfg.Platform.Dev(parent).Name, de.Error()))
						s.metric("feves_serve_devices_lost_total",
							"Devices removed from the pool after a session excluded them.").Inc()
					}
				}
				if lost && retries < maxRetries {
					retries++
					i--
					continue
				}
			}
			if pendingFailover {
				// The session is failing before it could pick up a re-lease;
				// capture what we have.
				tel.CaptureBundle("session_failed", curFrame, err.Error())
			}
			return StatusFailed, err.Error(), nil
		}
		retries = 0
		for k := 0; k < n; k++ {
			r := results[k]
			fr := FrameResult{
				Frame: r.FrameIndex, Attempt: r.Attempt, Intra: r.Intra || r.Stats.Intra,
				Chain:            r.Timing.Chain,
				Seconds:          r.Timing.Tot,
				PairSeconds:      r.Timing.PairMakespan,
				PredictedSeconds: r.Distribution.PredTot,
				SchedOverhead:    r.SchedOverhead.Seconds(),
				Bits:             r.Stats.Bits, PSNRY: r.Stats.PSNRY,
				Devices: deviceNames(pl),
			}
			if fr.PairSeconds > 0 {
				fr.FPS = 2 / fr.PairSeconds
			} else if fr.Seconds > 0 {
				fr.FPS = 1 / fr.Seconds
			}
			job.appendResult(fr)
		}
		i += n - 1
	}
	if spec.Mode == ModeEncode {
		return StatusDone, "", fw.Bitstream()
	}
	return StatusDone, "", nil
}

// sessionRef tracks one running session for live introspection.
type sessionRef struct {
	job   *Job
	lease *pool.Lease
	fw    *core.Framework
}

func (s *Server) trackSession(job *Job, lease *pool.Lease, fw *core.Framework) {
	s.mu.Lock()
	s.active[job.id] = &sessionRef{job: job, lease: lease, fw: fw}
	s.mu.Unlock()
}

func (s *Server) untrackSession(id string) {
	s.mu.Lock()
	delete(s.active, id)
	s.mu.Unlock()
}

// SessionState describes one running session for /debug/state.
type SessionState struct {
	Job     string   `json:"job"`
	Name    string   `json:"name,omitempty"`
	Mode    string   `json:"mode"`
	Lease   int      `json:"lease"`
	Epoch   uint64   `json:"epoch"`
	Devices []string `json:"devices"`
	// Health names each lease device's failover state (nil while
	// DeadlineSlack is 0).
	Health []string `json:"health,omitempty"`
	// Frames/Completed mirror the job status document.
	Frames    int `json:"frames"`
	Completed int `json:"completed"`
	Retries   int `json:"retries,omitempty"`
}

// State is the live introspection document served at /debug/state: pool
// topology and leases, per-session health, queue depth and drain status.
type State struct {
	Draining    bool `json:"draining"`
	QueueLen    int  `json:"queue_len"`
	QueueCap    int  `json:"queue_cap"`
	MaxSessions int  `json:"max_sessions"`
	// Load is the summed remaining row·frame weight of every queued and
	// running job — the queue-aware figure the fleet router sheds on.
	Load     float64        `json:"load"`
	Pool     pool.State     `json:"pool"`
	Sessions []SessionState `json:"sessions"`
}

// State snapshots the server for the debug endpoint. Safe to call while
// sessions encode.
func (s *Server) State() State {
	s.mu.Lock()
	draining := s.draining
	refs := make([]*sessionRef, 0, len(s.active))
	for _, ref := range s.active {
		refs = append(refs, ref)
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].job.id < refs[j].job.id })
	st := State{
		Draining:    draining,
		QueueLen:    len(s.queue),
		QueueCap:    cap(s.queue),
		MaxSessions: cap(s.slots),
		Load:        s.Load(),
		Pool:        s.pool.State(),
	}
	for _, ref := range refs {
		js := ref.job.Status()
		ss := SessionState{
			Job: ref.job.id, Name: js.Name, Mode: js.Mode,
			Lease:   ref.lease.ID(),
			Devices: js.Devices,
			Frames:  js.Frames, Completed: js.Completed,
			Health:  ref.fw.HealthStates(),
			Retries: ref.fw.FrameRetries(),
		}
		_, ss.Epoch = ref.lease.Snapshot()
		st.Sessions = append(st.Sessions, ss)
	}
	return st
}

func deviceNames(pl *device.Platform) []string {
	out := make([]string, pl.NumDevices())
	for i := range out {
		out[i] = pl.Dev(i).Name
	}
	return out
}

// WaitAll blocks until every currently accepted job is terminal or the
// timeout elapses (testing convenience).
func (s *Server) WaitAll(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}
