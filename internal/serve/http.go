package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs               submit a JobSpec, 202 + JobStatus
//	GET    /jobs               list every job's JobStatus
//	GET    /jobs/{id}          one job's JobStatus
//	DELETE /jobs/{id}          cancel (a running session stops between frames)
//	GET    /jobs/{id}/results  stream per-frame FrameResults as JSONL
//	GET    /jobs/{id}/bitstream coded stream of a finished encode job
//	GET    /healthz            200 while serving, 503 while draining
//	GET    /metrics            Prometheus text exposition (when telemetry is on)
//	GET    /debug/state        live topology: pool, leases, health, queue, drain
//	GET    /debug/flight       flight recorder: live ring + captured bundles
//	GET    /debug/trace        Perfetto snapshot of the live trace ring
//	GET    /debug/pprof/...    net/http/pprof profiles
//
// Submission failures map to the service's backpressure semantics: a full
// queue or a draining server answer 503 with a Retry-After hint, a
// malformed spec answers 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /jobs/{id}/bitstream", s.handleBitstream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.cfg.Telemetry != nil && s.cfg.Telemetry.Metrics != nil {
		mux.Handle("GET /metrics", s.cfg.Telemetry.Metrics.Handler())
	}
	mux.HandleFunc("GET /debug/state", s.handleDebugState)
	mux.HandleFunc("GET /debug/flight", s.handleDebugFlight)
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleDebugState serves the live introspection document: pool topology
// and leases, per-session device health, queue depth and drain status.
func (s *Server) handleDebugState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.State())
}

// handleDebugFlight serves the flight recorder: the current frame ring,
// the incident ring, and every captured post-mortem bundle.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Telemetry == nil || s.cfg.Telemetry.Flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.cfg.Telemetry.Flight.WriteDoc(w)
}

// handleDebugTrace snapshots the live Perfetto ring without shutting the
// service down — load the response straight into ui.perfetto.dev.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Telemetry == nil || s.cfg.Telemetry.Trace == nil {
		writeError(w, http.StatusNotFound, "trace writer not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.cfg.Telemetry.Trace.Export(w)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After",
			strconv.Itoa(s.retryAfterSeconds(errors.Is(err, ErrDraining))))
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResults streams the job's per-frame results as JSONL, one
// FrameResult per line, flushing after each line so tenants can follow a
// running session live. The stream ends when the job reaches a terminal
// state or the client disconnects.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for {
		results, done := job.Next(n)
		for _, fr := range results {
			if enc.Encode(fr) != nil {
				return // client gone
			}
		}
		n += len(results)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

func (s *Server) handleBitstream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	st := job.Status()
	if st.Mode != ModeEncode {
		writeError(w, http.StatusBadRequest, "job is not an encode job")
		return
	}
	if st.Status != StatusDone {
		writeError(w, http.StatusConflict,
			"bitstream not available: job is "+strings.ToLower(string(st.Status)))
		return
	}
	w.Header().Set("Content-Type", "video/h264")
	w.WriteHeader(http.StatusOK)
	w.Write(job.Bitstream())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(true)))
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":   "ok",
		"sessions": s.pool.Sessions(),
		"capacity": s.pool.Capacity(),
		"up":       s.pool.UpDevices(),
	})
}

// Backlog returns the number of jobs ahead of a new submission — queued
// plus running — the live load figure RetryAfterSeconds turns into a
// Retry-After hint. Safe to call concurrently.
func (s *Server) Backlog() int { return len(s.queue) + len(s.slots) }

// Load returns the server's live routing load: the summed remaining
// weight (frame rows × frames still to encode) of every non-terminal job,
// queued or running. This is the queue-aware figure the fleet router
// folds into its per-node cap rows — a deep or heavy admission queue
// reads as high load, and the figure shrinks as sessions stream results.
// Safe to call concurrently.
func (s *Server) Load() float64 {
	var total float64
	for _, j := range s.Jobs() {
		total += j.remainingWeight()
	}
	return total
}

// RetryAfterSeconds turns a backlog depth into the Retry-After hint of a
// 503 response. A merely busy server clears roughly one queued job per
// session-slot turnover, so the hint grows with the number of jobs ahead
// (queued plus running) instead of a constant "1". A draining server never
// accepts again; its hint is the longer drain horizon, steering
// well-behaved clients away until a load balancer has rotated the replica
// out. The fleet coordinator's admission control shares this helper (with
// the cluster-wide backlog) so single-node and fleet 503s advertise
// consistent estimates.
func RetryAfterSeconds(ahead int, draining bool) int {
	secs, floor := ahead, 1
	if draining {
		secs, floor = 2*ahead, 5
	}
	if secs < floor {
		secs = floor
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// retryAfterSeconds derives the hint from this server's own backlog.
func (s *Server) retryAfterSeconds(draining bool) int {
	return RetryAfterSeconds(s.Backlog(), draining)
}
