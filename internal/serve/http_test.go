package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"feves/internal/telemetry"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Platform == nil {
		cfg.Platform = testPlatform(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func TestHTTPSubmitPollAndStream(t *testing.T) {
	tel := telemetry.New(nil)
	_, ts := newTestServer(t, Config{QueueDepth: 16, Telemetry: tel})

	st, resp := postJob(t, ts, simSpec(5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Mode != ModeSimulate || st.Frames != 5 {
		t.Fatalf("bad status document: %+v", st)
	}

	// The JSONL stream follows the session to completion: exactly one
	// line per frame.
	sresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content-type %q", ct)
	}
	var lines []FrameResult
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var fr FrameResult
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, fr)
	}
	if len(lines) != 5 {
		t.Fatalf("streamed %d lines, want 5", len(lines))
	}
	for i, fr := range lines {
		if fr.Frame != i {
			t.Fatalf("line %d reports frame %d", i, fr.Frame)
		}
	}

	// Poll the terminal status.
	gresp, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	var done JobStatus
	if err := json.NewDecoder(gresp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || done.Completed != 5 || done.Started == nil || done.Finished == nil {
		t.Fatalf("terminal status: %+v", done)
	}

	// The list endpoint includes the job.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("GET /jobs = %+v", list)
	}

	// The shared registry serves Prometheus text including the serve
	// metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, mresp)); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{"feves_serve_jobs_total", "feves_serve_jobs_finished_total", "feves_frames_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestHTTPEncodeBitstreamRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const w, h, frames = 64, 64, 2
	spec := JobSpec{Mode: ModeEncode, Width: w, Height: h, YUV: testYUV(w, h, frames)}
	st, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}

	// Poll until done, then fetch the coded stream.
	deadline := time.After(30 * time.Second)
	for {
		gresp, err := http.Get(ts.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		err = json.NewDecoder(gresp.Body).Decode(&cur)
		gresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.Status.terminal() {
			if cur.Status != StatusDone {
				t.Fatalf("encode job finished %q (%s)", cur.Status, cur.Error)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("encode job did not finish")
		case <-time.After(10 * time.Millisecond):
		}
	}
	bresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/bitstream")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("GET bitstream = %d", bresp.StatusCode)
	}
	if stream := readAll(t, bresp); len(stream) == 0 {
		t.Fatal("empty bitstream")
	}
}

func TestHTTPRejectsWhenDrainingWith503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	_, resp := postJob(t, ts, simSpec(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	// The drain hint is derived from the drain horizon, never the old
	// constant "1": with nothing in flight it sits at the 5 s floor.
	if ra := retryAfterValue(t, resp); ra < 5 {
		t.Fatalf("draining Retry-After = %d, want >= 5", ra)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
	if ra := retryAfterValue(t, hresp); ra < 5 {
		t.Fatalf("draining healthz Retry-After = %d, want >= 5", ra)
	}
}

// retryAfterValue parses the integer Retry-After header of a 503.
func retryAfterValue(t *testing.T, resp *http.Response) int {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatal("503 without Retry-After")
	}
	v, err := strconv.Atoi(h)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", h, err)
	}
	return v
}

// TestHTTPRetryAfterGrowsWithBacklog fills a one-slot server's queue and
// checks the busy 503's Retry-After reflects the jobs ahead of the caller
// instead of the old constant "1".
func TestHTTPRetryAfterGrowsWithBacklog(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1, QueueDepth: 2})

	// Saturate: long jobs occupy the single slot and then the queue.
	// The scheduler drains asynchronously, so submit until rejected.
	var rejected *http.Response
	for i := 0; i < 10; i++ {
		_, resp := postJob(t, ts, simSpec(100000))
		if resp.StatusCode == http.StatusServiceUnavailable {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST = %d", resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("never got a 503 despite a full queue")
	}
	// At rejection the queue is full (2 jobs) plus whatever is running,
	// so the hint must exceed the old constant.
	if ra := retryAfterValue(t, rejected); ra < 2 || ra > 300 {
		t.Fatalf("busy Retry-After = %d, want in [2, 300]", ra)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, resp := postJob(t, ts, JobSpec{Mode: "bogus"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, resp := postJob(t, ts, simSpec(100000))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	deadline := time.After(30 * time.Second)
	for {
		gresp, err := http.Get(ts.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		err = json.NewDecoder(gresp.Body).Decode(&cur)
		gresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cur.Status.terminal() {
			if cur.Status != StatusCanceled {
				t.Fatalf("status %q after cancel", cur.Status)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("job did not reach a terminal state")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
