package serve

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"feves/internal/telemetry"
)

var updateSurface = flag.Bool("update", false, "rewrite the metrics-surface golden file")

// TestMetricsSurfaceGolden pins the service's metrics surface: the name,
// kind, help string and label set of every family a fully exercised run
// registers. Dashboards and alerts key on these — renaming a family or
// dropping a label is a breaking change this golden makes explicit.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/serve -run MetricsSurface -update
func TestMetricsSurfaceGolden(t *testing.T) {
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTraceWriterCap(1024),
		Flight:  telemetry.NewFlightRecorder(16),
	}
	// One run that walks every registration path: multi-tenant sessions
	// (session-labeled families), the schedule checker, an armed deadline
	// with a device death (retry/health/exclusion/failover families), and
	// the bounded trace ring (drop counter).
	s, err := New(Config{
		Platform:       testPlatform(t),
		MaxSessions:    2,
		QueueDepth:     8,
		Telemetry:      tel,
		CheckSchedules: true,
		DeadlineSlack:  3,
		FaultSpec:      "die:GPU_F@8",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jobs := make([]*Job, 2)
	for i := range jobs {
		j, err := s.Submit(simSpec(25))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if st := j.Wait(); st != StatusDone {
			t.Fatalf("job %d finished %q (%s)", i, st, j.Status().Error)
		}
	}

	var b strings.Builder
	for _, f := range tel.Metrics.Describe() {
		labels := strings.Join(f.Labels, ",")
		if labels == "" {
			labels = "-"
		}
		fmt.Fprintf(&b, "%s|%s|%s|%s\n", f.Name, f.Kind, labels, f.Help)
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics_surface.golden")
	if *updateSurface {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics surface drifted from the golden file.\ngot:\n%s\nwant:\n%s\n(if the change is intentional, regenerate with -update)",
			got, want)
	}
}
