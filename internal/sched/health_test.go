package sched

import (
	"math"
	"sync"
	"testing"

	"feves/internal/device"
)

func TestHealthTransitions(t *testing.T) {
	h := NewHealth(3)
	for i := 0; i < 3; i++ {
		if h.State(i) != Healthy {
			t.Fatalf("device %d starts %v", i, h.State(i))
		}
	}
	// First miss degrades, second excludes.
	if from, to, ch := h.Miss(1); from != Healthy || to != Degraded || !ch {
		t.Fatalf("first miss: %v -> %v (%v)", from, to, ch)
	}
	if from, to, ch := h.Miss(1); from != Degraded || to != Excluded || !ch {
		t.Fatalf("second miss: %v -> %v (%v)", from, to, ch)
	}
	// Further misses on an excluded device are no-ops.
	if _, _, ch := h.Miss(1); ch {
		t.Fatal("miss on excluded device must not transition")
	}
	down := h.Down()
	if !down[1] || down[0] || down[2] {
		t.Fatalf("down mask %v", down)
	}
	if h.NumUp() != 2 {
		t.Fatalf("NumUp = %d", h.NumUp())
	}
}

func TestHealthRecovery(t *testing.T) {
	h := NewHealth(2)
	h.Miss(0)
	// One clean frame is not enough with the default RecoverAfter = 2.
	if _, to, ch := h.Clean(0); ch || to != Degraded {
		t.Fatalf("premature recovery to %v", to)
	}
	if from, to, ch := h.Clean(0); !ch || from != Degraded || to != Healthy {
		t.Fatalf("recovery: %v -> %v (%v)", from, to, ch)
	}
	// A miss resets the clean streak.
	h.Miss(0)
	h.Clean(0)
	h.Miss(0) // degraded again (still only strike while degraded → excluded)
	if h.State(0) != Excluded {
		t.Fatalf("repeat miss while degraded should exclude, got %v", h.State(0))
	}
}

func TestHealthNeverExcludesLastDevice(t *testing.T) {
	h := NewHealth(2)
	h.Miss(0)
	h.Miss(0) // excluded
	h.Miss(1)
	if _, to, _ := h.Miss(1); to != Degraded {
		t.Fatalf("last surviving device must stay schedulable, got %v", to)
	}
	if h.NumUp() != 1 {
		t.Fatalf("NumUp = %d", h.NumUp())
	}
	// Readmission puts an excluded device on probation.
	if from, to, ch := h.Readmit(0); from != Excluded || to != Degraded || !ch {
		t.Fatalf("readmit: %v -> %v (%v)", from, to, ch)
	}
}

func TestHealthConcurrentAccess(t *testing.T) {
	h := NewHealth(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dev := (g + i) % 4
				switch i % 4 {
				case 0:
					h.Miss(dev)
				case 1:
					h.Clean(dev)
				case 2:
					h.Down()
				default:
					h.NumUp()
				}
			}
		}(g)
	}
	wg.Wait()
	if h.NumUp() < 1 {
		t.Fatal("last-device guard violated under concurrency")
	}
}

func TestLPBalancerExcludesDownDevice(t *testing.T) {
	pl := device.SysNFF() // 2 GPUs + 4 cores
	w := wl(32, 1)
	pm, topo := modelFor(pl, w)
	var b LPBalancer
	base, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.M[1]+base.L[1]+base.S[1] == 0 {
		t.Skip("GPU 1 idle even when healthy; exclusion test is vacuous")
	}

	topo.Down = make([]bool, topo.NumDevices())
	topo.Down[1] = true // second GPU gone
	var b2 LPBalancer
	d, err := b2.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.M[1] != 0 || d.L[1] != 0 || d.S[1] != 0 || d.Sigma[1] != 0 || d.SigmaR[1] != 0 {
		t.Fatalf("excluded device still assigned: m=%d l=%d s=%d σ=%d σʳ=%d",
			d.M[1], d.L[1], d.S[1], d.Sigma[1], d.SigmaR[1])
	}
	if d.RStarDev == 1 {
		t.Fatal("R* placed on an excluded device")
	}
	if err := d.Validate(w.Rows()); err != nil {
		t.Fatal(err)
	}
	// The reduced platform must still be predicted slower or equal, never
	// faster, than the full one.
	if d.PredTot < base.PredTot-1e-9 {
		t.Fatalf("losing a device sped up the prediction: %g < %g", d.PredTot, base.PredTot)
	}
}

func TestLPBalancerHysteresisDropsDownIncumbent(t *testing.T) {
	pl := device.SysNFF()
	w := wl(32, 1)
	pm, topo := modelFor(pl, w)
	b := LPBalancer{Hysteresis: 0.5}
	if _, err := b.Distribute(pm, topo, w, nil); err != nil {
		t.Fatal(err)
	}
	// Device 1 dies; the incumbent distribution references it and must not
	// be kept.
	topo.Down = make([]bool, topo.NumDevices())
	topo.Down[1] = true
	d, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.M[1]+d.L[1]+d.S[1] != 0 {
		t.Fatalf("hysteresis kept rows on a dead device: %v %v %v", d.M, d.L, d.S)
	}
}

func TestEquidistantExcluding(t *testing.T) {
	down := []bool{false, true, false, false}
	d := EquidistantExcluding(4, 10, 0, down)
	if d.M[1] != 0 || d.L[1] != 0 || d.S[1] != 0 || d.SigmaR[1] != 0 {
		t.Fatalf("down device assigned rows: %+v", d)
	}
	if err := d.Validate(10); err != nil {
		t.Fatal(err)
	}
	for _, v := range [][]int{d.M, d.L, d.S} {
		if v[0]+v[2]+v[3] != 10 {
			t.Fatalf("up devices carry %v", v)
		}
	}
	// Nil mask reproduces Equidistant exactly.
	a, bD := Equidistant(4, 10, 0), EquidistantExcluding(4, 10, 0, nil)
	if !intsEqual(a.M, bD.M) || !intsEqual(a.SigmaR, bD.SigmaR) {
		t.Fatal("nil-mask EquidistantExcluding diverges from Equidistant")
	}
}

func TestPerfModelQuarantine(t *testing.T) {
	pm := NewPerfModel(2, 1)
	pm.ObserveCompute(0, ModME, 1, 1, 1)
	pm.ObserveCompute(0, ModINT, 1, 1, 1)
	pm.ObserveCompute(0, ModSME, 1, 1, 1)
	// Device 1 was never characterized; quarantining it must unblock Ready.
	if pm.Ready() {
		t.Fatal("device 1 unobserved, model cannot be ready")
	}
	pm.Quarantine(1)
	if !pm.Quarantined(1) {
		t.Fatal("Quarantined(1) = false")
	}
	if !pm.Ready() {
		t.Fatal("quarantined device must not block readiness")
	}
	// Quarantined observations are dropped.
	pm.ObserveCompute(1, ModME, 1, 1, 99)
	pm.ObserveTransfer(1, CFh2d, 1, 99)
	pm.Unquarantine(1)
	if !math.IsNaN(pm.K(1, ModME)) {
		t.Fatal("quarantined compute observation leaked into the model")
	}
	if pm.T(1, CFh2d) != 0 {
		t.Fatal("quarantined transfer observation leaked into the model")
	}
	// All-quarantined model is not ready.
	pm.Quarantine(0)
	pm.Quarantine(1)
	if pm.Ready() {
		t.Fatal("model with every device quarantined cannot be ready")
	}
}

func TestMEOffloadCarriesReuseVectors(t *testing.T) {
	pl := device.SysNF()
	w := wl(32, 1)
	pm, topo := modelFor(pl, w)
	d, err := MEOffloadBalancer{}.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := w.Rows()
	// The GPU interpolates nothing and prefetches nothing, so the entire
	// SF completion is deferred: σʳ = rows − l − Δl = rows.
	if d.SigmaR[0] != rows {
		t.Fatalf("GPU σʳ = %d, want %d", d.SigmaR[0], rows)
	}
	if d.Sigma[0] != 0 {
		t.Fatalf("GPU σ = %d with no predicted slack", d.Sigma[0])
	}
	// Cores never carry σ/σʳ and the Δ vectors match MS/LS_BOUNDS.
	for i := topo.NumGPU; i < topo.NumDevices(); i++ {
		if d.Sigma[i] != 0 || d.SigmaR[i] != 0 {
			t.Fatalf("core %d carries σ/σʳ", i)
		}
	}
	if !intsEqual(d.DeltaM, MSBounds(d.M, d.S, topo.IsGPU)) ||
		!intsEqual(d.DeltaL, LSBounds(d.L, d.S, topo.IsGPU)) {
		t.Fatal("Δ vectors do not match MS_BOUNDS/LS_BOUNDS")
	}
}
