// Package sched implements the Load Balancing and Performance
// Characterization blocks of the FEVES framework (§III-C, Algorithm 2 of
// the paper): an on-line performance model fed by measured execution and
// transfer times, a linear-programming balancer that distributes the ME,
// INT and SME macroblock rows across heterogeneous devices to minimize the
// total inter-loop time τtot, the MS_BOUNDS/LS_BOUNDS data-reuse routines,
// the σ/σʳ deferred-SF-transfer computation, and baseline balancers
// (equidistant and speed-proportional) used by the paper's comparisons and
// this reproduction's ablations.
package sched

import (
	"fmt"
	"math"
)

// Module indexes the inter-loop module groups whose speeds the model
// tracks.
type Module int

const (
	ModME Module = iota
	ModINT
	ModSME
	ModRStar
	numModules
)

func (m Module) String() string {
	switch m {
	case ModME:
		return "ME"
	case ModINT:
		return "INT"
	case ModSME:
		return "SME"
	case ModRStar:
		return "R*"
	}
	return "?"
}

// Transfer identifies a buffer/direction pair of the paper's K^{·} transfer
// parameters.
type Transfer int

const (
	CFh2d Transfer = iota // current frame, host→device
	RFh2d                 // reference frame, host→device
	RFd2h                 // reconstructed reference, device→host
	SFh2d                 // interpolated sub-frame, host→device
	SFd2h                 // interpolated sub-frame, device→host
	MVh2d                 // motion vectors, host→device
	MVd2h                 // motion vectors, device→host
	numTransfers
)

func (t Transfer) String() string {
	names := [...]string{"CF.h2d", "RF.h2d", "RF.d2h", "SF.h2d", "SF.d2h", "MV.h2d", "MV.d2h"}
	if int(t) < len(names) {
		return names[t]
	}
	return "?"
}

// PerfModel is the Performance Characterization store: per device, the
// observed seconds per macroblock row for each module (K^m, K^l, K^s), the
// whole-frame R* time (T^R*), and the per-row transfer times in each
// direction. Observations are folded in with an exponential moving average
// so the model tracks load fluctuations (Fig. 7) while damping jitter.
type PerfModel struct {
	n     int
	alpha float64
	k     [numModules][]float64 // sec per MB row (T^R* stored whole-frame)
	tr    [numTransfers][]float64
	seen  []bool // device has at least one compute observation
	quar  []bool // excluded device: samples dropped, Ready() ignores it
}

// NewPerfModel creates a model for n devices. alpha in (0, 1] is the EWMA
// weight of the newest observation; the paper's "use the last measured
// load" behaviour corresponds to alpha = 1.
func NewPerfModel(n int, alpha float64) *PerfModel {
	if n <= 0 {
		panic("sched: PerfModel needs at least one device")
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("sched: alpha %v out of (0,1]", alpha))
	}
	pm := &PerfModel{n: n, alpha: alpha, seen: make([]bool, n), quar: make([]bool, n)}
	for m := range pm.k {
		pm.k[m] = nan(n)
	}
	for t := range pm.tr {
		pm.tr[t] = nan(n)
	}
	return pm
}

func nan(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

// NumDevices returns the device count.
func (pm *PerfModel) NumDevices() int { return pm.n }

// Ready reports whether every non-quarantined device has compute
// observations for ME, INT and SME — the precondition for invoking the LP
// balancer (before that, Algorithm 1 uses the equidistant distribution).
// A device excluded before it was ever characterized no longer blocks
// readiness; at least one live device must be characterized.
func (pm *PerfModel) Ready() bool {
	live := 0
	for i := 0; i < pm.n; i++ {
		if pm.quar[i] {
			continue
		}
		live++
		for _, m := range []Module{ModME, ModINT, ModSME} {
			if math.IsNaN(pm.k[m][i]) {
				return false
			}
		}
	}
	return live > 0
}

// Quarantine drops device dev from the model: its future observations are
// ignored (a sick device's timings would poison the EWMA) and Ready() no
// longer waits for it.
func (pm *PerfModel) Quarantine(dev int) { pm.quar[dev] = true }

// Unquarantine readmits device dev's observations (pool recovery path).
func (pm *PerfModel) Unquarantine(dev int) { pm.quar[dev] = false }

// Quarantined reports whether device dev's samples are being dropped.
func (pm *PerfModel) Quarantined(dev int) bool { return pm.quar[dev] }

// ObserveCompute records that device dev processed `rows` macroblock rows
// of a module in `seconds`, with `usableRF` reference frames searched. ME
// and SME scale linearly with the reference count, so their stored speeds
// are normalized per reference — the "realistic performance
// parametrization" that keeps predictions accurate while the DPB ramps up
// (Fig. 7(b)). For ModRStar, rows is ignored and seconds is the
// whole-frame T^R*.
func (pm *PerfModel) ObserveCompute(dev int, m Module, rows, usableRF int, seconds float64) {
	if pm.quar[dev] {
		return // quarantined: a sick device's timings are not evidence
	}
	if m != ModRStar && rows <= 0 {
		return // nothing was assigned; no information
	}
	if usableRF < 1 {
		usableRF = 1
	}
	perRow := seconds
	if m != ModRStar {
		perRow = seconds / float64(rows)
		if m == ModME || m == ModSME {
			perRow /= float64(usableRF)
		}
	}
	pm.fold(&pm.k[m][dev], perRow)
	pm.seen[dev] = true
}

// ObserveTransfer records a transfer of `rows` buffer rows taking
// `seconds` on device dev's link.
func (pm *PerfModel) ObserveTransfer(dev int, t Transfer, rows int, seconds float64) {
	if pm.quar[dev] || rows <= 0 {
		return
	}
	pm.fold(&pm.tr[t][dev], seconds/float64(rows))
}

func (pm *PerfModel) fold(slot *float64, v float64) {
	if math.IsNaN(*slot) {
		*slot = v
		return
	}
	*slot = pm.alpha*v + (1-pm.alpha)**slot
}

// K returns the per-row time of a module on a device (NaN if unobserved;
// T^R* is whole-frame). For ME and SME the stored value is per reference
// frame; use KAt to denormalize for a workload.
func (pm *PerfModel) K(dev int, m Module) float64 { return pm.k[m][dev] }

// KAt returns the per-row time of a module for a frame searching usableRF
// references, denormalizing the ME/SME speeds.
func (pm *PerfModel) KAt(dev int, m Module, usableRF int) float64 {
	v := pm.k[m][dev]
	if m == ModME || m == ModSME {
		v *= float64(usableRF)
	}
	return v
}

// T returns the per-row transfer time (0 if never observed — the CPU-core
// case, whose transfers are free).
func (pm *PerfModel) T(dev int, t Transfer) float64 {
	v := pm.tr[t][dev]
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// ModelSnapshot is a frozen copy of the Performance Characterization's
// per-device module speeds, taken with PerfModel.Snapshot. Comparing the
// snapshots bracketing a frame's EWMA update yields the model drift that
// frame's measurements caused — the telemetry subsystem's audit signal.
type ModelSnapshot struct {
	// K[m][dev] is seconds per macroblock row (T^R* whole-frame), NaN when
	// the device has not been observed running module m yet.
	K [numModules][]float64
}

// Snapshot copies the current module speeds.
func (pm *PerfModel) Snapshot() ModelSnapshot {
	var s ModelSnapshot
	pm.SnapshotInto(&s)
	return s
}

// SnapshotInto copies the current module speeds into s, reusing its
// existing slices — the zero-allocation variant for per-frame audits.
func (pm *PerfModel) SnapshotInto(s *ModelSnapshot) {
	for m := range pm.k {
		s.K[m] = append(s.K[m][:0], pm.k[m]...)
	}
}

// KDrift is one device/module speed change between two snapshots.
type KDrift struct {
	Device int
	Module Module
	// Before is 0 (and Rel 0) when the device gained its first observation
	// of the module between the snapshots.
	Before, After float64
	// Rel is |After-Before|/Before.
	Rel float64
}

// Drift lists every device/module speed that changed from s to after,
// including first observations (Before 0). Unchanged and still-unobserved
// entries are omitted.
func (s ModelSnapshot) Drift(after ModelSnapshot) []KDrift {
	return s.DriftInto(nil, after)
}

// DriftInto appends the drift entries to out[:0] and returns it, reusing
// out's backing array when large enough.
func (s ModelSnapshot) DriftInto(out []KDrift, after ModelSnapshot) []KDrift {
	out = out[:0]
	for m := range s.K {
		for dev := range s.K[m] {
			if dev >= len(after.K[m]) {
				continue
			}
			b, a := s.K[m][dev], after.K[m][dev]
			if math.IsNaN(a) || b == a {
				continue
			}
			d := KDrift{Device: dev, Module: Module(m), After: a}
			if !math.IsNaN(b) {
				d.Before = b
				if b != 0 {
					d.Rel = math.Abs(a-b) / b
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// TRStar returns the whole-frame R* estimate for a device; devices never
// observed running R* inherit a conservative estimate from their SME speed
// (R* ≈ SME-weight × rows), so placement can still compare them.
func (pm *PerfModel) TRStar(dev int, rows int) float64 {
	if v := pm.k[ModRStar][dev]; !math.IsNaN(v) {
		return v
	}
	if v := pm.k[ModSME][dev]; !math.IsNaN(v) {
		return v * float64(rows)
	}
	return math.Inf(1)
}
