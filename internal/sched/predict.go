package sched

import "feves/internal/device"

// PredictTimes evaluates the synchronization points τ1, τ2 and τtot that
// Algorithm 2's constraint chains imply for a *given* distribution under
// the current performance model — the same bounds the LP minimizes, applied
// to a fixed point instead of an optimization variable. It is used by the
// hysteresis logic (re-scoring the previous frame's distribution under
// fresh measurements) and by tests that check LP optimality.
func PredictTimes(pm *PerfModel, topo Topology, w device.Workload, d Distribution, prevSigmaR []int) (t1, t2, tot float64) {
	p := topo.NumDevices()
	rows := w.Rows()
	n := float64(rows)
	if prevSigmaR == nil {
		prevSigmaR = make([]int, p)
	}
	max := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}

	rstar := d.RStarDev
	trs := pm.TRStar(rstar, rows)

	for i := 0; i < p; i++ {
		if topo.IsDown(i) {
			continue
		}
		km := pm.KAt(i, ModME, w.UsableRF)
		kl := pm.K(i, ModINT)
		m, l := float64(d.M[i]), float64(d.L[i])
		switch {
		case !topo.IsGPU(i):
			// (2): the core's serial ME+INT chain.
			t1 = max(t1, m*km+l*kl)
		case i == rstar:
			kcf, ksfd := pm.T(i, CFh2d), pm.T(i, SFd2h)
			kmvd := pm.T(i, MVd2h)
			dm := float64(d.DeltaM[i])
			t1 = max(t1, l*kl+m*km)                  // joint compute chain
			t1 = max(t1, m*(kcf+km+kmvd))            // (4)
			t1 = max(t1, l*(kl+ksfd)+dm*kcf+m*kmvd)  // (5)
			t1 = max(t1, m*(kcf+kmvd)+l*ksfd+dm*kcf) // (6)
		default:
			kcf, krfh, ksfh, ksfd := pm.T(i, CFh2d), pm.T(i, RFh2d), pm.T(i, SFh2d), pm.T(i, SFd2h)
			kmvd := pm.T(i, MVd2h)
			dm := float64(d.DeltaM[i])
			sr := float64(prevSigmaR[i])
			t1 = max(t1, n*krfh+l*kl+m*km)
			t1 = max(t1, n*krfh+m*(kcf+km+kmvd))                    // (10)
			t1 = max(t1, n*krfh+l*(kl+ksfd)+sr*ksfh+dm*kcf+m*kmvd)  // (11)
			t1 = max(t1, n*krfh+m*(kcf+kmvd)+l*ksfd+sr*ksfh+dm*kcf) // (12)
		}
	}

	t2 = t1
	for i := 0; i < p; i++ {
		if topo.IsDown(i) {
			continue
		}
		ks := pm.KAt(i, ModSME, w.UsableRF)
		s := float64(d.S[i])
		switch {
		case !topo.IsGPU(i):
			t2 = max(t2, t1+s*ks) // (3)
		case i == rstar:
			kcf, ksfh := pm.T(i, CFh2d), pm.T(i, SFh2d)
			kmvh := pm.T(i, MVh2d)
			m, l := float64(d.M[i]), float64(d.L[i])
			dm, dl := float64(d.DeltaM[i]), float64(d.DeltaL[i])
			t2 = max(t2, t1+dl*ksfh+dm*kmvh+s*ks) // (7)
			cfRem := (n - m - dm) * kcf
			if cfRem < 0 {
				cfRem = 0
			}
			sfRem := (n - l - dl) * ksfh
			if sfRem < 0 {
				sfRem = 0
			}
			t2 = max(t2, t1+dl*ksfh+cfRem+sfRem+dm*kmvh) // (8)
		default:
			ksfh, kmvh, kmvd := pm.T(i, SFh2d), pm.T(i, MVh2d), pm.T(i, MVd2h)
			dm, dl := float64(d.DeltaM[i]), float64(d.DeltaL[i])
			t2 = max(t2, t1+dl*ksfh+dm*kmvh+s*(ks+kmvd)) // (13)
		}
	}

	// (9) / the CPU-centric analogue.
	if topo.IsGPU(rstar) {
		kmvh, krfd := pm.T(rstar, MVh2d), pm.T(rstar, RFd2h)
		s := float64(d.S[rstar])
		tot = t2 + (n-s)*kmvh + trs + n*krfd
	} else {
		tot = t2 + trs
	}
	return t1, t2, tot
}
