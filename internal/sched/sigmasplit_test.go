package sched

import "testing"

// TestSigmaSplitEdgeCases pins the behaviour of constraints (14)/(15) at
// the boundaries: whatever the slack looks like, the split must conserve
// the missing row count (σ + σʳ = missing) and never go negative — the
// rows a device is missing either transfer now or next frame, they cannot
// vanish or double.
func TestSigmaSplitEdgeCases(t *testing.T) {
	const per = 2e-4 // one SF row's h2d transfer time
	cases := []struct {
		name       string
		missing    int
		slack      float64
		perRow     float64
		wantSigma  int
		wantSigmaR int
	}{
		{"zero slack defers everything", 5, 0, per, 0, 5},
		{"nothing missing", 0, 1.0, per, 0, 0},
		{"negative missing clamps to zero", -3, 1.0, per, 0, 0},
		{"slack below one row defers everything", 4, per / 2, per, 0, 4},
		{"negative slack defers everything", 4, -1.0, per, 0, 4},
		{"slack fits exactly one row", 4, per, per, 1, 3},
		{"slack fits a fraction over two rows", 4, 2.5 * per, per, 2, 2},
		{"slack fits more than missing", 3, 100 * per, per, 3, 0},
		{"free transfers send everything now", 7, 0, 0, 7, 0},
		{"negative per-row treated as free", 7, 0, -per, 7, 0},
	}
	for _, c := range cases {
		sigma, sigmaR := SigmaSplit(c.missing, c.slack, c.perRow)
		if sigma != c.wantSigma || sigmaR != c.wantSigmaR {
			t.Errorf("%s: SigmaSplit(%d, %g, %g) = (%d, %d), want (%d, %d)",
				c.name, c.missing, c.slack, c.perRow, sigma, sigmaR, c.wantSigma, c.wantSigmaR)
		}
	}
}

// TestSigmaSplitConservation sweeps a grid of inputs and asserts the two
// invariants every caller relies on: non-negativity and σ + σʳ = missing
// (for missing ≥ 0), with σ's transfer time fitting the slack whenever the
// transfer is not free.
func TestSigmaSplitConservation(t *testing.T) {
	for missing := -2; missing <= 70; missing++ {
		for _, slack := range []float64{-1, 0, 1e-5, 2e-4, 1e-3, 0.013, 0.2} {
			for _, per := range []float64{0, 1e-5, 2e-4, 3e-3} {
				sigma, sigmaR := SigmaSplit(missing, slack, per)
				if sigma < 0 || sigmaR < 0 {
					t.Fatalf("SigmaSplit(%d, %g, %g) = (%d, %d): negative part",
						missing, slack, per, sigma, sigmaR)
				}
				want := missing
				if want < 0 {
					want = 0
				}
				if sigma+sigmaR != want {
					t.Fatalf("SigmaSplit(%d, %g, %g) = (%d, %d): σ+σʳ = %d, want %d",
						missing, slack, per, sigma, sigmaR, sigma+sigmaR, want)
				}
				if sigma > 0 && per > 0 && float64(sigma)*per > slack+1e-12 {
					t.Fatalf("SigmaSplit(%d, %g, %g): σ = %d rows take %g, beyond the slack",
						missing, slack, per, sigma, float64(sigma)*per)
				}
			}
		}
	}
}
