package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"feves/internal/device"
)

// modelFor seeds a PerfModel with exact (jitter-free) characterization of a
// platform for a workload, as a converged Performance Characterization
// would hold.
func modelFor(pl *device.Platform, w device.Workload) (*PerfModel, Topology) {
	topo := Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := NewPerfModel(topo.NumDevices(), 1)
	for i := 0; i < topo.NumDevices(); i++ {
		p := pl.Dev(i)
		pm.ObserveCompute(i, ModME, 1, w.UsableRF, p.KME(w))
		pm.ObserveCompute(i, ModINT, 1, 1, p.KINT(w))
		pm.ObserveCompute(i, ModSME, 1, w.UsableRF, p.KSME(w))
		pm.ObserveCompute(i, ModRStar, 0, 1, p.TRStar(w))
		if pl.IsGPU(i) {
			pm.ObserveTransfer(i, CFh2d, 1, p.TH2D(w.CFRowBytes()))
			pm.ObserveTransfer(i, RFh2d, 1, p.TH2D(w.RFRowBytes()))
			pm.ObserveTransfer(i, RFd2h, 1, p.TD2H(w.RFRowBytes()))
			pm.ObserveTransfer(i, SFh2d, 1, p.TH2D(w.SFRowBytes()))
			pm.ObserveTransfer(i, SFd2h, 1, p.TD2H(w.SFRowBytes()))
			pm.ObserveTransfer(i, MVh2d, 1, p.TH2D(w.MVRowBytes()))
			pm.ObserveTransfer(i, MVd2h, 1, p.TD2H(w.MVRowBytes()))
		}
	}
	return pm, topo
}

func wl(sa, rf int) device.Workload {
	return device.Workload{MBW: 120, MBH: 68, SA: sa, NumRF: rf, UsableRF: rf}
}

func TestPerfModelEWMA(t *testing.T) {
	pm := NewPerfModel(1, 0.5)
	pm.ObserveCompute(0, ModME, 10, 1, 10) // 1 s/row
	if pm.K(0, ModME) != 1 {
		t.Fatalf("first observation should set the value, got %v", pm.K(0, ModME))
	}
	pm.ObserveCompute(0, ModME, 10, 1, 30) // 3 s/row → EWMA 2
	if pm.K(0, ModME) != 2 {
		t.Fatalf("EWMA = %v, want 2", pm.K(0, ModME))
	}
	// Zero rows carries no information.
	pm.ObserveCompute(0, ModME, 0, 1, 99)
	if pm.K(0, ModME) != 2 {
		t.Fatal("zero-row observation must be ignored")
	}
}

func TestPerfModelReady(t *testing.T) {
	pm := NewPerfModel(2, 1)
	if pm.Ready() {
		t.Fatal("empty model cannot be ready")
	}
	for i := 0; i < 2; i++ {
		pm.ObserveCompute(i, ModME, 1, 1, 1)
		pm.ObserveCompute(i, ModINT, 1, 1, 1)
	}
	if pm.Ready() {
		t.Fatal("missing SME observations")
	}
	pm.ObserveCompute(0, ModSME, 1, 1, 1)
	pm.ObserveCompute(1, ModSME, 1, 1, 1)
	if !pm.Ready() {
		t.Fatal("fully observed model must be ready")
	}
}

func TestPerfModelTransferDefaultsToZero(t *testing.T) {
	pm := NewPerfModel(1, 1)
	if pm.T(0, SFh2d) != 0 {
		t.Fatal("unobserved transfers must read as free (CPU-core semantics)")
	}
	pm.ObserveTransfer(0, SFh2d, 4, 2)
	if pm.T(0, SFh2d) != 0.5 {
		t.Fatalf("T = %v, want 0.5", pm.T(0, SFh2d))
	}
}

func TestPerfModelTRStarFallback(t *testing.T) {
	pm := NewPerfModel(1, 1)
	if !math.IsInf(pm.TRStar(0, 10), 1) {
		t.Fatal("unobserved device should be infinitely expensive")
	}
	pm.ObserveCompute(0, ModSME, 1, 1, 2)
	if pm.TRStar(0, 10) != 20 {
		t.Fatalf("SME fallback = %v, want 20", pm.TRStar(0, 10))
	}
	pm.ObserveCompute(0, ModRStar, 0, 1, 5)
	if pm.TRStar(0, 10) != 5 {
		t.Fatal("direct observation must win")
	}
}

func TestEquidistant(t *testing.T) {
	d := Equidistant(3, 68, 0)
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	if d.M[0] != 23 || d.M[1] != 23 || d.M[2] != 22 {
		t.Fatalf("split %v", d.M)
	}
	for i, sr := range d.SigmaR {
		if sr != 68-d.L[i] {
			t.Fatalf("σʳ[%d] = %d, want %d", i, sr, 68-d.L[i])
		}
	}
}

func TestRoundPreservingSumQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		rows := 1 + rng.Intn(200)
		x := make([]float64, n)
		rem := float64(rows)
		for i := 0; i < n-1; i++ {
			x[i] = rem * rng.Float64()
			rem -= x[i]
		}
		x[n-1] = rem
		out := roundPreservingSum(x, rows)
		sum := 0
		for i, v := range out {
			if v < 0 {
				return false
			}
			if math.Abs(float64(v)-x[i]) > 1.0+1e-9 {
				return false // rounding moved more than one unit
			}
			sum += v
		}
		return sum == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsIdentityDistribution(t *testing.T) {
	isGPU := func(i int) bool { return true }
	m := []int{20, 30, 18}
	if dm := MSBounds(m, m, isGPU); dm[0] != 0 || dm[1] != 0 || dm[2] != 0 {
		t.Fatalf("identical ranges need no extra transfers, got %v", dm)
	}
}

func TestBoundsDisjointAndPartial(t *testing.T) {
	isGPU := func(i int) bool { return i == 0 || i == 1 }
	// Device 0: ME rows [0,10); SME rows [0,20) → 10 extra rows.
	// Device 1: ME rows [10,30); SME rows [20,30) → contained → 0 extra.
	m := []int{10, 20}
	s := []int{20, 10}
	dm := MSBounds(m, s, isGPU)
	if dm[0] != 10 || dm[1] != 0 {
		t.Fatalf("Δm = %v, want [10 0]", dm)
	}
	// CPU devices report zero regardless.
	dm = MSBounds(m, s, func(int) bool { return false })
	if dm[0] != 0 || dm[1] != 0 {
		t.Fatalf("CPU Δ must be zero, got %v", dm)
	}
}

func TestBoundsNeverExceedNeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		rows := 30 + rng.Intn(60)
		randDist := func() []int {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.Float64()
			}
			var sum float64
			for _, v := range x {
				sum += v
			}
			for i := range x {
				x[i] = x[i] / sum * float64(rows)
			}
			return roundPreservingSum(x, rows)
		}
		m, s := randDist(), randDist()
		dm := MSBounds(m, s, func(int) bool { return true })
		for i := range dm {
			if dm[i] < 0 || dm[i] > s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmaSplit(t *testing.T) {
	// 10 rows missing, slack fits 4.
	s, r := SigmaSplit(10, 4, 1)
	if s != 4 || r != 6 {
		t.Fatalf("σ=%d σʳ=%d", s, r)
	}
	if s, r = SigmaSplit(10, 100, 1); s != 10 || r != 0 {
		t.Fatalf("all rows should fit: σ=%d σʳ=%d", s, r)
	}
	if s, r = SigmaSplit(0, 5, 1); s != 0 || r != 0 {
		t.Fatal("nothing missing → nothing to do")
	}
	if s, r = SigmaSplit(7, -3, 1); s != 0 || r != 7 {
		t.Fatal("negative slack defers everything")
	}
	if s, r = SigmaSplit(7, 0, 0); s != 7 || r != 0 {
		t.Fatal("free transfers always fit")
	}
}

func TestLPBalancerFavoursFasterDevice(t *testing.T) {
	pm, topo := modelFor(device.SysHK(), wl(32, 1))
	b := &LPBalancer{}
	d, err := b.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	// The Kepler GPU is far faster than one Haswell core: it must receive
	// the largest ME share.
	for i := 1; i < topo.NumDevices(); i++ {
		if d.M[0] <= d.M[i] {
			t.Fatalf("GPU ME share %d not dominant over core %d share %d (%v)", d.M[0], i, d.M[i], d.M)
		}
	}
	if d.PredTot <= 0 || d.PredTau1 <= 0 || d.PredTau2 < d.PredTau1 || d.PredTot < d.PredTau2 {
		t.Fatalf("inconsistent predictions τ1=%v τ2=%v τtot=%v", d.PredTau1, d.PredTau2, d.PredTot)
	}
}

func TestLPBalancerBeatsEquidistantPrediction(t *testing.T) {
	pm, topo := modelFor(device.SysNF(), wl(32, 1))
	b := &LPBalancer{}
	d, err := b.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate the equidistant makespan with the same model: the slowest
	// device's serial chain dominates.
	eq := Equidistant(topo.NumDevices(), 68, 0)
	worst := 0.0
	for i := 0; i < topo.NumDevices(); i++ {
		c := float64(eq.M[i])*pm.K(i, ModME) + float64(eq.L[i])*pm.K(i, ModINT) + float64(eq.S[i])*pm.K(i, ModSME)
		if c > worst {
			worst = c
		}
	}
	worst += pm.TRStar(0, 68)
	if d.PredTot >= worst {
		t.Fatalf("LP predicted τtot %v not better than equidistant estimate %v", d.PredTot, worst)
	}
}

func TestLPBalancerSingleGPU(t *testing.T) {
	pm, topo := modelFor(device.GPUOnly("GPU_K", device.GPUKepler()), wl(32, 1))
	d, err := (&LPBalancer{}).Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.M[0] != 68 || d.L[0] != 68 || d.S[0] != 68 {
		t.Fatalf("single device must take everything: %+v", d)
	}
	if d.RStarDev != 0 {
		t.Fatal("R* must be on the only device")
	}
}

func TestLPBalancerCPUOnly(t *testing.T) {
	pm, topo := modelFor(device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), wl(32, 1))
	d, err := (&LPBalancer{}).Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	// Identical cores admit many optimal row splits (ME and INT rows are
	// interchangeable in constraint (2)); the balanced quantity is each
	// core's τ1-phase time K^m·m + K^l·l, which must not exceed the
	// prediction by more than one row's worth of work.
	for i := 0; i < 4; i++ {
		load := float64(d.M[i])*pm.K(i, ModME) + float64(d.L[i])*pm.K(i, ModINT)
		if load > d.PredTau1+pm.K(i, ModME)+pm.K(i, ModINT) {
			t.Fatalf("core %d τ1 load %v exceeds predicted τ1 %v", i, load, d.PredTau1)
		}
	}
}

func TestLPBalancerRequiresReadyModel(t *testing.T) {
	pm := NewPerfModel(2, 1)
	if _, err := (&LPBalancer{}).Distribute(pm, Topology{NumGPU: 1, Cores: 1}, wl(32, 1), nil); err == nil {
		t.Fatal("uncharacterized model must be rejected")
	}
}

func TestLPBalancerAdaptsToPerturbation(t *testing.T) {
	plat := device.SysHK()
	pm, topo := modelFor(plat, wl(32, 1))
	b := &LPBalancer{}
	before, err := b.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The GPU suddenly becomes 4× slower (Fig. 7 event): re-characterize
	// and redistribute.
	w := wl(32, 1)
	gpu := plat.Dev(0)
	pm.ObserveCompute(0, ModME, 1, w.UsableRF, 4*gpu.KME(w))
	pm.ObserveCompute(0, ModSME, 1, w.UsableRF, 4*gpu.KSME(w))
	pm.ObserveCompute(0, ModINT, 1, 1, 4*gpu.KINT(w))
	after, err := b.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.M[0] >= before.M[0] {
		t.Fatalf("GPU slowdown must reduce its ME share: %d → %d", before.M[0], after.M[0])
	}
}

func TestProportionalBalancer(t *testing.T) {
	pm, topo := modelFor(device.SysNF(), wl(32, 1))
	d, err := ProportionalBalancer{}.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	if d.M[0] <= d.M[1] {
		t.Fatal("proportional split must favour the GPU")
	}
}

func TestEquidistantBalancerInterface(t *testing.T) {
	var b Balancer = EquidistantBalancer{}
	d, err := b.Distribute(nil, Topology{NumGPU: 1, Cores: 3}, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	if b.Name() != "equidistant" || (&LPBalancer{}).Name() != "lp" || (ProportionalBalancer{}).Name() != "proportional" {
		t.Fatal("balancer names wrong")
	}
}

func TestPlaceRStarPrefersGPU(t *testing.T) {
	pm, topo := modelFor(device.SysHK(), wl(32, 1))
	if dev := PlaceRStar(pm, topo, 68); dev != 0 {
		t.Fatalf("R* placed on device %d, want the Kepler GPU (0)", dev)
	}
}

func TestPlaceRStarPrefersCPUWhenGPUSlow(t *testing.T) {
	slowGPU := device.GPUFermi().Scaled(100, "GPU_slow")
	pl := &device.Platform{Name: "odd", GPUs: []device.Profile{slowGPU}, CPUCore: device.CPUHaswellCore(), Cores: 4, Seed: 1}
	pm, topo := modelFor(pl, wl(32, 1))
	if dev := PlaceRStar(pm, topo, 68); dev == 0 {
		t.Fatal("R* should move off a 100× slower GPU (CPU-centric configuration)")
	}
}

func TestRStarPathCollapsesToSingleDevice(t *testing.T) {
	pm, topo := modelFor(device.SysHK(), wl(32, 1))
	devs, cost := RStarPath(pm, topo, 68)
	for _, d := range devs[1:] {
		if d != devs[0] {
			t.Fatalf("with real transfer costs the path must not migrate: %v", devs)
		}
	}
	if cost <= 0 {
		t.Fatalf("cost %v", cost)
	}
}

func TestRStarPathMigratesWhenTransfersFree(t *testing.T) {
	// Two devices with complementary stage speeds and free transfers: the
	// optimal path uses both.
	pm := NewPerfModel(2, 1)
	topo := Topology{NumGPU: 0, Cores: 2} // CPU cores: free migration
	pm.ObserveCompute(0, ModRStar, 0, 1, 1.0)
	pm.ObserveCompute(1, ModRStar, 0, 1, 1.0)
	for i := 0; i < 2; i++ {
		pm.ObserveCompute(i, ModME, 1, 1, 1)
		pm.ObserveCompute(i, ModINT, 1, 1, 1)
		pm.ObserveCompute(i, ModSME, 1, 1, 1)
	}
	devs, _ := RStarPath(pm, topo, 68)
	// Equal speeds and free migration: path cost equals single-device
	// cost; any assignment is optimal. Now make device 1 faster overall —
	// the path must use it exclusively.
	pm.ObserveCompute(1, ModRStar, 0, 1, 0.5)
	devs, cost := RStarPath(pm, topo, 68)
	for _, d := range devs {
		if d != 1 {
			t.Fatalf("path should collapse to the faster device: %v", devs)
		}
	}
	if math.Abs(cost-0.5) > 1e-9 {
		t.Fatalf("cost %v, want 0.5", cost)
	}
}

func TestCPUCentricConstraintUsed(t *testing.T) {
	// Platform whose GPU is so slow that R* lands on a CPU core: the LP
	// must still produce a valid distribution with τtot ≥ τ2 + T^R*.
	slowGPU := device.GPUFermi().Scaled(50, "GPU_snail")
	pl := &device.Platform{Name: "cpu-centric", GPUs: []device.Profile{slowGPU}, CPUCore: device.CPUHaswellCore(), Cores: 4, Seed: 1}
	w := wl(32, 1)
	pm, topo := modelFor(pl, w)
	d, err := (&LPBalancer{}).Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if topo.IsGPU(d.RStarDev) {
		t.Fatal("R* should be CPU-centric here")
	}
	trs := pm.TRStar(d.RStarDev, 68)
	if d.PredTot < d.PredTau2+trs-1e-9 {
		t.Fatalf("τtot %v < τ2 %v + T^R* %v", d.PredTot, d.PredTau2, trs)
	}
}

func TestDistributionValidate(t *testing.T) {
	d := Distribution{M: []int{5, 5}, L: []int{5, 5}, S: []int{5, 5}, RStarDev: 0}
	if err := d.Validate(10); err != nil {
		t.Fatal(err)
	}
	bad := Distribution{M: []int{5, 4}, L: []int{5, 5}, S: []int{5, 5}}
	if bad.Validate(10) == nil {
		t.Fatal("wrong sum accepted")
	}
	neg := Distribution{M: []int{-1, 11}, L: []int{5, 5}, S: []int{5, 5}}
	if neg.Validate(10) == nil {
		t.Fatal("negative rows accepted")
	}
	badDev := Distribution{M: []int{5, 5}, L: []int{5, 5}, S: []int{5, 5}, RStarDev: 7}
	if badDev.Validate(10) == nil {
		t.Fatal("bad R* device accepted")
	}
}

func TestModuleAndTransferStrings(t *testing.T) {
	if ModME.String() != "ME" || ModRStar.String() != "R*" || Module(99).String() != "?" {
		t.Fatal("module names wrong")
	}
	if CFh2d.String() != "CF.h2d" || MVd2h.String() != "MV.d2h" || Transfer(99).String() != "?" {
		t.Fatal("transfer names wrong")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMEOffloadBalancer(t *testing.T) {
	pm, topo := modelFor(device.SysNFF(), wl(32, 1))
	d, err := MEOffloadBalancer{}.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	// All ME rows on GPU 0; the second GPU is idle — the scalability
	// limitation the paper calls out about single-module offload.
	if d.M[0] != 68 || d.M[1] != 0 {
		t.Fatalf("ME distribution %v, want all rows on GPU 0", d.M)
	}
	if d.L[0] != 0 || d.S[0] != 0 || d.L[1] != 0 || d.S[1] != 0 {
		t.Fatal("GPUs must not run INT or SME under ME offload")
	}
	sumCPU := 0
	for c := 2; c < topo.NumDevices(); c++ {
		sumCPU += d.S[c]
	}
	if sumCPU != 68 {
		t.Fatalf("CPU cores carry %d SME rows, want 68", sumCPU)
	}
	if topo.IsGPU(d.RStarDev) {
		t.Fatal("ME offload is CPU-centric for R*")
	}
	if (MEOffloadBalancer{}).Name() != "me-offload" {
		t.Fatal("name wrong")
	}
}

func TestMEOffloadRequiresHybridPlatform(t *testing.T) {
	pm, topo := modelFor(device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), wl(32, 1))
	if _, err := (MEOffloadBalancer{}).Distribute(pm, topo, wl(32, 1), nil); err == nil {
		t.Fatal("CPU-only platform accepted")
	}
	pm2, topo2 := modelFor(device.GPUOnly("GPU_K", device.GPUKepler()), wl(32, 1))
	if _, err := (MEOffloadBalancer{}).Distribute(pm2, topo2, wl(32, 1), nil); err == nil {
		t.Fatal("GPU-only platform accepted")
	}
}

func TestPredictTimesMatchesLPPrediction(t *testing.T) {
	// Evaluating the LP's own solution with PredictTimes must reproduce
	// its predicted synchronization points (same constraint formulas).
	pm, topo := modelFor(device.SysHK(), wl(32, 2))
	b := &LPBalancer{}
	w := wl(32, 2)
	d, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2, tot := PredictTimes(pm, topo, w, d, nil)
	// Integer rounding moves the chains by at most a few rows' work.
	tol := 0.05 * d.PredTot
	if math.Abs(t1-d.PredTau1) > tol || math.Abs(t2-d.PredTau2) > tol || math.Abs(tot-d.PredTot) > tol {
		t.Fatalf("PredictTimes (%.4f %.4f %.4f) vs LP (%.4f %.4f %.4f)",
			t1, t2, tot, d.PredTau1, d.PredTau2, d.PredTot)
	}
}

func TestHysteresisKeepsIncumbent(t *testing.T) {
	pm, topo := modelFor(device.SysHK(), wl(32, 1))
	b := &LPBalancer{Hysteresis: 0.05}
	w := wl(32, 1)
	first, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny jitter on one core: without hysteresis the optimum might shift
	// a row; with it the distribution must be identical.
	pm.ObserveCompute(2, ModME, 1, 1, pm.KAt(2, ModME, 1)*1.01)
	second, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !intsEqual(first.M, second.M) || !intsEqual(first.S, second.S) {
		t.Fatalf("hysteresis did not hold the incumbent: %v -> %v", first.M, second.M)
	}
}

func TestHysteresisStillReactsToRealChanges(t *testing.T) {
	plat := device.SysHK()
	pm, topo := modelFor(plat, wl(32, 1))
	b := &LPBalancer{Hysteresis: 0.05}
	w := wl(32, 1)
	before, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	// GPU becomes 4× slower: the incumbent's predicted τtot explodes, so
	// the balancer must abandon it at once.
	gpu := plat.Dev(0)
	pm.ObserveCompute(0, ModME, 1, 1, 4*gpu.KME(w))
	pm.ObserveCompute(0, ModSME, 1, 1, 4*gpu.KSME(w))
	pm.ObserveCompute(0, ModINT, 1, 1, 4*gpu.KINT(w))
	after, err := b.Distribute(pm, topo, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.M[0] >= before.M[0] {
		t.Fatalf("hysteresis blocked a genuine re-balance: %d -> %d", before.M[0], after.M[0])
	}
}

func TestNoReuseBalancer(t *testing.T) {
	pm, topo := modelFor(device.SysHK(), wl(32, 1))
	b := &LPBalancer{NoReuse: true}
	if b.Name() != "lp-noreuse" {
		t.Fatal("name wrong")
	}
	d, err := b.Distribute(pm, topo, wl(32, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(68); err != nil {
		t.Fatal(err)
	}
	// Without reuse, every accelerator's Δ equals its full SME share.
	if d.DeltaM[0] != d.S[0] || d.DeltaL[0] != d.S[0] {
		t.Fatalf("no-reuse Δ should equal s: Δm=%v Δl=%v s=%v", d.DeltaM, d.DeltaL, d.S)
	}
	// CPU cores still have no transfers.
	for i := 1; i < topo.NumDevices(); i++ {
		if d.DeltaM[i] != 0 || d.DeltaL[i] != 0 {
			t.Fatalf("CPU core %d has transfer deltas", i)
		}
	}
}

func TestObserveTransferZeroRowsIgnored(t *testing.T) {
	pm := NewPerfModel(1, 1)
	pm.ObserveTransfer(0, CFh2d, 0, 5)
	if pm.T(0, CFh2d) != 0 {
		t.Fatal("zero-row transfer observation must be ignored")
	}
}

func TestModuleStringsComplete(t *testing.T) {
	if ModINT.String() != "INT" || ModSME.String() != "SME" {
		t.Fatal("module names wrong")
	}
	for tr := CFh2d; tr < numTransfers; tr++ {
		if tr.String() == "?" {
			t.Fatalf("transfer %d unnamed", tr)
		}
	}
}
