package sched

import "math"

// The R* group (MC, TQ, TQ⁻¹, DBL) has low computational weight (< 3% for
// MC+TQ+TQ⁻¹ per the paper) and DBL's cross-macroblock dependencies resist
// distribution, so the paper maps the whole group onto a single device
// chosen with a shortest-path (Dijkstra) formulation over the module-device
// assignment graph from [9]. This file implements that placement: a layered
// DAG whose nodes are (stage, device) pairs, with stage weights derived
// from the characterized R* time and migration edges priced at the cost of
// moving the working set between devices.

// rStarStages are the relative weights of MC, TQ, TQ⁻¹ and DBL within the
// R* group time (MC+TQ+TQ⁻¹ < 3% of the inter-loop per [4]; DBL dominates).
var rStarStages = [4]float64{0.30, 0.20, 0.20, 0.30}

// RStarPath computes the minimum-cost assignment of the four R* stages to
// devices, allowing migration between stages at the cost of moving the
// frame working set across the interconnect. It returns the per-stage
// device choice and the total cost. With realistic transfer costs the
// optimum collapses onto a single device, which is exactly the paper's
// argument for single-device R* mapping.
func RStarPath(pm *PerfModel, topo Topology, rows int) (devs [4]int, cost float64) {
	p := topo.NumDevices()
	const nStages = 4
	// dist[i] is the best cost of finishing the current stage on device i.
	dist := make([]float64, p)
	prev := make([][4]int, p) // back-pointers per device

	stageTime := func(stage, dev int) float64 {
		if topo.IsDown(dev) {
			return math.Inf(1)
		}
		return pm.TRStar(dev, rows) * rStarStages[stage]
	}
	migrate := func(from, to int) float64 {
		if from == to {
			return 0
		}
		// Move the reconstruction working set: device→host on the source,
		// host→device on the target (free for CPU cores).
		var c float64
		if topo.IsGPU(from) {
			c += float64(rows) * pm.T(from, RFd2h)
		}
		if topo.IsGPU(to) {
			c += float64(rows) * pm.T(to, RFh2d)
		}
		return c
	}

	for i := 0; i < p; i++ {
		dist[i] = stageTime(0, i)
		prev[i][0] = i
	}
	for stage := 1; stage < nStages; stage++ {
		next := make([]float64, p)
		nextPrev := make([][4]int, p)
		for to := 0; to < p; to++ {
			best := math.Inf(1)
			var bestPath [4]int
			for from := 0; from < p; from++ {
				c := dist[from] + migrate(from, to) + stageTime(stage, to)
				if c < best {
					best = c
					bestPath = prev[from]
					bestPath[stage] = to
				}
			}
			next[to] = best
			nextPrev[to] = bestPath
		}
		dist, prev = next, nextPrev
	}
	best := 0
	for i := 1; i < p; i++ {
		if dist[i] < dist[best] {
			best = i
		}
	}
	return prev[best], dist[best]
}

// firstUpIndex returns the lowest non-excluded device index (0 if all
// devices are down, which callers prevent).
func firstUpIndex(topo Topology) int {
	for i := 0; i < topo.NumDevices(); i++ {
		if !topo.IsDown(i) {
			return i
		}
	}
	return 0
}

// PlaceRStar selects the single device that runs the whole R* group: the
// one minimizing the characterized R* time plus its input/output transfer
// overhead (missing SME vectors in, reconstructed reference out). Ties go
// to the lower index, so an equally fast GPU yields the paper's GPU-centric
// configuration.
func PlaceRStar(pm *PerfModel, topo Topology, rows int) int {
	best, bestCost := firstUpIndex(topo), math.Inf(1)
	for i := 0; i < topo.NumDevices(); i++ {
		if topo.IsDown(i) {
			continue
		}
		c := pm.TRStar(i, rows)
		if topo.IsGPU(i) {
			c += float64(rows) * (pm.T(i, MVh2d) + pm.T(i, RFd2h))
		}
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}
