package sched

import (
	"fmt"

	"feves/internal/device"
)

// MEOffloadBalancer reproduces the state-of-the-art approach the paper's
// §II contrasts FEVES against ([5], [6]): offload only the dominant module
// (motion estimation) to a single GPU, and run everything else — INT, SME
// and the R* group — on the CPU cores. It uses at most one accelerator by
// construction, which is exactly the scalability limitation the paper
// calls out ("these approaches offer a limited scalability since only one
// GPU device can be efficiently employed").
type MEOffloadBalancer struct{}

// Name implements Balancer.
func (MEOffloadBalancer) Name() string { return "me-offload" }

// Distribute implements Balancer: ME rows all on GPU 0; INT and SME rows
// split evenly over the CPU cores; R* on the first core (CPU-centric).
func (MEOffloadBalancer) Distribute(pm *PerfModel, topo Topology, w device.Workload, prevSigmaR []int) (Distribution, error) {
	rows := w.Rows()
	p := topo.NumDevices()
	if topo.NumGPU < 1 {
		return Distribution{}, fmt.Errorf("sched: ME offload needs a GPU")
	}
	if topo.Cores < 1 {
		return Distribution{}, fmt.Errorf("sched: ME offload needs CPU cores")
	}
	d := Distribution{
		M:        make([]int, p),
		L:        make([]int, p),
		S:        make([]int, p),
		RStarDev: topo.NumGPU, // first CPU core
		Sigma:    make([]int, p),
		SigmaR:   make([]int, p),
		DeltaM:   make([]int, p),
		DeltaL:   make([]int, p),
	}
	d.M[0] = rows
	base, rem := rows/topo.Cores, rows%topo.Cores
	for c := 0; c < topo.Cores; c++ {
		share := base
		if c < rem {
			share++
		}
		d.L[topo.NumGPU+c] = share
		d.S[topo.NumGPU+c] = share
	}
	// Data Access Management bookkeeping, same as the LP path: Δ is what
	// SME needs beyond the rows already on-device (zero here — the cores
	// hold everything and the GPU runs no SME), and each non-R* accelerator
	// still owes the SF rows it did not interpolate, deferred entirely to
	// σʳ because this balancer predicts no τ2→τtot slack to prefetch into.
	// Leaving these at zero undercharges the scheme's data traffic and
	// breaks the σ/σʳ carry-over invariant the stale-read check assumes.
	d.DeltaM = MSBounds(d.M, d.S, topo.IsGPU)
	d.DeltaL = LSBounds(d.L, d.S, topo.IsGPU)
	for i := 0; i < p; i++ {
		if topo.IsGPU(i) && i != d.RStarDev {
			d.SigmaR[i] = clamp0i(rows - d.L[i] - d.DeltaL[i])
		}
	}
	return d, d.Validate(rows)
}

func clamp0i(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
