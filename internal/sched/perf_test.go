package sched

import (
	"math"
	"sync"
	"testing"

	"feves/internal/device"
)

// driftModel nudges every characterized speed by a small deterministic
// factor, as frame-to-frame jitter does, so successive Distribute calls
// see a near-identical but not identical model.
func driftModel(pm *PerfModel, w device.Workload, f float64) {
	for i := 0; i < pm.NumDevices(); i++ {
		for _, m := range []Module{ModME, ModINT, ModSME} {
			if v := pm.K(i, m); !math.IsNaN(v) {
				rows := 1
				if m == ModME || m == ModSME {
					pm.ObserveCompute(i, m, rows, w.UsableRF, v*float64(w.UsableRF)*f)
				} else {
					pm.ObserveCompute(i, m, rows, 1, v*f)
				}
			}
		}
	}
}

// TestBalancerStepZeroAllocs asserts the tentpole's steady-state
// contract at the scheduling layer: after the first two frames size every
// retained buffer, one full LP balancing step — warm LP solve, rounding,
// bounds, σ/σʳ split, double-buffered result — allocates nothing.
func TestBalancerStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	w := wl(32, 1)
	pm, topo := modelFor(device.SysNFF(), w)
	b := &LPBalancer{}
	var prev []int
	step := func() {
		d, err := b.Distribute(pm, topo, w, prev)
		if err != nil {
			t.Fatal(err)
		}
		prev = append(prev[:0], d.SigmaR...)
	}
	step() // sizes the scratch (cold LP, buffer growth)
	step() // first warm frame
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state balancer step allocates %v per call, want 0", n)
	}
	if st := b.SolverStats(); st.WarmSolves == 0 {
		t.Fatalf("steady-state loop never warm-solved: %+v", st)
	}
}

// TestBalancerWarmRate pins the warm-start hit rate on a drifting model:
// on a fixed topology every LP after the first must reuse the previous
// basis (the whole point of retaining the solver).
func TestBalancerWarmRate(t *testing.T) {
	w := wl(32, 2)
	pm, topo := modelFor(device.SysHK(), w)
	b := &LPBalancer{}
	var prev []int
	for frame := 0; frame < 50; frame++ {
		driftModel(pm, w, 1+0.02*float64(frame%5-2))
		d, err := b.Distribute(pm, topo, w, prev)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(w.Rows()); err != nil {
			t.Fatal(err)
		}
		prev = append(prev[:0], d.SigmaR...)
	}
	st := b.SolverStats()
	if st.Solves == 0 || float64(st.WarmSolves) < 0.9*float64(st.Solves-1) {
		t.Fatalf("warm rate too low: %+v", st)
	}
}

// TestWarmAgreesWithColdUnderChurn drives a long-lived (warm-starting)
// balancer through pool churn — devices dropping out and recovering via
// the Down mask — and checks every frame against a freshly built balancer
// that can only solve cold: identical predicted τtot (both use Bland
// pricing, so the vertex choice is canonical) and valid distributions.
// Exclusion changes the LP's equation pattern, so those frames also
// exercise the warm→cold decline path.
func TestWarmAgreesWithColdUnderChurn(t *testing.T) {
	w := wl(32, 1)
	pm, topo := modelFor(device.SysNFF(), w)
	warm := &LPBalancer{}
	var prevW, prevC []int
	down := make([]bool, topo.NumDevices())
	for frame := 0; frame < 60; frame++ {
		driftModel(pm, w, 1+0.01*float64(frame%7-3))
		// Churn: GPU 1 is down for frames 20–39.
		down[1] = frame >= 20 && frame < 40
		topo.Down = down

		dw, err := warm.Distribute(pm, topo, w, prevW)
		if err != nil {
			t.Fatal(err)
		}
		cold := &LPBalancer{}
		dc, err := cold.Distribute(pm, topo, w, prevC)
		if err != nil {
			t.Fatal(err)
		}
		if err := dw.Validate(w.Rows()); err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if down[1] && (dw.M[1] != 0 || dw.L[1] != 0 || dw.S[1] != 0) {
			t.Fatalf("frame %d: rows assigned to excluded device: %v %v %v", frame, dw.M, dw.L, dw.S)
		}
		if math.Abs(dw.PredTot-dc.PredTot) > 1e-6*(1+dc.PredTot) {
			t.Fatalf("frame %d: warm PredTot %v vs cold %v", frame, dw.PredTot, dc.PredTot)
		}
		prevW = append(prevW[:0], dw.SigmaR...)
		prevC = append(prevC[:0], dc.SigmaR...)
	}
	if st := warm.SolverStats(); st.WarmSolves == 0 || st.ColdSolves < 3 {
		t.Fatalf("churn test did not exercise both paths: %+v", st)
	}
}

// TestConcurrentBalancersUnderChurn runs several independent balancers
// concurrently on churning topologies — the serving layer's shape, one
// LP session per tenant — so `go test -race` can catch any accidental
// sharing introduced by the retained-scratch rework.
func TestConcurrentBalancersUnderChurn(t *testing.T) {
	w := wl(32, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pm, topo := modelFor(device.SysNFF(), w)
			b := &LPBalancer{}
			down := make([]bool, topo.NumDevices())
			var prev []int
			for frame := 0; frame < 30; frame++ {
				driftModel(pm, w, 1+0.01*float64((frame+g)%5-2))
				down[1] = frame%10 >= 5 && g%2 == 0
				topo.Down = down
				d, err := b.Distribute(pm, topo, w, prev)
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.Validate(w.Rows()); err != nil {
					t.Error(err)
					return
				}
				prev = append(prev[:0], d.SigmaR...)
			}
		}(g)
	}
	wg.Wait()
}

// TestRoundingNegativeAndExclusionPinned pins roundPreservingSum on the
// inputs the satellite audit flagged: tiny negative LP outputs (solver
// epsilons) and zero shares from excluded devices must clamp to zero
// while the vector still sums exactly to rows; clamping-induced
// over-assignment must shave from the largest entry.
func TestRoundingNegativeAndExclusionPinned(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		rows int
		want []int
	}{
		{"epsilon-negatives", []float64{-1e-9, 30.5, 37.5, -1e-12}, 68, []int{0, 31, 37, 0}},
		{"excluded-zero-shares", []float64{34, 0, 34, 0}, 68, []int{34, 0, 34, 0}},
		{"clamp-overassign-shaves-largest", []float64{40, 29, -0.5}, 68, []int{39, 29, 0}},
		{"all-negative-underassign", []float64{-1, -2}, 3, []int{2, 1}},
	}
	for _, c := range cases {
		got := roundPreservingSum(c.in, c.rows)
		sum := 0
		for i, v := range got {
			if v < 0 {
				t.Fatalf("%s: negative output %v", c.name, got)
			}
			sum += v
			if got[i] != c.want[i] {
				t.Fatalf("%s: got %v, want %v", c.name, got, c.want)
			}
		}
		if sum != c.rows {
			t.Fatalf("%s: sums to %d, want %d", c.name, sum, c.rows)
		}
	}
}

func BenchmarkLPBalancerStep(b *testing.B) {
	w := wl(32, 1)
	pm, topo := modelFor(device.SysNFF(), w)
	bal := &LPBalancer{}
	var prev []int
	for i := 0; i < 2; i++ {
		d, err := bal.Distribute(pm, topo, w, prev)
		if err != nil {
			b.Fatal(err)
		}
		prev = append(prev[:0], d.SigmaR...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := bal.Distribute(pm, topo, w, prev)
		if err != nil {
			b.Fatal(err)
		}
		prev = append(prev[:0], d.SigmaR...)
	}
}
