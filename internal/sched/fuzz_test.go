package sched

import (
	"math"
	"testing"
)

// FuzzRoundPreservingSum checks the LP-solution rounding that turns
// fractional row vectors into integer distributions: for any input the
// result is non-negative and sums exactly to the frame's rows, and when
// the input itself sums to rows (the only case the balancer produces) no
// entry moves by more than one row.
func FuzzRoundPreservingSum(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{10, 20, 30}, uint8(68))
	f.Add([]byte{255, 0, 1, 128}, uint8(17))
	f.Add([]byte{7, 7, 7, 7, 7, 7}, uint8(1))
	f.Fuzz(func(t *testing.T, weights []byte, rowsByte uint8) {
		rows := int(rowsByte) % 69 // the paper's 1080p frame has 68 MB rows
		n := len(weights)
		if n == 0 || n > 16 {
			return
		}
		// Raw case: arbitrary non-negative fractional input, any total.
		raw := make([]float64, n)
		var sum float64
		for i, b := range weights {
			raw[i] = float64(b) / 8
			sum += raw[i]
		}
		assertRounded(t, "raw", raw, roundPreservingSum(raw, rows), rows, false)

		// Balancer case: normalize so the input sums to rows; each entry
		// may then move by at most one row.
		if sum == 0 {
			return
		}
		norm := make([]float64, n)
		for i := range raw {
			norm[i] = raw[i] / sum * float64(rows)
		}
		assertRounded(t, "normalized", norm, roundPreservingSum(norm, rows), rows, true)
	})
}

func assertRounded(t *testing.T, label string, in []float64, out []int, rows int, tight bool) {
	t.Helper()
	total := 0
	for i, v := range out {
		if v < 0 {
			t.Fatalf("%s: out[%d] = %d negative (in %v)", label, i, v, in)
		}
		total += v
		if tight && math.Abs(float64(v)-in[i]) > 1+1e-6 {
			t.Fatalf("%s: out[%d] = %d moved %.6g rows from %v", label, i, v,
				math.Abs(float64(v)-in[i]), in[i])
		}
	}
	if total != rows {
		t.Fatalf("%s: rounded vector sums to %d rows, want %d (in %v, out %v)",
			label, total, rows, in, out)
	}
}
