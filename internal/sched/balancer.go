package sched

import (
	"fmt"

	"feves/internal/device"
	"feves/internal/lp"
)

// Topology describes the device mix the balancer schedules for: nGPU
// accelerators (devices 0..nGPU-1) followed by CPU cores, matching the
// paper's p_1..p_nw, p_nw+1..p_nw+nc enumeration.
type Topology struct {
	NumGPU int
	Cores  int

	// Down, when non-nil, marks devices excluded by the health tracker:
	// the balancers force their rows to zero, skip their constraint
	// chains, and never place R* on them. Indexing follows the device
	// enumeration; a nil slice means every device is up.
	Down []bool
}

// NumDevices returns the total device count.
func (t Topology) NumDevices() int { return t.NumGPU + t.Cores }

// IsGPU reports whether device i is an accelerator.
func (t Topology) IsGPU(i int) bool { return i < t.NumGPU }

// IsDown reports whether device i is excluded.
func (t Topology) IsDown(i int) bool { return t.Down != nil && i < len(t.Down) && t.Down[i] }

// NumUp counts devices not excluded.
func (t Topology) NumUp() int {
	up := 0
	for i := 0; i < t.NumDevices(); i++ {
		if !t.IsDown(i) {
			up++
		}
	}
	return up
}

// Balancer produces one frame's distribution from the performance model.
type Balancer interface {
	// Distribute computes the row distribution for a frame with the given
	// workload (row count, search area, usable references). prevSigmaR is
	// the σʳ vector carried over from the previous frame (nil means zero).
	Distribute(pm *PerfModel, topo Topology, w device.Workload, prevSigmaR []int) (Distribution, error)
	// Name identifies the strategy in experiment output.
	Name() string
}

// LPBalancer is the paper's Load Balancing routine (Algorithm 2): a linear
// program over the distribution vectors minimizing τtot, iterated to a
// fixed point with the MS_BOUNDS/LS_BOUNDS data-reuse terms.
type LPBalancer struct {
	// MaxIters bounds the Δ fixed-point iterations (default 4).
	MaxIters int
	// NoReuse disables the MS_BOUNDS/LS_BOUNDS data-reuse optimization of
	// the Data Access Management: every accelerator fetches its complete
	// SME inputs (Δ = s_i) instead of only the rows it is missing. This is
	// the baseline of the A2 data-reuse ablation.
	NoReuse bool
	// Hysteresis, when positive, keeps the previous frame's distribution
	// unless the freshly solved one improves the predicted τtot by more
	// than this relative fraction (e.g. 0.03 = 3%). It damps the
	// oscillation between near-equivalent optima that measurement jitter
	// induces; re-scoring under the *current* model ensures genuine
	// changes (Fig. 7 load events) still switch immediately.
	Hysteresis float64

	// chain selects which reference chain's warm-start and hysteresis
	// state the next Distribute call uses (see SelectChain). Single-chain
	// callers never touch it and always use slot 0.
	chain int
	// Per-chain incumbent state: with frame-parallel encoding the two
	// chains' workloads differ (their usable-RF ramps interleave), so
	// chain 0's frame resembles chain 0's previous frame far more than
	// the immediately preceding solve, which was chain 1's.
	cs [maxChains]chainState

	// Retained scratch. Distribute is called every frame, so everything
	// below — the LP problems and solvers, the rounding/bounds work
	// vectors, and the distribution buffers themselves — persists across
	// calls; the steady state allocates nothing. The output buffers are
	// double-buffered (gen/genIdx) so the Distribution returned by one
	// call stays intact while the next call computes its successor.
	//
	// One solver per Δ fixed-point iteration per chain: the Δ vectors
	// restart from zero every frame and may cycle instead of converging,
	// so the LP of iteration i resembles iteration i of the *previous
	// frame on the same chain* far more than the solve immediately before
	// it. Slot layout is chain*iters + it, so every solver warm-starts
	// from its own counterpart.
	solvers        []lp.Solver
	solverIters    int
	prob           *lp.Problem
	rowBuf         []float64
	deltaM, deltaL []int
	nm, nl         []int
	zeroSR         []int
	rs             roundScratch
	bs             boundsScratch
	gen            [2]distBufs
	genIdx         int
}

// maxChains is the number of reference chains the balancer keeps
// warm-start and hysteresis slots for (Config.Chains is capped at 2).
const maxChains = 2

// chainState is one chain's incumbent: the previous distribution for
// hysteresis re-scoring and the buffers it owns.
type chainState struct {
	prev     *Distribution
	prevRows int
	hprev    Distribution // hysteresis incumbent (owns its slices)
}

// SelectChain directs the next Distribute calls at one chain's warm-start
// and hysteresis slots. The frame-parallel encoder calls it before each
// frame of a pair; single-chain callers never need it (chain 0 is the
// default).
func (b *LPBalancer) SelectChain(chain int) {
	if chain < 0 || chain >= maxChains {
		panic(fmt.Sprintf("sched: chain %d of %d", chain, maxChains))
	}
	b.chain = chain
}

// distBufs is one generation of output buffers for a Distribution.
type distBufs struct {
	m, l, s, sigma, sigmaR, dm, dl []int
}

func (g *distBufs) size(p int) {
	g.m = growInts(g.m, p)
	g.l = growInts(g.l, p)
	g.s = growInts(g.s, p)
	g.sigma = growInts(g.sigma, p)
	g.sigmaR = growInts(g.sigmaR, p)
	g.dm = growInts(g.dm, p)
	g.dl = growInts(g.dl, p)
}

// Name implements Balancer.
func (b *LPBalancer) Name() string {
	if b.NoReuse {
		return "lp-noreuse"
	}
	return "lp"
}

// SolverStats returns the cumulative counters of the balancer's LP
// solvers — total, warm and cold solves, pivots — summed across the
// per-iteration solver slots, for telemetry and the benchmark harness.
func (b *LPBalancer) SolverStats() lp.Stats {
	var s lp.Stats
	for i := range b.solvers {
		st := b.solvers[i].Stats()
		s.Solves += st.Solves
		s.WarmSolves += st.WarmSolves
		s.ColdSolves += st.ColdSolves
		s.WarmRejects += st.WarmRejects
		s.Pivots += st.Pivots
		s.DegeneratePivots += st.DegeneratePivots
		s.BlandPivots += st.BlandPivots
	}
	return s
}

// Distribute implements Balancer. The returned Distribution's slices
// alias buffers owned by the balancer and double-buffered across calls:
// a result stays valid while the *next* frame is being distributed, but
// no longer — callers retaining a distribution must copy its vectors.
func (b *LPBalancer) Distribute(pm *PerfModel, topo Topology, w device.Workload, prevSigmaR []int) (Distribution, error) {
	rows := w.Rows()
	if !pm.Ready() {
		return Distribution{}, fmt.Errorf("sched: performance model not characterized yet")
	}
	p := topo.NumDevices()
	if pm.NumDevices() != p {
		return Distribution{}, fmt.Errorf("sched: model has %d devices, topology %d", pm.NumDevices(), p)
	}
	if prevSigmaR == nil {
		b.zeroSR = growInts(b.zeroSR, p)
		for i := range b.zeroSR {
			b.zeroSR[i] = 0
		}
		prevSigmaR = b.zeroSR
	}
	iters := b.MaxIters
	if iters <= 0 {
		iters = 4
	}
	if b.solverIters != iters {
		b.solvers = make([]lp.Solver, maxChains*iters)
		for i := range b.solvers {
			// The balancer's LPs are riddled with alternative optima
			// (identical devices make whole variable blocks symmetric),
			// and the executed schedule is sensitive to which tied vertex
			// the solver returns. Bland pricing keeps the solver's
			// canonical vertex choice stable across solver versions;
			// per-frame speed comes from warm-starting, not from pricing.
			b.solvers[i].Pricing = lp.PricingBland
		}
		b.solverIters = iters
	}
	rstar := PlaceRStar(pm, topo, rows)

	g := &b.gen[b.genIdx]
	b.genIdx = 1 - b.genIdx
	g.size(p)
	b.deltaM = growInts(b.deltaM, p)
	b.deltaL = growInts(b.deltaL, p)
	b.nm = growInts(b.nm, p)
	b.nl = growInts(b.nl, p)
	deltaM, deltaL := b.deltaM, b.deltaL
	for i := 0; i < p; i++ {
		deltaM[i], deltaL[i] = 0, 0
	}

	var d Distribution
	for it := 0; it < iters; it++ {
		x, err := b.solveLP(b.chain*iters+it, pm, topo, w, rstar, deltaM, deltaL, prevSigmaR)
		if err != nil {
			return Distribution{}, err
		}
		roundPreservingSumInto(g.m, x[0:p], rows, &b.rs)
		roundPreservingSumInto(g.l, x[p:2*p], rows, &b.rs)
		roundPreservingSumInto(g.s, x[2*p:3*p], rows, &b.rs)
		d = Distribution{
			M: g.m, L: g.l, S: g.s,
			RStarDev: rstar,
			PredTau1: x[3*p], PredTau2: x[3*p+1], PredTot: x[3*p+2],
		}
		if b.NoReuse {
			fullFetchInto(b.nm, g.s, topo.IsGPU)
			fullFetchInto(b.nl, g.s, topo.IsGPU)
		} else {
			boundsBetweenInto(b.nm, g.m, g.s, topo.IsGPU, &b.bs)
			boundsBetweenInto(b.nl, g.l, g.s, topo.IsGPU, &b.bs)
		}
		if intsEqual(b.nm, deltaM) && intsEqual(b.nl, deltaL) {
			break
		}
		copy(deltaM, b.nm)
		copy(deltaL, b.nl)
	}
	copy(g.dm, b.nm)
	copy(g.dl, b.nl)
	d.DeltaM, d.DeltaL = g.dm, g.dl

	// Hysteresis: prefer the incumbent distribution when the new solution
	// is not a real improvement under the current measurements. An
	// incumbent that assigns rows to a since-excluded device is dead —
	// keeping it would schedule work onto silicon that is gone.
	cs := &b.cs[b.chain]
	if b.Hysteresis > 0 && cs.prev != nil && cs.prevRows == rows &&
		len(cs.prev.M) == p && cs.prev.RStarDev == rstar && !assignsToDown(cs.prev, topo) {
		_, _, prevTot := PredictTimes(pm, topo, w, *cs.prev, prevSigmaR)
		if prevTot <= d.PredTot*(1+b.Hysteresis) {
			copy(g.m, cs.prev.M)
			copy(g.l, cs.prev.L)
			copy(g.s, cs.prev.S)
			boundsBetweenInto(g.dm, g.m, g.s, topo.IsGPU, &b.bs)
			boundsBetweenInto(g.dl, g.l, g.s, topo.IsGPU, &b.bs)
			t1, t2, tot := PredictTimes(pm, topo, w, d, prevSigmaR)
			d.PredTau1, d.PredTau2, d.PredTot = t1, t2, tot
		}
	}

	// Constraints (14)/(15): size the deferred SF completion transfers to
	// fit the τ2→τtot slack.
	for i := 0; i < p; i++ {
		g.sigma[i], g.sigmaR[i] = 0, 0
	}
	d.Sigma, d.SigmaR = g.sigma, g.sigmaR
	slack := d.PredTot - d.PredTau2
	for i := 0; i < p; i++ {
		if !topo.IsGPU(i) || i == rstar || topo.IsDown(i) {
			continue
		}
		missing := rows - d.L[i] - d.DeltaL[i]
		g.sigma[i], g.sigmaR[i] = SigmaSplit(missing, slack, pm.T(i, SFh2d))
	}
	if err := d.Validate(rows); err != nil {
		return Distribution{}, err
	}
	if b.Hysteresis > 0 {
		cs.hprev.M = append(cs.hprev.M[:0], d.M...)
		cs.hprev.L = append(cs.hprev.L[:0], d.L...)
		cs.hprev.S = append(cs.hprev.S[:0], d.S...)
		cs.hprev.Sigma = append(cs.hprev.Sigma[:0], d.Sigma...)
		cs.hprev.SigmaR = append(cs.hprev.SigmaR[:0], d.SigmaR...)
		cs.hprev.DeltaM = append(cs.hprev.DeltaM[:0], d.DeltaM...)
		cs.hprev.DeltaL = append(cs.hprev.DeltaL[:0], d.DeltaL...)
		cs.hprev.RStarDev = d.RStarDev
		cs.hprev.PredTau1, cs.hprev.PredTau2, cs.hprev.PredTot = d.PredTau1, d.PredTau2, d.PredTot
		cs.prev = &cs.hprev
		cs.prevRows = rows
	}
	return d, nil
}

// solveLP builds and solves one instance of Algorithm 2's linear program
// with the Δ terms held constant. The problem is rebuilt into retained
// storage and handed to the retained solver in `slot` (chain*iters +
// iteration), which warm-starts from the same slot's optimal basis of the
// previous frame on that chain whenever the problem shape is unchanged
// (health exclusions change the constraint senses, forcing — correctly —
// a cold solve). The returned vector aliases solver scratch valid until
// that solver's next solve.
func (b *LPBalancer) solveLP(slot int, pm *PerfModel, topo Topology, w device.Workload, rstar int, deltaM, deltaL, prevSigmaR []int) ([]float64, error) {
	p := topo.NumDevices()
	rows := w.Rows()
	n := float64(rows)
	// Variables: m_0..m_{p-1}, l_..., s_..., τ1, τ2, τtot.
	vm := func(i int) int { return i }
	vl := func(i int) int { return p + i }
	vs := func(i int) int { return 2*p + i }
	t1, t2, tot := 3*p, 3*p+1, 3*p+2
	nv := 3*p + 3

	if b.prob == nil {
		b.prob = lp.New(nv)
	} else {
		b.prob.Reset(nv)
	}
	prob := b.prob
	// Objective: minimize τtot. The tiny weights on τ1 and τ2 break ties
	// among alternative optima toward schedules with early synchronization
	// points, which also overlap better in the measured execution.
	prob.Coef(tot, 1)
	prob.Coef(t1, 1e-3)
	prob.Coef(t2, 1e-3)

	b.rowBuf = growFloats(b.rowBuf, nv)
	row := func() []float64 {
		for i := range b.rowBuf {
			b.rowBuf[i] = 0
		}
		return b.rowBuf
	}

	// (1) ∑m = ∑l = ∑s = N.
	for blk := 0; blk < 3; blk++ {
		a := row()
		for i := 0; i < p; i++ {
			a[blk*p+i] = 1
		}
		prob.Add(a, lp.EQ, n)
	}
	// Ordering of synchronization points.
	a := row()
	a[t1], a[t2] = 1, -1
	prob.Add(a, lp.LE, 0)
	a = row()
	a[t2], a[tot] = 1, -1
	prob.Add(a, lp.LE, 0)

	trs := pm.TRStar(rstar, rows)
	for i := 0; i < p; i++ {
		if topo.IsDown(i) {
			// Excluded device: rows forced to zero, and every one of its
			// constraint chains — including the N·K^rfhd RF-broadcast
			// terms that do not depend on assigned rows — drops out.
			for _, v := range []int{vm(i), vl(i), vs(i)} {
				a = row()
				a[v] = 1
				prob.Add(a, lp.EQ, 0)
			}
			continue
		}
		km, kl, ks := pm.KAt(i, ModME, w.UsableRF), pm.K(i, ModINT), pm.KAt(i, ModSME, w.UsableRF)
		switch {
		case !topo.IsGPU(i):
			// (2) K^l·l + K^m·m ≤ τ1.
			a = row()
			a[vm(i)], a[vl(i)], a[t1] = km, kl, -1
			prob.Add(a, lp.LE, 0)
			// (3) τ1 + K^s·s ≤ τ2.
			a = row()
			a[t1], a[vs(i)], a[t2] = 1, ks, -1
			prob.Add(a, lp.LE, 0)
			if i == rstar {
				// CPU-centric: R* runs on the cores after τ2.
				a = row()
				a[t2], a[tot] = 1, -1
				prob.Add(a, lp.LE, -trs)
			}
		case i == rstar:
			kcf, ksfh, ksfd := pm.T(i, CFh2d), pm.T(i, SFh2d), pm.T(i, SFd2h)
			kmvh, kmvd, krfd := pm.T(i, MVh2d), pm.T(i, MVd2h), pm.T(i, RFd2h)
			dm, dl := float64(deltaM[i]), float64(deltaL[i])
			// Joint compute-engine serialization: the paper's constraints
			// (4) and (5) bound the ME and INT chains separately, but both
			// kernels run serially on the accelerator's single compute
			// engine (Fig. 4's timeline: INT then ME), so their sum also
			// bounds τ1. Without this the LP underestimates τ1 and picks
			// distributions the measured schedule cannot meet.
			a = row()
			a[vl(i)], a[vm(i)], a[t1] = kl, km, -1
			prob.Add(a, lp.LE, 0)
			// (4) m(K^cfhd + K^m + K^mvdh) ≤ τ1.
			a = row()
			a[vm(i)], a[t1] = kcf+km+kmvd, -1
			prob.Add(a, lp.LE, 0)
			// (5) l·K^l + l·K^sfdh + Δm·K^cfhd + m·K^mvdh ≤ τ1.
			a = row()
			a[vl(i)], a[vm(i)], a[t1] = kl+ksfd, kmvd, -1
			prob.Add(a, lp.LE, -dm*kcf)
			// (6) m·K^cfhd + l·K^sfdh + Δm·K^cfhd + m·K^mvdh ≤ τ1.
			a = row()
			a[vm(i)], a[vl(i)], a[t1] = kcf+kmvd, ksfd, -1
			prob.Add(a, lp.LE, -dm*kcf)
			// (7) τ1 + Δl·K^sfhd + Δm·K^mvhd + s·K^s ≤ τ2.
			a = row()
			a[t1], a[vs(i)], a[t2] = 1, ks, -1
			prob.Add(a, lp.LE, -dl*ksfh-dm*kmvh)
			// (8) τ1 + Δl·K^sfhd + (N−m−Δm)·K^cfhd + (N−l−Δl)·K^sfhd + Δm·K^mvhd ≤ τ2.
			a = row()
			a[t1], a[vm(i)], a[vl(i)], a[t2] = 1, -kcf, -ksfh, -1
			prob.Add(a, lp.LE, -dl*ksfh-(n-dm)*kcf-(n-dl)*ksfh-dm*kmvh)
			// (9) τ2 + (N−s)·K^mvhd + T^R* + N·K^rfdh ≤ τtot.
			a = row()
			a[t2], a[vs(i)], a[tot] = 1, -kmvh, -1
			prob.Add(a, lp.LE, -n*kmvh-trs-n*krfd)
		default:
			kcf, krfh, ksfh, ksfd := pm.T(i, CFh2d), pm.T(i, RFh2d), pm.T(i, SFh2d), pm.T(i, SFd2h)
			kmvh, kmvd := pm.T(i, MVh2d), pm.T(i, MVd2h)
			dm, dl := float64(deltaM[i]), float64(deltaL[i])
			sr := float64(prevSigmaR[i])
			// Joint compute-engine serialization (see the R* device case):
			// the RF upload leads in, then INT and ME run back to back.
			a = row()
			a[vl(i)], a[vm(i)], a[t1] = kl, km, -1
			prob.Add(a, lp.LE, -n*krfh)
			// (10) N·K^rfhd + m(K^cfhd + K^m + K^mvdh) ≤ τ1.
			a = row()
			a[vm(i)], a[t1] = kcf+km+kmvd, -1
			prob.Add(a, lp.LE, -n*krfh)
			// (11) N·K^rfhd + l(K^l+K^sfdh) + σʳ⁻¹·K^sfhd + Δm·K^cfhd + m·K^mvdh ≤ τ1.
			a = row()
			a[vl(i)], a[vm(i)], a[t1] = kl+ksfd, kmvd, -1
			prob.Add(a, lp.LE, -n*krfh-sr*ksfh-dm*kcf)
			// (12) N·K^rfhd + m·K^cfhd + l·K^sfdh + σʳ⁻¹·K^sfhd + Δm·K^cfhd + m·K^mvdh ≤ τ1.
			a = row()
			a[vm(i)], a[vl(i)], a[t1] = kcf+kmvd, ksfd, -1
			prob.Add(a, lp.LE, -n*krfh-sr*ksfh-dm*kcf)
			// (13) τ1 + Δl·K^sfhd + Δm·K^mvhd + s·K^s + s·K^mvdh ≤ τ2.
			a = row()
			a[t1], a[vs(i)], a[t2] = 1, ks+kmvd, -1
			prob.Add(a, lp.LE, -dl*ksfh-dm*kmvh)
		}
	}
	x, _, err := b.solvers[slot].Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("sched: load-balancing LP: %w", err)
	}
	return x, nil
}

// fullFetchInto writes Δ = s_i for every accelerator into out: the
// no-data-reuse baseline, where SME inputs are always transferred in
// full.
func fullFetchInto(out, s []int, isGPU func(int) bool) {
	for i, v := range s {
		if isGPU(i) {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// assignsToDown reports whether a distribution gives any rows (or R*) to
// an excluded device.
func assignsToDown(d *Distribution, topo Topology) bool {
	if topo.IsDown(d.RStarDev) {
		return true
	}
	for i := 0; i < topo.NumDevices(); i++ {
		if topo.IsDown(i) && (d.M[i] > 0 || d.L[i] > 0 || d.S[i] > 0) {
			return true
		}
	}
	return false
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EquidistantBalancer is the multi-GPU state of the art the paper compares
// against ([8]): a static even split regardless of device speeds.
type EquidistantBalancer struct{}

// Name implements Balancer.
func (EquidistantBalancer) Name() string { return "equidistant" }

// Distribute implements Balancer.
func (EquidistantBalancer) Distribute(pm *PerfModel, topo Topology, w device.Workload, prevSigmaR []int) (Distribution, error) {
	rows := w.Rows()
	rstar := firstUpIndex(topo)
	if pm != nil && pm.Ready() {
		rstar = PlaceRStar(pm, topo, rows)
	}
	return EquidistantExcluding(topo.NumDevices(), rows, rstar, topo.Down), nil
}

// ProportionalBalancer splits each module's rows proportionally to the
// devices' observed module speeds, without modelling transfers or overlap
// — a natural heuristic the A1 ablation compares the LP against.
type ProportionalBalancer struct{}

// Name implements Balancer.
func (ProportionalBalancer) Name() string { return "proportional" }

// Distribute implements Balancer.
func (ProportionalBalancer) Distribute(pm *PerfModel, topo Topology, w device.Workload, prevSigmaR []int) (Distribution, error) {
	rows := w.Rows()
	if !pm.Ready() {
		return Distribution{}, fmt.Errorf("sched: performance model not characterized yet")
	}
	p := topo.NumDevices()
	split := func(m Module) []int {
		w := make([]float64, p)
		var sum float64
		for i := 0; i < p; i++ {
			if topo.IsDown(i) {
				continue
			}
			w[i] = 1 / pm.K(i, m)
			sum += w[i]
		}
		for i := range w {
			w[i] = w[i] / sum * float64(rows)
		}
		return roundPreservingSum(w, rows)
	}
	d := Distribution{
		M: split(ModME), L: split(ModINT), S: split(ModSME),
		RStarDev: PlaceRStar(pm, topo, rows),
	}
	d.DeltaM = MSBounds(d.M, d.S, topo.IsGPU)
	d.DeltaL = LSBounds(d.L, d.S, topo.IsGPU)
	d.Sigma = make([]int, p)
	d.SigmaR = make([]int, p)
	for i := 0; i < p; i++ {
		if topo.IsGPU(i) && i != d.RStarDev && !topo.IsDown(i) {
			d.SigmaR[i] = rows - d.L[i] - d.DeltaL[i]
			if d.SigmaR[i] < 0 {
				d.SigmaR[i] = 0
			}
		}
	}
	return d, d.Validate(rows)
}
