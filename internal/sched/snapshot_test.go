package sched

import (
	"math"
	"testing"
)

func TestSnapshotDrift(t *testing.T) {
	pm := NewPerfModel(2, 0.5)
	pm.ObserveCompute(0, ModME, 10, 1, 1.0)  // K = 0.1
	pm.ObserveCompute(1, ModINT, 10, 1, 2.0) // K = 0.2
	before := pm.Snapshot()

	// EWMA with alpha 0.5: 0.1 → 0.5*0.2 + 0.5*0.1 = 0.15.
	pm.ObserveCompute(0, ModME, 10, 1, 2.0)
	// First observation of a new module on device 1.
	pm.ObserveCompute(1, ModSME, 10, 1, 3.0)
	after := pm.Snapshot()

	drift := before.Drift(after)
	if len(drift) != 2 {
		t.Fatalf("drift entries = %d (%+v), want 2", len(drift), drift)
	}
	byKey := map[[2]int]KDrift{}
	for _, d := range drift {
		byKey[[2]int{d.Device, int(d.Module)}] = d
	}
	me := byKey[[2]int{0, int(ModME)}]
	if math.Abs(me.Before-0.1) > 1e-12 || math.Abs(me.After-0.15) > 1e-12 {
		t.Errorf("ME drift = %+v, want before 0.1 after 0.15", me)
	}
	if math.Abs(me.Rel-0.5) > 1e-12 {
		t.Errorf("ME rel drift = %v, want 0.5", me.Rel)
	}
	sme := byKey[[2]int{1, int(ModSME)}]
	if sme.Before != 0 || sme.Rel != 0 || math.Abs(sme.After-0.3) > 1e-12 {
		t.Errorf("first-observation drift = %+v, want before 0 rel 0 after 0.3", sme)
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	pm := NewPerfModel(1, 1)
	pm.ObserveCompute(0, ModME, 10, 1, 1.0)
	snap := pm.Snapshot()
	pm.ObserveCompute(0, ModME, 10, 1, 5.0)
	if got := snap.K[ModME][0]; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("snapshot mutated by later observation: %v", got)
	}
}

func TestDriftIgnoresUnchangedAndUnobserved(t *testing.T) {
	pm := NewPerfModel(2, 1)
	pm.ObserveCompute(0, ModME, 10, 1, 1.0)
	s := pm.Snapshot()
	if d := s.Drift(pm.Snapshot()); len(d) != 0 {
		t.Fatalf("identical snapshots drifted: %+v", d)
	}
}
