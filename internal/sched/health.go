package sched

import (
	"fmt"
	"sync"
)

// HealthState is a device's position in the failover state machine.
type HealthState int

const (
	// Healthy devices participate fully in the balancer.
	Healthy HealthState = iota
	// Degraded devices blew a deadline recently; one more miss excludes
	// them, sustained clean frames recover them.
	Degraded
	// Excluded devices are removed from the topology: the LP forces their
	// rows to zero and the performance model quarantines their samples.
	Excluded
)

// String names the state as it appears in telemetry events.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Excluded:
		return "excluded"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// Health tracks per-device health across frames: healthy → degraded on a
// deadline miss, degraded → excluded on a repeat miss, degraded → healthy
// after RecoverAfter consecutive clean frames. Exclusion is sticky — a
// device that went away does not silently come back — and the tracker
// refuses to exclude the last surviving device so the stream can always
// make progress. All methods are safe for concurrent use (the serve layer
// reads health while sessions report misses).
type Health struct {
	// RecoverAfter is the number of consecutive clean frames that return
	// a degraded device to healthy (default 2).
	RecoverAfter int

	mu     sync.Mutex
	states []HealthState
	clean  []int // consecutive clean frames while degraded
}

// NewHealth creates a tracker for n devices, all healthy.
func NewHealth(n int) *Health {
	if n <= 0 {
		panic("sched: Health needs at least one device")
	}
	return &Health{states: make([]HealthState, n), clean: make([]int, n)}
}

// NumDevices returns the tracked device count.
func (h *Health) NumDevices() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.states)
}

// State returns device dev's current state.
func (h *Health) State(dev int) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[dev]
}

// Down returns the exclusion mask in Topology.Down form: true for every
// excluded device. The slice is a fresh copy.
func (h *Health) Down() []bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	down := make([]bool, len(h.states))
	for i, s := range h.states {
		down[i] = s == Excluded
	}
	return down
}

// NumUp counts devices not excluded.
func (h *Health) NumUp() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.numUpLocked()
}

func (h *Health) numUpLocked() int {
	up := 0
	for _, s := range h.states {
		if s != Excluded {
			up++
		}
	}
	return up
}

// Miss records a deadline miss on device dev and returns the transition it
// caused: healthy → degraded on the first strike, degraded → excluded on
// the second. The last surviving device is never excluded — it stays
// degraded so the run can limp on rather than abort.
func (h *Health) Miss(dev int) (from, to HealthState, changed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.states[dev]
	to = from
	switch from {
	case Healthy:
		to = Degraded
	case Degraded:
		if h.numUpLocked() > 1 {
			to = Excluded
		}
	}
	h.states[dev] = to
	h.clean[dev] = 0
	return from, to, to != from
}

// Clean records that device dev met its deadlines this frame. A degraded
// device recovers to healthy after RecoverAfter consecutive clean frames;
// the transition is returned so callers can emit it.
func (h *Health) Clean(dev int) (from, to HealthState, changed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.states[dev]
	to = from
	if from == Degraded {
		h.clean[dev]++
		after := h.RecoverAfter
		if after <= 0 {
			after = 2
		}
		if h.clean[dev] >= after {
			to = Healthy
			h.clean[dev] = 0
		}
	}
	h.states[dev] = to
	return from, to, to != from
}

// Exclude forces device dev out (subject to the last-device guard),
// returning the transition.
func (h *Health) Exclude(dev int) (from, to HealthState, changed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.states[dev]
	to = from
	if from != Excluded && h.numUpLocked() > 1 {
		to = Excluded
	}
	h.states[dev] = to
	h.clean[dev] = 0
	return from, to, to != from
}

// Readmit returns an excluded device to degraded (probation): it will be
// scheduled again but one miss re-excludes it. Used when a transient fault
// window is known to have ended.
func (h *Health) Readmit(dev int) (from, to HealthState, changed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	from = h.states[dev]
	to = from
	if from == Excluded {
		to = Degraded
	}
	h.states[dev] = to
	h.clean[dev] = 0
	return from, to, to != from
}
