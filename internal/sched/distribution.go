package sched

import "fmt"

// Distribution is one frame's workload assignment: the paper's vectors
// m={m_i} (ME), l={l_i} (INT) and s={s_i} (SME) in macroblock rows per
// device, the R* placement, the deferred-SF-transfer vectors σ and σʳ per
// device (non-zero only for accelerators not running R*), and the LP's
// predicted synchronization times.
type Distribution struct {
	M, L, S []int
	// RStarDev is the device running the whole R* group this frame.
	RStarDev int
	// Sigma[i] is the number of SF rows prefetched to device i during the
	// τ2→τtot slack; SigmaR[i] is the remainder deferred to the next
	// frame's τ1 interval (σʳ in the paper).
	Sigma, SigmaR []int
	// DeltaM/DeltaL are the MS_BOUNDS/LS_BOUNDS additional-transfer row
	// counts actually used for this distribution.
	DeltaM, DeltaL []int
	// PredTau1, PredTau2, PredTot are the LP's predicted synchronization
	// times (zero for non-LP balancers).
	PredTau1, PredTau2, PredTot float64
}

// Validate checks the distribution invariants of constraint (1): each
// vector is non-negative and sums to rows.
func (d *Distribution) Validate(rows int) error {
	for _, v := range [][]int{d.M, d.L, d.S} {
		sum := 0
		for _, x := range v {
			if x < 0 {
				return fmt.Errorf("sched: negative row assignment %v", v)
			}
			sum += x
		}
		if sum != rows {
			return fmt.Errorf("sched: distribution sums to %d rows, want %d", sum, rows)
		}
	}
	if d.RStarDev < 0 || d.RStarDev >= len(d.M) {
		return fmt.Errorf("sched: R* device %d out of range", d.RStarDev)
	}
	return nil
}

// Offsets returns the prefix offsets of a row vector: device i processes
// rows [off[i], off[i]+v[i]). Devices are enumerated in platform order, as
// the paper's Data Access Management assumes.
func Offsets(v []int) []int {
	return OffsetsInto(nil, v)
}

// OffsetsInto writes the prefix offsets of v into dst (reusing its backing
// array when large enough) and returns it — the zero-allocation variant
// for per-frame callers.
func OffsetsInto(dst []int, v []int) []int {
	dst = growInts(dst, len(v))
	acc := 0
	for i, x := range v {
		dst[i] = acc
		acc += x
	}
	return dst
}

// growInts returns s resized to n entries, reusing its backing array
// when large enough. Contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Equidistant returns the initialization-phase distribution of Algorithm 1
// line 3: rows split as evenly as possible across all n devices, with R*
// on device rstarDev.
func Equidistant(n, rows, rstarDev int) Distribution {
	return EquidistantExcluding(n, rows, rstarDev, nil)
}

// EquidistantExcluding is Equidistant restricted to the devices not marked
// down: rows split evenly across the surviving devices, zero everywhere
// else. With a nil (or all-false) mask it is exactly Equidistant.
func EquidistantExcluding(n, rows, rstarDev int, down []bool) Distribution {
	if n <= 0 || rows <= 0 {
		panic("sched: Equidistant needs positive devices and rows")
	}
	isDown := func(i int) bool { return down != nil && i < len(down) && down[i] }
	up := 0
	for i := 0; i < n; i++ {
		if !isDown(i) {
			up++
		}
	}
	if up == 0 {
		panic("sched: Equidistant with every device excluded")
	}
	split := func() []int {
		v := make([]int, n)
		base, rem := rows/up, rows%up
		k := 0
		for i := range v {
			if isDown(i) {
				continue
			}
			v[i] = base
			if k < rem {
				v[i]++
			}
			k++
		}
		return v
	}
	d := Distribution{
		M: split(), L: split(), S: split(),
		RStarDev: rstarDev,
		Sigma:    make([]int, n),
		SigmaR:   make([]int, n),
		DeltaM:   make([]int, n),
		DeltaL:   make([]int, n),
	}
	// With identical per-module splits the SME ranges coincide with the
	// ME/INT ranges, so no additional Δ transfers are needed; the SF parts
	// produced elsewhere still have to be completed next frame, which the
	// first iterative frame handles through σʳ: every device is missing
	// all rows it did not interpolate itself.
	for i := range d.SigmaR {
		if isDown(i) {
			continue
		}
		d.SigmaR[i] = rows - d.L[i]
	}
	return d
}

// roundScratch holds the work vectors of roundPreservingSumInto so a
// caller rounding every frame reaches a steady state with no
// allocations.
type roundScratch struct {
	fracIdx []int
	fracs   []float64
}

// roundPreservingSum rounds a fractional row vector to integers that sum
// exactly to rows, assigning the leftover units to the largest fractional
// parts (deterministic ties by lower index).
func roundPreservingSum(x []float64, rows int) []int {
	var sc roundScratch
	out := make([]int, len(x))
	roundPreservingSumInto(out, x, rows, &sc)
	return out
}

// roundPreservingSumInto is roundPreservingSum writing into out
// (len(out) == len(x)) with caller-retained scratch.
func roundPreservingSumInto(out []int, x []float64, rows int, sc *roundScratch) {
	n := len(x)
	sc.fracIdx = growInts(sc.fracIdx, n)
	sc.fracs = growFloats(sc.fracs, n)
	fracIdx := sc.fracIdx
	fracs := sc.fracs
	total := 0
	for i, v := range x {
		if v < 0 {
			v = 0
		}
		f := int(v)
		out[i] = f
		fracs[i] = v - float64(f)
		fracIdx[i] = i
		total += f
	}
	// Sort indexes by descending fractional part (stable by index).
	for a := 1; a < n; a++ {
		for b := a; b > 0; b-- {
			i, j := fracIdx[b-1], fracIdx[b]
			if fracs[j] > fracs[i]+1e-12 {
				fracIdx[b-1], fracIdx[b] = j, i
			} else {
				break
			}
		}
	}
	rem := rows - total
	for k := 0; rem > 0; k = (k + 1) % n {
		out[fracIdx[k]]++
		rem--
	}
	for rem < 0 {
		// Over-assignment can only come from clamping; shave the largest.
		big := 0
		for i := range out {
			if out[i] > out[big] {
				big = i
			}
		}
		if out[big] == 0 {
			break
		}
		out[big]--
		rem++
	}
}

// overlap returns the length of the intersection of [a0, a1) and [b0, b1).
func overlap(a0, a1, b0, b1 int) int {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// MSBounds implements the paper's MS_BOUNDS routine (constraint (16)): for
// each device, the number of additional CF/MV rows that must be fetched
// for SME beyond those already present from ME — the SME row range minus
// its overlap with the device's own ME range. CPU cores (isGPU false) need
// no transfers.
func MSBounds(m, s []int, isGPU func(int) bool) []int {
	return boundsBetween(m, s, isGPU)
}

// LSBounds implements LS_BOUNDS (constraint (17)): additional SF rows
// needed for SME beyond those the device itself interpolated.
func LSBounds(l, s []int, isGPU func(int) bool) []int {
	return boundsBetween(l, s, isGPU)
}

func boundsBetween(have, need []int, isGPU func(int) bool) []int {
	var sc boundsScratch
	out := make([]int, len(have))
	boundsBetweenInto(out, have, need, isGPU, &sc)
	return out
}

// boundsScratch holds the prefix-offset vectors of boundsBetweenInto.
type boundsScratch struct {
	offH, offN []int
}

// boundsBetweenInto is boundsBetween writing into out with
// caller-retained scratch. Non-GPU entries are zeroed.
func boundsBetweenInto(out, have, need []int, isGPU func(int) bool, sc *boundsScratch) {
	if len(have) != len(need) {
		panic("sched: bounds vectors of different lengths")
	}
	sc.offH = OffsetsInto(sc.offH, have)
	sc.offN = OffsetsInto(sc.offN, need)
	offH, offN := sc.offH, sc.offN
	for i := range have {
		if !isGPU(i) {
			out[i] = 0
			continue
		}
		ov := overlap(offN[i], offN[i]+need[i], offH[i], offH[i]+have[i])
		out[i] = need[i] - ov
	}
}

// SigmaSplit implements constraints (14) and (15): given the τ2→τtot slack
// and a device's SF-upload speed, σ is the number of missing SF rows that
// fit in the slack and σʳ is the remainder deferred to the next frame.
func SigmaSplit(missing int, slack, sfh2dPerRow float64) (sigma, sigmaR int) {
	if missing <= 0 {
		return 0, 0
	}
	if sfh2dPerRow <= 0 {
		return missing, 0 // free transfers: everything fits
	}
	fit := int(slack / sfh2dPerRow)
	if fit < 0 {
		fit = 0
	}
	if fit > missing {
		fit = missing
	}
	return fit, missing - fit
}
