package fleet

import (
	"math"
	"sort"

	"feves/internal/lp"
)

// routeUnit is one placeable piece of work — a whole session or one GOP
// shard of a sharded stream. Weight is its predicted serialized row count
// (frame rows × frames), the same yardstick the pool partitioner and the
// per-frame LP balance with. Prefer lists candidate-node indices already
// hosting sibling shards of the unit's stream: affinity-aware rounding
// keeps the unit there when the share it gives up is within the router's
// affinity tolerance, bounding reassembly fan-in.
type routeUnit struct {
	weight float64
	prefer []int
}

// nodeCap is one candidate node's standing at routing time: its calibrated
// aggregate row rate over the devices currently up (pool.Rate) and its
// live load — the summed row·frame weight of every queued and running job
// on the node (serve.Server.Load), refreshed at every placement so a node
// whose admission queue deepened since the last decision is shed.
type nodeCap struct {
	rate float64
	load float64
}

// RouterStats counts the router's decisions and carries the warm-start
// statistics of its retained LP solver — the third-level analogue of the
// pool partitioner's, surfaced in /debug/state.
type RouterStats struct {
	Routes   int `json:"routes"`    // route calls answered
	Units    int `json:"units"`     // units placed in total
	LPRoutes int `json:"lp_routes"` // calls decided by the LP rounding
	Greedy   int `json:"greedy"`    // calls that fell back to greedy LPT
	// AffinityHits counts units the affinity preference moved onto a node
	// their stream already occupied, away from the share-optimal choice.
	AffinityHits int `json:"affinity_hits"`
	// Solver aggregates the retained solver's lifetime warm-start behaviour.
	Solver lp.Stats `json:"solver"`
}

// router places route units onto nodes by solving the third fractional
// min-max LP of the hierarchy (per-frame Algorithm 2 → pool partitioner →
// fleet router):
//
//	minimize  z
//	s.t.      Σ_n x[u,n] = 1                          (each unit placed once)
//	          Σ_u w_u·x[u,n] − z·rate_n ≤ −load_n     (node finish-time cap)
//	          x, z ≥ 0
//
// z is the worst node's predicted finish time (existing load plus newly
// assigned weight, in rows, over the node's calibrated row rate). Units are
// rounded to their largest fractional share, except that a unit whose
// stream already occupies a node (picked earlier in the same call, or
// carried in prefer) stays there when the share it gives up is within the
// affinity tolerance. The solver, problem and constraint rows are retained
// across calls so steady-state routing (same fleet shape, new session)
// warm-starts from the previous basis without reallocating; a failed solve
// or a degenerate rounding falls back to a deterministic LPT greedy. Not
// safe for concurrent use — the fleet serializes calls under its mutex.
type router struct {
	solver *lp.Solver
	prob   *lp.Problem
	// affinity ∈ [0,1] is the rounding tolerance: 0 places every unit on
	// its largest share, 1 collapses a stream onto as few nodes as the LP
	// leaves any share on.
	affinity float64
	stats    RouterStats

	// Retained scratch. row is the constraint row handed to Problem.Add
	// (which copies its argument, so one buffer serves every row of every
	// call); assign and chosen back the rounding. A route result is only
	// valid until the next route call.
	row    []float64
	assign []int
	chosen []bool
}

func newRouter(affinity float64) *router {
	return &router{solver: lp.NewSolver(), affinity: affinity}
}

// route returns, for each unit, the index of the chosen node in nodes.
// len(nodes) must be ≥ 1; nodes with zero rate are never chosen unless
// every node's rate is zero. The returned slice aliases retained scratch.
func (r *router) route(units []routeUnit, nodes []nodeCap) []int {
	r.stats.Routes++
	r.stats.Units += len(units)
	assign := r.routeLP(units, nodes)
	if assign == nil {
		r.stats.Greedy++
		var hits int
		assign, hits = routeGreedy(units, nodes, r.affinity)
		r.stats.AffinityHits += hits
	} else {
		r.stats.LPRoutes++
	}
	r.stats.Solver = r.solver.Stats()
	return assign
}

func (r *router) routeLP(units []routeUnit, nodes []nodeCap) []int {
	nu, nn := len(units), len(nodes)
	if nu == 0 || nn == 0 {
		return nil
	}
	for _, n := range nodes {
		if n.rate <= 0 {
			return nil // a dead-weight node breaks the cap rows; greedy decides
		}
	}
	xv := func(u, n int) int { return u*nn + n }
	zv := nu * nn
	if r.prob == nil {
		r.prob = lp.New(zv + 1)
	} else {
		r.prob.Reset(zv + 1)
	}
	r.prob.Coef(zv, 1) // minimize z
	if cap(r.row) < zv+1 {
		r.row = make([]float64, zv+1)
	}
	row := r.row[:zv+1]
	for u := 0; u < nu; u++ {
		for i := range row {
			row[i] = 0
		}
		for n := 0; n < nn; n++ {
			row[xv(u, n)] = 1
		}
		r.prob.Add(row, lp.EQ, 1)
	}
	for n := 0; n < nn; n++ {
		for i := range row {
			row[i] = 0
		}
		for u := 0; u < nu; u++ {
			row[xv(u, n)] = units[u].weight
		}
		row[zv] = -nodes[n].rate
		r.prob.Add(row, lp.LE, -nodes[n].load)
	}
	x, _, err := r.solver.Solve(r.prob)
	if err != nil {
		return nil
	}
	if cap(r.assign) < nu {
		r.assign = make([]int, nu)
	}
	if cap(r.chosen) < nn {
		r.chosen = make([]bool, nn)
	}
	assign, chosen := r.assign[:nu], r.chosen[:nn]
	for i := range chosen {
		chosen[i] = false
	}
	for u := 0; u < nu; u++ {
		best, bestShare := -1, math.Inf(-1)
		for n := 0; n < nn; n++ {
			if share := x[xv(u, n)]; share > bestShare+1e-12 {
				best, bestShare = n, share
			}
		}
		if best < 0 || bestShare <= 0 {
			return nil
		}
		// Affinity rounding: a unit stays on a node its stream already
		// occupies — picked earlier in this call or carried in prefer —
		// when the LP share it gives up is within the affinity tolerance.
		if r.affinity > 0 && !preferredNode(units[u], chosen, best) {
			alt, altShare := -1, math.Inf(-1)
			for n := 0; n < nn; n++ {
				if !preferredNode(units[u], chosen, n) {
					continue
				}
				if share := x[xv(u, n)]; share > altShare {
					alt, altShare = n, share
				}
			}
			if alt >= 0 && altShare >= bestShare-r.affinity-1e-9 {
				best = alt
				r.stats.AffinityHits++
			}
		}
		assign[u] = best
		chosen[best] = true
	}
	return assign
}

// preferredNode reports whether node n already hosts sibling work of the
// unit's stream: chosen marks nodes picked for earlier units of the same
// call (SubmitStream routes all of one stream's shards together), prefer
// carries nodes hosting the stream's other shards on a later re-lease.
func preferredNode(u routeUnit, chosen []bool, n int) bool {
	if n < len(chosen) && chosen[n] {
		return true
	}
	for _, p := range u.prefer {
		if p == n {
			return true
		}
	}
	return false
}

// routeGreedy is the deterministic fallback: units in descending weight
// order (LPT), each placed on the node whose predicted finish time after
// taking the unit is smallest; rateless nodes are last resort. Ties —
// including the all-rateless fleet, where every finish time is +Inf —
// break by least accumulated load, so a zero-capacity fleet still spreads
// work instead of piling every unit onto node 0. The same affinity
// tolerance as the LP rounding applies, as a finish-time factor.
func routeGreedy(units []routeUnit, nodes []nodeCap, affinity float64) ([]int, int) {
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return units[order[i]].weight > units[order[j]].weight
	})
	load := make([]float64, len(nodes))
	for n := range nodes {
		load[n] = nodes[n].load
	}
	assign := make([]int, len(units))
	chosen := make([]bool, len(nodes))
	hits := 0
	tau := func(n, u int) float64 {
		if nodes[n].rate <= 0 {
			return math.Inf(1)
		}
		return (load[n] + units[u].weight) / nodes[n].rate
	}
	for _, u := range order {
		best, bestTau := -1, math.Inf(1)
		for n := range nodes {
			t := tau(n, u)
			if best < 0 || t < bestTau || (t == bestTau && load[n] < load[best]) {
				best, bestTau = n, t
			}
		}
		if affinity > 0 && !preferredNode(units[u], chosen, best) && !math.IsInf(bestTau, 1) {
			alt, altTau := -1, math.Inf(1)
			for n := range nodes {
				if !preferredNode(units[u], chosen, n) {
					continue
				}
				if t := tau(n, u); t < altTau {
					alt, altTau = n, t
				}
			}
			if alt >= 0 && altTau <= bestTau*(1+affinity) {
				best = alt
				hits++
			}
		}
		assign[u] = best
		chosen[best] = true
		load[best] += units[u].weight
	}
	return assign, hits
}
