package fleet

import (
	"math"
	"sort"

	"feves/internal/lp"
)

// routeUnit is one placeable piece of work — a whole session or one GOP
// shard of a sharded stream. Weight is its predicted serialized row count
// (frame rows × frames), the same yardstick the pool partitioner and the
// per-frame LP balance with.
type routeUnit struct {
	weight float64
}

// nodeCap is one candidate node's standing at routing time: its calibrated
// aggregate row rate over the devices currently up (pool.Rate) and the
// summed weight of work already leased to it and not yet finished.
type nodeCap struct {
	rate float64
	load float64
}

// RouterStats counts the router's decisions and carries the warm-start
// statistics of its retained LP solver — the third-level analogue of the
// pool partitioner's, surfaced in /debug/state.
type RouterStats struct {
	Routes   int `json:"routes"`    // route calls answered
	Units    int `json:"units"`     // units placed in total
	LPRoutes int `json:"lp_routes"` // calls decided by the LP rounding
	Greedy   int `json:"greedy"`    // calls that fell back to greedy LPT
	// Solver aggregates the retained solver's lifetime warm-start behaviour.
	Solver lp.Stats `json:"solver"`
}

// router places route units onto nodes by solving the third fractional
// min-max LP of the hierarchy (per-frame Algorithm 2 → pool partitioner →
// fleet router):
//
//	minimize  z
//	s.t.      Σ_n x[u,n] = 1                          (each unit placed once)
//	          Σ_u w_u·x[u,n] − z·rate_n ≤ −load_n     (node finish-time cap)
//	          x, z ≥ 0
//
// z is the worst node's predicted finish time (existing load plus newly
// assigned weight, in rows, over the node's calibrated row rate). Units are
// rounded to their largest fractional share. The solver is retained across
// calls so steady-state routing (same fleet shape, new session) warm-starts
// from the previous basis; a failed solve or a degenerate rounding falls
// back to a deterministic LPT greedy. Not safe for concurrent use — the
// fleet serializes calls under its mutex.
type router struct {
	solver *lp.Solver
	prob   *lp.Problem
	stats  RouterStats
}

func newRouter() *router {
	return &router{solver: lp.NewSolver()}
}

// route returns, for each unit, the index of the chosen node in nodes.
// len(nodes) must be ≥ 1; nodes with zero rate are never chosen unless
// every node's rate is zero.
func (r *router) route(units []routeUnit, nodes []nodeCap) []int {
	r.stats.Routes++
	r.stats.Units += len(units)
	assign := r.routeLP(units, nodes)
	if assign == nil {
		r.stats.Greedy++
		assign = routeGreedy(units, nodes)
	} else {
		r.stats.LPRoutes++
	}
	r.stats.Solver = r.solver.Stats()
	return assign
}

func (r *router) routeLP(units []routeUnit, nodes []nodeCap) []int {
	nu, nn := len(units), len(nodes)
	if nu == 0 || nn == 0 {
		return nil
	}
	for _, n := range nodes {
		if n.rate <= 0 {
			return nil // a dead-weight node breaks the cap rows; greedy decides
		}
	}
	xv := func(u, n int) int { return u*nn + n }
	zv := nu * nn
	if r.prob == nil {
		r.prob = lp.New(zv + 1)
	} else {
		r.prob.Reset(zv + 1)
	}
	r.prob.Coef(zv, 1) // minimize z
	for u := 0; u < nu; u++ {
		a := make([]float64, zv+1)
		for n := 0; n < nn; n++ {
			a[xv(u, n)] = 1
		}
		r.prob.Add(a, lp.EQ, 1)
	}
	for n := 0; n < nn; n++ {
		a := make([]float64, zv+1)
		for u := 0; u < nu; u++ {
			a[xv(u, n)] = units[u].weight
		}
		a[zv] = -nodes[n].rate
		r.prob.Add(a, lp.LE, -nodes[n].load)
	}
	x, _, err := r.solver.Solve(r.prob)
	if err != nil {
		return nil
	}
	assign := make([]int, nu)
	for u := 0; u < nu; u++ {
		best, bestShare := -1, math.Inf(-1)
		for n := 0; n < nn; n++ {
			if share := x[xv(u, n)]; share > bestShare+1e-12 {
				best, bestShare = n, share
			}
		}
		if best < 0 || bestShare <= 0 {
			return nil
		}
		assign[u] = best
	}
	return assign
}

// routeGreedy is the deterministic fallback: units in descending weight
// order (LPT), each placed on the node whose predicted finish time after
// taking the unit is smallest; rateless nodes are last resort.
func routeGreedy(units []routeUnit, nodes []nodeCap) []int {
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return units[order[i]].weight > units[order[j]].weight
	})
	load := make([]float64, len(nodes))
	for n := range nodes {
		load[n] = nodes[n].load
	}
	assign := make([]int, len(units))
	for _, u := range order {
		best, bestTau := 0, math.Inf(1)
		for n := range nodes {
			tau := math.Inf(1)
			if nodes[n].rate > 0 {
				tau = (load[n] + units[u].weight) / nodes[n].rate
			}
			if tau < bestTau {
				best, bestTau = n, tau
			}
		}
		assign[u] = best
		load[best] += units[u].weight
	}
	return assign
}
