package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"feves/internal/serve"
)

// Handler returns the coordinator's HTTP API — the cluster-wide analogue
// of serve.Handler:
//
//	POST   /jobs                      route a serve.JobSpec to a node, 202 + status
//	GET    /jobs                      list every job on every node
//	GET    /jobs/{node}/{id}          one job's status
//	DELETE /jobs/{node}/{id}          cancel a job
//	GET    /jobs/{node}/{id}/results  stream per-frame results as JSONL
//	GET    /jobs/{node}/{id}/bitstream coded stream of a finished encode job
//	POST   /streams                   submit a StreamSpec (GOP-sharded), 202 + status
//	GET    /streams                   list every stream's status
//	GET    /streams/{id}              one stream's status
//	DELETE /streams/{id}              cancel a stream (all shards)
//	GET    /streams/{id}/bitstream    reassembled stream of a finished encode stream
//	GET    /healthz                   200 while serving, 503 while draining
//	GET    /metrics                   Prometheus text exposition (shared registry)
//	GET    /debug/state               cluster topology: nodes, streams, router LP
//	GET    /debug/flight              shared flight recorder (node-attributed)
//	GET    /debug/trace               shared Perfetto ring (node-qualified lanes)
//	GET    /debug/pprof/...           net/http/pprof profiles
//
// Admission 503s reuse serve.RetryAfterSeconds with the cluster-wide
// backlog, so fleet and single-node clients see consistent hints.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", f.handleSubmitJob)
	mux.HandleFunc("GET /jobs", f.handleListJobs)
	mux.HandleFunc("GET /jobs/{node}/{id}", f.handleJobStatus)
	mux.HandleFunc("DELETE /jobs/{node}/{id}", f.handleJobCancel)
	mux.HandleFunc("GET /jobs/{node}/{id}/results", f.handleJobResults)
	mux.HandleFunc("GET /jobs/{node}/{id}/bitstream", f.handleJobBitstream)
	mux.HandleFunc("POST /streams", f.handleSubmitStream)
	mux.HandleFunc("GET /streams", f.handleListStreams)
	mux.HandleFunc("GET /streams/{id}", f.handleStreamStatus)
	mux.HandleFunc("DELETE /streams/{id}", f.handleStreamCancel)
	mux.HandleFunc("GET /streams/{id}/bitstream", f.handleStreamBitstream)
	mux.HandleFunc("GET /healthz", f.handleHealth)
	if f.tel != nil && f.tel.Metrics != nil {
		mux.Handle("GET /metrics", f.tel.Metrics.Handler())
	}
	mux.HandleFunc("GET /debug/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.State())
	})
	mux.HandleFunc("GET /debug/flight", f.handleDebugFlight)
	mux.HandleFunc("GET /debug/trace", f.handleDebugTrace)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeAdmissionError maps coordinator admission failures onto the same
// semantics as a single node's: 503 + Retry-After for backpressure and
// drain, 400 for malformed specs.
func (f *Fleet) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrBusy), errors.Is(err, serve.ErrDraining), errors.Is(err, ErrNoNodes):
		// Only a draining fleet merits the long drain-horizon hint. Other
		// retryable failures — a full queue, or ErrNoNodes while the fleet
		// is between nodes — get the busy path's shorter backlog estimate.
		w.Header().Set("Retry-After",
			strconv.Itoa(serve.RetryAfterSeconds(f.Backlog(), errors.Is(err, serve.ErrDraining))))
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// fleetJobStatus wraps a node-local job status with its node label.
type fleetJobStatus struct {
	Node string `json:"node"`
	serve.JobStatus
}

func (f *Fleet) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec serve.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	ref, err := f.Submit(spec)
	if err != nil {
		f.writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, fleetJobStatus{Node: ref.Node, JobStatus: ref.Job.Status()})
}

func (f *Fleet) handleListJobs(w http.ResponseWriter, r *http.Request) {
	refs := f.Jobs()
	out := make([]fleetJobStatus, len(refs))
	for i, ref := range refs {
		out[i] = fleetJobStatus{Node: ref.Node, JobStatus: ref.Job.Status()}
	}
	writeJSON(w, http.StatusOK, out)
}

func (f *Fleet) jobRef(w http.ResponseWriter, r *http.Request) (JobRef, bool) {
	node, id := r.PathValue("node"), r.PathValue("id")
	ref, ok := f.Job(node, id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+node+"/"+id)
		return JobRef{}, false
	}
	return ref, true
}

func (f *Fleet) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if ref, ok := f.jobRef(w, r); ok {
		writeJSON(w, http.StatusOK, fleetJobStatus{Node: ref.Node, JobStatus: ref.Job.Status()})
	}
}

func (f *Fleet) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	ref, ok := f.jobRef(w, r)
	if !ok {
		return
	}
	ref.Job.Cancel()
	writeJSON(w, http.StatusOK, fleetJobStatus{Node: ref.Node, JobStatus: ref.Job.Status()})
}

// handleJobResults streams per-frame results as JSONL, mirroring the
// node-local endpoint so clients need not care where the job landed.
func (f *Fleet) handleJobResults(w http.ResponseWriter, r *http.Request) {
	ref, ok := f.jobRef(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for {
		results, done := ref.Job.Next(n)
		for _, fr := range results {
			if enc.Encode(fr) != nil {
				return
			}
		}
		n += len(results)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
	}
}

func (f *Fleet) handleJobBitstream(w http.ResponseWriter, r *http.Request) {
	ref, ok := f.jobRef(w, r)
	if !ok {
		return
	}
	st := ref.Job.Status()
	if st.Mode != serve.ModeEncode {
		writeError(w, http.StatusBadRequest, "job is not an encode job")
		return
	}
	if st.Status != serve.StatusDone {
		writeError(w, http.StatusConflict,
			"bitstream not available: job is "+strings.ToLower(string(st.Status)))
		return
	}
	w.Header().Set("Content-Type", "video/h264")
	w.WriteHeader(http.StatusOK)
	w.Write(ref.Job.Bitstream())
}

func (f *Fleet) handleSubmitStream(w http.ResponseWriter, r *http.Request) {
	var spec StreamSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	st, err := f.SubmitStream(spec)
	if err != nil {
		f.writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st.Status())
}

func (f *Fleet) handleListStreams(w http.ResponseWriter, r *http.Request) {
	streams := f.Streams()
	out := make([]StreamStatus, len(streams))
	for i, st := range streams {
		out[i] = st.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (f *Fleet) stream(w http.ResponseWriter, r *http.Request) (*Stream, bool) {
	id := r.PathValue("id")
	st, ok := f.Stream(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream "+id)
		return nil, false
	}
	return st, true
}

func (f *Fleet) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	if st, ok := f.stream(w, r); ok {
		writeJSON(w, http.StatusOK, st.Status())
	}
}

func (f *Fleet) handleStreamCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := f.stream(w, r)
	if !ok {
		return
	}
	st.Cancel()
	writeJSON(w, http.StatusOK, st.Status())
}

func (f *Fleet) handleStreamBitstream(w http.ResponseWriter, r *http.Request) {
	st, ok := f.stream(w, r)
	if !ok {
		return
	}
	doc := st.Status()
	if doc.Mode != serve.ModeEncode {
		writeError(w, http.StatusBadRequest, "stream is not an encode stream")
		return
	}
	if doc.Status != serve.StatusDone {
		writeError(w, http.StatusConflict,
			"bitstream not available: stream is "+strings.ToLower(string(doc.Status)))
		return
	}
	w.Header().Set("Content-Type", "video/h264")
	w.WriteHeader(http.StatusOK)
	w.Write(st.Bitstream())
}

func (f *Fleet) handleHealth(w http.ResponseWriter, r *http.Request) {
	if f.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(serve.RetryAfterSeconds(f.Backlog(), true)))
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	f.mu.Lock()
	alive := len(f.aliveLocked())
	total := len(f.nodes)
	clock := f.clock
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"nodes":  total,
		"alive":  alive,
		"clock":  clock,
	})
}

func (f *Fleet) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if f.tel == nil || f.tel.Flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = f.tel.Flight.WriteDoc(w)
}

func (f *Fleet) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if f.tel == nil || f.tel.Trace == nil {
		writeError(w, http.StatusNotFound, "trace writer not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = f.tel.Trace.Export(w)
}
