package fleet

import (
	"bytes"
	"fmt"

	"feves/internal/h264/codec"
)

// ShardRange is one contiguous run of whole GOPs of a sharded stream:
// frames [Start, Start+Frames) of the input, with Start a multiple of the
// stream's intra period so the shard opens on an IDR. Because an IDR
// flushes every reference chain and both the encoder's intra cadence and
// the framework's chain parity are keyed to the global frame index
// (serve.JobSpec.FrameBase), a shard encoded in isolation produces exactly
// the bytes the whole-stream encode produces for the same frames — the
// property the fleet's reassembly and node-death replay both rest on.
type ShardRange struct {
	Start  int `json:"start"`
	Frames int `json:"frames"`
}

// shardRanges splits frames into at most maxShards contiguous GOP runs of
// intraPeriod frames each, balancing whole GOPs across shards (earlier
// shards take the remainder). intraPeriod <= 0 or maxShards <= 1 keeps the
// stream whole.
func shardRanges(frames, intraPeriod, maxShards int) []ShardRange {
	if frames <= 0 {
		return nil
	}
	if intraPeriod <= 0 || maxShards <= 1 {
		return []ShardRange{{Start: 0, Frames: frames}}
	}
	gops := (frames + intraPeriod - 1) / intraPeriod
	k := maxShards
	if k > gops {
		k = gops
	}
	per, rem := gops/k, gops%k
	out := make([]ShardRange, 0, k)
	gop := 0
	for i := 0; i < k; i++ {
		n := per
		if i < rem {
			n++
		}
		start := gop * intraPeriod
		end := (gop + n) * intraPeriod
		if end > frames {
			end = frames
		}
		out = append(out, ShardRange{Start: start, Frames: end - start})
		gop += n
	}
	return out
}

// assembleShards concatenates per-shard bitstreams in shard order into the
// stream a single-node encode of the whole input would have produced.
// Every shard encoder wrote its own copy of the sequence header; shard 0
// keeps it and every later shard has it stripped after verifying it is
// byte-identical to shard 0's (a mismatch means the shards were encoded
// under diverging configurations and must not be spliced).
func assembleShards(cfg codec.Config, shards [][]byte) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards to assemble")
	}
	hdr := codec.SequenceHeaderLen(cfg)
	size := 0
	for i, b := range shards {
		if len(b) < hdr {
			return nil, fmt.Errorf("fleet: shard %d bitstream shorter than its sequence header (%d < %d)", i, len(b), hdr)
		}
		if !bytes.Equal(b[:hdr], shards[0][:hdr]) {
			return nil, fmt.Errorf("fleet: shard %d sequence header diverges from shard 0", i)
		}
		size += len(b)
	}
	out := make([]byte, 0, size)
	out = append(out, shards[0]...)
	for _, b := range shards[1:] {
		out = append(out, b[hdr:]...)
	}
	return out, nil
}
