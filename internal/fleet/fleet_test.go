package fleet

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"feves/internal/core"
	"feves/internal/h264"
	"feves/internal/platforms"
	"feves/internal/serve"
	"feves/internal/telemetry"
	"feves/internal/vcm"
)

// testNodes builds n identical nodes over fresh copies of a registry
// platform, each with its own deterministic seed.
func testNodes(t *testing.T, n int, platform string) []NodeConfig {
	t.Helper()
	out := make([]NodeConfig, n)
	for i := range out {
		pl, err := platforms.Lookup(platform)
		if err != nil {
			t.Fatal(err)
		}
		pl.Seed = uint64(1000 + i)
		out[i] = NodeConfig{Label: nodeLabel(i), Platform: pl, QueueDepth: 32}
	}
	return out
}

func nodeLabel(i int) string { return "node" + string(rune('0'+i)) }

// testYUV builds a deterministic I420 sequence.
func testYUV(w, h, frames int) []byte {
	fb := w * h * 3 / 2
	buf := make([]byte, frames*fb)
	for i := range buf {
		buf[i] = byte((i*7 + i/fb*31) % 251)
	}
	return buf
}

// soloEncode is the single-node reference: one framework over one whole
// platform encoding every frame of the stream in order.
func soloEncode(t *testing.T, spec StreamSpec) []byte {
	t.Helper()
	pl, err := platforms.Lookup("sysnfk")
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(core.Options{
		Platform: pl,
		Codec:    codecConfigOf(spec.jobSpec(ShardRange{Start: 0, Frames: spec.frameCount()}, 0)),
		Mode:     vcm.Functional,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb := spec.Width * spec.Height * 3 / 2
	for i := 0; i < spec.frameCount(); i++ {
		cf := h264.NewFrame(spec.Width, spec.Height)
		cf.Poc = i
		if err := cf.LoadYUV(spec.YUV[i*fb : (i+1)*fb]); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.EncodeNext(cf); err != nil {
			t.Fatal(err)
		}
	}
	out := fw.Bitstream()
	if len(out) == 0 {
		t.Fatal("solo reference produced an empty bitstream")
	}
	return out
}

// assertNoDroppedFrames requires the stream's merged results to cover
// every global frame index exactly once.
func assertNoDroppedFrames(t *testing.T, st *Stream, frames int) {
	t.Helper()
	rs := st.Results()
	if len(rs) != frames {
		t.Fatalf("stream results cover %d frames, want %d", len(rs), frames)
	}
	for i, r := range rs {
		if r.Frame != i {
			t.Fatalf("result %d is frame %d: dropped or duplicated frames", i, r.Frame)
		}
	}
}

// TestShardedEncodeBitExactVersusSingleNode is the core acceptance test:
// a stream sharded across three nodes at GOP boundaries reassembles to
// exactly the bytes a single-node whole-stream encode produces.
func TestShardedEncodeBitExactVersusSingleNode(t *testing.T) {
	const w, h, frames, gop = 64, 64, 12, 4
	spec := StreamSpec{
		Name: "clip", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop,
		YUV: testYUV(w, h, frames),
	}
	want := soloEncode(t, spec)

	f, err := New(Config{Nodes: testNodes(t, 3, "sysnfk")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.SubmitStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Wait(); got != serve.StatusDone {
		t.Fatalf("stream finished %q (%s)", got, st.Status().Error)
	}
	doc := st.Status()
	if len(doc.Shards) != 3 {
		t.Fatalf("stream split into %d shards, want 3", len(doc.Shards))
	}
	nodes := map[string]bool{}
	for _, sh := range doc.Shards {
		nodes[sh.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("router placed all shards on one node: %+v", doc.Shards)
	}
	if got := st.Bitstream(); !bytes.Equal(got, want) {
		t.Fatalf("sharded bitstream differs from single-node encode (%d vs %d bytes)",
			len(got), len(want))
	}
	assertNoDroppedFrames(t, st, frames)
}

// TestNodeDeathMidStreamReplaysAndStaysBitExact kills a node holding a
// shard, advances the virtual clock past the heartbeat miss limit, and
// requires: the coordinator declares the node dead, the shard re-leases to
// a survivor and replays from its opening IDR, the stream finishes with
// zero dropped frames, and the reassembled bitstream is still byte-equal
// to the single-node reference.
func TestNodeDeathMidStreamReplaysAndStaysBitExact(t *testing.T) {
	const w, h, frames, gop = 64, 64, 12, 4
	spec := StreamSpec{
		Name: "clip", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop,
		YUV: testYUV(w, h, frames),
	}
	want := soloEncode(t, spec)

	tel := telemetry.New(nil)
	f, err := New(Config{Nodes: testNodes(t, 3, "sysnfk"), Telemetry: tel, MissLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.SubmitStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the node holding the last shard the moment it is placed; the
	// coordinator only notices once MissLimit beats go missing.
	doc := st.Status()
	victim := doc.Shards[len(doc.Shards)-1].Node
	if !f.Kill(victim) {
		t.Fatalf("kill %s failed", victim)
	}
	deadline := time.After(60 * time.Second)
	declared := false
	for {
		for _, label := range f.Tick() {
			if label == victim {
				declared = true
			}
		}
		done := make(chan serve.Status, 1)
		go func() { done <- st.Wait() }()
		select {
		case got := <-done:
			if !declared {
				// The stream may have finished via early collection-failure
				// rerouting; keep ticking until the detector fires too.
				if got != serve.StatusDone {
					t.Fatalf("stream finished %q (%s)", got, st.Status().Error)
				}
				continue
			}
			if got != serve.StatusDone {
				t.Fatalf("stream finished %q after node death (%s)", got, st.Status().Error)
			}
			if b := st.Bitstream(); !bytes.Equal(b, want) {
				t.Fatalf("post-death bitstream differs from single-node encode (%d vs %d bytes)",
					len(b), len(want))
			}
			assertNoDroppedFrames(t, st, frames)
			final := st.Status()
			moved := false
			for _, sh := range final.Shards {
				if sh.Node == victim {
					t.Fatalf("shard %d still attributed to dead node %s", sh.Index, victim)
				}
				if sh.Attempts > 1 {
					moved = true
				}
			}
			if !moved {
				t.Fatalf("no shard was re-leased despite the death of %s: %+v", victim, final.Shards)
			}
			state := f.State()
			deadSeen := false
			for _, ns := range state.Nodes {
				if ns.Label == victim && ns.Dead {
					deadSeen = true
				}
			}
			if !deadSeen {
				t.Fatalf("/debug/state does not mark %s dead: %+v", victim, state.Nodes)
			}
			doc := tel.Flight.Doc()
			kinds := map[string]bool{}
			for _, inc := range doc.Incidents {
				kinds[inc.Kind] = true
			}
			if !kinds["node_down"] {
				t.Errorf("no node_down incident recorded: %v", kinds)
			}
			if !kinds["re_lease"] {
				t.Errorf("no re_lease incident recorded: %v", kinds)
			}
			return
		case <-time.After(time.Millisecond):
		}
		select {
		case <-deadline:
			t.Fatalf("stream did not finish; status %+v", st.Status())
		default:
		}
	}
}

// TestSubmitRoutesJobsAcrossNodes routes a burst of plain jobs and expects
// the LP to spread them over several nodes.
func TestSubmitRoutesJobsAcrossNodes(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 3, "sysnfk")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	used := map[string]bool{}
	refs := make([]JobRef, 0, 6)
	for i := 0; i < 6; i++ {
		ref, err := f.Submit(serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 30})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		used[ref.Node] = true
		refs = append(refs, ref)
	}
	if len(used) < 2 {
		t.Fatalf("6 jobs all routed to one node: %v", used)
	}
	for i, ref := range refs {
		if st := ref.Job.Wait(); st != serve.StatusDone {
			t.Fatalf("job %d finished %q", i, st)
		}
	}
	state := f.State()
	if state.Router.Routes == 0 || state.Router.Solver.Solves == 0 {
		t.Fatalf("router stats empty: %+v", state.Router)
	}
}

// TestRouterSkipsDeadNodeCapacity declares a node dead and expects all
// subsequent placements to avoid it.
func TestRouterSkipsDeadNodeCapacity(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 2, "sysnfk"), MissLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Kill("node0") {
		t.Fatal("kill node0 failed")
	}
	died := f.Tick()
	if len(died) != 1 || died[0] != "node0" {
		t.Fatalf("tick declared %v, want [node0]", died)
	}
	for i := 0; i < 4; i++ {
		ref, err := f.Submit(serve.JobSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 3})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Node != "node1" {
			t.Fatalf("job %d routed to %s, want node1 (node0 is dead)", i, ref.Node)
		}
		if st := ref.Job.Wait(); st != serve.StatusDone {
			t.Fatalf("job %d finished %q", i, st)
		}
	}
}

// TestDeathScheduleFiresOnTicks drives the parsed "die:LABEL@TICK"
// schedule and checks detection latency is exactly MissLimit ticks.
func TestDeathScheduleFiresOnTicks(t *testing.T) {
	f, err := New(Config{
		Nodes:     testNodes(t, 2, "cpun"),
		MissLimit: 3,
		Deaths:    "die:node1@2",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// node1's last beat lands on tick 1 (it vanishes at tick 2); the
	// detector fires once clock-lastBeat reaches MissLimit, at tick 4.
	for tick := 1; tick <= 3; tick++ {
		if died := f.Tick(); len(died) != 0 {
			t.Fatalf("tick %d declared %v prematurely", tick, died)
		}
	}
	died := f.Tick()
	if len(died) != 1 || died[0] != "node1" {
		t.Fatalf("tick 4 declared %v, want [node1]", died)
	}
	state := f.State()
	var dead bool
	for _, ns := range state.Nodes {
		if ns.Label == "node1" {
			dead = ns.Dead
		}
	}
	if !dead {
		t.Fatalf("node1 not declared dead after schedule fired: %+v", state.Nodes)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 2, "cpun")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(serve.JobSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 2}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	if _, err := f.SubmitStream(StreamSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 2}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("stream after drain = %v, want ErrDraining", err)
	}
}

func TestStreamValidation(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 1, "cpun")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bad := []StreamSpec{
		{Mode: "transcode", Width: 64, Height: 64, Frames: 2},
		{Mode: serve.ModeSimulate, Width: 60, Height: 64, Frames: 2},
		{Mode: serve.ModeEncode, Width: 64, Height: 64},
	}
	for i, spec := range bad {
		if _, err := f.SubmitStream(spec); err == nil {
			t.Errorf("spec %d accepted, want validation error", i)
		}
	}
}

func TestParseDeaths(t *testing.T) {
	ds, err := parseDeaths("die:node0@5; die:node2@17")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0] != (death{label: "node0", tick: 5}) || ds[1] != (death{label: "node2", tick: 17}) {
		t.Fatalf("parsed %+v", ds)
	}
	for _, bad := range []string{"node0@5", "die:@5", "die:node0", "die:node0@x"} {
		if _, err := parseDeaths(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if _, err := New(Config{Nodes: testNodes(t, 1, "cpun"), Deaths: "die:ghost@3"}); err == nil {
		t.Error("death schedule naming an unknown node accepted")
	}
}

// TestSimulateStreamAggregates runs a sharded simulate stream and checks
// the merged results carry the global frame numbering.
func TestSimulateStreamAggregates(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 2, "sysnfk")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.SubmitStream(StreamSpec{
		Mode: serve.ModeSimulate, Width: 1920, Height: 1088,
		Frames: 20, IntraPeriod: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Wait(); got != serve.StatusDone {
		t.Fatalf("stream finished %q (%s)", got, st.Status().Error)
	}
	assertNoDroppedFrames(t, st, 20)
	for _, r := range st.Results() {
		if r.Frame%5 == 0 && !r.Intra {
			t.Fatalf("global frame %d should be an IDR under intra period 5", r.Frame)
		}
	}
}
