package fleet

import (
	"fmt"
	"sort"
	"time"

	"feves/internal/h264/codec"
	"feves/internal/serve"
)

// StreamSpec describes one stream the fleet may shard across nodes at GOP
// boundaries. Field semantics match serve.JobSpec; IntraPeriod > 0 is what
// makes a stream shardable (every shard must open on an IDR).
type StreamSpec struct {
	Name string `json:"name,omitempty"`
	// Mode is "encode" (functional, YUV in, reassembled bitstream out) or
	// "simulate" (timing-only; Frames sets the length).
	Mode   string `json:"mode"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Frames int    `json:"frames,omitempty"`

	SearchArea        int     `json:"search_area,omitempty"`
	RefFrames         int     `json:"ref_frames,omitempty"`
	IQP               int     `json:"iqp,omitempty"`
	PQP               int     `json:"pqp,omitempty"`
	IntraPeriod       int     `json:"intra_period,omitempty"`
	SceneCutThreshold float64 `json:"scene_cut_threshold,omitempty"`
	FrameParallel     bool    `json:"frame_parallel,omitempty"`

	// MaxShards caps how many GOP runs the stream splits into; 0 means one
	// shard per alive node at submission. 1 disables sharding.
	MaxShards int `json:"max_shards,omitempty"`

	YUV []byte `json:"yuv,omitempty"`
}

// jobSpec derives the serve job of one shard: the frames [r.Start,
// r.Start+r.Frames) of the stream under the stream's coding parameters,
// numbered globally via FrameBase so the shard encodes byte-identically to
// the same frames of a whole-stream session.
func (sp StreamSpec) jobSpec(r ShardRange, shardIdx int) serve.JobSpec {
	js := serve.JobSpec{
		Name:              fmt.Sprintf("%s/shard%d", sp.Name, shardIdx),
		Mode:              sp.Mode,
		Width:             sp.Width,
		Height:            sp.Height,
		SearchArea:        sp.SearchArea,
		RefFrames:         sp.RefFrames,
		IQP:               sp.IQP,
		PQP:               sp.PQP,
		IntraPeriod:       sp.IntraPeriod,
		SceneCutThreshold: sp.SceneCutThreshold,
		FrameBase:         r.Start,
		FrameParallel:     sp.FrameParallel,
	}
	if sp.Mode == serve.ModeEncode {
		fb := sp.Width * sp.Height * 3 / 2
		js.YUV = sp.YUV[r.Start*fb : (r.Start+r.Frames)*fb]
	} else {
		js.Frames = r.Frames
	}
	return js
}

func (sp StreamSpec) frameCount() int {
	if sp.Mode == serve.ModeEncode {
		if fb := sp.Width * sp.Height * 3 / 2; fb > 0 {
			return len(sp.YUV) / fb
		}
		return 0
	}
	return sp.Frames
}

// shard is one GOP run of a stream and its placement history.
type shard struct {
	idx    int
	rng    ShardRange
	spec   serve.JobSpec
	weight float64

	// Guarded by Fleet.mu.
	node     *node
	job      *serve.Job
	attempts int // placements so far (1 = first lease)
	done     bool
	bits     []byte

	// Speculative second copy, racing the primary after a straggler
	// re-lease. Whichever copy finishes first is collected and attributed
	// as node/job; the loser is cancelled. Nil when no race is on.
	specNode *node
	specJob  *serve.Job
}

// Stream is one submitted (possibly sharded) stream.
type Stream struct {
	f    *Fleet
	id   string
	spec StreamSpec
	cfg  codec.Config // shard 0's codec config, for reassembly

	// Guarded by Fleet.mu until done closes; immutable after.
	shards    []*shard
	status    serve.Status
	errMsg    string
	bitstream []byte
	submitted time.Time
	finished  time.Time

	done chan struct{}
}

// ShardStatus describes one shard's placement for status documents.
type ShardStatus struct {
	Index  int    `json:"index"`
	Start  int    `json:"start"`
	Frames int    `json:"frames"`
	Node   string `json:"node,omitempty"`
	Job    string `json:"job,omitempty"`
	// Attempts counts leases: 1 is the first placement, more means the
	// shard was re-leased after a node death, collection failure or
	// speculative straggler re-lease.
	Attempts int  `json:"attempts"`
	Done     bool `json:"done"`
	// Speculative names the node running an outstanding speculative copy
	// racing the primary placement (empty when no race is on).
	Speculative string `json:"speculative,omitempty"`
}

// StreamStatus is the status document of one stream.
type StreamStatus struct {
	ID     string       `json:"id"`
	Name   string       `json:"name,omitempty"`
	Mode   string       `json:"mode"`
	Status serve.Status `json:"status"`
	Error  string       `json:"error,omitempty"`
	Frames int          `json:"frames"`
	// Completed counts frames of shards fully collected.
	Completed int           `json:"completed"`
	Shards    []ShardStatus `json:"shards"`
	Submitted time.Time     `json:"submitted"`
	Finished  *time.Time    `json:"finished,omitempty"`
}

// SubmitStream validates the stream as one whole-stream job, splits it at
// GOP boundaries into at most MaxShards runs (default: one per alive
// node), routes all shards in one LP solve, and admits each shard on its
// node. Shards carry global frame numbering, so the reassembled bitstream
// is byte-identical to a single-node encode.
func (f *Fleet) SubmitStream(spec StreamSpec) (*Stream, error) {
	whole := spec.jobSpec(ShardRange{Start: 0, Frames: spec.frameCount()}, 0)
	whole.Name = spec.Name
	if err := whole.Validate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.draining || f.closed {
		return nil, serve.ErrDraining
	}
	alive := f.aliveLocked()
	if len(alive) == 0 {
		return nil, ErrNoNodes
	}
	maxShards := spec.MaxShards
	if maxShards <= 0 {
		maxShards = len(alive)
	}
	ranges := shardRanges(spec.frameCount(), spec.IntraPeriod, maxShards)
	f.seq++
	st := &Stream{
		f:         f,
		id:        fmt.Sprintf("stream-%d", f.seq),
		spec:      spec,
		status:    serve.StatusRunning,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	w := workloadOf(whole)
	for i, r := range ranges {
		js := spec.jobSpec(r, i)
		if i == 0 {
			st.cfg = codecConfigOf(js)
		}
		st.shards = append(st.shards, &shard{
			idx: i, rng: r, spec: js, weight: unitWeight(w, r.Frames),
		})
	}
	// One LP solve places every shard; per-shard admission falls back over
	// the other alive nodes if the routed node's queue is full.
	units := make([]routeUnit, len(st.shards))
	for i, sh := range st.shards {
		units[i] = routeUnit{weight: sh.weight}
	}
	caps := f.capsLocked(alive, w)
	// route returns retained scratch; copy it, since a fallback placement
	// below routes again and would clobber the batch assignment.
	assign := append([]int(nil), f.rt.route(units, caps)...)
	for i, sh := range st.shards {
		n := alive[assign[i]]
		job, err := n.srv.Submit(sh.spec)
		if err != nil {
			var fallbackErr error
			n, job, fallbackErr = f.placeLocked(sh.spec, w, sh.weight, nil, streamNodesLocked(st, sh))
			if fallbackErr != nil {
				for _, prev := range st.shards[:i] {
					prev.job.Cancel()
					prev.node.load -= prev.weight
				}
				return nil, fallbackErr
			}
		} else {
			f.shedOnceLocked(alive, caps, sh.weight, n)
			n.load += sh.weight
			n.jobs++
			f.metric("feves_fleet_routes_total", "Placements decided by the fleet router.", "node", n.label).Inc()
		}
		sh.node, sh.job = n, job
		sh.attempts = 1
		f.metric("feves_fleet_shards_total", "GOP shards placed on fleet nodes.").Inc()
	}
	f.streams[st.id] = st
	f.streamOrder = append(f.streamOrder, st.id)
	f.inflight.Add(1)
	f.metric("feves_fleet_streams_total", "Streams accepted by the fleet coordinator.").Inc()
	for _, sh := range st.shards {
		go f.watchShard(st, sh, sh.node, sh.job)
	}
	return st, nil
}

// codecConfigOf mirrors serve.JobSpec.codecConfig for reassembly: the
// sequence-header bytes to strip depend on the normalized coding config.
func codecConfigOf(sp serve.JobSpec) codec.Config {
	sa, rf, iqp, pqp := sp.SearchArea, sp.RefFrames, sp.IQP, sp.PQP
	if sa == 0 {
		sa = 32
	}
	if rf == 0 {
		rf = 1
	}
	if iqp == 0 {
		iqp = 27
	}
	if pqp == 0 {
		pqp = 28
	}
	chains := 1
	if sp.FrameParallel {
		chains = 2
	}
	return codec.Config{
		Width: sp.Width, Height: sp.Height,
		SearchRange: sa / 2, NumRF: rf,
		IQP: iqp, PQP: pqp,
		IntraPeriod:       sp.IntraPeriod,
		SceneCutThreshold: sp.SceneCutThreshold,
		Chains:            chains,
	}
}

// streamNodesLocked lists the alive nodes currently hosting other shards
// of st — the affinity preference a fallback, re-lease or speculative
// placement hands the router so replacements keep the stream's reassembly
// fan-in bounded.
func streamNodesLocked(st *Stream, except *shard) []*node {
	var out []*node
	for _, sh := range st.shards {
		if sh == except || sh.node == nil || sh.node.dead {
			continue
		}
		out = append(out, sh.node)
	}
	return out
}

// watchShard waits for one shard placement to become terminal, collects
// its bitstream if the node is still trusted, and otherwise re-leases the
// shard to a surviving node — the PR-4 failover pattern lifted one level:
// the replay starts from the shard's opening IDR and is byte-idempotent,
// so a death-and-replay stream equals the undisturbed one bit for bit.
// When a speculative copy is racing the primary, one watcher runs per
// copy: the first to collect wins the shard and cancels its sibling; a
// copy that fails while its sibling still runs just promotes the sibling
// to sole placement.
func (f *Fleet) watchShard(st *Stream, sh *shard, n *node, job *serve.Job) {
	status := job.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	n.load -= sh.weight
	if n.load < 0 {
		n.load = 0
	}
	if st.terminalLocked() || sh.done {
		return
	}
	if sh.job != job && sh.specJob != job {
		return // superseded by a later re-lease
	}
	// The sibling copy, when speculation left two placements racing.
	sibling, siblingNode := sh.specJob, sh.specNode
	if job == sh.specJob {
		sibling, siblingNode = sh.job, sh.node
	}
	// Collection models fetching the result off the node: it fails when
	// the machine has vanished (killed) even if the coordinator has not
	// yet declared it dead — exactly like a network fetch would.
	if status == serve.StatusDone && !n.killed && !n.dead {
		if job == sh.specJob {
			f.specWins++
			f.metric("feves_fleet_speculative_wins_total",
				"Speculative shard copies that finished before their primary.").Inc()
		}
		sh.bits = job.Bitstream()
		sh.done = true
		sh.node, sh.job = n, job // attribute the shard to the winning copy
		sh.specNode, sh.specJob = nil, nil
		if sibling != nil && sibling != job {
			sibling.Cancel() // the losing copy stops at its next frame boundary
		}
		for _, other := range st.shards {
			if !other.done {
				return
			}
		}
		f.completeStreamLocked(st)
		return
	}
	if sibling != nil && sibling != job {
		// This copy failed but its sibling is still racing; make the
		// sibling the sole placement instead of opening a third lease.
		sh.node, sh.job = siblingNode, sibling
		sh.specNode, sh.specJob = nil, nil
		return
	}
	sh.specNode, sh.specJob = nil, nil
	why := fmt.Sprintf("shard %d [%d,%d) on %s: job %s %s", sh.idx, sh.rng.Start,
		sh.rng.Start+sh.rng.Frames, n.label, job.ID(), status)
	if n.killed || n.dead {
		why = fmt.Sprintf("shard %d [%d,%d): node %s unreachable (job %s)", sh.idx,
			sh.rng.Start, sh.rng.Start+sh.rng.Frames, n.label, job.ID())
	}
	f.rerouteShardLocked(st, sh, why)
}

// rerouteShardLocked re-leases a shard to a surviving node and replays it
// from its opening IDR, preferring nodes the stream already occupies.
// Bounded by MaxShardRetries; exhaustion or an empty fleet fails the
// stream.
func (f *Fleet) rerouteShardLocked(st *Stream, sh *shard, why string) {
	if sh.attempts > f.cfg.MaxShardRetries {
		f.finishStreamLocked(st, serve.StatusFailed,
			fmt.Sprintf("shard %d exhausted %d re-leases: %s", sh.idx, f.cfg.MaxShardRetries, why))
		return
	}
	w := workloadOf(sh.spec)
	n2, job2, err := f.placeLocked(sh.spec, w, sh.weight, sh.node, streamNodesLocked(st, sh))
	if err != nil {
		f.finishStreamLocked(st, serve.StatusFailed,
			fmt.Sprintf("shard %d re-lease failed: %v (%s)", sh.idx, err, why))
		return
	}
	sh.node, sh.job = n2, job2
	sh.attempts++
	n2.tel.Incident("re_lease", sh.rng.Start, -1,
		fmt.Sprintf("%s %s re-leased to %s as %s, replaying from IDR %d: %s",
			st.id, st.spec.Name, n2.label, job2.ID(), sh.rng.Start, why))
	f.metric("feves_fleet_releases_total", "Shards re-leased to a surviving node.").Inc()
	go f.watchShard(st, sh, n2, job2)
}

// progressLocked is the shard's completion fraction across its copies.
func (sh *shard) progressLocked() float64 {
	if sh.done || sh.rng.Frames == 0 {
		return 1
	}
	best := 0
	if sh.job != nil {
		if c := sh.job.Status().Completed; c > best {
			best = c
		}
	}
	if sh.specJob != nil {
		if c := sh.specJob.Status().Completed; c > best {
			best = c
		}
	}
	return float64(best) / float64(sh.rng.Frames)
}

// speculateLocked is the straggler detector, run once per Tick when
// SpecSlack > 0. The third-level LP balances predicted finish times, so
// on its predicted trajectory every shard of a stream sits at roughly the
// same completion fraction at any instant; a shard trailing the stream's
// front-runner by more than SpecSlack is behind the LP's prediction —
// typically queued behind work on a backlogged but alive node that the
// heartbeat detector will never flag. It is re-leased to a second node
// exactly as node-death failover does, except the primary keeps running:
// whichever copy finishes first is collected and the loser cancelled, and
// byte-idempotent shard replay keeps the reassembled stream bit-exact.
func (f *Fleet) speculateLocked() {
	for _, id := range f.streamOrder {
		st := f.streams[id]
		if st.terminalLocked() || len(st.shards) < 2 {
			continue
		}
		front := 0.0
		for _, sh := range st.shards {
			if p := sh.progressLocked(); p > front {
				front = p
			}
		}
		for _, sh := range st.shards {
			if sh.done || sh.specJob != nil || sh.attempts > f.cfg.MaxShardRetries {
				continue
			}
			lag := front - sh.progressLocked()
			if lag <= f.cfg.SpecSlack {
				continue
			}
			w := workloadOf(sh.spec)
			n2, job2, err := f.placeLocked(sh.spec, w, sh.weight, sh.node, streamNodesLocked(st, sh))
			if err != nil {
				continue // best effort: every node busy now; the next tick retries
			}
			sh.specNode, sh.specJob = n2, job2
			sh.attempts++
			f.specRel++
			n2.tel.Incident("speculative_release", sh.rng.Start, -1,
				fmt.Sprintf("%s shard %d straggling (%.0f%% vs front-runner %.0f%%): speculative copy on %s as %s",
					st.id, sh.idx, 100*sh.progressLocked(), 100*front, n2.label, job2.ID()))
			f.metric("feves_fleet_speculative_releases_total",
				"Straggling shards speculatively re-leased before heartbeat declaration.").Inc()
			go f.watchShard(st, sh, n2, job2)
		}
	}
}

// completeStreamLocked assembles a fully collected stream and finishes it.
func (f *Fleet) completeStreamLocked(st *Stream) {
	if st.spec.Mode != serve.ModeEncode {
		f.finishStreamLocked(st, serve.StatusDone, "")
		return
	}
	bits := make([][]byte, len(st.shards))
	for i, sh := range st.shards {
		bits[i] = sh.bits
	}
	out, err := assembleShards(st.cfg, bits)
	if err != nil {
		f.finishStreamLocked(st, serve.StatusFailed, err.Error())
		return
	}
	st.bitstream = out
	f.finishStreamLocked(st, serve.StatusDone, "")
}

// finishStreamLocked moves a stream to a terminal state exactly once.
func (f *Fleet) finishStreamLocked(st *Stream, status serve.Status, errMsg string) {
	if st.terminalLocked() {
		return
	}
	st.status = status
	st.errMsg = errMsg
	st.finished = time.Now()
	if status != serve.StatusDone {
		for _, sh := range st.shards {
			if sh.job != nil {
				sh.job.Cancel()
			}
			if sh.specJob != nil {
				sh.specJob.Cancel()
			}
		}
	}
	close(st.done)
	f.inflight.Done()
	f.metric("feves_fleet_streams_finished_total", "Streams finished by terminal status.",
		"status", string(status)).Inc()
}

func (st *Stream) terminalLocked() bool { return st.status != serve.StatusRunning }

// ID returns the stream identifier ("stream-1").
func (st *Stream) ID() string { return st.id }

// Wait blocks until the stream is terminal and returns its status.
func (st *Stream) Wait() serve.Status {
	<-st.done
	return st.status
}

// Cancel aborts the stream: every shard job is canceled (running sessions
// stop between frames) and the stream ends canceled.
func (st *Stream) Cancel() {
	f := st.f
	f.mu.Lock()
	f.finishStreamLocked(st, serve.StatusCanceled, "canceled")
	f.mu.Unlock()
}

// Bitstream returns the reassembled coded stream of a finished encode
// stream (nil otherwise).
func (st *Stream) Bitstream() []byte {
	f := st.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if st.status != serve.StatusDone {
		return nil
	}
	return st.bitstream
}

// Results merges the per-frame results of every shard's current placement,
// ordered by global frame number — the whole-stream view a single-node job
// would have produced. Frames replayed on a re-lease appear once, from the
// placement that was finally collected.
func (st *Stream) Results() []serve.FrameResult {
	f := st.f
	f.mu.Lock()
	jobs := make([]*serve.Job, 0, len(st.shards))
	for _, sh := range st.shards {
		if sh.job != nil {
			jobs = append(jobs, sh.job)
		}
	}
	f.mu.Unlock()
	var out []serve.FrameResult
	for _, j := range jobs {
		out = append(out, j.Results()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	return out
}

// Status returns the stream's status document.
func (st *Stream) Status() StreamStatus {
	f := st.f
	f.mu.Lock()
	defer f.mu.Unlock()
	doc := StreamStatus{
		ID: st.id, Name: st.spec.Name, Mode: st.spec.Mode,
		Status: st.status, Error: st.errMsg,
		Frames:    st.spec.frameCount(),
		Submitted: st.submitted,
	}
	for _, sh := range st.shards {
		ss := ShardStatus{
			Index: sh.idx, Start: sh.rng.Start, Frames: sh.rng.Frames,
			Attempts: sh.attempts, Done: sh.done,
		}
		if sh.node != nil {
			ss.Node = sh.node.label
		}
		if sh.job != nil {
			ss.Job = sh.job.ID()
		}
		if sh.specNode != nil {
			ss.Speculative = sh.specNode.label
		}
		if sh.done {
			doc.Completed += sh.rng.Frames
		}
		doc.Shards = append(doc.Shards, ss)
	}
	if !st.finished.IsZero() {
		t := st.finished
		doc.Finished = &t
	}
	return doc
}

// Streams lists every known stream in submission order.
func (f *Fleet) Streams() []*Stream {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Stream, 0, len(f.streamOrder))
	for _, id := range f.streamOrder {
		out = append(out, f.streams[id])
	}
	return out
}

// Stream returns a submitted stream by id.
func (f *Fleet) Stream(id string) (*Stream, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.streams[id]
	return st, ok
}
