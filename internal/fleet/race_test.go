// Multi-node churn under the race detector: streams and jobs arrive while
// the virtual clock runs, nodes die on schedule and by surprise, and a new
// node joins mid-flight. The CI fleet-race job runs this file with -race;
// the assertions are about liveness and bookkeeping, not placement, since
// scheduling is intentionally concurrent.
package fleet

import (
	"sync"
	"testing"
	"time"

	"feves/internal/serve"
	"feves/internal/telemetry"
)

func TestChurnNodesDieAndJoinWhileStreaming(t *testing.T) {
	tel := &telemetry.Telemetry{Metrics: telemetry.NewRegistry(), Flight: telemetry.NewFlightRecorder(0)}
	f, err := New(Config{
		Nodes:     testNodes(t, 3, "sysnfk"),
		Telemetry: tel,
		MissLimit: 2,
		Deaths:    "die:node1@6",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const w, h, frames, gop = 64, 64, 8, 4
	yuv := testYUV(w, h, frames)
	streamSpec := StreamSpec{
		Name: "churn", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop, YUV: yuv,
	}
	want := soloEncode(t, streamSpec)

	// Clock driver: ticks continuously so the scheduled death fires and is
	// detected while work is in flight.
	stop := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				f.Tick()
			}
		}
	}()

	var wg sync.WaitGroup
	streams := make([]*Stream, 6)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := f.SubmitStream(streamSpec)
			if err != nil {
				t.Errorf("stream %d: %v", i, err)
				return
			}
			streams[i] = st
			st.Wait()
		}(i)
	}
	// Plain jobs churn alongside the streams.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref, err := f.Submit(serve.JobSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 5})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			ref.Job.Wait()
		}(i)
	}
	// A node joins while everything above is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		nc := testNodes(t, 4, "sysnfk")[3]
		nc.Label = "node3"
		if err := f.Join(nc); err != nil {
			t.Errorf("join: %v", err)
		}
	}()

	wg.Wait()
	close(stop)
	clockWG.Wait()

	for i, st := range streams {
		if st == nil {
			continue
		}
		if got := st.Wait(); got != serve.StatusDone {
			t.Fatalf("stream %d finished %q (%s)", i, got, st.Status().Error)
		}
		if b := st.Bitstream(); string(b) != string(want) {
			t.Fatalf("stream %d bitstream diverged under churn (%d vs %d bytes)", i, len(b), len(want))
		}
		assertNoDroppedFrames(t, st, frames)
	}
	state := f.State()
	if len(state.Nodes) != 4 {
		t.Fatalf("fleet has %d nodes after join, want 4", len(state.Nodes))
	}
	var node1Dead bool
	for _, ns := range state.Nodes {
		if ns.Label == "node1" {
			node1Dead = ns.Dead
		}
	}
	if !node1Dead {
		t.Fatalf("scheduled death of node1 never declared: %+v", state.Nodes)
	}
}

// TestChurnSheddingSpeculationBitExact churns streams through a fleet
// whose node0 is saturated by direct (never fleet-routed) work, with
// affinity and speculative re-lease armed and the clock ticking: shedding
// steers placements, stragglers race speculative copies, and every stream
// must still finish bit-exact with zero drops. Run under -race in CI.
func TestChurnSheddingSpeculationBitExact(t *testing.T) {
	nodes := testNodes(t, 3, "sysnfk")
	nodes[0].MaxSessions = 1
	f, err := New(Config{
		Nodes:     nodes,
		Telemetry: &telemetry.Telemetry{Metrics: telemetry.NewRegistry(), Flight: telemetry.NewFlightRecorder(0)},
		Affinity:  0.5,
		SpecSlack: 0.6,
		MissLimit: 1 << 20, // no deaths: shedding and speculation only
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Saturate node0's single session slot with wide filler encodes.
	srv0, ok := f.Node("node0")
	if !ok {
		t.Fatal("node0 unknown")
	}
	const fw, fh, ffr = 4096, 64, 7
	filler := serve.JobSpec{
		Name: "filler", Mode: serve.ModeEncode,
		Width: fw, Height: fh, IntraPeriod: 4, YUV: testYUV(fw, fh, ffr),
	}
	if _, err := srv0.Submit(filler); err != nil {
		t.Fatal(err)
	}

	const w, h, frames, gop = 64, 64, 16, 4
	streamSpec := StreamSpec{
		Name: "churn", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop, MaxShards: 2,
		YUV: testYUV(w, h, frames),
	}
	want := soloEncode(t, streamSpec)

	stop := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				if deaths := f.Tick(); len(deaths) != 0 {
					t.Errorf("nodes declared dead in an all-alive churn: %v", deaths)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	streams := make([]*Stream, 6)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := f.SubmitStream(streamSpec)
			if err != nil {
				t.Errorf("stream %d: %v", i, err)
				return
			}
			streams[i] = st
			st.Wait()
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ref, err := f.Submit(serve.JobSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 5})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			ref.Job.Wait()
		}(i)
	}
	wg.Wait()
	close(stop)
	clockWG.Wait()

	for i, st := range streams {
		if st == nil {
			continue
		}
		if got := st.Wait(); got != serve.StatusDone {
			t.Fatalf("stream %d finished %q (%s)", i, got, st.Status().Error)
		}
		if b := st.Bitstream(); string(b) != string(want) {
			t.Fatalf("stream %d bitstream diverged under shedding churn (%d vs %d bytes)", i, len(b), len(want))
		}
		assertNoDroppedFrames(t, st, frames)
	}
	state := f.State()
	if state.Shed == 0 {
		t.Log("no sheds counted this run (filler drained before any placement)")
	}
	t.Logf("shed %d, speculative releases %d (wins %d)", state.Shed, state.SpecReleases, state.SpecWins)
}
