// Queue-aware routing: load shedding around deep admission queues,
// affinity-bounded reassembly fan-in, and speculative straggler re-lease
// ahead of the heartbeat detector. The scenarios here deepen a node's
// queue with work submitted directly to its server — invisible to the
// capacity-only router view, fully visible to the queue-aware one.
package fleet

import (
	"bytes"
	"testing"
	"time"

	"feves/internal/serve"
	"feves/internal/telemetry"
)

// fillerSpec is a wide, short encode job: row weight is height-derived
// (4 macroblock rows), so the router sees a light unit, while encode wall
// time scales with the full macroblock count — hundreds of times a 64×64
// shard's. Submitted directly to one node's server it makes that node a
// straggler host without tripping any capacity signal.
func fillerSpec(frames int) serve.JobSpec {
	const w, h = 4096, 64
	return serve.JobSpec{
		Name: "filler", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: 4,
		YUV: testYUV(w, h, frames),
	}
}

// TestDeepQueueNodeShedsNewWork deepens node0's admission queue with work
// the coordinator never routed (direct server submissions), then submits
// fleet jobs: the queue-aware router must send every one to the shallow
// peer and count the sheds, while node0 keeps heartbeating — never
// declared dead, because it is not.
func TestDeepQueueNodeShedsNewWork(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 2, "sysnfk"), Telemetry: telemetry.New(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv0, ok := f.Node("node0")
	if !ok {
		t.Fatal("node0 unknown")
	}
	deep := serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5000}
	for i := 0; i < 3; i++ {
		if _, err := srv0.Submit(deep); err != nil {
			t.Fatalf("deepening node0: %v", err)
		}
	}
	probe := serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5}
	for i := 0; i < 4; i++ {
		ref, err := f.Submit(probe)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if ref.Node != "node1" {
			t.Fatalf("probe %d routed to %s despite node0's deep queue", i, ref.Node)
		}
	}
	if deaths := f.Tick(); len(deaths) != 0 {
		t.Fatalf("deep-queued node declared dead: %v", deaths)
	}
	state := f.State()
	if state.Shed < 4 {
		t.Fatalf("shed counter %d, want >= 4 (one per probe routed around node0)", state.Shed)
	}
	for _, ns := range state.Nodes {
		if ns.Dead {
			t.Fatalf("node %s dead in a death-free scenario", ns.Label)
		}
		if ns.Label == "node0" && ns.QueueLoad <= 0 {
			t.Fatalf("node0 queue load %v not surfaced in /debug/state", ns.QueueLoad)
		}
	}
	for _, ref := range f.Jobs() {
		ref.Job.Cancel()
	}
}

// TestCapacityOnlyIgnoresQueueDepth pins the contrast: with the PR 8
// capacity-only view restored, the same deep queue is invisible and at
// least one probe lands on the backlogged node. This is the behaviour the
// queue-aware router exists to fix.
func TestCapacityOnlyIgnoresQueueDepth(t *testing.T) {
	f, err := New(Config{Nodes: testNodes(t, 2, "sysnfk"), CapacityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv0, ok := f.Node("node0")
	if !ok {
		t.Fatal("node0 unknown")
	}
	deep := serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5000}
	for i := 0; i < 3; i++ {
		if _, err := srv0.Submit(deep); err != nil {
			t.Fatalf("deepening node0: %v", err)
		}
	}
	probe := serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 5}
	onNode0 := 0
	for i := 0; i < 4; i++ {
		ref, err := f.Submit(probe)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if ref.Node == "node0" {
			onNode0++
		}
	}
	if onNode0 == 0 {
		t.Fatal("capacity-only router avoided the deep queue it cannot see")
	}
	if state := f.State(); state.Shed != 0 {
		t.Fatalf("capacity-only run counted %d sheds", state.Shed)
	}
	for _, ref := range f.Jobs() {
		ref.Job.Cancel()
	}
}

// TestStragglerSpeculativelyReleasedBitExact is the acceptance scenario:
// node0 (one session slot) is busy with a wide filler encode when a
// two-shard stream arrives. The queue-aware LP still assigns node0 one
// shard — its routed weight is light — but that shard sits queued, making
// zero progress while its sibling finishes on node1. The straggler
// detector must re-lease it speculatively well before any heartbeat
// declaration (the node is alive and beating throughout), and the
// reassembled bitstream must equal the single-node encode with zero
// dropped frames.
func TestStragglerSpeculativelyReleasedBitExact(t *testing.T) {
	const w, h, frames, gop = 64, 64, 16, 4
	spec := StreamSpec{
		Name: "clip", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop,
		MaxShards: 2,
		YUV:       testYUV(w, h, frames),
	}
	want := soloEncode(t, spec)

	nodes := testNodes(t, 2, "sysnfk")
	nodes[0].MaxSessions = 1
	tel := telemetry.New(nil)
	f, err := New(Config{
		Nodes: nodes, Telemetry: tel,
		SpecSlack: 0.5,
		MissLimit: 1 << 20, // heartbeat detection effectively disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	srv0, ok := f.Node("node0")
	if !ok {
		t.Fatal("node0 unknown")
	}
	// Occupy node0's only slot: light routed weight (7×4 row·frames), long
	// wall time (7 frames of 256 macroblock columns).
	if _, err := srv0.Submit(fillerSpec(7)); err != nil {
		t.Fatal(err)
	}

	st, err := f.SubmitStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	queuedOn0 := false
	for _, sh := range st.Status().Shards {
		if sh.Node == "node0" {
			queuedOn0 = true
		}
	}
	if !queuedOn0 {
		t.Skip("LP kept the whole stream off node0; straggler scenario not constructed")
	}

	waitDone := make(chan serve.Status, 1)
	go func() { waitDone <- st.Wait() }()
	deadline := time.After(60 * time.Second)
	var got serve.Status
loop:
	for {
		select {
		case got = <-waitDone:
			break loop
		case <-time.After(time.Millisecond):
			if deaths := f.Tick(); len(deaths) != 0 {
				t.Fatalf("nodes declared dead in an all-alive scenario: %v", deaths)
			}
		case <-deadline:
			t.Fatalf("stream did not finish; status %+v", st.Status())
		}
	}
	if got != serve.StatusDone {
		t.Fatalf("stream finished %q (%s)", got, st.Status().Error)
	}
	if b := st.Bitstream(); !bytes.Equal(b, want) {
		t.Fatalf("speculated stream diverges from single-node encode (%d vs %d bytes)", len(b), len(want))
	}
	assertNoDroppedFrames(t, st, frames)

	state := f.State()
	if state.SpecReleases < 1 {
		t.Fatalf("no speculative release recorded: %+v", state)
	}
	for _, ns := range state.Nodes {
		if ns.Dead {
			t.Fatalf("node %s declared dead; speculation must fire without any death", ns.Label)
		}
	}
	for _, sh := range st.Status().Shards {
		if sh.Node == "node0" {
			t.Fatalf("straggler shard still attributed to the backlogged node: %+v", sh)
		}
	}
	kinds := map[string]bool{}
	for _, inc := range tel.Flight.Doc().Incidents {
		kinds[inc.Kind] = true
	}
	if !kinds["speculative_release"] {
		t.Errorf("no speculative_release incident recorded: %v", kinds)
	}
	if kinds["node_down"] {
		t.Errorf("node_down incident recorded in an all-alive scenario")
	}
}

// TestAffinityBoundsFanIn submits a four-shard stream to a four-node
// fleet: with affinity 1 every shard must land on one node (minimal
// reassembly fan-in); with affinity 0 the min-max LP spreads them.
func TestAffinityBoundsFanIn(t *testing.T) {
	spec := StreamSpec{
		Name: "fan", Mode: serve.ModeSimulate,
		Width: 1920, Height: 1088, Frames: 32,
		IntraPeriod: 8, MaxShards: 4,
	}
	distinct := func(st *Stream) int {
		set := map[string]bool{}
		for _, sh := range st.Status().Shards {
			set[sh.Node] = true
		}
		return len(set)
	}
	for _, tc := range []struct {
		affinity float64
		want     func(n int) bool
		desc     string
	}{
		{0, func(n int) bool { return n >= 2 }, "spread over >= 2 nodes"},
		{1, func(n int) bool { return n == 1 }, "collapse onto 1 node"},
	} {
		f, err := New(Config{Nodes: testNodes(t, 4, "sysnfk"), Affinity: tc.affinity})
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.SubmitStream(spec)
		if err != nil {
			t.Fatalf("affinity %v: %v", tc.affinity, err)
		}
		if n := distinct(st); !tc.want(n) {
			t.Fatalf("affinity %v placed 4 shards on %d nodes, want %s: %+v",
				tc.affinity, n, tc.desc, st.Status().Shards)
		}
		if tc.affinity == 1 {
			if hits := f.State().Router.AffinityHits; hits < 3 {
				t.Fatalf("affinity 1: %d affinity hits, want >= 3", hits)
			}
		}
		if got := st.Wait(); got != serve.StatusDone {
			t.Fatalf("affinity %v: stream finished %q (%s)", tc.affinity, got, st.Status().Error)
		}
		f.Close()
	}
}

// TestAffinityBoundsFanInUnderChurn kills the node holding an entire
// affine stream: the re-leases must collapse onto a single survivor (the
// first re-lease picks it, the rest follow their prefer list), and the
// replayed stream must stay bit-exact with zero drops.
func TestAffinityBoundsFanInUnderChurn(t *testing.T) {
	const w, h, frames, gop = 64, 64, 24, 4
	spec := StreamSpec{
		Name: "churn-fan", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop,
		MaxShards: 3,
		YUV:       testYUV(w, h, frames),
	}
	want := soloEncode(t, spec)

	f, err := New(Config{Nodes: testNodes(t, 3, "sysnfk"), Affinity: 1, MissLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.SubmitStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := st.Status().Shards
	victim := first[0].Node
	for _, sh := range first {
		if sh.Node != victim {
			t.Fatalf("affinity 1 spread the stream before the kill: %+v", first)
		}
	}
	if !f.Kill(victim) {
		t.Fatalf("kill %s failed", victim)
	}
	waitDone := make(chan serve.Status, 1)
	go func() { waitDone <- st.Wait() }()
	deadline := time.After(60 * time.Second)
	var got serve.Status
loop:
	for {
		select {
		case got = <-waitDone:
			break loop
		case <-time.After(time.Millisecond):
			f.Tick()
		case <-deadline:
			t.Fatalf("stream did not finish; status %+v", st.Status())
		}
	}
	if got != serve.StatusDone {
		t.Fatalf("stream finished %q (%s)", got, st.Status().Error)
	}
	if b := st.Bitstream(); !bytes.Equal(b, want) {
		t.Fatalf("post-churn bitstream diverges (%d vs %d bytes)", len(b), len(want))
	}
	assertNoDroppedFrames(t, st, frames)
	set := map[string]bool{}
	for _, sh := range st.Status().Shards {
		if sh.Node == victim {
			t.Fatalf("shard %d still on the killed node %s", sh.Index, victim)
		}
		set[sh.Node] = true
	}
	if len(set) != 1 {
		t.Fatalf("re-leases spread the affine stream over %d survivors: %+v", len(set), st.Status().Shards)
	}
}
