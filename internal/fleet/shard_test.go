package fleet

import (
	"bytes"
	"testing"

	"feves/internal/h264/codec"
)

func TestShardRangesCoverAndAlign(t *testing.T) {
	cases := []struct {
		frames, gop, max int
		want             []ShardRange
	}{
		{12, 4, 3, []ShardRange{{0, 4}, {4, 4}, {8, 4}}},
		{12, 4, 2, []ShardRange{{0, 8}, {8, 4}}},
		{10, 4, 3, []ShardRange{{0, 4}, {4, 4}, {8, 2}}}, // ragged tail stays in the last shard
		{12, 4, 8, []ShardRange{{0, 4}, {4, 4}, {8, 4}}}, // capped at the GOP count
		{12, 0, 3, []ShardRange{{0, 12}}},                // IPPP cannot shard
		{12, 4, 1, []ShardRange{{0, 12}}},
		{3, 4, 4, []ShardRange{{0, 3}}}, // shorter than one GOP
	}
	for _, c := range cases {
		got := shardRanges(c.frames, c.gop, c.max)
		if len(got) != len(c.want) {
			t.Errorf("shardRanges(%d,%d,%d) = %v, want %v", c.frames, c.gop, c.max, got, c.want)
			continue
		}
		covered := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("shardRanges(%d,%d,%d)[%d] = %v, want %v", c.frames, c.gop, c.max, i, got[i], c.want[i])
			}
			if c.gop > 0 && got[i].Start%c.gop != 0 {
				t.Errorf("shard %d starts at %d, not on a GOP boundary", i, got[i].Start)
			}
			if got[i].Start != covered {
				t.Errorf("shard %d starts at %d, gap after %d", i, got[i].Start, covered)
			}
			covered += got[i].Frames
		}
		if covered != c.frames {
			t.Errorf("shards cover %d frames, want %d", covered, c.frames)
		}
	}
	if got := shardRanges(0, 4, 3); got != nil {
		t.Errorf("empty stream sharded to %v", got)
	}
}

func TestAssembleShardsStripsHeadersOnce(t *testing.T) {
	cfg := codec.Config{Width: 64, Height: 64, SearchRange: 16, NumRF: 1, IQP: 27, PQP: 28, IntraPeriod: 4}
	hdr := codec.SequenceHeaderLen(cfg)
	if hdr <= 0 {
		t.Fatalf("sequence header length %d", hdr)
	}
	prefix := bytes.Repeat([]byte{0xAB}, hdr)
	s0 := append(append([]byte{}, prefix...), 1, 2, 3)
	s1 := append(append([]byte{}, prefix...), 4, 5)
	out, err := assembleShards(cfg, [][]byte{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, s0...), 4, 5)
	if !bytes.Equal(out, want) {
		t.Fatalf("assembled %v, want %v", out, want)
	}

	// A diverging header must be rejected, not spliced.
	bad := append([]byte{}, s1...)
	bad[0] ^= 0xFF
	if _, err := assembleShards(cfg, [][]byte{s0, bad}); err == nil {
		t.Fatal("diverging sequence header accepted")
	}
	short := prefix[:hdr-1]
	if _, err := assembleShards(cfg, [][]byte{s0, short}); err == nil {
		t.Fatal("truncated shard accepted")
	}
	if _, err := assembleShards(cfg, nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
}
