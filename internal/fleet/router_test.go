package fleet

import (
	"math"
	"testing"
)

// loadsAfter applies an assignment and returns predicted finish times.
func loadsAfter(units []routeUnit, nodes []nodeCap, assign []int) []float64 {
	load := make([]float64, len(nodes))
	for n := range nodes {
		load[n] = nodes[n].load
	}
	for u, n := range assign {
		load[n] += units[u].weight
	}
	out := make([]float64, len(nodes))
	for n := range nodes {
		out[n] = load[n] / nodes[n].rate
	}
	return out
}

func TestRouteBalancesEqualNodes(t *testing.T) {
	r := newRouter()
	units := []routeUnit{{100}, {100}, {100}, {100}}
	nodes := []nodeCap{{rate: 10}, {rate: 10}}
	assign := r.route(units, nodes)
	counts := map[int]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("assignment %v not balanced across equal nodes", assign)
	}
}

func TestRouteWeighsHeterogeneousCapacity(t *testing.T) {
	r := newRouter()
	// One node three times faster: with 4 equal units it should take ~3.
	units := []routeUnit{{100}, {100}, {100}, {100}}
	nodes := []nodeCap{{rate: 30}, {rate: 10}}
	assign := r.route(units, nodes)
	fast := 0
	for _, n := range assign {
		if n == 0 {
			fast++
		}
	}
	if fast < 3 {
		t.Fatalf("fast node got %d of 4 units (%v), want >= 3", fast, assign)
	}
	// The 3:1 split is exactly the min-max optimum: 300/30 = 100/10 = 10.
	fin := loadsAfter(units, nodes, assign)
	if worst := math.Max(fin[0], fin[1]); worst > 10+1e-9 {
		t.Fatalf("worst finish %v exceeds the 3:1 optimum 10 (%v)", worst, fin)
	}
}

func TestRouteRespectsExistingLoad(t *testing.T) {
	r := newRouter()
	units := []routeUnit{{100}}
	nodes := []nodeCap{{rate: 10, load: 500}, {rate: 10, load: 0}}
	assign := r.route(units, nodes)
	if assign[0] != 1 {
		t.Fatalf("unit placed on the loaded node: %v", assign)
	}
}

func TestRouteWarmStartsOnRepeatedShape(t *testing.T) {
	r := newRouter()
	units := []routeUnit{{100}, {90}}
	nodes := []nodeCap{{rate: 10}, {rate: 12}}
	for i := 0; i < 6; i++ {
		nodes[0].load = float64(10 * i) // drifting loads, constant shape
		r.route(units, nodes)
	}
	st := r.stats
	if st.Routes != 6 || st.LPRoutes != 6 {
		t.Fatalf("stats %+v: every call should be LP-decided", st)
	}
	if st.Solver.WarmSolves == 0 {
		t.Fatalf("no warm-started solves across a constant-shape sequence: %+v", st.Solver)
	}
}

func TestRouteGreedyFallbackOnRatelessNode(t *testing.T) {
	r := newRouter()
	units := []routeUnit{{100}, {100}}
	nodes := []nodeCap{{rate: 0}, {rate: 10}}
	assign := r.route(units, nodes)
	for u, n := range assign {
		if n != 1 {
			t.Fatalf("unit %d placed on the rateless node: %v", u, assign)
		}
	}
	if r.stats.Greedy != 1 {
		t.Fatalf("stats %+v: rateless node should force the greedy path", r.stats)
	}
}

func TestRouteGreedyLPTIsDeterministic(t *testing.T) {
	units := []routeUnit{{50}, {80}, {20}, {80}}
	nodes := []nodeCap{{rate: 10}, {rate: 10}}
	a := routeGreedy(units, nodes)
	b := routeGreedy(units, nodes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy routing not deterministic: %v vs %v", a, b)
		}
	}
	fin := loadsAfter(units, nodes, a)
	if math.Abs(fin[0]-fin[1]) > 4.0+1e-9 { // LPT is within the largest unit's slack
		t.Fatalf("greedy finish times too skewed: %v for %v", fin, a)
	}
}
