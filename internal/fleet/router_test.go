package fleet

import (
	"math"
	"testing"
)

// loadsAfter applies an assignment and returns predicted finish times.
func loadsAfter(units []routeUnit, nodes []nodeCap, assign []int) []float64 {
	load := make([]float64, len(nodes))
	for n := range nodes {
		load[n] = nodes[n].load
	}
	for u, n := range assign {
		load[n] += units[u].weight
	}
	out := make([]float64, len(nodes))
	for n := range nodes {
		out[n] = load[n] / nodes[n].rate
	}
	return out
}

func TestRouteBalancesEqualNodes(t *testing.T) {
	r := newRouter(0)
	units := []routeUnit{{weight: 100}, {weight: 100}, {weight: 100}, {weight: 100}}
	nodes := []nodeCap{{rate: 10}, {rate: 10}}
	assign := r.route(units, nodes)
	counts := map[int]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("assignment %v not balanced across equal nodes", assign)
	}
}

func TestRouteWeighsHeterogeneousCapacity(t *testing.T) {
	r := newRouter(0)
	// One node three times faster: with 4 equal units it should take ~3.
	units := []routeUnit{{weight: 100}, {weight: 100}, {weight: 100}, {weight: 100}}
	nodes := []nodeCap{{rate: 30}, {rate: 10}}
	assign := r.route(units, nodes)
	fast := 0
	for _, n := range assign {
		if n == 0 {
			fast++
		}
	}
	if fast < 3 {
		t.Fatalf("fast node got %d of 4 units (%v), want >= 3", fast, assign)
	}
	// The 3:1 split is exactly the min-max optimum: 300/30 = 100/10 = 10.
	fin := loadsAfter(units, nodes, assign)
	if worst := math.Max(fin[0], fin[1]); worst > 10+1e-9 {
		t.Fatalf("worst finish %v exceeds the 3:1 optimum 10 (%v)", worst, fin)
	}
}

func TestRouteRespectsExistingLoad(t *testing.T) {
	r := newRouter(0)
	units := []routeUnit{{weight: 100}}
	nodes := []nodeCap{{rate: 10, load: 500}, {rate: 10, load: 0}}
	assign := r.route(units, nodes)
	if assign[0] != 1 {
		t.Fatalf("unit placed on the loaded node: %v", assign)
	}
}

func TestRouteWarmStartsOnRepeatedShape(t *testing.T) {
	r := newRouter(0)
	units := []routeUnit{{weight: 100}, {weight: 90}}
	nodes := []nodeCap{{rate: 10}, {rate: 12}}
	for i := 0; i < 6; i++ {
		nodes[0].load = float64(10 * i) // drifting loads, constant shape
		r.route(units, nodes)
	}
	st := r.stats
	if st.Routes != 6 || st.LPRoutes != 6 {
		t.Fatalf("stats %+v: every call should be LP-decided", st)
	}
	if st.Solver.WarmSolves == 0 {
		t.Fatalf("no warm-started solves across a constant-shape sequence: %+v", st.Solver)
	}
}

func TestRouteGreedyFallbackOnRatelessNode(t *testing.T) {
	r := newRouter(0)
	units := []routeUnit{{weight: 100}, {weight: 100}}
	nodes := []nodeCap{{rate: 0}, {rate: 10}}
	assign := r.route(units, nodes)
	for u, n := range assign {
		if n != 1 {
			t.Fatalf("unit %d placed on the rateless node: %v", u, assign)
		}
	}
	if r.stats.Greedy != 1 {
		t.Fatalf("stats %+v: rateless node should force the greedy path", r.stats)
	}
}

func TestRouteGreedyLPTIsDeterministic(t *testing.T) {
	units := []routeUnit{{weight: 50}, {weight: 80}, {weight: 20}, {weight: 80}}
	nodes := []nodeCap{{rate: 10}, {rate: 10}}
	a, _ := routeGreedy(units, nodes, 0)
	b, _ := routeGreedy(units, nodes, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy routing not deterministic: %v vs %v", a, b)
		}
	}
	fin := loadsAfter(units, nodes, a)
	if math.Abs(fin[0]-fin[1]) > 4.0+1e-9 { // LPT is within the largest unit's slack
		t.Fatalf("greedy finish times too skewed: %v for %v", fin, a)
	}
}

// Regression: when every node is rateless every predicted finish time is
// +Inf and the old "tau < bestTau" never improved on node 0, piling all
// units there. Ties must break by least accumulated load.
func TestRouteGreedyAllRatelessSpreadsByLoad(t *testing.T) {
	units := []routeUnit{{weight: 10}, {weight: 10}, {weight: 10}, {weight: 10}}
	nodes := []nodeCap{{rate: 0}, {rate: 0}}
	assign, _ := routeGreedy(units, nodes, 0)
	counts := map[int]int{}
	for _, n := range assign {
		counts[n]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("all-rateless assignment %v piles up instead of spreading by load", assign)
	}
	// Pre-existing load must steer the tie-break too.
	nodes = []nodeCap{{rate: 0, load: 25}, {rate: 0}}
	assign, _ = routeGreedy(units[:1], nodes, 0)
	if assign[0] != 1 {
		t.Fatalf("rateless tie-break ignored accumulated load: %v", assign)
	}
}

// The LP path's constraint rows, assignment and rounding mask live in
// retained router scratch: steady-state routing on a constant fleet shape
// must stay within a one-allocation ceiling per call, like the PR 5
// scheduling loops.
func TestRouteLPSteadyStateAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	r := newRouter(0.3)
	units := []routeUnit{{weight: 100}, {weight: 90}, {weight: 80}}
	nodes := []nodeCap{{rate: 10}, {rate: 12}, {rate: 9}}
	step := func() {
		if r.routeLP(units, nodes) == nil {
			t.Fatal("LP route failed on a feasible instance")
		}
	}
	step() // sizes problem, rows and rounding scratch (cold solve)
	step() // first warm call
	if n := testing.AllocsPerRun(100, step); n > 1 {
		t.Fatalf("steady-state routeLP allocates %v per call, want <= 1", n)
	}
	if st := r.solver.Stats(); st.WarmSolves == 0 {
		t.Fatalf("steady-state routing never warm-solved: %+v", st)
	}
}

// Affinity rounding: with a high tolerance a unit follows its prefer list
// (or a node chosen earlier in the same call) even when another node holds
// a slightly larger share; with affinity 0 it takes the largest share.
func TestRouteAffinityPrefersStreamNodes(t *testing.T) {
	units := []routeUnit{{weight: 100, prefer: []int{0}}}
	nodes := []nodeCap{{rate: 10, load: 50}, {rate: 10}}
	r := newRouter(0)
	if assign := r.route(units, nodes); assign[0] != 1 {
		t.Fatalf("affinity 0: unit should take the emptier node, got %v", assign)
	}
	r = newRouter(1)
	if assign := r.route(units, nodes); assign[0] != 0 {
		t.Fatalf("affinity 1: unit should stay on its preferred node, got %v", assign)
	}
	if r.stats.AffinityHits != 1 {
		t.Fatalf("affinity hit not counted: %+v", r.stats)
	}
	// Greedy path honours the same preference as a finish-time factor.
	assign, hits := routeGreedy(units, nodes, 1)
	if assign[0] != 0 || hits != 1 {
		t.Fatalf("greedy affinity: got %v (%d hits), want node 0, 1 hit", assign, hits)
	}
}
