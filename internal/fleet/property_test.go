// Randomized sharding property: for random scene-cut placements, GOP
// sizes, shard counts and (on half the instances) a mid-stream node death,
// the concatenated shard bitstreams must decode byte-identically to the
// unsharded single-node encode. Failures replay exactly with
// FEVES_CHECK_SEED=<seed> go test ./internal/fleet — the same replay
// convention as the schedule-invariant harness in internal/check.
package fleet

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"feves/internal/serve"
	"feves/internal/video"
)

func harnessSeed(t *testing.T) int64 {
	s := os.Getenv("FEVES_CHECK_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("FEVES_CHECK_SEED=%q: %v", s, err)
	}
	return v
}

// sceneCutYUV renders frames hopping to a fresh synthetic source at every
// cut index: the content discontinuity drives the codec's mean
// motion-compensated cost past the scene-cut threshold, so the encoder
// inserts adaptive IDRs at positions the GOP cadence never predicted.
func sceneCutYUV(t *testing.T, w, h, frames int, cuts []int, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	cut := 0
	src := video.NewSynthetic(w, h, frames, seed)
	for i := 0; i < frames; i++ {
		if cut < len(cuts) && i == cuts[cut] {
			cut++
			src = video.NewSynthetic(w, h, frames, seed+uint64(cut)*977)
		}
		if err := video.WriteYUV(&buf, src.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestPropertyShardedSceneCutStreamsStayBitExact(t *testing.T) {
	seed := harnessSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("harness seed %d (replay failures with FEVES_CHECK_SEED=%d)", seed, seed)

	instances := 6
	if testing.Short() {
		instances = 2
	}
	gops := []int{2, 4, 8}
	for run := 0; run < instances; run++ {
		const w, h = 64, 64
		gop := gops[rng.Intn(len(gops))]
		frames := gop*(2+rng.Intn(3)) + rng.Intn(gop) // 2–4 whole GOPs plus a ragged tail
		// Random scene-cut placement: each inter frame cuts with p = 1/4.
		var cuts []int
		for i := 1; i < frames; i++ {
			if rng.Intn(4) == 0 {
				cuts = append(cuts, i)
			}
		}
		threshold := 4 + rng.Float64()*8
		nodes := 2 + rng.Intn(2)
		kill := rng.Intn(2) == 1

		spec := StreamSpec{
			Name: "prop", Mode: serve.ModeEncode,
			Width: w, Height: h, IntraPeriod: gop,
			SceneCutThreshold: threshold,
			MaxShards:         1 + rng.Intn(4),
			YUV:               sceneCutYUV(t, w, h, frames, cuts, uint64(rng.Int63())),
		}
		want := soloEncode(t, spec)

		// Random affinity and speculation slack: bit-exactness must hold
		// whatever the placement bias, and whether or not a straggler race
		// fires mid-run.
		f, err := New(Config{
			Nodes:     testNodes(t, nodes, "sysnf"),
			MissLimit: 2,
			Affinity:  rng.Float64(),
			SpecSlack: 0.3 + 0.7*rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.SubmitStream(spec)
		if err != nil {
			t.Fatalf("run %d (gop %d frames %d cuts %v): %v", run, gop, frames, cuts, err)
		}
		if kill && nodes > 1 {
			doc := st.Status()
			f.Kill(doc.Shards[rng.Intn(len(doc.Shards))].Node)
		}
		waitDone := make(chan serve.Status, 1)
		go func() { waitDone <- st.Wait() }()
		var got serve.Status
		ticking := true
		for ticking {
			select {
			case got = <-waitDone:
				ticking = false
			case <-time.After(time.Millisecond):
				f.Tick() // drives death detection when a node was killed
			}
		}
		if got != serve.StatusDone {
			t.Fatalf("run %d (seed %d, gop %d, frames %d, cuts %v, shards %d, kill %v): finished %q (%s)",
				run, seed, gop, frames, cuts, spec.MaxShards, kill, got, st.Status().Error)
		}
		if b := st.Bitstream(); !bytes.Equal(b, want) {
			t.Fatalf("run %d (seed %d, gop %d, frames %d, cuts %v, shards %d, kill %v): sharded stream diverges (%d vs %d bytes)",
				run, seed, gop, frames, cuts, spec.MaxShards, kill, len(b), len(want))
		}
		assertNoDroppedFrames(t, st, frames)
		f.Close()
	}
}
