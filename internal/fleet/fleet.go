// Package fleet federates several simulated nodes — each a full device
// platform fronted by its own multi-tenant encode service (internal/serve)
// over its own device pool (internal/pool) — behind one coordinator. It is
// the third level of the FEVES scheduling hierarchy: the per-frame LP
// (Algorithm 2) splits a frame's rows across one session's devices, the
// pool partitioner splits one node's devices across its tenant sessions,
// and the fleet router places whole sessions and GOP shards across nodes
// by solving a min-max LP over each node's calibrated aggregate row rate.
//
// A single heavy stream can be sharded across nodes at GOP boundaries
// (SubmitStream): each shard is an ordinary serve job carrying the global
// frame numbering of its slice (JobSpec.FrameBase), so the reassembled
// bitstream is byte-identical to a single-node encode of the whole input.
//
// Nodes die. The simulation's virtual clock (Tick) drives heartbeats; a
// node that misses MissLimit consecutive beats is declared dead — its
// server is closed, its capacity leaves the router, and every shard it
// held is re-leased to a surviving node and replayed from its opening IDR.
// Because replayed shards are byte-idempotent, the final stream is still
// bit-exact after a mid-stream node death.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/serve"
	"feves/internal/telemetry"
)

// ErrNoNodes is returned when admission finds no alive node to place work
// on (all dead, or the fleet was built empty).
var ErrNoNodes = errors.New("fleet: no alive nodes")

// NodeConfig describes one simulated node: a label, the physical platform
// it contributes, and its local service limits. Per-node determinism comes
// from the platform (device seeds/profiles) plus the node's fault spec.
type NodeConfig struct {
	// Label names the node ("node0"); it keys telemetry scopes, routing
	// decisions and the death schedule. Must be unique and non-empty.
	Label string
	// Platform is the node's physical device platform.
	Platform *device.Platform
	// MaxSessions / QueueDepth configure the node's serve.Server.
	MaxSessions int
	QueueDepth  int
	// FaultSpec injects deterministic device faults into this node only
	// (grammar of device.ParseFaults).
	FaultSpec string
}

// Config configures a Fleet.
type Config struct {
	Nodes []NodeConfig
	// Telemetry is the shared observability sink; each node observes
	// through a node-scoped view of it (telemetry.ForNode), so every
	// metric, event, trace lane and flight record names its node.
	Telemetry *telemetry.Telemetry
	// CheckSchedules / DeadlineSlack / MaxFrameRetries apply to every
	// node's server (see serve.Config).
	CheckSchedules  bool
	DeadlineSlack   float64
	MaxFrameRetries int
	// MissLimit is how many consecutive virtual-clock ticks without a
	// heartbeat make the coordinator declare a node dead (default 3).
	MissLimit int
	// MaxShardRetries bounds how many times one shard may be re-leased to
	// another node after collection failures (default 3).
	MaxShardRetries int
	// Affinity biases placement toward nodes a stream already occupies: a
	// shard stays on such a node when the LP share (or greedy finish-time
	// factor) it gives up is within Affinity, bounding reassembly fan-in.
	// 0 disables; 1 collapses a stream onto as few nodes as admission
	// allows. Typical values 0.2–0.5.
	Affinity float64
	// SpecSlack arms speculative straggler re-lease: at every Tick, a
	// still-running shard whose completion fraction trails its stream's
	// most advanced shard by more than SpecSlack is re-leased to a second
	// node — before the heartbeat detector would fire, which for an alive
	// but backlogged node is never. Both copies run; the first to finish
	// is collected and the loser cancelled, and byte-idempotent shard
	// replay keeps the reassembled stream bit-exact. 0 disables.
	SpecSlack float64
	// CapacityOnly restores the capacity-only routing view (calibrated
	// rate plus coordinator-routed weight, blind to node-local queues) —
	// kept for the V8 experiment and as an escape hatch.
	CapacityOnly bool
	// Deaths is the deterministic node-death schedule: "die:LABEL@TICK"
	// entries separated by ';' or ','. At virtual tick TICK the node
	// vanishes silently — it stops heartbeating but its server keeps
	// running; the coordinator only learns of the death MissLimit ticks
	// later, and results arriving from a vanished node fail collection.
	Deaths string
}

// node is one federated member and its coordinator-side bookkeeping.
type node struct {
	label string
	srv   *serve.Server
	tel   *telemetry.Telemetry

	// Guarded by Fleet.mu.
	killed   bool    // machine vanished (stops heartbeating); silent
	dead     bool    // coordinator declared it dead (server closed)
	lastBeat uint64  // virtual tick of the last heartbeat received
	load     float64 // routed-but-unfinished weight, in row·frames
	jobs     int     // fleet-routed placements accepted so far
}

// death is one parsed entry of the death schedule.
type death struct {
	label string
	tick  uint64
	fired bool
}

// Fleet is the multi-node coordinator.
type Fleet struct {
	cfg Config
	tel *telemetry.Telemetry

	mu          sync.Mutex
	nodes       []*node
	byLabel     map[string]*node
	deaths      []death
	clock       uint64
	rt          *router
	streams     map[string]*Stream
	streamOrder []string
	seq         int
	draining    bool
	closed      bool
	shed        int // placements steered away from a queue-deep node
	specRel     int // straggler shards speculatively re-leased
	specWins    int // speculative copies that beat their primary

	inflight sync.WaitGroup // accepted streams not yet terminal
}

// New builds the fleet: one serve.Server per node, each observing through
// a node-scoped telemetry view, and the shared third-level router.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes configured")
	}
	if cfg.MissLimit <= 0 {
		cfg.MissLimit = 3
	}
	if cfg.MaxShardRetries <= 0 {
		cfg.MaxShardRetries = 3
	}
	if cfg.Affinity < 0 {
		cfg.Affinity = 0
	}
	if cfg.SpecSlack < 0 {
		cfg.SpecSlack = 0
	}
	f := &Fleet{
		cfg:     cfg,
		tel:     cfg.Telemetry,
		byLabel: map[string]*node{},
		rt:      newRouter(cfg.Affinity),
		streams: map[string]*Stream{},
	}
	deaths, err := parseDeaths(cfg.Deaths)
	if err != nil {
		return nil, err
	}
	f.deaths = deaths
	for _, nc := range cfg.Nodes {
		if err := f.join(nc); err != nil {
			f.Close()
			return nil, err
		}
	}
	for _, d := range f.deaths {
		if _, ok := f.byLabel[d.label]; !ok {
			f.Close()
			return nil, fmt.Errorf("fleet: death schedule names unknown node %q", d.label)
		}
	}
	return f, nil
}

// parseDeaths parses "die:LABEL@TICK[;die:LABEL@TICK...]".
func parseDeaths(spec string) ([]death, error) {
	if spec == "" {
		return nil, nil
	}
	var out []death
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rest, ok := strings.CutPrefix(part, "die:")
		if !ok {
			return nil, fmt.Errorf("fleet: death entry %q must start with \"die:\"", part)
		}
		label, at, ok := strings.Cut(rest, "@")
		if !ok || label == "" {
			return nil, fmt.Errorf("fleet: death entry %q must be die:LABEL@TICK", part)
		}
		tick, err := strconv.ParseUint(at, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: death entry %q: bad tick: %v", part, err)
		}
		out = append(out, death{label: label, tick: tick})
	}
	return out, nil
}

// Join adds a node to a running fleet; subsequent routing decisions see
// its capacity. Labels must stay unique (dead labels are not reusable).
func (f *Fleet) Join(nc NodeConfig) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.draining {
		return serve.ErrDraining
	}
	return f.join(nc)
}

// join is Join without admission checks; caller holds f.mu (or owns f
// exclusively during New).
func (f *Fleet) join(nc NodeConfig) error {
	if nc.Label == "" {
		return fmt.Errorf("fleet: node needs a label")
	}
	if _, dup := f.byLabel[nc.Label]; dup {
		return fmt.Errorf("fleet: duplicate node label %q", nc.Label)
	}
	tel := f.tel.ForNode(nc.Label)
	srv, err := serve.New(serve.Config{
		Platform:        nc.Platform,
		MaxSessions:     nc.MaxSessions,
		QueueDepth:      nc.QueueDepth,
		CheckSchedules:  f.cfg.CheckSchedules,
		Telemetry:       tel,
		DeadlineSlack:   f.cfg.DeadlineSlack,
		MaxFrameRetries: f.cfg.MaxFrameRetries,
		FaultSpec:       nc.FaultSpec,
	})
	if err != nil {
		return fmt.Errorf("fleet: node %s: %w", nc.Label, err)
	}
	n := &node{label: nc.Label, srv: srv, tel: tel, lastBeat: f.clock}
	f.nodes = append(f.nodes, n)
	f.byLabel[nc.Label] = n
	f.metric("feves_fleet_nodes_total", "Nodes that joined the fleet.").Inc()
	return nil
}

// Node returns a node's server by label (introspection and tests).
func (f *Fleet) Node(label string) (*serve.Server, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.byLabel[label]
	if !ok {
		return nil, false
	}
	return n.srv, true
}

// Clock returns the current virtual tick.
func (f *Fleet) Clock() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

// Kill makes a node vanish silently at the current tick, exactly like a
// scheduled death: it stops heartbeating, but the coordinator only reacts
// once MissLimit beats have been missed. Returns false for unknown labels.
func (f *Fleet) Kill(label string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.byLabel[label]
	if !ok || n.killed || n.dead {
		return false
	}
	n.killed = true
	return true
}

// Tick advances the virtual clock one step: scheduled deaths fire, every
// surviving node heartbeats, and nodes whose last beat is MissLimit or
// more ticks old are declared dead — incident and post-mortem bundle in
// the flight recorder, server closed (running shard sessions cancel at
// their next frame boundary and re-lease to survivors), capacity removed
// from the router. Returns the labels declared dead this tick.
func (f *Fleet) Tick() []string {
	f.mu.Lock()
	f.clock++
	for i := range f.deaths {
		d := &f.deaths[i]
		if !d.fired && f.clock >= d.tick {
			d.fired = true
			if n := f.byLabel[d.label]; n != nil && !n.dead {
				n.killed = true
			}
		}
	}
	for _, n := range f.nodes {
		if !n.killed && !n.dead {
			n.lastBeat = f.clock
		}
	}
	var died []*node
	for _, n := range f.nodes {
		if !n.dead && f.clock-n.lastBeat >= uint64(f.cfg.MissLimit) {
			n.dead = true
			died = append(died, n)
		}
	}
	if f.cfg.SpecSlack > 0 && !f.draining && !f.closed {
		f.speculateLocked()
	}
	clock := f.clock
	f.mu.Unlock()

	labels := make([]string, 0, len(died))
	for _, n := range died {
		labels = append(labels, n.label)
		detail := fmt.Sprintf("no heartbeat for %d ticks (last at tick %d); re-leasing its work", f.cfg.MissLimit, n.lastBeat)
		n.tel.Incident("node_down", int(clock), -1, detail)
		n.tel.CaptureBundle("node_death", int(clock), detail)
		f.metric("feves_fleet_nodes_lost_total", "Nodes declared dead after missed heartbeats.").Inc()
		// Closing the server cancels the node's sessions between frames;
		// each shard's watcher then wakes and re-leases to a survivor.
		n.srv.Close()
	}
	return labels
}

// aliveLocked lists the nodes the coordinator currently trusts (not
// declared dead). Silently killed nodes still appear until declared —
// the coordinator cannot know better, which is the point.
func (f *Fleet) aliveLocked() []*node {
	out := make([]*node, 0, len(f.nodes))
	for _, n := range f.nodes {
		if !n.dead {
			out = append(out, n)
		}
	}
	return out
}

// workloadOf mirrors serve.JobSpec's pool demand for routing weights.
func workloadOf(sp serve.JobSpec) device.Workload {
	sa, rf := sp.SearchArea, sp.RefFrames
	if sa == 0 {
		sa = 32
	}
	if rf == 0 {
		rf = 1
	}
	return device.Workload{
		MBW: sp.Width / h264.MBSize, MBH: sp.Height / h264.MBSize,
		SA: sa, NumRF: rf, UsableRF: rf,
	}
}

// unitWeight is a placement's serialized row demand: frame rows × frames,
// the numerator of the router LP's node finish-time estimate.
func unitWeight(w device.Workload, frames int) float64 {
	return float64(w.Rows() * frames)
}

// capsLocked builds the router's node view for a workload: calibrated
// aggregate row rate over up devices, plus each node's live queue-aware
// load (serve.Server.Load — the remaining row·frame weight of everything
// queued and running there), refreshed at every placement so a node whose
// backlog deepened since the last decision is routed around. CapacityOnly
// falls back to the coordinator's own routed-weight bookkeeping, blind to
// node-local queues. Order matches alive.
func (f *Fleet) capsLocked(alive []*node, w device.Workload) []nodeCap {
	caps := make([]nodeCap, len(alive))
	for i, n := range alive {
		load := n.load
		if !f.cfg.CapacityOnly {
			load = n.srv.Load()
		}
		caps[i] = nodeCap{rate: n.srv.Pool().Rate(w), load: load}
	}
	return caps
}

// shedOnceLocked detects and counts a load-shed: the placement avoided
// the node a capacity-only router (calibrated rate plus coordinator-
// routed weight, the PR 8 view) would have picked, because that node's
// live queue made it slower. caps is the queue-aware view in alive order.
func (f *Fleet) shedOnceLocked(alive []*node, caps []nodeCap, weight float64, chosen *node) {
	if f.cfg.CapacityOnly || len(alive) < 2 {
		return
	}
	capOnly := 0
	for i := 1; i < len(alive); i++ {
		if finishTime(nodeCap{rate: caps[i].rate, load: alive[i].load}, weight) <
			finishTime(nodeCap{rate: caps[capOnly].rate, load: alive[capOnly].load}, weight) {
			capOnly = i
		}
	}
	avoided := alive[capOnly]
	if avoided == chosen || caps[capOnly].load <= avoided.load {
		return
	}
	f.shed++
	f.metric("feves_fleet_shed_total",
		"Placements steered away from a node by its live queue depth.",
		"node", avoided.label).Inc()
}

// placeLocked submits spec to the routed node, falling back over the other
// alive nodes in ascending predicted-finish order when the first choice's
// queue is full. On success the chosen node's load is charged weight.
// exclude (optional) removes one node from consideration — the re-lease
// path passes the node whose collection just failed, since the coordinator
// has first-hand evidence it is unreachable even before the heartbeat
// detector declares it. prefer (optional) lists nodes the unit's stream
// already occupies, for the router's affinity rounding.
func (f *Fleet) placeLocked(spec serve.JobSpec, w device.Workload, weight float64, exclude *node, prefer []*node) (*node, *serve.Job, error) {
	alive := f.aliveLocked()
	if exclude != nil {
		kept := alive[:0:0]
		for _, n := range alive {
			if n != exclude {
				kept = append(kept, n)
			}
		}
		alive = kept
	}
	if len(alive) == 0 {
		return nil, nil, ErrNoNodes
	}
	var preferIdx []int
	for i, n := range alive {
		for _, p := range prefer {
			if p == n {
				preferIdx = append(preferIdx, i)
				break
			}
		}
	}
	caps := f.capsLocked(alive, w)
	first := f.rt.route([]routeUnit{{weight: weight, prefer: preferIdx}}, caps)[0]
	order := []int{first}
	rest := make([]int, 0, len(alive)-1)
	for i := range alive {
		if i != first {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		return finishTime(caps[rest[a]], weight) < finishTime(caps[rest[b]], weight)
	})
	order = append(order, rest...)
	var lastErr error = serve.ErrBusy
	for _, i := range order {
		n := alive[i]
		job, err := n.srv.Submit(spec)
		if err == nil {
			n.load += weight
			n.jobs++
			f.metric("feves_fleet_routes_total", "Placements decided by the fleet router.", "node", n.label).Inc()
			f.shedOnceLocked(alive, caps, weight, n)
			return n, job, nil
		}
		if !errors.Is(err, serve.ErrBusy) && !errors.Is(err, serve.ErrDraining) {
			return nil, nil, err // spec error: no node will take it
		}
		lastErr = err
	}
	return nil, nil, lastErr
}

func finishTime(c nodeCap, weight float64) float64 {
	if c.rate <= 0 {
		return 1e300
	}
	return (c.load + weight) / c.rate
}

// JobRef names a routed job: the node serving it plus the node-local job.
// The fleet-wide id is Node + "/" + Job.ID().
type JobRef struct {
	Node string
	Job  *serve.Job
}

// ID returns the fleet-wide job identifier.
func (r JobRef) ID() string { return r.Node + "/" + r.Job.ID() }

// Submit routes one ordinary (unsharded) job to a node via the router LP
// and admits it there. Admission errors mirror serve's: ErrDraining after
// shutdown began, serve.ErrBusy when every alive node's queue is full,
// ErrNoNodes when none are alive, or a validation error.
func (f *Fleet) Submit(spec serve.JobSpec) (JobRef, error) {
	if err := spec.Validate(); err != nil {
		return JobRef{}, err
	}
	f.mu.Lock()
	if f.draining || f.closed {
		f.mu.Unlock()
		return JobRef{}, serve.ErrDraining
	}
	w := workloadOf(spec)
	weight := unitWeight(w, frameCountOf(spec))
	n, job, err := f.placeLocked(spec, w, weight, nil, nil)
	f.mu.Unlock()
	if err != nil {
		return JobRef{}, err
	}
	f.metric("feves_fleet_jobs_total", "Jobs accepted by the fleet coordinator.").Inc()
	go func() { // release the routed load once the job is terminal
		job.Wait()
		f.mu.Lock()
		n.load -= weight
		if n.load < 0 {
			n.load = 0
		}
		f.mu.Unlock()
	}()
	return JobRef{Node: n.label, Job: job}, nil
}

func frameCountOf(sp serve.JobSpec) int {
	if sp.Mode == serve.ModeEncode {
		if fb := sp.Width * sp.Height * 3 / 2; fb > 0 {
			return len(sp.YUV) / fb
		}
		return 0
	}
	return sp.Frames
}

// Jobs lists every fleet-routed and node-local job as JobRefs, nodes in
// join order, jobs in node submission order.
func (f *Fleet) Jobs() []JobRef {
	f.mu.Lock()
	nodes := append([]*node(nil), f.nodes...)
	f.mu.Unlock()
	var out []JobRef
	for _, n := range nodes {
		for _, j := range n.srv.Jobs() {
			out = append(out, JobRef{Node: n.label, Job: j})
		}
	}
	return out
}

// Job resolves a fleet-wide job id ("node0/job-3").
func (f *Fleet) Job(node, id string) (JobRef, bool) {
	f.mu.Lock()
	n, ok := f.byLabel[node]
	f.mu.Unlock()
	if !ok {
		return JobRef{}, false
	}
	j, ok := n.srv.Job(id)
	if !ok {
		return JobRef{}, false
	}
	return JobRef{Node: node, Job: j}, true
}

// Backlog sums the alive nodes' backlogs — the cluster-wide figure the
// admission 503s turn into a Retry-After hint via serve.RetryAfterSeconds.
func (f *Fleet) Backlog() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.aliveLocked() {
		total += n.srv.Backlog()
	}
	return total
}

// Draining reports whether fleet shutdown has begun.
func (f *Fleet) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining || f.closed
}

// Drain stops admission fleet-wide and waits for every accepted stream and
// every node's accepted jobs to reach a terminal state; ctx expiry cancels
// the stragglers and waits for them to wind down.
func (f *Fleet) Drain(ctx context.Context) error {
	f.mu.Lock()
	f.draining = true
	nodes := append([]*node(nil), f.nodes...)
	f.mu.Unlock()
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			errs[i] = n.srv.Drain(ctx)
		}(i, n)
	}
	wg.Wait()
	streamsDone := make(chan struct{})
	go func() {
		f.inflight.Wait()
		close(streamsDone)
	}()
	select {
	case <-streamsDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close shuts every node down immediately; running sessions cancel at the
// next frame boundary and unfinished streams end canceled.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.draining = true
	nodes := append([]*node(nil), f.nodes...)
	var open []*Stream
	for _, st := range f.streams {
		if !st.terminalLocked() {
			open = append(open, st)
		}
	}
	for _, st := range open {
		f.finishStreamLocked(st, serve.StatusCanceled, "fleet shut down")
	}
	f.mu.Unlock()
	for _, n := range nodes {
		n.srv.Close()
	}
	f.inflight.Wait()
}

// metric is a nil-safe registry accessor.
func (f *Fleet) metric(name, help string, labels ...string) *telemetry.Counter {
	if f.tel == nil || f.tel.Metrics == nil {
		return &telemetry.Counter{}
	}
	return f.tel.Metrics.Counter(name, help, labels...)
}

// NodeState describes one node for /debug/state: the coordinator's view
// (alive/dead, heartbeat age, routed load) plus the node's own serve
// document (pool topology, leases, sessions, queue).
type NodeState struct {
	Label string `json:"label"`
	Dead  bool   `json:"dead"`
	// LastBeat is the virtual tick of the node's last heartbeat.
	LastBeat uint64 `json:"last_beat"`
	// Load is the routed-but-unfinished weight in row·frames; Jobs counts
	// fleet placements accepted by this node.
	Load float64 `json:"load"`
	Jobs int     `json:"jobs"`
	// QueueLoad is the node's live queue-aware load (serve.Server.Load):
	// the remaining row·frame weight of everything queued and running
	// there — the figure the router sheds on.
	QueueLoad float64 `json:"queue_load"`
	// Rate is the node's calibrated aggregate row rate for the reference
	// workload (1080p, SA 32, 1 RF) — the router's capacity yardstick.
	Rate  float64     `json:"rate"`
	Serve serve.State `json:"serve"`
}

// State is the cluster-wide introspection document served at /debug/state.
type State struct {
	Clock     uint64 `json:"clock"`
	MissLimit int    `json:"miss_limit"`
	Draining  bool   `json:"draining"`
	// Shed counts placements steered away from a queue-deep node; the
	// speculation pair counts straggler shards re-leased before heartbeat
	// declaration and how many of those copies beat their primary.
	Shed         int            `json:"shed"`
	SpecReleases int            `json:"speculative_releases"`
	SpecWins     int            `json:"speculative_wins"`
	Nodes        []NodeState    `json:"nodes"`
	Streams      []StreamStatus `json:"streams"`
	Router       RouterStats    `json:"router"`
}

// State snapshots the fleet. Safe to call while nodes encode and die.
func (f *Fleet) State() State {
	refW := device.Workload{MBW: 120, MBH: 68, SA: 32, NumRF: 1, UsableRF: 1}
	f.mu.Lock()
	st := State{
		Clock:        f.clock,
		MissLimit:    f.cfg.MissLimit,
		Draining:     f.draining || f.closed,
		Shed:         f.shed,
		SpecReleases: f.specRel,
		SpecWins:     f.specWins,
		Router:       f.rt.stats,
	}
	type row struct {
		n  *node
		ns NodeState
	}
	rows := make([]row, 0, len(f.nodes))
	for _, n := range f.nodes {
		rows = append(rows, row{n: n, ns: NodeState{
			Label: n.label, Dead: n.dead, LastBeat: n.lastBeat,
			Load: n.load, Jobs: n.jobs,
		}})
	}
	ids := append([]string(nil), f.streamOrder...)
	streams := make([]*Stream, 0, len(ids))
	for _, id := range ids {
		streams = append(streams, f.streams[id])
	}
	f.mu.Unlock()
	for _, r := range rows {
		r.ns.Rate = r.n.srv.Pool().Rate(refW)
		r.ns.QueueLoad = r.n.srv.Load()
		r.ns.Serve = r.n.srv.State()
		st.Nodes = append(st.Nodes, r.ns)
	}
	for _, s := range streams {
		st.Streams = append(st.Streams, s.Status())
	}
	return st
}
