//go:build race

package fleet

// raceEnabled reports whether the race detector instruments this build;
// allocation-count tests skip under it.
const raceEnabled = true
