package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"feves/internal/serve"
	"feves/internal/telemetry"
)

func testFleetServer(t *testing.T, n int) (*Fleet, *httptest.Server) {
	t.Helper()
	tel := telemetry.New(nil)
	f, err := New(Config{Nodes: testNodes(t, n, "sysnfk"), Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() { ts.Close(); f.Close() })
	return f, ts
}

func postJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPStreamLifecycle(t *testing.T) {
	f, ts := testFleetServer(t, 2)
	const w, h, frames, gop = 64, 64, 8, 4
	spec := StreamSpec{
		Name: "clip", Mode: serve.ModeEncode,
		Width: w, Height: h, IntraPeriod: gop, YUV: testYUV(w, h, frames),
	}

	resp := postJSON(t, ts.URL+"/streams", spec)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /streams = %d: %s", resp.StatusCode, b)
	}
	var doc StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.ID == "" || len(doc.Shards) == 0 {
		t.Fatalf("stream status %+v", doc)
	}

	st, ok := f.Stream(doc.ID)
	if !ok {
		t.Fatalf("stream %s unknown to the coordinator", doc.ID)
	}
	if got := st.Wait(); got != serve.StatusDone {
		t.Fatalf("stream finished %q", got)
	}

	resp, err := http.Get(ts.URL + "/streams/" + doc.ID + "/bitstream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, st.Bitstream()) {
		t.Fatalf("GET bitstream = %d, %d bytes (want %d)", resp.StatusCode, len(body), len(st.Bitstream()))
	}

	resp, err = http.Get(ts.URL + "/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list []StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Status != serve.StatusDone || list[0].Completed != frames {
		t.Fatalf("GET /streams = %+v", list)
	}
}

func TestHTTPJobRoutingAndResults(t *testing.T) {
	_, ts := testFleetServer(t, 2)
	resp := postJSON(t, ts.URL+"/jobs", serve.JobSpec{
		Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 4,
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
	}
	var doc fleetJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Node == "" || doc.ID == "" {
		t.Fatalf("job status %+v", doc)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + doc.Node + "/" + doc.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var fr serve.FrameResult
		if err := dec.Decode(&fr); err != nil {
			break
		}
		lines++
	}
	if lines != 4 {
		t.Fatalf("results stream carried %d lines, want 4", lines)
	}

	resp, err = http.Get(ts.URL + "/jobs/ghost/job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node job lookup = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPAdmissionRetryAfterSharedHelper fills the whole cluster and
// checks the 503's Retry-After grows from the cluster-wide backlog through
// the same helper the single-node server uses.
func TestHTTPAdmissionRetryAfterSharedHelper(t *testing.T) {
	tel := telemetry.New(nil)
	nodes := testNodes(t, 2, "cpun")
	for i := range nodes {
		nodes[i].MaxSessions = 1
		nodes[i].QueueDepth = 1
	}
	f, err := New(Config{Nodes: nodes, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	defer func() { ts.Close(); f.Close() }()

	long := serve.JobSpec{Mode: serve.ModeSimulate, Width: 1920, Height: 1088, Frames: 50000}
	var got503 *http.Response
	for i := 0; i < 12; i++ {
		resp := postJSON(t, ts.URL+"/jobs", long)
		if resp.StatusCode == http.StatusServiceUnavailable {
			got503 = resp
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}
	if got503 == nil {
		t.Fatal("no submission hit 503 despite full queues everywhere")
	}
	defer got503.Body.Close()
	ra, err := strconv.Atoi(got503.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q: %v", got503.Header.Get("Retry-After"), err)
	}
	if want := serve.RetryAfterSeconds(f.Backlog(), false); ra != want {
		t.Fatalf("Retry-After %d, want the shared helper's cluster-wide figure %d", ra, want)
	}
	if ra < 2 {
		t.Fatalf("Retry-After %d does not reflect a multi-job cluster backlog", ra)
	}
	for _, ref := range f.Jobs() {
		ref.Job.Cancel()
	}
}

func TestHTTPStateAndHealth(t *testing.T) {
	f, ts := testFleetServer(t, 2)
	f.Tick()
	resp, err := http.Get(ts.URL + "/debug/state")
	if err != nil {
		t.Fatal(err)
	}
	var state State
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if state.Clock != 1 || len(state.Nodes) != 2 {
		t.Fatalf("state %+v", state)
	}
	for _, ns := range state.Nodes {
		if ns.Rate <= 0 {
			t.Fatalf("node %s advertises no capacity: %+v", ns.Label, ns)
		}
		if ns.Serve.QueueCap == 0 {
			t.Fatalf("node %s carries no serve document: %+v", ns.Label, ns)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"alive":2`) {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "feves_fleet_nodes_total") {
		t.Fatalf("metrics scrape missing fleet counters: %d", resp.StatusCode)
	}
}

// TestHTTPAdmissionHintsBusyVsDraining pins which failures get which
// Retry-After hint: a placement failure with no alive nodes is retryable
// on the busy path's short estimate (floor 1), while only a draining
// fleet advertises the long drain horizon (2× backlog, floor 5).
func TestHTTPAdmissionHintsBusyVsDraining(t *testing.T) {
	nodes := testNodes(t, 1, "cpun")
	f, err := New(Config{Nodes: nodes, Telemetry: telemetry.New(nil), MissLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	defer func() { ts.Close(); f.Close() }()

	// Kill the only node and let the detector declare it: submissions now
	// fail with ErrNoNodes — transient (a node could join), not draining.
	if !f.Kill("node0") {
		t.Fatal("kill node0 failed")
	}
	for i := 0; i < 3 && !f.State().Nodes[0].Dead; i++ {
		f.Tick()
	}
	job := serve.JobSpec{Mode: serve.ModeSimulate, Width: 640, Height: 368, Frames: 5}
	resp := postJSON(t, ts.URL+"/jobs", job)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST with no alive nodes = %d, want 503", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Retry-After"), strconv.Itoa(serve.RetryAfterSeconds(f.Backlog(), false)); got != want {
		t.Fatalf("no-nodes Retry-After %q, want busy-path hint %q", got, want)
	}

	// Drain the fleet: the same endpoint must now advertise the longer
	// draining horizon.
	if err := f.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/jobs", job)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Retry-After"), strconv.Itoa(serve.RetryAfterSeconds(f.Backlog(), true)); got != want {
		t.Fatalf("draining Retry-After %q, want draining hint %q", got, want)
	}
	if busy, drain := serve.RetryAfterSeconds(0, false), serve.RetryAfterSeconds(0, true); busy >= drain {
		t.Fatalf("hint floors inverted: busy %d, draining %d", busy, drain)
	}
}
