package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"sync"
)

// Bucket layouts for the standard instruments. Frame times on the paper's
// platforms range from a few ms (small formats) to seconds (256×256 SA),
// scheduling overhead is bounded at 2 ms, and prediction error is a
// relative fraction.
var (
	frameTimeBuckets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}
	overheadBuckets  = []float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3}
	relErrBuckets    = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}
)

// FrameRecord is the hook payload of one completed frame; the framework
// fills it from core.Result.
type FrameRecord struct {
	Frame         int
	Attempt       int // successful attempt index (0 = first try)
	Intra         bool
	Chain         int // reference chain (0 on single-chain streams)
	Tau1, Tau2    float64
	Tot           float64
	PredTau1      float64
	PredTau2      float64
	PredTot       float64
	SchedOverhead float64 // seconds
	RStarDev      int
	M, L, S       []int
	// Sigma/SigmaR/DeltaM/DeltaL are Algorithm 2's deferred-transfer and
	// redistribution vectors (nil for non-LP balancers); the flight
	// recorder keeps them per frame.
	Sigma, SigmaR  []int
	DeltaM, DeltaL []int
	// LP is the frame's LP-solver work delta (zero when the balancer did
	// not solve an LP this frame).
	LP       LPSolveStats
	ModME    float64
	ModINT   float64
	ModSME   float64
	ModRStar float64
	Bits     int
	PSNRY    float64
}

// AuditRecord is the hook payload of one balancer decision: the predicted
// versus measured τtot and the model drift its measurements caused.
type AuditRecord struct {
	Frame    int
	Balancer string
	PredTot  float64
	Measured float64
	Drift    []DeviceDrift
}

// Telemetry is the sink the framework's instrumentation hooks feed. Any of
// the four outputs may be nil to disable it; a nil *Telemetry disables
// everything — every hook method is safe (and a near-no-op) on the nil
// receiver, which is the zero-cost fast path the frame loop relies on.
//
// A Telemetry may be scoped to one tenant with ForSession: the scope
// shares the underlying sinks but stamps every event, metric and trace
// slice with the session label and gives the tenant its own Perfetto
// lane. Scoped or not, the steady-state hook path (FrameStart, FrameEnd,
// Audit, FrameSpans) allocates nothing once its cached instruments are
// minted — the flight recorder and trace ring reuse slot storage, and
// event structs are only built when an EventLog is attached.
type Telemetry struct {
	Metrics *Registry
	Events  *EventLog
	Trace   *TraceWriter
	Flight  *FlightRecorder

	node    string // fleet node label; "" = single-node / unscoped
	session string // tenant label; "" = unscoped
	pid     int    // perfetto lane (0 = unscoped lane)

	mu      sync.Mutex
	offset  float64 // perfetto run-time offset in seconds
	inst    *instruments
	// pending stages up to two frames' spans between FrameSpans and the
	// FrameEnd commit: with frame-parallel encoding the VCM stages both
	// frames of a pair before the core layer commits the first, so a
	// single slot would drop frame A's spans when frame B arrives.
	pending    [2]pendingSpans
	pendingIdx int         // slot the next stage overwrites (round-robin)
	scratch    FlightEntry // reused flight-commit staging
}

// pendingSpans is one staged frame awaiting its FrameEnd commit.
type pendingSpans struct {
	frame int
	spans []Span // aliases caller scratch until the frame commits
	has   bool
}

// instruments caches the registry lookups of the steady-state hook path.
// Minting happens once per scope (cold); after that every per-frame
// metric touch is a pointer dereference plus an atomic — no label-key
// building, no map writes.
type instruments struct {
	framesIntra *Counter
	framesInter *Counter
	tauTot      *Histogram
	tau1        *Histogram
	schedOH     *Histogram
	fps         *Gauge
	psnr        *Gauge
	codedBits   *Counter
	spans       *Counter
	simSeconds  *Counter
	retries     *Counter
	predAbs     *Histogram
	predRel     *Histogram
	decisions   map[string]*Counter   // by balancer name
	drift       map[driftKey]*driftPair
	lpWarm      *Counter
	lpCold      *Counter
	lpWarmRej   *Counter
	lpPivots    *Counter
	lpDegen     *Counter
	lpBland     *Counter
}

type driftKey struct {
	device int
	module string
}

type driftPair struct {
	k   *Gauge
	rel *Gauge
}

// New returns a Telemetry with every output enabled: a fresh registry, an
// event log on events, a trace accumulator and a flight recorder. Callers
// wanting a subset build the struct directly.
func New(events *EventLog) *Telemetry {
	return &Telemetry{
		Metrics: NewRegistry(),
		Events:  events,
		Trace:   NewTraceWriter(),
		Flight:  NewFlightRecorder(0),
	}
}

// Enabled reports whether any hook will record something.
func (t *Telemetry) Enabled() bool { return t != nil }

// Session returns the tenant label of a scoped Telemetry ("" when
// unscoped or nil).
func (t *Telemetry) Session() string {
	if t == nil {
		return ""
	}
	return t.session
}

// Node returns the fleet node label of a node-scoped Telemetry ("" when
// unscoped or nil).
func (t *Telemetry) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// ForNode returns a node-scoped view of t: same sinks, but every event,
// flight-recorder record and metric carries the node label — the fleet
// coordinator hands each simulated node such a scope so a multi-node run
// stays attributable record by record. Session scopes derived from a node
// scope (ForSession) keep the node label and get a node-qualified Perfetto
// lane ("node0/job-1"). A nil receiver stays nil; an empty label returns t
// itself.
func (t *Telemetry) ForNode(label string) *Telemetry {
	if t == nil || label == "" {
		return t
	}
	s := &Telemetry{
		Metrics: t.Metrics,
		Events:  t.Events,
		Trace:   t.Trace,
		Flight:  t.Flight,
		node:    label,
		session: t.session,
	}
	if t.Trace != nil {
		s.pid = t.Trace.SessionPID(s.laneName(t.session, label))
	}
	return s
}

// ForSession returns a tenant-scoped view of t: same Registry, EventLog,
// TraceWriter and FlightRecorder, but every record carries the session
// label, metrics gain a {session="…"} dimension, and the tenant gets its
// own Perfetto process lane with its own frame-abutting clock. A node
// scope's sessions inherit the node label. A nil receiver stays nil; an
// empty name returns t itself.
func (t *Telemetry) ForSession(name string) *Telemetry {
	if t == nil || name == "" {
		return t
	}
	s := &Telemetry{
		Metrics: t.Metrics,
		Events:  t.Events,
		Trace:   t.Trace,
		Flight:  t.Flight,
		node:    t.node,
		session: name,
	}
	if t.Trace != nil {
		s.pid = t.Trace.SessionPID(s.laneName(name, t.node))
	}
	return s
}

// laneName derives the Perfetto process-lane label of a scope: the session
// name, qualified by the node label on fleet nodes so two nodes' "job-1"
// tenants land on distinct lanes.
func (t *Telemetry) laneName(session, node string) string {
	switch {
	case node == "":
		return session
	case session == "":
		return node
	default:
		return node + "/" + session
	}
}

// labels prepends the node and session dimensions of a scoped Telemetry.
// Cold path only — results are cached in instruments.
func (t *Telemetry) labels(pairs ...string) []string {
	if t.session != "" {
		pairs = append([]string{"session", t.session}, pairs...)
	}
	if t.node != "" {
		pairs = append([]string{"node", t.node}, pairs...)
	}
	return pairs
}

// ins returns the scope's cached instruments, minting them on first use.
// Callers check t.Metrics != nil first.
func (t *Telemetry) ins() *instruments {
	t.mu.Lock()
	in := t.inst
	if in == nil {
		in = t.mint()
		t.inst = in
	}
	t.mu.Unlock()
	return in
}

// mint registers the scope's fixed-label instruments. Called with t.mu
// held, once per scope.
func (t *Telemetry) mint() *instruments {
	r := t.Metrics
	in := &instruments{
		decisions: map[string]*Counter{},
		drift:     map[driftKey]*driftPair{},
	}
	in.framesInter = r.Counter("feves_frames_total", "Frames processed by the framework.", t.labels("type", "inter")...)
	in.framesIntra = r.Counter("feves_frames_total", "Frames processed by the framework.", t.labels("type", "intra")...)
	in.tauTot = r.Histogram("feves_tau_tot_seconds", "Measured inter-loop time per frame (τtot).", frameTimeBuckets, t.labels()...)
	in.tau1 = r.Histogram("feves_tau1_seconds", "Measured first synchronization point (τ1).", frameTimeBuckets, t.labels()...)
	in.schedOH = r.Histogram("feves_sched_overhead_seconds", "Wall-clock cost of each balancing decision.", overheadBuckets, t.labels()...)
	in.fps = r.Gauge("feves_fps", "Frame rate implied by the last frame's τtot.", t.labels()...)
	in.psnr = r.Gauge("feves_psnr_y_db", "Luma PSNR of the last coded frame.", t.labels()...)
	in.codedBits = r.Counter("feves_coded_bits_total", "Total coded bitstream size.", t.labels()...)
	in.spans = r.Counter("feves_schedule_spans_total", "Executed schedule tasks (kernels, transfers, barriers).", t.labels()...)
	in.simSeconds = r.Counter("feves_simulated_seconds_total", "Accumulated simulated inter-loop time.", t.labels()...)
	in.retries = r.Counter("feves_frame_retries_total", "Frames re-run after a blown deadline.", t.labels()...)
	in.predAbs = r.Histogram("feves_prediction_abs_error_seconds", "Absolute τtot prediction error per frame.", frameTimeBuckets, t.labels()...)
	in.predRel = r.Histogram("feves_prediction_rel_error", "Relative τtot prediction error per frame.", relErrBuckets, t.labels()...)
	in.lpWarm = r.Counter("feves_lp_solves_total", "LP balancing solves by start strategy.", t.labels("start", "warm")...)
	in.lpCold = r.Counter("feves_lp_solves_total", "LP balancing solves by start strategy.", t.labels("start", "cold")...)
	in.lpWarmRej = r.Counter("feves_lp_warm_rejects_total", "Warm-start bases rejected (infeasible after model drift).", t.labels()...)
	in.lpPivots = r.Counter("feves_lp_pivots_total", "Simplex pivots performed by the LP balancer.", t.labels()...)
	in.lpDegen = r.Counter("feves_lp_degenerate_pivots_total", "Degenerate simplex pivots (no objective progress).", t.labels()...)
	in.lpBland = r.Counter("feves_lp_bland_pivots_total", "Pivots taken under Bland's anti-cycling rule.", t.labels()...)
	if t.Trace != nil {
		// Drops are global to the shared ring, so the counter carries no
		// session label regardless of scope.
		t.Trace.SetDropCounter(r.Counter("feves_trace_events_dropped_total", "Trace events evicted by the retained-event ring bound."))
	}
	return in
}

// FrameStart records the beginning of a frame.
func (t *Telemetry) FrameStart(frame int, intra bool) {
	if t == nil {
		return
	}
	if t.Events != nil {
		t.Events.Emit(FrameStartEvent{Type: "frame_start", Node: t.node, Session: t.session, Frame: frame, Intra: intra})
	}
}

// FrameEnd records a completed frame: the summary event, the standard
// metrics (frame counters, τtot/overhead histograms, throughput gauges,
// LP-solver counters) and the flight-recorder commit.
func (t *Telemetry) FrameEnd(rec FrameRecord) {
	if t == nil {
		return
	}
	if t.Events != nil {
		ev := FrameEndEvent{
			Type: "frame_end", Node: t.node, Session: t.session, Frame: rec.Frame,
			Attempt: rec.Attempt, Intra: rec.Intra, Chain: rec.Chain,
			Tau1: rec.Tau1, Tau2: rec.Tau2, Tot: rec.Tot,
			PredTau1: rec.PredTau1, PredTau2: rec.PredTau2, PredTot: rec.PredTot,
			SchedOverhead: rec.SchedOverhead, RStarDev: rec.RStarDev,
			M: rec.M, L: rec.L, S: rec.S,
			ModME: rec.ModME, ModINT: rec.ModINT, ModSME: rec.ModSME, ModRStar: rec.ModRStar,
			Bits: rec.Bits, PSNRY: rec.PSNRY,
		}
		if !rec.LP.zero() {
			lp := rec.LP
			ev.LPSolve = &lp
		}
		t.Events.Emit(ev)
	}
	if t.Metrics != nil {
		in := t.ins()
		if rec.Intra {
			in.framesIntra.Inc()
		} else {
			in.framesInter.Inc()
			in.tauTot.Observe(rec.Tot)
			in.tau1.Observe(rec.Tau1)
			in.schedOH.Observe(rec.SchedOverhead)
			if rec.Tot > 0 {
				in.fps.Set(1 / rec.Tot)
			}
		}
		if rec.Bits > 0 {
			in.codedBits.Add(float64(rec.Bits))
		}
		if rec.PSNRY > 0 {
			in.psnr.Set(rec.PSNRY)
		}
		if !rec.LP.zero() {
			if rec.LP.WarmSolves > 0 {
				in.lpWarm.Add(float64(rec.LP.WarmSolves))
			}
			if rec.LP.ColdSolves > 0 {
				in.lpCold.Add(float64(rec.LP.ColdSolves))
			}
			if rec.LP.WarmRejects > 0 {
				in.lpWarmRej.Add(float64(rec.LP.WarmRejects))
			}
			if rec.LP.Pivots > 0 {
				in.lpPivots.Add(float64(rec.LP.Pivots))
			}
			if rec.LP.DegeneratePivots > 0 {
				in.lpDegen.Add(float64(rec.LP.DegeneratePivots))
			}
			if rec.LP.BlandPivots > 0 {
				in.lpBland.Add(float64(rec.LP.BlandPivots))
			}
		}
	}
	t.commitFlight(&rec)
}

// commitFlight stages the frame into the scope's reusable FlightEntry —
// slice fields alias the caller's scratch, which stays valid until the
// next frame — and commits it; the recorder copies into its ring slot.
func (t *Telemetry) commitFlight(rec *FrameRecord) {
	if t.Flight == nil {
		return
	}
	t.mu.Lock()
	e := &t.scratch
	e.Node = t.node
	e.Session = t.session
	e.Frame = rec.Frame
	e.Attempt = rec.Attempt
	e.Intra = rec.Intra
	e.Chain = rec.Chain
	e.Tau1, e.Tau2, e.Tot = rec.Tau1, rec.Tau2, rec.Tot
	e.PredTau1, e.PredTau2, e.PredTot = rec.PredTau1, rec.PredTau2, rec.PredTot
	e.RStarDev = rec.RStarDev
	e.SchedOverhead = rec.SchedOverhead
	e.M, e.L, e.S = rec.M, rec.L, rec.S
	e.Sigma, e.SigmaR = rec.Sigma, rec.SigmaR
	e.DeltaM, e.DeltaL = rec.DeltaM, rec.DeltaL
	e.LP = rec.LP
	e.Spans = nil
	for i := range t.pending {
		if t.pending[i].has && t.pending[i].frame == rec.Frame {
			e.Spans = t.pending[i].spans
			t.pending[i].has = false
			break
		}
	}
	t.Flight.Commit(e)
	t.mu.Unlock()
}

// Audit records one balancer decision's predicted-vs-measured outcome and
// the resulting model drift.
func (t *Telemetry) Audit(rec AuditRecord) {
	if t == nil {
		return
	}
	absErr := math.Abs(rec.Measured - rec.PredTot)
	relErr := 0.0
	if rec.Measured > 0 {
		relErr = absErr / rec.Measured
	}
	if t.Events != nil {
		t.Events.Emit(AuditEvent{
			Type: "balancer_audit", Node: t.node, Session: t.session, Frame: rec.Frame, Balancer: rec.Balancer,
			PredTot: rec.PredTot, Measured: rec.Measured,
			AbsErr: absErr, RelErr: relErr, Drift: rec.Drift,
		})
	}
	if t.Metrics != nil {
		in := t.ins()
		// Map lookups stay under t.mu: one unscoped Telemetry may be shared
		// by several frameworks. Reads are the steady state (no allocation);
		// inserts only happen on first sight of a balancer or device/module.
		t.mu.Lock()
		dec := in.decisions[rec.Balancer]
		if dec == nil {
			dec = t.Metrics.Counter("feves_balancer_decisions_total", "Balancer decisions audited.", t.labels("balancer", rec.Balancer)...)
			in.decisions[rec.Balancer] = dec
		}
		t.mu.Unlock()
		dec.Inc()
		in.predAbs.Observe(absErr)
		in.predRel.Observe(relErr)
		for _, d := range rec.Drift {
			key := driftKey{device: d.Device, module: d.Module}
			t.mu.Lock()
			g := in.drift[key]
			if g == nil {
				dev := fmt.Sprintf("%d", d.Device)
				g = &driftPair{
					k: t.Metrics.Gauge("feves_model_k_seconds", "Characterized per-row module time (T^R* whole-frame).",
						t.labels("device", dev, "module", d.Module)...),
					rel: t.Metrics.Gauge("feves_model_drift_rel", "Relative model change from the last EWMA update.",
						t.labels("device", dev, "module", d.Module)...),
				}
				in.drift[key] = g
			}
			t.mu.Unlock()
			g.k.Set(d.After)
			g.rel.Set(d.Rel)
		}
	}
}

// CheckViolations records schedule-invariant violations observed in
// non-fatal (serving) mode: one feves_check_violations_total increment
// per broken rule, plus a check_violation event naming them. The strict
// path (Config.CheckSchedules on the library API) still fails the frame
// instead.
func (t *Telemetry) CheckViolations(frame int, rules []string) {
	if t == nil || len(rules) == 0 {
		return
	}
	if t.Events != nil {
		t.Events.Emit(CheckEvent{Type: "check_violation", Node: t.node, Session: t.session, Frame: frame, Rules: rules})
	}
	if r := t.Metrics; r != nil {
		for _, rule := range rules {
			r.Counter("feves_check_violations_total",
				"Schedule invariant violations observed (non-fatal check mode).",
				t.labels("rule", rule)...).Inc()
		}
	}
}

// HealthTransition records a device health-state change (healthy →
// degraded → excluded and back): the event, a per-transition counter, an
// incident-ring breadcrumb, and — for exclusions — the
// feves_device_excluded_total counter the failover acceptance criteria
// key on. reason is the deadline point that tripped ("tau1", "tau_tot",
// "task", …) or "recovered".
func (t *Telemetry) HealthTransition(frame, device int, from, to, reason string) {
	if t == nil {
		return
	}
	if t.Events != nil {
		t.Events.Emit(HealthEvent{Type: "health_transition", Node: t.node, Session: t.session, Frame: frame,
			Device: device, From: from, To: to, Reason: reason})
	}
	t.Flight.Incident("health_transition", t.node, t.session, frame, device, from+"->"+to+" ("+reason+")")
	if r := t.Metrics; r != nil {
		dev := fmt.Sprintf("%d", device)
		r.Counter("feves_health_transitions_total", "Device health-state transitions.",
			t.labels("device", dev, "to", to)...).Inc()
		if to == "excluded" {
			r.Counter("feves_device_excluded_total", "Devices excluded from scheduling by the health tracker.",
				t.labels("device", dev)...).Inc()
		}
	}
}

// FrameRetry records one failover retry: a frame blew a deadline and is
// being re-run on the (possibly reduced) topology.
func (t *Telemetry) FrameRetry(frame, attempt int, point string, blamed []int) {
	if t == nil {
		return
	}
	if t.Events != nil {
		t.Events.Emit(RetryEvent{Type: "frame_retry", Node: t.node, Session: t.session, Frame: frame,
			Attempt: attempt, Point: point, Blamed: blamed})
	}
	dev := -1
	if len(blamed) > 0 {
		dev = blamed[0]
	}
	t.Flight.Incident("frame_retry", t.node, t.session, frame, dev, "deadline "+point+" blown, attempt "+strconv.Itoa(attempt))
	if t.Metrics != nil {
		t.ins().retries.Inc()
	}
}

// Mark records a one-off occurrence ("idr", "scene_cut").
func (t *Telemetry) Mark(typ string, frame int) {
	if t == nil {
		return
	}
	if t.Events != nil {
		t.Events.Emit(MarkEvent{Type: typ, Node: t.node, Session: t.session, Frame: frame})
	}
	if r := t.Metrics; r != nil {
		r.Counter("feves_marks_total", "One-off framework events (IDR refreshes, scene cuts).", t.labels("type", typ)...).Inc()
	}
}

// Incident drops a breadcrumb into the flight recorder's incident ring
// under the scope's session ("device_down", "re_lease", …).
func (t *Telemetry) Incident(kind string, frame, device int, detail string) {
	if t == nil {
		return
	}
	t.Flight.Incident(kind, t.node, t.session, frame, device, detail)
}

// CaptureBundle snapshots a post-mortem bundle under the scope's session.
// Returns a zero Bundle when no flight recorder is attached.
func (t *Telemetry) CaptureBundle(reason string, frame int, detail string) Bundle {
	if t == nil || t.Flight == nil {
		return Bundle{}
	}
	b := t.Flight.Capture(reason, t.node, t.session, frame, detail)
	if t.Events != nil {
		t.Events.Emit(CaptureEvent{Type: "flight_capture", Node: t.node, Session: t.session,
			Frame: frame, Reason: reason, Bundle: b.ID, Detail: detail})
	}
	if r := t.Metrics; r != nil {
		r.Counter("feves_flight_bundles_total", "Post-mortem flight bundles captured.", t.labels("reason", reason)...).Inc()
	}
	return b
}

// FrameSpans records one frame's executed schedule. Spans feed the
// whole-run Perfetto timeline at the scope's current run offset (which
// then advances by tot so consecutive frames abut on the tenant's lane)
// and are staged for the flight recorder until FrameEnd commits the
// frame. spans may alias caller scratch; it is only read before the next
// frame starts.
func (t *Telemetry) FrameSpans(frame, attempt int, tau1, tau2, tot float64, spans []Span) {
	t.FrameSpansAdvance(frame, attempt, tau1, tau2, tot, tot, spans)
}

// FrameSpansAdvance is FrameSpans with an explicit run-offset advance,
// decoupled from the frame's τtot. Frame-parallel pairs share one
// simulated interval: frame A advances the offset by zero so frame B
// lands on the same trace origin (the two frames' spans interleave on the
// device lanes, as they did on the devices), and frame B advances it by
// the pair's joint makespan. The advance also meters the simulated-time
// counter, so a pair accrues its makespan once instead of twice.
func (t *Telemetry) FrameSpansAdvance(frame, attempt int, tau1, tau2, tot, advance float64, spans []Span) {
	if t == nil {
		return
	}
	if t.Metrics != nil {
		in := t.ins()
		in.spans.Add(float64(len(spans)))
		in.simSeconds.Add(advance)
	}
	t.mu.Lock()
	slot := &t.pending[t.pendingIdx]
	t.pendingIdx = 1 - t.pendingIdx
	slot.frame = frame
	slot.spans = spans
	slot.has = true
	off := t.offset
	t.offset += advance
	t.mu.Unlock()
	if t.Trace != nil {
		t.Trace.AddFrame(t.pid, frame, attempt, off, tau1, tau2, tot, spans)
	}
}

