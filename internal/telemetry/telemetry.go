package telemetry

import (
	"fmt"
	"math"
	"sync"
)

// Bucket layouts for the standard instruments. Frame times on the paper's
// platforms range from a few ms (small formats) to seconds (256×256 SA),
// scheduling overhead is bounded at 2 ms, and prediction error is a
// relative fraction.
var (
	frameTimeBuckets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}
	overheadBuckets  = []float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3}
	relErrBuckets    = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}
)

// FrameRecord is the hook payload of one completed frame; the framework
// fills it from core.Result.
type FrameRecord struct {
	Frame         int
	Intra         bool
	Tau1, Tau2    float64
	Tot           float64
	PredTau1      float64
	PredTau2      float64
	PredTot       float64
	SchedOverhead float64 // seconds
	RStarDev      int
	M, L, S       []int
	ModME         float64
	ModINT        float64
	ModSME        float64
	ModRStar      float64
	Bits          int
	PSNRY         float64
}

// AuditRecord is the hook payload of one balancer decision: the predicted
// versus measured τtot and the model drift its measurements caused.
type AuditRecord struct {
	Frame    int
	Balancer string
	PredTot  float64
	Measured float64
	Drift    []DeviceDrift
}

// Telemetry is the sink the framework's instrumentation hooks feed. Any of
// the three outputs may be nil to disable it; a nil *Telemetry disables
// everything — every hook method is safe (and a near-no-op) on the nil
// receiver, which is the zero-cost fast path the frame loop relies on.
type Telemetry struct {
	Metrics *Registry
	Events  *EventLog
	Trace   *TraceWriter

	mu     sync.Mutex
	offset float64 // perfetto run-time offset in seconds
}

// New returns a Telemetry with every output enabled: a fresh registry, an
// event log on events, and a trace accumulator. Callers wanting a subset
// build the struct directly.
func New(events *EventLog) *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Events: events, Trace: NewTraceWriter()}
}

// Enabled reports whether any hook will record something.
func (t *Telemetry) Enabled() bool { return t != nil }

// FrameStart records the beginning of a frame.
func (t *Telemetry) FrameStart(frame int, intra bool) {
	if t == nil {
		return
	}
	t.Events.Emit(FrameStartEvent{Type: "frame_start", Frame: frame, Intra: intra})
}

// FrameEnd records a completed frame: the summary event plus the standard
// metrics (frame counters, τtot/overhead histograms, throughput gauges).
func (t *Telemetry) FrameEnd(rec FrameRecord) {
	if t == nil {
		return
	}
	t.Events.Emit(FrameEndEvent{
		Type: "frame_end", Frame: rec.Frame, Intra: rec.Intra,
		Tau1: rec.Tau1, Tau2: rec.Tau2, Tot: rec.Tot,
		PredTau1: rec.PredTau1, PredTau2: rec.PredTau2, PredTot: rec.PredTot,
		SchedOverhead: rec.SchedOverhead, RStarDev: rec.RStarDev,
		M: rec.M, L: rec.L, S: rec.S,
		ModME: rec.ModME, ModINT: rec.ModINT, ModSME: rec.ModSME, ModRStar: rec.ModRStar,
		Bits: rec.Bits, PSNRY: rec.PSNRY,
	})
	if r := t.Metrics; r != nil {
		kind := "inter"
		if rec.Intra {
			kind = "intra"
		}
		r.Counter("feves_frames_total", "Frames processed by the framework.", "type", kind).Inc()
		if !rec.Intra {
			r.Histogram("feves_tau_tot_seconds", "Measured inter-loop time per frame (τtot).", frameTimeBuckets).Observe(rec.Tot)
			r.Histogram("feves_tau1_seconds", "Measured first synchronization point (τ1).", frameTimeBuckets).Observe(rec.Tau1)
			r.Histogram("feves_sched_overhead_seconds", "Wall-clock cost of each balancing decision.", overheadBuckets).Observe(rec.SchedOverhead)
			if rec.Tot > 0 {
				r.Gauge("feves_fps", "Frame rate implied by the last frame's τtot.").Set(1 / rec.Tot)
			}
		}
		if rec.Bits > 0 {
			r.Counter("feves_coded_bits_total", "Total coded bitstream size.").Add(float64(rec.Bits))
		}
		if rec.PSNRY > 0 {
			r.Gauge("feves_psnr_y_db", "Luma PSNR of the last coded frame.").Set(rec.PSNRY)
		}
	}
}

// Audit records one balancer decision's predicted-vs-measured outcome and
// the resulting model drift.
func (t *Telemetry) Audit(rec AuditRecord) {
	if t == nil {
		return
	}
	absErr := math.Abs(rec.Measured - rec.PredTot)
	relErr := 0.0
	if rec.Measured > 0 {
		relErr = absErr / rec.Measured
	}
	t.Events.Emit(AuditEvent{
		Type: "balancer_audit", Frame: rec.Frame, Balancer: rec.Balancer,
		PredTot: rec.PredTot, Measured: rec.Measured,
		AbsErr: absErr, RelErr: relErr, Drift: rec.Drift,
	})
	if r := t.Metrics; r != nil {
		r.Counter("feves_balancer_decisions_total", "Balancer decisions audited.", "balancer", rec.Balancer).Inc()
		r.Histogram("feves_prediction_abs_error_seconds", "Absolute τtot prediction error per frame.", frameTimeBuckets).Observe(absErr)
		r.Histogram("feves_prediction_rel_error", "Relative τtot prediction error per frame.", relErrBuckets).Observe(relErr)
		for _, d := range rec.Drift {
			dev := fmt.Sprintf("%d", d.Device)
			r.Gauge("feves_model_k_seconds", "Characterized per-row module time (T^R* whole-frame).",
				"device", dev, "module", d.Module).Set(d.After)
			r.Gauge("feves_model_drift_rel", "Relative model change from the last EWMA update.",
				"device", dev, "module", d.Module).Set(d.Rel)
		}
	}
}

// CheckViolations records schedule-invariant violations observed in
// non-fatal (serving) mode: one feves_check_violations_total increment
// per broken rule, plus a check_violation event naming them. The strict
// path (Config.CheckSchedules on the library API) still fails the frame
// instead.
func (t *Telemetry) CheckViolations(frame int, rules []string) {
	if t == nil || len(rules) == 0 {
		return
	}
	t.Events.Emit(CheckEvent{Type: "check_violation", Frame: frame, Rules: rules})
	if r := t.Metrics; r != nil {
		for _, rule := range rules {
			r.Counter("feves_check_violations_total",
				"Schedule invariant violations observed (non-fatal check mode).",
				"rule", rule).Inc()
		}
	}
}

// HealthTransition records a device health-state change (healthy →
// degraded → excluded and back): the event, a per-transition counter, and
// — for exclusions — the feves_device_excluded_total counter the failover
// acceptance criteria key on. reason is the deadline point that tripped
// ("tau1", "tau_tot", "task", …) or "recovered".
func (t *Telemetry) HealthTransition(frame, device int, from, to, reason string) {
	if t == nil {
		return
	}
	t.Events.Emit(HealthEvent{Type: "health_transition", Frame: frame,
		Device: device, From: from, To: to, Reason: reason})
	if r := t.Metrics; r != nil {
		dev := fmt.Sprintf("%d", device)
		r.Counter("feves_health_transitions_total", "Device health-state transitions.",
			"device", dev, "to", to).Inc()
		if to == "excluded" {
			r.Counter("feves_device_excluded_total", "Devices excluded from scheduling by the health tracker.",
				"device", dev).Inc()
		}
	}
}

// FrameRetry records one failover retry: a frame blew a deadline and is
// being re-run on the (possibly reduced) topology.
func (t *Telemetry) FrameRetry(frame, attempt int, point string, blamed []int) {
	if t == nil {
		return
	}
	t.Events.Emit(RetryEvent{Type: "frame_retry", Frame: frame,
		Attempt: attempt, Point: point, Blamed: blamed})
	if r := t.Metrics; r != nil {
		r.Counter("feves_frame_retries_total", "Frames re-run after a blown deadline.").Inc()
	}
}

// Mark records a one-off occurrence ("idr", "scene_cut").
func (t *Telemetry) Mark(typ string, frame int) {
	if t == nil {
		return
	}
	t.Events.Emit(MarkEvent{Type: typ, Frame: frame})
	if r := t.Metrics; r != nil {
		r.Counter("feves_marks_total", "One-off framework events (IDR refreshes, scene cuts).", "type", typ).Inc()
	}
}

// FrameSpans records one frame's executed schedule. Spans feed the
// whole-run Perfetto timeline at the current run offset, which then
// advances by tot so consecutive frames abut.
func (t *Telemetry) FrameSpans(frame int, tau1, tau2, tot float64, spans []Span) {
	if t == nil {
		return
	}
	if r := t.Metrics; r != nil {
		r.Counter("feves_schedule_spans_total", "Executed schedule tasks (kernels, transfers, barriers).").Add(float64(len(spans)))
		r.Counter("feves_simulated_seconds_total", "Accumulated simulated inter-loop time.").Add(tot)
	}
	if t.Trace == nil {
		return
	}
	t.mu.Lock()
	off := t.offset
	t.offset += tot
	t.mu.Unlock()
	t.Trace.AddFrame(frame, off, tau1, tau2, tot, spans)
}
