package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilTelemetryIsSafe is the zero-cost-when-disabled contract: every
// hook must be callable on the nil receiver.
func TestNilTelemetryIsSafe(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Fatal("nil telemetry reports Enabled")
	}
	tel.FrameStart(1, false)
	tel.FrameEnd(FrameRecord{Frame: 1, Tot: 0.01})
	tel.Audit(AuditRecord{Frame: 1, PredTot: 0.01, Measured: 0.011})
	tel.Mark("idr", 8)
	tel.FrameSpans(1, 0, 0.001, 0.002, 0.003, []Span{{Resource: "r", Label: "ME@0", End: 0.003}})
	tel.Incident("device_down", 1, 0, "test")
	_ = tel.CaptureBundle("test", 1, "")
	_ = tel.ForSession("s")
}

func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	tel := &Telemetry{Events: NewEventLog(&buf)}
	tel.FrameStart(3, false)
	tel.FrameEnd(FrameRecord{Frame: 3, Tau1: 0.004, Tau2: 0.007, Tot: 0.01,
		PredTot: 0.0095, RStarDev: 1, M: []int{30, 38}, SchedOverhead: 0.0002})
	tel.Audit(AuditRecord{Frame: 3, Balancer: "lp", PredTot: 0.0095, Measured: 0.01,
		Drift: []DeviceDrift{{Device: 0, Module: "ME", Before: 1e-4, After: 1.1e-4, Rel: 0.1}}})
	tel.Mark("scene_cut", 3)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), buf.String())
	}
	types := make([]string, len(lines))
	for i, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		types[i], _ = m["type"].(string)
		if f, ok := m["frame"].(float64); !ok || int(f) != 3 {
			t.Errorf("line %d frame = %v, want 3", i, m["frame"])
		}
	}
	want := []string{"frame_start", "frame_end", "balancer_audit", "scene_cut"}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("event %d type = %q, want %q", i, types[i], want[i])
		}
	}

	// The audit line must pair prediction with measurement and carry drift.
	var audit AuditEvent
	if err := json.Unmarshal([]byte(lines[2]), &audit); err != nil {
		t.Fatal(err)
	}
	if audit.PredTot != 0.0095 || audit.Measured != 0.01 {
		t.Errorf("audit pred/measured = %v/%v", audit.PredTot, audit.Measured)
	}
	if audit.RelErr <= 0 || audit.AbsErr <= 0 {
		t.Errorf("audit errors not computed: abs=%v rel=%v", audit.AbsErr, audit.RelErr)
	}
	if len(audit.Drift) != 1 || audit.Drift[0].Module != "ME" {
		t.Errorf("audit drift = %+v", audit.Drift)
	}
	if tel.Events.Count() != 4 {
		t.Errorf("EventLog.Count = %d, want 4", tel.Events.Count())
	}
}

func TestFrameEndMetrics(t *testing.T) {
	tel := &Telemetry{Metrics: NewRegistry()}
	tel.FrameEnd(FrameRecord{Frame: 0, Intra: true})
	tel.FrameEnd(FrameRecord{Frame: 1, Tot: 0.02, Tau1: 0.008, SchedOverhead: 3e-4, Bits: 1200, PSNRY: 38.5})
	tel.Audit(AuditRecord{Frame: 1, Balancer: "lp", PredTot: 0.019, Measured: 0.02,
		Drift: []DeviceDrift{{Device: 1, Module: "SME", Before: 2e-4, After: 1.9e-4, Rel: 0.05}}})

	out := tel.Metrics.Expose()
	for _, want := range []string{
		`feves_frames_total{type="intra"} 1`,
		`feves_frames_total{type="inter"} 1`,
		"feves_tau_tot_seconds_count 1",
		"feves_sched_overhead_seconds_count 1",
		"feves_fps 50",
		"feves_coded_bits_total 1200",
		`feves_balancer_decisions_total{balancer="lp"} 1`,
		"feves_prediction_rel_error_count 1",
		`feves_model_k_seconds{device="1",module="SME"} 0.00019`,
		`feves_model_drift_rel{device="1",module="SME"} 0.05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestTraceWriterTimeline(t *testing.T) {
	tel := &Telemetry{Metrics: NewRegistry(), Trace: NewTraceWriter()}
	spans := []Span{
		{Resource: "GPU_K#0.compute", Label: "INT@0", Start: 0, End: 0.004},
		{Resource: "host", Label: "tau1", Start: 0.004, End: 0.004},
	}
	tel.FrameSpans(1, 0, 0.004, 0.006, 0.01, spans)
	tel.FrameSpans(2, 0, 0.003, 0.005, 0.008, spans)
	if got := tel.Trace.Frames(); got != 2 {
		t.Fatalf("Frames = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := tel.Trace.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			TS    float64                `json:"ts"`
			Dur   float64                `json:"dur"`
			TID   int                    `json:"tid"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var threadNames []string
	var frameStarts []float64
	spanCount := 0
	for _, e := range doc.TraceEvents {
		switch {
		case e.Phase == "M" && e.Name == "thread_name":
			threadNames = append(threadNames, e.Args["name"].(string))
		case e.Phase == "X" && e.Name == "frame":
			frameStarts = append(frameStarts, e.TS)
		case e.Phase == "X":
			spanCount++
		}
	}
	if spanCount != 4 {
		t.Errorf("span events = %d, want 4", spanCount)
	}
	joined := strings.Join(threadNames, ",")
	for _, want := range []string{"frames", "GPU_K#0.compute", "host"} {
		if !strings.Contains(joined, want) {
			t.Errorf("thread names %v missing %q", threadNames, want)
		}
	}
	// Frame 2 must start where frame 1 ended: 0.01 s = 10000 µs.
	if len(frameStarts) != 2 || frameStarts[0] != 0 || frameStarts[1] != 10000 {
		t.Errorf("frame bars at %v, want [0 10000]", frameStarts)
	}
	// The span counter metric rode along.
	if !strings.Contains(tel.Metrics.Expose(), "feves_schedule_spans_total 4") {
		t.Errorf("span counter missing:\n%s", tel.Metrics.Expose())
	}
}

func TestCheckViolationsCounterAndEvent(t *testing.T) {
	var buf bytes.Buffer
	tel := New(NewEventLog(&buf))
	tel.CheckViolations(3, []string{"dist.sum", "time.order", "dist.sum"})
	tel.CheckViolations(4, nil) // no rules: no event, no counters

	text := tel.Metrics.Expose()
	if !strings.Contains(text, `feves_check_violations_total{rule="dist.sum"} 2`) {
		t.Fatalf("dist.sum counted wrong:\n%s", text)
	}
	if !strings.Contains(text, `feves_check_violations_total{rule="time.order"} 1`) {
		t.Fatalf("time.order counted wrong:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("%d events emitted, want 1", len(lines))
	}
	var ev CheckEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != "check_violation" || ev.Frame != 3 || len(ev.Rules) != 3 {
		t.Fatalf("bad event: %+v", ev)
	}

	// Nil receiver must be a no-op.
	var nilTel *Telemetry
	nilTel.CheckViolations(1, []string{"x"})
}
