package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventLog is a structured event stream: one JSON object per line (JSONL),
// written as events are emitted. Records are type-tagged; the schema is the
// exported record structs of this package (FrameStartEvent, FrameEndEvent,
// AuditEvent, MarkEvent).
type EventLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
}

// NewEventLog writes events to w. The caller owns w's lifetime; EventLog
// never closes it.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Emit writes one event as a JSON line. Marshalling errors are swallowed:
// telemetry must never fail the encode.
func (l *EventLog) Emit(v interface{}) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.enc.Encode(v) == nil {
		l.n++
	}
	l.mu.Unlock()
}

// Count returns the number of events successfully written.
func (l *EventLog) Count() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// FrameStartEvent opens a frame's event group.
type FrameStartEvent struct {
	Type    string `json:"type"` // "frame_start"
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Intra   bool   `json:"intra"`
}

// FrameEndEvent is the per-frame summary record: the measured
// synchronization points, the distribution vectors, the per-module device
// time and the functional coding outcome.
type FrameEndEvent struct {
	Type    string `json:"type"` // "frame_end"
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	// Attempt is the successful attempt index (omitted for first-try
	// frames; >0 after failover retries).
	Attempt int  `json:"attempt,omitempty"`
	Intra   bool `json:"intra"`
	// Chain is the reference chain the frame predicted from (omitted on
	// single-chain streams, where it is always 0).
	Chain int `json:"chain,omitempty"`
	// Tau1/Tau2/Tot are the measured synchronization points in seconds
	// (zero for intra frames, which run outside the balanced inter-loop).
	Tau1 float64 `json:"tau1"`
	Tau2 float64 `json:"tau2"`
	Tot  float64 `json:"tau_tot"`
	// PredTau1/PredTau2/PredTot are the LP's predictions (zero for non-LP
	// balancers and the equidistant initialization frame).
	PredTau1 float64 `json:"pred_tau1,omitempty"`
	PredTau2 float64 `json:"pred_tau2,omitempty"`
	PredTot  float64 `json:"pred_tau_tot,omitempty"`
	// SchedOverhead is the real wall-clock balancing cost in seconds.
	SchedOverhead float64 `json:"sched_overhead,omitempty"`
	RStarDev      int     `json:"rstar_dev"`
	M             []int   `json:"m,omitempty"`
	L             []int   `json:"l,omitempty"`
	S             []int   `json:"s,omitempty"`
	// ModME..ModRStar are summed device-seconds per module group.
	ModME    float64 `json:"mod_me,omitempty"`
	ModINT   float64 `json:"mod_int,omitempty"`
	ModSME   float64 `json:"mod_sme,omitempty"`
	ModRStar float64 `json:"mod_rstar,omitempty"`
	Bits     int     `json:"bits,omitempty"`
	PSNRY    float64 `json:"psnr_y,omitempty"`
	// LPSolve is the frame's LP-solver work delta (absent when the
	// balancer solved no LP this frame).
	LPSolve *LPSolveStats `json:"lp_solve,omitempty"`
}

// DeviceDrift is one device/module model change caused by a frame's EWMA
// update of the Performance Characterization.
type DeviceDrift struct {
	Device int    `json:"device"`
	Module string `json:"module"`
	// Before/After are seconds per macroblock row (T^R* whole-frame);
	// Before is 0 for a first observation.
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	// Rel is |After-Before|/Before (0 for a first observation).
	Rel float64 `json:"rel"`
}

// AuditEvent is the balancer-decision audit record: the LP's predicted
// τtot paired with the measured one, plus the per-device model drift the
// frame's measurements caused — the direct observability of Algorithm 2's
// feedback loop.
type AuditEvent struct {
	Type     string  `json:"type"` // "balancer_audit"
	Node     string  `json:"node,omitempty"`
	Session  string  `json:"session,omitempty"`
	Frame    int     `json:"frame"`
	Balancer string  `json:"balancer,omitempty"`
	PredTot  float64 `json:"pred_tau_tot"`
	Measured float64 `json:"measured_tau_tot"`
	// AbsErr is |measured-predicted| seconds; RelErr normalizes by the
	// measured value.
	AbsErr float64       `json:"abs_err"`
	RelErr float64       `json:"rel_err"`
	Drift  []DeviceDrift `json:"drift,omitempty"`
}

// MarkEvent flags a one-off occurrence: an IDR refresh ("idr") or a
// scene-cut-forced intra switch ("scene_cut").
type MarkEvent struct {
	Type    string `json:"type"`
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
}

// HealthEvent reports one device health-state transition of the failover
// state machine.
type HealthEvent struct {
	Type    string `json:"type"` // "health_transition"
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Device int    `json:"device"`
	From   string `json:"from"`
	To     string `json:"to"`
	// Reason is the deadline point that tripped ("tau1", "tau2",
	// "tau_tot", "task") or "recovered" for the clean-streak return path.
	Reason string `json:"reason,omitempty"`
}

// RetryEvent reports a frame being re-run after a blown deadline.
type RetryEvent struct {
	Type    string `json:"type"` // "frame_retry"
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Attempt int    `json:"attempt"`
	// Point is the synchronization point whose budget was exceeded.
	Point string `json:"point,omitempty"`
	// Blamed lists the devices the deadline check held responsible.
	Blamed []int `json:"blamed,omitempty"`
}

// CheckEvent reports the schedule-invariant rules a frame broke when the
// checker runs in non-fatal (observe) mode.
type CheckEvent struct {
	Type    string   `json:"type"` // "check_violation"
	Node    string   `json:"node,omitempty"`
	Session string   `json:"session,omitempty"`
	Frame   int      `json:"frame"`
	Rules   []string `json:"rules"`
}

// CaptureEvent marks a post-mortem flight bundle being captured, with the
// bundle id it can be retrieved by at /debug/flight.
type CaptureEvent struct {
	Type    string `json:"type"` // "flight_capture"
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Reason  string `json:"reason"`
	Bundle  int    `json:"bundle"`
	Detail  string `json:"detail,omitempty"`
}
