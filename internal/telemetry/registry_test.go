package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("feves_frames_total", "Frames processed.", "type", "inter")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	r.Counter("feves_frames_total", "Frames processed.", "type", "intra").Inc()
	r.Gauge("feves_fps", "Current frame rate.").Set(26.5)

	out := r.Expose()
	for _, want := range []string{
		"# HELP feves_frames_total Frames processed.",
		"# TYPE feves_frames_total counter",
		`feves_frames_total{type="inter"} 3`,
		`feves_frames_total{type="intra"} 1`,
		"# TYPE feves_fps gauge",
		"feves_fps 26.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", "k", "v")
	b := r.Counter("c", "h", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	// Label order must not matter.
	g1 := r.Gauge("g", "h", "a", "1", "b", "2")
	g2 := r.Gauge("g", "h", "b", "2", "a", "1")
	if g1 != g2 {
		t.Fatal("label order changed the series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("feves_tau_tot_seconds", "τtot.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	out := r.Expose()
	for _, want := range []string{
		"# TYPE feves_tau_tot_seconds histogram",
		`feves_tau_tot_seconds_bucket{le="0.01"} 1`,
		`feves_tau_tot_seconds_bucket{le="0.1"} 3`,
		`feves_tau_tot_seconds_bucket{le="1"} 4`,
		`feves_tau_tot_seconds_bucket{le="+Inf"} 5`,
		"feves_tau_tot_seconds_sum 7.605",
		"feves_tau_tot_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelsMergeWithLe(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "h.", []float64{1}, "dev", "0").Observe(0.5)
	out := r.Expose()
	if !strings.Contains(out, `h_bucket{dev="0",le="1"} 1`) {
		t.Errorf("labelled histogram bucket malformed:\n%s", out)
	}
	if !strings.Contains(out, `h_sum{dev="0"} 0.5`) {
		t.Errorf("labelled histogram sum malformed:\n%s", out)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("c", "h").Inc()
				r.Histogram("h", "h", []float64{1, 2}).Observe(1.5)
				r.Gauge("g", "h").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "h").Value(); got != 800 {
		t.Fatalf("counter = %v, want 800", got)
	}
	if got := r.Histogram("h", "h", []float64{1, 2}).Count(); got != 800 {
		t.Fatalf("histogram count = %v, want 800", got)
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("feves_frames_total", "Frames.", "type", "inter").Add(4)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), `feves_frames_total{type="inter"} 4`) {
		t.Errorf("scrape missing counter:\n%s", body)
	}
}
