// Package telemetry is the observability substrate of the FEVES
// reproduction: a dependency-free metrics registry with Prometheus
// text-format exposition, a structured JSONL event stream, a Chrome
// trace-event (Perfetto-loadable) exporter for whole-run schedule
// timelines, and the Telemetry sink that the framework's instrumentation
// hooks feed. Everything is stdlib-only and safe for concurrent use; a nil
// *Telemetry disables every hook at the cost of a single pointer check, so
// timing-mode reproductions of the paper's experiments are unaffected when
// observability is off.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// metricKind is the Prometheus metric type of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry is a metrics store: named families of counters, gauges and
// fixed-bucket histograms, each optionally split into label series.
// Instruments are get-or-create: asking twice for the same name and labels
// returns the same instrument, so call sites need no wiring phase.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type family struct {
	name, help string
	kind       metricKind
	buckets    []float64 // histograms only
	series     map[string]interface{}
	order      []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey renders k1=v1 pairs as a canonical Prometheus label string
// ({k1="v1",k2="v2"}) or "" for the unlabelled series.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns the family, creating it with the given kind; a kind
// mismatch on an existing name panics (an instrumentation bug, not a
// runtime condition).
func (r *Registry) getFamily(name, help string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: map[string]interface{}{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter series for name and labels (key/value pairs),
// creating it at zero on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter, nil)
	key := labelKey(labels)
	if c, ok := f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	f.order = append(f.order, key)
	return c
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge, nil)
	key := labelKey(labels)
	if g, ok := f.series[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	f.order = append(f.order, key)
	return g
}

// Histogram returns the fixed-bucket histogram series for name and labels.
// Buckets are upper bounds in ascending order; a +Inf bucket is implicit.
// The bucket layout is fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram, buckets)
	key := labelKey(labels)
	if h, ok := f.series[key]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[key] = h
	f.order = append(f.order, key)
	return h
}

// Counter is a monotonically increasing float64.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.mu.Lock()
	c.v += v
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a settable float64.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) {
	g.mu.Lock()
	g.v += v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64 // per finite bucket, non-cumulative
	inf     uint64
	sum     float64
	samples uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.samples++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.inf++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	// %g keeps integers clean (1 not 1.000000) and small floats exact
	// enough for scrape consumers.
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, key := range f.order {
			switch m := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatValue(m.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatValue(m.Value()))
			case *Histogram:
				m.mu.Lock()
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", formatValue(b)), cum)
				}
				cum += m.inf
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(key, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, key, formatValue(m.sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, key, m.samples)
				m.mu.Unlock()
			}
		}
	}
}

// mergeLabels appends one extra label pair to an already-rendered label
// string ("" or "{a=\"b\"}").
func mergeLabels(key, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// FamilyDesc describes one exported metric family: its name, kind, help
// text and the union of label keys across its series. Describe feeds the
// metrics-surface golden test, which makes metric renames deliberate.
type FamilyDesc struct {
	Name   string
	Kind   string
	Help   string
	Labels []string // sorted union of label keys across series
}

// Describe returns every family sorted by name.
func (r *Registry) Describe() []FamilyDesc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyDesc, 0, len(r.families))
	for _, f := range r.families {
		keys := map[string]bool{}
		for seriesKey := range f.series {
			for _, k := range labelNames(seriesKey) {
				keys[k] = true
			}
		}
		d := FamilyDesc{Name: f.name, Kind: string(f.kind), Help: f.help}
		for k := range keys {
			d.Labels = append(d.Labels, k)
		}
		sort.Strings(d.Labels)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelNames extracts the label keys of a rendered series key
// (`{a="x",b="y"}` → [a b]); "" yields none.
func labelNames(key string) []string {
	if key == "" {
		return nil
	}
	var names []string
	rest := key[1 : len(key)-1] // strip { }
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			break
		}
		names = append(names, rest[:eq])
		// skip the quoted value (values never contain `",` in our label
		// vocabulary: device indices, module names, rule ids, sessions)
		end := strings.Index(rest[eq:], `",`)
		if end < 0 {
			break
		}
		rest = rest[eq+end+2:]
	}
	return names
}

// Expose returns the full Prometheus text exposition as a string.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Expose()))
	})
}

// MetricsServer is a running HTTP exposition endpoint.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// Serve starts an HTTP server exposing the registry at /metrics (and at /
// for convenience). It binds synchronously — so address errors surface
// here — and serves in a background goroutine until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{srv: srv, ln: ln}, nil
}
