package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightEntry is one frame's full schedule record as the flight recorder
// keeps it: the causal identity {session, frame, attempt}, the measured
// and predicted synchronization points, the distribution vectors of
// Algorithm 2, the LP solver work the decision cost, and the executed
// task spans — everything needed to reconstruct the frame's Fig. 4
// timeline after the fact.
type FlightEntry struct {
	Seq     uint64 `json:"seq"`
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Attempt int    `json:"attempt,omitempty"`
	Intra   bool   `json:"intra,omitempty"`
	Chain   int    `json:"chain,omitempty"`

	Tau1     float64 `json:"tau1,omitempty"`
	Tau2     float64 `json:"tau2,omitempty"`
	Tot      float64 `json:"tau_tot,omitempty"`
	PredTau1 float64 `json:"pred_tau1,omitempty"`
	PredTau2 float64 `json:"pred_tau2,omitempty"`
	PredTot  float64 `json:"pred_tau_tot,omitempty"`

	RStarDev      int     `json:"rstar_dev,omitempty"`
	SchedOverhead float64 `json:"sched_overhead,omitempty"`

	M      []int `json:"m,omitempty"`
	L      []int `json:"l,omitempty"`
	S      []int `json:"s,omitempty"`
	Sigma  []int `json:"sigma,omitempty"`
	SigmaR []int `json:"sigma_r,omitempty"`
	DeltaM []int `json:"delta_m,omitempty"`
	DeltaL []int `json:"delta_l,omitempty"`

	// LP is the solver work of this frame's balancing decision (zero for
	// equidistant/initialization frames).
	LP LPSolveStats `json:"lp_solve"`

	// Spans is the executed schedule of the successful attempt.
	Spans []Span `json:"spans,omitempty"`
}

// LPSolveStats is the per-frame delta of the LP solver's cumulative
// counters (lp.Stats without importing it — telemetry stays a leaf).
type LPSolveStats struct {
	Solves           int `json:"solves,omitempty"`
	WarmSolves       int `json:"warm,omitempty"`
	ColdSolves       int `json:"cold,omitempty"`
	WarmRejects      int `json:"warm_rejects,omitempty"`
	Pivots           int `json:"pivots,omitempty"`
	DegeneratePivots int `json:"degenerate_pivots,omitempty"`
	BlandPivots      int `json:"bland_pivots,omitempty"`
}

func (s LPSolveStats) zero() bool { return s == LPSolveStats{} }

// Incident is one exceptional occurrence the recorder keeps alongside the
// frame ring: a deadline retry, a health-state transition, a device loss,
// a failover re-lease. Incidents are the causal breadcrumbs a post-mortem
// bundle is read by.
type Incident struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"` // "frame_retry", "health_transition", "device_down", "re_lease", "node_down", ...
	Node    string `json:"node,omitempty"`
	Session string `json:"session,omitempty"`
	Frame   int    `json:"frame"`
	Device  int    `json:"device,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Bundle is an inspectable post-mortem snapshot: the frame ring and the
// incident ring as they stood when a capture trigger fired (a
// DeadlineError escaping retries, a device exclusion, a pool failover).
type Bundle struct {
	ID       int       `json:"id"`
	Reason   string    `json:"reason"`
	Node     string    `json:"node,omitempty"`
	Session  string    `json:"session,omitempty"`
	Frame    int       `json:"frame"`
	Detail   string    `json:"detail,omitempty"`
	Captured time.Time `json:"captured"`
	// Frames is the recorded window, oldest first.
	Frames []FlightEntry `json:"frames"`
	// Incidents is the incident window, oldest first.
	Incidents []Incident `json:"incidents"`
}

// FlightDoc is the document served at /debug/flight and consumed by
// feves-trace -flight: the live ring plus every captured bundle.
type FlightDoc struct {
	Frames    []FlightEntry `json:"frames"`
	Incidents []Incident    `json:"incidents"`
	Bundles   []Bundle      `json:"bundles"`
}

// defaultFlightFrames is the frame-ring depth when NewFlightRecorder is
// given a non-positive size.
const defaultFlightFrames = 64

// maxFlightBundles bounds retained post-mortem bundles; beyond it the
// oldest is dropped (the newest failure is the one being debugged).
const maxFlightBundles = 16

// FlightRecorder is a bounded, allocation-free record of the last N
// frames' schedules plus a small incident log. Commit reuses ring-slot
// storage, so the steady-state frame loop adds no allocations; Capture —
// the exceptional path — snapshots copies into a Bundle. All methods are
// safe for concurrent use across tenants.
type FlightRecorder struct {
	mu        sync.Mutex
	ring      []FlightEntry // fixed-size slot array, slices reused in place
	next      int           // next slot to overwrite
	count     int           // committed entries, ≤ len(ring)
	seq       uint64        // global commit sequence
	incidents []Incident    // ring, same discipline
	incNext   int
	incCount  int
	bundles   []Bundle
	bundleSeq int
}

// NewFlightRecorder creates a recorder holding the last n frames
// (defaultFlightFrames when n <= 0) and an equally deep incident ring.
// Every slot is allocated up front so steady-state commits are free.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = defaultFlightFrames
	}
	return &FlightRecorder{
		ring:      make([]FlightEntry, n),
		incidents: make([]Incident, n),
	}
}

// Depth returns the frame-ring capacity.
func (r *FlightRecorder) Depth() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Commit copies e into the next ring slot, reusing the slot's slice
// storage. e may alias caller scratch — the recorder owns only the copy.
// Nil-receiver safe.
func (r *FlightRecorder) Commit(e *FlightEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	slot := &r.ring[r.next]
	slot.Seq = r.seq
	slot.Node = e.Node
	slot.Session = e.Session
	slot.Frame = e.Frame
	slot.Attempt = e.Attempt
	slot.Intra = e.Intra
	slot.Chain = e.Chain
	slot.Tau1, slot.Tau2, slot.Tot = e.Tau1, e.Tau2, e.Tot
	slot.PredTau1, slot.PredTau2, slot.PredTot = e.PredTau1, e.PredTau2, e.PredTot
	slot.RStarDev = e.RStarDev
	slot.SchedOverhead = e.SchedOverhead
	slot.M = append(slot.M[:0], e.M...)
	slot.L = append(slot.L[:0], e.L...)
	slot.S = append(slot.S[:0], e.S...)
	slot.Sigma = append(slot.Sigma[:0], e.Sigma...)
	slot.SigmaR = append(slot.SigmaR[:0], e.SigmaR...)
	slot.DeltaM = append(slot.DeltaM[:0], e.DeltaM...)
	slot.DeltaL = append(slot.DeltaL[:0], e.DeltaL...)
	slot.LP = e.LP
	slot.Spans = append(slot.Spans[:0], e.Spans...)
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
}

// Incident appends one incident record to the incident ring. This is the
// exceptional path; it needs no allocation discipline beyond the ring
// bound itself.
func (r *FlightRecorder) Incident(kind, node, session string, frame, device int, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	r.incidents[r.incNext] = Incident{
		Seq: r.seq, Kind: kind, Node: node, Session: session,
		Frame: frame, Device: device, Detail: detail,
	}
	r.incNext = (r.incNext + 1) % len(r.incidents)
	if r.incCount < len(r.incidents) {
		r.incCount++
	}
	r.mu.Unlock()
}

// framesLocked copies the committed window, oldest first. Called with
// r.mu held.
func (r *FlightRecorder) framesLocked() []FlightEntry {
	out := make([]FlightEntry, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		e := r.ring[(start+i)%len(r.ring)]
		e.M = append([]int(nil), e.M...)
		e.L = append([]int(nil), e.L...)
		e.S = append([]int(nil), e.S...)
		e.Sigma = append([]int(nil), e.Sigma...)
		e.SigmaR = append([]int(nil), e.SigmaR...)
		e.DeltaM = append([]int(nil), e.DeltaM...)
		e.DeltaL = append([]int(nil), e.DeltaL...)
		e.Spans = append([]Span(nil), e.Spans...)
		out = append(out, e)
	}
	return out
}

// incidentsLocked copies the incident window, oldest first. Called with
// r.mu held.
func (r *FlightRecorder) incidentsLocked() []Incident {
	out := make([]Incident, 0, r.incCount)
	start := r.incNext - r.incCount
	if start < 0 {
		start += len(r.incidents)
	}
	for i := 0; i < r.incCount; i++ {
		out = append(out, r.incidents[(start+i)%len(r.incidents)])
	}
	return out
}

// Capture snapshots the current window into a post-mortem Bundle and
// retains it (dropping the oldest beyond maxFlightBundles). It returns a
// copy of the captured bundle. Nil-receiver safe (returns a zero bundle).
func (r *FlightRecorder) Capture(reason, node, session string, frame int, detail string) Bundle {
	if r == nil {
		return Bundle{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bundleSeq++
	b := Bundle{
		ID: r.bundleSeq, Reason: reason, Node: node, Session: session, Frame: frame,
		Detail: detail, Captured: time.Now().UTC(),
		Frames:    r.framesLocked(),
		Incidents: r.incidentsLocked(),
	}
	r.bundles = append(r.bundles, b)
	if len(r.bundles) > maxFlightBundles {
		r.bundles = r.bundles[len(r.bundles)-maxFlightBundles:]
	}
	return b
}

// Bundles returns the captured bundles, oldest first.
func (r *FlightRecorder) Bundles() []Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Bundle(nil), r.bundles...)
}

// Doc snapshots the live ring and every captured bundle — the
// /debug/flight document.
func (r *FlightRecorder) Doc() FlightDoc {
	if r == nil {
		return FlightDoc{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return FlightDoc{
		Frames:    r.framesLocked(),
		Incidents: r.incidentsLocked(),
		Bundles:   append([]Bundle(nil), r.bundles...),
	}
}

// WriteDoc writes the /debug/flight document as indented JSON.
func (r *FlightRecorder) WriteDoc(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Doc())
}
