package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Span is one executed schedule task (kernel, transfer or barrier) on a
// named resource, in seconds relative to the frame's start. It mirrors
// vcm.TaskSpan without importing it, keeping this package a leaf.
type Span struct {
	Resource string
	Label    string
	Start    float64
	End      float64
}

// traceEvent is one Chrome trace-event record. The format is the JSON
// "trace event format" that both chrome://tracing and Perfetto's legacy
// importer load: complete events (ph "X") with microsecond timestamps,
// instant events (ph "i") and metadata events (ph "M") naming threads.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"` // microseconds
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"` // instant-event scope
	Args  map[string]interface{} `json:"args,omitempty"`
}

// TraceWriter accumulates per-frame schedule spans into one whole-run
// timeline. Each simulated frame starts its own clock at zero; AddFrame
// shifts it by the caller-supplied offset so consecutive frames abut on a
// single time axis. Resources become named threads of one process.
type TraceWriter struct {
	mu     sync.Mutex
	events []traceEvent
	tids   map[string]int
	order  []string
}

// NewTraceWriter creates an empty trace.
func NewTraceWriter() *TraceWriter {
	return &TraceWriter{tids: map[string]int{}}
}

const (
	tracePID = 1 // single simulated process
	frameTID = 0 // lane for whole-frame bars; resources start at 1
)

func (w *TraceWriter) tid(resource string) int {
	id, ok := w.tids[resource]
	if !ok {
		id = len(w.order) + 1
		w.tids[resource] = id
		w.order = append(w.order, resource)
	}
	return id
}

// AddFrame appends one frame's schedule at the given run-time offset (both
// in seconds): a whole-frame bar on the frame lane, one complete event per
// task span on its resource's lane, and τ1/τ2 instant markers.
func (w *TraceWriter) AddFrame(frame int, offset, tau1, tau2, tot float64, spans []Span) {
	w.mu.Lock()
	defer w.mu.Unlock()
	us := func(s float64) float64 { return (offset + s) * 1e6 }
	w.events = append(w.events, traceEvent{
		Name: "frame", Phase: "X", TS: us(0), Dur: tot * 1e6,
		PID: tracePID, TID: frameTID,
		Args: map[string]interface{}{"frame": frame, "tau1_ms": tau1 * 1e3, "tau2_ms": tau2 * 1e3},
	})
	for _, s := range spans {
		dur := (s.End - s.Start) * 1e6
		if dur < 0 {
			dur = 0
		}
		w.events = append(w.events, traceEvent{
			Name: s.Label, Phase: "X", TS: us(s.Start), Dur: dur,
			PID: tracePID, TID: w.tid(s.Resource),
			Args: map[string]interface{}{"frame": frame},
		})
	}
	for _, m := range []struct {
		name string
		t    float64
	}{{"tau1", tau1}, {"tau2", tau2}} {
		w.events = append(w.events, traceEvent{
			Name: m.name, Phase: "i", TS: us(m.t),
			PID: tracePID, TID: frameTID, Scope: "p",
			Args: map[string]interface{}{"frame": frame},
		})
	}
}

// Frames returns the number of whole-frame bars recorded.
func (w *TraceWriter) Frames() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, e := range w.events {
		if e.TID == frameTID && e.Phase == "X" {
			n++
		}
	}
	return n
}

// Export serializes the accumulated trace as a Chrome trace-event JSON
// object ({"traceEvents": [...], "displayTimeUnit": "ms"}), prefixed with
// the process/thread-name metadata that makes Perfetto label the lanes.
func (w *TraceWriter) Export(out io.Writer) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	meta := []traceEvent{
		{Name: "process_name", Phase: "M", PID: tracePID,
			Args: map[string]interface{}{"name": "feves"}},
		{Name: "thread_name", Phase: "M", PID: tracePID, TID: frameTID,
			Args: map[string]interface{}{"name": "frames"}},
		{Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: frameTID,
			Args: map[string]interface{}{"sort_index": 0}},
	}
	for _, res := range w.order {
		tid := w.tids[res]
		meta = append(meta,
			traceEvent{Name: "thread_name", Phase: "M", PID: tracePID, TID: tid,
				Args: map[string]interface{}{"name": res}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: tid,
				Args: map[string]interface{}{"sort_index": tid}})
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{append(meta, w.events...), "ms"}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}
