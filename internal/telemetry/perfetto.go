package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Span is one executed schedule task (kernel, transfer or barrier) on a
// named resource, in seconds relative to the frame's start. It mirrors
// vcm.TaskSpan without importing it, keeping this package a leaf.
type Span struct {
	Resource string  `json:"resource"`
	Label    string  `json:"label"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// traceEvent is one Chrome trace-event record as exported. The format is
// the JSON "trace event format" that both chrome://tracing and Perfetto's
// legacy importer load: complete events (ph "X") with microsecond
// timestamps, instant events (ph "i") and metadata events (ph "M") naming
// processes and threads.
type traceEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"` // microseconds
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"` // instant-event scope
	Args  map[string]interface{} `json:"args,omitempty"`
}

// traceRec is the retained ring form of one trace event: fixed fields
// only, no per-event maps or boxing, so ring slots are reused without
// allocating. Args maps are materialized at Export time.
type traceRec struct {
	name    string
	phase   byte // 'X' complete, 'i' instant
	ts, dur float64
	pid     int
	tid     int
	frame   int
	attempt int
	// frame bars (tid == frameTID, phase 'X') carry the τ markers.
	isFrame        bool
	tau1ms, tau2ms float64
}

// DefaultTraceEventCap bounds the retained trace events of a TraceWriter
// created by NewTraceWriter: old enough history for a post-mortem
// snapshot (~2k frames of a typical schedule) without letting a
// long-serving process grow without bound. Oldest events are dropped
// first; Dropped counts them.
const DefaultTraceEventCap = 65536

// TraceWriter accumulates per-frame schedule spans into one whole-run
// timeline, bounded by a ring of the most recent events. Each simulated
// frame starts its own clock at zero; AddFrame shifts it by the
// caller-supplied offset so consecutive frames abut on a single time
// axis. Resources become named threads; tenants (sessions) become named
// processes, one Perfetto lane group per tenant.
type TraceWriter struct {
	mu      sync.Mutex
	cap     int
	ring    []traceRec // grows by append up to cap, then wraps
	next    int
	count   int
	dropped uint64

	procs     map[int]string // pid → process name
	procOrder []int
	nextPID   int
	pids      map[string]int         // session name → pid
	tids      map[int]map[string]int // pid → resource → tid
	laneOrder []lane

	dropCounter *Counter // optional feves_trace_events_dropped_total
}

type lane struct {
	pid int
	tid int
	res string
}

// NewTraceWriter creates an empty bounded trace (DefaultTraceEventCap).
func NewTraceWriter() *TraceWriter { return NewTraceWriterCap(DefaultTraceEventCap) }

// NewTraceWriterCap creates a trace retaining at most capEvents events
// (DefaultTraceEventCap when capEvents <= 0), oldest dropped first.
func NewTraceWriterCap(capEvents int) *TraceWriter {
	if capEvents <= 0 {
		capEvents = DefaultTraceEventCap
	}
	return &TraceWriter{
		cap:     capEvents,
		procs:   map[int]string{tracePID: "feves"},
		pids:    map[string]int{"": tracePID},
		tids:    map[int]map[string]int{},
		nextPID: tracePID,
	}
}

const (
	tracePID = 1 // unscoped (single-run) process lane
	frameTID = 0 // lane for whole-frame bars; resources start at 1
)

// SessionPID returns the process id of the named tenant lane, minting a
// new pid (and its Perfetto process name) on first use. The empty name is
// the unscoped lane, pid 1.
func (w *TraceWriter) SessionPID(name string) int {
	if w == nil {
		return tracePID
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if pid, ok := w.pids[name]; ok {
		return pid
	}
	w.nextPID++
	pid := w.nextPID
	w.pids[name] = pid
	w.procs[pid] = name
	w.procOrder = append(w.procOrder, pid)
	return pid
}

// tid returns the thread id of resource on the pid lane group, minting it
// on first use. Called with w.mu held.
func (w *TraceWriter) tid(pid int, resource string) int {
	m, ok := w.tids[pid]
	if !ok {
		m = map[string]int{}
		w.tids[pid] = m
	}
	id, ok := m[resource]
	if !ok {
		id = len(m) + 1
		m[resource] = id
		w.laneOrder = append(w.laneOrder, lane{pid: pid, tid: id, res: resource})
	}
	return id
}

// push appends one record to the ring, dropping the oldest past cap.
// Called with w.mu held.
func (w *TraceWriter) push(r traceRec) {
	if len(w.ring) < w.cap {
		w.ring = append(w.ring, r)
		w.next = len(w.ring) % w.cap
		w.count = len(w.ring)
		return
	}
	if w.count == w.cap { // full: overwrite the oldest
		w.dropped++
		if w.dropCounter != nil {
			w.dropCounter.Inc()
		}
	}
	w.ring[w.next] = r
	w.next = (w.next + 1) % w.cap
	if w.count < w.cap {
		w.count++
	}
}

// AddFrame appends one frame's schedule at the given run-time offset
// (both in seconds) on the pid lane group (<= 0 selects the unscoped
// lane): a whole-frame bar on the frame lane, one complete event per task
// span on its resource's lane, and τ1/τ2 instant markers. attempt tags a
// failover re-run's successful attempt (0 for a first-try frame).
func (w *TraceWriter) AddFrame(pid, frame, attempt int, offset, tau1, tau2, tot float64, spans []Span) {
	if pid <= 0 {
		pid = tracePID
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	us := func(s float64) float64 { return (offset + s) * 1e6 }
	w.push(traceRec{
		name: "frame", phase: 'X', ts: us(0), dur: tot * 1e6,
		pid: pid, tid: frameTID, frame: frame, attempt: attempt,
		isFrame: true, tau1ms: tau1 * 1e3, tau2ms: tau2 * 1e3,
	})
	for _, s := range spans {
		dur := (s.End - s.Start) * 1e6
		if dur < 0 {
			dur = 0
		}
		w.push(traceRec{
			name: s.Label, phase: 'X', ts: us(s.Start), dur: dur,
			pid: pid, tid: w.tid(pid, s.Resource), frame: frame, attempt: attempt,
		})
	}
	w.push(traceRec{name: "tau1", phase: 'i', ts: us(tau1), pid: pid, tid: frameTID, frame: frame, attempt: attempt})
	w.push(traceRec{name: "tau2", phase: 'i', ts: us(tau2), pid: pid, tid: frameTID, frame: frame, attempt: attempt})
}

// Frames returns the number of whole-frame bars currently retained.
func (w *TraceWriter) Frames() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	w.each(func(r *traceRec) {
		if r.isFrame {
			n++
		}
	})
	return n
}

// Dropped returns the number of events evicted by the ring bound so far.
func (w *TraceWriter) Dropped() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Cap returns the retained-event bound.
func (w *TraceWriter) Cap() int { return w.cap }

// SetDropCounter mirrors ring evictions into a metrics counter
// (feves_trace_events_dropped_total). Idempotent; safe to call from
// several scopes sharing the ring.
func (w *TraceWriter) SetDropCounter(c *Counter) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.dropCounter = c
	w.mu.Unlock()
}

// each visits the retained records oldest first. Called with w.mu held.
func (w *TraceWriter) each(f func(*traceRec)) {
	if w.count < w.cap {
		for i := 0; i < w.count; i++ {
			f(&w.ring[i])
		}
		return
	}
	for i := 0; i < w.count; i++ {
		f(&w.ring[(w.next+i)%w.cap])
	}
}

// Export serializes the retained trace as a Chrome trace-event JSON
// object ({"traceEvents": [...], "displayTimeUnit": "ms"}), prefixed with
// the process/thread-name metadata that makes Perfetto label the lanes —
// one process per tenant, one thread per device resource. Export does not
// clear the ring, so a serving process can snapshot the live timeline at
// any point without shutting down.
func (w *TraceWriter) Export(out io.Writer) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	meta := []traceEvent{
		{Name: "process_name", Phase: "M", PID: tracePID,
			Args: map[string]interface{}{"name": "feves"}},
		{Name: "thread_name", Phase: "M", PID: tracePID, TID: frameTID,
			Args: map[string]interface{}{"name": "frames"}},
		{Name: "thread_sort_index", Phase: "M", PID: tracePID, TID: frameTID,
			Args: map[string]interface{}{"sort_index": 0}},
	}
	for _, pid := range w.procOrder {
		meta = append(meta,
			traceEvent{Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]interface{}{"name": w.procs[pid]}},
			traceEvent{Name: "thread_name", Phase: "M", PID: pid, TID: frameTID,
				Args: map[string]interface{}{"name": "frames"}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: pid, TID: frameTID,
				Args: map[string]interface{}{"sort_index": 0}})
	}
	for _, ln := range w.laneOrder {
		meta = append(meta,
			traceEvent{Name: "thread_name", Phase: "M", PID: ln.pid, TID: ln.tid,
				Args: map[string]interface{}{"name": ln.res}},
			traceEvent{Name: "thread_sort_index", Phase: "M", PID: ln.pid, TID: ln.tid,
				Args: map[string]interface{}{"sort_index": ln.tid}})
	}
	events := meta
	w.each(func(r *traceRec) {
		ev := traceEvent{
			Name: r.name, Phase: string(rune(r.phase)), TS: r.ts,
			PID: r.pid, TID: r.tid,
		}
		args := map[string]interface{}{"frame": r.frame}
		if r.attempt > 0 {
			args["attempt"] = r.attempt
		}
		switch r.phase {
		case 'X':
			ev.Dur = r.dur
			if r.isFrame {
				args["tau1_ms"] = r.tau1ms
				args["tau2_ms"] = r.tau2ms
			}
		case 'i':
			ev.Scope = "p"
		}
		ev.Args = args
		events = append(events, ev)
	})
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}

// Sessions lists the tenant lane names currently minted (excluding the
// unscoped lane), sorted for stable output.
func (w *TraceWriter) Sessions() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.pids)-1)
	for name := range w.pids {
		if name != "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
