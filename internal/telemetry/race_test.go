package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentSessionScopes hammers one shared Telemetry through several
// ForSession scopes at once — the multi-tenant serving shape — while
// readers snapshot the trace ring, the flight document and the metrics
// exposition. Run under -race this pins down the locking discipline of
// the shared rings and the per-scope instrument caches.
func TestConcurrentSessionScopes(t *testing.T) {
	tel := &Telemetry{
		Metrics: NewRegistry(),
		Trace:   NewTraceWriterCap(512), // small: force ring wrap under load
		Flight:  NewFlightRecorder(16),
	}

	const tenants, frames = 4, 120
	var wg sync.WaitGroup
	for s := 0; s < tenants; s++ {
		scope := tel.ForSession(fmt.Sprintf("tenant-%d", s))
		wg.Add(1)
		go func(sc *Telemetry, id int) {
			defer wg.Done()
			spans := []Span{
				{Resource: "dev0.compute", Label: "kernel_me", Start: 0, End: 0.010},
				{Resource: "dev0.ce0", Label: "copy_sf", Start: 0.010, End: 0.012},
			}
			for f := 1; f <= frames; f++ {
				sc.FrameStart(f, false)
				sc.FrameSpans(f, f%3, 0.010, 0.015, 0.020, spans)
				sc.FrameEnd(FrameRecord{
					Frame: f, Attempt: f % 3, Tau1: 0.010, Tau2: 0.015, Tot: 0.020,
					PredTot: 0.019, M: []int{4, 2}, L: []int{3, 3},
					LP: LPSolveStats{Solves: 1, Pivots: 7},
				})
				sc.Audit(AuditRecord{Frame: f, Balancer: "lp", PredTot: 0.019, Measured: 0.020})
				switch f % 40 {
				case 10:
					sc.HealthTransition(f, 0, "healthy", "degraded", "tau1")
					sc.FrameRetry(f, 1, "tau1", []int{0})
				case 20:
					sc.Incident("device_down", f, 0, "test loss")
					_ = sc.CaptureBundle("pool_failover", f, "re-leased")
				}
			}
		}(scope, s)
	}

	// Concurrent readers: every introspection surface the endpoints serve.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tel.Trace.Export(io.Discard)
			_ = tel.Flight.Doc()
			_ = tel.Metrics.Expose()
			_ = tel.Metrics.Describe()
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()

	if got := tel.Trace.Sessions(); len(got) != tenants {
		t.Fatalf("trace grew %d tenant lanes, want %d: %v", len(got), tenants, got)
	}
	if tel.Trace.Dropped() == 0 {
		t.Fatal("512-event ring never wrapped under 4x120 frames — cap not enforced")
	}
	if got := len(tel.Flight.Bundles()); got != tenants*(frames/40) {
		t.Fatalf("captured %d bundles, want %d", got, tenants*(frames/40))
	}
}
