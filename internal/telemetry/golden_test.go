package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The JSONL event stream and the Perfetto export are consumed by external
// tools (jq pipelines, chrome://tracing, Perfetto), so their wire format is
// a compatibility surface: these golden tests pin the exact bytes —
// field names, field order, number formatting. Regenerate deliberately
// with  go test ./internal/telemetry -run Golden -update  after a schema
// change.
var update = flag.Bool("update", false, "rewrite the golden files")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden file.\ngot:\n%s\nwant:\n%s\n(if the change is intentional, regenerate with -update)",
			name, got, want)
	}
}

// fixedEvents is a deterministic event sequence covering every record type
// and the omitempty edges (intra frame without distributions, audit with
// and without drift).
func fixedEvents() []interface{} {
	return []interface{}{
		FrameStartEvent{Type: "frame_start", Frame: 0, Intra: true},
		FrameEndEvent{Type: "frame_end", Frame: 0, Intra: true, Bits: 91234, PSNRY: 39.25},
		FrameStartEvent{Type: "frame_start", Frame: 1},
		FrameEndEvent{
			Type: "frame_end", Frame: 1,
			Tau1: 0.0125, Tau2: 0.0175, Tot: 0.021,
			PredTau1: 0.012, PredTau2: 0.017, PredTot: 0.0205,
			SchedOverhead: 0.0004, RStarDev: 0,
			M: []int{40, 28}, L: []int{40, 28}, S: []int{34, 34},
			ModME: 0.009, ModINT: 0.003, ModSME: 0.006, ModRStar: 0.0035,
			Bits: 45678, PSNRY: 38.5,
		},
		AuditEvent{
			Type: "balancer_audit", Frame: 1, Balancer: "lp",
			PredTot: 0.0205, Measured: 0.021, AbsErr: 0.0005, RelErr: 0.0238,
			Drift: []DeviceDrift{
				{Device: 0, Module: "ME", Before: 0.00013, After: 0.00012, Rel: 0.0769},
				{Device: 1, Module: "SME", After: 0.0002},
			},
		},
		MarkEvent{Type: "scene_cut", Frame: 2},
		AuditEvent{Type: "balancer_audit", Frame: 2, Balancer: "equidistant",
			PredTot: 0.02, Measured: 0.019, AbsErr: 0.001, RelErr: 0.0526},
		MarkEvent{Type: "idr", Frame: 3},
	}
}

func TestEventLogGolden(t *testing.T) {
	var buf bytes.Buffer
	log := NewEventLog(&buf)
	events := fixedEvents()
	for _, e := range events {
		log.Emit(e)
	}
	if log.Count() != len(events) {
		t.Fatalf("emitted %d events, logged %d", len(events), log.Count())
	}
	// Every line must be independently parseable JSON — the property jq/
	// line-oriented consumers rely on.
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != len(events) {
		t.Fatalf("%d JSONL lines for %d events", len(lines), len(events))
	}
	for i, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if _, ok := m["type"]; !ok {
			t.Fatalf("line %d has no type tag: %s", i, line)
		}
	}
	goldenCompare(t, "events.golden.jsonl", buf.Bytes())
}

func TestPerfettoGolden(t *testing.T) {
	w := NewTraceWriter()
	w.AddFrame(0, 0, 0, 0, 0.010, 0.015, 0.020, []Span{
		{Resource: "GPU_K", Label: "ME@0", Start: 0.001, End: 0.008},
		{Resource: "GPU_K", Label: "INT@0", Start: 0.008, End: 0.0095},
		{Resource: "GPU_K.h2d", Label: "CF.h2d@0", Start: 0, End: 0.001},
		{Resource: "CPU_H#0", Label: "ME@1", Start: 0, End: 0.009},
	})
	w.AddFrame(0, 1, 0, 0.020, 0.009, 0.014, 0.019, []Span{
		{Resource: "GPU_K", Label: "SME@0", Start: 0.010, End: 0.0135},
		{Resource: "GPU_K", Label: "R*@0", Start: 0.014, End: 0.019},
	})
	if w.Frames() != 2 {
		t.Fatalf("Frames() = %d, want 2", w.Frames())
	}
	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must stay loadable: valid JSON with the two top-level keys
	// the trace-event format requires.
	var doc struct {
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("export missing trace-event structure: unit %q, %d events",
			doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	goldenCompare(t, "perfetto.golden.json", buf.Bytes())
}
