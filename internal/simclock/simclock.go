// Package simclock is a deterministic discrete-event engine used to model
// heterogeneous-device timelines in the FEVES reproduction. A simulation
// consists of resources (device compute streams and copy engines) that
// execute tasks serially in submission order — the semantics of CUDA
// streams — with explicit cross-task dependencies, from which the engine
// derives start/end times and the overall makespan.
//
// The engine is virtual-time only: task durations come from calibrated
// device profiles, so experiment results are reproducible on any machine.
// Tasks may carry an optional functional payload (the real encoding kernel)
// that runs when the task is scheduled, which is how functional and timing
// simulation stay in lockstep.
package simclock

import (
	"errors"
	"fmt"
)

// Time is virtual time in seconds.
type Time = float64

// ErrDeadlock is returned by Run when dependencies and per-resource FIFO
// order are mutually inconsistent.
var ErrDeadlock = errors.New("simclock: deadlock (circular dependency across resource queues)")

// Resource is a serial execution unit: it runs its tasks one at a time in
// the order they were submitted.
type Resource struct {
	Name  string
	queue []*Task
	head  int
	avail Time
}

// Task is one unit of work on a resource.
type Task struct {
	Label string
	Res   *Resource
	Dur   Time
	Start Time
	End   Time

	deps []*Task
	fn   func()
	done bool
}

// Done reports whether the task has executed.
func (t *Task) Done() bool { return t.done }

// Sim is one simulation instance. The zero value is not usable; create with
// New.
type Sim struct {
	resources []*Resource
	tasks     []*Task
	free      []*Task // recycled by Reset, reissued by Add
	now       Time
}

// New creates an empty simulation whose clock starts at the given origin
// (tasks never start before it).
func New(origin Time) *Sim { return &Sim{now: origin} }

// Origin returns the simulation start time.
func (s *Sim) Origin() Time { return s.now }

// Reset rewinds the simulation to an empty state at the given origin,
// keeping every registered resource (with an empty queue) and recycling
// all task objects into a free list that Add draws from — so a caller
// running one simulation per frame reaches a steady state with no
// allocations. Task pointers obtained before the Reset are invalid
// afterwards: they may be reissued, re-labelled, by later Adds.
func (s *Sim) Reset(origin Time) {
	s.free = append(s.free, s.tasks...)
	s.tasks = s.tasks[:0]
	for _, r := range s.resources {
		r.queue = r.queue[:0]
		r.head = 0
		r.avail = origin
	}
	s.now = origin
}

// NewResource registers a serial resource.
func (s *Sim) NewResource(name string) *Resource {
	r := &Resource{Name: name, avail: s.now}
	s.resources = append(s.resources, r)
	return r
}

// Add submits a task of the given duration to a resource, to run after all
// deps have finished (nil deps are ignored). Submission order fixes the
// execution order on each resource.
func (s *Sim) Add(res *Resource, label string, dur Time, deps ...*Task) *Task {
	if res == nil {
		panic("simclock: Add on nil resource")
	}
	if dur < 0 {
		panic(fmt.Sprintf("simclock: negative duration %v for %q", dur, label))
	}
	var t *Task
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free = s.free[:n-1]
		// Keep the recycled deps backing array; the struct literal below
		// would discard it.
		deps0 := t.deps[:0]
		*t = Task{Label: label, Res: res, Dur: dur, deps: deps0}
	} else {
		t = &Task{Label: label, Res: res, Dur: dur}
	}
	for _, d := range deps {
		if d != nil {
			t.deps = append(t.deps, d)
		}
	}
	res.queue = append(res.queue, t)
	s.tasks = append(s.tasks, t)
	return t
}

// OnRun attaches a functional payload executed exactly once when the task
// is scheduled. Payloads run in deterministic schedule order.
func (t *Task) OnRun(fn func()) *Task {
	t.fn = fn
	return t
}

// Run executes every submitted task and returns the makespan (the latest
// end time). It is deterministic: ties are broken by resource registration
// order.
func (s *Sim) Run() (Time, error) {
	remaining := len(s.tasks)
	makespan := s.now
	for remaining > 0 {
		progress := false
		for _, r := range s.resources {
			for r.head < len(r.queue) {
				t := r.queue[r.head]
				ready := true
				start := r.avail
				for _, d := range t.deps {
					if !d.done {
						ready = false
						break
					}
					if d.End > start {
						start = d.End
					}
				}
				if !ready {
					break
				}
				t.Start = start
				t.End = start + t.Dur
				r.avail = t.End
				if t.fn != nil {
					t.fn()
				}
				t.done = true
				r.head++
				remaining--
				progress = true
				if t.End > makespan {
					makespan = t.End
				}
			}
		}
		if !progress {
			return 0, ErrDeadlock
		}
	}
	return makespan, nil
}

// MaxEnd returns the latest end time among the given tasks (the paper's
// synchronization points τ1, τ2 are computed this way); nil tasks are
// skipped. All tasks must have run.
func MaxEnd(tasks ...*Task) Time {
	var m Time
	for _, t := range tasks {
		if t == nil {
			continue
		}
		if !t.done {
			panic(fmt.Sprintf("simclock: MaxEnd on unfinished task %q", t.Label))
		}
		if t.End > m {
			m = t.End
		}
	}
	return m
}

// Tasks returns all submitted tasks in submission order (for tracing).
func (s *Sim) Tasks() []*Task { return s.tasks }
