//go:build !race

package simclock

const raceEnabled = false
