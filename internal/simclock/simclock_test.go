package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerialResource(t *testing.T) {
	s := New(0)
	r := s.NewResource("compute")
	a := s.Add(r, "a", 2)
	b := s.Add(r, "b", 3)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || a.End != 2 || b.Start != 2 || b.End != 5 {
		t.Fatalf("a=[%v,%v] b=[%v,%v]", a.Start, a.End, b.Start, b.End)
	}
	if mk != 5 {
		t.Fatalf("makespan %v", mk)
	}
}

func TestParallelResourcesOverlap(t *testing.T) {
	s := New(0)
	r1 := s.NewResource("compute")
	r2 := s.NewResource("copy")
	a := s.Add(r1, "kernel", 4)
	b := s.Add(r2, "transfer", 3)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || b.Start != 0 {
		t.Fatal("independent tasks on distinct resources must overlap")
	}
	if mk != 4 {
		t.Fatalf("makespan %v, want 4", mk)
	}
}

func TestDependencyOrdering(t *testing.T) {
	s := New(0)
	r1 := s.NewResource("copyH2D")
	r2 := s.NewResource("compute")
	in := s.Add(r1, "CF->ME", 2)
	k := s.Add(r2, "ME", 5, in)
	out := s.Add(r1, "MV->host", 1, k)
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if k.Start != 2 {
		t.Fatalf("kernel started at %v before its input arrived", k.Start)
	}
	if out.Start != 7 {
		t.Fatalf("output transfer started at %v, want 7", out.Start)
	}
	if mk != 8 {
		t.Fatalf("makespan %v", mk)
	}
}

func TestSingleCopyEngineSerializesDirections(t *testing.T) {
	// With one copy engine, an H2D and a D2H transfer must serialize even
	// though they are logically independent — the paper's Fig. 4 scenario.
	s := New(0)
	ce := s.NewResource("copy-engine")
	h2d := s.Add(ce, "h2d", 3)
	d2h := s.Add(ce, "d2h", 3)
	mk, _ := s.Run()
	if d2h.Start != h2d.End {
		t.Fatal("single copy engine must serialize transfers")
	}
	if mk != 6 {
		t.Fatalf("makespan %v", mk)
	}
}

func TestDualCopyEnginesOverlapDirections(t *testing.T) {
	s := New(0)
	up := s.NewResource("copy-h2d")
	down := s.NewResource("copy-d2h")
	a := s.Add(up, "h2d", 3)
	b := s.Add(down, "d2h", 3)
	mk, _ := s.Run()
	if a.Start != 0 || b.Start != 0 || mk != 3 {
		t.Fatal("dual copy engines must overlap opposite directions")
	}
}

func TestOriginOffset(t *testing.T) {
	s := New(10)
	r := s.NewResource("r")
	a := s.Add(r, "a", 1)
	mk, _ := s.Run()
	if a.Start != 10 || mk != 11 {
		t.Fatalf("origin not honoured: start %v makespan %v", a.Start, mk)
	}
}

func TestOnRunPayloadOrder(t *testing.T) {
	s := New(0)
	r := s.NewResource("r")
	var order []string
	a := s.Add(r, "a", 1).OnRun(func() { order = append(order, "a") })
	s.Add(r, "b", 1, a).OnRun(func() { order = append(order, "b") })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("payload order %v", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Two resources whose FIFO orders contradict the dependency edges.
	s := New(0)
	r1 := s.NewResource("r1")
	r2 := s.NewResource("r2")
	// r1 queue: a then b; r2 queue: c then d; a depends on d, d depends... build cycle:
	var a, c *Task
	a = &Task{} // placeholder to allow forward reference
	_ = a
	c = s.Add(r2, "c", 1) // c first in r2
	_ = c
	x := s.Add(r1, "x", 1, c) // fine
	// y in r2 depends on z which is queued behind it in r2 — impossible.
	z := &Task{Label: "z", Res: r2, Dur: 1}
	y := s.Add(r2, "y", 1, z)
	_ = y
	r2.queue = append(r2.queue, z)
	s.tasks = append(s.tasks, z)
	_ = x
	if _, err := s.Run(); err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestAddPanics(t *testing.T) {
	s := New(0)
	r := s.NewResource("r")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative duration did not panic")
			}
		}()
		s.Add(r, "bad", -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil resource did not panic")
			}
		}()
		s.Add(nil, "bad", 1)
	}()
}

func TestMaxEnd(t *testing.T) {
	s := New(0)
	r1 := s.NewResource("r1")
	r2 := s.NewResource("r2")
	a := s.Add(r1, "a", 2)
	b := s.Add(r2, "b", 5)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if MaxEnd(a, b, nil) != 5 {
		t.Fatal("MaxEnd wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MaxEnd on unfinished task did not panic")
			}
		}()
		MaxEnd(&Task{Label: "pending"})
	}()
}

// TestInvariantsQuick builds random well-formed DAGs (deps only on earlier
// submissions) and checks the core invariants: no task starts before its
// deps end, resources never overlap, makespan is the max end.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		nres := 1 + rng.Intn(4)
		res := make([]*Resource, nres)
		for i := range res {
			res[i] = s.NewResource("r")
		}
		var tasks []*Task
		for i := 0; i < 30; i++ {
			var deps []*Task
			for d := 0; d < rng.Intn(3) && len(tasks) > 0; d++ {
				deps = append(deps, tasks[rng.Intn(len(tasks))])
			}
			tasks = append(tasks, s.Add(res[rng.Intn(nres)], "t", float64(rng.Intn(10)), deps...))
		}
		mk, err := s.Run()
		if err != nil {
			return false
		}
		var maxEnd Time
		perRes := map[*Resource][]*Task{}
		for _, tk := range tasks {
			if tk.End > maxEnd {
				maxEnd = tk.End
			}
			for _, d := range tk.deps {
				if tk.Start < d.End {
					return false
				}
			}
			perRes[tk.Res] = append(perRes[tk.Res], tk)
		}
		if mk != maxEnd {
			return false
		}
		for _, list := range perRes {
			for i := 1; i < len(list); i++ {
				if list[i].Start < list[i-1].End {
					return false // resource overlap or FIFO violation
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRecyclesTasks(t *testing.T) {
	s := New(0)
	r := s.NewResource("r")
	a := s.Add(r, "a", 2)
	b := s.Add(r, "b", 3, a)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Reset(5)
	if s.Origin() != 5 {
		t.Fatalf("origin %v after Reset(5)", s.Origin())
	}
	if len(s.Tasks()) != 0 {
		t.Fatalf("%d tasks survive Reset", len(s.Tasks()))
	}
	// The recycled objects must come back clean: no stale deps, done flag
	// or payload from their previous life.
	c := s.Add(r, "c", 1)
	d := s.Add(r, "d", 1, c)
	if c != b || d != a {
		t.Fatal("free list not reissuing recycled tasks (LIFO)")
	}
	if c.Done() || len(c.deps) != 0 || c.fn != nil {
		t.Fatal("recycled task carries stale state")
	}
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != 5 || d.End != 7 || mk != 7 {
		t.Fatalf("post-Reset schedule c=[%v,%v] d=[%v,%v] mk=%v",
			c.Start, c.End, d.Start, d.End, mk)
	}
}

func TestResetSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	s := New(0)
	r1 := s.NewResource("compute")
	r2 := s.NewResource("copy")
	frame := func() {
		in := s.Add(r2, "h2d", 1)
		k := s.Add(r1, "kernel", 3, in)
		s.Add(r2, "d2h", 1, k)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		s.Reset(0)
	}
	frame() // warm the free list and queues
	if n := testing.AllocsPerRun(50, frame); n != 0 {
		t.Fatalf("steady-state Reset/Add/Run loop allocates %v per frame, want 0", n)
	}
}
