// Package teleflag wires the standard observability flags shared by every
// FEVES command-line tool (-metrics-addr, -events, -perfetto) into a
// feves.Observer, so the CLIs stay one-liner thin and agree on flag names
// and semantics.
package teleflag

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"feves"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	metricsAddr  string
	events       stringList
	perfetto     string
	traceEvents  int
	flightFrames int
}

// stringList is a repeatable string flag: each occurrence appends.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// Register declares -metrics-addr, -events, -perfetto, -trace-events and
// -flight-frames on the default flag set. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.metricsAddr, "metrics-addr", "",
		"serve Prometheus metrics over HTTP at this address, e.g. :9090 ('' = off)")
	flag.Var(&f.events, "events",
		"write the JSONL telemetry event stream (frame timings, balancer audits) to this file ('' = off); "+
			"feves-trace instead reads it, and accepts the flag repeated — one file per fleet node — to merge")
	flag.StringVar(&f.perfetto, "perfetto", "",
		"write the whole run's schedule as Chrome trace-event JSON (Perfetto-loadable) to this file ('' = off)")
	flag.IntVar(&f.traceEvents, "trace-events", 0,
		"trace ring capacity in events; the oldest are overwritten beyond it and counted in feves_trace_events_dropped_total (0 = 65536)")
	flag.IntVar(&f.flightFrames, "flight-frames", 0,
		"flight recorder depth: how many recent frames a post-mortem bundle captures (0 = 64)")
	return f
}

// PerfettoPath returns the -perfetto flag value ('' when unset), for tools
// that render trace output themselves instead of going through Observer.
func (f *Flags) PerfettoPath() string { return f.perfetto }

// EventsPaths returns every -events occurrence in flag order, for tools
// (feves-trace) that read event streams instead of writing them.
func (f *Flags) EventsPaths() []string { return f.events }

// TraceEventCap returns the -trace-events flag value (0 = default cap).
func (f *Flags) TraceEventCap() int { return f.traceEvents }

// FlightFrames returns the -flight-frames flag value (0 = default depth).
func (f *Flags) FlightFrames() int { return f.flightFrames }

// Enabled reports whether any observability flag was set.
func (f *Flags) Enabled() bool {
	return f.metricsAddr != "" || len(f.events) > 0 || f.perfetto != ""
}

// Observer builds the Observer the flags describe, or nil when none was
// requested. The returned close function flushes the Perfetto trace, stops
// the metrics endpoint and closes the opened files; call it once at exit.
func (f *Flags) Observer() (*feves.Observer, func() error, error) {
	noop := func() error { return nil }
	if !f.Enabled() {
		return nil, noop, nil
	}
	var oc feves.ObserverConfig
	var files []*os.File
	oc.MetricsAddr = f.metricsAddr
	oc.TraceEventCap = f.traceEvents
	oc.FlightFrames = f.flightFrames
	if len(f.events) > 1 {
		return nil, noop, fmt.Errorf(
			"writing supports a single -events file (%d given); merging several is feves-trace's reading mode", len(f.events))
	}
	if len(f.events) == 1 {
		ef, err := os.Create(f.events[0])
		if err != nil {
			return nil, noop, err
		}
		files = append(files, ef)
		oc.Events = ef
	}
	if f.perfetto != "" {
		pf, err := os.Create(f.perfetto)
		if err != nil {
			closeAll(files)
			return nil, noop, err
		}
		files = append(files, pf)
		oc.Perfetto = pf
	}
	obs, err := feves.NewObserver(oc)
	if err != nil {
		closeAll(files)
		return nil, noop, err
	}
	if addr := obs.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "telemetry: serving metrics at http://%s/metrics\n", addr)
	}
	closeFn := func() error {
		err := obs.Close()
		if e := closeAll(files); err == nil {
			err = e
		}
		return err
	}
	return obs, closeFn, nil
}

func closeAll(files []*os.File) error {
	var err error
	for _, f := range files {
		if e := f.Close(); err == nil {
			err = e
		}
	}
	return err
}
