package teleflag

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestFlagsObserver walks the flag → Observer wiring end to end on the
// process flag set: disabled when nothing is requested, file-backed event
// and Perfetto sinks when asked for, and clean failure (with the already
// opened files closed) when a path cannot be created. Register may only
// run once per process, so every scenario shares one Flags value.
func TestFlagsObserver(t *testing.T) {
	f := Register()
	if f.Enabled() {
		t.Fatal("flags report enabled before any was set")
	}
	obs, closeFn, err := f.Observer()
	if obs != nil || err != nil {
		t.Fatalf("disabled observer: got (%v, %v), want (nil, nil)", obs, err)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("noop close: %v", err)
	}

	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	perfetto := filepath.Join(dir, "trace.json")
	set := func(name, value string) {
		t.Helper()
		if err := flag.Set(name, value); err != nil {
			t.Fatalf("set -%s: %v", name, err)
		}
	}
	set("events", events)
	set("perfetto", perfetto)
	set("trace-events", "128")
	set("flight-frames", "16")
	if !f.Enabled() {
		t.Fatal("flags report disabled after -events was set")
	}
	if f.PerfettoPath() != perfetto {
		t.Fatalf("PerfettoPath %q, want %q", f.PerfettoPath(), perfetto)
	}
	if f.TraceEventCap() != 128 || f.FlightFrames() != 16 {
		t.Fatalf("caps %d/%d, want 128/16", f.TraceEventCap(), f.FlightFrames())
	}
	obs, closeFn, err = f.Observer()
	if err != nil {
		t.Fatal(err)
	}
	if obs == nil {
		t.Fatal("enabled flags built no observer")
	}
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, p := range []string{events, perfetto} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sink file missing: %v", err)
		}
	}

	// -events repeats accumulate (feves-trace's merge input)...
	set("events", filepath.Join(dir, "node1.jsonl"))
	if got := f.EventsPaths(); len(got) != 2 {
		t.Fatalf("EventsPaths after a repeat = %v, want 2 entries", got)
	}
	// ...but writing through Observer only supports one sink.
	if _, _, err := f.Observer(); err == nil {
		t.Fatal("multiple -events files accepted for writing")
	}

	// A path that cannot be created must fail cleanly...
	f.events = nil
	set("events", filepath.Join(dir, "missing", "events.jsonl"))
	if _, _, err := f.Observer(); err == nil {
		t.Fatal("uncreatable -events path accepted")
	}
	// ...including when the failure comes second, after -events opened.
	f.events = nil
	set("events", events)
	set("perfetto", filepath.Join(dir, "missing", "trace.json"))
	if _, _, err := f.Observer(); err == nil {
		t.Fatal("uncreatable -perfetto path accepted")
	}
}
