// Package video supplies the test content of the FEVES reproduction. The
// paper evaluates on the 1080p sequences "Toys and Calendar" and "Rolling
// Tomatoes", which are not redistributable; since FSBM motion estimation
// makes the encoding workload content-independent (as the paper itself
// notes), this package substitutes deterministic synthetic sequences —
// textured backgrounds with moving objects, global pan and sensor noise —
// plus raw planar YUV 4:2:0 file I/O for encoding real footage.
package video

import (
	"fmt"
	"io"

	"feves/internal/h264"
)

// Source produces a sequence of frames.
type Source interface {
	// Next returns the next frame, or io.EOF when the sequence ends.
	Next() (*h264.Frame, error)
	// Size returns the frame dimensions.
	Size() (w, h int)
}

// xorshift is a small deterministic PRNG so sequences are reproducible
// across runs and platforms without pulling in math/rand state semantics.
type xorshift uint64

func (s *xorshift) next() uint64 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return x
}

func (s *xorshift) intn(n int) int { return int(s.next() % uint64(n)) }

// Synthetic generates a deterministic scene: a textured background panning
// globally, several moving rectangles of distinct intensity, and optional
// per-frame noise. It exercises the same inter-loop load as natural content
// under full-search ME.
type Synthetic struct {
	W, H    int
	N       int // total frames; 0 means unbounded
	Noise   int // ± amplitude of per-pixel noise, 0 disables
	PanX    int // background pan in 1/4 pixels per frame
	PanY    int
	seed    uint64
	frame   int
	bg      []uint8
	objects []object
}

type object struct {
	x, y, w, h float64
	vx, vy     float64
	val        uint8
}

// NewSynthetic creates a generator for an n-frame w×h sequence. The seed
// fixes the background texture, object set and noise.
func NewSynthetic(w, h, n int, seed uint64) *Synthetic {
	if w <= 0 || h <= 0 || w%h264.MBSize != 0 || h%h264.MBSize != 0 {
		panic(fmt.Sprintf("video: size %dx%d not a multiple of %d", w, h, h264.MBSize))
	}
	s := &Synthetic{W: w, H: h, N: n, Noise: 2, PanX: 2, PanY: 1, seed: seed}
	rng := xorshift(seed*2654435761 + 1)
	// Smooth-ish background: random base quantized to gentle blocks so it
	// has texture but also gradients.
	s.bg = make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 100 + 40*intSin(x*7/w+y*5/h) + rng.intn(24)
			if v > 255 {
				v = 255
			}
			s.bg[y*w+x] = uint8(v)
		}
	}
	nObj := 3 + rng.intn(3)
	for i := 0; i < nObj; i++ {
		s.objects = append(s.objects, object{
			x:   float64(rng.intn(w)),
			y:   float64(rng.intn(h)),
			w:   float64(8 + rng.intn(w/4)),
			h:   float64(8 + rng.intn(h/4)),
			vx:  float64(rng.intn(9)-4) / 2,
			vy:  float64(rng.intn(9)-4) / 2,
			val: uint8(30 + rng.intn(200)),
		})
	}
	return s
}

func intSin(x int) int {
	// tiny integer pseudo-sine over period 8
	tab := [8]int{0, 2, 3, 2, 0, -2, -3, -2}
	return tab[((x%8)+8)%8]
}

// Size returns the frame dimensions.
func (s *Synthetic) Size() (int, int) { return s.W, s.H }

// FrameAt deterministically renders frame index t.
func (s *Synthetic) FrameAt(t int) *h264.Frame {
	f := h264.NewFrame(s.W, s.H)
	f.Poc = t
	panX, panY := t*s.PanX/4, t*s.PanY/4
	for y := 0; y < s.H; y++ {
		row := f.Y.Row(y)
		sy := ((y+panY)%s.H + s.H) % s.H
		for x := 0; x < s.W; x++ {
			sx := ((x+panX)%s.W + s.W) % s.W
			row[x] = s.bg[sy*s.W+sx]
		}
	}
	for _, o := range s.objects {
		ox := int(o.x + float64(t)*o.vx)
		oy := int(o.y + float64(t)*o.vy)
		for y := oy; y < oy+int(o.h); y++ {
			yy := ((y % s.H) + s.H) % s.H
			for x := ox; x < ox+int(o.w); x++ {
				xx := ((x % s.W) + s.W) % s.W
				f.Y.Set(xx, yy, o.val)
			}
		}
	}
	if s.Noise > 0 {
		rng := xorshift(s.seed ^ uint64(t)*0x9E3779B97F4A7C15)
		for y := 0; y < s.H; y++ {
			row := f.Y.Row(y)
			for x := range row {
				v := int(row[x]) + rng.intn(2*s.Noise+1) - s.Noise
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				row[x] = uint8(v)
			}
		}
	}
	// Chroma: slow gradients tied to the pan so chroma prediction works too.
	for y := 0; y < s.H/2; y++ {
		cb, cr := f.Cb.Row(y), f.Cr.Row(y)
		for x := 0; x < s.W/2; x++ {
			cb[x] = uint8(112 + intSin((x+panX/2)*5/(s.W/2))*8)
			cr[x] = uint8(124 + intSin((y+panY/2)*3/(s.H/2))*8)
		}
	}
	f.ExtendBorders()
	return f
}

// Next implements Source.
func (s *Synthetic) Next() (*h264.Frame, error) {
	if s.N > 0 && s.frame >= s.N {
		return nil, io.EOF
	}
	f := s.FrameAt(s.frame)
	s.frame++
	return f, nil
}

// Reset rewinds the generator to frame 0.
func (s *Synthetic) Reset() { s.frame = 0 }

// YUVReader reads raw planar I420 frames from a stream.
type YUVReader struct {
	r    io.Reader
	w, h int
	buf  []uint8
	poc  int
}

// NewYUVReader wraps r as a source of w×h I420 frames.
func NewYUVReader(r io.Reader, w, h int) (*YUVReader, error) {
	if w <= 0 || h <= 0 || w%h264.MBSize != 0 || h%h264.MBSize != 0 {
		return nil, fmt.Errorf("video: size %dx%d not a multiple of %d", w, h, h264.MBSize)
	}
	return &YUVReader{r: r, w: w, h: h, buf: make([]uint8, w*h*3/2)}, nil
}

// Size returns the frame dimensions.
func (y *YUVReader) Size() (int, int) { return y.w, y.h }

// Next reads the next frame; io.EOF at a clean frame boundary ends the
// sequence, a partial frame is an error.
func (y *YUVReader) Next() (*h264.Frame, error) {
	n, err := io.ReadFull(y.r, y.buf)
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("video: short frame read (%d of %d bytes): %w", n, len(y.buf), err)
	}
	f := h264.NewFrame(y.w, y.h)
	f.Poc = y.poc
	y.poc++
	if err := f.LoadYUV(y.buf); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteYUV appends a frame as raw planar I420 to w.
func WriteYUV(w io.Writer, f *h264.Frame) error {
	_, err := w.Write(f.PackedYUV())
	return err
}

// MotionClass parameterizes the synthetic generator to approximate broad
// content categories.
type MotionClass int

const (
	// LowMotion: slow global pan, small object velocities — in the spirit
	// of the paper's "Toys and Calendar" sequence.
	LowMotion MotionClass = iota
	// MediumMotion: the default mixed scene.
	MediumMotion
	// HighMotion: fast pan and fast objects — in the spirit of "Rolling
	// Tomatoes".
	HighMotion
)

// NewSyntheticClass builds a generator tuned to the motion class.
func NewSyntheticClass(w, h, n int, seed uint64, class MotionClass) *Synthetic {
	s := NewSynthetic(w, h, n, seed)
	switch class {
	case LowMotion:
		s.PanX, s.PanY = 1, 0
		s.Noise = 1
		for i := range s.objects {
			s.objects[i].vx /= 4
			s.objects[i].vy /= 4
		}
	case HighMotion:
		s.PanX, s.PanY = 9, 5
		s.Noise = 3
		for i := range s.objects {
			s.objects[i].vx *= 3
			s.objects[i].vy *= 3
		}
	}
	return s
}

// ToysAndCalendar returns a low-motion stand-in for the paper's "Toys and
// Calendar" 1080p test sequence (not redistributable; see DESIGN.md).
func ToysAndCalendar(w, h, n int) *Synthetic {
	return NewSyntheticClass(w, h, n, 0x7045, LowMotion)
}

// RollingTomatoes returns a high-motion stand-in for the paper's "Rolling
// Tomatoes" sequence.
func RollingTomatoes(w, h, n int) *Synthetic {
	return NewSyntheticClass(w, h, n, 0x707, HighMotion)
}
