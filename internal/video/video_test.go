package video

import (
	"bytes"
	"io"

	"feves/internal/h264"
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic(64, 48, 3, 42)
	b := NewSynthetic(64, 48, 3, 42)
	for i := 0; i < 3; i++ {
		fa, errA := a.Next()
		fb, errB := b.Next()
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if !fa.Equal(fb) {
			t.Fatalf("frame %d differs between identically seeded generators", i)
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a := NewSynthetic(64, 48, 1, 1)
	b := NewSynthetic(64, 48, 1, 2)
	fa, _ := a.Next()
	fb, _ := b.Next()
	if fa.Equal(fb) {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestSyntheticMotionBetweenFrames(t *testing.T) {
	s := NewSynthetic(64, 48, 2, 7)
	f0, _ := s.Next()
	f1, _ := s.Next()
	if f0.Equal(f1) {
		t.Fatal("consecutive frames identical — no motion to estimate")
	}
}

func TestSyntheticEOF(t *testing.T) {
	s := NewSynthetic(32, 32, 2, 1)
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	s.Reset()
	if _, err := s.Next(); err != nil {
		t.Fatal("Reset did not rewind")
	}
}

func TestSyntheticFrameAtMatchesNext(t *testing.T) {
	s := NewSynthetic(32, 32, 5, 9)
	var frames []int
	for i := 0; i < 5; i++ {
		f, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f.Poc)
		if !f.Equal(s.FrameAt(i)) {
			t.Fatalf("FrameAt(%d) differs from streamed frame", i)
		}
	}
	_ = frames
}

func TestSyntheticPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSynthetic(60, 48, 1, 1)
}

func TestSizeAccessors(t *testing.T) {
	s := NewSynthetic(64, 32, 1, 1)
	if w, h := s.Size(); w != 64 || h != 32 {
		t.Fatalf("Size = %dx%d", w, h)
	}
}

func TestYUVRoundTrip(t *testing.T) {
	s := NewSynthetic(48, 32, 3, 5)
	var buf bytes.Buffer
	var originals []*h264.Frame
	for {
		f, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		originals = append(originals, f)
		if err := WriteYUV(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewYUVReader(&buf, 48, 32)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := r.Size(); w != 48 || h != 32 {
		t.Fatalf("reader size %dx%d", w, h)
	}
	i := 0
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.PackedYUV(), originals[i].PackedYUV()) {
			t.Fatalf("frame %d did not round-trip", i)
		}
		if f.Poc != i {
			t.Fatalf("frame %d has Poc %d", i, f.Poc)
		}
		i++
	}
	if i != 3 {
		t.Fatalf("read %d frames, want 3", i)
	}
}

func TestYUVReaderPartialFrame(t *testing.T) {
	data := make([]byte, 48*32*3/2+10) // one frame + 10 stray bytes
	r, err := NewYUVReader(bytes.NewReader(data), 48, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("partial frame should be an error, got %v", err)
	}
}

func TestYUVReaderBadSize(t *testing.T) {
	if _, err := NewYUVReader(bytes.NewReader(nil), 30, 30); err == nil {
		t.Fatal("expected error for non-MB-multiple size")
	}
}

func TestMotionClasses(t *testing.T) {
	const w, h = 64, 48
	diff := func(s *Synthetic) int {
		a, b := s.FrameAt(0), s.FrameAt(1)
		d := 0
		for y := 0; y < h; y++ {
			ra, rb := a.Y.Row(y), b.Y.Row(y)
			for x := range ra {
				v := int(ra[x]) - int(rb[x])
				if v < 0 {
					v = -v
				}
				d += v
			}
		}
		return d
	}
	low := diff(NewSyntheticClass(w, h, 2, 5, LowMotion))
	med := diff(NewSyntheticClass(w, h, 2, 5, MediumMotion))
	high := diff(NewSyntheticClass(w, h, 2, 5, HighMotion))
	if !(low < med && med < high) {
		t.Fatalf("motion ordering violated: low=%d med=%d high=%d", low, med, high)
	}
}

func TestNamedPresets(t *testing.T) {
	tc := ToysAndCalendar(64, 48, 3)
	rt := RollingTomatoes(64, 48, 3)
	f1, err := tc.Next()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := rt.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f1.Equal(f2) {
		t.Fatal("presets should produce different content")
	}
	// Determinism across constructions.
	if !ToysAndCalendar(64, 48, 3).FrameAt(0).Equal(f1) {
		t.Fatal("preset not deterministic")
	}
}
