package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"feves/internal/device"
	"feves/internal/h264/codec"
	"feves/internal/telemetry"
	"feves/internal/vcm"
)

// runFrames simulates n frames on SysHK with the given sink attached.
func runFrames(t *testing.T, tel *telemetry.Telemetry, n, intraPeriod int) {
	t.Helper()
	fw, err := New(Options{
		Platform: device.SysHK(),
		Codec: codec.Config{Width: 640, Height: 352, SearchRange: 16,
			NumRF: 1, IQP: 27, PQP: 28, IntraPeriod: intraPeriod},
		Mode:      vcm.TimingOnly,
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := fw.EncodeNext(nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameLoopEmitsEventsAndMetrics(t *testing.T) {
	var events bytes.Buffer
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Events:  telemetry.NewEventLog(&events),
		Trace:   telemetry.NewTraceWriter(),
	}
	const frames = 8
	runFrames(t, tel, frames, 0)

	var starts, ends, audits int
	var sawPredVsMeasured bool
	for _, ln := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		switch m["type"] {
		case "frame_start":
			starts++
		case "frame_end":
			ends++
		case "balancer_audit":
			audits++
			pred, _ := m["pred_tau_tot"].(float64)
			meas, _ := m["measured_tau_tot"].(float64)
			if pred > 0 && meas > 0 {
				sawPredVsMeasured = true
			}
			if _, ok := m["drift"]; !ok {
				t.Errorf("audit record without drift: %v", m)
			}
		}
	}
	if starts != frames || ends != frames {
		t.Errorf("frame_start/frame_end = %d/%d, want %d each", starts, ends, frames)
	}
	// Frame 0 is intra and frame 1 is the equidistant initialization, so
	// audits start once the LP predicts: frames 2..7.
	if audits != frames-2 {
		t.Errorf("balancer_audit records = %d, want %d", audits, frames-2)
	}
	if !sawPredVsMeasured {
		t.Error("no audit paired a positive prediction with a positive measurement")
	}

	metrics := tel.Metrics.Expose()
	for _, want := range []string{
		`feves_frames_total{type="intra"} 1`,
		`feves_frames_total{type="inter"} 7`,
		"feves_tau_tot_seconds_count 7",
		"feves_sched_overhead_seconds_count 7",
		`feves_balancer_decisions_total{balancer="lp"} 6`,
		"feves_prediction_rel_error_count 6",
		"feves_model_k_seconds{",
		"feves_schedule_spans_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// The Perfetto timeline accumulated one entry per inter frame.
	if got := tel.Trace.Frames(); got != 7 {
		t.Errorf("trace frames = %d, want 7", got)
	}
}

func TestIDRMarkEvents(t *testing.T) {
	var events bytes.Buffer
	tel := &telemetry.Telemetry{Events: telemetry.NewEventLog(&events)}
	runFrames(t, tel, 9, 4) // intra at 0, 4, 8 → idr marks at 4 and 8
	idr := 0
	for _, ln := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatal(err)
		}
		if m["type"] == "idr" {
			idr++
		}
	}
	if idr != 2 {
		t.Errorf("idr marks = %d, want 2", idr)
	}
}

// TestNilTelemetryUnchangedResults is the zero-cost contract at the
// framework level: enabling telemetry must not alter the simulated timing.
func TestNilTelemetryUnchangedResults(t *testing.T) {
	run := func(tel *telemetry.Telemetry) []float64 {
		fw, err := New(Options{
			Platform: device.SysHK(),
			Codec: codec.Config{Width: 640, Height: 352, SearchRange: 16,
				NumRF: 1, IQP: 27, PQP: 28},
			Mode:      vcm.TimingOnly,
			Telemetry: tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var tots []float64
		for i := 0; i < 10; i++ {
			r, err := fw.EncodeNext(nil)
			if err != nil {
				t.Fatal(err)
			}
			tots = append(tots, r.Timing.Tot)
		}
		return tots
	}
	plain := run(nil)
	observed := run(&telemetry.Telemetry{Metrics: telemetry.NewRegistry(),
		Events: telemetry.NewEventLog(&bytes.Buffer{}), Trace: telemetry.NewTraceWriter()})
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("frame %d τtot changed with telemetry on: %v vs %v", i, plain[i], observed[i])
		}
	}
}
