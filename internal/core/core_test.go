package core

import (
	"io"
	"testing"
	"time"

	"feves/internal/device"
	"feves/internal/h264/codec"
	"feves/internal/sched"
	"feves/internal/vcm"
	"feves/internal/video"
)

func timingOpts(pl *device.Platform, sa, rf int) Options {
	return Options{
		Platform: pl,
		Codec: codec.Config{Width: 1920, Height: 1088, SearchRange: sa / 2,
			NumRF: rf, IQP: 27, PQP: 28},
		Mode: vcm.TimingOnly,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing platform accepted")
	}
	opts := timingOpts(device.SysHK(), 32, 1)
	opts.Codec.NumRF = 0
	if _, err := New(opts); err == nil {
		t.Fatal("invalid codec config accepted")
	}
	if _, err := New(timingOpts(device.SysHK(), 32, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1Phases(t *testing.T) {
	fw, err := New(timingOpts(device.SysHK(), 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0: intra, no timing.
	r0, err := fw.EncodeNext(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.Intra || r0.Timing.Tot != 0 {
		t.Fatalf("frame 0 should be intra without inter-loop timing: %+v", r0)
	}
	// Frame 1: initialization phase — equidistant.
	r1, err := fw.EncodeNext(nil)
	if err != nil {
		t.Fatal(err)
	}
	eq := sched.Equidistant(fw.Topology().NumDevices(), 68, 0)
	for i := range eq.M {
		if r1.Distribution.M[i] != eq.M[i] {
			t.Fatalf("frame 1 must use the equidistant distribution, got %v", r1.Distribution.M)
		}
	}
	// Frame 2+: iterative phase — LP-balanced and faster.
	r2, err := fw.EncodeNext(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timing.Tot >= r1.Timing.Tot {
		t.Fatalf("balanced frame 2 (%.2f ms) not faster than equidistant frame 1 (%.2f ms)",
			r2.Timing.Tot*1e3, r1.Timing.Tot*1e3)
	}
	if fw.FramesProcessed() != 3 {
		t.Fatalf("FramesProcessed = %d", fw.FramesProcessed())
	}
}

func TestSchedulingOverheadUnderPaperBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock budget: race instrumentation slows the LP ~10x")
	}
	fw, err := New(timingOpts(device.SysNFF(), 32, 4))
	if err != nil {
		t.Fatal(err)
	}
	var worst time.Duration
	for i := 0; i < 12; i++ {
		r, err := fw.EncodeNext(nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.SchedOverhead > worst {
			worst = r.SchedOverhead
		}
	}
	// The paper reports <2 ms per frame; our LP is tiny, so enforce it.
	if worst > 2*time.Millisecond {
		t.Fatalf("scheduling overhead %v exceeds the paper's 2 ms budget", worst)
	}
}

func TestRFRampUpWorkload(t *testing.T) {
	fw, _ := New(timingOpts(device.SysHK(), 32, 4))
	if w := fw.workload(1); w.UsableRF != 1 {
		t.Fatalf("inter-frame 1 usable RF = %d", w.UsableRF)
	}
	if w := fw.workload(3); w.UsableRF != 3 {
		t.Fatalf("inter-frame 3 usable RF = %d", w.UsableRF)
	}
	if w := fw.workload(9); w.UsableRF != 4 {
		t.Fatalf("inter-frame 9 usable RF = %d (cap)", w.UsableRF)
	}
}

func TestRampUpSlowsFrames(t *testing.T) {
	// Fig. 7(b): with NumRF > 1, early frames get faster RF-ramped loads,
	// so per-frame time rises until the DPB is full.
	fw, _ := New(timingOpts(device.SysHK(), 32, 5))
	var times []float64
	for i := 0; i < 9; i++ {
		r, err := fw.EncodeNext(nil)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 1 {
			times = append(times, r.Timing.Tot)
		}
	}
	// Frames 2..5 (index 1..4 here) must be increasing in load; compare
	// usable-RF 1 vs 4 frames (skipping the equidistant frame 1).
	if times[4] <= times[1] {
		t.Fatalf("RF ramp-up should increase frame time: %v", times)
	}
	// After the ramp, times stabilize.
	if times[7] > times[5]*1.15 {
		t.Fatalf("times did not stabilize after ramp: %v", times)
	}
}

func TestFunctionalEndToEnd(t *testing.T) {
	const w, h, n = 64, 48, 5
	cfg := codec.Config{Width: w, Height: h, SearchRange: 8, NumRF: 2, IQP: 27, PQP: 28}
	fw, err := New(Options{Platform: device.SysNF(), Codec: cfg, Mode: vcm.Functional})
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSynthetic(w, h, n, 3)
	for i := 0; i < n; i++ {
		r, err := fw.EncodeNext(src.FrameAt(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Bits <= 0 {
			t.Fatalf("frame %d has no coded bits", i)
		}
	}
	// The produced stream decodes bit-exactly against the encoder state.
	dec, err := codec.NewDecoder(fw.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		df, err := dec.DecodeFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == n && !df.Equal(fw.Encoder().LastRecon()) {
			t.Fatal("decoded final frame differs from encoder reconstruction")
		}
	}
	if count != n {
		t.Fatalf("decoded %d frames, want %d", count, n)
	}
}

func TestBalancerOptionRespected(t *testing.T) {
	opts := timingOpts(device.SysHK(), 32, 1)
	opts.Balancer = sched.EquidistantBalancer{}
	fw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fw.EncodeNext(nil)
	fw.EncodeNext(nil)
	r, err := fw.EncodeNext(nil)
	if err != nil {
		t.Fatal(err)
	}
	eq := sched.Equidistant(fw.Topology().NumDevices(), 68, r.Distribution.RStarDev)
	for i := range eq.M {
		if r.Distribution.M[i] != eq.M[i] {
			t.Fatalf("equidistant balancer not used: %v", r.Distribution.M)
		}
	}
}

func TestTimingBitstreamNil(t *testing.T) {
	fw, _ := New(timingOpts(device.SysHK(), 32, 1))
	if fw.Bitstream() != nil || fw.Encoder() != nil {
		t.Fatal("timing-only framework should have no encoder state")
	}
	if fw.Model() == nil {
		t.Fatal("model must exist")
	}
}

// TestSetPlatformRePlatformsMidRun moves a functional encode from SysNF
// onto a single-GPU platform mid-sequence: the Performance
// Characterization re-runs its initialization phase on the new device
// set while the coded stream stays continuous and decodable.
func TestSetPlatformRePlatformsMidRun(t *testing.T) {
	const w, h, n = 64, 48, 7
	cfg := codec.Config{Width: w, Height: h, SearchRange: 8, NumRF: 1, IQP: 27, PQP: 28}
	fw, err := New(Options{Platform: device.SysNF(), Codec: cfg, Mode: vcm.Functional})
	if err != nil {
		t.Fatal(err)
	}
	src := video.NewSynthetic(w, h, n, 3)
	for i := 0; i < 4; i++ {
		if _, err := fw.EncodeNext(src.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	next := device.GPUOnly("GPU_K", device.GPUKepler())
	if err := fw.SetPlatform(next); err != nil {
		t.Fatal(err)
	}
	if fw.Topology().NumDevices() != 1 || fw.Model().NumDevices() != 1 {
		t.Fatalf("topology not re-targeted: %+v", fw.Topology())
	}
	// First frame after the move must be the equidistant init frame
	// (PredTot 0: the fresh model is not characterized yet).
	r, err := fw.EncodeNext(src.FrameAt(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Distribution.PredTot != 0 {
		t.Fatalf("frame after SetPlatform used the LP (pred %v), want equidistant init", r.Distribution.PredTot)
	}
	for i := 5; i < n; i++ {
		if _, err := fw.EncodeNext(src.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := codec.NewDecoder(fw.Bitstream())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := dec.DecodeFrame(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != n {
		t.Fatalf("decoded %d frames, want %d", count, n)
	}
}

func TestSetPlatformValidation(t *testing.T) {
	fw, err := New(timingOpts(device.SysHK(), 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.SetPlatform(nil); err == nil {
		t.Fatal("nil platform accepted")
	}
	if err := fw.SetPlatform(&device.Platform{Name: "empty"}); err == nil {
		t.Fatal("deviceless platform accepted")
	}
}
