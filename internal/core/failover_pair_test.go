package core

import (
	"testing"

	"feves/internal/device"
	"feves/internal/sched"
)

// TestPairFailoverExcludesStalledDevice drives the frame-parallel loop
// into the failover machinery: a device that stalls mid-run must blow the
// pair's task budget, be blamed, escalate healthy → degraded → excluded
// across the bounded bit-exact retries, and drop out of every later joint
// schedule — with the introspection surface (Health, HealthStates,
// FrameRetries) reporting each step.
func TestPairFailoverExcludesStalledDevice(t *testing.T) {
	const stallFrom = 11
	pl := device.SysNFF()
	pl.Perturb = func(frame, dev int) float64 {
		if dev == 0 && frame >= stallFrom {
			return 1e9
		}
		return 1
	}
	opts := timingOpts(pl, 32, 1)
	opts.Codec.Chains = 2
	opts.Codec.IntraPeriod = 9 // forces pairs to break and re-form at IDRs
	opts.FrameParallel = true
	opts.DeadlineSlack = 3
	var excluded []int
	opts.OnDeviceExcluded = func(dev int) { excluded = append(excluded, dev) }
	fw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	if fw.Health() == nil {
		t.Fatal("failover armed but no health tracker")
	}
	if got := fw.HealthStates(); len(got) != pl.NumDevices() || got[0] != "healthy" {
		t.Fatalf("initial health states %v", got)
	}

	retried := false
	for fw.FramesProcessed() < 26 {
		ra, rb, paired, err := fw.EncodePair(nil, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", ra.FrameIndex, err)
		}
		if ra.Attempt > 0 || (paired && rb.Attempt > 0) {
			retried = true
		}
		if paired && ra.FrameIndex >= stallFrom+2 {
			// Once excluded, the stalled device must get no rows on either
			// frame of the pair.
			for _, r := range []Result{ra, rb} {
				if r.Distribution.M[0] != 0 || r.Distribution.L[0] != 0 || r.Distribution.S[0] != 0 {
					t.Fatalf("frame %d still assigns rows to the stalled device: %+v", r.FrameIndex, r.Distribution)
				}
			}
		}
	}
	if !retried {
		t.Fatal("the stall never forced a pair retry")
	}
	if fw.FrameRetries() == 0 {
		t.Fatal("FrameRetries reports no failover re-runs")
	}
	if got := fw.HealthStates(); got[0] != "excluded" {
		t.Fatalf("stalled device state %q, want excluded (states %v)", got[0], got)
	}
	if fw.Health().State(0) != sched.Excluded {
		t.Fatal("health tracker does not report the device excluded")
	}
	if len(excluded) != 1 || excluded[0] != 0 {
		t.Fatalf("OnDeviceExcluded fired for %v, want exactly device 0", excluded)
	}
}

// TestPairDeadlineDerivation pins the budget arithmetic of the two
// deadline shapes: the serial path arms all three sync points from the
// LP's predicted timeline, while the pair path arms only the pair-wide
// total (the per-point predictions assume a solo schedule) plus the
// stall net — and neither arms anything while failover is off.
func TestPairDeadlineDerivation(t *testing.T) {
	opts := timingOpts(device.SysNFF(), 32, 1)
	fw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	pred := sched.Distribution{PredTau1: 1, PredTau2: 2, PredTot: 3}
	if fw.deadline(pred) != nil || fw.pairDeadline(pred, pred) != nil {
		t.Fatal("deadlines armed with zero slack")
	}

	opts.DeadlineSlack = 2
	fw, err = New(opts)
	if err != nil {
		t.Fatal(err)
	}
	dl := fw.deadline(pred)
	if dl.Tau1 != 2 || dl.Tau2 != 4 || dl.Tot != 6 || dl.TaskBudget <= 0 {
		t.Fatalf("serial deadline %+v, want per-point budgets at 2x slack", dl)
	}
	// No prediction (equidistant initialization): only the stall net.
	dl = fw.deadline(sched.Distribution{})
	if dl.Tau1 != 0 || dl.Tau2 != 0 || dl.Tot != 0 || dl.TaskBudget <= 0 {
		t.Fatalf("prediction-free deadline %+v, want stall net only", dl)
	}
	other := sched.Distribution{PredTot: 5}
	pd := fw.pairDeadline(pred, other)
	if pd.Tau1 != 0 || pd.Tau2 != 0 {
		t.Fatalf("pair deadline arms per-point budgets: %+v", pd)
	}
	if pd.Tot != (3+5)*2 {
		t.Fatalf("pair total budget %v, want the serial upper bound x slack = 16", pd.Tot)
	}
	if pd := fw.pairDeadline(pred, sched.Distribution{}); pd.Tot != 0 || pd.TaskBudget <= 0 {
		t.Fatalf("pair deadline without both predictions %+v, want stall net only", pd)
	}
}
