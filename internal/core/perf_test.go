package core

import (
	"testing"

	"feves/internal/device"
	"feves/internal/telemetry"
)

// TestFrameLoopZeroAllocs asserts the tentpole's end-to-end contract:
// once the model has converged, a full timing-only EncodeNext — LP
// balance with a warm solver, schedule build on the recycled simulator,
// model update, result assembly — allocates nothing per frame.
func TestFrameLoopZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	fw, err := New(timingOpts(device.SysNFF(), 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, err := fw.EncodeNext(nil); err != nil {
			t.Fatal(err)
		}
	}
	// The EWMA model keeps shifting the distribution — and with it the
	// per-frame task shapes — for a few dozen frames; every new shape can
	// grow a retained buffer once. Steady state needs the model converged.
	for i := 0; i < 40; i++ {
		step()
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state EncodeNext allocates %v per frame, want 0", n)
	}
}

// TestFrameLoopZeroAllocsObserved extends the zero-alloc contract to a
// fully observed, session-scoped frame loop: metrics registry, bounded
// trace ring (sized to wrap mid-run) and flight recorder all enabled.
// Steady-state observability must be free — the cached instruments, the
// slot-reusing rings and the nil-Events guards leave EncodeNext at zero
// allocations per frame with everything on.
func TestFrameLoopZeroAllocsObserved(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTraceWriterCap(512), // wraps during warmup
		Flight:  telemetry.NewFlightRecorder(0),
	}
	opts := timingOpts(device.SysNFF(), 32, 1)
	opts.Telemetry = tel.ForSession("tenant-0")
	fw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, err := fw.EncodeNext(nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		step()
	}
	// The ring must already have wrapped so the measurement exercises the
	// overwrite path, not the initial append growth.
	if tel.Trace.Dropped() == 0 {
		t.Fatal("trace ring did not wrap during warmup; enlarge the warmup or shrink the cap")
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("observed steady-state EncodeNext allocates %v per frame, want 0", n)
	}
	if tel.Flight.Depth() == 0 || len(tel.Flight.Doc().Frames) == 0 {
		t.Fatal("flight recorder committed no frames despite being enabled")
	}
}

// pairOpts is timingOpts with the dual-chain frame-parallel path armed.
func pairOpts(sa, rf int) Options {
	opts := timingOpts(device.SysNFF(), sa, rf)
	opts.Codec.Chains = 2
	opts.FrameParallel = true
	return opts
}

// TestPairLoopZeroAllocs extends the zero-alloc contract to two frames in
// flight: a steady-state EncodePair — two chain-selected LP balances, the
// joint interleaved schedule on the recycled simulator, two model updates
// and two result assemblies — allocates nothing per pair.
func TestPairLoopZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	fw, err := New(pairOpts(32, 1))
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if _, _, _, err := fw.EncodePair(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Twice the serial warmup: each chain's shapes converge at half rate,
	// and the pair scratch (tasks, spans, deps) grows once per new shape.
	for i := 0; i < 80; i++ {
		step()
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state EncodePair allocates %v per pair, want 0", n)
	}
}

// BenchmarkFrameParallelPair measures the joint two-frame framework cost:
// the frame-parallel counterpart of BenchmarkSimulatedFrame (one iteration
// encodes two frames). Gated by the benchmark-regression harness.
func BenchmarkFrameParallelPair(b *testing.B) {
	fw, err := New(pairOpts(32, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, _, _, err := fw.EncodePair(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fw.EncodePair(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedFrame measures the whole per-frame framework cost in
// timing-only mode: Algorithm 1's iterative phase end to end. This is
// the headline number of the benchmark-regression harness.
func BenchmarkSimulatedFrame(b *testing.B) {
	fw, err := New(timingOpts(device.SysNFF(), 32, 1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := fw.EncodeNext(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.EncodeNext(nil); err != nil {
			b.Fatal(err)
		}
	}
}
