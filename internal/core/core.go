// Package core implements the Framework Control block of FEVES
// (Algorithm 1 of the paper): the top-level loop that detects the platform,
// runs the initialization phase (equidistant partitioning of the first
// inter-frame to seed the Performance Characterization) and the iterative
// phase (per-frame Load Balancing from the measured model, collaborative
// execution through the Video Coding Manager, and model update), while
// accounting the real scheduling overhead the paper bounds at 2 ms.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/h264/rd"
	"feves/internal/lp"
	"feves/internal/sched"
	"feves/internal/telemetry"
	"feves/internal/vcm"
)

// Options configures a framework instance.
type Options struct {
	Platform *device.Platform
	// Codec holds the sequence parameters. In TimingOnly mode only the
	// geometry, search range and RF count matter.
	Codec codec.Config
	// Mode selects functional encoding or timing-only simulation.
	Mode vcm.Mode
	// Balancer defaults to the paper's LP balancer.
	Balancer sched.Balancer
	// Alpha is the EWMA weight of the Performance Characterization
	// (default 0.8; 1 reproduces the paper's last-measurement behaviour).
	Alpha float64
	// Parallel executes functional kernels of disjoint row ranges on
	// concurrent goroutines (bit-exact; see vcm.Manager.Parallel).
	Parallel bool
	// Telemetry is the observability sink (metrics, JSONL events, Perfetto
	// spans, balancer audit). nil disables every hook at the cost of one
	// pointer check per frame, keeping timing reproductions unaffected.
	Telemetry *telemetry.Telemetry
	// CheckSchedules validates every executed frame with the internal/check
	// invariant checker (distribution constraints, data-access consistency,
	// τ1/τ2/τtot ordering); a violation fails the frame. Zero cost when off.
	CheckSchedules bool
	// CheckObserve makes CheckSchedules non-fatal: violations are counted
	// into the Telemetry sink (feves_check_violations_total) and the frame
	// proceeds — the serving subsystem's mode, where one tenant's broken
	// schedule must not take the session down.
	CheckObserve bool
	// DeadlineSlack arms fault detection and autonomous failover: each
	// inter-frame must finish within the LP's predicted τ1/τ2/τtot times
	// this factor (plus a stall safety net for frames without
	// predictions). A blown budget marks the blamed device, the health
	// tracker degrades/excludes it, and the frame is retried bit-exactly
	// on the reduced topology. Zero (the default) disables enforcement
	// entirely — the frame loop is byte-identical to the slack-free code.
	DeadlineSlack float64
	// MaxFrameRetries bounds the failover retries of one frame (default 3
	// — first strike, exclusion strike, and the run on the reduced
	// topology). Ignored while DeadlineSlack is zero.
	MaxFrameRetries int
	// OnDeviceExcluded, when non-nil, is invoked synchronously (between
	// retry attempts, on the encoding goroutine) each time the health
	// tracker excludes a device, with the framework's device index — the
	// device pool's re-partition hook.
	OnDeviceExcluded func(dev int)
	// FrameParallel enables two-frames-in-flight encoding over the dual
	// reference chains (requires Codec.Chains = 2): EncodePair schedules
	// two consecutive inter frames jointly, interleaving their kernels and
	// transfers so one frame's work fills the other's synchronization
	// stalls. The bitstream stays byte-identical to the serial two-chain
	// encode.
	FrameParallel bool
	// FrameBase offsets the display frame numbering: the first frame fed to
	// EncodeNext runs as frame FrameBase instead of 0. Intra cadence
	// (FrameBase must open a GOP), chain parity, jitter identity, telemetry
	// and Result.FrameIndex all use the global index, so a GOP shard of a
	// longer stream is indistinguishable — in schedule and in bitstream —
	// from the same frames of a whole-stream encode. Non-zero values
	// require Codec.IntraPeriod > 0 with FrameBase a multiple of it.
	FrameBase int
}

// stallTaskBudget is the per-kernel simulated-seconds safety net used when
// no LP prediction exists (initialization frames, non-LP balancers): far
// above any honest kernel on the paper's platforms and parameter sweeps,
// far below the ×1e9 stall factor of a dead device. Sized against the
// calibrated profiles (device.DefaultCalibration), whose kernels run up
// to 5.5× faster than the Fig. 6 base anchors: the stall signature of a
// small row assignment shrinks proportionally, so the budget sits at 2e4
// rather than the pre-calibration 1e5.
const stallTaskBudget = 2e4

// Result reports one processed frame.
type Result struct {
	FrameIndex int // 0-based display index
	// Attempt is the successful attempt index (0 = first try; >0 when the
	// failover path re-ran the frame on a reduced topology).
	Attempt int
	Intra   bool
	// Timing is the simulated inter-loop execution (zero for intra frames,
	// which the paper excludes from the balanced inter-loop).
	Timing vcm.FrameTiming
	// Distribution is the row assignment used. Its slices alias storage the
	// balancer reuses across frames; they stay valid until the second
	// following EncodeNext call. Callers keeping them longer must copy.
	Distribution sched.Distribution
	// SchedOverhead is the real wall-clock cost of the balancing decision
	// (the paper's <2 ms claim, experiment E6).
	SchedOverhead time.Duration
	// Stats is the functional coding outcome (zero in TimingOnly mode).
	Stats rd.FrameStats
}

// Framework is the paper's Framework Control: it owns the performance
// model, the balancer and the Video Coding Manager, and processes frames
// in sequence.
type Framework struct {
	opts     Options
	topo     sched.Topology
	pm       *sched.PerfModel
	mgr      *vcm.Manager
	bal      sched.Balancer
	enc      *codec.Encoder
	healthMu sync.Mutex    // guards the health pointer against debug readers
	health   *sched.Health // nil unless DeadlineSlack > 0
	// prev[c] is the σʳ carry of the most recent frame on reference chain
	// c (framework-owned copies): the deferred SF rows belong to that
	// chain's sub-frame structure, so the next frame on the *same* chain
	// uploads them, not the next frame in display order. Single-chain
	// streams only ever touch prev[0].
	prev      [2][]int
	frame     int          // frames processed (display order)
	lastIntra int          // display index of the most recent intra frame
	retries   atomic.Int64 // frames re-run by the failover path (read by debug endpoints)
	lastLP    lp.Stats     // solver counters at the last frame-end emit

	// Per-frame audit scratch, reused so the telemetry path adds no
	// steady-state allocations to the frame loop.
	snapBefore sched.ModelSnapshot
	snapAfter  sched.ModelSnapshot
	drifts     []sched.KDrift
	dd         []telemetry.DeviceDrift
}

// New builds a framework for the given options — Algorithm 1 lines 1–2:
// platform detection and configuration of the functional blocks.
func New(opts Options) (*Framework, error) {
	if opts.Platform == nil {
		return nil, fmt.Errorf("core: no platform given")
	}
	if err := opts.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Codec.Validate(); err != nil {
		return nil, err
	}
	if opts.Balancer == nil {
		opts.Balancer = &sched.LPBalancer{}
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.8
	}
	topo := sched.Topology{NumGPU: opts.Platform.NumGPUs(), Cores: opts.Platform.Cores}
	if opts.MaxFrameRetries <= 0 {
		opts.MaxFrameRetries = 3
	}
	if opts.FrameParallel && opts.Codec.Chains != 2 {
		return nil, fmt.Errorf("core: FrameParallel needs Codec.Chains = 2, have %d", opts.Codec.Chains)
	}
	if opts.FrameBase != 0 {
		if opts.FrameBase < 0 || opts.Codec.IntraPeriod <= 0 || opts.FrameBase%opts.Codec.IntraPeriod != 0 {
			return nil, fmt.Errorf("core: FrameBase %d must be a non-negative multiple of a non-zero IntraPeriod (have %d)",
				opts.FrameBase, opts.Codec.IntraPeriod)
		}
	}
	f := &Framework{
		opts:      opts,
		topo:      topo,
		pm:        sched.NewPerfModel(topo.NumDevices(), opts.Alpha),
		bal:       opts.Balancer,
		frame:     opts.FrameBase,
		lastIntra: opts.FrameBase,
	}
	for c := range f.prev {
		f.prev[c] = make([]int, topo.NumDevices())
	}
	if opts.DeadlineSlack > 0 {
		f.health = sched.NewHealth(topo.NumDevices())
	}
	f.mgr = &vcm.Manager{Platform: opts.Platform, Mode: opts.Mode,
		Parallel: opts.Parallel, Telemetry: opts.Telemetry,
		Check: opts.CheckSchedules, CheckObserve: opts.CheckObserve}
	if opts.Mode == vcm.Functional {
		enc, err := codec.NewEncoder(opts.Codec)
		if err != nil {
			return nil, err
		}
		f.enc = enc
		f.mgr.Enc = enc
	}
	return f, nil
}

// Topology returns the scheduled device topology.
func (f *Framework) Topology() sched.Topology { return f.topo }

// SolverStats returns the cumulative LP solver counters of the
// framework's balancer — warm/cold solves, pivots — for the benchmark
// harness and telemetry. Non-LP balancers report zero stats.
func (f *Framework) SolverStats() lp.Stats {
	if b, ok := f.bal.(*sched.LPBalancer); ok {
		return b.SolverStats()
	}
	return lp.Stats{}
}

// SetPlatform re-targets the framework onto a different device set
// between frames — the multi-tenant pool's lease-change path. The
// functional encoder (DPB, bitstream, rate-control state) carries over
// untouched, so coding continuity and bit-exactness are preserved; the
// Performance Characterization is rebuilt for the new device count and
// Algorithm 1's initialization phase re-runs (the next inter-frame is
// partitioned equidistantly until the fresh model is characterized),
// exactly as the paper bootstraps an unknown platform.
func (f *Framework) SetPlatform(pl *device.Platform) error {
	if pl == nil {
		return fmt.Errorf("core: no platform given")
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	f.opts.Platform = pl
	f.topo = sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	f.pm = sched.NewPerfModel(f.topo.NumDevices(), f.opts.Alpha)
	for c := range f.prev {
		f.prev[c] = make([]int, f.topo.NumDevices())
	}
	f.mgr.Platform = pl
	f.mgr.Down = nil
	if f.opts.DeadlineSlack > 0 {
		// The new lease consists of devices the pool believes are up;
		// health restarts clean for the new numbering.
		f.healthMu.Lock()
		f.health = sched.NewHealth(f.topo.NumDevices())
		f.healthMu.Unlock()
	}
	return nil
}

// Health exposes the failover health tracker (nil while DeadlineSlack is
// zero). Safe for concurrent reads; the serving layer surfaces it in
// status output.
func (f *Framework) Health() *sched.Health {
	f.healthMu.Lock()
	defer f.healthMu.Unlock()
	return f.health
}

// HealthStates names each device's current health state ("healthy",
// "degraded", "excluded"), or nil while failover is unarmed. Safe to call
// from the debug endpoints while the session goroutine encodes.
func (f *Framework) HealthStates() []string {
	h := f.Health()
	if h == nil {
		return nil
	}
	out := make([]string, h.NumDevices())
	for i := range out {
		out[i] = h.State(i).String()
	}
	return out
}

// FrameRetries returns the number of failover re-runs so far. Safe to
// call from the debug endpoints while the session goroutine encodes.
func (f *Framework) FrameRetries() int { return int(f.retries.Load()) }

// Model exposes the live Performance Characterization (read-mostly; used
// by experiments and traces).
func (f *Framework) Model() *sched.PerfModel { return f.pm }

// Encoder returns the functional encoder (nil in TimingOnly mode).
func (f *Framework) Encoder() *codec.Encoder { return f.enc }

// FramesProcessed returns the number of frames consumed so far.
func (f *Framework) FramesProcessed() int { return f.frame }

// chains returns the configured reference-chain count (1 or 2).
func (f *Framework) chains() int {
	if f.opts.Codec.Chains <= 1 {
		return 1
	}
	return f.opts.Codec.Chains
}

// interOffset is the 0-based count of inter frames between the last intra
// frame and display index interIdx — the encoder's round-robin counter.
func (f *Framework) interOffset(interIdx int) int {
	j := interIdx - f.lastIntra - 1
	if j < 0 {
		j = 0
	}
	return j
}

// chainOf returns the reference chain the frame at display index interIdx
// predicts from, mirroring the encoder's alternating assignment.
func (f *Framework) chainOf(interIdx int) int {
	return f.interOffset(interIdx) % f.chains()
}

// workload derives the frame's workload parameters; the usable reference
// count ramps up over the first NumRF inter-frames *on the frame's chain*
// after each intra frame (Fig. 7(b)): with two chains the odd and even
// frames ramp their DPBs independently, each half as fast in display
// order.
func (f *Framework) workload(interIdx int) device.Workload {
	usable := 1 + f.interOffset(interIdx)/f.chains()
	if usable > f.opts.Codec.NumRF {
		usable = f.opts.Codec.NumRF
	}
	return device.Workload{
		MBW:      f.opts.Codec.Width / h264.MBSize,
		MBH:      f.opts.Codec.Height / h264.MBSize,
		SA:       2 * f.opts.Codec.SearchRange,
		NumRF:    f.opts.Codec.NumRF,
		UsableRF: usable,
	}
}

// EncodeNext processes the next frame of the sequence. In Functional mode
// cf must be the frame to encode; in TimingOnly mode cf is ignored (may be
// nil). The first frame is intra coded outside the balanced inter-loop;
// every subsequent frame runs Algorithm 1's iterative phase.
func (f *Framework) EncodeNext(cf *h264.Frame) (Result, error) {
	idx := f.frame
	tel := f.opts.Telemetry
	intra := idx == 0 ||
		(f.opts.Codec.IntraPeriod > 0 && idx%f.opts.Codec.IntraPeriod == 0)
	tel.FrameStart(idx, intra)
	if intra {
		res := Result{FrameIndex: idx, Intra: true}
		if f.opts.Mode == vcm.Functional {
			stats, err := f.enc.EncodeIntraFrame(cf)
			if err != nil {
				return Result{}, err
			}
			res.Stats = stats
		}
		f.lastIntra = idx
		f.frame++
		if idx > 0 {
			tel.Mark("idr", idx)
		}
		tel.FrameEnd(telemetry.FrameRecord{Frame: idx, Intra: true,
			Bits: res.Stats.Bits, PSNRY: res.Stats.PSNRY})
		return res, nil
	}

	w := f.workload(idx)
	chain := f.chainOf(idx)
	// Load Balancing (lines 3 and 8): equidistant until the model is
	// characterized, LP afterwards; with failover armed the topology
	// carries the health tracker's exclusion mask and a blown deadline
	// re-enters the loop on the reduced topology. The decision cost
	// (accumulated over retries) is the framework's scheduling overhead.
	var (
		d        sched.Distribution
		ft       vcm.FrameTiming
		overhead time.Duration
		okTry    int // attempt index that finally succeeded
	)
	for attempt := 0; ; attempt++ {
		f.mgr.Attempt = attempt
		if f.health != nil {
			f.topo.Down = f.health.Down()
			f.mgr.Down = f.topo.Down
		}
		start := time.Now()
		var err error
		if !f.pm.Ready() {
			d = sched.EquidistantExcluding(f.topo.NumDevices(), w.Rows(), firstUp(f.topo), f.topo.Down)
		} else {
			f.selectChain(chain)
			d, err = f.bal.Distribute(f.pm, f.topo, w, f.prev[chain])
			if err != nil {
				return Result{}, err
			}
		}
		f.mgr.Deadline = f.deadline(d)
		overhead += time.Since(start)

		// Bracket the Video Coding Manager's EWMA feedback with model
		// snapshots so the audit can report the drift this frame caused.
		if tel.Enabled() {
			f.pm.SnapshotInto(&f.snapBefore)
		}
		ft, err = f.mgr.EncodeInterFrame(idx, w, d, f.pm, f.prev[chain], cf)
		if err == nil {
			okTry = attempt
			break
		}
		var de *vcm.DeadlineError
		if f.health == nil || !errors.As(err, &de) || attempt+1 >= f.opts.MaxFrameRetries {
			if errors.As(err, &de) {
				// The deadline error is escaping to the caller — snapshot
				// the flight window while the evidence is still in the ring.
				tel.CaptureBundle("deadline_error", idx, de.Error())
			}
			return Result{}, err
		}
		// The functional encoder state is untouched (the deadline trips
		// before the kernels run), so the frame replays bit-exactly once
		// the sick device is out of the schedule.
		f.retries.Add(1)
		tel.FrameRetry(idx, attempt+1, de.Point, de.Blamed)
		for _, dev := range de.Blamed {
			f.reportMiss(idx, dev, de.Point)
		}
	}
	if f.health != nil {
		// Devices that met their budgets this frame work toward the
		// degraded → healthy recovery streak.
		for i := 0; i < f.topo.NumDevices(); i++ {
			if !f.topo.IsDown(i) {
				if from, to, changed := f.health.Clean(i); changed {
					tel.HealthTransition(idx, i, from.String(), to.String(), "recovered")
				}
			}
		}
	}
	// d.SigmaR aliases balancer-owned double-buffered storage; copy it into
	// the framework's own carry buffer so next frame's read is safe.
	f.prev[chain] = append(f.prev[chain][:0], d.SigmaR...)
	f.frame++
	ft.Chain = chain
	if ft.Stats.Intra && f.chains() > 1 {
		// The encoder's scene-cut detector coded an IDR mid-pipeline,
		// flushing and reseeding every chain: mirror its counter reset so
		// the chain assignment and per-chain ramps stay in lockstep.
		f.lastIntra = idx
		f.resetSigmaCarry()
	}
	res := Result{
		FrameIndex:    idx,
		Attempt:       okTry,
		Timing:        ft,
		Distribution:  d,
		SchedOverhead: overhead,
		Stats:         ft.Stats,
	}
	if tel.Enabled() {
		f.emitFrameTelemetry(tel, res)
	}
	return res, nil
}

// selectChain points an LP balancer at one chain's warm-start and
// hysteresis slots; other balancers keep no per-chain state.
func (f *Framework) selectChain(chain int) {
	if b, ok := f.bal.(*sched.LPBalancer); ok {
		b.SelectChain(chain)
	}
}

// resetSigmaCarry zeroes every chain's σʳ carry — called when an IDR
// flushes the reference chains, making the deferred SF rows moot.
func (f *Framework) resetSigmaCarry() {
	for c := range f.prev {
		for i := range f.prev[c] {
			f.prev[c][i] = 0
		}
	}
}

// pairable reports whether the next two frames can run frame-parallel:
// both inter, the model characterized (the equidistant initialization
// frames run serially), and the two-chain codec configured.
func (f *Framework) pairable() bool {
	if !f.opts.FrameParallel || f.chains() < 2 || !f.pm.Ready() {
		return false
	}
	isIntra := func(i int) bool {
		return i == 0 || (f.opts.Codec.IntraPeriod > 0 && i%f.opts.Codec.IntraPeriod == 0)
	}
	return !isIntra(f.frame) && !isIntra(f.frame+1)
}

// EncodePair processes the next two frames of the sequence jointly when
// frame-parallel execution applies, falling back to a serial EncodeNext of
// cfA otherwise. The returned paired flag reports which happened: when
// false, only cfA was consumed (rb is zero) and the caller re-offers cfB
// as the next frame. A scene cut inside frame A also returns paired=false
// — frame A completed (as an IDR), frame B was aborted before any
// functional work and must be re-offered.
func (f *Framework) EncodePair(cfA, cfB *h264.Frame) (ra, rb Result, paired bool, err error) {
	if cfB == nil && f.opts.Mode == vcm.Functional {
		ra, err = f.EncodeNext(cfA)
		return ra, Result{}, false, err
	}
	if !f.pairable() {
		ra, err = f.EncodeNext(cfA)
		return ra, Result{}, false, err
	}
	idxA, idxB := f.frame, f.frame+1
	tel := f.opts.Telemetry
	tel.FrameStart(idxA, false)
	tel.FrameStart(idxB, false)
	chainA, chainB := f.chainOf(idxA), f.chainOf(idxB)
	wA, wB := f.workload(idxA), f.workload(idxB)

	var (
		dA, dB   sched.Distribution
		ftA, ftB vcm.FrameTiming
		overhead time.Duration
		okTry    int
		sceneCut bool
	)
	for attempt := 0; ; attempt++ {
		f.mgr.Attempt = attempt
		if f.health != nil {
			f.topo.Down = f.health.Down()
			f.mgr.Down = f.topo.Down
		}
		start := time.Now()
		// Two balancing decisions per pair, each against its own chain's
		// warm-start slots and σʳ carry. The balancer's output buffers are
		// double-buffered, so both distributions stay valid through the
		// joint execution.
		f.selectChain(chainA)
		dA, err = f.bal.Distribute(f.pm, f.topo, wA, f.prev[chainA])
		if err != nil {
			return Result{}, Result{}, false, err
		}
		f.selectChain(chainB)
		dB, err = f.bal.Distribute(f.pm, f.topo, wB, f.prev[chainB])
		if err != nil {
			return Result{}, Result{}, false, err
		}
		dlA, dlB := f.pairDeadline(dA, dB), f.pairDeadline(dB, dA)
		overhead += time.Since(start)

		if tel.Enabled() {
			f.pm.SnapshotInto(&f.snapBefore)
		}
		ftA, ftB, err = f.mgr.EncodeInterFramePair(
			vcm.PairInput{Frame: idxA, Chain: chainA, W: wA, D: dA, PrevSigmaR: f.prev[chainA], CF: cfA, Deadline: dlA},
			vcm.PairInput{Frame: idxB, Chain: chainB, W: wB, D: dB, PrevSigmaR: f.prev[chainB], CF: cfB, Deadline: dlB},
			f.pm)
		if err == nil {
			okTry = attempt
			break
		}
		if errors.Is(err, vcm.ErrPairSceneCut) {
			// Frame A scene-cut to an IDR inside R*, flushing every chain;
			// frame B never touched the encoder and is re-offered serially.
			okTry = attempt
			sceneCut = true
			break
		}
		var de *vcm.DeadlineError
		if f.health == nil || !errors.As(err, &de) || attempt+1 >= f.opts.MaxFrameRetries {
			if errors.As(err, &de) {
				tel.CaptureBundle("deadline_error", de.Frame, de.Error())
			}
			return Result{}, Result{}, false, err
		}
		// Neither frame's functional kernels ran (the deadline trips on the
		// simulated timeline first), so the whole pair replays bit-exactly
		// on the reduced topology.
		f.retries.Add(1)
		tel.FrameRetry(de.Frame, attempt+1, de.Point, de.Blamed)
		for _, dev := range de.Blamed {
			f.reportMiss(de.Frame, dev, de.Point)
		}
	}
	if f.health != nil {
		for i := 0; i < f.topo.NumDevices(); i++ {
			if !f.topo.IsDown(i) {
				if from, to, changed := f.health.Clean(i); changed {
					tel.HealthTransition(idxA, i, from.String(), to.String(), "recovered")
				}
			}
		}
	}
	f.prev[chainA] = append(f.prev[chainA][:0], dA.SigmaR...)
	ftA.Chain = chainA
	ra = Result{FrameIndex: idxA, Attempt: okTry, Timing: ftA,
		Distribution: dA, SchedOverhead: overhead, Stats: ftA.Stats}
	if sceneCut {
		f.lastIntra = idxA
		f.frame = idxA + 1
		f.resetSigmaCarry()
		if tel.Enabled() {
			f.emitFrameTelemetry(tel, ra)
		}
		return ra, Result{}, false, nil
	}
	f.prev[chainB] = append(f.prev[chainB][:0], dB.SigmaR...)
	f.frame = idxB + 1
	ftB.Chain = chainB
	if ftB.Stats.Intra {
		// Frame B scene-cut to an IDR after frame A completed as inter:
		// the encoder flushed and reseeded every chain, so mirror its
		// counter reset exactly as the serial loop does.
		f.lastIntra = idxB
		f.resetSigmaCarry()
	}
	rb = Result{FrameIndex: idxB, Attempt: okTry, Timing: ftB,
		Distribution: dB, SchedOverhead: 0, Stats: ftB.Stats}
	if tel.Enabled() {
		f.emitFrameTelemetry(tel, ra)
		f.emitFrameTelemetry(tel, rb)
	}
	return ra, rb, true, nil
}

// pairDeadline derives one pair frame's budgets: only the total and the
// per-task stall net are armed — the LP's τ1/τ2 predictions assume a solo
// schedule and would misfire on the interleaved joint timeline. The total
// budget is the *pair's* serial upper bound (both frames' predicted τtot)
// times the slack factor: an interleaved schedule that beats serial never
// trips it, a stalled device (×1e9) always does.
func (f *Framework) pairDeadline(self, other sched.Distribution) *vcm.Deadline {
	if f.opts.DeadlineSlack <= 0 {
		return nil
	}
	dl := &vcm.Deadline{TaskBudget: stallTaskBudget}
	if self.PredTot > 0 && other.PredTot > 0 {
		dl.Tot = (self.PredTot + other.PredTot) * f.opts.DeadlineSlack
	}
	return dl
}

// deadline derives one frame's budgets from the balancer's predicted
// timeline times the slack factor; frames without predictions (the
// equidistant initialization, non-LP balancers) keep only the stall
// safety net. Nil while failover is unarmed.
func (f *Framework) deadline(d sched.Distribution) *vcm.Deadline {
	if f.opts.DeadlineSlack <= 0 {
		return nil
	}
	dl := &vcm.Deadline{TaskBudget: stallTaskBudget}
	if d.PredTot > 0 {
		s := f.opts.DeadlineSlack
		dl.Tau1, dl.Tau2, dl.Tot = d.PredTau1*s, d.PredTau2*s, d.PredTot*s
	}
	return dl
}

// reportMiss feeds one blamed device into the health tracker and acts on
// the transition: telemetry, model quarantine, and the pool's exclusion
// hook.
func (f *Framework) reportMiss(frame, dev int, point string) {
	from, to, changed := f.health.Miss(dev)
	if !changed {
		return
	}
	f.opts.Telemetry.HealthTransition(frame, dev, from.String(), to.String(), point)
	if to == sched.Excluded {
		f.pm.Quarantine(dev)
		f.opts.Telemetry.CaptureBundle("device_excluded", frame,
			"device "+strconv.Itoa(dev)+" excluded after deadline misses at "+point)
		if f.opts.OnDeviceExcluded != nil {
			f.opts.OnDeviceExcluded(dev)
		}
	}
}

// firstUp returns the lowest schedulable device index.
func firstUp(topo sched.Topology) int {
	for i := 0; i < topo.NumDevices(); i++ {
		if !topo.IsDown(i) {
			return i
		}
	}
	return 0
}

// emitFrameTelemetry converts one inter-frame result into the sink's
// frame-end record and, for model-driven decisions, the balancer audit
// pairing the predicted τtot with the measured one.
func (f *Framework) emitFrameTelemetry(tel *telemetry.Telemetry, r Result) {
	if r.Stats.Intra {
		// The encoder's scene-cut detector switched to intra mid-pipeline.
		tel.Mark("scene_cut", r.FrameIndex)
	}
	if r.Distribution.PredTot > 0 {
		// The sink serializes records synchronously, so the drift scratch
		// can be reused next frame.
		f.pm.SnapshotInto(&f.snapAfter)
		f.drifts = f.snapBefore.DriftInto(f.drifts, f.snapAfter)
		f.dd = f.dd[:0]
		for _, d := range f.drifts {
			f.dd = append(f.dd, telemetry.DeviceDrift{Device: d.Device, Module: d.Module.String(),
				Before: d.Before, After: d.After, Rel: d.Rel})
		}
		tel.Audit(telemetry.AuditRecord{
			Frame: r.FrameIndex, Balancer: f.bal.Name(),
			PredTot: r.Distribution.PredTot, Measured: r.Timing.Tot,
			Drift: f.dd,
		})
	}
	// The per-frame LP work is the delta of the solver's cumulative
	// counters since the last emit (zero for non-LP balancers).
	cur := f.SolverStats()
	lpd := telemetry.LPSolveStats{
		Solves:           cur.Solves - f.lastLP.Solves,
		WarmSolves:       cur.WarmSolves - f.lastLP.WarmSolves,
		ColdSolves:       cur.ColdSolves - f.lastLP.ColdSolves,
		WarmRejects:      cur.WarmRejects - f.lastLP.WarmRejects,
		Pivots:           cur.Pivots - f.lastLP.Pivots,
		DegeneratePivots: cur.DegeneratePivots - f.lastLP.DegeneratePivots,
		BlandPivots:      cur.BlandPivots - f.lastLP.BlandPivots,
	}
	f.lastLP = cur
	tel.FrameEnd(telemetry.FrameRecord{
		Frame: r.FrameIndex, Attempt: r.Attempt, Intra: false, Chain: r.Timing.Chain,
		Tau1: r.Timing.Tau1, Tau2: r.Timing.Tau2, Tot: r.Timing.Tot,
		PredTau1: r.Distribution.PredTau1, PredTau2: r.Distribution.PredTau2,
		PredTot:       r.Distribution.PredTot,
		SchedOverhead: r.SchedOverhead.Seconds(),
		RStarDev:      r.Distribution.RStarDev,
		M:             r.Distribution.M, L: r.Distribution.L, S: r.Distribution.S,
		Sigma: r.Distribution.Sigma, SigmaR: r.Distribution.SigmaR,
		DeltaM: r.Distribution.DeltaM, DeltaL: r.Distribution.DeltaL,
		LP:     lpd,
		ModME:  r.Timing.ModuleTime[sched.ModME],
		ModINT: r.Timing.ModuleTime[sched.ModINT],
		ModSME: r.Timing.ModuleTime[sched.ModSME], ModRStar: r.Timing.ModuleTime[sched.ModRStar],
		Bits: r.Stats.Bits, PSNRY: r.Stats.PSNRY,
	})
}

// Bitstream returns the functional encoder's coded stream (nil in
// TimingOnly mode).
func (f *Framework) Bitstream() []byte {
	if f.enc == nil {
		return nil
	}
	return f.enc.Bitstream()
}
