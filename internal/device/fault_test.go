package device

import (
	"math"
	"strings"
	"testing"
)

func TestParseFaultsGrammar(t *testing.T) {
	pl := SysNF() // 1 GPU + 4 cores
	cases := []struct {
		spec string
		want func(t *testing.T, fp *FaultPlan)
	}{
		{"die:0@40", func(t *testing.T, fp *FaultPlan) {
			f := fp.Faults[0]
			if f.Kind != FaultDie || f.Device != 0 || f.Frame != 40 {
				t.Fatalf("got %+v", f)
			}
		}},
		{"stall:2@10+5", func(t *testing.T, fp *FaultPlan) {
			f := fp.Faults[0]
			if f.Kind != FaultStall || f.Device != 2 || f.Frame != 10 || f.Frames != 5 {
				t.Fatalf("got %+v", f)
			}
		}},
		{"slow:1@7x2.5", func(t *testing.T, fp *FaultPlan) {
			f := fp.Faults[0]
			if f.Kind != FaultSlow || f.Device != 1 || f.Frame != 7 || f.Factor != 2.5 || f.Frames != 0 {
				t.Fatalf("got %+v", f)
			}
		}},
		{"slow:GPU_F@3x4+2; die:4@9", func(t *testing.T, fp *FaultPlan) {
			if len(fp.Faults) != 2 {
				t.Fatalf("want 2 faults, got %+v", fp.Faults)
			}
			if fp.Faults[0].Device != 0 { // GPU_F resolves by name to index 0
				t.Fatalf("name resolution got %+v", fp.Faults[0])
			}
			if fp.Faults[1].Kind != FaultDie || fp.Faults[1].Device != 4 {
				t.Fatalf("got %+v", fp.Faults[1])
			}
		}},
		{"chaos:99x0.25", func(t *testing.T, fp *FaultPlan) {
			if fp.ChaosSeed != 99 || fp.ChaosRate != 0.25 {
				t.Fatalf("got seed=%d rate=%g", fp.ChaosSeed, fp.ChaosRate)
			}
		}},
	}
	for _, c := range cases {
		fp, err := ParseFaults(c.spec, pl)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", c.spec, err)
		}
		c.want(t, fp)
	}
}

func TestParseFaultsErrors(t *testing.T) {
	pl := SysNF()
	bad := []string{
		"",                // no clauses
		"die:0",           // missing @frame
		"die:0@40+3",      // die with duration
		"die:9@4",         // index out of range
		"die:nosuch@4",    // unknown name
		"slow:0@4",        // missing factor
		"slow:0@4x0.5",    // factor <= 1
		"stall:0@0",       // frame < 1
		"stall:0@5+0",     // non-positive duration
		"chaos:1x1.5",     // rate out of range
		"frob:0@4",        // unknown kind
	}
	for _, spec := range bad {
		if _, err := ParseFaults(spec, pl); err == nil {
			t.Errorf("ParseFaults(%q) = nil error, want failure", spec)
		}
	}
	// Name resolution without a platform must fail; indices still work.
	if _, err := ParseFaults("die:GPU_F@4", nil); err == nil || !strings.Contains(err.Error(), "platform") {
		t.Errorf("nameless resolve: %v", err)
	}
	if _, err := ParseFaults("die:3@4", nil); err != nil {
		t.Errorf("index without platform: %v", err)
	}
}

func TestFaultPlanFactorWindows(t *testing.T) {
	fp := &FaultPlan{Faults: []Fault{
		{Device: 1, Kind: FaultSlow, Frame: 10, Frames: 3, Factor: 2},
		{Device: 1, Kind: FaultStall, Frame: 20, Frames: 1},
		{Device: 2, Kind: FaultDie, Frame: 5},
	}}
	if got := fp.Factor(9, 1); got != 1 {
		t.Errorf("before slow window: %g", got)
	}
	for f := 10; f < 13; f++ {
		if got := fp.Factor(f, 1); got != 2 {
			t.Errorf("frame %d: factor %g, want 2", f, got)
		}
	}
	if got := fp.Factor(13, 1); got != 1 {
		t.Errorf("after slow window: %g", got)
	}
	if got := fp.Factor(20, 1); got != StallFactor {
		t.Errorf("stall: %g", got)
	}
	if got := fp.Factor(21, 1); got != 1 {
		t.Errorf("after stall: %g", got)
	}
	// Die is permanent and marks the device dead.
	for _, f := range []int{5, 500} {
		if got := fp.Factor(f, 2); got != StallFactor {
			t.Errorf("die frame %d: %g", f, got)
		}
		if !fp.Dead(f, 2) {
			t.Errorf("Dead(%d, 2) = false", f)
		}
	}
	if fp.Dead(4, 2) || fp.Dead(10, 0) {
		t.Error("Dead true outside fault window")
	}
	// Unaffected device and nil plan are identity.
	if fp.Factor(10, 0) != 1 || (*FaultPlan)(nil).Factor(10, 0) != 1 || (*FaultPlan)(nil).Dead(1, 0) {
		t.Error("identity cases broken")
	}
}

func TestFaultPlanChaosDeterministic(t *testing.T) {
	fp := &FaultPlan{ChaosSeed: 7, ChaosRate: 0.3}
	hits := 0
	const frames, devs = 200, 5
	for frame := 1; frame <= frames; frame++ {
		for dev := 0; dev < devs; dev++ {
			a := fp.Factor(frame, dev)
			b := fp.Factor(frame, dev)
			if a != b {
				t.Fatalf("chaos not deterministic at (%d,%d): %g vs %g", frame, dev, a, b)
			}
			if a != 1 {
				hits++
				if a < 4 || a > 16 {
					t.Fatalf("chaos factor %g outside [4,16]", a)
				}
			}
		}
	}
	rate := float64(hits) / float64(frames*devs)
	if math.Abs(rate-0.3) > 0.06 {
		t.Errorf("chaos hit rate %g far from 0.3", rate)
	}
	// A different seed must produce a different pattern somewhere.
	other := &FaultPlan{ChaosSeed: 8, ChaosRate: 0.3}
	same := true
	for frame := 1; frame <= 50 && same; frame++ {
		for dev := 0; dev < devs; dev++ {
			if fp.Factor(frame, dev) != other.Factor(frame, dev) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different chaos seeds produced identical schedules")
	}
}

func TestEffectiveFactorAppliesFaults(t *testing.T) {
	pl := SysNF()
	base := pl.EffectiveFactor(12, 0, 0)
	pl.Faults = &FaultPlan{Faults: []Fault{{Device: 0, Kind: FaultSlow, Frame: 12, Frames: 1, Factor: 3}}}
	if got := pl.EffectiveFactor(12, 0, 0); math.Abs(got-3*base) > 1e-12 {
		t.Errorf("faulted factor %g, want %g", got, 3*base)
	}
	if got := pl.EffectiveFactor(13, 0, 0); got == 3*pl.EffectiveFactor(13, 0, 0)/1 && false {
		_ = got
	}
	// Subplatforms inherit the plan and evaluate it under parent indices.
	sub, err := pl.Subplatform("lease", []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.EffectiveFactor(12, 0, 0); math.Abs(got-3*base) > 1e-12 {
		t.Errorf("subplatform faulted factor %g, want %g", got, 3*base)
	}
	// Core 3 is sub device 1; it is unaffected.
	if got, want := sub.EffectiveFactor(12, 1, 0), pl.EffectiveFactor(12, 3, 0); got != want {
		t.Errorf("subplatform core factor %g, want %g", got, want)
	}
}
