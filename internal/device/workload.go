package device

import "fmt"

// Workload captures the per-frame encoding parameters that determine kernel
// and transfer costs: frame geometry, search-area size and the number of
// reference frames actually searchable this frame (which ramps up over the
// first NumRF inter-frames, per Fig. 7(b) of the paper).
type Workload struct {
	MBW, MBH int // frame size in macroblocks
	SA       int // search-area size in pixels (paper notation: SA×SA)
	NumRF    int // configured reference frames
	UsableRF int // references available this frame (≤ NumRF)
}

// Validate sanity-checks the workload.
func (w Workload) Validate() error {
	switch {
	case w.MBW <= 0 || w.MBH <= 0:
		return fmt.Errorf("device: workload frame %dx%d MBs", w.MBW, w.MBH)
	case w.SA < 2 || w.SA%2 != 0:
		return fmt.Errorf("device: SA %d must be a positive even size", w.SA)
	case w.NumRF < 1 || w.UsableRF < 1 || w.UsableRF > w.NumRF:
		return fmt.Errorf("device: RF config %d/%d invalid", w.UsableRF, w.NumRF)
	}
	return nil
}

// Rows returns N, the number of macroblock rows the balancer distributes.
func (w Workload) Rows() int { return w.MBH }

// Candidates returns the FSBM candidate count per macroblock per reference.
func (w Workload) Candidates() int { return w.SA * w.SA }

// Width returns the frame width in pixels.
func (w Workload) Width() int { return w.MBW * 16 }

// CFRowBytes is the size of one macroblock row of the current frame
// (luma + 4:2:0 chroma).
func (w Workload) CFRowBytes() int { return 16 * w.Width() * 3 / 2 }

// RFRowBytes is the size of one macroblock row of a reconstructed
// reference frame.
func (w Workload) RFRowBytes() int { return w.CFRowBytes() }

// SFRowBytes is the size of one macroblock row of the interpolated SF
// structure: 16 quarter-pel planes of luma ("as large as 16 RFs").
func (w Workload) SFRowBytes() int { return 16 * 16 * w.Width() }

// MVRowBytes is the size of one macroblock row of the motion-vector
// buffer: 41 partitions × 4 bytes per usable reference.
func (w Workload) MVRowBytes() int { return w.MBW * 41 * 4 * w.UsableRF }

// KME returns this device's ME time per macroblock row (the paper's K^m_i
// parameter), before jitter.
func (p Profile) KME(w Workload) float64 {
	return float64(w.MBW) * float64(w.Candidates()) * float64(w.UsableRF) * p.MECandSec
}

// KSME returns the SME time per macroblock row (K^s_i).
func (p Profile) KSME(w Workload) float64 {
	return float64(w.MBW) * float64(w.UsableRF) * p.SMESec
}

// KINT returns the interpolation time per macroblock row (K^l_i).
func (p Profile) KINT(w Workload) float64 {
	return float64(w.MBW) * p.INTSec
}

// KRStar returns the R* group time per macroblock row.
func (p Profile) KRStar(w Workload) float64 {
	return float64(w.MBW) * p.RStarSec
}

// TRStar returns T^R* — the time to run the whole R* group on this device
// (the parameter the paper's constraint (9) uses).
func (p Profile) TRStar(w Workload) float64 {
	return float64(w.Rows()) * p.KRStar(w)
}

// TH2D returns the host→device transfer time for the given volume.
func (p Profile) TH2D(bytes int) float64 {
	if p.Class == CPU || bytes == 0 {
		return 0
	}
	return p.TransferLatency + float64(bytes)/p.H2DBytesPerSec
}

// TD2H returns the device→host transfer time for the given volume.
func (p Profile) TD2H(bytes int) float64 {
	if p.Class == CPU || bytes == 0 {
		return 0
	}
	return p.TransferLatency + float64(bytes)/p.D2HBytesPerSec
}

// splitmix64 hashes a seed into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// JitterFactor returns the deterministic noise multiplier in
// [1−Jitter, 1+Jitter] for a (seed, frame, device, module) tuple. The same
// tuple always produces the same factor, keeping experiments reproducible.
func (p Profile) JitterFactor(seed uint64, frame, devIndex, module int) float64 {
	if p.Jitter == 0 {
		return 1
	}
	h := splitmix64(seed ^ splitmix64(uint64(frame)<<32|uint64(devIndex)<<8|uint64(module)))
	u := float64(h>>11) / float64(1<<53) // uniform [0,1)
	return 1 + p.Jitter*(2*u-1)
}
