package device

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultKind classifies an injected device fault.
type FaultKind int

const (
	// FaultSlow multiplies the device's kernel times by Factor.
	FaultSlow FaultKind = iota
	// FaultStall makes the device effectively unresponsive (kernel times
	// × StallFactor) for the fault's duration.
	FaultStall
	// FaultDie makes the device permanently unresponsive from Frame on;
	// Frames is ignored.
	FaultDie
)

// String names the kind as it appears in fault specs and telemetry.
func (k FaultKind) String() string {
	switch k {
	case FaultSlow:
		return "slow"
	case FaultStall:
		return "stall"
	case FaultDie:
		return "die"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// StallFactor is the kernel-time multiplier of a stalled or dead device:
// large enough that any per-frame deadline check trips, small enough that
// the simulated-time arithmetic stays finite.
const StallFactor = 1e9

// Fault is one scheduled fault on one device. Like the jitter Seed, a
// fault schedule is part of the platform description and replays
// identically from run to run.
type Fault struct {
	// Device is the parent-platform device index the fault hits.
	Device int
	Kind   FaultKind
	// Frame is the first affected inter-frame (1-based, the same counter
	// EffectiveFactor sees).
	Frame int
	// Frames is the duration; 0 means permanent. Ignored for FaultDie.
	Frames int
	// Factor is the slowdown multiplier of a FaultSlow (> 1).
	Factor float64
}

// active reports whether the fault affects the given inter-frame.
func (f Fault) active(frame int) bool {
	if frame < f.Frame {
		return false
	}
	if f.Kind == FaultDie || f.Frames == 0 {
		return true
	}
	return frame < f.Frame+f.Frames
}

// FaultPlan is a deterministic per-device fault schedule plus an optional
// seeded "chaos" clause that injects transient slowdowns at a given rate.
type FaultPlan struct {
	Faults []Fault

	// ChaosSeed/ChaosRate enable seeded transient slowdowns: each
	// (frame, device) pair independently suffers a 4–16× slowdown with
	// probability ChaosRate, derived from ChaosSeed exactly like the
	// jitter hash so runs replay bit-identically.
	ChaosSeed uint64
	ChaosRate float64
}

// Factor returns the combined kernel-time multiplier the plan applies to
// device dev (parent index) during inter-frame frame. 1 means unaffected.
func (fp *FaultPlan) Factor(frame, dev int) float64 {
	if fp == nil {
		return 1
	}
	f := 1.0
	for _, flt := range fp.Faults {
		if flt.Device != dev || !flt.active(frame) {
			continue
		}
		switch flt.Kind {
		case FaultSlow:
			f *= flt.Factor
		case FaultStall, FaultDie:
			f *= StallFactor
		}
	}
	if fp.ChaosRate > 0 {
		h := splitmix64(fp.ChaosSeed ^ splitmix64(uint64(frame)<<32|uint64(dev)<<8|0xC4A05))
		u := float64(h>>11) / float64(1<<53)
		if u < fp.ChaosRate {
			// Re-hash so severity is independent of the trigger draw.
			h2 := splitmix64(h)
			u2 := float64(h2>>11) / float64(1<<53)
			f *= 4 + 12*u2
		}
	}
	return f
}

// Dead reports whether a die fault (or a currently active stall) leaves
// device dev unresponsive at frame.
func (fp *FaultPlan) Dead(frame, dev int) bool {
	if fp == nil {
		return false
	}
	for _, flt := range fp.Faults {
		if flt.Device != dev || !flt.active(frame) {
			continue
		}
		if flt.Kind == FaultDie || flt.Kind == FaultStall {
			return true
		}
	}
	return false
}

// Empty reports whether the plan injects nothing.
func (fp *FaultPlan) Empty() bool {
	return fp == nil || (len(fp.Faults) == 0 && fp.ChaosRate == 0)
}

// ParseFaults parses a fault-spec string into a plan. The grammar is a
// semicolon-separated clause list:
//
//	die:DEV@F          device DEV dies at inter-frame F (permanent)
//	stall:DEV@F        DEV stalls from frame F on (permanent)
//	stall:DEV@F+K      DEV stalls for K frames starting at F
//	slow:DEV@FxR       DEV runs R× slower from frame F on
//	slow:DEV@FxR+K     … for K frames
//	chaos:SEEDxRATE    seeded transient slowdowns at probability RATE
//
// DEV is a 0-based device index, or a device name on the supplied
// platform (case-insensitive; pl may be nil to allow only indices).
// Example: "die:1@40; slow:0@10x3+5".
func ParseFaults(spec string, pl *Platform) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("device: fault clause %q: want KIND:ARGS", clause)
		}
		kind = strings.TrimSpace(strings.ToLower(kind))
		rest = strings.TrimSpace(rest)
		if kind == "chaos" {
			seedStr, rateStr, ok := strings.Cut(rest, "x")
			if !ok {
				return nil, fmt.Errorf("device: fault clause %q: want chaos:SEEDxRATE", clause)
			}
			seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("device: fault clause %q: bad seed: %v", clause, err)
			}
			rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("device: fault clause %q: rate must be in [0,1]", clause)
			}
			plan.ChaosSeed, plan.ChaosRate = seed, rate
			continue
		}
		devStr, when, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("device: fault clause %q: want %s:DEV@FRAME...", clause, kind)
		}
		dev, err := resolveDevice(strings.TrimSpace(devStr), pl)
		if err != nil {
			return nil, fmt.Errorf("device: fault clause %q: %v", clause, err)
		}
		flt := Fault{Device: dev}
		switch kind {
		case "die":
			flt.Kind = FaultDie
		case "stall":
			flt.Kind = FaultStall
		case "slow":
			flt.Kind = FaultSlow
		default:
			return nil, fmt.Errorf("device: fault clause %q: unknown kind %q", clause, kind)
		}
		// WHEN is FRAME, optionally xFACTOR (slow only), optionally +DUR.
		if frameStr, durStr, ok := strings.Cut(when, "+"); ok {
			when = frameStr
			d, err := strconv.Atoi(strings.TrimSpace(durStr))
			if err != nil || d < 1 {
				return nil, fmt.Errorf("device: fault clause %q: duration must be a positive frame count", clause)
			}
			if flt.Kind == FaultDie {
				return nil, fmt.Errorf("device: fault clause %q: die faults are permanent", clause)
			}
			flt.Frames = d
		}
		if flt.Kind == FaultSlow {
			frameStr, facStr, ok := strings.Cut(when, "x")
			if !ok {
				return nil, fmt.Errorf("device: fault clause %q: want slow:DEV@FRAMExFACTOR", clause)
			}
			when = frameStr
			fac, err := strconv.ParseFloat(strings.TrimSpace(facStr), 64)
			if err != nil || fac <= 1 {
				return nil, fmt.Errorf("device: fault clause %q: slow factor must be > 1", clause)
			}
			flt.Factor = fac
		}
		frame, err := strconv.Atoi(strings.TrimSpace(when))
		if err != nil || frame < 1 {
			return nil, fmt.Errorf("device: fault clause %q: frame must be >= 1", clause)
		}
		flt.Frame = frame
		plan.Faults = append(plan.Faults, flt)
	}
	if plan.Empty() {
		return nil, fmt.Errorf("device: fault spec %q has no clauses", spec)
	}
	return plan, nil
}

// resolveDevice maps an index literal or device name to a platform index.
func resolveDevice(s string, pl *Platform) (int, error) {
	if i, err := strconv.Atoi(s); err == nil {
		if pl != nil && (i < 0 || i >= pl.NumDevices()) {
			return 0, fmt.Errorf("device index %d out of range [0,%d)", i, pl.NumDevices())
		}
		if pl == nil && i < 0 {
			return 0, fmt.Errorf("device index %d negative", i)
		}
		return i, nil
	}
	if pl == nil {
		return 0, fmt.Errorf("device name %q needs a platform to resolve against", s)
	}
	for i := 0; i < pl.NumDevices(); i++ {
		if strings.EqualFold(pl.Dev(i).Name, s) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no device named %q on platform %s", s, pl.Name)
}
