// Package device models the heterogeneous processing devices of the FEVES
// reproduction: multi-core CPUs (each core is one device p_i, as in the
// paper) and GPU accelerators with one or two copy engines attached to an
// asymmetric host↔device interconnect.
//
// Because this reproduction runs without CUDA hardware, a device is a
// calibrated performance profile: per-module kernel-time coefficients and
// link bandwidths from which the virtual-time simulator derives task
// durations. The profiles for the paper's four devices (Intel Nehalem i7
// 950 and Haswell i7 4770K quad-cores; NVIDIA Fermi GTX 580 and Kepler GTX
// 780 Ti) are calibrated so that their single-device 1080p encoding rates
// match Fig. 6 of the paper, preserving the shape of every experiment.
// Deterministic jitter and frame-indexed perturbations model the
// non-dedicated-system effects of Fig. 7.
package device

import "fmt"

// Class distinguishes CPU cores from GPU accelerators.
type Class int

const (
	// CPU devices compute directly on host memory: no transfers needed.
	CPU Class = iota
	// GPU devices fetch inputs from and return outputs to host DRAM
	// across the interconnect, via their copy engine(s).
	GPU
)

func (c Class) String() string {
	if c == CPU {
		return "CPU"
	}
	return "GPU"
}

// Profile is the calibrated performance description of one device. Kernel
// coefficients are seconds per macroblock (scaled by the workload
// parameters); bandwidths are bytes per second per direction.
type Profile struct {
	Name        string
	Class       Class
	CopyEngines int // 0 for CPU, 1 or 2 for GPUs
	// Streams is the device's compute-stream count: how many kernel row
	// slices the functional encoder executes concurrently for one dispatch
	// on this device (via h264.ParallelRows). 0 or 1 means serial — a CPU
	// core is a single stream; accelerators expose several.
	Streams int

	// MECandSec is the FSBM cost per macroblock, per search candidate,
	// per usable reference frame (ME work scales with SA²·RF).
	MECandSec float64
	// SMESec is the sub-pel refinement cost per macroblock per usable
	// reference frame (41 partitions × 17 candidate positions).
	SMESec float64
	// INTSec is the interpolation cost per macroblock (one new reference
	// frame is interpolated per encoded frame, so INT is RF-independent).
	INTSec float64
	// RStarSec is the cost per macroblock of the whole R* group
	// (MC + TQ + TQ⁻¹ + DBL and entropy coding).
	RStarSec float64

	// H2DBytesPerSec / D2HBytesPerSec model the asymmetric interconnect.
	H2DBytesPerSec float64
	D2HBytesPerSec float64
	// TransferLatency is the fixed per-transfer setup cost in seconds.
	TransferLatency float64

	// Jitter is the relative amplitude of the deterministic run-to-run
	// noise applied to kernel times (models measurement noise on a real,
	// non-dedicated system).
	Jitter float64
}

// Validate sanity-checks a profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("device: profile needs a name")
	case p.MECandSec <= 0 || p.SMESec <= 0 || p.INTSec <= 0 || p.RStarSec <= 0:
		return fmt.Errorf("device %s: kernel coefficients must be positive", p.Name)
	case p.Class == GPU && (p.CopyEngines < 1 || p.CopyEngines > 2):
		return fmt.Errorf("device %s: GPU needs 1 or 2 copy engines", p.Name)
	case p.Class == GPU && (p.H2DBytesPerSec <= 0 || p.D2HBytesPerSec <= 0):
		return fmt.Errorf("device %s: GPU needs positive link bandwidths", p.Name)
	case p.Class == CPU && p.CopyEngines != 0:
		return fmt.Errorf("device %s: CPU cores have no copy engines", p.Name)
	case p.Jitter < 0 || p.Jitter > 0.5:
		return fmt.Errorf("device %s: jitter %v out of [0, 0.5]", p.Name, p.Jitter)
	case p.Streams < 0 || p.Streams > 64:
		return fmt.Errorf("device %s: streams %d out of range [0,64]", p.Name, p.Streams)
	}
	return nil
}

// KernelCalibration records the measured speedup of each optimized kernel
// over the scalar reference kernels (me.SearchRowsRef, sme.RefineRowsRef,
// interp.InterpolateRowsRef, deblock.FilterFrameRef) that the Fig. 6 base
// anchoring was derived against. The shipped profiles divide the base
// coefficients by these factors, so simulated per-MB-row costs track the
// restructured kernels; the factors come from the internal/bench kernel
// benchmarks (ns/MB fast vs reference, geometric mean over platforms).
type KernelCalibration struct {
	ME, SME, INT, RStar float64
}

// DefaultCalibration is the speedup measured after the stride/SWAR kernel
// pass: SAD-reuse SWAR full search, 4×4-cell-memoized sub-pel refinement,
// flat-scratch interpolation, and the copy-based MC + stride deblocking
// that dominate the R* group's kernel share.
func DefaultCalibration() KernelCalibration {
	return KernelCalibration{ME: 5.5, SME: 3.9, INT: 1.15, RStar: 1.25}
}

// Validate checks the calibration factors.
func (c KernelCalibration) Validate() error {
	if c.ME < 1 || c.SME < 1 || c.INT < 1 || c.RStar < 1 {
		return fmt.Errorf("device: calibration factors %+v must all be >= 1", c)
	}
	return nil
}

// Calibrated returns a copy of the profile with the kernel coefficients
// divided by the measured speedups.
func (p Profile) Calibrated(c KernelCalibration) Profile {
	p.MECandSec /= c.ME
	p.SMESec /= c.SME
	p.INTSec /= c.INT
	p.RStarSec /= c.RStar
	return p
}

// Uncalibrated is the inverse of Calibrated: the kernel coefficients are
// multiplied back by the factors, restoring the Fig. 6 base anchoring.
// Paper-figure reproductions run on uncalibrated profiles so their
// absolute rates stay comparable to the published measurements.
func (p Profile) Uncalibrated(c KernelCalibration) Profile {
	p.MECandSec *= c.ME
	p.SMESec *= c.SME
	p.INTSec *= c.INT
	p.RStarSec *= c.RStar
	return p
}

// The base profiles are anchored to Fig. 6 of the paper at SA 32×32,
// 1 RF, 1080p with the original scalar kernels: CPU_N ≈ 12 fps
// (quad-core), CPU_H ≈ 1.7×CPU_N, GPU_F ≈ 29 fps, GPU_K ≈ 2×GPU_F;
// module shares ME 50%, SME 10%, INT 30%, R* 10%, which reproduces the
// real-time crossovers of Fig. 6(a)/(b). The shipped constructors divide
// the base coefficients by DefaultCalibration — the speedups measured
// after the kernel restructuring — so the absolute anchoring survives in
// the base profiles while simulated costs track the current kernels.
// CPU coefficients below are per core (×4 the whole-CPU cost).

// baseCPUNehalemCore is the Fig. 6-anchored per-core profile of the Intel
// Nehalem i7 950 (CPU_N) with the pre-restructuring scalar kernels.
func baseCPUNehalemCore() Profile {
	return Profile{
		Name: "CPU_N-core", Class: CPU, Streams: 1,
		MECandSec: 1.943e-8, SMESec: 3.979e-6, INTSec: 1.194e-5, RStarSec: 3.979e-6,
		Jitter: 0.02,
	}
}

// CPUNehalemCore returns the per-core profile of the Intel Nehalem i7 950
// (CPU_N in the paper), with SSE 4.2-class kernels.
func CPUNehalemCore() Profile {
	return baseCPUNehalemCore().Calibrated(DefaultCalibration())
}

// baseCPUHaswellCore is the Fig. 6-anchored per-core CPU_H profile.
func baseCPUHaswellCore() Profile {
	return Profile{
		Name: "CPU_H-core", Class: CPU, Streams: 1,
		MECandSec: 1.143e-8, SMESec: 2.340e-6, INTSec: 7.022e-6, RStarSec: 2.340e-6,
		Jitter: 0.02,
	}
}

// CPUHaswellCore returns the per-core profile of the Intel Haswell i7
// 4770K (CPU_H), with AVX2-class kernels (≈1.7× faster than CPU_N).
func CPUHaswellCore() Profile {
	return baseCPUHaswellCore().Calibrated(DefaultCalibration())
}

// baseGPUFermi is the Fig. 6-anchored GPU_F profile.
func baseGPUFermi() Profile {
	return Profile{
		Name: "GPU_F", Class: GPU, CopyEngines: 1, Streams: 4,
		MECandSec: 2.055e-9, SMESec: 4.208e-7, INTSec: 1.263e-6, RStarSec: 4.208e-7,
		H2DBytesPerSec: 6e9, D2HBytesPerSec: 5.2e9, TransferLatency: 8e-6,
		Jitter: 0.02,
	}
}

// GPUFermi returns the profile of the NVIDIA Fermi GTX 580 (GPU_F), a
// single-copy-engine accelerator on a PCIe-2 class link with 4 compute
// streams.
func GPUFermi() Profile {
	return baseGPUFermi().Calibrated(DefaultCalibration())
}

// baseGPUKepler is the Fig. 6-anchored GPU_K profile.
func baseGPUKepler() Profile {
	return Profile{
		Name: "GPU_K", Class: GPU, CopyEngines: 1, Streams: 8,
		MECandSec: 1.028e-9, SMESec: 2.104e-7, INTSec: 6.313e-7, RStarSec: 2.104e-7,
		H2DBytesPerSec: 1.1e10, D2HBytesPerSec: 1e10, TransferLatency: 6e-6,
		Jitter: 0.02,
	}
}

// GPUKepler returns the profile of the NVIDIA Kepler GTX 780 Ti (GPU_K),
// ≈2× GPU_F with a PCIe-3 class link and 8 compute streams. The GeForce
// Kepler exposes a single copy engine; the dual-copy-engine variant used
// by the A2 ablation is obtained with WithCopyEngines.
func GPUKepler() Profile {
	return baseGPUKepler().Calibrated(DefaultCalibration())
}

// WithCopyEngines returns a copy of the profile with the given number of
// copy engines (the single- vs dual-copy-engine ablation of §III-B).
func (p Profile) WithCopyEngines(n int) Profile {
	p.CopyEngines = n
	p.Name = fmt.Sprintf("%s/%dce", p.Name, n)
	return p
}

// Scaled returns a copy of the profile with every kernel coefficient
// multiplied by f (f < 1 means faster). Used to build custom devices.
func (p Profile) Scaled(f float64, name string) Profile {
	p.MECandSec *= f
	p.SMESec *= f
	p.INTSec *= f
	p.RStarSec *= f
	p.Name = name
	return p
}

// GPUTesla returns the profile of a Tesla-generation NVIDIA GPU (e.g. a
// GTX 280-class part) — the oldest architecture the paper's Parallel
// Modules library supports. Roughly 2.2× slower than Fermi on these
// kernels, on a narrower PCIe-1.x-class link.
func GPUTesla() Profile {
	f := GPUFermi()
	p := f.Scaled(2.2, "GPU_T")
	p.H2DBytesPerSec = 2.8e9
	p.D2HBytesPerSec = 2.4e9
	p.TransferLatency = 12e-6
	return p
}
