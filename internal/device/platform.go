package device

import (
	"fmt"
	"sort"
)

// Platform describes a heterogeneous system: an ordered device list with
// GPUs first (device p_1 … p_nw) followed by CPU cores (p_{nw+1} …
// p_{nw+nc}), matching the paper's indexing, plus the deterministic noise
// seed and an optional perturbation schedule that models non-dedicated
// system load (Fig. 7).
type Platform struct {
	Name string
	GPUs []Profile
	// CPUCore is the per-core profile; Cores is n_c.
	CPUCore Profile
	Cores   int

	// Seed drives the deterministic kernel-time jitter.
	Seed uint64
	// Perturb, when non-nil, returns an extra multiplier (≥ 0) on the
	// kernel times of device devIndex while encoding inter-frame `frame`
	// (1-based). A factor of 2 halves the device's speed for that frame —
	// the "other processes started running" events of Fig. 7.
	Perturb func(frame, devIndex int) float64

	// Faults, when non-nil, is the deterministic fault-injection schedule
	// (stalls, slowdowns, deaths). Like Perturb it multiplies kernel
	// times and is evaluated under the parent device index, so a fault on
	// physical device k follows the silicon through any lease.
	Faults *FaultPlan

	// BaseIndex, when non-nil, maps this platform's device indices to the
	// indices of the parent platform it was leased from (see Subplatform).
	// Jitter and perturbation are evaluated under the parent index, so a
	// leased device keeps its physical identity: host-level load events on
	// the parent hit the same silicon regardless of which tenant holds it.
	BaseIndex []int
}

// Validate checks the platform description.
func (pl *Platform) Validate() error {
	if len(pl.GPUs) == 0 && pl.Cores == 0 {
		return fmt.Errorf("device: platform %q has no devices", pl.Name)
	}
	for _, g := range pl.GPUs {
		if g.Class != GPU {
			return fmt.Errorf("device: %q listed as GPU but has class %v", g.Name, g.Class)
		}
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if pl.Cores < 0 || pl.Cores > 64 {
		return fmt.Errorf("device: core count %d out of range", pl.Cores)
	}
	if pl.Cores > 0 {
		if pl.CPUCore.Class != CPU {
			return fmt.Errorf("device: CPU core profile has class %v", pl.CPUCore.Class)
		}
		if err := pl.CPUCore.Validate(); err != nil {
			return err
		}
	}
	if pl.BaseIndex != nil && len(pl.BaseIndex) != pl.NumDevices() {
		return fmt.Errorf("device: platform %q maps %d of %d devices",
			pl.Name, len(pl.BaseIndex), pl.NumDevices())
	}
	return nil
}

// NumGPUs returns n_w.
func (pl *Platform) NumGPUs() int { return len(pl.GPUs) }

// NumDevices returns n_w + n_c.
func (pl *Platform) NumDevices() int { return len(pl.GPUs) + pl.Cores }

// Dev returns the profile of device i (0-based; GPUs first, then cores).
func (pl *Platform) Dev(i int) Profile {
	if i < len(pl.GPUs) {
		return pl.GPUs[i]
	}
	return pl.CPUCore
}

// IsGPU reports whether device i is an accelerator.
func (pl *Platform) IsGPU(i int) bool { return i < len(pl.GPUs) }

// EffectiveFactor combines jitter and perturbation for device i's kernels
// while encoding the given inter-frame. Module indexes: 0 ME, 1 INT,
// 2 SME, 3 R*. On a leased subplatform both are evaluated under the
// parent's device index.
func (pl *Platform) EffectiveFactor(frame, devIndex, module int) float64 {
	base := devIndex
	if pl.BaseIndex != nil {
		base = pl.BaseIndex[devIndex]
	}
	f := pl.Dev(devIndex).JitterFactor(pl.Seed, frame, base, module)
	if pl.Perturb != nil {
		if m := pl.Perturb(frame, base); m > 0 {
			f *= m
		}
	}
	if pl.Faults != nil {
		f *= pl.Faults.Factor(frame, base)
	}
	return f
}

// Subplatform carves the named subset of this platform's devices (parent
// indices, GPUs first then cores, matching Dev's numbering) into a new
// Platform that a framework can run standalone — the lease unit of the
// multi-tenant device pool. The subset must be non-empty, in range and
// duplicate-free. The child inherits the seed and perturbation schedule
// and records the index mapping in BaseIndex, so the leased devices
// behave exactly as they would inside the parent.
func (pl *Platform) Subplatform(name string, devices []int) (*Platform, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("device: subplatform %q needs at least one device", name)
	}
	sub := &Platform{Name: name, Seed: pl.Seed, Perturb: pl.Perturb, Faults: pl.Faults}
	var gpus, cores []int
	seen := make(map[int]bool, len(devices))
	for _, d := range devices {
		if d < 0 || d >= pl.NumDevices() {
			return nil, fmt.Errorf("device: subplatform %q: device %d out of range [0,%d)",
				name, d, pl.NumDevices())
		}
		if seen[d] {
			return nil, fmt.Errorf("device: subplatform %q: device %d listed twice", name, d)
		}
		seen[d] = true
		if pl.IsGPU(d) {
			gpus = append(gpus, d)
		} else {
			cores = append(cores, d)
		}
	}
	sort.Ints(gpus)
	sort.Ints(cores)
	for _, d := range gpus {
		sub.GPUs = append(sub.GPUs, pl.GPUs[d])
	}
	sub.BaseIndex = append(append([]int{}, gpus...), cores...)
	if len(cores) > 0 {
		sub.CPUCore = pl.CPUCore
		sub.Cores = len(cores)
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return sub, nil
}

// The paper's three heterogeneous test systems and the four single-device
// baselines of Fig. 6.

// SysNF is CPU_N (4 cores) + one GPU_F.
func SysNF() *Platform {
	return &Platform{Name: "SysNF", GPUs: []Profile{GPUFermi()}, CPUCore: CPUNehalemCore(), Cores: 4, Seed: 1}
}

// SysNFF is CPU_N (4 cores) + two GPU_F devices.
func SysNFF() *Platform {
	return &Platform{Name: "SysNFF", GPUs: []Profile{GPUFermi(), GPUFermi()}, CPUCore: CPUNehalemCore(), Cores: 4, Seed: 1}
}

// SysHK is CPU_H (4 cores) + one GPU_K.
func SysHK() *Platform {
	return &Platform{Name: "SysHK", GPUs: []Profile{GPUKepler()}, CPUCore: CPUHaswellCore(), Cores: 4, Seed: 1}
}

// Uncalibrated returns a copy of the platform with every device profile's
// kernel calibration undone (Profile.Uncalibrated applied with c) — the
// platform as the paper's hardware would run it with the original scalar
// kernels. Scheduling state (seed, perturbation, faults, lease mapping)
// carries over unchanged.
func (pl *Platform) Uncalibrated(c KernelCalibration) *Platform {
	out := *pl
	out.GPUs = make([]Profile, len(pl.GPUs))
	for i, g := range pl.GPUs {
		out.GPUs[i] = g.Uncalibrated(c)
	}
	if out.Cores > 0 {
		out.CPUCore = pl.CPUCore.Uncalibrated(c)
	}
	return &out
}

// CPUOnly builds a homogeneous multi-core platform (the paper's CPU_N and
// CPU_H baselines with 4 cores).
func CPUOnly(name string, core Profile, cores int) *Platform {
	return &Platform{Name: name, CPUCore: core, Cores: cores, Seed: 1}
}

// GPUOnly builds a single-accelerator platform (the GPU_F / GPU_K
// baselines; the CPU orchestrates but does not compute).
func GPUOnly(name string, gpu Profile) *Platform {
	return &Platform{Name: name, GPUs: []Profile{gpu}, Seed: 1}
}
