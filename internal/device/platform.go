package device

import "fmt"

// Platform describes a heterogeneous system: an ordered device list with
// GPUs first (device p_1 … p_nw) followed by CPU cores (p_{nw+1} …
// p_{nw+nc}), matching the paper's indexing, plus the deterministic noise
// seed and an optional perturbation schedule that models non-dedicated
// system load (Fig. 7).
type Platform struct {
	Name string
	GPUs []Profile
	// CPUCore is the per-core profile; Cores is n_c.
	CPUCore Profile
	Cores   int

	// Seed drives the deterministic kernel-time jitter.
	Seed uint64
	// Perturb, when non-nil, returns an extra multiplier (≥ 0) on the
	// kernel times of device devIndex while encoding inter-frame `frame`
	// (1-based). A factor of 2 halves the device's speed for that frame —
	// the "other processes started running" events of Fig. 7.
	Perturb func(frame, devIndex int) float64
}

// Validate checks the platform description.
func (pl *Platform) Validate() error {
	if len(pl.GPUs) == 0 && pl.Cores == 0 {
		return fmt.Errorf("device: platform %q has no devices", pl.Name)
	}
	for _, g := range pl.GPUs {
		if g.Class != GPU {
			return fmt.Errorf("device: %q listed as GPU but has class %v", g.Name, g.Class)
		}
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if pl.Cores < 0 || pl.Cores > 64 {
		return fmt.Errorf("device: core count %d out of range", pl.Cores)
	}
	if pl.Cores > 0 {
		if pl.CPUCore.Class != CPU {
			return fmt.Errorf("device: CPU core profile has class %v", pl.CPUCore.Class)
		}
		if err := pl.CPUCore.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// NumGPUs returns n_w.
func (pl *Platform) NumGPUs() int { return len(pl.GPUs) }

// NumDevices returns n_w + n_c.
func (pl *Platform) NumDevices() int { return len(pl.GPUs) + pl.Cores }

// Dev returns the profile of device i (0-based; GPUs first, then cores).
func (pl *Platform) Dev(i int) Profile {
	if i < len(pl.GPUs) {
		return pl.GPUs[i]
	}
	return pl.CPUCore
}

// IsGPU reports whether device i is an accelerator.
func (pl *Platform) IsGPU(i int) bool { return i < len(pl.GPUs) }

// EffectiveFactor combines jitter and perturbation for device i's kernels
// while encoding the given inter-frame. Module indexes: 0 ME, 1 INT,
// 2 SME, 3 R*.
func (pl *Platform) EffectiveFactor(frame, devIndex, module int) float64 {
	f := pl.Dev(devIndex).JitterFactor(pl.Seed, frame, devIndex, module)
	if pl.Perturb != nil {
		if m := pl.Perturb(frame, devIndex); m > 0 {
			f *= m
		}
	}
	return f
}

// The paper's three heterogeneous test systems and the four single-device
// baselines of Fig. 6.

// SysNF is CPU_N (4 cores) + one GPU_F.
func SysNF() *Platform {
	return &Platform{Name: "SysNF", GPUs: []Profile{GPUFermi()}, CPUCore: CPUNehalemCore(), Cores: 4, Seed: 1}
}

// SysNFF is CPU_N (4 cores) + two GPU_F devices.
func SysNFF() *Platform {
	return &Platform{Name: "SysNFF", GPUs: []Profile{GPUFermi(), GPUFermi()}, CPUCore: CPUNehalemCore(), Cores: 4, Seed: 1}
}

// SysHK is CPU_H (4 cores) + one GPU_K.
func SysHK() *Platform {
	return &Platform{Name: "SysHK", GPUs: []Profile{GPUKepler()}, CPUCore: CPUHaswellCore(), Cores: 4, Seed: 1}
}

// CPUOnly builds a homogeneous multi-core platform (the paper's CPU_N and
// CPU_H baselines with 4 cores).
func CPUOnly(name string, core Profile, cores int) *Platform {
	return &Platform{Name: name, CPUCore: core, Cores: cores, Seed: 1}
}

// GPUOnly builds a single-accelerator platform (the GPU_F / GPU_K
// baselines; the CPU orchestrates but does not compute).
func GPUOnly(name string, gpu Profile) *Platform {
	return &Platform{Name: name, GPUs: []Profile{gpu}, Seed: 1}
}
